// Proven plan properties, derived once per analysis run by the four
// dataflow analyses (src/analysis/dataflow.h) and exposed to passes via
// AnalysisContext::props, to the CLI via `pdspbench analyze --dataflow`,
// and to the ledger/diagnosis artifacts:
//
//   partitioning  — how each operator's received stream is spread over its
//                   instances, with hash-key *provenance* (which source
//                   field the routing value originates from), proving
//                   redundant shuffles (PDSP-W704) instead of guessing.
//   rate interval — [min,max] sustained event-rate bounds per operator,
//                   propagated from arrival processes through selectivity /
//                   fanout / window math; feeds the static saturation check
//                   (PDSP-W605) and is validated against simulator-observed
//                   rates by tests/property/dataflow_property_test.cc.
//   constant refinement — per-field value intervals + provenance through
//                   filters/maps; proves filters statically always-false
//                   (PDSP-E503, dead downstream subgraph) or always-true
//                   (PDSP-W504).
//   determinism   — classifies operators (order-sensitive aggregation,
//                   rng-bearing or unknown UDOs, merge points) and derives
//                   a per-plan verdict scoping future bit-identity claims;
//                   recorded in every ledger RunRecord.
//
// All analyses are tolerant: they produce *some* fact table even for
// structurally broken plans (facts degrade to "unknown"; the engine's
// FixpointStats says whether they can be trusted).

#ifndef PDSP_ANALYSIS_PROPERTIES_H_
#define PDSP_ANALYSIS_PROPERTIES_H_

#include <string>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/query/plan.h"
#include "src/store/json.h"

namespace pdsp {
namespace analysis {

// --- partitioning --------------------------------------------------------

/// \brief How a stream is distributed across an operator's instances.
struct PartitionFact {
  enum class Kind {
    kUnreached,  ///< bottom: no path from a source reaches this operator
    kSingleton,  ///< one instance holds every tuple (parallelism 1)
    kHashed,     ///< routed by Hash(value) % degree of a provenance-tracked
                 ///< key value
    kArbitrary,  ///< top: no provable distribution (rebalance, sources, ...)
  };
  Kind kind = Kind::kUnreached;
  /// kHashed only: provenance anchor of the routing value — the operator
  /// and output-field index where that value was *produced* (a source
  /// field for anything reached through value-preserving operators).
  LogicalPlan::OpId key_origin_op = -1;
  size_t key_origin_field = 0;
  /// kHashed only: the instance count the hash was taken modulo.
  int degree = 1;

  bool operator==(const PartitionFact& o) const {
    if (kind != o.kind) return false;
    if (kind != Kind::kHashed) return true;
    return key_origin_op == o.key_origin_op &&
           key_origin_field == o.key_origin_field && degree == o.degree;
  }
};

const char* PartitionKindToString(PartitionFact::Kind kind);

// --- rate intervals ------------------------------------------------------

/// \brief [lo, hi] bounds on a sustained event rate (events/second).
/// lo is the provable long-run minimum, hi the provable burst-window
/// maximum; both are conservative (widened where the model estimates
/// rather than proves, e.g. unhinted filter selectivities span [0,1]).
struct RateInterval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double rate, double rel_tol = 0.0,
                double abs_tol = 0.0) const {
    return rate >= lo * (1.0 - rel_tol) - abs_tol &&
           rate <= hi * (1.0 + rel_tol) + abs_tol;
  }
  bool operator==(const RateInterval& o) const {
    return lo == o.lo && hi == o.hi;
  }
};

// --- determinism ---------------------------------------------------------

/// Determinism class of a stream (and, at the sink, of the whole plan),
/// ordered as a lattice: each level includes everything above it.
enum class Determinism {
  /// Bit-identical output stream under any scheduler interleaving.
  kDeterministic = 0,
  /// Output *content* is a deterministic function of the input multisets,
  /// but depends on arrival order at some merge point (floating-point
  /// aggregation order, count-based windows, rng draws consumed per
  /// element) — reproducible only under a fixed delivery order.
  kOrderDependent = 1,
  /// No determinism claim possible (unknown UDO kind).
  kNondeterministic = 2,
};

const char* DeterminismToString(Determinism d);

// --- per-operator property table -----------------------------------------

/// \brief Everything the dataflow analyses proved about one operator.
struct OperatorProperties {
  // Partitioning: distribution of the stream this operator *receives*
  // (post input_partitioning routing) and of the stream it emits (before
  // any downstream routing).
  PartitionFact input_distribution;
  PartitionFact output_distribution;
  /// Proven: the operator declares a hash shuffle whose input is already
  /// hash-partitioned on the same provenance key at the same degree
  /// (PDSP-W704 material).
  bool redundant_shuffle = false;
  std::string redundant_shuffle_why;  ///< evidence string for the finding

  // Rates.
  RateInterval input_rate;
  RateInterval output_rate;
  /// Per-input-tuple pass fraction interval used to derive output_rate
  /// ([1,1] for rate-preserving operators).
  RateInterval selectivity;

  // Constant refinement.
  /// Filters only: the predicate provably rejects every input value.
  bool filter_always_false = false;
  /// Filters only: the predicate provably accepts every input value.
  bool filter_always_true = false;
  std::string filter_why;  ///< evidence for either proof, empty otherwise
  /// Non-sources with a provably-zero input rate (downstream of an
  /// always-false filter): the subgraph is statically dead.
  bool statically_dead = false;

  // Determinism.
  Determinism determinism = Determinism::kDeterministic;
  /// First reason this operator degrades the stream's determinism class
  /// ("floating-point aggregation order", ...); empty when it preserves it.
  std::string determinism_reason;
  /// True when >1 producer task can deliver to one instance of this
  /// operator (scheduler-dependent arrival interleaving).
  bool merge_point = false;

  /// Backward liveness: some path leads from this operator to a sink.
  bool reaches_sink = false;
};

/// \brief The full derived-property table for one plan.
struct PlanProperties {
  /// Indexed by operator id, parallel to the plan's operators.
  std::vector<OperatorProperties> ops;

  /// Plan-level determinism verdict (the sink's stream class; worst sink
  /// wins when the plan is malformed enough to carry several).
  Determinism verdict = Determinism::kDeterministic;
  std::string verdict_reason;

  /// Convergence of each underlying analysis; facts are only meaningful
  /// for analyses whose stats.ok(). A cyclic plan reports non-convergence
  /// here (and the dead-operator pass reports the cycle itself).
  FixpointStats partitioning_stats;
  FixpointStats rate_stats;
  FixpointStats refinement_stats;
  FixpointStats determinism_stats;

  bool AllConverged() const {
    return partitioning_stats.ok() && rate_stats.ok() &&
           refinement_stats.ok() && determinism_stats.ok();
  }

  /// Machine-readable table: {"operators": [{"name", "partitioning",
  /// "rate_interval", "determinism", ...}], "determinism": {...},
  /// "converged": bool}. Schema is validated by ci_check.sh.
  Json ToJson(const LogicalPlan& plan) const;
  /// Human-readable table for `pdspbench analyze --dataflow`.
  std::string ToString(const LogicalPlan& plan) const;
};

/// Runs all four analyses over the context. Never fails; see PlanProperties
/// field docs for how broken inputs degrade.
PlanProperties ComputePlanProperties(const AnalysisContext& ctx);

}  // namespace analysis
}  // namespace pdsp

#endif  // PDSP_ANALYSIS_PROPERTIES_H_
