#!/usr/bin/env bash
# Benchmark regression gate: re-measures a fixed subset of checked-in
# baselines (bench/baselines/*.json) with each baseline's recorded protocol,
# appends every measurement to the run ledger, and exits non-zero when any
# virtual-time metric regresses beyond the noise-aware threshold
# (pdsp::obs::CompareRecords). Also runs the micro_sim host-profiler pair
# and reports the self-profiling overhead.
#
# Because the simulator is deterministic in virtual time for a fixed seed,
# an unchanged tree reproduces the baselines bit-for-bit on any machine —
# so two consecutive runs of this gate must both pass.
#
# Usage: tools/bench_gate.sh [build-dir]
#   build-dir defaults to ./build and must already contain the binaries.
#
# Environment:
#   PDSP_GATE_APPS        space-separated baseline labels to check
#                         (default: "WC SG linear" — must exist under
#                         bench/baselines/)
#   PDSP_GATE_THRESHOLD   relative regression threshold (default 0.25 —
#                         generous: CI catches breakage, not 1% noise)
#   PDSP_GATE_SIGMAS      noise gate width in combined stddevs (default 3.0)
#   PDSP_GATE_LEDGER      ledger path the gate appends to
#                         (default results/ledger.jsonl)
#   PDSP_GATE_SKIP_MICRO  set to 1 to skip the microbenchmark pass

set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
APPS="${PDSP_GATE_APPS:-WC SG linear}"
THRESHOLD="${PDSP_GATE_THRESHOLD:-0.25}"
SIGMAS="${PDSP_GATE_SIGMAS:-3.0}"
LEDGER="${PDSP_GATE_LEDGER:-results/ledger.jsonl}"
BASELINE_DIR="bench/baselines"

step() { echo; echo "=== bench_gate: $* ==="; }

PDSPBENCH="$BUILD_DIR/tools/pdspbench"
if [ ! -x "$PDSPBENCH" ]; then
  echo "bench_gate: $PDSPBENCH not built (cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

if [ "${PDSP_GATE_SKIP_MICRO:-0}" != "1" ] && [ -x "$BUILD_DIR/bench/micro_sim" ]; then
  step "micro_sim host-profiler overhead pair"
  MICRO_JSON="$BUILD_DIR/bench_gate_micro.json"
  "$BUILD_DIR/bench/micro_sim" \
      --benchmark_filter='BM_SimLinearPlanHostProf' \
      --benchmark_format=json > "$MICRO_JSON"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$MICRO_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
times = {b["name"]: b["real_time"] for b in d["benchmarks"]}
on, off = times["BM_SimLinearPlanHostProf"], times["BM_SimLinearPlanHostProfOff"]
overhead = (on - off) / off
print(f"host-profiler overhead: {overhead * 100:+.2f}% "
      f"(on {on:.0f} ns, off {off:.0f} ns)")
# Generous CI bound; the design target is <= 2% but single-iteration
# microbenchmark noise on shared CI hosts can exceed that.
if overhead > 0.10:
    sys.exit(f"host-profiler overhead {overhead*100:.1f}% exceeds 10% bound")
EOF
  fi
fi

step "baseline checks ($APPS; threshold=$THRESHOLD, sigmas=$SIGMAS)"
FAILED=""
for app in $APPS; do
  echo
  echo "--- $app ---"
  if ! "$PDSPBENCH" baseline check "$app" --dir="$BASELINE_DIR" \
      --ledger="$LEDGER" --threshold="$THRESHOLD" --sigmas="$SIGMAS"; then
    FAILED="$FAILED $app"
  fi
done

if [ -n "$FAILED" ]; then
  echo
  echo "bench_gate: REGRESSED:$FAILED" >&2
  exit 1
fi

step "OK (records appended to $LEDGER)"
