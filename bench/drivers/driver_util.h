// Shared knobs for the figure-reproduction drivers. Setting the environment
// variable PDSP_BENCH_FAST=1 shrinks durations/repeats for smoke runs; the
// default settings are the ones EXPERIMENTS.md reports. Every driver also
// accepts --jobs=N (or PDSP_JOBS=N) to fan its sweep cells across worker
// threads — per-cell results are bit-identical to a sequential run — and
// --progress[=plain|rich|off] / --progress-file=PATH (or PDSP_PROGRESS /
// PDSP_PROGRESS_FILE) for live sweep monitoring with PDSP-M### watchdog
// findings. Driver sweeps install the SIGINT drain handler: Ctrl-C
// finishes in-flight cells, flushes their ledger records and exits 130.

#ifndef PDSP_BENCH_DRIVERS_DRIVER_UTIL_H_
#define PDSP_BENCH_DRIVERS_DRIVER_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/string_util.h"
#include "src/exec/sweep.h"
#include "src/harness/harness.h"
#include "src/obs/monitor.h"

namespace pdsp {
namespace bench {

inline bool FastMode() {
  const char* v = std::getenv("PDSP_BENCH_FAST");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

/// Protocol for figure cells: paper-style mean of repeated medians; fast
/// mode cuts to one short run.
inline RunProtocol FigureProtocol() {
  RunProtocol p;
  if (FastMode()) {
    p.repeats = 1;
    p.duration_s = 1.5;
    p.warmup_s = 0.4;
  } else {
    p.repeats = 2;
    p.duration_s = 2.5;
    p.warmup_s = 0.6;
  }
  return p;
}

/// Worker-thread count for the driver's sweep: --jobs=N on the command line
/// wins over the PDSP_JOBS environment variable; the default is sequential.
/// 0 (or any non-positive value) means one worker per hardware thread.
inline int ParseJobs(int argc, char** argv) {
  int jobs = 1;
  if (const char* env = std::getenv("PDSP_JOBS");
      env != nullptr && *env != '\0') {
    jobs = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    }
  }
  return jobs;
}

/// \brief Everything ParseDriverOptions gleans from argv/environment.
struct DriverSweepOptions {
  int jobs = 1;
  obs::MonitorOptions monitor;
};

/// Parses --jobs / --progress[=mode] / --progress-file (command line wins
/// over PDSP_JOBS / PDSP_PROGRESS / PDSP_PROGRESS_FILE). A bad progress
/// mode warns and leaves rendering off rather than aborting a long
/// benchmark over a typo'd cosmetic flag.
inline DriverSweepOptions ParseDriverOptions(int argc, char** argv) {
  DriverSweepOptions opts;
  opts.jobs = ParseJobs(argc, argv);
  std::string mode;
  bool progress_set = false;
  if (const char* env = std::getenv("PDSP_PROGRESS");
      env != nullptr && *env != '\0') {
    mode = env;
    progress_set = true;
  }
  if (const char* env = std::getenv("PDSP_PROGRESS_FILE");
      env != nullptr && *env != '\0') {
    opts.monitor.jsonl_path = env;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--progress") == 0) {
      progress_set = true;
      mode.clear();  // auto
    } else if (std::strncmp(argv[i], "--progress=", 11) == 0) {
      progress_set = true;
      mode = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--progress-file=", 16) == 0) {
      opts.monitor.jsonl_path = argv[i] + 16;
    }
  }
  if (progress_set || !opts.monitor.jsonl_path.empty()) {
    opts.monitor.enabled = true;
    if (progress_set) {
      auto render = obs::ParseRenderMode(mode, isatty(fileno(stderr)) != 0);
      if (render.ok()) {
        opts.monitor.render = *render;
      } else {
        std::fprintf(stderr, "%s; progress rendering disabled\n",
                     render.status().ToString().c_str());
      }
    }
  }
  return opts;
}

/// Runs a driver's cell grid through the sweep scheduler (with the SIGINT
/// drain handler installed) and reports the fan-out on stderr (cells ok,
/// jobs, wall seconds, monitor findings). Results come back in cell order,
/// so drivers index `sweep.cells[i]` in the same order they pushed cells.
inline exec::SweepResult RunDriverSweep(std::vector<exec::SweepCell> cells,
                                        const std::string& name,
                                        const DriverSweepOptions& opts) {
  exec::SweepOptions options;
  options.jobs = opts.jobs;
  options.name = name;
  options.monitor = opts.monitor;
  options.install_sigint = true;
  exec::SweepResult sweep = exec::RunSweep(cells, options);
  std::fprintf(stderr, "[%s] %zu/%zu cells ok, jobs=%d, wall %.2fs\n",
               name.c_str(), sweep.NumOk(), sweep.cells.size(), sweep.jobs,
               sweep.wall_s);
  if (!sweep.monitor.codes.empty()) {
    std::fprintf(stderr, "[%s] monitor: %s\n", name.c_str(),
                 Join(sweep.monitor.codes, ", ").c_str());
  }
  if (sweep.interrupted) {
    std::fprintf(stderr, "[%s] interrupted — partial results flushed\n",
                 name.c_str());
  }
  return sweep;
}

/// Back-compat shorthand: sweep with N workers, no monitoring.
inline exec::SweepResult RunDriverSweep(std::vector<exec::SweepCell> cells,
                                        const std::string& name, int jobs) {
  DriverSweepOptions opts;
  opts.jobs = jobs;
  return RunDriverSweep(std::move(cells), name, opts);
}

/// Driver exit code honoring the SIGINT convention (130 after a drain).
inline int SweepExitCode(const exec::SweepResult& sweep, int code = 0) {
  return sweep.interrupted ? 130 : code;
}

/// Formats one sweep outcome as a latency table cell ("n/a" on failure,
/// logging the failure so it is not silently swallowed into the table).
inline std::string LatencyOrNa(const exec::SweepCellOutcome& outcome) {
  if (!outcome.result.ok()) {
    std::fprintf(stderr, "cell %s: %s\n", outcome.label.c_str(),
                 outcome.result.status().ToString().c_str());
    return "n/a";
  }
  return LatencyCell(outcome.result->mean_median_latency_s);
}

}  // namespace bench
}  // namespace pdsp

#endif  // PDSP_BENCH_DRIVERS_DRIVER_UTIL_H_
