// End-to-end integration: the full PDSP-Bench workflow in one test file —
// generate a workload, execute it, persist it, reload it, autoscale it,
// build a training corpus, train a model, and predict. Each stage consumes
// the previous stage's real output.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/apps/apps.h"
#include "src/ml/datagen.h"
#include "src/ml/trainer.h"
#include "src/sim/analytic.h"
#include "src/store/run_store.h"
#include "src/workload/autoscaler.h"
#include "src/workload/query_generator.h"

namespace pdsp {
namespace {

TEST(PipelineTest, GenerateExecutePersistReloadReexecute) {
  const std::string dir = "/tmp/pdsp_pipeline_test";
  std::filesystem::remove_all(dir);
  RunStore store(dir);

  // 1. Generate a workload.
  QueryGenOptions qopt;
  qopt.fixed_event_rate = 20000.0;
  qopt.default_parallelism = 4;
  qopt.count_policy_probability = 0.0;
  qopt.window_durations_ms = {250, 500};
  qopt.max_keys = 500;
  QueryGenerator generator(qopt, 4001);
  auto plan = generator.Generate(SyntheticStructure::kFilterJoinAgg);
  ASSERT_TRUE(plan.ok());

  // 2. Execute it.
  ExecutionOptions exec;
  exec.sim.duration_s = 2.5;
  exec.sim.warmup_s = 0.5;
  const Cluster cluster = Cluster::C6525(6);
  auto run = ExecutePlan(*plan, cluster, exec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GT(run->sink_tuples, 0);

  // 3. Persist, reload, re-execute: bit-identical results.
  ASSERT_TRUE(store.SaveRun("w1", *plan, cluster, *run).ok());
  auto reloaded = store.LoadPlan("w1");
  ASSERT_TRUE(reloaded.ok());
  auto replay = ExecutePlan(*reloaded, cluster, exec);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->sink_tuples, run->sink_tuples);
  EXPECT_DOUBLE_EQ(replay->median_latency_s, run->median_latency_s);

  // 4. The stored metrics match what we measured.
  auto doc = store.LoadRun("w1");
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ((*doc)["metrics"]["latency"]["p50_s"].AsNumber(),
                   run->median_latency_s);
  std::filesystem::remove_all(dir);
}

TEST(PipelineTest, AutoscaleThenAnalyticAgreement) {
  // Autoscale a saturated app, then check the analytic model classifies the
  // final configuration as unsaturated.
  AppOptions opt;
  opt.event_rate = 120000.0;
  opt.parallelism = 1;
  opt.window_scale = 0.4;
  auto plan = MakeApp(AppId::kSpikeDetection, opt);
  ASSERT_TRUE(plan.ok());

  AutoscalerOptions scale;
  scale.execution.sim.duration_s = 2.0;
  scale.execution.sim.warmup_s = 0.5;
  scale.max_degree = 64;
  auto result = Autoscale(*plan, Cluster::M510(10), scale);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);

  LogicalPlan tuned = *plan;
  ASSERT_TRUE(ApplyParallelism(&tuned, result->final_degrees).ok());
  auto analytic = EstimateLatencyAnalytically(tuned, Cluster::M510(10));
  ASSERT_TRUE(analytic.ok());
  EXPECT_FALSE(analytic->saturated);
  EXPECT_LT(analytic->max_utilization, 1.0);
}

TEST(PipelineTest, CorpusToTrainedPredictorToNewQuery) {
  // Corpus -> train every model family -> predict an unseen query; every
  // family must produce a sane (positive, finite, sub-minute) estimate.
  DataGenOptions gen;
  gen.num_samples = 40;
  gen.seed = 4002;
  gen.query.fixed_event_rate = 10000.0;
  gen.query.count_policy_probability = 0.0;
  gen.query.window_durations_ms = {250, 500};
  gen.query.max_keys = 500;
  gen.strategy = EnumerationStrategy::kRuleBased;
  gen.enumeration.rule_jitter = 2;
  gen.execution.sim.duration_s = 1.5;
  gen.execution.sim.warmup_s = 0.4;
  const Cluster cluster = Cluster::M510(6);
  auto corpus = GenerateTrainingData(gen, cluster);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  auto split = SplitDataset(corpus->dataset, 0.7, 0.15, 3);
  ASSERT_TRUE(split.ok());

  QueryGenerator generator(gen.query, 999);
  auto unseen = generator.Generate(SyntheticStructure::kChain2Filters);
  ASSERT_TRUE(unseen.ok());
  auto sample = EncodeSample(*unseen, cluster, 1.0, 0);
  ASSERT_TRUE(sample.ok());

  TrainOptions train;
  train.max_epochs = 40;
  train.patience = 8;
  for (ModelKind kind :
       {ModelKind::kLinearRegression, ModelKind::kMlp,
        ModelKind::kRandomForest, ModelKind::kGnn,
        ModelKind::kGradientBoost}) {
    auto model = MakeModel(kind);
    auto eval = TrainAndEvaluate(model.get(), *split, train);
    ASSERT_TRUE(eval.ok()) << ModelKindToString(kind);
    auto predicted = model->PredictLatency(*sample);
    ASSERT_TRUE(predicted.ok()) << ModelKindToString(kind);
    EXPECT_GT(*predicted, 0.0) << ModelKindToString(kind);
    EXPECT_LT(*predicted, 60.0) << ModelKindToString(kind);
  }
}

}  // namespace
}  // namespace pdsp
