// pdsp::obs::diagnose — automated bottleneck diagnosis for simulated runs.
// Three layers over one completed SimResult:
//
//  1. Latency attribution: the engine-recorded LatencyBreakdown (see
//     src/runtime/element.h) says *where* end-to-end latency is spent
//     (source batching, network, queueing, service, window residency).
//  2. Critical path: the source→sink chain maximizing summed mean per-tuple
//     traversal cost (OperatorLatencyStats::MeanPathCost) says *which
//     operators* a result's latency flows through, with per-hop shares.
//  3. Rule engine: classifies *why* — saturated, skew-bound, shuffle-bound,
//     source-limited, over-provisioned, watermark-stalled — emitting
//     analysis::Diagnostics with stable PDSP-R### codes and fix hints
//     derived from the analytic queueing model (src/sim/analytic.h).
//
// See DESIGN.md "Runtime diagnosis" for the code table and rule thresholds.

#ifndef PDSP_OBS_DIAGNOSE_H_
#define PDSP_OBS_DIAGNOSE_H_

#include <string>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/cluster/cluster.h"
#include "src/common/status.h"
#include "src/query/plan.h"
#include "src/sim/analytic.h"
#include "src/sim/simulation.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {

/// \brief Rule thresholds. Defaults are deliberately conservative: a
/// well-provisioned run should produce no warnings (the ci_check smoke run
/// asserts exactly that).
struct DiagnoseOptions {
  /// R101: mean per-instance utilization at/above this is saturation.
  double saturation_util = 0.90;
  /// R102: hottest instance >= this multiple of the mean instance.
  double skew_ratio = 2.0;
  /// Parallelism fix hints aim for this per-instance utilization.
  double target_utilization = 0.60;
  /// R105: non-source/sink operators below this utilization with
  /// parallelism > 1 are flagged over-provisioned.
  double over_provision_util = 0.05;
  /// R103: network share of the end-to-end breakdown at/above this.
  double shuffle_fraction = 0.40;
  /// R106: watermark lag must grow monotonically over at least this many
  /// trailing samples and end at/above stall_min_lag_s.
  int stall_min_samples = 4;
  double stall_min_lag_s = 1.0;
  /// Queueing-model knobs for analytic cross-check and fix hints. Pass the
  /// run's cost model here so hints match what was simulated.
  AnalyticOptions analytic;
};

/// \brief One operator on the critical path.
struct CriticalPathHop {
  LogicalPlan::OpId op = -1;
  std::string name;
  /// Mean per-tuple cost of traversing this operator (queue wait +
  /// network-in + service + window residency + source batching).
  double cost_s = 0.0;
  /// cost_s as a fraction of the whole path (0 when the path is free).
  double share = 0.0;
};

/// \brief The source→sink chain with the highest summed mean traversal
/// cost — where a typical result's latency actually accrues.
struct CriticalPath {
  std::vector<CriticalPathHop> hops;  ///< source first, sink last
  double total_s = 0.0;               ///< sum of hop costs

  std::string ToString() const;  ///< "src (12%) -> join1 (74%) -> sink (14%)"
  Json ToJson() const;
};

/// Extracts the weighted critical path from per-operator latency stats.
/// Requires a validated plan whose operators match `result.op_stats`.
CriticalPath ComputeCriticalPath(const LogicalPlan& plan,
                                 const SimResult& result);

/// \brief Full diagnosis of one run.
struct Diagnosis {
  LatencyBreakdown breakdown;
  CriticalPath critical_path;
  /// PDSP-R### findings, ordered by (severity desc, op, code).
  analysis::AnalysisReport report;
  /// Analytic cross-check at the same parallelism (0/-1 when the analytic
  /// model could not run, e.g. unknown UDO cost).
  double analytic_latency_s = 0.0;
  double analytic_max_utilization = 0.0;
  LogicalPlan::OpId analytic_bottleneck_op = -1;
  /// Static property table derived by the dataflow analyses
  /// (PlanProperties::ToJson); null when the harness did not attach one.
  Json dataflow;

  /// True when any diagnostic has the given code (e.g. "PDSP-R101").
  bool HasCode(const std::string& code) const { return report.HasCode(code); }

  Json ToJson() const;
  /// Compact human summary: breakdown, critical path, findings.
  std::string ToString() const;
  /// ToString() plus per-operator component table (--explain output).
  std::string Explain(const SimResult& result) const;
};

/// Diagnoses a completed simulated run of `plan` on `cluster`. Run the
/// simulation with `SimOptions::attribute_latency` set to get the latency
/// breakdown, critical path and shuffle-bound rule; without it those
/// degrade gracefully (empty breakdown, zero-weight path, R103 skipped)
/// while the utilization/skew/source/watermark rules still apply.
Result<Diagnosis> DiagnoseRun(const LogicalPlan& plan, const Cluster& cluster,
                              const SimResult& result,
                              const DiagnoseOptions& options = {});

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_DIAGNOSE_H_
