// Minimal leveled logging to stderr. Benchmarks and the experiment harness
// print their results to stdout; logging is for diagnostics only.
//
// Thread-safe: each LogMessage call emits exactly one '\n'-terminated line
// under a global mutex, so concurrent callers never interleave. The initial
// level comes from the PDSP_LOG_LEVEL environment variable
// (debug|info|warn|error, case-insensitive, or 0..3), default Info.

#ifndef PDSP_COMMON_LOGGING_H_
#define PDSP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pdsp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level actually emitted (default: kInfo, or
/// PDSP_LOG_LEVEL if set at process start).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug"/"info"/"warn"/"warning"/"error" (any case) or "0".."3".
/// Returns false (and leaves *level untouched) for anything else.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// Emits one timestamped, level-prefixed line to stderr if `level` passes
/// the global filter.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal {

/// Stream-style collector that emits on destruction.
class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogCapture& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pdsp

#define PDSP_LOG(level)                                             \
  ::pdsp::internal::LogCapture(::pdsp::LogLevel::k##level, __FILE__, \
                               __LINE__)

#endif  // PDSP_COMMON_LOGGING_H_
