// Ablation: data partitioning strategies (Table 3: forward, rebalance,
// hash). Forward keeps a tuple on its producing instance's channel (no
// shuffle); rebalance spreads round-robin (maximum channel fan-out); hash
// routes by key. The latency cost of shuffling grows with parallelism —
// one of the mechanisms behind the paper's parallelism paradox (O2).

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/query/builder.h"

namespace pdsp {

namespace {

Result<LogicalPlan> PipelinePlan(double rate, int parallelism,
                                 Partitioning partitioning) {
  StreamSpec stream;
  (void)stream.schema.AddField({"key", DataType::kInt});
  (void)stream.schema.AddField({"val", DataType::kDouble});
  FieldGeneratorSpec key;
  key.dist = FieldDistribution::kUniformKey;
  key.cardinality = 10000;
  FieldGeneratorSpec val;
  val.dist = FieldDistribution::kUniformDouble;
  val.max = 100.0;
  stream.specs = {key, val};
  ArrivalProcess::Options arrival;
  arrival.rate = rate;

  PlanBuilder b;
  auto src = b.Source("src", stream, arrival, parallelism);
  auto m1 = b.Map("map1", src, parallelism);
  b.WithPartitioning(m1, partitioning);
  auto m2 = b.Map("map2", m1, parallelism);
  b.WithPartitioning(m2, partitioning);
  auto f = b.Filter("filter", m2, 1, FilterOp::kGt, Value(20.0), parallelism);
  b.WithPartitioning(f, partitioning);
  b.Sink("sink", f, 1);
  return b.Build();
}

}  // namespace

int Main(int argc, char** argv) {
  const bench::DriverSweepOptions opts = bench::ParseDriverOptions(argc, argv);
  const Cluster cluster = Cluster::M510(10);
  const RunProtocol protocol = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 40000.0 : 150000.0;

  const std::vector<Partitioning> partitionings = {
      Partitioning::kForward, Partitioning::kRebalance, Partitioning::kHash};

  std::vector<std::string> columns = {"parallelism"};
  for (Partitioning p : partitionings) {
    columns.push_back(StrFormat("%s(ms)", PartitioningToString(p)));
  }
  TableReporter table(
      StrFormat("Ablation: partitioning strategy vs pipeline latency "
                "(%.0fk ev/s)",
                rate / 1000.0),
      columns);

  const std::vector<int> degrees = {2, 8, 32, 64};
  std::vector<exec::SweepCell> cells;
  for (int parallelism : degrees) {
    for (Partitioning p : partitionings) {
      exec::SweepCell cell;
      cell.make_plan = [rate, parallelism, p] {
        return PipelinePlan(rate, parallelism, p);
      };
      cell.cluster = cluster;
      cell.protocol = protocol;
      cell.label = StrFormat("ablation_partitioning/%s/p%d",
                             PartitioningToString(p), parallelism);
      cells.push_back(std::move(cell));
    }
  }

  const exec::SweepResult sweep =
      bench::RunDriverSweep(std::move(cells), "ablation_partitioning", opts);

  size_t idx = 0;
  for (int parallelism : degrees) {
    std::vector<std::string> row = {StrFormat("%d", parallelism)};
    for ([[maybe_unused]] Partitioning p : partitionings) {
      row.push_back(bench::LatencyOrNa(sweep.cells[idx++]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_partitioning.csv");
  return bench::SweepExitCode(sweep);
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
