// Property tests over randomly generated plans: every plan the workload
// generator produces must satisfy the structural invariants the rest of the
// system relies on, across many seeds.

#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/features.h"
#include "src/query/cardinality.h"
#include "src/runtime/physical_plan.h"
#include "src/workload/enumerator.h"
#include "src/workload/query_generator.h"

namespace pdsp {
namespace {

class RandomPlanProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPlanProperties, GeneratedPlansSatisfyAllInvariants) {
  QueryGenerator gen(QueryGenOptions{}, GetParam());
  for (int i = 0; i < 8; ++i) {
    auto plan = gen.GenerateRandom();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    // 1. Structural validity.
    ASSERT_TRUE(plan->validated());
    EXPECT_GE(plan->NumOperators(), 3u);
    EXPECT_EQ(plan->op(plan->SinkId()).type, OperatorType::kSink);
    EXPECT_FALSE(plan->SourceIds().empty());

    // 2. Topological order is a permutation consistent with the edges.
    const auto& topo = plan->TopologicalOrder();
    ASSERT_EQ(topo.size(), plan->NumOperators());
    std::vector<int> pos(plan->NumOperators());
    for (size_t k = 0; k < topo.size(); ++k) pos[topo[k]] = static_cast<int>(k);
    for (const auto& [f, t] : plan->edges()) EXPECT_LT(pos[f], pos[t]);

    // 3. Every operator's referenced fields are inside its input schema
    //    (validated by construction; spot-check the derived schemas).
    for (size_t op = 0; op < plan->NumOperators(); ++op) {
      const auto id = static_cast<LogicalPlan::OpId>(op);
      EXPECT_GT(plan->OutputSchema(id).NumFields(), 0u)
          << plan->op(id).name;
    }

    // 4. Cardinality propagation yields finite, non-negative rates.
    auto cards = CardinalityModel::Compute(*plan);
    ASSERT_TRUE(cards.ok());
    for (const OpCardinality& c : *cards) {
      EXPECT_GE(c.output_rate, 0.0);
      EXPECT_TRUE(std::isfinite(c.output_rate));
      EXPECT_GE(c.distinct_keys, 1.0);
      EXPECT_GT(c.tuple_bytes, 0.0);
    }

    // 5. Physical expansion covers exactly TotalParallelism tasks and every
    //    channel group references valid operators.
    auto phys = PhysicalPlan::FromLogical(&*plan);
    ASSERT_TRUE(phys.ok());
    EXPECT_EQ(phys->NumTasks(),
              static_cast<size_t>(plan->TotalParallelism()));
    for (const ChannelGroup& g : phys->channels()) {
      EXPECT_LT(g.from_op, static_cast<int>(plan->NumOperators()));
      EXPECT_LT(g.to_op, static_cast<int>(plan->NumOperators()));
      EXPECT_GE(g.input_port, 0);
      EXPECT_LE(g.input_port, 1);
    }

    // 6. Both feature encodings succeed with the documented dimensions.
    auto flat = EncodeFlat(*plan, Cluster::M510(4));
    ASSERT_TRUE(flat.ok());
    EXPECT_EQ(flat->size(), kFlatFeatureDim);
    for (double v : *flat) EXPECT_TRUE(std::isfinite(v));
    auto graph = EncodeGraph(*plan, Cluster::M510(4));
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(graph->node_features.size(), plan->NumOperators());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

class EnumeratorProperties
    : public ::testing::TestWithParam<EnumerationStrategy> {};

TEST_P(EnumeratorProperties, AssignmentsAlwaysApplicable) {
  QueryGenerator gen(QueryGenOptions{}, 4242);
  Rng rng(17);
  for (int i = 0; i < 6; ++i) {
    auto plan = gen.GenerateRandom();
    ASSERT_TRUE(plan.ok());
    EnumerationOptions opt;
    opt.max_degree = 16;
    opt.num_assignments = 4;
    opt.exhaustive_limit = 32;
    opt.parameter_degrees = {4};
    auto assignments = EnumerateParallelism(*plan, GetParam(), opt, &rng);
    ASSERT_TRUE(assignments.ok()) << assignments.status().ToString();
    ASSERT_FALSE(assignments->empty());
    for (const ParallelismAssignment& a : *assignments) {
      LogicalPlan copy = *plan;
      ASSERT_TRUE(ApplyParallelism(&copy, a).ok());
      EXPECT_TRUE(copy.validated());
      for (size_t op = 0; op < copy.NumOperators(); ++op) {
        const auto& desc = copy.op(static_cast<LogicalPlan::OpId>(op));
        EXPECT_GE(desc.parallelism, 1);
        EXPECT_LE(desc.parallelism, 16);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, EnumeratorProperties,
    ::testing::Values(EnumerationStrategy::kRandom,
                      EnumerationStrategy::kRuleBased,
                      EnumerationStrategy::kExhaustive,
                      EnumerationStrategy::kMinAvgMax,
                      EnumerationStrategy::kIncreasing,
                      EnumerationStrategy::kParameterBased));

}  // namespace
}  // namespace pdsp
