// Feature encodings of (parallel query plan, cluster) pairs for the learned
// cost models (Section 4.3): a fixed-length flat vector for LR / MLP /
// random forest, and a per-operator DAG encoding for the GNN, which treats
// operators as nodes and dataflow edges as edges [2].

#ifndef PDSP_ML_FEATURES_H_
#define PDSP_ML_FEATURES_H_

#include <utility>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/status.h"
#include "src/ml/linalg.h"
#include "src/query/plan.h"

namespace pdsp {

/// Flat feature vector length (EncodeFlat output).
constexpr size_t kFlatFeatureDim = 35;

/// Indices of EncodeFlat entries that come from the cardinality model
/// (estimated rates, key counts, per-instance utilization) rather than from
/// raw plan structure. Feature ablations zero these to measure how much the
/// flat models rely on the built-in analytic "oracle" — the advantage that,
/// in the paper's setting, only the GNN can recover from plan structure.
constexpr size_t kFlatDerivedFeatureIndices[] = {22, 23, 24, 25, 31, 32};
/// Per-node feature vector length (EncodeGraph output).
constexpr size_t kNodeFeatureDim = 23;

/// \brief DAG encoding: one feature vector per operator plus the edge list
/// (operator-id indices, upstream -> downstream).
struct GraphSample {
  std::vector<Vector> node_features;
  std::vector<std::pair<int, int>> edges;
  /// Index of the sink node (readout anchor).
  int sink = 0;
};

/// \brief One labeled training example.
struct PlanSample {
  Vector flat;
  GraphSample graph;
  /// Label: measured end-to-end median latency (seconds).
  double latency_s = 0.0;
  /// Query-structure tag for seen/unseen generalization splits.
  int structure_tag = 0;
};

/// \brief A labeled corpus.
struct Dataset {
  std::vector<PlanSample> samples;

  size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }
};

/// Encodes plan + cluster into the flat vector (kFlatFeatureDim entries).
Result<Vector> EncodeFlat(const LogicalPlan& plan, const Cluster& cluster);

/// Encodes plan + cluster into the DAG form.
Result<GraphSample> EncodeGraph(const LogicalPlan& plan,
                                const Cluster& cluster);

/// Builds a full sample (both encodings) with the given label and tag.
Result<PlanSample> EncodeSample(const LogicalPlan& plan,
                                const Cluster& cluster, double latency_s,
                                int structure_tag);

}  // namespace pdsp

#endif  // PDSP_ML_FEATURES_H_
