// Learned cost model interface (Section 4.3). PDSP-Bench's ML Manager
// trains heterogeneous model families on the same benchmark-generated data
// and compares them with consistent metrics; the four architectures from the
// paper — linear regression [23], MLP [30], random forest [16] and a DAG
// GNN [62, 2, 26] — implement this interface.

#ifndef PDSP_ML_MODEL_H_
#define PDSP_ML_MODEL_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/ml/features.h"

namespace pdsp {

/// The four model families of Figure 5.
enum class ModelKind {
  kLinearRegression = 0,
  kMlp,
  kRandomForest,
  kGnn,
  /// Extension beyond the paper's four families.
  kGradientBoost,
};

const char* ModelKindToString(ModelKind kind);

/// \brief Shared training hyperparameters. Early stopping (patience on the
/// validation loss) is applied uniformly across models, as in the paper.
struct TrainOptions {
  int max_epochs = 400;
  /// Early stopping: halt when the validation loss has not improved for
  /// this many consecutive epochs.
  int patience = 15;
  double learning_rate = 3e-3;
  int batch_size = 16;
  uint64_t seed = 1;

  // Linear regression.
  double ridge = 1e-2;

  // MLP.
  std::vector<int> mlp_hidden = {64, 32};

  // Random forest ("epochs" = trees; early stopping adds trees until the
  // validation loss stalls).
  int rf_max_trees = 100;
  int rf_max_depth = 12;
  int rf_min_leaf = 3;
  double rf_feature_fraction = 0.6;

  // GNN.
  int gnn_hidden = 32;
  int gnn_rounds = 2;

  // Gradient-boosted trees (extension model).
  int gbt_max_trees = 300;
  int gbt_max_depth = 4;
  double gbt_learning_rate = 0.1;
  double gbt_subsample = 0.8;
};

/// \brief What happened during a Fit call.
struct TrainReport {
  int epochs_run = 0;
  bool early_stopped = false;
  double train_seconds = 0.0;   ///< wall-clock spent in Fit
  double final_val_loss = 0.0;  ///< best validation MSE (log-latency space)
};

/// \brief A trainable latency predictor. Models internally regress
/// log(latency) and expose predictions in seconds.
class LearnedCostModel {
 public:
  virtual ~LearnedCostModel() = default;

  virtual const char* name() const = 0;
  virtual ModelKind kind() const = 0;

  /// Trains on `train`, early-stopping on `val`. Re-fitting resets state.
  virtual Result<TrainReport> Fit(const Dataset& train, const Dataset& val,
                                  const TrainOptions& options) = 0;

  /// Predicted end-to-end latency in seconds. Fails before Fit.
  virtual Result<double> PredictLatency(const PlanSample& sample) const = 0;
};

/// Factory for the four families.
std::unique_ptr<LearnedCostModel> MakeModel(ModelKind kind);

/// \brief Per-feature standardization fitted on training data (mean/std),
/// shared by the flat-feature models.
class Standardizer {
 public:
  /// Fits means and stds over the flat features of `data`.
  void Fit(const Dataset& data);

  /// Standardizes a feature vector (no-op before Fit).
  Vector Apply(const Vector& x) const;

  bool fitted() const { return !mean_.empty(); }

 private:
  Vector mean_;
  Vector inv_std_;
};

}  // namespace pdsp

#endif  // PDSP_ML_MODEL_H_
