// File-based run store: persists workloads (plans) and their measured
// results as JSON documents in a directory — the offline counterpart of
// PDSP-Bench's MongoDB storage, enabling "generate once, train/inspect
// later" workflows across sessions.

#ifndef PDSP_STORE_RUN_STORE_H_
#define PDSP_STORE_RUN_STORE_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/query/plan.h"
#include "src/sim/simulation.h"
#include "src/store/json.h"

namespace pdsp {

/// \brief Directory of `<id>.json` run documents, each holding the plan,
/// a cluster summary and the measured metrics.
class RunStore {
 public:
  /// Creates the directory if needed.
  explicit RunStore(std::string directory);

  /// Persists a run. Ids must be non-empty, `/`-free, and unique (saving an
  /// existing id overwrites).
  Status SaveRun(const std::string& id, const LogicalPlan& plan,
                 const Cluster& cluster, const SimResult& result);

  /// Loads the raw document.
  Result<Json> LoadRun(const std::string& id) const;

  /// Reconstructs just the plan of a stored run (validated).
  Result<LogicalPlan> LoadPlan(const std::string& id) const;

  /// Sorted ids of all stored runs.
  Result<std::vector<std::string>> ListRuns() const;

  /// Deletes a stored run.
  Status DeleteRun(const std::string& id);

  const std::string& directory() const { return directory_; }

 private:
  Result<std::string> PathFor(const std::string& id) const;

  std::string directory_;
};

}  // namespace pdsp

#endif  // PDSP_STORE_RUN_STORE_H_
