#!/usr/bin/env bash
# The full CI gate: configure, build, run the test suite, statically analyze
# every canonical plan, and lint.
#
# Usage: tools/ci_check.sh [build-dir]
#   build-dir defaults to ./build.
#
# Environment:
#   PDSP_SANITIZE   forwarded to CMake (e.g. "address;undefined") to run the
#                   whole gate under ASan/UBSan. Changing it reconfigures the
#                   build tree.
#   JOBS            parallel build jobs (default: nproc).

set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
SANITIZE="${PDSP_SANITIZE:-}"

step() { echo; echo "=== ci_check: $* ==="; }

step "configure ($BUILD_DIR${SANITIZE:+, sanitize=$SANITIZE})"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPDSP_SANITIZE="$SANITIZE"

step "build (-j$JOBS)"
cmake --build "$BUILD_DIR" -j "$JOBS"

step "ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

step "static plan analysis (pdspbench analyze all)"
"$BUILD_DIR/tools/pdspbench" analyze all

step "lint (tools/lint.sh)"
tools/lint.sh "$BUILD_DIR"

step "OK"
