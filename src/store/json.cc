#include "src/store/json.h"

#include <cctype>
#include <cstring>
#include <cmath>
#include <cstdio>

#include "src/common/string_util.h"

namespace pdsp {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json& Json::operator[](const std::string& key) const {
  static const Json* kNull = new Json();
  auto it = object_.find(key);
  return it == object_.end() ? *kNull : it->second;
}

Result<double> Json::GetNumber(const std::string& key) const {
  const Json& v = (*this)[key];
  if (!v.is_number()) return Status::NotFound("missing number '" + key + "'");
  return v.AsNumber();
}

Result<int64_t> Json::GetInt(const std::string& key) const {
  PDSP_ASSIGN_OR_RETURN(double v, GetNumber(key));
  return static_cast<int64_t>(v);
}

Result<std::string> Json::GetString(const std::string& key) const {
  const Json& v = (*this)[key];
  if (!v.is_string()) return Status::NotFound("missing string '" + key + "'");
  return v.AsString();
}

Result<bool> Json::GetBool(const std::string& key) const {
  const Json& v = (*this)[key];
  if (!v.is_bool()) return Status::NotFound("missing bool '" + key + "'");
  return v.AsBool();
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (c < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void NumberInto(double v, std::string* out) {
  if (std::isnan(v) || std::isinf(v)) {
    *out += "null";  // JSON has no NaN/Inf
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    *out += StrFormat("%lld", static_cast<long long>(v));
  } else {
    *out += StrFormat("%.17g", v);
  }
}

void Newline(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      NumberInto(number_, out);
      break;
    case Type::kString:
      EscapeInto(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Newline(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        Newline(out, indent, depth + 1);
        EscapeInto(key, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        value.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) Newline(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    PDSP_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("json parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    SkipWs();
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (depth_ > 256) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      PDSP_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (ConsumeWord("true")) return Json::Bool(true);
    if (ConsumeWord("false")) return Json::Bool(false);
    if (ConsumeWord("null")) return Json::Null();
    return ParseNumber();
  }

  Result<Json> ParseObject() {
    ++depth_;
    if (!Consume('{')) return Err("expected '{'");
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) {
      --depth_;
      return obj;
    }
    for (;;) {
      PDSP_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Err("expected ':'");
      PDSP_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(key, std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Err("expected ',' or '}'");
    }
    --depth_;
    return obj;
  }

  Result<Json> ParseArray() {
    ++depth_;
    if (!Consume('[')) return Err("expected '['");
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) {
      --depth_;
      return arr;
    }
    for (;;) {
      PDSP_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Append(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Err("expected ',' or ']'");
    }
    --depth_;
    return arr;
  }

  Result<std::string> ParseString() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Err("expected string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Err("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad hex digit");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseNumber() {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      any = true;
      ++pos_;
    }
    if (!any) return Err("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("bad number");
    return Json::Number(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace pdsp
