#include "src/analysis/properties.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/string_util.h"
#include "src/data/generator.h"
#include "src/query/selectivity.h"
#include "src/runtime/udo.h"

namespace pdsp {
namespace analysis {

namespace {

using OpId = LogicalPlan::OpId;

// Widening applied where the model *estimates* instead of proves: derived
// filter selectivities (CDF inversion of the generator distribution),
// selectivity hints, flatmap fanouts and window fire rates (key-presence
// math) are expectations, so their intervals get a multiplicative margin.
// Tuned against simulator-observed rates across all fourteen applications
// by tests/property/dataflow_property_test.cc.
constexpr double kEstimateLo = 0.70, kEstimateHi = 1.30;
constexpr double kWindowLo = 0.20, kWindowHi = 2.50;
constexpr double kJoinLo = 0.20, kJoinHi = 3.00;
// Amplifying UDOs (declared fanout > 1) emit a data-dependent number of
// tuples per input (e.g. words per sentence); allow this much headroom
// over the declared mean.
constexpr double kUdoFanoutHi = 1.50;

// --- constant refinement --------------------------------------------------

// Per-output-field knowledge: where the value was produced (provenance,
// the anchor partitioning proofs compare) and, when the generator
// distribution is bounded, a closed numeric interval the value must lie in.
struct FieldFact {
  OpId origin_op = -1;  ///< -1: provenance unknown (derived/rewritten value)
  size_t origin_field = 0;
  bool range_known = false;
  double lo = 0.0;
  double hi = 0.0;

  bool operator==(const FieldFact& o) const {
    return origin_op == o.origin_op && origin_field == o.origin_field &&
           range_known == o.range_known && lo == o.lo && hi == o.hi;
  }
};

struct RefineFact {
  bool reached = false;
  std::vector<FieldFact> fields;

  bool operator==(const RefineFact& o) const {
    return reached == o.reached && fields == o.fields;
  }
};

// Outcome of pushing one filter predicate through a value interval.
struct PredicateOutcome {
  bool always_false = false;
  bool always_true = false;
  FieldFact narrowed;  ///< post-filter fact for the tested field
};

PredicateOutcome ApplyPredicate(const FieldFact& fact, FilterOp op,
                                const Value& literal) {
  PredicateOutcome r;
  r.narrowed = fact;
  if (!fact.range_known || literal.is_string()) return r;
  const double v = literal.AsNumeric();
  switch (op) {
    case FilterOp::kLt:
      r.always_false = fact.lo >= v;
      r.always_true = fact.hi < v;
      r.narrowed.hi = std::min(fact.hi, v);
      break;
    case FilterOp::kLe:
      r.always_false = fact.lo > v;
      r.always_true = fact.hi <= v;
      r.narrowed.hi = std::min(fact.hi, v);
      break;
    case FilterOp::kGt:
      r.always_false = fact.hi <= v;
      r.always_true = fact.lo > v;
      r.narrowed.lo = std::max(fact.lo, v);
      break;
    case FilterOp::kGe:
      r.always_false = fact.hi < v;
      r.always_true = fact.lo >= v;
      r.narrowed.lo = std::max(fact.lo, v);
      break;
    case FilterOp::kEq:
      r.always_false = v < fact.lo || v > fact.hi;
      r.always_true = fact.lo == fact.hi && fact.lo == v;
      r.narrowed.lo = r.narrowed.hi = v;
      break;
    case FilterOp::kNe:
      r.always_false = fact.lo == fact.hi && fact.lo == v;
      r.always_true = v < fact.lo || v > fact.hi;
      break;
  }
  if (r.always_false) {
    // Empty set: keep an empty-looking interval so downstream narrowing
    // stays consistent (the rate analysis zeroes the stream anyway).
    r.narrowed.lo = 1.0;
    r.narrowed.hi = 0.0;
    r.narrowed.range_known = false;
  }
  return r;
}

FieldFact SourceFieldFact(OpId op, size_t field,
                          const FieldGeneratorSpec& spec) {
  FieldFact f;
  f.origin_op = op;
  f.origin_field = field;
  switch (spec.dist) {
    case FieldDistribution::kUniformInt:
    case FieldDistribution::kUniformDouble:
      f.range_known = true;
      f.lo = std::min(spec.min, spec.max);
      f.hi = std::max(spec.min, spec.max);
      break;
    case FieldDistribution::kZipfKey:
    case FieldDistribution::kUniformKey:
      // Key generators draw from [1, cardinality].
      f.range_known = true;
      f.lo = 1.0;
      f.hi = static_cast<double>(std::max<int64_t>(1, spec.cardinality));
      break;
    default:
      // Normal/sequence are unbounded; strings carry no numeric range.
      break;
  }
  return f;
}

FieldFact MergeFieldFacts(const FieldFact& a, const FieldFact& b) {
  FieldFact m;
  if (a.origin_op == b.origin_op && a.origin_field == b.origin_field) {
    m.origin_op = a.origin_op;
    m.origin_field = a.origin_field;
  }
  if (a.range_known && b.range_known) {
    m.range_known = true;
    m.lo = std::min(a.lo, b.lo);
    m.hi = std::max(a.hi, b.hi);
  }
  return m;
}

class RefinementAnalysis : public DataflowAnalysis<RefineFact> {
 public:
  const char* name() const override { return "constant-refinement"; }
  RefineFact Bottom() const override { return {}; }

  RefineFact Boundary(const AnalysisContext& ctx, OpId op) const override {
    RefineFact f;
    f.reached = true;
    const OperatorDescriptor& d = ctx.op(op);
    if (d.type != OperatorType::kSource) return f;
    const auto& sources = ctx.plan->sources();
    if (d.source_index < 0 ||
        static_cast<size_t>(d.source_index) >= sources.size()) {
      return f;
    }
    const auto& specs = sources[d.source_index].stream.specs;
    f.fields.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      f.fields.push_back(SourceFieldFact(op, i, specs[i]));
    }
    return f;
  }

  RefineFact Combine(const AnalysisContext& ctx, OpId op,
                     const std::vector<RefineFact>& edge_facts) const override {
    // Window joins are the one multi-port operator: their edge facts are
    // *concatenated* in port order (left block then right block, matching
    // the derived l_/r_ schema), not lattice-joined.
    if (ctx.op(op).type == OperatorType::kWindowJoin &&
        edge_facts.size() == 2) {
      RefineFact f;
      f.reached = edge_facts[0].reached || edge_facts[1].reached;
      if (edge_facts[0].reached && edge_facts[1].reached) {
        f.fields = edge_facts[0].fields;
        f.fields.insert(f.fields.end(), edge_facts[1].fields.begin(),
                        edge_facts[1].fields.end());
      }
      return f;
    }
    // Same-port fan-in (multi-input sink): pairwise merge, permutation
    // invariant. Arity disagreement degrades to "reached, nothing known".
    RefineFact merged;
    for (const RefineFact& f : edge_facts) {
      if (!f.reached) continue;
      if (!merged.reached) {
        merged = f;
        continue;
      }
      if (merged.fields.size() != f.fields.size()) {
        merged.fields.clear();
        continue;
      }
      for (size_t i = 0; i < f.fields.size(); ++i) {
        merged.fields[i] = MergeFieldFacts(merged.fields[i], f.fields[i]);
      }
    }
    return merged;
  }

  RefineFact Transfer(const AnalysisContext& ctx, OpId op,
                      const RefineFact& in) const override {
    const OperatorDescriptor& d = ctx.op(op);
    RefineFact out = in;
    if (!in.reached && d.type != OperatorType::kSource) return out;
    out.reached = true;
    switch (d.type) {
      case OperatorType::kSource:
        // Boundary already built the fact; sources have no predecessors.
        return in;
      case OperatorType::kFilter: {
        if (d.filter_field < out.fields.size()) {
          const PredicateOutcome p = ApplyPredicate(
              out.fields[d.filter_field], d.filter_op, d.filter_literal);
          out.fields[d.filter_field] = p.narrowed;
        }
        return out;
      }
      case OperatorType::kMap:
      case OperatorType::kFlatMap:
      case OperatorType::kSink:
        // Values pass through verbatim (MapExec/FlatMapExec copy tuples).
        return out;
      case OperatorType::kUdo:
        // UDOs may rewrite any field; only arity survives. A kind-aware
        // refinement could do better, but soundness beats precision here.
        for (FieldFact& f : out.fields) f = FieldFact{};
        if (!d.udo_output_fields.empty()) {
          out.fields.assign(d.udo_output_fields.size(), FieldFact{});
        }
        return out;
      case OperatorType::kWindowAggregate: {
        RefineFact agg;
        agg.reached = true;
        const bool keyed = d.key_field != OperatorDescriptor::kNoKey;
        if (keyed) {
          agg.fields.push_back(d.key_field < in.fields.size()
                                   ? in.fields[d.key_field]
                                   : FieldFact{});
        }
        FieldFact value;  // the aggregate column
        if ((d.agg_fn == AggregateFn::kMin || d.agg_fn == AggregateFn::kMax ||
             d.agg_fn == AggregateFn::kAvg ||
             d.agg_fn == AggregateFn::kMean) &&
            d.agg_field < in.fields.size() &&
            in.fields[d.agg_field].range_known) {
          // min/max/avg of values in [lo,hi] stays in [lo,hi]; sums don't.
          value.range_known = true;
          value.lo = in.fields[d.agg_field].lo;
          value.hi = in.fields[d.agg_field].hi;
        }
        agg.fields.push_back(value);
        return agg;
      }
      case OperatorType::kWindowJoin:
        // Combine already concatenated the port blocks.
        return out;
    }
    return out;
  }

  bool Equal(const RefineFact& a, const RefineFact& b) const override {
    return a == b;
  }

  bool Leq(const RefineFact& a, const RefineFact& b) const override {
    // Precision may only be *lost* on recomputation: unreached -> reached,
    // known origin -> unknown, ranges widen. Lenient where incomparable —
    // the check exists to catch blatant oscillation, not to re-prove the
    // lattice.
    if (!a.reached) return true;
    if (!b.reached) return false;
    if (a.fields.size() != b.fields.size()) return true;
    for (size_t i = 0; i < a.fields.size(); ++i) {
      const FieldFact& x = a.fields[i];
      const FieldFact& y = b.fields[i];
      if (y.range_known && x.range_known && (y.lo > x.lo || y.hi < x.hi)) {
        return false;  // range narrowed: moved down the lattice
      }
      if (y.range_known && !x.range_known) return false;
    }
    return true;
  }
};

// --- rate intervals -------------------------------------------------------

// in-fact: one interval per input edge (port order); out-fact: one entry,
// the operator's emitted rate.
struct RateFact {
  std::vector<RateInterval> edges;

  bool operator==(const RateFact& o) const { return edges == o.edges; }
};

RateInterval Sum(const std::vector<RateInterval>& edges) {
  RateInterval total;
  for (const RateInterval& e : edges) {
    total.lo += e.lo;
    total.hi += e.hi;
  }
  return total;
}

RateInterval Scale(const RateInterval& r, double flo, double fhi) {
  return {r.lo * flo, r.hi * fhi};
}

class RateAnalysis : public DataflowAnalysis<RateFact> {
 public:
  explicit RateAnalysis(const DataflowResult<RefineFact>* refinement)
      : refinement_(refinement) {}

  const char* name() const override { return "rate-interval"; }
  RateFact Bottom() const override { return {}; }

  RateFact Boundary(const AnalysisContext&, OpId) const override {
    return {};
  }

  RateFact Combine(const AnalysisContext&, OpId,
                   const std::vector<RateFact>& edge_facts) const override {
    RateFact in;
    in.edges.reserve(edge_facts.size());
    for (const RateFact& f : edge_facts) {
      in.edges.push_back(f.edges.empty() ? RateInterval{} : f.edges[0]);
    }
    return in;
  }

  RateFact Transfer(const AnalysisContext& ctx, OpId op,
                    const RateFact& in) const override {
    const OperatorDescriptor& d = ctx.op(op);
    const RateInterval total = Sum(in.edges);
    RateFact out;
    out.edges.push_back(OutputRate(ctx, op, d, in, total));
    return out;
  }

  bool Equal(const RateFact& a, const RateFact& b) const override {
    return a == b;
  }

  bool Leq(const RateFact& a, const RateFact& b) const override {
    // Widening order: intervals may only grow.
    if (a.edges.empty()) return true;
    if (a.edges.size() != b.edges.size()) return true;
    for (size_t i = 0; i < a.edges.size(); ++i) {
      if (b.edges[i].lo > a.edges[i].lo || b.edges[i].hi < a.edges[i].hi) {
        return false;
      }
    }
    return true;
  }

  /// The pass-fraction interval used for this operator (recomputed, cheap).
  RateInterval Selectivity(const AnalysisContext& ctx, OpId op) const {
    const OperatorDescriptor& d = ctx.op(op);
    if (d.type == OperatorType::kFilter) return FilterSelectivity(ctx, op, d);
    if (d.type == OperatorType::kFlatMap) {
      // The fanout is a per-tuple mean, not a bound.
      const double f = std::max(0.0, d.flatmap_fanout);
      return {f * kEstimateLo, f * kEstimateHi};
    }
    if (d.type == OperatorType::kUdo) {
      // A UDO's declared selectivity is a cost-model hint, not a contract:
      // the app suite's UDOs pass anywhere from 0.1% (fraud scoring) to 4x
      // the declared fraction of their input. Nothing below pass-through
      // (or, for amplifying UDOs, the widened declared fanout) is provable,
      // and the floor is genuinely zero.
      const double s = std::max(0.0, d.udo_selectivity);
      return {0.0, s <= 1.0 ? 1.0 : s * kUdoFanoutHi};
    }
    return {1.0, 1.0};
  }

 private:
  RateInterval FilterSelectivity(const AnalysisContext& ctx, OpId op,
                                 const OperatorDescriptor& d) const {
    // Constant refinement trumps everything: a proven always-false filter
    // passes nothing no matter what the hint claims.
    if (refinement_ != nullptr && refinement_->stats.ok() &&
        static_cast<size_t>(op) < refinement_->in.size()) {
      const RefineFact& in = refinement_->in[op];
      if (d.filter_field < in.fields.size()) {
        const PredicateOutcome p = ApplyPredicate(in.fields[d.filter_field],
                                                  d.filter_op,
                                                  d.filter_literal);
        if (p.always_false) return {0.0, 0.0};
        if (p.always_true) return {1.0, 1.0};
      }
    }
    if (d.selectivity_hint >= 0.0) {
      // Hints are estimates supplied by plan generators, not proofs.
      const double s = std::clamp(d.selectivity_hint, 0.0, 1.0);
      return {std::clamp(s * kEstimateLo, 0.0, 1.0),
              std::clamp(s * kEstimateHi, 0.0, 1.0)};
    }
    const auto& inputs = ctx.inputs[op];
    if (!inputs.empty()) {
      auto spec = ResolveFieldSpec(*ctx.plan, inputs[0], d.filter_field);
      if (spec.ok()) {
        auto est =
            EstimateFilterSelectivity(*spec, d.filter_op, d.filter_literal);
        if (est.ok()) {
          return {std::clamp(*est * kEstimateLo, 0.0, 1.0),
                  std::clamp(*est * kEstimateHi, 0.0, 1.0)};
        }
      }
    }
    return {0.0, 1.0};  // nothing provable
  }

  /// Provable distinct-value count of a field, `fallback` when the field's
  /// generator cannot be resolved (e.g. produced by a UDO). Callers that
  /// need an upper bound pass infinity; the join-selectivity estimate keeps
  /// a finite default (CardinalityModel::kDefaultDistinctKeys).
  double DistinctKeys(const AnalysisContext& ctx, OpId input, size_t field,
                      double fallback = 1000.0) const {
    auto spec = ResolveFieldSpec(*ctx.plan, input, field);
    if (!spec.ok()) return fallback;
    switch (spec->dist) {
      case FieldDistribution::kZipfKey:
      case FieldDistribution::kUniformKey:
      case FieldDistribution::kWordString:
        return static_cast<double>(spec->cardinality);
      case FieldDistribution::kUniformInt:
        return std::max(1.0, spec->max - spec->min + 1.0);
      default:
        return fallback;
    }
  }

  RateInterval OutputRate(const AnalysisContext& ctx, OpId op,
                          const OperatorDescriptor& d, const RateFact& in,
                          const RateInterval& total) const {
    switch (d.type) {
      case OperatorType::kSource: {
        const auto& sources = ctx.plan->sources();
        if (d.source_index < 0 ||
            static_cast<size_t>(d.source_index) >= sources.size()) {
          return {};
        }
        const auto& arrival = sources[d.source_index].arrival;
        const double r = std::max(0.0, arrival.rate);
        if (arrival.kind == ArrivalKind::kBursty) {
          // Long-run mean is `rate`; burst windows sustain peak_factor x.
          return {r, r * std::max(1.0, arrival.peak_factor)};
        }
        return {r, r};
      }
      case OperatorType::kFilter:
      case OperatorType::kFlatMap:
      case OperatorType::kUdo: {
        const RateInterval s = Selectivity(ctx, op);
        return Scale(total, s.lo, s.hi);
      }
      case OperatorType::kMap:
      case OperatorType::kSink:
        return total;
      case OperatorType::kWindowAggregate: {
        if (d.window.policy == WindowPolicy::kCount) {
          const double slide = static_cast<double>(
              std::max<int64_t>(1, d.window.SlideTuples()));
          // Every input tuple advances exactly its key's pane; fire rate is
          // input/slide once panes are warm. Warmup (length_tuples per key)
          // can hold the observed rate below that, hence the wide floor.
          return Scale({total.lo / slide, total.hi / slide}, kWindowLo,
                       kWindowHi);
        }
        const double slide = std::max(1e-6, d.window.SlideSeconds());
        double keys = 1.0;
        const bool keyed = d.key_field != OperatorDescriptor::kNoKey;
        if (keyed && !ctx.inputs[op].empty()) {
          // Unknown key cardinality (e.g. UDO-produced keys) means fires
          // are bounded only by the tuples-per-window cap below.
          keys = DistinctKeys(ctx, ctx.inputs[op][0], d.key_field,
                              std::numeric_limits<double>::infinity());
        }
        const auto fire = [&](double rate_in) {
          const double in_window = rate_in * d.window.DurationSeconds();
          const double keys_eff = std::min(keys, std::max(1.0, in_window));
          return keys_eff / slide;
        };
        return {fire(total.lo) * kWindowLo, fire(total.hi) * kWindowHi};
      }
      case OperatorType::kWindowJoin: {
        const RateInterval l =
            in.edges.size() > 0 ? in.edges[0] : RateInterval{};
        const RateInterval r =
            in.edges.size() > 1 ? in.edges[1] : RateInterval{};
        double sel;
        if (d.join_selectivity_hint >= 0.0) {
          sel = d.join_selectivity_hint;
        } else if (ctx.inputs[op].size() >= 2) {
          auto spec_l =
              ResolveFieldSpec(*ctx.plan, ctx.inputs[op][0], d.join_left_key);
          auto spec_r =
              ResolveFieldSpec(*ctx.plan, ctx.inputs[op][1], d.join_right_key);
          if (spec_l.ok() && spec_r.ok()) {
            sel = KeyMatchProbability(*spec_l, *spec_r);
          } else {
            const double keys =
                std::max(1.0, std::max(DistinctKeys(ctx, ctx.inputs[op][0],
                                                    d.join_left_key),
                                       DistinctKeys(ctx, ctx.inputs[op][1],
                                                    d.join_right_key)));
            sel = 1.0 / keys;
          }
        } else {
          sel = 0.001;
        }
        const auto probe = [&](double rl, double rr) {
          double wl, wr;
          if (d.window.policy == WindowPolicy::kTime) {
            wl = rl * d.window.DurationSeconds();
            wr = rr * d.window.DurationSeconds();
          } else {
            wl = wr = static_cast<double>(d.window.length_tuples);
          }
          return rl * wr * sel + rr * wl * sel;
        };
        return {probe(l.lo, r.lo) * kJoinLo, probe(l.hi, r.hi) * kJoinHi};
      }
    }
    return total;
  }

  const DataflowResult<RefineFact>* refinement_;
};

// --- partitioning ---------------------------------------------------------

class PartitioningAnalysis : public DataflowAnalysis<PartitionFact> {
 public:
  explicit PartitioningAnalysis(const DataflowResult<RefineFact>* refinement)
      : refinement_(refinement) {}

  const char* name() const override { return "partitioning"; }
  PartitionFact Bottom() const override { return {}; }

  PartitionFact Boundary(const AnalysisContext&, OpId) const override {
    return {};  // sources receive nothing
  }

  PartitionFact Combine(
      const AnalysisContext& ctx, OpId op,
      const std::vector<PartitionFact>& edge_facts) const override {
    const OperatorDescriptor& d = ctx.op(op);
    const auto& preds = ctx.inputs[op];

    // A window join whose both ports arrive hashed on their port keys at
    // the consumer's degree is co-partitioned: its received stream (and
    // the matches it emits) are placed by the shared key value.
    if (d.type == OperatorType::kWindowJoin && edge_facts.size() == 2 &&
        preds.size() == 2) {
      const PartitionFact l = Routed(ctx, op, preds[0], 0, edge_facts[0]);
      const PartitionFact r = Routed(ctx, op, preds[1], 1, edge_facts[1]);
      if (l.kind == PartitionFact::Kind::kHashed &&
          r.kind == PartitionFact::Kind::kHashed && l.degree == r.degree) {
        return l;  // anchor on the left key's provenance
      }
      return Join(l, r);
    }

    PartitionFact joined;
    for (size_t i = 0; i < edge_facts.size() && i < preds.size(); ++i) {
      joined = Join(joined, Routed(ctx, op, preds[i], static_cast<int>(i),
                                   edge_facts[i]));
    }
    return joined;
  }

  PartitionFact Transfer(const AnalysisContext& ctx, OpId op,
                         const PartitionFact& in) const override {
    const OperatorDescriptor& d = ctx.op(op);
    switch (d.type) {
      case OperatorType::kSource:
        if (d.parallelism <= 1) {
          PartitionFact f;
          f.kind = PartitionFact::Kind::kSingleton;
          return f;
        }
        return Arbitrary();
      case OperatorType::kFilter:
      case OperatorType::kMap:
      case OperatorType::kFlatMap:
      case OperatorType::kUdo:
      case OperatorType::kSink:
        // Per-instance processing: placement is untouched, and the hashed
        // claim anchors on value *provenance*, which rewriting fields
        // cannot retroactively break.
        return in;
      case OperatorType::kWindowAggregate: {
        if (d.key_field == OperatorDescriptor::kNoKey) {
          return d.parallelism <= 1 ? Singleton() : Arbitrary();
        }
        // Keyed panes emit from the instance that owns the key: the output
        // stays placed exactly like the input — but the claim is only
        // provable when the placement key *is* the grouping key.
        if (in.kind == PartitionFact::Kind::kSingleton) return in;
        if (in.kind == PartitionFact::Kind::kHashed) {
          const FieldFact key = InputFieldFact(op, d.key_field);
          if (key.origin_op >= 0 && key.origin_op == in.key_origin_op &&
              key.origin_field == in.key_origin_field) {
            return in;
          }
        }
        return Arbitrary();
      }
      case OperatorType::kWindowJoin:
        // Combine already derived the co-partitioned placement (or gave
        // up); matches are emitted where the key lives.
        return in;
    }
    return Arbitrary();
  }

  bool Equal(const PartitionFact& a, const PartitionFact& b) const override {
    return a == b;
  }

  bool Leq(const PartitionFact& a, const PartitionFact& b) const override {
    const auto rank = [](PartitionFact::Kind k) {
      switch (k) {
        case PartitionFact::Kind::kUnreached:
          return 0;
        case PartitionFact::Kind::kSingleton:
        case PartitionFact::Kind::kHashed:
          return 1;
        case PartitionFact::Kind::kArbitrary:
          return 2;
      }
      return 2;
    };
    return a == b || rank(a.kind) < rank(b.kind);
  }

  /// The distribution of `pred`'s emitted stream after `op`'s declared
  /// input routing delivers it to `op`'s instances.
  PartitionFact Routed(const AnalysisContext& ctx, OpId op, OpId pred,
                       int port, const PartitionFact& upstream) const {
    const OperatorDescriptor& d = ctx.op(op);
    if (upstream.kind == PartitionFact::Kind::kUnreached) return upstream;
    if (d.parallelism <= 1) return Singleton();
    switch (d.input_partitioning) {
      case Partitioning::kRebalance:
        return Arbitrary();
      case Partitioning::kForward: {
        // Instance i keeps talking to instance i; only valid verbatim when
        // degrees match (expansion degrades it to rebalance otherwise).
        if (ctx.op(pred).parallelism != d.parallelism) return Arbitrary();
        return upstream;
      }
      case Partitioning::kHash: {
        const size_t key = HashKeyField(ctx, op, port);
        const FieldFact f = OutputFieldFact(pred, key);
        if (f.origin_op < 0) return Arbitrary();
        PartitionFact hashed;
        hashed.kind = PartitionFact::Kind::kHashed;
        hashed.key_origin_op = f.origin_op;
        hashed.key_origin_field = f.origin_field;
        hashed.degree = d.parallelism;
        return hashed;
      }
    }
    return Arbitrary();
  }

  /// The field a hash shuffle into `op` routes on, as an index into the
  /// producer's output schema. Mirrors PhysicalPlan::PartitionKeyField,
  /// including the fall-back-to-field-0 of non-keyed consumers.
  static size_t HashKeyField(const AnalysisContext& ctx, OpId op, int port) {
    const OperatorDescriptor& d = ctx.op(op);
    size_t key = OperatorDescriptor::kNoKey;
    switch (d.type) {
      case OperatorType::kWindowAggregate:
        key = d.key_field;
        break;
      case OperatorType::kWindowJoin:
        key = port == 0 ? d.join_left_key : d.join_right_key;
        break;
      case OperatorType::kUdo:
        key = d.udo_stateful ? 0 : OperatorDescriptor::kNoKey;
        break;
      default:
        break;
    }
    return key == OperatorDescriptor::kNoKey ? 0 : key;
  }

  FieldFact OutputFieldFact(OpId op, size_t field) const {
    if (refinement_ == nullptr || !refinement_->stats.ok()) return {};
    if (static_cast<size_t>(op) >= refinement_->out.size()) return {};
    const RefineFact& f = refinement_->out[op];
    if (field >= f.fields.size()) return {};
    return f.fields[field];
  }

  FieldFact InputFieldFact(OpId op, size_t field) const {
    if (refinement_ == nullptr || !refinement_->stats.ok()) return {};
    if (static_cast<size_t>(op) >= refinement_->in.size()) return {};
    const RefineFact& f = refinement_->in[op];
    if (field >= f.fields.size()) return {};
    return f.fields[field];
  }

 private:
  static PartitionFact Singleton() {
    PartitionFact f;
    f.kind = PartitionFact::Kind::kSingleton;
    return f;
  }
  static PartitionFact Arbitrary() {
    PartitionFact f;
    f.kind = PartitionFact::Kind::kArbitrary;
    return f;
  }

  static PartitionFact Join(const PartitionFact& a, const PartitionFact& b) {
    if (a.kind == PartitionFact::Kind::kUnreached) return b;
    if (b.kind == PartitionFact::Kind::kUnreached) return a;
    if (a == b) return a;
    return Arbitrary();
  }

  const DataflowResult<RefineFact>* refinement_;
};

// --- determinism ----------------------------------------------------------

struct DetFact {
  Determinism level = Determinism::kDeterministic;
  /// Arrival order at each consumer instance is uniquely determined.
  bool ordered = true;

  bool operator==(const DetFact& o) const {
    return level == o.level && ordered == o.ordered;
  }
};

// Why one operator degrades the stream's determinism class. Empty reason
// means the operator is transparent.
struct OpDetEffect {
  Determinism floor = Determinism::kDeterministic;
  bool order_sensitive = false;
  const char* reason = "";
};

OpDetEffect ClassifyOperator(const OperatorDescriptor& d) {
  OpDetEffect e;
  switch (d.type) {
    case OperatorType::kSource:
    case OperatorType::kMap:
    case OperatorType::kFilter:
    case OperatorType::kSink:
      return e;
    case OperatorType::kFlatMap: {
      const double fanout = std::max(0.0, d.flatmap_fanout);
      if (fanout != std::floor(fanout)) {
        e.order_sensitive = true;
        e.reason = "fractional fanout consumes per-element rng draws";
      }
      return e;
    }
    case OperatorType::kWindowAggregate:
      if (d.window.policy == WindowPolicy::kCount) {
        e.order_sensitive = true;
        e.reason = "count-based panes fill in arrival order";
      } else if (d.agg_fn == AggregateFn::kSum ||
                 d.agg_fn == AggregateFn::kAvg ||
                 d.agg_fn == AggregateFn::kMean) {
        e.order_sensitive = true;
        e.reason = "floating-point aggregation order";
      }
      if (d.key_field == OperatorDescriptor::kNoKey && d.parallelism > 1) {
        e.order_sensitive = true;
        e.reason = "global (keyless) state split across instances";
      }
      return e;
    case OperatorType::kWindowJoin:
      // Probe-at-arrival semantics: whether a pair is emitted depends on
      // which side arrived first, i.e. on the cross-port interleaving.
      e.order_sensitive = true;
      e.reason = "join probes depend on cross-port arrival interleaving";
      return e;
    case OperatorType::kUdo: {
      const UdoRegistry& registry = UdoRegistry::Global();
      auto traits = registry.TraitsOf(d.udo_kind);
      if (!traits.has_value()) {
        e.floor = Determinism::kNondeterministic;
        e.reason = "UDO kind with undeclared determinism traits";
        return e;
      }
      if (traits->rng) {
        e.order_sensitive = true;
        e.reason = "UDO consumes per-element rng draws";
      }
      if (traits->order_sensitive || d.udo_stateful) {
        e.order_sensitive = true;
        if (*e.reason == '\0') e.reason = "order-sensitive UDO state";
      }
      return e;
    }
  }
  return e;
}

class DeterminismAnalysis : public DataflowAnalysis<DetFact> {
 public:
  const char* name() const override { return "determinism"; }
  DetFact Bottom() const override { return {}; }

  DetFact Boundary(const AnalysisContext&, OpId) const override {
    return {};  // seeded generators: deterministic, ordered
  }

  DetFact Combine(const AnalysisContext& ctx, OpId op,
                  const std::vector<DetFact>& edge_facts) const override {
    DetFact in;
    for (const DetFact& f : edge_facts) {
      in.level = std::max(in.level, f.level);
      in.ordered = in.ordered && f.ordered;
    }
    if (ProducerChannelsInto(ctx, op) > 1) in.ordered = false;
    return in;
  }

  DetFact Transfer(const AnalysisContext& ctx, OpId op,
                   const DetFact& in) const override {
    const OpDetEffect e = ClassifyOperator(ctx.op(op));
    DetFact out = in;
    out.level = std::max(out.level, e.floor);
    if (e.order_sensitive && !in.ordered) {
      out.level = std::max(out.level, Determinism::kOrderDependent);
    }
    return out;
  }

  bool Equal(const DetFact& a, const DetFact& b) const override {
    return a == b;
  }

  bool Leq(const DetFact& a, const DetFact& b) const override {
    return a.level <= b.level && (a.ordered || !b.ordered);
  }
};

// --- backward liveness ----------------------------------------------------

struct LiveFact {
  bool live = false;
  bool operator==(const LiveFact& o) const { return live == o.live; }
};

class LivenessAnalysis : public DataflowAnalysis<LiveFact> {
 public:
  const char* name() const override { return "liveness"; }
  DataflowDirection direction() const override {
    return DataflowDirection::kBackward;
  }
  LiveFact Bottom() const override { return {}; }
  LiveFact Boundary(const AnalysisContext& ctx, OpId op) const override {
    return {ctx.op(op).type == OperatorType::kSink};
  }
  LiveFact Combine(const AnalysisContext&, OpId,
                   const std::vector<LiveFact>& edge_facts) const override {
    LiveFact f;
    for (const LiveFact& e : edge_facts) f.live = f.live || e.live;
    return f;
  }
  LiveFact Transfer(const AnalysisContext& ctx, OpId op,
                    const LiveFact& in) const override {
    if (ctx.op(op).type == OperatorType::kSink) return {true};
    return in;
  }
  bool Equal(const LiveFact& a, const LiveFact& b) const override {
    return a == b;
  }
  bool Leq(const LiveFact& a, const LiveFact& b) const override {
    return !a.live || b.live;
  }
};

std::string OriginName(const LogicalPlan& plan, OpId op, size_t field) {
  if (op < 0 || static_cast<size_t>(op) >= plan.NumOperators()) return "?";
  if (plan.validated()) {
    const Schema& schema = plan.OutputSchema(op);
    if (field < schema.NumFields()) {
      return plan.op(op).name + "." + schema.field(field).name;
    }
  }
  return StrFormat("%s.f%zu", plan.op(op).name.c_str(), field);
}

}  // namespace

const char* PartitionKindToString(PartitionFact::Kind kind) {
  switch (kind) {
    case PartitionFact::Kind::kUnreached:
      return "unreached";
    case PartitionFact::Kind::kSingleton:
      return "singleton";
    case PartitionFact::Kind::kHashed:
      return "hashed";
    case PartitionFact::Kind::kArbitrary:
      return "arbitrary";
  }
  return "?";
}

const char* DeterminismToString(Determinism d) {
  switch (d) {
    case Determinism::kDeterministic:
      return "deterministic";
    case Determinism::kOrderDependent:
      return "order-dependent";
    case Determinism::kNondeterministic:
      return "nondeterministic";
  }
  return "?";
}

PlanProperties ComputePlanProperties(const AnalysisContext& ctx) {
  PlanProperties props;
  const size_t n = ctx.NumOps();
  props.ops.resize(n);

  const RefinementAnalysis refinement_analysis;
  const auto refinement = RunDataflow(refinement_analysis, ctx);
  props.refinement_stats = refinement.stats;

  const RateAnalysis rate_analysis(&refinement);
  const auto rates = RunDataflow(rate_analysis, ctx);
  props.rate_stats = rates.stats;

  const PartitioningAnalysis partitioning_analysis(&refinement);
  const auto partitioning = RunDataflow(partitioning_analysis, ctx);
  props.partitioning_stats = partitioning.stats;

  const DeterminismAnalysis determinism_analysis;
  const auto determinism = RunDataflow(determinism_analysis, ctx);
  props.determinism_stats = determinism.stats;

  const LivenessAnalysis liveness_analysis;
  const auto liveness = RunDataflow(liveness_analysis, ctx);

  for (size_t i = 0; i < n; ++i) {
    const OpId id = static_cast<OpId>(i);
    const OperatorDescriptor& d = ctx.op(id);
    OperatorProperties& p = props.ops[i];

    if (partitioning.stats.ok()) {
      p.input_distribution = partitioning.in[i];
      p.output_distribution = partitioning.out[i];
    }
    if (rates.stats.ok()) {
      RateInterval in_total;
      for (const RateInterval& e : rates.in[i].edges) {
        in_total.lo += e.lo;
        in_total.hi += e.hi;
      }
      p.input_rate = in_total;
      p.output_rate =
          rates.out[i].edges.empty() ? RateInterval{} : rates.out[i].edges[0];
      p.selectivity = rate_analysis.Selectivity(ctx, id);
    }
    if (refinement.stats.ok() && d.type == OperatorType::kFilter &&
        !ctx.inputs[id].empty()) {
      const RefineFact& in = refinement.in[i];
      if (d.filter_field < in.fields.size()) {
        const FieldFact& f = in.fields[d.filter_field];
        const PredicateOutcome outcome =
            ApplyPredicate(f, d.filter_op, d.filter_literal);
        p.filter_always_false = outcome.always_false;
        p.filter_always_true = outcome.always_true;
        if (outcome.always_false || outcome.always_true) {
          p.filter_why = StrFormat(
              "tested value (%s) is provably in [%g, %g], so `%s %g` is %s",
              OriginName(*ctx.plan, f.origin_op >= 0 ? f.origin_op : id,
                         f.origin_field)
                  .c_str(),
              f.lo, f.hi, FilterOpToString(d.filter_op),
              d.filter_literal.AsNumeric(),
              outcome.always_false ? "always false" : "always true");
        }
      }
    }
    if (rates.stats.ok() && refinement.stats.ok() &&
        d.type != OperatorType::kSource && refinement.in[i].reached &&
        p.input_rate.hi <= 0.0 && !ctx.inputs[id].empty()) {
      p.statically_dead = true;
    }
    if (determinism.stats.ok()) {
      const OpDetEffect e = ClassifyOperator(d);
      p.merge_point = ProducerChannelsInto(ctx, id) > 1;
      p.determinism = determinism.out[i].level;
      if (*e.reason != '\0') p.determinism_reason = e.reason;
    }
    p.reaches_sink = liveness.stats.ok() && liveness.out[i].live;

    // Proven redundant shuffle: the operator re-hashes a stream that is
    // already placed by the same provenance key at the same degree.
    if (partitioning.stats.ok() && refinement.stats.ok() &&
        d.input_partitioning == Partitioning::kHash && d.parallelism > 1) {
      bool all_redundant = !ctx.inputs[id].empty();
      std::string why;
      for (size_t e = 0; e < ctx.inputs[id].size(); ++e) {
        const OpId pred = ctx.inputs[id][e];
        const PartitionFact& up = partitioning.out[pred];
        const size_t key = PartitioningAnalysis::HashKeyField(
            ctx, id, static_cast<int>(e));
        const FieldFact kf = partitioning_analysis.OutputFieldFact(pred, key);
        const bool redundant =
            up.kind == PartitionFact::Kind::kHashed &&
            up.degree == d.parallelism &&
            ctx.op(pred).parallelism == d.parallelism && kf.origin_op >= 0 &&
            kf.origin_op == up.key_origin_op &&
            kf.origin_field == up.key_origin_field;
        if (!redundant) {
          all_redundant = false;
          break;
        }
        if (why.empty()) {
          why = StrFormat(
              "input from '%s' is already hash-partitioned on %s across %d "
              "instances",
              ctx.op(pred).name.c_str(),
              OriginName(*ctx.plan, up.key_origin_op, up.key_origin_field)
                  .c_str(),
              up.degree);
        }
      }
      if (all_redundant) {
        p.redundant_shuffle = true;
        p.redundant_shuffle_why = why;
      }
    }
  }

  // Plan verdict: worst sink stream, counting an undetermined write order
  // as order dependence (bit-identity of a sink file includes order).
  bool found_sink = false;
  Determinism verdict = Determinism::kDeterministic;
  std::string verdict_reason;
  for (size_t i = 0; i < n && determinism.stats.ok(); ++i) {
    if (ctx.op(static_cast<OpId>(i)).type != OperatorType::kSink) continue;
    found_sink = true;
    Determinism level = determinism.in[i].level;
    std::string reason;
    if (level == Determinism::kDeterministic && !determinism.in[i].ordered) {
      level = Determinism::kOrderDependent;
      reason = "sink write order depends on the arrival interleaving";
    } else {
      // First upstream operator that degraded the stream to this level.
      for (size_t j = 0; j < n; ++j) {
        if (determinism.out[j].level == level &&
            !props.ops[j].determinism_reason.empty()) {
          reason = StrFormat("'%s': %s",
                             ctx.op(static_cast<OpId>(j)).name.c_str(),
                             props.ops[j].determinism_reason.c_str());
          break;
        }
      }
    }
    if (level >= verdict) {
      verdict = level;
      if (!reason.empty() || level == Determinism::kDeterministic) {
        verdict_reason = reason;
      }
    }
  }
  if (!determinism.stats.ok()) {
    props.verdict = Determinism::kNondeterministic;
    props.verdict_reason = "determinism analysis did not converge";
  } else if (!found_sink) {
    props.verdict = Determinism::kNondeterministic;
    props.verdict_reason = "plan has no sink";
  } else {
    props.verdict = verdict;
    props.verdict_reason = verdict_reason;
    if (props.verdict == Determinism::kDeterministic) {
      props.verdict_reason =
          "all operators are order-insensitive and every instance has a "
          "single producer";
    } else if (props.verdict_reason.empty()) {
      props.verdict_reason = DeterminismToString(props.verdict);
    }
  }
  return props;
}

Json PlanProperties::ToJson(const LogicalPlan& plan) const {
  Json j = Json::Object();
  Json ops_json = Json::Array();
  for (size_t i = 0; i < ops.size() && i < plan.NumOperators(); ++i) {
    const OpId id = static_cast<OpId>(i);
    const OperatorProperties& p = ops[i];
    Json o = Json::Object();
    o.Set("op", Json::Int(static_cast<int64_t>(i)));
    o.Set("name", Json::Str(plan.op(id).name));
    o.Set("type", Json::Str(OperatorTypeToString(plan.op(id).type)));

    Json part = Json::Object();
    part.Set("input", Json::Str(PartitionKindToString(
                          p.input_distribution.kind)));
    part.Set("output", Json::Str(PartitionKindToString(
                           p.output_distribution.kind)));
    if (p.output_distribution.kind == PartitionFact::Kind::kHashed) {
      part.Set("key",
               Json::Str(OriginName(plan, p.output_distribution.key_origin_op,
                                    p.output_distribution.key_origin_field)));
      part.Set("degree", Json::Int(p.output_distribution.degree));
    }
    part.Set("redundant_shuffle", Json::Bool(p.redundant_shuffle));
    o.Set("partitioning", std::move(part));

    Json rate = Json::Object();
    rate.Set("input_lo", Json::Number(p.input_rate.lo));
    rate.Set("input_hi", Json::Number(p.input_rate.hi));
    rate.Set("output_lo", Json::Number(p.output_rate.lo));
    rate.Set("output_hi", Json::Number(p.output_rate.hi));
    o.Set("rate_interval", std::move(rate));

    Json det = Json::Object();
    det.Set("class", Json::Str(DeterminismToString(p.determinism)));
    det.Set("merge_point", Json::Bool(p.merge_point));
    if (!p.determinism_reason.empty()) {
      det.Set("reason", Json::Str(p.determinism_reason));
    }
    o.Set("determinism", std::move(det));

    o.Set("reaches_sink", Json::Bool(p.reaches_sink));
    if (p.statically_dead) o.Set("statically_dead", Json::Bool(true));
    if (p.filter_always_false) o.Set("always_false", Json::Bool(true));
    if (p.filter_always_true) o.Set("always_true", Json::Bool(true));
    ops_json.Append(std::move(o));
  }
  j.Set("operators", std::move(ops_json));

  Json verdict = Json::Object();
  verdict.Set("class", Json::Str(DeterminismToString(this->verdict)));
  verdict.Set("reason", Json::Str(verdict_reason));
  j.Set("determinism", std::move(verdict));
  j.Set("converged", Json::Bool(AllConverged()));
  if (!AllConverged()) {
    Json why = Json::Array();
    for (const FixpointStats* s :
         {&partitioning_stats, &rate_stats, &refinement_stats,
          &determinism_stats}) {
      if (!s->ok()) why.Append(Json::Str(s->diagnostic));
    }
    j.Set("diagnostics", std::move(why));
  }
  return j;
}

std::string PlanProperties::ToString(const LogicalPlan& plan) const {
  std::string out;
  out += StrFormat("  %-14s %-11s %-24s %-22s %s\n", "operator", "type",
                   "partitioning (in->out)", "rate [lo, hi]", "determinism");
  for (size_t i = 0; i < ops.size() && i < plan.NumOperators(); ++i) {
    const OpId id = static_cast<OpId>(i);
    const OperatorProperties& p = ops[i];
    std::string part =
        StrFormat("%s -> %s", PartitionKindToString(p.input_distribution.kind),
                  PartitionKindToString(p.output_distribution.kind));
    if (p.output_distribution.kind == PartitionFact::Kind::kHashed) {
      part += StrFormat(" on %s",
                        OriginName(plan, p.output_distribution.key_origin_op,
                                   p.output_distribution.key_origin_field)
                            .c_str());
    }
    std::string det = DeterminismToString(p.determinism);
    if (!p.determinism_reason.empty()) {
      det += StrFormat(" (%s)", p.determinism_reason.c_str());
    }
    out += StrFormat("  %-14s %-11s %-24s [%9.1f, %9.1f]  %s\n",
                     plan.op(id).name.c_str(),
                     OperatorTypeToString(plan.op(id).type), part.c_str(),
                     p.output_rate.lo, p.output_rate.hi, det.c_str());
    if (p.redundant_shuffle) {
      out += StrFormat("                 ^ redundant shuffle: %s\n",
                       p.redundant_shuffle_why.c_str());
    }
    if (p.filter_always_false || p.filter_always_true) {
      out += StrFormat("                 ^ %s\n", p.filter_why.c_str());
    }
  }
  out += StrFormat("  determinism verdict: %s (%s)\n",
                   DeterminismToString(verdict), verdict_reason.c_str());
  if (!AllConverged()) {
    out += "  WARNING: not all analyses converged; facts are partial\n";
  }
  return out;
}

}  // namespace analysis
}  // namespace pdsp
