#include "src/ml/model.h"

#include <cmath>

#include "src/ml/models.h"

namespace pdsp {

const char* ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearRegression:
      return "linear_regression";
    case ModelKind::kMlp:
      return "mlp";
    case ModelKind::kRandomForest:
      return "random_forest";
    case ModelKind::kGnn:
      return "gnn";
    case ModelKind::kGradientBoost:
      return "gradient_boost";
  }
  return "?";
}

std::unique_ptr<LearnedCostModel> MakeModel(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearRegression:
      return std::make_unique<LinearRegressionModel>();
    case ModelKind::kMlp:
      return std::make_unique<MlpModel>();
    case ModelKind::kRandomForest:
      return std::make_unique<RandomForestModel>();
    case ModelKind::kGnn:
      return std::make_unique<GnnModel>();
    case ModelKind::kGradientBoost:
      return std::make_unique<GradientBoostModel>();
  }
  return nullptr;
}

void Standardizer::Fit(const Dataset& data) {
  if (data.empty()) return;
  const size_t dim = data.samples[0].flat.size();
  mean_.assign(dim, 0.0);
  Vector m2(dim, 0.0);
  int64_t n = 0;
  for (const PlanSample& s : data.samples) {
    ++n;
    for (size_t i = 0; i < dim; ++i) {
      const double d = s.flat[i] - mean_[i];
      mean_[i] += d / static_cast<double>(n);
      m2[i] += d * (s.flat[i] - mean_[i]);
    }
  }
  inv_std_.assign(dim, 1.0);
  for (size_t i = 0; i < dim; ++i) {
    const double sd = std::sqrt(m2[i] / static_cast<double>(n));
    if (sd > 1e-9) {
      inv_std_[i] = 1.0 / sd;
    } else {
      // Constant column (e.g. the bias feature): pass through unchanged so
      // models can still use it as an intercept.
      mean_[i] = 0.0;
      inv_std_[i] = 1.0;
    }
  }
}

Vector Standardizer::Apply(const Vector& x) const {
  if (mean_.empty() || x.size() != mean_.size()) return x;
  Vector out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] - mean_[i]) * inv_std_[i];
  }
  return out;
}

}  // namespace pdsp
