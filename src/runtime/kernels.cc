#include "src/runtime/kernels.h"

#include <algorithm>
#include <functional>
#include <string_view>

#include "src/common/string_util.h"
#include "src/runtime/operators.h"

namespace pdsp {
namespace kernels {

namespace {

// Runs `pred` over the AsNumeric() view of a typed column. The per-type
// loops keep the inner body a load + compare (no Value construction).
template <typename Pred>
void SelectNumeric(const data::Batch& in, size_t begin, size_t end,
                   size_t field, double rhs, Pred pred,
                   data::SelectionVector* sel) {
  switch (in.column_type(field)) {
    case DataType::kInt: {
      const int64_t* d = in.IntData(field);
      for (size_t i = begin; i < end; ++i) {
        if (pred(static_cast<double>(d[i]), rhs)) {
          sel->push_back(static_cast<uint32_t>(i));
        }
      }
      return;
    }
    case DataType::kDouble: {
      const double* d = in.DoubleData(field);
      for (size_t i = begin; i < end; ++i) {
        if (pred(d[i], rhs)) sel->push_back(static_cast<uint32_t>(i));
      }
      return;
    }
    case DataType::kString: {
      const std::string_view* d = in.StringData(field);
      for (size_t i = begin; i < end; ++i) {
        if (pred(static_cast<double>(d[i].size()), rhs)) {
          sel->push_back(static_cast<uint32_t>(i));
        }
      }
      return;
    }
  }
}

template <typename Pred>
void SelectString(const std::string_view* d, size_t begin, size_t end,
                  std::string_view rhs, Pred pred,
                  data::SelectionVector* sel) {
  for (size_t i = begin; i < end; ++i) {
    if (pred(d[i], rhs)) sel->push_back(static_cast<uint32_t>(i));
  }
}

}  // namespace

Status FilterSelect(const data::Batch& in, size_t begin, size_t end,
                    size_t field, FilterOp op, const Value& literal,
                    data::SelectionVector* sel) {
  if (field >= in.NumColumns()) {
    return Status::OutOfRange(
        StrFormat("filter field %zu beyond tuple arity %zu", field,
                  in.NumColumns()));
  }
  if (in.column_promoted(field)) {
    // Dynamically typed fallback: exact scalar semantics per row.
    for (size_t i = begin; i < end; ++i) {
      if (EvaluateFilter(in.ValueAt(i, field), op, literal)) {
        sel->push_back(static_cast<uint32_t>(i));
      }
    }
    return Status::OK();
  }
  if (literal.is_string() && in.column_type(field) == DataType::kString) {
    // String-vs-string comparisons are lexical (Value semantics).
    const std::string_view* d = in.StringData(field);
    const std::string_view rhs = literal.AsString();
    switch (op) {
      case FilterOp::kLt:
        SelectString(d, begin, end, rhs, std::less<>(), sel);
        break;
      case FilterOp::kLe:
        SelectString(d, begin, end, rhs, std::less_equal<>(), sel);
        break;
      case FilterOp::kGt:
        SelectString(d, begin, end, rhs, std::greater<>(), sel);
        break;
      case FilterOp::kGe:
        SelectString(d, begin, end, rhs, std::greater_equal<>(), sel);
        break;
      case FilterOp::kEq:
        SelectString(d, begin, end, rhs, std::equal_to<>(), sel);
        break;
      case FilterOp::kNe:
        SelectString(d, begin, end, rhs, std::not_equal_to<>(), sel);
        break;
    }
    return Status::OK();
  }
  // Every other type pairing compares through the AsNumeric() double view
  // (strings by length), exactly like Value's operators.
  const double rhs = literal.AsNumeric();
  switch (op) {
    case FilterOp::kLt:
      SelectNumeric(in, begin, end, field, rhs, std::less<>(), sel);
      break;
    case FilterOp::kLe:
      SelectNumeric(in, begin, end, field, rhs, std::less_equal<>(), sel);
      break;
    case FilterOp::kGt:
      SelectNumeric(in, begin, end, field, rhs, std::greater<>(), sel);
      break;
    case FilterOp::kGe:
      SelectNumeric(in, begin, end, field, rhs, std::greater_equal<>(), sel);
      break;
    case FilterOp::kEq:
      SelectNumeric(in, begin, end, field, rhs, std::equal_to<>(), sel);
      break;
    case FilterOp::kNe:
      SelectNumeric(in, begin, end, field, rhs, std::not_equal_to<>(), sel);
      break;
  }
  return Status::OK();
}

void NumericColumn(const data::Batch& in, size_t begin, size_t end,
                   size_t field, double* out) {
  if (in.column_promoted(field)) {
    for (size_t i = begin; i < end; ++i) {
      out[i - begin] = in.NumericAt(i, field);
    }
    return;
  }
  switch (in.column_type(field)) {
    case DataType::kInt: {
      const int64_t* d = in.IntData(field);
      for (size_t i = begin; i < end; ++i) {
        out[i - begin] = static_cast<double>(d[i]);
      }
      return;
    }
    case DataType::kDouble: {
      const double* d = in.DoubleData(field);
      for (size_t i = begin; i < end; ++i) out[i - begin] = d[i];
      return;
    }
    case DataType::kString: {
      const std::string_view* d = in.StringData(field);
      for (size_t i = begin; i < end; ++i) {
        out[i - begin] = static_cast<double>(d[i].size());
      }
      return;
    }
  }
}

void HashColumn(const data::Batch& in, size_t begin, size_t end, size_t field,
                uint64_t* out) {
  if (in.column_promoted(field)) {
    for (size_t i = begin; i < end; ++i) {
      out[i - begin] = in.ValueAt(i, field).Hash();
    }
    return;
  }
  switch (in.column_type(field)) {
    case DataType::kInt: {
      const int64_t* d = in.IntData(field);
      for (size_t i = begin; i < end; ++i) {
        out[i - begin] = HashInt64Value(d[i]);
      }
      return;
    }
    case DataType::kDouble: {
      const double* d = in.DoubleData(field);
      for (size_t i = begin; i < end; ++i) {
        out[i - begin] = HashDoubleValue(d[i]);
      }
      return;
    }
    case DataType::kString: {
      const std::string_view* d = in.StringData(field);
      for (size_t i = begin; i < end; ++i) {
        out[i - begin] = HashStringValue(d[i]);
      }
      return;
    }
  }
}

double AggPartial::Finish(AggregateFn fn) const {
  switch (fn) {
    case AggregateFn::kSum:
      return sum;
    case AggregateFn::kMin:
      return min;
    case AggregateFn::kMax:
      return max;
    case AggregateFn::kAvg:
    case AggregateFn::kMean:
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  return 0.0;
}

Status Aggregate(const data::Batch& in, size_t begin, size_t end,
                 size_t field, AggPartial* out) {
  if (field >= in.NumColumns()) {
    return Status::OutOfRange("aggregate field beyond tuple arity");
  }
  if (in.column_promoted(field)) {
    for (size_t i = begin; i < end; ++i) out->Add(in.NumericAt(i, field));
    return Status::OK();
  }
  switch (in.column_type(field)) {
    case DataType::kInt: {
      const int64_t* d = in.IntData(field);
      for (size_t i = begin; i < end; ++i) {
        out->Add(static_cast<double>(d[i]));
      }
      break;
    }
    case DataType::kDouble: {
      const double* d = in.DoubleData(field);
      for (size_t i = begin; i < end; ++i) out->Add(d[i]);
      break;
    }
    case DataType::kString: {
      const std::string_view* d = in.StringData(field);
      for (size_t i = begin; i < end; ++i) {
        out->Add(static_cast<double>(d[i].size()));
      }
      break;
    }
  }
  return Status::OK();
}

void Partition(const data::Batch& in, size_t begin, size_t end,
               size_t key_field, int num_partitions,
               std::vector<data::SelectionVector>* parts) {
  parts->clear();
  parts->resize(static_cast<size_t>(std::max(1, num_partitions)));
  if (key_field >= in.NumColumns()) {
    // Keyless fallback: the scalar router hashes nothing and sends to 0.
    data::SelectionVector& p0 = (*parts)[0];
    p0.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      p0.push_back(static_cast<uint32_t>(i));
    }
    return;
  }
  const auto p = static_cast<uint64_t>(std::max(1, num_partitions));
  // Hash the whole column first (tight typed loop), then scatter row
  // indices — the selection vectors are the "radix buckets"; payload moves
  // once, at gather time.
  std::vector<uint64_t> hashes(end - begin);
  HashColumn(in, begin, end, key_field, hashes.data());
  for (size_t i = begin; i < end; ++i) {
    (*parts)[hashes[i - begin] % p].push_back(static_cast<uint32_t>(i));
  }
}

}  // namespace kernels
}  // namespace pdsp
