#include "src/data/value.h"

#include <gtest/gtest.h>

namespace pdsp {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, TypeTagsMatchConstruction) {
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(5).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value(std::string("x")).is_string());
  EXPECT_TRUE(Value("x").is_string());
}

TEST(ValueTest, AsNumericCoercions) {
  EXPECT_DOUBLE_EQ(Value(7).AsNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsNumeric(), 2.5);
  EXPECT_DOUBLE_EQ(Value("abc").AsNumeric(), 3.0);  // string -> length
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_TRUE(Value(3) < Value(3.5));
  EXPECT_TRUE(Value(3.0) == Value(3));
  EXPECT_TRUE(Value(4) > Value(3.9));
}

TEST(ValueTest, StringComparisonIsLexical) {
  EXPECT_TRUE(Value("apple") < Value("banana"));
  EXPECT_TRUE(Value("apple") == Value("apple"));
  EXPECT_FALSE(Value("b") < Value("ab"));  // lexical, not by length
}

TEST(ValueTest, RelationalOperatorFamilyIsConsistent) {
  Value a(1), b(2);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a <= Value(1));
  EXPECT_TRUE(a >= Value(1));
}

TEST(ValueTest, HashIsStableAndTypeCoherent) {
  EXPECT_EQ(Value(42).Hash(), Value(42).Hash());
  EXPECT_EQ(Value(42).Hash(), Value(42.0).Hash());  // same partition
  EXPECT_NE(Value(42).Hash(), Value(43).Hash());
  EXPECT_EQ(Value("hi").Hash(), Value("hi").Hash());
  EXPECT_NE(Value("hi").Hash(), Value("ho").Hash());
}

TEST(ValueTest, WireSizes) {
  EXPECT_EQ(Value(1).WireSize(), 8u);
  EXPECT_EQ(Value(1.0).WireSize(), 8u);
  EXPECT_EQ(Value("abcd").WireSize(), 8u);  // 4 chars + 4 length prefix
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(5).ToString(), "5");
  EXPECT_EQ(Value("xy").ToString(), "xy");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt), "int");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "double");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "string");
}

TEST(SchemaTest, AddAndLookup) {
  Schema s;
  ASSERT_TRUE(s.AddField({"a", DataType::kInt}).ok());
  ASSERT_TRUE(s.AddField({"b", DataType::kString}).ok());
  EXPECT_EQ(s.NumFields(), 2u);
  auto idx = s.FieldIndex("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(s.FieldIndex("zzz").status().IsNotFound());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  Schema s;
  ASSERT_TRUE(s.AddField({"a", DataType::kInt}).ok());
  EXPECT_TRUE(s.AddField({"a", DataType::kDouble}).IsAlreadyExists());
}

TEST(SchemaTest, EstimatedBytesCountsStringsWider) {
  Schema numeric({{"a", DataType::kInt}, {"b", DataType::kDouble}});
  Schema with_string({{"a", DataType::kInt}, {"b", DataType::kString}});
  EXPECT_EQ(numeric.EstimatedTupleBytes(), 8u + 8 + 8);
  EXPECT_GT(with_string.EstimatedTupleBytes(),
            numeric.EstimatedTupleBytes());
}

TEST(SchemaTest, ToStringListsFields) {
  Schema s({{"a", DataType::kInt}, {"b", DataType::kString}});
  EXPECT_EQ(s.ToString(), "a:int, b:string");
}

TEST(TupleTest, WireSizeAndToString) {
  Tuple t{{Value(1), Value("ab")}, 2.5};
  EXPECT_EQ(t.WireSize(), 8u + 8 + 6);
  EXPECT_NE(t.ToString().find("1, ab"), std::string::npos);
  EXPECT_EQ(t.at(0).AsInt(), 1);
}

}  // namespace
}  // namespace pdsp
