// pdsp::analysis entry points: run the default pass pipeline over a plan
// (optionally against a cluster model), with per-call pass toggling and a
// process-wide pdsp.analysis.* metrics registry that counts findings so
// harness sweeps surface lint volume without log spam.
//
// Three call sites use this module (DESIGN.md "Static analysis"):
//   - PlanBuilder::Build rejects plans with error-severity findings,
//   - the harness refuses to simulate error-carrying plans unless
//     RunProtocol::allow_invalid is set,
//   - `pdspbench analyze <app|structure|all>` prints full reports.

#ifndef PDSP_ANALYSIS_ANALYZER_H_
#define PDSP_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/analysis/pass.h"
#include "src/cluster/cluster.h"
#include "src/obs/metrics.h"
#include "src/query/plan.h"

namespace pdsp {
namespace analysis {

/// \brief Per-call analyzer configuration.
struct AnalyzeOptions {
  /// Hardware model for the feasibility passes; null skips them.
  const Cluster* cluster = nullptr;
  /// Findings below this severity are dropped from the report.
  Severity min_severity = Severity::kInfo;
  /// Pass names to skip for this call (unknown names are ignored).
  std::vector<std::string> disabled_passes;
  /// When false, the run is not counted in AnalysisMetrics().
  bool record_metrics = true;
};

/// Runs every (enabled) default pass over the plan. The plan does not need
/// to be validated: the analyzer re-derives structure and schemas
/// tolerantly and reports everything it finds, unlike Validate()'s
/// first-error-only contract.
AnalysisReport AnalyzePlan(const LogicalPlan& plan,
                           const AnalyzeOptions& options = {});

/// Error-severity gate used by PlanBuilder::Build and the harness: OK when
/// the plan carries no error-severity findings, otherwise a
/// FailedPrecondition listing every error code.
Status CheckPlan(const LogicalPlan& plan, const Cluster* cluster = nullptr);

/// Process-wide registry behind pdsp.analysis.* counters:
///   pdsp.analysis.runs, pdsp.analysis.errors, pdsp.analysis.warnings,
///   pdsp.analysis.infos.
obs::MetricsRegistry& AnalysisMetrics();

/// The default pass pipeline (name/description listing for the CLI).
const PassRegistry& DefaultPasses();

}  // namespace analysis
}  // namespace pdsp

#endif  // PDSP_ANALYSIS_ANALYZER_H_
