#include "src/query/cardinality.h"

#include <algorithm>
#include <cmath>

#include "src/query/selectivity.h"

namespace pdsp {

namespace {

// Distinct values produced by a field generator (for key-count estimates).
double DistinctValues(const FieldGeneratorSpec& spec) {
  switch (spec.dist) {
    case FieldDistribution::kZipfKey:
    case FieldDistribution::kUniformKey:
    case FieldDistribution::kWordString:
      return static_cast<double>(spec.cardinality);
    case FieldDistribution::kUniformInt:
      return std::max(1.0, spec.max - spec.min + 1.0);
    default:
      return CardinalityModel::kDefaultDistinctKeys;
  }
}

double ResolveDistinctKeys(const LogicalPlan& plan, LogicalPlan::OpId input,
                           size_t field) {
  auto spec = ResolveFieldSpec(plan, input, field);
  if (!spec.ok()) return CardinalityModel::kDefaultDistinctKeys;
  return DistinctValues(*spec);
}

}  // namespace

Result<std::vector<OpCardinality>> CardinalityModel::Compute(
    const LogicalPlan& plan) {
  if (!plan.validated()) {
    return Status::FailedPrecondition("plan must be validated");
  }
  std::vector<OpCardinality> cards(plan.NumOperators());

  for (const LogicalPlan::OpId id : plan.TopologicalOrder()) {
    const OperatorDescriptor& op = plan.op(id);
    const auto inputs = plan.Inputs(id);
    OpCardinality& c = cards[id];
    for (const auto in : inputs) c.input_rate += cards[in].output_rate;

    switch (op.type) {
      case OperatorType::kSource:
        c.output_rate = plan.sources()[op.source_index].arrival.rate;
        break;
      case OperatorType::kFilter: {
        double sel = op.selectivity_hint;
        if (sel < 0.0) {
          auto spec = ResolveFieldSpec(plan, inputs[0], op.filter_field);
          if (spec.ok()) {
            auto est = EstimateFilterSelectivity(*spec, op.filter_op,
                                                 op.filter_literal);
            sel = est.ok() ? *est : 0.5;
          } else {
            sel = 0.5;
          }
        }
        c.output_rate = c.input_rate * std::clamp(sel, 0.0, 1.0);
        break;
      }
      case OperatorType::kMap:
        c.output_rate = c.input_rate;
        break;
      case OperatorType::kFlatMap:
        c.output_rate = c.input_rate * std::max(0.0, op.flatmap_fanout);
        break;
      case OperatorType::kWindowAggregate: {
        const bool keyed = op.key_field != OperatorDescriptor::kNoKey;
        double keys = 1.0;
        if (keyed) {
          keys = ResolveDistinctKeys(plan, inputs[0], op.key_field);
        }
        c.distinct_keys = keys;
        if (op.window.policy == WindowPolicy::kTime) {
          const double slide = std::max(1e-6, op.window.SlideSeconds());
          // Keys actually present in one window span.
          const double in_window =
              c.input_rate * op.window.DurationSeconds();
          const double keys_eff = std::min(keys, std::max(1.0, in_window));
          c.output_rate = keys_eff / slide;
        } else {
          const double slide =
              static_cast<double>(std::max<int64_t>(1, op.window.SlideTuples()));
          c.output_rate = c.input_rate / slide;
        }
        break;
      }
      case OperatorType::kWindowJoin: {
        const double rate_l = cards[inputs[0]].output_rate;
        const double rate_r = cards[inputs[1]].output_rate;
        const double keys_l =
            ResolveDistinctKeys(plan, inputs[0], op.join_left_key);
        const double keys_r =
            ResolveDistinctKeys(plan, inputs[1], op.join_right_key);
        const double keys = std::max(1.0, std::max(keys_l, keys_r));
        c.distinct_keys = keys;
        double sel;
        if (op.join_selectivity_hint >= 0.0) {
          sel = op.join_selectivity_hint;
        } else {
          // Skew-aware: P(match) = sum_k p_l(k) p_r(k) when both key
          // distributions resolve; uniform 1/keys otherwise.
          auto spec_l = ResolveFieldSpec(plan, inputs[0], op.join_left_key);
          auto spec_r = ResolveFieldSpec(plan, inputs[1], op.join_right_key);
          if (spec_l.ok() && spec_r.ok()) {
            sel = KeyMatchProbability(*spec_l, *spec_r);
          } else {
            sel = 1.0 / keys;
          }
        }
        double window_l, window_r;
        if (op.window.policy == WindowPolicy::kTime) {
          window_l = rate_l * op.window.DurationSeconds();
          window_r = rate_r * op.window.DurationSeconds();
        } else {
          window_l = window_r =
              static_cast<double>(op.window.length_tuples);
        }
        // Each arriving left tuple probes the right window and vice versa.
        c.output_rate = rate_l * window_r * sel + rate_r * window_l * sel;
        break;
      }
      case OperatorType::kUdo: {
        c.output_rate = c.input_rate * std::max(0.0, op.udo_selectivity);
        if (op.udo_stateful) c.distinct_keys = kDefaultDistinctKeys;
        break;
      }
      case OperatorType::kSink:
        c.output_rate = c.input_rate;
        break;
    }
    c.tuple_bytes =
        static_cast<double>(plan.OutputSchema(id).EstimatedTupleBytes());
    c.selectivity =
        c.input_rate > 0.0 ? c.output_rate / c.input_rate : 1.0;
  }
  return cards;
}

}  // namespace pdsp
