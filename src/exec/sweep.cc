#include "src/exec/sweep.h"

#include <csignal>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/exec/thread_pool.h"

namespace pdsp {
namespace exec {

namespace {

// SIGINT drain support. The handler only flips a flag (async-signal-safe);
// workers poll it before claiming each cell. Process-global because signal
// disposition is — RunSweep never nests.
std::atomic<bool> g_sigint{false};

void SigintFlagHandler(int) { g_sigint.store(true, std::memory_order_relaxed); }

/// Installs the drain handler on construction, restores the previous
/// disposition on destruction. A no-op unless `enable`.
class ScopedSigintHandler {
 public:
  explicit ScopedSigintHandler(bool enable) : enabled_(enable) {
    if (!enabled_) return;
    g_sigint.store(false, std::memory_order_relaxed);
    struct sigaction action = {};
    action.sa_handler = SigintFlagHandler;
    sigemptyset(&action.sa_mask);
    enabled_ = sigaction(SIGINT, &action, &previous_) == 0;
  }
  ~ScopedSigintHandler() {
    if (enabled_) sigaction(SIGINT, &previous_, nullptr);
  }
  ScopedSigintHandler(const ScopedSigintHandler&) = delete;
  ScopedSigintHandler& operator=(const ScopedSigintHandler&) = delete;

  bool Interrupted() const {
    return enabled_ && g_sigint.load(std::memory_order_relaxed);
  }

 private:
  bool enabled_;
  struct sigaction previous_ = {};
};

/// Summary provenance record for the whole sweep (label = sweep name).
/// Virtual-time fields stay zero — the per-cell records carry those — but
/// the host-footprint fields record what the sweep cost wall-clock-wise,
/// which is what the jobs=1-vs-jobs=N speedup comparison reads.
obs::RunRecord MakeSweepSummaryRecord(const SweepOptions& options,
                                      const SweepResult& sweep) {
  obs::RunRecord rec;
  rec.label = options.name.empty() ? "sweep" : options.name;
  rec.run_id = obs::MakeRunId(rec.label);
  rec.timestamp_utc = obs::NowUtcIso8601();
  rec.parallelism = sweep.jobs;
  rec.repeats = static_cast<int>(sweep.cells.size());
  rec.cluster = options.summary_ledger.cluster_name.empty()
                    ? "sweep"
                    : options.summary_ledger.cluster_name;
  rec.build_info = obs::BuildInfoString();
  rec.host_wall_s = sweep.wall_s;
  rec.host_cpu_user_s = sweep.host.usage.cpu_user_s;
  rec.host_cpu_sys_s = sweep.host.usage.cpu_sys_s;
  rec.host_peak_rss_kb = sweep.host.usage.peak_rss_kb;
  // Monitor findings (PDSP-M###) ride on the summary record only — the
  // per-cell records must stay bit-identical with monitoring on or off.
  rec.diagnosis_codes = sweep.monitor.codes;
  return rec;
}

}  // namespace

size_t SweepResult::NumOk() const {
  size_t n = 0;
  for (const SweepCellOutcome& cell : cells) {
    if (cell.result.ok()) ++n;
  }
  return n;
}

SweepResult RunSweep(const std::vector<SweepCell>& cells,
                     const SweepOptions& options) {
  SweepResult sweep;
  sweep.jobs = ResolveJobs(options.jobs);
  sweep.metrics = std::make_shared<obs::MetricsRegistry>();
  if (cells.empty()) return sweep;
  // Never spin up more workers than there are cells.
  if (static_cast<size_t>(sweep.jobs) > cells.size()) {
    sweep.jobs = static_cast<int>(cells.size());
  }

  const std::string prefix = options.name.empty() ? "sweep" : options.name;
  ScopedSigintHandler sigint(options.install_sigint);

  std::unique_ptr<obs::SweepProgress> progress;
  std::unique_ptr<obs::SnapshotSampler> sampler;
  if (options.monitor.enabled) {
    progress = std::make_unique<obs::SweepProgress>(prefix, cells.size(),
                                                    sweep.jobs);
    sampler = std::make_unique<obs::SnapshotSampler>(progress.get(),
                                                     options.monitor);
    sampler->Start();
  }

  const auto t0 = std::chrono::steady_clock::now();

  // Per-cell slots, written by exactly one worker each; per-worker phase
  // profiles, written by exactly one worker each. The futures' get() below
  // publishes every write to this thread before the merge phase reads it.
  std::vector<std::optional<Result<CellResult>>> results(cells.size());
  std::vector<std::shared_ptr<obs::MetricsRegistry>> cell_metrics(
      cells.size());
  std::vector<obs::WorkerPhaseMap> worker_phases(
      static_cast<size_t>(sweep.jobs));
  std::atomic<size_t> next_cell{0};

  {
    ThreadPool pool(sweep.jobs);
    std::vector<std::future<void>> workers;
    workers.reserve(static_cast<size_t>(sweep.jobs));
    for (int w = 0; w < sweep.jobs; ++w) {
      workers.push_back(pool.Submit([&, w]() {
        // One phase sink per worker: concurrent busy-seconds accumulate
        // here and are merged as worker phases at join, never into the
        // global profiler's single-threaded wall-clock phases.
        obs::HostProfiler profiler;
        for (size_t i = next_cell.fetch_add(1, std::memory_order_relaxed);
             i < cells.size();
             i = next_cell.fetch_add(1, std::memory_order_relaxed)) {
          // Drain on Ctrl-C: the in-flight cell (previous iteration) ran to
          // completion; claimed-but-unstarted cells are left unfilled and
          // reported as interrupted at merge.
          if (sigint.Interrupted()) break;
          const SweepCell& cell = cells[i];
          RunProtocol protocol = cell.protocol;
          if (protocol.label.empty()) protocol.label = cell.label;
          // Ledger appends are canonicalized at join; a worker-side append
          // would interleave records in completion order.
          protocol.ledger.enabled = false;
          if (!cell.make_plan) {
            results[i].emplace(
                Status::InvalidArgument("sweep cell without make_plan"));
            continue;
          }
          Result<LogicalPlan> plan = cell.make_plan();
          if (!plan.ok()) {
            results[i].emplace(plan.status());
            continue;
          }
          RunContext context(&profiler);
          if (progress != nullptr) {
            progress->StartCell(w, i, cell.label, context.metrics());
          }
          results[i].emplace(
              MeasureCell(*plan, cell.cluster, protocol, &context));
          cell_metrics[i] = context.metrics();
          if (progress != nullptr) {
            progress->FinishCell(w, i, results[i]->ok());
          }
        }
        worker_phases[static_cast<size_t>(w)] = profiler.Snapshot().phases;
      }));
    }
    for (std::future<void>& worker : workers) {
      try {
        worker.get();
      } catch (const std::exception& e) {
        // A worker died outside MeasureCell's Status paths (e.g. a plan
        // factory threw). Unfilled cells are reported below; the sweep
        // itself survives.
        PDSP_LOG(Error) << "sweep worker failed: " << e.what();
      }
    }
  }

  sweep.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  sweep.interrupted = sigint.Interrupted();
  if (sampler != nullptr) {
    sweep.monitor = sampler->Stop();
    sweep.monitor.ExportTo(sweep.metrics.get());
    // Also visible in host_profile.json bundles written after the sweep:
    // each worker's monitored busy-seconds as a named phase accumulator.
    for (const obs::WorkerSnapshot& w : sweep.monitor.last.workers) {
      obs::HostProfiler::Global().RecordPhase(
          StrFormat("%s:monitor-worker%d-busy", prefix.c_str(), w.worker),
          w.busy_s);
    }
  }

  // Everything below is single-threaded merge work in canonical order.
  sweep.cells.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    Result<CellResult> result =
        results[i].has_value()
            ? std::move(*results[i])
            : Result<CellResult>(Status::Internal(
                  sweep.interrupted
                      ? "sweep interrupted before cell ran"
                      : "sweep cell not executed (worker died)"));
    sweep.cells.push_back(SweepCellOutcome{cells[i].label, std::move(result)});
    if (cell_metrics[i] != nullptr) {
      sweep.metrics->MergeFrom(*cell_metrics[i]);
    }
  }

  obs::HostProfiler host_merger;
  for (int w = 0; w < sweep.jobs; ++w) {
    const std::string worker_name = StrFormat("%s:worker%d", prefix.c_str(), w);
    host_merger.MergeWorkerPhases(worker_name,
                                  worker_phases[static_cast<size_t>(w)]);
    // Also visible process-wide, so host_profile.json bundles written after
    // the sweep attribute its concurrent work honestly.
    obs::HostProfiler::Global().MergeWorkerPhases(
        worker_name, worker_phases[static_cast<size_t>(w)]);
  }
  sweep.host = host_merger.Snapshot();
  host_merger.ExportTo(sweep.metrics.get());
  sweep.metrics->GetGauge("pdsp.exec.sweep_wall_s")->Set(sweep.wall_s);
  sweep.metrics->GetGauge("pdsp.exec.jobs")
      ->Set(static_cast<double>(sweep.jobs));
  sweep.metrics->GetCounter("pdsp.exec.cells_total")
      ->Add(static_cast<int64_t>(cells.size()));
  sweep.metrics->GetCounter("pdsp.exec.cells_failed")
      ->Add(static_cast<int64_t>(cells.size() - sweep.NumOk()));

  // Ledger appends in canonical cell order, exactly as a sequential sweep
  // would have written them (modulo host-footprint fields).
  for (size_t i = 0; i < cells.size(); ++i) {
    const LedgerOptions& ledger = cells[i].protocol.ledger;
    if (!ledger.enabled || !sweep.cells[i].result.ok()) continue;
    Status st =
        obs::RunLedger(ledger.path).Append(sweep.cells[i].result->ledger_record);
    if (!st.ok()) {
      PDSP_LOG(Warn) << "sweep ledger append to " << ledger.path << ": "
                     << st.ToString();
    }
  }
  if (options.summary_ledger.enabled) {
    Status st = obs::RunLedger(options.summary_ledger.path)
                    .Append(MakeSweepSummaryRecord(options, sweep));
    if (!st.ok()) {
      PDSP_LOG(Warn) << "sweep summary ledger append: " << st.ToString();
    }
  }
  return sweep;
}

}  // namespace exec
}  // namespace pdsp
