// Experiment harness: the parallelism categories of Figures 3/4, shared
// run protocols (mean of three runs of median latency) and table/CSV
// reporting used by the per-figure benchmark drivers.

#ifndef PDSP_HARNESS_HARNESS_H_
#define PDSP_HARNESS_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/exec/run_context.h"
#include "src/obs/diagnose.h"
#include "src/obs/ledger.h"
#include "src/query/plan.h"
#include "src/sim/simulation.h"

namespace pdsp {

/// \brief One parallelism category (Figure 3/4 x-axis).
struct ParallelismCategory {
  const char* name;
  int degree;
};

/// XS=1, S=4, M=16, L=32, XL=64, XXL=128 — spanning under-provisioned to
/// heavily oversubscribed on the 10-node clusters.
const std::vector<ParallelismCategory>& StandardCategories();

/// \brief Per-cell observability artifacts: when enabled, the first repeat
/// of MeasureCell runs with a tracer attached and writes metrics.json,
/// timeseries.csv and trace.json under `dir` (conventionally
/// results/<driver>/<cell>/). Failures to write are logged, not fatal.
struct ObsOptions {
  bool enabled = false;
  std::string dir;
  /// Also trace every operator firing in virtual time (large traces).
  bool trace_verbose = false;
  /// Time-series sample interval forwarded to SimOptions.
  double metrics_interval_s = 0.25;
};

/// \brief Run-ledger options for one experiment cell: when enabled,
/// MeasureCell appends the cell's RunRecord (see src/obs/ledger.h) to the
/// JSONL ledger at `path`. The record is built either way and returned on
/// CellResult::ledger_record, so callers (baseline write) can persist it
/// themselves.
struct LedgerOptions {
  bool enabled = false;
  std::string path = "results/ledger.jsonl";
  /// Cluster profile name recorded in the ledger ("custom" when empty —
  /// the Cluster object itself does not know which preset built it).
  std::string cluster_name;
};

/// \brief Measurement protocol for one experiment cell.
struct RunProtocol {
  int repeats = 3;             ///< paper: mean of three runs
  double duration_s = 3.0;
  double warmup_s = 0.75;
  uint64_t seed = 2024;
  PlacementKind placement = PlacementKind::kLeastLoaded;
  /// Simulator cost model for every repeat. Defaults reproduce the paper
  /// protocol; ablations override single knobs (e.g. chaining) without
  /// bypassing the harness.
  CostModel costs;
  /// Cell name for provenance: names the harness-level `cell:<label>/<p>`
  /// span in trace.json and the ledger record. Empty = "plan".
  std::string label;
  ObsOptions obs;
  LedgerOptions ledger;
  /// Sampling CPU profiler for the cell (--profile[=HZ]): when enabled,
  /// MeasureCell registers its thread, starts the context-owned profiler
  /// around the repeats and attaches the CpuProfile to the cell, the
  /// artifact bundle (profile.json) and the ledger record's summary. Only
  /// wall-clock/host state is touched, so virtual-time results stay
  /// bit-identical with profiling on.
  obs::prof::ProfOptions profile;
  /// Sampling allocation profiler for the cell (--mem-profile[=KiB]): when
  /// enabled, MeasureCell starts the context-owned memory profiler around
  /// the repeats and attaches the MemProfile to the cell, the artifact
  /// bundle (memory.json), the ledger record's nested "memory" summary and
  /// — when diagnosis ran — PDSP-M301..M303 findings. Samples only observe
  /// host-side state, so virtual-time results stay bit-identical.
  obs::mem::MemOptions mem;
  /// Simulate even when static analysis (pdsp::analysis) finds
  /// error-severity diagnostics. By default such plans are refused with
  /// FailedPrecondition: a malformed plan that silently simulates corrupts
  /// a whole sweep. Warnings never block; they are counted in the
  /// pdsp.analysis.* metrics and logged at debug level.
  bool allow_invalid = false;
  /// Run bottleneck diagnosis (pdsp::obs::DiagnoseRun) on the first repeat
  /// and attach it to the cell; with obs enabled it is also written as
  /// diagnosis.json. Cheap (rule evaluation over already-collected stats).
  bool diagnose = true;
  /// Thresholds for the diagnosis rules.
  obs::DiagnoseOptions diagnose_options;
};

/// \brief One measured experiment cell.
struct CellResult {
  double mean_median_latency_s = 0.0;
  double mean_throughput_tps = 0.0;
  /// p95/p99 of the first (representative) repeat.
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  /// Per-repeat median-latency / throughput samples — the repeat-run
  /// variance the comparison engine gates regressions on.
  RunningStats median_latency_stats;
  RunningStats throughput_stats;
  int64_t late_drops = 0;
  int64_t backpressure_skipped = 0;
  /// Per-operator stats of the first (representative) repeat — utilization
  /// and imbalance columns without re-running outside the harness.
  std::vector<OperatorRunStats> op_stats;
  /// Diagnosis of the first repeat (RunProtocol::diagnose); check
  /// `has_diagnosis` before reading.
  bool has_diagnosis = false;
  obs::Diagnosis diagnosis;
  /// Provenance record for the cell (appended to the ledger when
  /// RunProtocol::ledger.enabled; always populated on success).
  obs::RunRecord ledger_record;
  /// Sampled CPU profile of the cell (RunProtocol::profile.enabled); check
  /// `has_profile` before reading.
  bool has_profile = false;
  obs::prof::CpuProfile profile;
  /// Sampled allocation profile of the cell (RunProtocol::mem.enabled);
  /// check `has_mem_profile` before reading. Stays false when allocation
  /// interposition is compiled out (PDSP_SANITIZE=address).
  bool has_mem_profile = false;
  obs::mem::MemProfile mem_profile;
};

/// Builds the provenance RunRecord for a measured cell: plan hash and
/// protocol parameters, the cell's virtual-time metrics with repeat
/// variance, diagnosis codes, artifact dir and the current host footprint.
obs::RunRecord MakeLedgerRecord(const LogicalPlan& plan,
                                const Cluster& cluster,
                                const RunProtocol& protocol,
                                const CellResult& cell);

/// Runs a validated plan `repeats` times with distinct seeds and aggregates
/// per the paper's protocol. All mutable run state (tracer, metrics, phase
/// timers) lives in `context`, which must be private to this call — the
/// sweep scheduler hands every concurrent cell its own context. Repeat
/// seeds derive only from protocol.seed, so results are bit-identical
/// regardless of which worker/context executes the cell.
Result<CellResult> MeasureCell(const LogicalPlan& plan,
                               const Cluster& cluster,
                               const RunProtocol& protocol,
                               exec::RunContext* context);

/// Compatibility shim for single-threaded callers: measures with a private
/// context whose phase timers land in obs::HostProfiler::Global(), exactly
/// the legacy behavior.
Result<CellResult> MeasureCell(const LogicalPlan& plan,
                               const Cluster& cluster,
                               const RunProtocol& protocol);

/// Applies a uniform parallelism degree (sink stays 1) and measures.
Result<CellResult> MeasureAtDegree(LogicalPlan plan, int degree,
                                   const Cluster& cluster,
                                   const RunProtocol& protocol);
Result<CellResult> MeasureAtDegree(LogicalPlan plan, int degree,
                                   const Cluster& cluster,
                                   const RunProtocol& protocol,
                                   exec::RunContext* context);

/// \brief Fixed-width text table accumulated row by row; also serializable
/// to CSV for downstream plotting.
class TableReporter {
 public:
  TableReporter(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  /// Renders the aligned table to stdout.
  void Print() const;

  /// Writes CSV into `path` (creating parent directories). Returns the
  /// status so drivers can warn without aborting.
  Status WriteCsv(const std::string& path) const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// "123.456" style cell helpers.
std::string LatencyCell(double seconds);
std::string ThroughputCell(double tps);

}  // namespace pdsp

#endif  // PDSP_HARNESS_HARNESS_H_
