#include "src/exec/sweep.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/common/string_util.h"
#include "src/obs/ledger.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace exec {
namespace {

// A 16-cell grid over (rate, parallelism): big enough to exercise real
// fan-out, small enough (0.4s horizon, 1 repeat) to stay fast.
std::vector<SweepCell> MakeGrid(const std::string& ledger_path = "") {
  std::vector<SweepCell> cells;
  const Cluster cluster = Cluster::M510(4);
  for (int i = 0; i < 16; ++i) {
    SweepCell cell;
    const double rate = 800.0 + 125.0 * i;
    const int parallelism = 1 + (i % 3);
    cell.make_plan = [rate, parallelism] {
      return testing::LinearPlan(rate, parallelism);
    };
    cell.cluster = cluster;
    cell.protocol.repeats = 1;
    cell.protocol.duration_s = 0.4;
    cell.protocol.warmup_s = 0.1;
    cell.protocol.seed = 7;
    cell.protocol.diagnose = false;
    cell.label = StrFormat("grid/%02d", i);
    if (!ledger_path.empty()) {
      cell.protocol.ledger.enabled = true;
      cell.protocol.ledger.path = ledger_path;
      cell.protocol.ledger.cluster_name = "m510";
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::string TempLedgerPath(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/pdsp_sweep_test";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name + ".jsonl";
  std::filesystem::remove(path);
  return path;
}

TEST(SweepTest, SequentialAndParallelRunsAreBitIdentical) {
  const std::string ledger1 = TempLedgerPath("jobs1");
  const std::string ledger8 = TempLedgerPath("jobs8");

  SweepOptions seq;
  seq.jobs = 1;
  const SweepResult r1 = RunSweep(MakeGrid(ledger1), seq);

  SweepOptions par;
  par.jobs = 8;
  const SweepResult r8 = RunSweep(MakeGrid(ledger8), par);

  ASSERT_EQ(r1.cells.size(), 16u);
  ASSERT_EQ(r8.cells.size(), 16u);
  EXPECT_EQ(r1.NumOk(), 16u);
  EXPECT_EQ(r8.NumOk(), 16u);

  for (size_t i = 0; i < 16; ++i) {
    SCOPED_TRACE(r1.cells[i].label);
    EXPECT_EQ(r1.cells[i].label, r8.cells[i].label);
    ASSERT_TRUE(r1.cells[i].result.ok());
    ASSERT_TRUE(r8.cells[i].result.ok());
    const CellResult& a = *r1.cells[i].result;
    const CellResult& b = *r8.cells[i].result;
    // Exact equality, not tolerance: the simulator is deterministic in
    // virtual time and seeds derive only from (protocol.seed, repeat).
    EXPECT_EQ(a.mean_median_latency_s, b.mean_median_latency_s);
    EXPECT_EQ(a.mean_throughput_tps, b.mean_throughput_tps);
    EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
    EXPECT_EQ(a.late_drops, b.late_drops);
    EXPECT_EQ(a.backpressure_skipped, b.backpressure_skipped);
  }

  // Ledger records: same canonical order and identical content modulo the
  // per-invocation identity (run_id, timestamp) and host-footprint fields.
  auto records1 = obs::RunLedger(ledger1).Load();
  auto records8 = obs::RunLedger(ledger8).Load();
  ASSERT_TRUE(records1.ok());
  ASSERT_TRUE(records8.ok());
  ASSERT_EQ(records1->size(), 16u);
  ASSERT_EQ(records8->size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    const obs::RunRecord& a = (*records1)[i];
    const obs::RunRecord& b = (*records8)[i];
    SCOPED_TRACE(a.label);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.plan_hash, b.plan_hash);
    EXPECT_EQ(a.parallelism, b.parallelism);
    EXPECT_EQ(a.event_rate, b.event_rate);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.repeats, b.repeats);
    EXPECT_EQ(a.throughput_tps, b.throughput_tps);
    EXPECT_EQ(a.median_latency_s, b.median_latency_s);
    EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
    EXPECT_EQ(a.late_drops, b.late_drops);
    EXPECT_EQ(a.backpressure_skipped, b.backpressure_skipped);
  }
}

TEST(SweepTest, ResultsComeBackInCellOrder) {
  SweepOptions options;
  options.jobs = 4;
  const SweepResult sweep = RunSweep(MakeGrid(), options);
  ASSERT_EQ(sweep.cells.size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sweep.cells[i].label, StrFormat("grid/%02zu", i));
  }
}

TEST(SweepTest, FailingCellDoesNotPoisonTheSweep) {
  std::vector<SweepCell> cells = MakeGrid();
  cells.resize(4);
  cells[1].make_plan = []() -> Result<LogicalPlan> {
    return Status::InvalidArgument("deliberately broken cell");
  };
  SweepOptions options;
  options.jobs = 2;
  const SweepResult sweep = RunSweep(cells, options);
  ASSERT_EQ(sweep.cells.size(), 4u);
  EXPECT_EQ(sweep.NumOk(), 3u);
  EXPECT_TRUE(sweep.cells[0].result.ok());
  ASSERT_FALSE(sweep.cells[1].result.ok());
  EXPECT_TRUE(sweep.cells[1].result.status().IsInvalidArgument());
  EXPECT_TRUE(sweep.cells[2].result.ok());
  EXPECT_TRUE(sweep.cells[3].result.ok());
  EXPECT_EQ(sweep.metrics->CounterValue("pdsp.exec.cells_failed"), 1);
}

TEST(SweepTest, MissingPlanFactoryIsInvalidArgument) {
  std::vector<SweepCell> cells(1);
  cells[0].label = "no-factory";
  const SweepResult sweep = RunSweep(cells, SweepOptions());
  ASSERT_EQ(sweep.cells.size(), 1u);
  ASSERT_FALSE(sweep.cells[0].result.ok());
  EXPECT_TRUE(sweep.cells[0].result.status().IsInvalidArgument());
}

TEST(SweepTest, MergedMetricsAndHostProfileCoverAllCells) {
  SweepOptions options;
  options.jobs = 4;
  std::vector<SweepCell> cells = MakeGrid();
  cells.resize(8);
  const SweepResult sweep = RunSweep(cells, options);
  ASSERT_NE(sweep.metrics, nullptr);
  EXPECT_EQ(sweep.metrics->CounterValue("pdsp.exec.cells_total"), 8);
  EXPECT_EQ(sweep.metrics->CounterValue("pdsp.exec.cells_failed"), 0);
  EXPECT_EQ(sweep.metrics->GaugeValue("pdsp.exec.jobs"), 4.0);
  EXPECT_GT(sweep.metrics->GaugeValue("pdsp.exec.sweep_wall_s"), 0.0);

  // Worker phase seconds live under worker_phases (per worker), never in
  // the wall-clock `phases` map — that would double-count CPU seconds.
  EXPECT_FALSE(sweep.host.worker_phases.empty());
  EXPECT_EQ(sweep.host.phases.count("simulate"), 0u);
  const obs::WorkerPhaseMap aggregate = sweep.host.AggregateWorkerPhases();
  ASSERT_EQ(aggregate.count("simulate"), 1u);
  // 8 cells x 1 repeat = 8 simulate scopes across all workers.
  EXPECT_EQ(aggregate.at("simulate").count, 8);
}

TEST(SweepTest, SummaryRecordLandsInTheSummaryLedger) {
  const std::string path = TempLedgerPath("summary");
  SweepOptions options;
  options.jobs = 2;
  options.name = "unit-sweep";
  options.summary_ledger.enabled = true;
  options.summary_ledger.path = path;
  options.summary_ledger.cluster_name = "m510";
  std::vector<SweepCell> cells = MakeGrid();
  cells.resize(4);
  const SweepResult sweep = RunSweep(cells, options);
  EXPECT_EQ(sweep.NumOk(), 4u);
  auto records = obs::RunLedger(path).Load();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].label, "unit-sweep");
  EXPECT_EQ((*records)[0].parallelism, 2);  // jobs recorded as parallelism
  EXPECT_GT((*records)[0].host_wall_s, 0.0);
}

}  // namespace
}  // namespace exec
}  // namespace pdsp
