#include "src/data/arrival.h"

#include <gtest/gtest.h>

namespace pdsp {
namespace {

TEST(ArrivalTest, RejectsNonPositiveRate) {
  ArrivalProcess::Options opt;
  opt.rate = 0.0;
  EXPECT_TRUE(ArrivalProcess::Create(opt).status().IsInvalidArgument());
  opt.rate = -5.0;
  EXPECT_TRUE(ArrivalProcess::Create(opt).status().IsInvalidArgument());
}

TEST(ArrivalTest, RejectsBadBurstParameters) {
  ArrivalProcess::Options opt;
  opt.kind = ArrivalKind::kBursty;
  opt.rate = 100.0;
  opt.peak_factor = 0.5;
  EXPECT_FALSE(ArrivalProcess::Create(opt).ok());
  opt.peak_factor = 2.0;
  opt.duty_cycle = 0.0;
  EXPECT_FALSE(ArrivalProcess::Create(opt).ok());
  opt.duty_cycle = 0.25;
  opt.burst_period = 0.0;
  EXPECT_FALSE(ArrivalProcess::Create(opt).ok());
}

TEST(ArrivalTest, ConstantInterarrivalIsExact) {
  ArrivalProcess::Options opt;
  opt.kind = ArrivalKind::kConstant;
  opt.rate = 250.0;
  auto p = ArrivalProcess::Create(opt);
  ASSERT_TRUE(p.ok());
  Rng rng(1);
  EXPECT_DOUBLE_EQ(p->NextInterarrival(&rng), 1.0 / 250.0);
}

TEST(ArrivalTest, PoissonInterarrivalMeanMatchesRate) {
  ArrivalProcess::Options opt;
  opt.rate = 1000.0;
  auto p = ArrivalProcess::Create(opt);
  ASSERT_TRUE(p.ok());
  Rng rng(2);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += p->NextInterarrival(&rng);
  EXPECT_NEAR(sum / n, 1.0 / 1000.0, 1e-4);
}

TEST(ArrivalTest, EventsInWindowMeanMatchesRate) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kConstant}) {
    ArrivalProcess::Options opt;
    opt.kind = kind;
    opt.rate = 5000.0;
    auto p = ArrivalProcess::Create(opt);
    ASSERT_TRUE(p.ok());
    Rng rng(3);
    int64_t total = 0;
    const int windows = 2000;
    const double dt = 0.01;
    for (int i = 0; i < windows; ++i) {
      total += p->EventsInWindow(i * dt, dt, &rng);
    }
    const double mean_rate = static_cast<double>(total) / (windows * dt);
    EXPECT_NEAR(mean_rate, 5000.0, 100.0) << ArrivalKindToString(kind);
  }
}

TEST(ArrivalTest, EventsInWindowZeroOrNegativeDt) {
  ArrivalProcess::Options opt;
  opt.rate = 100.0;
  auto p = ArrivalProcess::Create(opt);
  ASSERT_TRUE(p.ok());
  Rng rng(4);
  EXPECT_EQ(p->EventsInWindow(0.0, 0.0, &rng), 0);
  EXPECT_EQ(p->EventsInWindow(0.0, -1.0, &rng), 0);
}

TEST(ArrivalTest, BurstyPreservesMeanRate) {
  ArrivalProcess::Options opt;
  opt.kind = ArrivalKind::kBursty;
  opt.rate = 1000.0;
  opt.peak_factor = 3.0;
  opt.burst_period = 1.0;
  opt.duty_cycle = 0.25;
  auto p = ArrivalProcess::Create(opt);
  ASSERT_TRUE(p.ok());
  Rng rng(5);
  int64_t total = 0;
  const double dt = 0.005;
  const int windows = 20000;  // 100 seconds => 100 full burst periods
  for (int i = 0; i < windows; ++i) {
    total += p->EventsInWindow(i * dt, dt, &rng);
  }
  EXPECT_NEAR(static_cast<double>(total) / (windows * dt), 1000.0, 30.0);
}

TEST(ArrivalTest, BurstyOnPeriodIsHotterThanOffPeriod) {
  ArrivalProcess::Options opt;
  opt.kind = ArrivalKind::kBursty;
  opt.rate = 1000.0;
  opt.peak_factor = 3.0;
  opt.burst_period = 1.0;
  opt.duty_cycle = 0.25;
  auto p = ArrivalProcess::Create(opt);
  ASSERT_TRUE(p.ok());
  Rng rng(6);
  int64_t on = 0, off = 0;
  for (int rep = 0; rep < 200; ++rep) {
    on += p->EventsInWindow(rep + 0.1, 0.05, &rng);   // phase 0.1 < 0.25
    off += p->EventsInWindow(rep + 0.6, 0.05, &rng);  // phase 0.6 > 0.25
  }
  EXPECT_GT(on, off * 2);
}

TEST(ArrivalTest, StandardEventRatesMatchTable3) {
  const auto& rates = StandardEventRates();
  ASSERT_EQ(rates.size(), 12u);
  EXPECT_EQ(rates.front(), 10.0);
  EXPECT_EQ(rates.back(), 4e6);
  for (size_t i = 1; i < rates.size(); ++i) EXPECT_GT(rates[i], rates[i - 1]);
}

TEST(ArrivalTest, KindNames) {
  EXPECT_STREQ(ArrivalKindToString(ArrivalKind::kPoisson), "poisson");
  EXPECT_STREQ(ArrivalKindToString(ArrivalKind::kConstant), "constant");
  EXPECT_STREQ(ArrivalKindToString(ArrivalKind::kBursty), "bursty");
}

}  // namespace
}  // namespace pdsp
