#include "src/workload/autoscaler.h"

#include <gtest/gtest.h>

#include "src/harness/synthetic_suite.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

AutoscalerOptions FastOptions() {
  AutoscalerOptions opt;
  opt.execution.sim.duration_s = 2.0;
  opt.execution.sim.warmup_s = 0.5;
  opt.max_degree = 64;
  return opt;
}

TEST(AutoscalerTest, RequiresValidatedPlanAndSaneOptions) {
  LogicalPlan raw;
  EXPECT_TRUE(Autoscale(raw, Cluster::M510(4), FastOptions())
                  .status()
                  .IsFailedPrecondition());
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  AutoscalerOptions bad = FastOptions();
  bad.target_utilization = 1.5;
  EXPECT_FALSE(Autoscale(*plan, Cluster::M510(4), bad).ok());
  bad = FastOptions();
  bad.max_degree = 0;
  EXPECT_FALSE(Autoscale(*plan, Cluster::M510(4), bad).ok());
}

TEST(AutoscalerTest, ScalesUpSaturatedPlan) {
  // 150k ev/s on single instances: the source alone needs ~0.75 cores, so
  // the controller must raise degrees and cut latency.
  auto plan = testing::LinearPlan(/*rate=*/150000.0, /*parallelism=*/1);
  ASSERT_TRUE(plan.ok());
  auto result = Autoscale(*plan, Cluster::M510(10), FastOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->steps.size(), 2u);
  const auto src = plan->FindOperator("src");
  ASSERT_TRUE(src.ok());
  EXPECT_GT(result->final_degrees[*src], 1);
  EXPECT_LT(result->final_latency_s,
            result->steps.front().median_latency_s);
  EXPECT_TRUE(result->converged);
}

TEST(AutoscalerTest, LeavesIdlePlanNearMinimum) {
  auto plan = testing::LinearPlan(/*rate=*/500.0, /*parallelism=*/1);
  ASSERT_TRUE(plan.ok());
  auto result = Autoscale(*plan, Cluster::M510(4), FastOptions());
  ASSERT_TRUE(result.ok());
  for (int degree : result->final_degrees) EXPECT_LE(degree, 2);
  EXPECT_TRUE(result->converged);
}

TEST(AutoscalerTest, ScalesDownOverprovisionedPlan) {
  auto plan = testing::LinearPlan(/*rate=*/5000.0, /*parallelism=*/32);
  ASSERT_TRUE(plan.ok());
  auto result = Autoscale(*plan, Cluster::M510(10), FastOptions());
  ASSERT_TRUE(result.ok());
  const auto src = plan->FindOperator("src");
  ASSERT_TRUE(src.ok());
  EXPECT_LT(result->final_degrees[*src], 32);
}

TEST(AutoscalerTest, RespectsDegreeBounds) {
  auto plan = testing::LinearPlan(/*rate=*/200000.0, /*parallelism=*/1);
  ASSERT_TRUE(plan.ok());
  AutoscalerOptions opt = FastOptions();
  opt.max_degree = 4;
  auto result = Autoscale(*plan, Cluster::M510(10), opt);
  ASSERT_TRUE(result.ok());
  for (int degree : result->final_degrees) {
    EXPECT_GE(degree, 1);
    EXPECT_LE(degree, 4);
  }
}

TEST(AutoscalerTest, ConvergesOnJoinPlan) {
  CanonicalOptions copt;
  copt.event_rate = 80000.0;
  copt.parallelism = 1;
  auto plan = MakeCanonicalSynthetic(SyntheticStructure::kTwoWayJoin, copt);
  ASSERT_TRUE(plan.ok());
  AutoscalerOptions opt = FastOptions();
  opt.max_iterations = 8;
  auto result = Autoscale(*plan, Cluster::M510(10), opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->converged);
  // Final utilizations sit at or below roughly the target band.
  EXPECT_LT(result->steps.back().max_utilization, 0.95);
}

}  // namespace
}  // namespace pdsp
