// Round-trips a trace through the on-disk Chrome trace_event format: build
// spans/instants/counters, WriteFile, read the bytes back, parse with the
// repo's JSON parser and verify structure. Registered as its own ctest
// binary so the tier-1 test command always exercises the export path.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/trace.h"

namespace pdsp {
namespace obs {
namespace {

TEST(TraceRoundtripTest, WriteReadParseVerify) {
  Tracer tracer;
  {
    Span outer(&tracer, "outer", "phase");
    Span inner(&tracer, "inner", "phase");
  }
  tracer.AddInstant("marker", "sim", 1234.5, kVirtualPid, 3);
  tracer.AddCounter("pdsp.sim.in_flight_tuples", 2000.0, 17.0);
  tracer.SetThreadName(kVirtualPid, 3, "agg[0]");
  ASSERT_EQ(tracer.NumEvents(), 5u);

  const std::string path = ::testing::TempDir() + "/pdsp_trace_roundtrip.json";
  Status st = tracer.WriteFile(path);
  ASSERT_TRUE(st.ok()) << st.ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();

  auto parsed = Json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& doc = *parsed;
  EXPECT_EQ(doc["displayTimeUnit"].AsString(), "ms");
  ASSERT_TRUE(doc["traceEvents"].is_array());
  ASSERT_EQ(doc["traceEvents"].size(), 5u);

  int complete = 0, instant = 0, counter = 0, metadata = 0;
  for (size_t i = 0; i < doc["traceEvents"].size(); ++i) {
    const Json& e = doc["traceEvents"].at(i);
    const std::string ph = e["ph"].AsString();
    if (ph == "X") {
      ++complete;
      EXPECT_TRUE(e["ts"].is_number());
      EXPECT_GE(e["dur"].AsNumber(), 0.0);
    } else if (ph == "i") {
      ++instant;
      EXPECT_DOUBLE_EQ(e["ts"].AsNumber(), 1234.5);
    } else if (ph == "C") {
      ++counter;
      EXPECT_DOUBLE_EQ(e["args"]["value"].AsNumber(), 17.0);
    } else if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e["args"]["name"].AsString(), "agg[0]");
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instant, 1);
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(metadata, 1);
}

TEST(TraceRoundtripTest, EventCapDropsAndCounts) {
  Tracer tracer(/*max_events=*/2);
  tracer.AddInstant("a", "t", 1.0);
  tracer.AddInstant("b", "t", 2.0);
  tracer.AddInstant("c", "t", 3.0);
  EXPECT_EQ(tracer.NumEvents(), 2u);
  EXPECT_EQ(tracer.DroppedEvents(), 1);
  const Json doc = tracer.ToJson();
  EXPECT_EQ(doc["droppedEvents"].AsInt(), 1);
}

TEST(TraceRoundtripTest, NullTracerSpanIsNoOp) {
  Span span(nullptr, "ignored");
  span.End();  // must not crash
}

}  // namespace
}  // namespace obs
}  // namespace pdsp
