// User-defined operators (UDOs). Real-world applications (Table 2) embed
// custom logic — tokenizers, outlier detectors, sentiment scoring, spike
// detection — that standard operators can't express. A UDO is looked up by
// its `kind` string in a process-wide registry; the apps module registers
// the application-specific kinds, and a few generic kinds ship built in.

#ifndef PDSP_RUNTIME_UDO_H_
#define PDSP_RUNTIME_UDO_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/query/plan.h"
#include "src/runtime/element.h"

namespace pdsp {

/// \brief Per-call context handed to a UDO.
struct UdoContext {
  double now = 0.0;   ///< current virtual time
  int instance = 0;   ///< this parallel instance's index
  Rng* rng = nullptr; ///< instance-local deterministic RNG
};

/// \brief One parallel instance of a user-defined operator. Implementations
/// own their state; a fresh instance is created per physical task.
class Udo {
 public:
  virtual ~Udo() = default;

  /// Processes one element; appends zero or more outputs.
  virtual void Process(const StreamElement& element, UdoContext* ctx,
                       std::vector<StreamElement>* out) = 0;

  /// Emits any buffered partial results at end of stream.
  virtual void Flush(UdoContext* ctx, std::vector<StreamElement>* out) {
    (void)ctx;
    (void)out;
  }
};

using UdoFactory =
    std::function<std::unique_ptr<Udo>(const OperatorDescriptor&)>;

/// \brief Determinism-relevant properties a UDO kind declares at
/// registration, consumed by the static determinism analysis
/// (src/analysis/properties.h). Kinds registered without traits are
/// treated as nondeterministic — declaring traits is the opt-in that makes
/// a plan eligible for a determinism verdict better than "unknown".
struct UdoTraits {
  /// Output depends only on the individual input element (no state, no
  /// rng, no arrival-order sensitivity).
  bool pure = false;
  /// Consumes rng draws per element: output content is deterministic only
  /// under a fixed per-instance element order (draws realign).
  bool rng = false;
  /// Keeps state whose evolution depends on the order elements arrive in
  /// (running counts, sequence detectors, ...).
  bool order_sensitive = false;
};

/// \brief Process-wide registry of UDO kinds.
///
/// Thread-safety: Create/Contains/Kinds are safe to call concurrently —
/// sweep workers instantiate UDOs from inside cell execution
/// (CreateOperatorInstance). Register is also locked, but the supported
/// protocol is to register every kind before spawning workers (the drivers
/// and CLI call RegisterAppUdos() up front): a factory registered while a
/// concurrent Create runs is only visible to lookups that start afterwards.
class UdoRegistry {
 public:
  /// The singleton registry (generic kinds pre-registered).
  static UdoRegistry& Global();

  /// Registers a factory; re-registering a kind replaces it. Call before
  /// spawning sweep workers (see class comment). The overload without
  /// traits leaves the kind's determinism unknown (= nondeterministic to
  /// the analysis).
  void Register(const std::string& kind, UdoFactory factory);
  void Register(const std::string& kind, UdoFactory factory,
                const UdoTraits& traits);

  /// Declared determinism traits of a kind; nullopt when the kind is
  /// unknown or was registered without traits.
  std::optional<UdoTraits> TraitsOf(const std::string& kind) const;

  /// Instantiates the UDO for a descriptor by its udo_kind. The factory
  /// runs outside the registry lock, so a slow factory never serializes
  /// concurrent cells.
  Result<std::unique_ptr<Udo>> Create(const OperatorDescriptor& op) const;

  bool Contains(const std::string& kind) const;
  std::vector<std::string> Kinds() const;

 private:
  UdoRegistry();

  mutable Mutex mu_;
  std::map<std::string, UdoFactory> factories_ PDSP_GUARDED_BY(mu_);
  std::map<std::string, UdoTraits> traits_ PDSP_GUARDED_BY(mu_);
};

// Generic built-in kinds:
//   "noop"       pass-through
//   "sample"     passes each element with probability udo_selectivity
//   "replicate"  emits round(udo_selectivity) copies (stochastic fraction)
//   "heavy"      pass-through whose cost is udo_cost_factor (cost model side)
//   "key_count"  stateful: appends a per-key running count (key = field 0)

}  // namespace pdsp

#endif  // PDSP_RUNTIME_UDO_H_
