// Parallelism enumeration strategies (Section 3.1 "Parallelism enumerator").
// Random parallelism degrees produce noisy or wasteful plans (e.g. one
// filter instance feeding many join instances), so PDSP-Bench offers six
// strategies: Random, Rule-based (DS2-style [35]: event rates, operator
// selectivity and core counts), Exhaustive, MinAvgMax, Increasing and
// Parameter-based.

#ifndef PDSP_WORKLOAD_ENUMERATOR_H_
#define PDSP_WORKLOAD_ENUMERATOR_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/query/plan.h"
#include "src/sim/cost_model.h"

namespace pdsp {

enum class EnumerationStrategy {
  kRandom = 0,
  kRuleBased,
  kExhaustive,
  kMinAvgMax,
  kIncreasing,
  kParameterBased,
};

const char* EnumerationStrategyToString(EnumerationStrategy strategy);

/// \brief One per-operator parallelism assignment (operator-id order).
using ParallelismAssignment = std::vector<int>;

/// \brief Enumeration parameters.
struct EnumerationOptions {
  int min_degree = 1;
  /// Usually the per-node core count of the target cluster (Random's upper
  /// bound, Rule-based's clamp, ladders' top rung).
  int max_degree = 16;
  /// How many assignments to produce for the stochastic strategies
  /// (Random, Rule-based variants).
  int num_assignments = 8;
  /// Cap on Exhaustive's combination count (it enumerates a power-of-two
  /// ladder per operator and stops after this many).
  int exhaustive_limit = 256;
  /// Assignment for kParameterBased: one degree per operator, or a single
  /// degree broadcast to every operator.
  std::vector<int> parameter_degrees;
  /// Rule-based: target per-instance utilization.
  double target_utilization = 0.7;
  /// Rule-based: how far variants jitter around the computed degree (+-).
  int rule_jitter = 1;
  /// Cost model used by Rule-based to turn rates into degrees.
  CostModel costs;
};

/// Produces parallelism assignments for the plan's operators. Sinks always
/// get degree 1 and sources are bounded like any other operator. Every
/// returned assignment is valid (degrees >= 1).
Result<std::vector<ParallelismAssignment>> EnumerateParallelism(
    const LogicalPlan& plan, EnumerationStrategy strategy,
    const EnumerationOptions& options, Rng* rng);

/// Applies an assignment to the plan (operator-id order) and re-validates.
Status ApplyParallelism(LogicalPlan* plan,
                        const ParallelismAssignment& degrees);

/// Sets every operator except the sink to `degree` and re-validates — the
/// "parallelism category" knob used by the Figure 3/4 experiments.
Status ApplyUniformParallelism(LogicalPlan* plan, int degree);

}  // namespace pdsp

#endif  // PDSP_WORKLOAD_ENUMERATOR_H_
