#include "src/harness/harness.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/analysis/analyzer.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/artifacts.h"
#include "src/workload/enumerator.h"

namespace pdsp {

const std::vector<ParallelismCategory>& StandardCategories() {
  static const std::vector<ParallelismCategory> kCategories = {
      {"XS", 1}, {"S", 4}, {"M", 16}, {"L", 32}, {"XL", 64}, {"XXL", 128},
  };
  return kCategories;
}

Result<CellResult> MeasureCell(const LogicalPlan& plan,
                               const Cluster& cluster,
                               const RunProtocol& protocol) {
  if (protocol.repeats < 1) return Status::InvalidArgument("repeats < 1");

  // Static-analysis gate: never burn simulation time on a plan whose
  // results would be meaningless. Warning-only reports are recorded in the
  // pdsp.analysis.* counters; one debug line keeps sweeps quiet.
  const analysis::AnalysisReport report = analysis::AnalyzePlan(plan);
  if (report.HasErrors()) {
    if (!protocol.allow_invalid) return report.ToStatus();
    PDSP_LOG(Warn) << "simulating plan with " << report.NumErrors()
                   << " analysis error(s) (allow_invalid set)";
  } else if (!report.empty()) {
    PDSP_LOG(Debug) << "plan analysis: "
                    << report.CountAtLeast(analysis::Severity::kWarning)
                    << " warning(s)";
  }

  CellResult cell;
  int usable = 0;
  for (int r = 0; r < protocol.repeats; ++r) {
    ExecutionOptions exec;
    exec.placement = protocol.placement;
    exec.sim.duration_s = protocol.duration_s;
    exec.sim.warmup_s = protocol.warmup_s;
    exec.sim.seed = protocol.seed + static_cast<uint64_t>(r) * 7919ULL;
    // Artifacts come from the first repeat only: one representative run per
    // cell keeps the bundle small and the remaining repeats untraced.
    const bool emit_obs = protocol.obs.enabled && r == 0;
    // Attribution only costs wall clock — virtual-time results are
    // unaffected — so enabling it for the diagnosed repeat is safe.
    exec.sim.attribute_latency = r == 0 && protocol.diagnose;
    obs::Tracer tracer;
    if (emit_obs) {
      tracer.set_verbose(protocol.obs.trace_verbose);
      exec.sim.tracer = &tracer;
      exec.sim.metrics_interval_s = protocol.obs.metrics_interval_s;
    }
    PDSP_ASSIGN_OR_RETURN(SimResult run, ExecutePlan(plan, cluster, exec));
    if (r == 0 && protocol.diagnose) {
      // Diagnose the representative run; a diagnosis failure downgrades to
      // a warning so a sweep never dies on its observability.
      Result<obs::Diagnosis> diag =
          obs::DiagnoseRun(plan, cluster, run, protocol.diagnose_options);
      if (diag.ok()) {
        cell.diagnosis = std::move(diag).value();
        cell.has_diagnosis = true;
      } else {
        PDSP_LOG(Warn) << "run diagnosis: " << diag.status().ToString();
      }
    }
    if (emit_obs) {
      Status st = obs::WriteRunArtifacts(
          protocol.obs.dir, run, &tracer,
          cell.has_diagnosis ? &cell.diagnosis : nullptr);
      if (!st.ok()) {
        PDSP_LOG(Warn) << "obs artifacts for " << protocol.obs.dir << ": "
                       << st.ToString();
      }
    }
    cell.late_drops += run.late_drops;
    cell.backpressure_skipped += run.backpressure_skipped;
    if (!std::isnan(run.median_latency_s)) {
      cell.mean_median_latency_s += run.median_latency_s;
      cell.mean_throughput_tps += run.throughput_tps;
      ++usable;
    }
  }
  if (usable == 0) {
    return Status::Internal("no run produced sink results");
  }
  cell.mean_median_latency_s /= usable;
  cell.mean_throughput_tps /= usable;
  return cell;
}

Result<CellResult> MeasureAtDegree(LogicalPlan plan, int degree,
                                   const Cluster& cluster,
                                   const RunProtocol& protocol) {
  PDSP_RETURN_NOT_OK(ApplyUniformParallelism(&plan, degree));
  return MeasureCell(plan, cluster, protocol);
}

TableReporter::TableReporter(std::string title,
                             std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TableReporter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void TableReporter::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]),
                  c < cells.size() ? cells[c].c_str() : "");
    }
    std::printf("\n");
  };
  print_row(columns_);
  size_t total = columns_.size() * 2;
  for (size_t w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

Status TableReporter::WriteCsv(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out.good()) return Status::Internal("cannot open " + path);
  out << Join(columns_, ",") << "\n";
  for (const auto& row : rows_) out << Join(row, ",") << "\n";
  return Status::OK();
}

std::string LatencyCell(double seconds) {
  return StrFormat("%.2f", seconds * 1e3);
}

std::string ThroughputCell(double tps) { return StrFormat("%.0f", tps); }

}  // namespace pdsp
