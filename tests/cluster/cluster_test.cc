#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pdsp {
namespace {

TEST(NodeSpecTest, Table4Presets) {
  const NodeSpec m510 = M510Spec();
  EXPECT_EQ(m510.model, "m510");
  EXPECT_EQ(m510.cores, 8);
  EXPECT_DOUBLE_EQ(m510.clock_ghz, 2.0);
  EXPECT_DOUBLE_EQ(m510.speed_factor, 1.0);  // the reference core
  EXPECT_DOUBLE_EQ(m510.nic_gbps, 10.0);

  const NodeSpec c6525 = C6525Spec();
  EXPECT_EQ(c6525.cores, 16);
  EXPECT_DOUBLE_EQ(c6525.clock_ghz, 2.2);
  EXPECT_GT(c6525.speed_factor, 1.0);
  EXPECT_DOUBLE_EQ(c6525.nic_gbps, 25.0);

  const NodeSpec c6320 = C6320Spec();
  EXPECT_EQ(c6320.cores, 28);
  EXPECT_DOUBLE_EQ(c6320.memory_gb, 256.0);
}

TEST(ClusterTest, M510IsHomogeneous) {
  Cluster c = Cluster::M510(10);
  EXPECT_EQ(c.NumNodes(), 10u);
  EXPECT_EQ(c.TotalCores(), 80);
  EXPECT_FALSE(c.IsHeterogeneous());
  for (const Node& n : c.nodes()) {
    EXPECT_DOUBLE_EQ(n.effective_speed, 1.0);
  }
}

TEST(ClusterTest, HeClustersCarrySpeedJitter) {
  Cluster c = Cluster::C6525(10);
  EXPECT_TRUE(c.IsHeterogeneous());
  double lo = 1e9, hi = 0;
  for (const Node& n : c.nodes()) {
    lo = std::min(lo, n.effective_speed);
    hi = std::max(hi, n.effective_speed);
  }
  EXPECT_GT(hi / lo, 1.02);  // genuinely varied
  EXPECT_LT(hi / lo, 2.5);   // but bounded
}

TEST(ClusterTest, JitterIsDeterministic) {
  Cluster a = Cluster::C6320(10);
  Cluster b = Cluster::C6320(10);
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    EXPECT_DOUBLE_EQ(a.node(i).effective_speed, b.node(i).effective_speed);
  }
}

TEST(ClusterTest, MixedClusterHasAllModels) {
  Cluster c = Cluster::Mixed(10);
  EXPECT_EQ(c.NumNodes(), 10u);
  int m510 = 0, c6525 = 0, c6320 = 0;
  for (const Node& n : c.nodes()) {
    m510 += n.spec.model == "m510";
    c6525 += n.spec.model == "c6525_25g";
    c6320 += n.spec.model == "c6320";
  }
  EXPECT_GT(m510, 0);
  EXPECT_GT(c6525, 0);
  EXPECT_GT(c6320, 0);
  EXPECT_TRUE(c.IsHeterogeneous());
}

TEST(ClusterTest, CoreTotalsMatchTable4) {
  EXPECT_EQ(Cluster::M510(10).TotalCores(), 80);
  EXPECT_EQ(Cluster::C6525(10).TotalCores(), 160);
  EXPECT_EQ(Cluster::C6320(10).TotalCores(), 280);
}

TEST(ClusterTest, LinkLatencyZeroWithinNode) {
  Cluster c = Cluster::M510(3);
  EXPECT_DOUBLE_EQ(c.LinkLatencySeconds(1, 1), 0.0);
  EXPECT_GT(c.LinkLatencySeconds(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(c.LinkLatencySeconds(0, 1), c.LinkLatencySeconds(2, 1));
}

TEST(ClusterTest, BandwidthIsMinOfNics) {
  Cluster c;
  c.AddNodes(M510Spec(), 1);   // 10 Gbps
  c.AddNodes(C6525Spec(), 1);  // 25 Gbps
  EXPECT_DOUBLE_EQ(c.LinkBandwidthBytesPerSec(0, 1), 10e9 / 8.0);
  EXPECT_TRUE(std::isinf(c.LinkBandwidthBytesPerSec(0, 0)));
}

TEST(ClusterTest, MeanSpeedReflectsNodeMix) {
  EXPECT_DOUBLE_EQ(Cluster::M510(5).MeanSpeed(), 1.0);
  EXPECT_GT(Cluster::C6525(5).MeanSpeed(), 1.1);
  EXPECT_DOUBLE_EQ(Cluster().MeanSpeed(), 0.0);
}

TEST(ClusterTest, ToStringListsNodes) {
  std::string s = Cluster::M510(2).ToString();
  EXPECT_NE(s.find("m510"), std::string::npos);
  EXPECT_NE(s.find("2 nodes"), std::string::npos);
}

}  // namespace
}  // namespace pdsp
