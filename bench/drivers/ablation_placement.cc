// Ablation: task placement policies on the *mixed* heterogeneous cluster
// (m510 + c6525 + c6320 nodes). PDSP-Bench's controller hides
// Kubernetes/Yarn scheduling; this ablation exposes what that scheduling
// decides: capacity-aware least-loaded placement puts proportionally more
// instances on the fast EPYC nodes, which pays off exactly when operators
// run hot; blind spreading (round-robin) and locality packing leave fast
// cores idle.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/apps/apps.h"
#include "src/common/string_util.h"

namespace pdsp {

int Main(int argc, char** argv) {
  const bench::DriverSweepOptions opts = bench::ParseDriverOptions(argc, argv);
  RegisterAppUdos();
  const RunProtocol base = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 50000.0 : 150000.0;

  std::vector<std::string> columns = {"app"};
  const std::vector<PlacementKind> kinds = {
      PlacementKind::kRoundRobin, PlacementKind::kLeastLoaded,
      PlacementKind::kLocality, PlacementKind::kRandom};
  for (PlacementKind kind : kinds) {
    columns.push_back(StrFormat("%s(ms)", PlacementKindToString(kind)));
  }
  TableReporter table(
      StrFormat("Ablation: placement policy vs latency (mixed cluster x10, "
                "p=32, %.0fk ev/s)",
                rate / 1000.0),
      columns);

  const Cluster cluster = Cluster::Mixed(10);
  const std::vector<AppId> apps = {AppId::kSpikeDetection,
                                   AppId::kSentimentAnalysis,
                                   AppId::kWordCount};
  std::vector<exec::SweepCell> cells;
  for (AppId app : apps) {
    AppOptions opt;
    opt.event_rate = rate;
    // 32-way over ~4 operators puts ~13 tasks per 8-core node: packing vs
    // spreading policies now genuinely differ.
    opt.parallelism = 32;
    opt.window_scale = 0.4;
    for (PlacementKind kind : kinds) {
      exec::SweepCell cell;
      cell.make_plan = [app, opt] { return MakeApp(app, opt); };
      cell.cluster = cluster;
      cell.protocol = base;
      cell.protocol.placement = kind;
      cell.label = StrFormat("ablation_placement/%s/%s",
                             GetAppInfo(app).abbrev,
                             PlacementKindToString(kind));
      cells.push_back(std::move(cell));
    }
  }

  const exec::SweepResult sweep =
      bench::RunDriverSweep(std::move(cells), "ablation_placement", opts);

  size_t idx = 0;
  for (AppId app : apps) {
    std::vector<std::string> row = {GetAppInfo(app).abbrev};
    for ([[maybe_unused]] PlacementKind kind : kinds) {
      row.push_back(bench::LatencyOrNa(sweep.cells[idx++]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_placement.csv");
  return bench::SweepExitCode(sweep);
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
