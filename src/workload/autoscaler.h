// Reactive parallelism autoscaling, after DS2 [35] ("Three steps is all you
// need"): measure each operator's true per-instance utilization in a run,
// re-derive the degree that hits a target utilization, repeat until the
// assignment is stable. The rule-based enumerator predicts degrees from the
// cardinality model a priori; the autoscaler closes the loop with observed
// execution — the combination is the paper's envisioned use of PDSP-Bench
// for parallelism tuning.

#ifndef PDSP_WORKLOAD_AUTOSCALER_H_
#define PDSP_WORKLOAD_AUTOSCALER_H_

#include <vector>

#include <string>

#include "src/cluster/cluster.h"
#include "src/common/status.h"
#include "src/obs/diagnose.h"
#include "src/query/plan.h"
#include "src/sim/simulation.h"
#include "src/workload/enumerator.h"

namespace pdsp {

/// \brief Autoscaler parameters.
struct AutoscalerOptions {
  /// Per-instance utilization the controller steers toward.
  double target_utilization = 0.6;
  /// Accept the assignment when every operator's utilization lies in
  /// [target * (1 - band), target * (1 + band)] or its degree is pinned at
  /// a bound.
  double band = 0.5;
  int max_iterations = 6;
  int min_degree = 1;
  int max_degree = 128;
  /// Per-iteration measurement run.
  ExecutionOptions execution;
  /// Thresholds for the per-iteration run diagnosis (pdsp::obs::DiagnoseRun)
  /// whose saturated/skew findings steer the scaling rule.
  obs::DiagnoseOptions diagnose;
};

/// \brief One measure-and-rescale iteration.
struct AutoscaleStep {
  ParallelismAssignment degrees;
  double median_latency_s = 0.0;
  double max_utilization = 0.0;
  /// PDSP-R### codes the run diagnosis raised this iteration (e.g.
  /// "PDSP-R101" saturated, "PDSP-R102" skew-bound).
  std::vector<std::string> diagnostic_codes;
};

/// \brief Final outcome.
struct AutoscaleResult {
  std::vector<AutoscaleStep> steps;
  ParallelismAssignment final_degrees;
  double final_latency_s = 0.0;
  /// True if the assignment stabilized before max_iterations.
  bool converged = false;
};

/// Runs the control loop starting from the plan's current degrees.
Result<AutoscaleResult> Autoscale(LogicalPlan plan, const Cluster& cluster,
                                  const AutoscalerOptions& options);

}  // namespace pdsp

#endif  // PDSP_WORKLOAD_AUTOSCALER_H_
