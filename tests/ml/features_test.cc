#include "src/ml/features.h"

#include <gtest/gtest.h>

#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

TEST(FeaturesTest, RequiresValidatedPlan) {
  LogicalPlan raw;
  EXPECT_TRUE(
      EncodeFlat(raw, Cluster::M510(2)).status().IsFailedPrecondition());
  EXPECT_TRUE(
      EncodeGraph(raw, Cluster::M510(2)).status().IsFailedPrecondition());
}

TEST(FeaturesTest, FlatDimensionIsFixed) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto f = EncodeFlat(*plan, Cluster::M510(4));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size(), kFlatFeatureDim);
  EXPECT_DOUBLE_EQ(f->back(), 1.0);  // bias
}

TEST(FeaturesTest, RateIncreasesRateFeature) {
  auto slow = testing::LinearPlan(1000.0);
  auto fast = testing::LinearPlan(100000.0);
  ASSERT_TRUE(slow.ok() && fast.ok());
  auto f_slow = EncodeFlat(*slow, Cluster::M510(4));
  auto f_fast = EncodeFlat(*fast, Cluster::M510(4));
  ASSERT_TRUE(f_slow.ok() && f_fast.ok());
  EXPECT_GT((*f_fast)[0], (*f_slow)[0]);  // log rate feature
}

TEST(FeaturesTest, ParallelismChangesFeatures) {
  auto p1 = testing::LinearPlan(10000.0, 1);
  auto p8 = testing::LinearPlan(10000.0, 8);
  ASSERT_TRUE(p1.ok() && p8.ok());
  auto f1 = EncodeFlat(*p1, Cluster::M510(4));
  auto f8 = EncodeFlat(*p8, Cluster::M510(4));
  ASSERT_TRUE(f1.ok() && f8.ok());
  EXPECT_NE(*f1, *f8);
}

TEST(FeaturesTest, ClusterAffectsFeatures) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto m510 = EncodeFlat(*plan, Cluster::M510(4));
  auto epyc = EncodeFlat(*plan, Cluster::C6525(4));
  ASSERT_TRUE(m510.ok() && epyc.ok());
  EXPECT_NE(*m510, *epyc);
}

TEST(FeaturesTest, GraphEncodingShape) {
  auto plan = testing::TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok());
  auto g = EncodeGraph(*plan, Cluster::M510(4));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->node_features.size(), plan->NumOperators());
  EXPECT_EQ(g->edges.size(), plan->edges().size());
  EXPECT_EQ(g->sink, plan->SinkId());
  for (const Vector& x : g->node_features) {
    EXPECT_EQ(x.size(), kNodeFeatureDim);
  }
}

TEST(FeaturesTest, GraphOneHotMatchesOperatorType) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  auto g = EncodeGraph(*plan, Cluster::M510(4));
  ASSERT_TRUE(g.ok());
  for (size_t i = 0; i < plan->NumOperators(); ++i) {
    const auto type = static_cast<size_t>(
        plan->op(static_cast<LogicalPlan::OpId>(i)).type);
    double one_hot_sum = 0.0;
    for (size_t k = 0; k < 8; ++k) one_hot_sum += g->node_features[i][k];
    EXPECT_DOUBLE_EQ(one_hot_sum, 1.0);
    EXPECT_DOUBLE_EQ(g->node_features[i][type], 1.0);
  }
}

TEST(FeaturesTest, EncodeSampleRejectsBadLabel) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(EncodeSample(*plan, Cluster::M510(4), 0.0, 0).ok());
  EXPECT_FALSE(EncodeSample(*plan, Cluster::M510(4), -1.0, 0).ok());
  auto s = EncodeSample(*plan, Cluster::M510(4), 0.5, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->structure_tag, 3);
  EXPECT_DOUBLE_EQ(s->latency_s, 0.5);
}

}  // namespace
}  // namespace pdsp
