#!/usr/bin/env bash
# The full CI gate: configure, build, run the test suite, statically analyze
# every canonical plan, and lint.
#
# Usage: tools/ci_check.sh [build-dir]
#   build-dir defaults to ./build.
#
# Environment:
#   PDSP_SANITIZE   forwarded to CMake (e.g. "address;undefined") to run the
#                   whole gate under ASan/UBSan. Changing it reconfigures the
#                   build tree.
#   PDSP_SKIP_TSAN  set to 1 to skip the ThreadSanitizer pass over the
#                   concurrency-sensitive suites (exec/sim/obs/harness).
#   PDSP_SKIP_UBSAN set to 1 to skip the UndefinedBehaviorSanitizer pass
#                   over the analysis/sim/exec/property suites.
#   JOBS            parallel build jobs (default: nproc).

set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
SANITIZE="${PDSP_SANITIZE:-}"

step() { echo; echo "=== ci_check: $* ==="; }

step "configure ($BUILD_DIR${SANITIZE:+, sanitize=$SANITIZE})"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPDSP_SANITIZE="$SANITIZE"

step "build (-j$JOBS)"
cmake --build "$BUILD_DIR" -j "$JOBS"

step "ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [ "${PDSP_SKIP_TSAN:-0}" != "1" ]; then
  step "ThreadSanitizer pass (exec/sim/obs/harness suites)"
  # A separate build tree under PDSP_SANITIZE=thread: TSan and ASan are
  # mutually exclusive, and reconfiguring the main tree would churn its
  # cache. Only the concurrency-sensitive suites are built and run — the
  # sweep scheduler fans simulations across worker threads, so these suites
  # exercise every cross-thread interaction (pool handoff, registry merge,
  # worker-phase merge, UDO registry) under the race detector.
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPDSP_SANITIZE=thread
  cmake --build "$TSAN_DIR" -j "$JOBS" \
        --target exec_test sim_test obs_test harness_test runtime_test
  for t in exec_test sim_test obs_test harness_test runtime_test; do
    echo "--- tsan: $t ---"
    "$TSAN_DIR/tests/$t"
  done
fi

if [ "${PDSP_SKIP_UBSAN:-0}" != "1" ]; then
  step "UndefinedBehaviorSanitizer pass (analysis/sim/exec/property suites)"
  # The dataflow analyses lean on floating-point interval arithmetic
  # (widening multiplications, infinity-valued fallbacks, rate/capacity
  # divisions) and the simulator on integer event accounting — exactly the
  # code UBSan's float-cast/overflow/shift checks exercise. Same separate-
  # tree rationale as the TSan block above.
  UBSAN_DIR="${BUILD_DIR}-ubsan"
  cmake -B "$UBSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPDSP_SANITIZE=undefined
  cmake --build "$UBSAN_DIR" -j "$JOBS" \
        --target analysis_test sim_test exec_test property_test
  for t in analysis_test sim_test exec_test property_test; do
    echo "--- ubsan: $t ---"
    UBSAN_OPTIONS=halt_on_error=1 "$UBSAN_DIR/tests/$t"
  done
fi

step "columnar kernel smoke (micro_operators batch/scalar filter pair)"
# One vectorized kernel and its scalar twin, a single short repetition:
# proves the benchmark binary runs and the kernels produce throughput
# counters. The full pair set with the speedup gate runs in bench_gate.sh.
"$BUILD_DIR/bench/micro_operators" \
    --benchmark_filter='BM_BatchFilterKernel/1024|BM_ScalarFilter/1024' \
    --benchmark_min_time=0.05s

step "static plan analysis (pdspbench analyze all)"
"$BUILD_DIR/tools/pdspbench" analyze all

step "dataflow property smoke (pdspbench analyze all --dataflow --json)"
# Derive the proven plan properties for all 14 apps and validate the JSON
# schema: every operator carries partitioning, rate-interval and determinism
# facts, every plan carries a top-level determinism verdict, and every
# fixed-point computation converged.
DATAFLOW_JSON="$BUILD_DIR/analyze_dataflow.json"
"$BUILD_DIR/tools/pdspbench" analyze all --dataflow --json > "$DATAFLOW_JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$DATAFLOW_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert len(d["plans"]) >= 14, f"expected >= 14 apps, got {len(d['plans'])}"
for p in d["plans"]:
    props = p["properties"]
    assert props["converged"] is True, f"{p['plan']}: dataflow did not converge"
    det = props["determinism"]
    assert det["class"] in ("deterministic", "order-dependent", "nondeterministic"), \
        f"{p['plan']}: bad determinism class {det!r}"
    assert det["reason"], f"{p['plan']}: empty determinism reason"
    assert props["operators"], f"{p['plan']}: no operator facts"
    for op in props["operators"]:
        for key in ("partitioning", "rate_interval", "determinism"):
            assert key in op, f"{p['plan']} op {op.get('name')}: missing {key}"
        ri = op["rate_interval"]
        assert ri["input_lo"] <= ri["input_hi"] and ri["output_lo"] <= ri["output_hi"], \
            f"{p['plan']} op {op.get('name')}: inverted rate interval"
print(f"dataflow properties: {len(d['plans'])} plans, all converged, "
      f"schema complete")
EOF
else
  echo "python3 not found; relying on the CLI exit status only"
fi

step "runtime diagnosis smoke (pdspbench diagnose all --json)"
# Simulate + diagnose all 14 apps at well-provisioned defaults. The CLI exits
# non-zero if any error-severity PDSP-R finding fires; the parse additionally
# checks the JSON is well-formed, every app simulated, and zero runtime
# errors were reported (warnings/infos like skew or over-provisioning are
# expected and allowed).
DIAG_JSON="$BUILD_DIR/diagnose_all.json"
"$BUILD_DIR/tools/pdspbench" diagnose all --json > "$DIAG_JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$DIAG_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
failed = [p["plan"] for p in d["plans"] if "error" in p]
assert not failed, f"diagnose failed for: {failed}"
assert len(d["plans"]) >= 14, f"expected >= 14 apps, got {len(d['plans'])}"
assert d["errors"] == 0, f"unexpected PDSP-R errors on well-provisioned defaults: {d['errors']}"
print(f"diagnosed {len(d['plans'])} apps: {d['errors']} errors, {d['warnings']} warnings")
EOF
else
  echo "python3 not found; relying on the CLI exit status only"
fi

step "sweep monitor + report smoke"
# A tiny monitored sweep end-to-end: 4 cells with --progress=plain writing
# an append-only progress.jsonl, then `pdspbench report` over the resulting
# ledger and over a checked-in baseline. Validates the telemetry stream
# (well-formed JSON lines, strictly monotone seq, final snapshot last) and
# the report invariants (marker comment matches the <svg> count, no "nan"
# literals ever reach the HTML).
SMOKE_LEDGER="$BUILD_DIR/ci_sweep_ledger.jsonl"
SMOKE_PROGRESS="$BUILD_DIR/ci_sweep_progress.jsonl"
SMOKE_REPORT="$BUILD_DIR/ci_report.html"
rm -f "$SMOKE_LEDGER" "$SMOKE_PROGRESS" "$SMOKE_REPORT"
"$BUILD_DIR/tools/pdspbench" --structure=linear --rate=5000 \
    --parallelism=1,2,4,8 --nodes=8 --duration=0.6 --seed=7 --jobs=2 \
    --ledger="$SMOKE_LEDGER" --progress=plain \
    --progress-file="$SMOKE_PROGRESS" > /dev/null
"$BUILD_DIR/tools/pdspbench" report "$SMOKE_LEDGER" --out="$SMOKE_REPORT" \
    --title="CI smoke report"
"$BUILD_DIR/tools/pdspbench" report bench/baselines/linear.json \
    --out="$BUILD_DIR/ci_baseline_report.html"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_PROGRESS" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert lines, "progress.jsonl is empty"
seqs = [l["seq"] for l in lines]
assert seqs == sorted(set(seqs)), f"seq not strictly monotone: {seqs}"
assert all(l["schema_version"] == 1 for l in lines), "schema_version drift"
assert lines[-1]["final"] is True, "last line is not the final snapshot"
assert lines[-1]["cells_done"] == lines[-1]["cells_total"] == 4, \
    f"final snapshot incomplete: {lines[-1]}"
print(f"progress.jsonl: {len(lines)} snapshots, final at seq {seqs[-1]}")
EOF
  for html in "$SMOKE_REPORT" "$BUILD_DIR/ci_baseline_report.html"; do
    python3 - "$html" <<'EOF'
import re, sys
html = open(sys.argv[1]).read()
assert html.strip(), "report is empty"
m = re.search(r"<!-- pdsp-report charts=(\d+) records=(\d+) apps=(\d+) -->",
              html)
assert m, "missing pdsp-report marker comment"
charts, svgs = int(m.group(1)), html.count("<svg")
assert svgs == charts, f"marker says {charts} charts, found {svgs} <svg>"
assert "nan" not in html.lower(), "report leaks a nan literal"
print(f"{sys.argv[1]}: {svgs} charts, {m.group(2)} records, "
      f"{m.group(3)} apps")
EOF
  done
else
  echo "python3 not found; monitor/report artifacts generated but unchecked"
fi

step "profiled run smoke (--profile + artifacts + flame-graph report)"
# A profiled 2-cell sweep end-to-end: the sampling CPU profiler on at a
# high cadence, artifact bundles under a fresh directory, then a report over
# the ledger. Validates the profile.json schema and its telescoping
# invariant (folded == total == operators == phases) and that the report
# embeds a flame graph while its chart marker still matches the <svg> count.
PROF_DIR="$BUILD_DIR/ci_prof_artifacts"
PROF_LEDGER="$BUILD_DIR/ci_prof_ledger.jsonl"
PROF_REPORT="$BUILD_DIR/ci_prof_report.html"
rm -rf "$PROF_DIR"
rm -f "$PROF_LEDGER" "$PROF_REPORT"
"$BUILD_DIR/tools/pdspbench" --structure=linear --rate=20000 \
    --parallelism=1,4 --nodes=4 --duration=2.0 --seed=7 --profile=997 \
    --artifacts="$PROF_DIR" --ledger="$PROF_LEDGER" > /dev/null
"$BUILD_DIR/tools/pdspbench" report "$PROF_LEDGER" --out="$PROF_REPORT" \
    --title="CI profiled smoke"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$PROF_DIR" "$PROF_REPORT" <<'EOF'
import glob, json, re, sys
profiles = sorted(glob.glob(sys.argv[1] + "/*/*/profile.json"))
assert len(profiles) == 2, f"expected 2 profile.json bundles, got {profiles}"
for path in profiles:
    p = json.load(open(path))
    assert p["schema_version"] == 1, f"{path}: bad schema_version"
    assert p["samples"] >= 1, f"{path}: no samples (final-sample guarantee broken)"
    total = p["total_cpu_s"]
    for key in ("folded", "operators", "phases"):
        s = sum(e["cpu_s"] for e in p[key])
        assert abs(s - total) < 1e-9, \
            f"{path}: {key} sum {s} != total {total} (telescoping broken)"
    assert any(o["name"] not in ("(none)", "(torn)") for o in p["operators"]), \
        f"{path}: no operator attribution"
html = open(sys.argv[2]).read()
assert "CPU flame graph" in html, "report lacks the flame-graph section"
m = re.search(r"<!-- pdsp-report charts=(\d+) ", html)
assert m, "missing pdsp-report marker comment"
charts, svgs = int(m.group(1)), html.count("<svg")
assert svgs == charts, f"marker says {charts} charts, found {svgs} <svg>"
print(f"profiled smoke: {len(profiles)} bundles telescoped, "
      f"report embeds {svgs} charts incl. flame graphs")
EOF
else
  echo "python3 not found; profiled artifacts generated but unchecked"
fi

step "mem-profiled run smoke (--mem-profile + artifacts + memory report)"
# An allocation-profiled 2-cell sweep end-to-end: the sampler on at a fine
# 16 KiB interval so even short runs collect hundreds of samples, artifact
# bundles, then a report. Validates the memory.json schema and its
# telescoping invariant (operators incl. "(untracked)" == folded == total,
# exact in integers) and that the report's chart marker grows by the
# allocation flame graphs while still matching the <svg> count. Skipped
# when interposition is compiled out (PDSP_SANITIZE=address).
MEM_DIR="$BUILD_DIR/ci_mem_artifacts"
MEM_LEDGER="$BUILD_DIR/ci_mem_ledger.jsonl"
MEM_REPORT="$BUILD_DIR/ci_mem_report.html"
rm -rf "$MEM_DIR"
rm -f "$MEM_LEDGER" "$MEM_REPORT"
"$BUILD_DIR/tools/pdspbench" --structure=linear --rate=20000 \
    --parallelism=1,4 --nodes=4 --duration=2.0 --seed=7 --mem-profile=16 \
    --artifacts="$MEM_DIR" --ledger="$MEM_LEDGER" > /dev/null
"$BUILD_DIR/tools/pdspbench" report "$MEM_LEDGER" --out="$MEM_REPORT" \
    --title="CI mem-profiled smoke"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$MEM_DIR" "$MEM_REPORT" <<'EOF'
import glob, json, re, sys
memories = sorted(glob.glob(sys.argv[1] + "/*/*/memory.json"))
if not memories:
    print("mem-profiled smoke: no memory.json (interposition compiled "
          "out, e.g. PDSP_SANITIZE=address) — skipped")
    sys.exit(0)
assert len(memories) == 2, f"expected 2 memory.json bundles, got {memories}"
for path in memories:
    m = json.load(open(path))
    assert m["schema_version"] == 1, f"{path}: bad schema_version"
    assert m["samples"] >= 1, f"{path}: no allocation samples"
    total = m["total_bytes"]
    for key in ("folded", "operators"):
        field = "bytes" if key == "folded" else "total_bytes"
        s = sum(e[field] for e in m[key])
        assert s == total, \
            f"{path}: {key} sum {s} != total {total} (telescoping broken)"
    assert any(o["name"] != "(untracked)" for o in m["operators"]), \
        f"{path}: no operator attribution"
html = open(sys.argv[2]).read()
assert "allocation flame graph" in html, "report lacks the memory section"
mark = re.search(r"<!-- pdsp-report charts=(\d+) ", html)
assert mark, "missing pdsp-report marker comment"
charts, svgs = int(mark.group(1)), html.count("<svg")
assert svgs == charts, f"marker says {charts} charts, found {svgs} <svg>"
print(f"mem-profiled smoke: {len(memories)} bundles telescoped exactly, "
      f"report embeds {svgs} charts incl. allocation flame graphs")
EOF
else
  echo "python3 not found; mem-profiled artifacts generated but unchecked"
fi

step "benchmark regression gate (tools/bench_gate.sh)"
# Small fixed subset with generous thresholds: this catches real breakage
# (a plan change, a simulator behavior change), not microbenchmark noise.
# The gate re-measures each checked-in baseline with its recorded protocol;
# virtual-time determinism makes the comparison machine-independent.
PDSP_GATE_APPS="${PDSP_GATE_APPS:-WC linear}" \
PDSP_GATE_THRESHOLD="${PDSP_GATE_THRESHOLD:-0.25}" \
PDSP_GATE_SKIP_MICRO="${PDSP_GATE_SKIP_MICRO:-1}" \
  tools/bench_gate.sh "$BUILD_DIR"

step "lint (tools/lint.sh)"
tools/lint.sh "$BUILD_DIR"

step "OK"
