#include "src/harness/harness.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "src/harness/synthetic_suite.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

TEST(CategoriesTest, SixMonotoneCategories) {
  const auto& cats = StandardCategories();
  ASSERT_EQ(cats.size(), 6u);
  EXPECT_STREQ(cats.front().name, "XS");
  EXPECT_STREQ(cats.back().name, "XXL");
  for (size_t i = 1; i < cats.size(); ++i) {
    EXPECT_GT(cats[i].degree, cats[i - 1].degree);
  }
  EXPECT_EQ(cats.front().degree, 1);
  EXPECT_EQ(cats.back().degree, 128);
}

TEST(MeasureCellTest, AggregatesRepeats) {
  auto plan = testing::LinearPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  RunProtocol protocol;
  protocol.repeats = 2;
  protocol.duration_s = 2.0;
  protocol.warmup_s = 0.5;
  auto cell = MeasureCell(*plan, Cluster::M510(4), protocol);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  EXPECT_GT(cell->mean_median_latency_s, 0.0);
  EXPECT_GT(cell->mean_throughput_tps, 0.0);
}

TEST(MeasureCellTest, RejectsBadRepeats) {
  auto plan = testing::LinearPlan();
  ASSERT_TRUE(plan.ok());
  RunProtocol protocol;
  protocol.repeats = 0;
  EXPECT_FALSE(MeasureCell(*plan, Cluster::M510(4), protocol).ok());
}

TEST(MeasureCellTest, RefusesErrorCarryingPlanUnlessAllowed) {
  // A NaN selectivity hint is analysis error PDSP-E602 but entirely inert
  // at simulation time (the event simulator applies the real predicate),
  // so the allow_invalid escape hatch can be exercised end to end.
  auto plan = testing::LinearPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto f = plan->FindOperator("filter");
  ASSERT_TRUE(f.ok());
  plan->mutable_op(*f)->selectivity_hint =
      std::numeric_limits<double>::quiet_NaN();
  ASSERT_TRUE(plan->Validate().ok());  // mutable_op left it unvalidated

  RunProtocol protocol;
  protocol.repeats = 1;
  protocol.duration_s = 1.0;
  protocol.warmup_s = 0.25;
  auto refused = MeasureCell(*plan, Cluster::M510(4), protocol);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsFailedPrecondition())
      << refused.status().ToString();
  EXPECT_NE(refused.status().message().find("PDSP-E602"), std::string::npos)
      << refused.status().ToString();

  protocol.allow_invalid = true;
  auto forced = MeasureCell(*plan, Cluster::M510(4), protocol);
  EXPECT_TRUE(forced.ok()) << forced.status().ToString();
}

TEST(MeasureAtDegreeTest, RewritesParallelism) {
  auto plan = testing::LinearPlan(5000.0, 1);
  ASSERT_TRUE(plan.ok());
  RunProtocol protocol;
  protocol.repeats = 1;
  protocol.duration_s = 2.0;
  protocol.warmup_s = 0.5;
  auto cell = MeasureAtDegree(*plan, 4, Cluster::M510(4), protocol);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  EXPECT_FALSE(MeasureAtDegree(*plan, 0, Cluster::M510(4), protocol).ok());
}

TEST(TableReporterTest, CsvRoundTrip) {
  TableReporter table("t", {"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3"});  // short rows padded
  EXPECT_EQ(table.NumRows(), 2u);
  const std::string path = "/tmp/pdsp_harness_test/out.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,");
  std::filesystem::remove_all("/tmp/pdsp_harness_test");
}

TEST(CellFormattingTest, Units) {
  EXPECT_EQ(LatencyCell(0.123456), "123.46");  // ms
  EXPECT_EQ(ThroughputCell(1234.56), "1235");
}

TEST(CanonicalSyntheticTest, AllStructuresBuild) {
  for (SyntheticStructure s : AllSyntheticStructures()) {
    CanonicalOptions opt;
    opt.parallelism = 3;
    auto plan = MakeCanonicalSynthetic(s, opt);
    ASSERT_TRUE(plan.ok()) << SyntheticStructureToString(s) << ": "
                           << plan.status().ToString();
    EXPECT_TRUE(plan->validated());
  }
}

TEST(CanonicalSyntheticTest, DeterministicPlans) {
  CanonicalOptions opt;
  auto a = MakeCanonicalSynthetic(SyntheticStructure::kTwoWayJoin, opt);
  auto b = MakeCanonicalSynthetic(SyntheticStructure::kTwoWayJoin, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST(CanonicalSyntheticTest, ChainedFiltersKeepConditionalSelectivity) {
  CanonicalOptions opt;
  opt.filter_selectivity = 0.5;
  auto plan = MakeCanonicalSynthetic(SyntheticStructure::kChain3Filters, opt);
  ASSERT_TRUE(plan.ok());
  // Literals shrink geometrically: 50, 25, 12.5 over uniform [0,100).
  auto f1 = plan->FindOperator("filter1");
  auto f3 = plan->FindOperator("filter3");
  ASSERT_TRUE(f1.ok() && f3.ok());
  EXPECT_DOUBLE_EQ(plan->op(*f1).filter_literal.AsDouble(), 50.0);
  EXPECT_DOUBLE_EQ(plan->op(*f3).filter_literal.AsDouble(), 12.5);
  EXPECT_DOUBLE_EQ(plan->op(*f3).selectivity_hint, 0.5);
}

TEST(CanonicalSyntheticTest, JoinKeysScaleWithRate) {
  CanonicalOptions slow;
  slow.event_rate = 1000.0;
  CanonicalOptions fast;
  fast.event_rate = 100000.0;
  auto a = MakeCanonicalSynthetic(SyntheticStructure::kTwoWayJoin, slow);
  auto b = MakeCanonicalSynthetic(SyntheticStructure::kTwoWayJoin, fast);
  ASSERT_TRUE(a.ok() && b.ok());
  const auto keys = [](const LogicalPlan& p) {
    return p.sources()[0].stream.specs[0].cardinality;
  };
  EXPECT_GT(keys(*b), keys(*a));
}

}  // namespace
}  // namespace pdsp
