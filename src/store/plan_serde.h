// Serialization of logical plans and run results to JSON — the library's
// analogue of PDSP-Bench storing generated workloads and measurements in
// MongoDB. Plans round-trip exactly (schema, generators, arrival processes,
// operators, parallelism, edges), so saved workloads can be re-executed or
// used for ML training in later sessions.

#ifndef PDSP_STORE_PLAN_SERDE_H_
#define PDSP_STORE_PLAN_SERDE_H_

#include "src/query/plan.h"
#include "src/sim/simulation.h"
#include "src/store/json.h"

namespace pdsp {

/// Serializes a validated plan (structure, sources, parallelism).
Result<Json> PlanToJson(const LogicalPlan& plan);

/// Reconstructs and validates a plan from its JSON form.
Result<LogicalPlan> PlanFromJson(const Json& json);

/// Serializes a simulation result's metrics (latency percentiles,
/// throughput, counters, per-operator stats).
Json SimResultToJson(const SimResult& result);

/// Serializes a Value with its type tag; round-trips through ValueFromJson.
Json ValueToJson(const Value& value);
Result<Value> ValueFromJson(const Json& json);

}  // namespace pdsp

#endif  // PDSP_STORE_PLAN_SERDE_H_
