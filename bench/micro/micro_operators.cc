// Microbenchmarks for the operator runtime: per-tuple costs of filters,
// window aggregation, joins and representative UDOs. These measure the real
// compute the simulator's cost model abstracts, and document the relative
// expense of operator families (filters cheapest, joins and map-matching
// UDOs heaviest).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/apps/apps.h"
#include "src/data/batch.h"
#include "src/runtime/kernels.h"
#include "src/runtime/operators.h"
#include "src/runtime/udo.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

StreamElement KeyValueElement(Rng* rng, double t) {
  StreamElement e;
  e.tuple.values = {Value(rng->UniformInt(1, 100)),
                    Value(rng->Uniform(0.0, 100.0))};
  e.tuple.event_time = t;
  e.birth = t;
  return e;
}

void BM_FilterProcess(benchmark::State& state) {
  auto plan = testing::LinearPlan();
  auto inst =
      CreateOperatorInstance(*plan, *plan->FindOperator("filter"), 0, 1);
  Rng rng(1);
  std::vector<StreamElement> out;
  double t = 0.0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        (*inst)->Process(KeyValueElement(&rng, t), 0, t, &out));
    t += 1e-5;
  }
}
BENCHMARK(BM_FilterProcess);

void BM_WindowAggProcess(benchmark::State& state) {
  auto plan = testing::LinearPlan();
  auto inst = CreateOperatorInstance(*plan, *plan->FindOperator("agg"), 0, 1);
  Rng rng(1);
  std::vector<StreamElement> out;
  double t = 0.0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        (*inst)->Process(KeyValueElement(&rng, t), 0, t, &out));
    (*inst)->OnTimer(t, &out);
    t += 1e-5;
  }
}
BENCHMARK(BM_WindowAggProcess);

void BM_WindowJoinProcess(benchmark::State& state) {
  auto plan = testing::TwoWayJoinPlan();
  auto inst =
      CreateOperatorInstance(*plan, *plan->FindOperator("join"), 0, 1);
  Rng rng(1);
  std::vector<StreamElement> out;
  double t = 0.0;
  int port = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        (*inst)->Process(KeyValueElement(&rng, t), port, t, &out));
    port ^= 1;
    t += 1e-5;
  }
}
BENCHMARK(BM_WindowJoinProcess);

void BM_UdoSentimentScore(benchmark::State& state) {
  RegisterAppUdos();
  AppOptions opt;
  auto plan = MakeApp(AppId::kSentimentAnalysis, opt);
  auto inst =
      CreateOperatorInstance(*plan, *plan->FindOperator("sentiment"), 0, 1);
  StreamElement e;
  e.tuple.values = {Value(1),
                    Value("ba ce di fo gu ha ba ce di fo gu ha ba ce")};
  std::vector<StreamElement> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize((*inst)->Process(e, 0, 0.0, &out));
  }
}
BENCHMARK(BM_UdoSentimentScore);

void BM_UdoMapMatch(benchmark::State& state) {
  RegisterAppUdos();
  AppOptions opt;
  auto plan = MakeApp(AppId::kTrafficMonitoring, opt);
  auto inst =
      CreateOperatorInstance(*plan, *plan->FindOperator("map_match"), 0, 1);
  StreamElement e;
  e.tuple.values = {Value(1), Value(48.51), Value(8.52), Value(88.0)};
  std::vector<StreamElement> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize((*inst)->Process(e, 0, 0.0, &out));
  }
}
BENCHMARK(BM_UdoMapMatch);

void BM_ValueHash(benchmark::State& state) {
  Rng rng(1);
  Value v(rng.UniformInt(0, 1 << 30));
  for (auto _ : state) benchmark::DoNotOptimize(v.Hash());
}
BENCHMARK(BM_ValueHash);

// --- columnar batch kernels ------------------------------------------------
// Each batch benchmark reports elements/s (items_per_second) at batch sizes
// 1 / 64 / 1024, next to a scalar per-element twin at the same sizes, so the
// vectorization speedup is a pair of adjacent counters. The throughput gate
// (tools/bench_gate.sh, bench/baselines/throughput_budget.json) enforces a
// minimum vectorized/scalar ratio on the filter and aggregate kernels.

constexpr int kBatchSizes[] = {1, 64, 1024};

data::Batch KeyValueBatch(size_t rows, uint64_t seed) {
  data::Batch b(data::BatchLayout({DataType::kInt, DataType::kDouble}));
  b.Reserve(rows);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    b.AppendInt(0, rng.UniformInt(1, 100));
    b.AppendDouble(1, rng.Uniform(0.0, 100.0));
    b.FinishRow(i * 1e-5, i * 1e-5, kNoAttr);
  }
  return b;
}

std::unique_ptr<OperatorInstance> LinearPlanInstance(const char* op_name) {
  auto plan = testing::LinearPlan();
  auto inst = CreateOperatorInstance(*plan, *plan->FindOperator(op_name), 0, 1);
  return std::move(*inst);
}

void BM_BatchFilterKernel(benchmark::State& state) {
  auto inst = LinearPlanInstance("filter");
  const auto rows = static_cast<size_t>(state.range(0));
  const data::Batch in = KeyValueBatch(rows, 1);
  data::Batch out(in.layout());
  for (auto _ : state) {
    out.Clear();
    benchmark::DoNotOptimize(inst->ProcessBatch(in, 0, rows, 0, 0.0, &out));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_BatchFilterKernel)->Arg(1)->Arg(64)->Arg(1024);

void BM_ScalarFilter(benchmark::State& state) {
  auto inst = LinearPlanInstance("filter");
  const auto rows = static_cast<size_t>(state.range(0));
  const data::Batch in = KeyValueBatch(rows, 1);
  std::vector<StreamElement> out;
  for (auto _ : state) {
    out.clear();
    for (size_t r = 0; r < rows; ++r) {
      StreamElement e;
      e.tuple = in.RowTuple(r);
      e.birth = in.birth(r);
      benchmark::DoNotOptimize(inst->Process(e, 0, 0.0, &out));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_ScalarFilter)->Arg(1)->Arg(64)->Arg(1024);

void BM_BatchMapKernel(benchmark::State& state) {
  // Map/project is a pure column copy on the batch path.
  const auto rows = static_cast<size_t>(state.range(0));
  data::Batch in = KeyValueBatch(rows, 2);
  data::Batch out(in.layout());
  for (auto _ : state) {
    out.Clear();
    out.AppendRange(in, 0, rows);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_BatchMapKernel)->Arg(1)->Arg(64)->Arg(1024);

void BM_BatchAggregateKernel(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  const data::Batch in = KeyValueBatch(rows, 3);
  for (auto _ : state) {
    kernels::AggPartial agg;
    benchmark::DoNotOptimize(kernels::Aggregate(in, 0, rows, 1, &agg));
    benchmark::DoNotOptimize(agg.Finish(AggregateFn::kSum));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_BatchAggregateKernel)->Arg(1)->Arg(64)->Arg(1024);

void BM_ScalarAggregate(benchmark::State& state) {
  // The per-element twin: materialize the Value and accumulate through the
  // dynamically typed AsNumeric view, as the scalar window path does.
  const auto rows = static_cast<size_t>(state.range(0));
  const data::Batch in = KeyValueBatch(rows, 3);
  for (auto _ : state) {
    kernels::AggPartial agg;
    for (size_t r = 0; r < rows; ++r) {
      agg.Add(in.RowTuple(r).values[1].AsNumeric());
    }
    benchmark::DoNotOptimize(agg.Finish(AggregateFn::kSum));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_ScalarAggregate)->Arg(1)->Arg(64)->Arg(1024);

void BM_BatchPartitionKernel(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  const data::Batch in = KeyValueBatch(rows, 4);
  std::vector<data::SelectionVector> parts;
  for (auto _ : state) {
    kernels::Partition(in, 0, rows, 0, 8, &parts);
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_BatchPartitionKernel)->Arg(1)->Arg(64)->Arg(1024);

void BM_ScalarPartition(benchmark::State& state) {
  const auto rows = static_cast<size_t>(state.range(0));
  const data::Batch in = KeyValueBatch(rows, 4);
  std::vector<data::SelectionVector> parts(8);
  for (auto _ : state) {
    for (auto& p : parts) p.clear();
    for (size_t r = 0; r < rows; ++r) {
      const uint64_t h = in.RowTuple(r).values[0].Hash();
      parts[h % 8].push_back(static_cast<uint32_t>(r));
    }
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_ScalarPartition)->Arg(1)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace pdsp
