// Property tests over the operator runtime: semantic invariants that hold
// for arbitrary inputs — aggregate totals match processed tuples, joins are
// symmetric in their inputs, filters partition their input, window panes
// never double-count.

#include <gtest/gtest.h>

#include <cmath>

#include "src/runtime/operators.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

using testing::KeyValueStream;
using testing::PoissonArrival;

StreamElement Elem(int64_t key, double val, double t) {
  StreamElement e;
  e.tuple.values = {Value(key), Value(val)};
  e.tuple.event_time = t;
  e.birth = t;
  return e;
}

LogicalPlan* AggPlan(WindowSpec win, AggregateFn fn) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100));
  auto a = b.WindowAggregate("agg", s, win, fn, 1, 0);
  b.Sink("k", a);
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok());
  static LogicalPlan kept;
  kept = std::move(*plan);
  return &kept;
}

// Tumbling SUM over all keys equals the sum of all processed values.
TEST(AggConservationTest, TumblingSumIsLossless) {
  WindowSpec win;
  win.duration_ms = 1000.0;
  LogicalPlan* plan = AggPlan(win, AggregateFn::kSum);
  auto inst = CreateOperatorInstance(*plan, *plan->FindOperator("agg"), 0, 1);
  ASSERT_TRUE(inst.ok());
  Rng rng(5);
  double total_in = 0.0;
  std::vector<StreamElement> out;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.Uniform(0.0, 10.0);
    const double t = rng.Uniform(0.0, 10.0);
    total_in += v;
    ASSERT_TRUE(
        (*inst)->Process(Elem(rng.UniformInt(1, 50), v, t), 0, t, &out).ok());
  }
  (*inst)->Flush(11.0, &out);
  double total_out = 0.0;
  for (const StreamElement& e : out) {
    total_out += e.tuple.values[1].AsDouble();
  }
  EXPECT_NEAR(total_out, total_in, 1e-6);
  EXPECT_EQ((*inst)->LateDrops(), 0);
}

// Sliding windows with slide ratio r count every element 1/r times.
TEST(AggConservationTest, SlidingOverlapMultiplicity) {
  WindowSpec win;
  win.type = WindowType::kSliding;
  win.duration_ms = 1000.0;
  win.slide_ratio = 0.5;  // every element in exactly 2 panes
  LogicalPlan* plan = AggPlan(win, AggregateFn::kSum);
  auto inst = CreateOperatorInstance(*plan, *plan->FindOperator("agg"), 0, 1);
  ASSERT_TRUE(inst.ok());
  Rng rng(7);
  double total_in = 0.0;
  std::vector<StreamElement> out;
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.Uniform(0.0, 10.0);
    // Keep away from t=0 so every element has both panes available.
    const double t = rng.Uniform(1.0, 9.0);
    total_in += v;
    ASSERT_TRUE(
        (*inst)->Process(Elem(rng.UniformInt(1, 20), v, t), 0, t, &out).ok());
  }
  (*inst)->Flush(11.0, &out);
  double total_out = 0.0;
  for (const StreamElement& e : out) {
    total_out += e.tuple.values[1].AsDouble();
  }
  EXPECT_NEAR(total_out, 2.0 * total_in, 1e-6);
}

// min <= avg <= max for any window contents.
TEST(AggOrderingTest, MinAvgMaxOrdered) {
  WindowSpec win;
  win.duration_ms = 500.0;
  Rng rng(11);
  std::vector<StreamElement> inputs;
  for (int i = 0; i < 2000; ++i) {
    inputs.push_back(Elem(rng.UniformInt(1, 10), rng.Uniform(-5.0, 5.0),
                          rng.Uniform(0.0, 4.0)));
  }
  std::map<std::pair<int64_t, double>, std::map<AggregateFn, double>> results;
  for (AggregateFn fn :
       {AggregateFn::kMin, AggregateFn::kAvg, AggregateFn::kMax}) {
    LogicalPlan* plan = AggPlan(win, fn);
    auto inst =
        CreateOperatorInstance(*plan, *plan->FindOperator("agg"), 0, 1);
    ASSERT_TRUE(inst.ok());
    std::vector<StreamElement> out;
    for (const StreamElement& e : inputs) {
      ASSERT_TRUE((*inst)->Process(e, 0, e.tuple.event_time, &out).ok());
    }
    (*inst)->Flush(10.0, &out);
    for (const StreamElement& e : out) {
      results[{e.tuple.values[0].AsInt(), e.tuple.event_time}][fn] =
          e.tuple.values[1].AsDouble();
    }
  }
  ASSERT_FALSE(results.empty());
  for (const auto& [key, by_fn] : results) {
    ASSERT_EQ(by_fn.size(), 3u);
    EXPECT_LE(by_fn.at(AggregateFn::kMin), by_fn.at(AggregateFn::kAvg) + 1e-9);
    EXPECT_LE(by_fn.at(AggregateFn::kAvg), by_fn.at(AggregateFn::kMax) + 1e-9);
  }
}

// Join symmetry: feeding (L, R) produces the same number of matches as
// feeding (R, L) with swapped ports.
TEST(JoinSymmetryTest, PortSwapPreservesMatchCount) {
  WindowSpec win;
  win.duration_ms = 800.0;
  PlanBuilder b;
  auto s1 = b.Source("s1", KeyValueStream(), PoissonArrival(100));
  auto s2 = b.Source("s2", KeyValueStream(), PoissonArrival(100));
  auto j = b.WindowJoin("j", s1, s2, 0, 0, win);
  b.Sink("k", j);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  static LogicalPlan kept;
  kept = std::move(*plan);

  Rng rng(13);
  struct Input {
    StreamElement e;
    int port;
  };
  std::vector<Input> inputs;
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    t += rng.Exponential(1000.0);
    inputs.push_back(
        {Elem(rng.UniformInt(1, 200), rng.Uniform(0.0, 1.0), t),
         static_cast<int>(rng.UniformInt(0, 1))});
  }
  size_t matches[2] = {0, 0};
  for (int swap : {0, 1}) {
    auto inst = CreateOperatorInstance(kept, *kept.FindOperator("j"), 0, 1);
    ASSERT_TRUE(inst.ok());
    std::vector<StreamElement> out;
    for (const Input& in : inputs) {
      ASSERT_TRUE((*inst)
                      ->Process(in.e, swap ? 1 - in.port : in.port,
                                in.e.tuple.event_time, &out)
                      .ok());
    }
    matches[swap] = out.size();
    EXPECT_GT(out.size(), 0u);
  }
  EXPECT_EQ(matches[0], matches[1]);
}

// A filter partitions its input: pass-count(pred) + pass-count(!pred) == n.
TEST(FilterPartitionTest, ComplementaryPredicatesCoverInput) {
  PlanBuilder b;
  auto s = b.Source("s", KeyValueStream(), PoissonArrival(100));
  auto f1 = b.Filter("lt", s, 1, FilterOp::kLt, Value(30.0));
  b.Sink("k1", f1);
  auto plan_lt = b.Build();
  ASSERT_TRUE(plan_lt.ok());
  PlanBuilder b2;
  auto s2 = b2.Source("s", KeyValueStream(), PoissonArrival(100));
  auto f2 = b2.Filter("ge", s2, 1, FilterOp::kGe, Value(30.0));
  b2.Sink("k2", f2);
  auto plan_ge = b2.Build();
  ASSERT_TRUE(plan_ge.ok());

  auto lt = CreateOperatorInstance(*plan_lt, *plan_lt->FindOperator("lt"), 0,
                                   1);
  auto ge = CreateOperatorInstance(*plan_ge, *plan_ge->FindOperator("ge"), 0,
                                   1);
  ASSERT_TRUE(lt.ok() && ge.ok());
  Rng rng(17);
  std::vector<StreamElement> out_lt, out_ge;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    StreamElement e = Elem(1, rng.Uniform(0.0, 100.0), 0.0);
    ASSERT_TRUE((*lt)->Process(e, 0, 0.0, &out_lt).ok());
    ASSERT_TRUE((*ge)->Process(e, 0, 0.0, &out_ge).ok());
  }
  EXPECT_EQ(out_lt.size() + out_ge.size(), static_cast<size_t>(n));
}

// Count windows: every processed tuple lands in at most one firing for
// tumbling policy, and fires are evenly spaced.
TEST(CountWindowTest, TumblingFiresEveryLength) {
  WindowSpec win;
  win.policy = WindowPolicy::kCount;
  win.length_tuples = 7;
  LogicalPlan* plan = AggPlan(win, AggregateFn::kSum);
  auto inst = CreateOperatorInstance(*plan, *plan->FindOperator("agg"), 0, 1);
  ASSERT_TRUE(inst.ok());
  std::vector<StreamElement> out;
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE((*inst)->Process(Elem(1, 1.0, i * 0.01), 0, i * 0.01, &out)
                    .ok());
  }
  ASSERT_EQ(out.size(), 10u);
  for (const StreamElement& e : out) {
    EXPECT_DOUBLE_EQ(e.tuple.values[1].AsDouble(), 7.0);
  }
}

}  // namespace
}  // namespace pdsp
