#include "src/obs/monitor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/file_util.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pdsp {
namespace obs {

namespace {

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Sum of every counter in `registry` — a cheap liveness signal: the
/// simulator bumps pdsp.sim.* counters while a cell runs, so a frozen sum
/// across snapshots means the worker is stuck, not slow.
int64_t CounterSum(const MetricsRegistry& registry) {
  int64_t sum = 0;
  for (const std::string& name : registry.Names()) {
    sum += registry.CounterValue(name);  // non-counters read as 0
  }
  return sum;
}

double MedianOf(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 0) {
    const double lo = *std::max_element(xs.begin(), xs.begin() + mid);
    return (lo + hi) / 2.0;
  }
  return hi;
}

std::string EtaCell(double eta_s) {
  if (eta_s < 0) return "?";
  if (eta_s >= 90.0) return StrFormat("%.1fmin", eta_s / 60.0);
  return StrFormat("%.1fs", eta_s);
}

}  // namespace

Result<MonitorOptions::RenderMode> ParseRenderMode(const std::string& value,
                                                   bool stderr_is_tty) {
  if (value.empty() || value == "auto") {
    return stderr_is_tty ? MonitorOptions::RenderMode::kRich
                         : MonitorOptions::RenderMode::kPlain;
  }
  if (value == "plain") return MonitorOptions::RenderMode::kPlain;
  if (value == "rich") return MonitorOptions::RenderMode::kRich;
  if (value == "off") return MonitorOptions::RenderMode::kOff;
  return Status::InvalidArgument("unknown progress mode '" + value +
                                 "' (plain|rich|off|auto)");
}

Json WorkerSnapshot::ToJson() const {
  Json j = Json::Object();
  j.Set("worker", Json::Int(worker));
  j.Set("current_cell", Json::Int(current_cell));
  j.Set("current_label", Json::Str(current_label));
  j.Set("cell_elapsed_s", Json::Number(cell_elapsed_s));
  j.Set("cells_done", Json::Int(cells_done));
  j.Set("busy_s", Json::Number(busy_s));
  j.Set("metric_sum", Json::Int(metric_sum));
  return j;
}

double SweepSnapshot::BusyFraction(const WorkerSnapshot& w) const {
  if (wall_s <= 0.0) return 0.0;
  return std::min(1.0, std::max(0.0, w.busy_s / wall_s));
}

Json SweepSnapshot::ToJson() const {
  Json j = Json::Object();
  j.Set("schema_version", Json::Int(schema_version));
  j.Set("sweep", Json::Str(sweep));
  j.Set("seq", Json::Int(seq));
  j.Set("wall_s", Json::Number(wall_s));
  j.Set("cells_total", Json::Int(static_cast<int64_t>(cells_total)));
  j.Set("cells_done", Json::Int(static_cast<int64_t>(cells_done)));
  j.Set("cells_failed", Json::Int(static_cast<int64_t>(cells_failed)));
  j.Set("eta_s", Json::Number(eta_s));
  j.Set("median_cell_s", Json::Number(median_cell_s));
  j.Set("final", Json::Bool(final_snapshot));
  Json arr = Json::Array();
  for (const WorkerSnapshot& w : workers) arr.Append(w.ToJson());
  j.Set("workers", std::move(arr));
  return j;
}

Json MonitorFinding::ToJson() const {
  Json j = Json::Object();
  j.Set("code", Json::Str(code));
  j.Set("worker", Json::Int(worker));
  j.Set("subject", Json::Str(subject));
  j.Set("message", Json::Str(message));
  return j;
}

void EtaEstimator::AddCompletedCell(double duration_s) {
  if (duration_s < 0.0) duration_s = 0.0;
  ewma_s_ = completed_ == 0
                ? duration_s
                : alpha_ * duration_s + (1.0 - alpha_) * ewma_s_;
  ++completed_;
}

double EtaEstimator::Estimate(
    size_t cells_remaining, int jobs,
    const std::vector<double>& in_flight_elapsed_s) const {
  if (completed_ == 0) return -1.0;
  if (jobs < 1) jobs = 1;
  // Each in-flight cell still needs (ewma - elapsed) seconds, floored at a
  // tenth of the EWMA (a cell past its expected duration is "almost done"
  // as far as the estimate can know).
  double work_s = 0.0;
  for (double elapsed : in_flight_elapsed_s) {
    work_s += std::max(ewma_s_ - elapsed, ewma_s_ * 0.1);
  }
  work_s += static_cast<double>(cells_remaining) * ewma_s_;
  return work_s / jobs;
}

std::vector<MonitorFinding> SweepWatchdog::Evaluate(
    const SweepSnapshot& snapshot) {
  if (tracks_.size() < snapshot.workers.size()) {
    tracks_.resize(snapshot.workers.size());
  }
  std::vector<MonitorFinding> fresh;
  auto fire = [&](MonitorFinding finding) {
    const std::string key = finding.code + "|" + finding.subject;
    if (!fired_.insert(key).second) return;
    findings_.push_back(finding);
    fresh.push_back(std::move(finding));
  };

  // --- M201: straggler cell ----------------------------------------------
  if (snapshot.cells_done >= options_.straggler_min_completed &&
      snapshot.median_cell_s > 0.0) {
    const double limit = options_.straggler_ratio * snapshot.median_cell_s;
    for (const WorkerSnapshot& w : snapshot.workers) {
      if (w.current_cell < 0 || w.cell_elapsed_s <= limit) continue;
      fire({"PDSP-M201", w.worker, w.current_label,
            StrFormat("cell '%s' on worker %d has run %.2fs, > %.1fx the "
                      "%.2fs median of %zu completed cells",
                      w.current_label.c_str(), w.worker, w.cell_elapsed_s,
                      options_.straggler_ratio, snapshot.median_cell_s,
                      snapshot.cells_done)});
    }
  }

  // --- M202: stalled worker ----------------------------------------------
  for (const WorkerSnapshot& w : snapshot.workers) {
    WorkerTrack& track = tracks_[static_cast<size_t>(w.worker)];
    if (w.current_cell < 0 || w.metric_sum < 0) {
      // Idle (or unobservable): reset the streak.
      track = WorkerTrack{};
      continue;
    }
    if (track.cell == w.current_cell && track.metric_sum == w.metric_sum) {
      ++track.snapshots_without_delta;
    } else {
      track.cell = w.current_cell;
      track.metric_sum = w.metric_sum;
      track.snapshots_without_delta = 0;
    }
    if (track.snapshots_without_delta >= options_.stall_snapshots) {
      fire({"PDSP-M202", w.worker, StrFormat("worker%d", w.worker),
            StrFormat("worker %d in cell '%s' produced no metric delta "
                      "across %d consecutive snapshots (%.2fs elapsed)",
                      w.worker, w.current_label.c_str(),
                      track.snapshots_without_delta, w.cell_elapsed_s)});
    }
  }

  // --- M203: worker-utilization imbalance --------------------------------
  if (snapshot.wall_s >= options_.imbalance_min_wall_s &&
      snapshot.workers.size() > 1) {
    double min_frac = 1.0;
    double max_frac = 0.0;
    int min_worker = -1;
    for (const WorkerSnapshot& w : snapshot.workers) {
      const double frac = snapshot.BusyFraction(w);
      if (frac < min_frac) {
        min_frac = frac;
        min_worker = w.worker;
      }
      max_frac = std::max(max_frac, frac);
    }
    if (max_frac > 0.0 && min_frac < options_.imbalance_ratio * max_frac) {
      fire({"PDSP-M203", min_worker, StrFormat("worker%d", min_worker),
            StrFormat("worker %d busy fraction %.2f is below %.2fx the "
                      "busiest worker's %.2f — cells are imbalanced across "
                      "workers",
                      min_worker, min_frac, options_.imbalance_ratio,
                      max_frac)});
    }
  }
  return fresh;
}

std::vector<std::string> SweepWatchdog::Codes() const {
  std::vector<std::string> codes;
  for (const MonitorFinding& f : findings_) codes.push_back(f.code);
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

SweepProgress::SweepProgress(std::string name, size_t cells_total, int jobs)
    : name_(std::move(name)),
      cells_total_(cells_total),
      jobs_(jobs < 1 ? 1 : jobs),
      start_(std::chrono::steady_clock::now()) {
  MutexLock lock(mu_);
  workers_.resize(static_cast<size_t>(jobs_));
}

void SweepProgress::StartCell(int worker, size_t cell,
                              const std::string& label,
                              std::shared_ptr<const MetricsRegistry> metrics) {
  MutexLock lock(mu_);
  if (worker < 0 || static_cast<size_t>(worker) >= workers_.size()) return;
  WorkerSlot& slot = workers_[static_cast<size_t>(worker)];
  slot.current_cell = static_cast<int>(cell);
  slot.label = label;
  slot.cell_start = std::chrono::steady_clock::now();
  slot.metrics = std::move(metrics);
}

void SweepProgress::FinishCell(int worker, size_t cell, bool ok) {
  MutexLock lock(mu_);
  if (worker < 0 || static_cast<size_t>(worker) >= workers_.size()) return;
  WorkerSlot& slot = workers_[static_cast<size_t>(worker)];
  if (slot.current_cell != static_cast<int>(cell)) return;
  const double elapsed =
      Seconds(slot.cell_start, std::chrono::steady_clock::now());
  slot.current_cell = -1;
  slot.label.clear();
  slot.metrics.reset();
  slot.busy_s += elapsed;
  ++slot.cells_done;
  ++cells_done_;
  if (!ok) ++cells_failed_;
  completed_cell_s_.push_back(elapsed);
  eta_.AddCompletedCell(elapsed);
}

SweepSnapshot SweepProgress::Snapshot(bool final_snapshot) {
  const auto now = std::chrono::steady_clock::now();
  // Copy the live registries out under the lock, sum their counters after
  // releasing it: CounterSum takes each registry's own lock, and holding
  // two locks at once is how deadlocks are born.
  std::vector<std::shared_ptr<const MetricsRegistry>> live;
  SweepSnapshot snap;
  {
    MutexLock lock(mu_);
    snap.sweep = name_;
    snap.seq = ++seq_;
    snap.wall_s = Seconds(start_, now);
    snap.cells_total = cells_total_;
    snap.cells_done = cells_done_;
    snap.cells_failed = cells_failed_;
    snap.median_cell_s = MedianOf(completed_cell_s_);
    snap.final_snapshot = final_snapshot;
    std::vector<double> in_flight;
    size_t in_flight_count = 0;
    for (size_t w = 0; w < workers_.size(); ++w) {
      const WorkerSlot& slot = workers_[w];
      WorkerSnapshot ws;
      ws.worker = static_cast<int>(w);
      ws.current_cell = slot.current_cell;
      ws.current_label = slot.label;
      ws.cells_done = slot.cells_done;
      ws.busy_s = slot.busy_s;
      if (slot.current_cell >= 0) {
        ws.cell_elapsed_s = Seconds(slot.cell_start, now);
        ws.busy_s += ws.cell_elapsed_s;
        in_flight.push_back(ws.cell_elapsed_s);
        ++in_flight_count;
      }
      live.push_back(slot.metrics);
      snap.workers.push_back(std::move(ws));
    }
    const size_t queued =
        cells_total_ - std::min(cells_total_, cells_done_ + in_flight_count);
    snap.eta_s = eta_.Estimate(queued, jobs_, in_flight);
  }
  for (size_t w = 0; w < live.size(); ++w) {
    if (live[w] != nullptr) snap.workers[w].metric_sum = CounterSum(*live[w]);
  }
  return snap;
}

Json MonitorSummary::ToJson() const {
  Json j = Json::Object();
  j.Set("snapshot", last.ToJson());
  Json arr = Json::Array();
  for (const MonitorFinding& f : findings) arr.Append(f.ToJson());
  j.Set("findings", std::move(arr));
  Json code_arr = Json::Array();
  for (const std::string& c : codes) code_arr.Append(Json::Str(c));
  j.Set("codes", std::move(code_arr));
  Json busy = Json::Array();
  for (double b : worker_busy_fraction) busy.Append(Json::Number(b));
  j.Set("worker_busy_fraction", std::move(busy));
  Json stragglers = Json::Array();
  for (const std::string& s : straggler_cells) {
    stragglers.Append(Json::Str(s));
  }
  j.Set("straggler_cells", std::move(stragglers));
  return j;
}

void MonitorSummary::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetGauge("pdsp.monitor.snapshots")
      ->Set(static_cast<double>(last.seq));
  registry->GetGauge("pdsp.monitor.findings")
      ->Set(static_cast<double>(findings.size()));
  double min_frac = worker_busy_fraction.empty() ? 0.0 : 1.0;
  double max_frac = 0.0;
  for (size_t w = 0; w < worker_busy_fraction.size(); ++w) {
    const double frac = worker_busy_fraction[w];
    registry->GetGauge(StrFormat("pdsp.monitor.worker%zu.busy_fraction", w))
        ->Set(frac);
    min_frac = std::min(min_frac, frac);
    max_frac = std::max(max_frac, frac);
  }
  registry->GetGauge("pdsp.monitor.busy_fraction_min")->Set(min_frac);
  registry->GetGauge("pdsp.monitor.busy_fraction_max")->Set(max_frac);
}

SnapshotSampler::SnapshotSampler(SweepProgress* progress,
                                 MonitorOptions options)
    : progress_(progress),
      options_(std::move(options)),
      stream_(options_.stream != nullptr ? options_.stream : stderr),
      watchdog_(options_) {}

SnapshotSampler::~SnapshotSampler() { Stop(); }

void SnapshotSampler::Start() {
  if (thread_.joinable() || stopped_) return;
  thread_ = std::thread([this] { Loop(); });
}

MonitorSummary SnapshotSampler::Stop() {
  if (stopped_) return summary_;
  {
    MutexLock lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  Tick(/*final_snapshot=*/true);
  if (rich_line_open_) {
    std::fprintf(stream_, "\n");
    rich_line_open_ = false;
  }
  summary_.findings = watchdog_.findings();
  summary_.codes = watchdog_.Codes();
  for (const MonitorFinding& f : summary_.findings) {
    if (f.code == "PDSP-M201") summary_.straggler_cells.push_back(f.subject);
  }
  for (const WorkerSnapshot& w : summary_.last.workers) {
    summary_.worker_busy_fraction.push_back(summary_.last.BusyFraction(w));
  }
  stopped_ = true;
  return summary_;
}

void SnapshotSampler::Loop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_s > 0.0 ? options_.interval_s : 0.5);
  for (;;) {
    {
      MutexLock lock(stop_mu_);
      if (stop_requested_) return;
      // Timed wait directly on the annotated Mutex through its
      // BasicLockable surface — capability-neutral, so the guarded reads
      // of stop_requested_ stay statically checked. A spurious wakeup at
      // worst takes one extra sample, which is harmless.
      stop_cv_.wait_for(stop_mu_, interval);
      if (stop_requested_) return;
    }
    Tick(/*final_snapshot=*/false);
  }
}

void SnapshotSampler::Tick(bool final_snapshot) {
  if (progress_ == nullptr) return;
  SweepSnapshot snap = progress_->Snapshot(final_snapshot);
  const std::vector<MonitorFinding> fresh = watchdog_.Evaluate(snap);
  Render(snap, fresh);
  AppendJsonl(snap, fresh);
  if (final_snapshot) summary_.last = std::move(snap);
}

void SnapshotSampler::Render(const SweepSnapshot& snapshot,
                             const std::vector<MonitorFinding>& fresh) {
  if (options_.render == MonitorOptions::RenderMode::kOff) return;

  size_t busy = 0;
  std::string detail;
  for (const WorkerSnapshot& w : snapshot.workers) {
    if (w.current_cell < 0) continue;
    ++busy;
    if (detail.size() < 60) {
      detail += StrFormat("%sw%d:%s %.1fs", detail.empty() ? "" : " ",
                          w.worker, w.current_label.c_str(),
                          w.cell_elapsed_s);
    }
  }
  const std::string line = StrFormat(
      "[%s] %zu/%zu cells%s | %zu/%zu workers busy | eta %s | %s",
      snapshot.sweep.c_str(), snapshot.cells_done, snapshot.cells_total,
      snapshot.cells_failed > 0
          ? StrFormat(" (%zu failed)", snapshot.cells_failed).c_str()
          : "",
      busy, snapshot.workers.size(), EtaCell(snapshot.eta_s).c_str(),
      detail.empty() ? "idle" : detail.c_str());

  if (options_.render == MonitorOptions::RenderMode::kRich) {
    // \r + clear-to-end rewrites the status in place; findings get their
    // own permanent lines above it.
    for (const MonitorFinding& f : fresh) {
      std::fprintf(stream_, "\r\x1b[2K%s: %s\n", f.code.c_str(),
                   f.message.c_str());
    }
    std::fprintf(stream_, "\r\x1b[2K%s", line.c_str());
    std::fflush(stream_);
    rich_line_open_ = true;
  } else {
    for (const MonitorFinding& f : fresh) {
      std::fprintf(stream_, "%s: %s\n", f.code.c_str(), f.message.c_str());
    }
    std::fprintf(stream_, "%s\n", line.c_str());
  }
}

void SnapshotSampler::AppendJsonl(const SweepSnapshot& snapshot,
                                  const std::vector<MonitorFinding>& fresh) {
  if (options_.jsonl_path.empty()) return;
  Json j = snapshot.ToJson();
  if (!fresh.empty()) {
    Json arr = Json::Array();
    for (const MonitorFinding& f : fresh) arr.Append(f.ToJson());
    j.Set("findings", std::move(arr));
  }
  Status st = AppendLineAtomic(options_.jsonl_path, j.Dump(0));
  if (!st.ok()) {
    PDSP_LOG(Warn) << "progress append to " << options_.jsonl_path << ": "
                   << st.ToString();
    // Do not retry every tick on a persistently broken path.
    options_.jsonl_path.clear();
  }
}

}  // namespace obs
}  // namespace pdsp
