#include "src/harness/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/analysis/analyzer.h"
#include "src/analysis/properties.h"
#include "src/common/file_util.h"
#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/artifacts.h"
#include "src/obs/host_profile.h"
#include "src/workload/enumerator.h"

namespace pdsp {

const std::vector<ParallelismCategory>& StandardCategories() {
  static const std::vector<ParallelismCategory> kCategories = {
      {"XS", 1}, {"S", 4}, {"M", 16}, {"L", 32}, {"XL", 64}, {"XXL", 128},
  };
  return kCategories;
}

namespace {

int MaxParallelism(const LogicalPlan& plan) {
  int max_p = 1;
  for (size_t i = 0; i < plan.NumOperators(); ++i) {
    max_p = std::max(max_p,
                     plan.op(static_cast<LogicalPlan::OpId>(i)).parallelism);
  }
  return max_p;
}

}  // namespace

obs::RunRecord MakeLedgerRecord(const LogicalPlan& plan,
                                const Cluster& cluster,
                                const RunProtocol& protocol,
                                const CellResult& cell) {
  obs::RunRecord rec;
  rec.label = protocol.label.empty() ? "plan" : protocol.label;
  rec.run_id = obs::MakeRunId(rec.label);
  rec.timestamp_utc = obs::NowUtcIso8601();
  rec.plan_hash = obs::PlanHashHex(plan);
  rec.parallelism = MaxParallelism(plan);
  // Per-source target rate: all plan factories apply one rate uniformly.
  if (!plan.sources().empty()) {
    rec.event_rate = plan.sources().front().arrival.rate;
  }
  rec.cluster = protocol.ledger.cluster_name.empty()
                    ? "custom"
                    : protocol.ledger.cluster_name;
  rec.nodes = static_cast<int>(cluster.NumNodes());
  rec.seed = std::to_string(protocol.seed);
  rec.repeats = protocol.repeats;
  rec.duration_s = protocol.duration_s;
  rec.warmup_s = protocol.warmup_s;
  rec.build_info = obs::BuildInfoString();
  rec.throughput_tps = cell.mean_throughput_tps;
  rec.median_latency_s = cell.mean_median_latency_s;
  rec.p95_latency_s = cell.p95_latency_s;
  rec.p99_latency_s = cell.p99_latency_s;
  rec.throughput_stddev = cell.throughput_stats.stddev();
  rec.median_latency_stddev = cell.median_latency_stats.stddev();
  rec.late_drops = cell.late_drops;
  rec.backpressure_skipped = cell.backpressure_skipped;
  if (cell.has_diagnosis) {
    rec.breakdown_source_batch_s = cell.diagnosis.breakdown.source_batch_s;
    rec.breakdown_network_s = cell.diagnosis.breakdown.network_s;
    rec.breakdown_queue_s = cell.diagnosis.breakdown.queue_s;
    rec.breakdown_service_s = cell.diagnosis.breakdown.service_s;
    rec.breakdown_window_s = cell.diagnosis.breakdown.window_s;
    for (const analysis::Diagnostic& d : cell.diagnosis.report.diagnostics()) {
      rec.diagnosis_codes.push_back(d.code);
    }
    std::sort(rec.diagnosis_codes.begin(), rec.diagnosis_codes.end());
    rec.diagnosis_codes.erase(
        std::unique(rec.diagnosis_codes.begin(), rec.diagnosis_codes.end()),
        rec.diagnosis_codes.end());
  }
  if (protocol.obs.enabled) rec.artifact_dir = protocol.obs.dir;
  if (cell.has_profile) {
    rec.profile_samples = cell.profile.samples;
    rec.profile_cpu_s = cell.profile.total_cpu_s;
    rec.profile_sampler_cpu_s = cell.profile.sampler_cpu_s;
    for (const obs::prof::FrameTotal& op : cell.profile.operators) {
      if (op.name == "(none)") continue;  // samples outside any operator
      rec.profile_top_operator = op.name;  // sorted by cpu_s desc
      rec.profile_top_operator_cpu_s = op.cpu_s;
      break;
    }
  }
  if (cell.has_mem_profile) {
    rec.mem_samples = cell.mem_profile.samples;
    rec.mem_total_bytes = cell.mem_profile.total_bytes;
    rec.mem_live_bytes = cell.mem_profile.live_bytes;
    rec.mem_peak_heap_bytes = cell.mem_profile.peak_heap_bytes;
    rec.mem_bytes_per_tuple = cell.mem_profile.bytes_per_tuple;
    for (const obs::mem::MemFrameTotal& op : cell.mem_profile.operators) {
      if (op.name == "(untracked)") continue;  // samples outside any op
      rec.mem_top_operator = op.name;  // sorted by total_bytes desc
      rec.mem_top_operator_bytes = op.total_bytes;
      break;
    }
  }
  const obs::HostUsage usage = obs::HostProfiler::Global().SampleUsage();
  rec.host_wall_s = usage.wall_s;
  rec.host_cpu_user_s = usage.cpu_user_s;
  rec.host_cpu_sys_s = usage.cpu_sys_s;
  rec.host_peak_rss_kb = usage.peak_rss_kb;
  return rec;
}

Result<CellResult> MeasureCell(const LogicalPlan& plan,
                               const Cluster& cluster,
                               const RunProtocol& protocol) {
  // Legacy single-threaded entry: a private context whose wall-clock
  // phases land in the process-wide profiler.
  exec::RunContext context(&obs::HostProfiler::Global());
  return MeasureCell(plan, cluster, protocol, &context);
}

Result<CellResult> MeasureCell(const LogicalPlan& plan,
                               const Cluster& cluster,
                               const RunProtocol& protocol,
                               exec::RunContext* context) {
  if (context == nullptr) return MeasureCell(plan, cluster, protocol);
  if (protocol.repeats < 1) return Status::InvalidArgument("repeats < 1");
  context->set_base_seed(protocol.seed);

  // Static-analysis gate: never burn simulation time on a plan whose
  // results would be meaningless. Warning-only reports are recorded in the
  // pdsp.analysis.* counters; one debug line keeps sweeps quiet.
  const analysis::AnalysisReport report = analysis::AnalyzePlan(plan);
  if (report.HasErrors()) {
    if (!protocol.allow_invalid) return report.ToStatus();
    PDSP_LOG(Warn) << "simulating plan with " << report.NumErrors()
                   << " analysis error(s) (allow_invalid set)";
  } else if (!report.empty()) {
    PDSP_LOG(Debug) << "plan analysis: "
                    << report.CountAtLeast(analysis::Severity::kWarning)
                    << " warning(s)";
  }

  // Derived static properties: the determinism verdict lands in the ledger
  // record and the full property table rides along in diagnosis.json.
  const std::shared_ptr<const analysis::PlanProperties> props =
      analysis::AnalysisContext::Make(plan, &cluster).props;

  CellResult cell;
  // CPU profiling: register this thread (a no-op on pool workers, which
  // stay registered for the pool's lifetime) and start the context-owned
  // sampler before the first repeat. With the default single-thread scope
  // each concurrent sweep cell samples only its own worker, so parallel
  // cells never attribute each other's CPU. Start failure downgrades to a
  // warning — a sweep never dies on its observability.
  std::unique_ptr<obs::prof::ThreadRegistration> prof_registration;
  if (protocol.profile.enabled || protocol.mem.enabled) {
    prof_registration =
        std::make_unique<obs::prof::ThreadRegistration>("harness");
  }
  if (protocol.profile.enabled) {
    Status st = context->StartCpuProfiler(protocol.profile);
    if (!st.ok()) PDSP_LOG(Warn) << "cpu profiler: " << st.ToString();
  }
  // The memory profiler samples only this thread's allocations (default
  // scope), attributed to the same marker stack the CPU sampler reads;
  // starting it also keeps ProfScope markers live when --profile is off.
  if (protocol.mem.enabled) {
    Status st = context->StartMemProfiler(protocol.mem);
    if (!st.ok()) PDSP_LOG(Warn) << "memory profiler: " << st.ToString();
  }
  obs::Tracer& tracer = *context->tracer();
  tracer.set_verbose(protocol.obs.trace_verbose);
  // Harness-level span covering every repeat of the cell, so a sweep's
  // wall-time layout is visible in Perfetto next to the operator firings.
  const std::string cell_span_name =
      StrFormat("cell:%s/%d",
                protocol.label.empty() ? "plan" : protocol.label.c_str(),
                MaxParallelism(plan));
  obs::Span cell_span(protocol.obs.enabled ? &tracer : nullptr,
                      cell_span_name, "harness");
  // First-repeat state retained for the artifact bundle written after the
  // cell completes (so the cell span is closed by then).
  SimResult first_run;
  SimOptions first_options;
  bool have_first = false;
  int usable = 0;
  obs::prof::ProfScope app_scope(
      obs::prof::FrameKind::kApp,
      protocol.label.empty() ? std::string("plan") : protocol.label);
  for (int r = 0; r < protocol.repeats; ++r) {
    ExecutionOptions exec;
    exec.placement = protocol.placement;
    exec.costs = protocol.costs;
    exec.sim.duration_s = protocol.duration_s;
    exec.sim.warmup_s = protocol.warmup_s;
    // Pure function of (protocol.seed, r): bit-identical no matter which
    // worker or context executes the cell.
    exec.sim.seed = context->SeedForRepeat(r);
    // Artifacts come from the first repeat only: one representative run per
    // cell keeps the bundle small and the remaining repeats untraced.
    const bool emit_obs = protocol.obs.enabled && r == 0;
    // Attribution only costs wall clock — virtual-time results are
    // unaffected — so enabling it for the diagnosed repeat is safe.
    exec.sim.attribute_latency = r == 0 && protocol.diagnose;
    if (emit_obs) {
      exec.sim.tracer = &tracer;
      exec.sim.metrics_interval_s = protocol.obs.metrics_interval_s;
    }
    // The representative repeat records into the context's registry so
    // SimResult::metrics aliases per-run state the caller can merge.
    if (r == 0) exec.sim.metrics = context->metrics();
    SimResult run;
    {
      obs::HostProfiler::Phase phase(context->profiler(), "simulate");
      obs::prof::ProfScope prof_phase(obs::prof::FrameKind::kPhase,
                                      "simulate");
      PDSP_ASSIGN_OR_RETURN(run, ExecutePlan(plan, cluster, exec));
    }
    if (r == 0 && protocol.diagnose) {
      // Diagnose the representative run; a diagnosis failure downgrades to
      // a warning so a sweep never dies on its observability.
      obs::HostProfiler::Phase phase(context->profiler(), "diagnose");
      obs::prof::ProfScope prof_phase(obs::prof::FrameKind::kPhase,
                                      "diagnose");
      Result<obs::Diagnosis> diag =
          obs::DiagnoseRun(plan, cluster, run, protocol.diagnose_options);
      if (diag.ok()) {
        cell.diagnosis = std::move(diag).value();
        cell.diagnosis.dataflow = props->ToJson(plan);
        cell.has_diagnosis = true;
      } else {
        PDSP_LOG(Warn) << "run diagnosis: " << diag.status().ToString();
      }
    }
    cell.late_drops += run.late_drops;
    cell.backpressure_skipped += run.backpressure_skipped;
    if (!std::isnan(run.median_latency_s)) {
      cell.mean_median_latency_s += run.median_latency_s;
      cell.mean_throughput_tps += run.throughput_tps;
      cell.median_latency_stats.Add(run.median_latency_s);
      cell.throughput_stats.Add(run.throughput_tps);
      ++usable;
    }
    if (r == 0) {
      cell.p95_latency_s = run.p95_latency_s;
      cell.p99_latency_s = run.p99_latency_s;
      first_options = exec.sim;
      first_run = std::move(run);
      have_first = true;
    }
  }
  cell_span.End();
  // Stop before the export phase: profile.json is part of the bundle, so
  // the profile cannot cover its own serialization.
  if (protocol.profile.enabled && context->cpu_profiling()) {
    cell.profile = context->StopCpuProfiler();
    cell.has_profile = true;
  }
  if (protocol.mem.enabled && context->mem_profiling()) {
    cell.mem_profile = context->StopMemProfiler();
    // Empty means interposition is compiled out (or nothing allocated
    // enough to sample): no memory.json, no nested ledger object.
    cell.has_mem_profile = !cell.mem_profile.empty();
  }
  if (cell.has_mem_profile && cell.has_diagnosis) {
    // Memory findings ride the existing rule-engine plumbing: codes land
    // in diagnosis.json and the ledger's diagnosis_codes like PDSP-R###.
    double node_memory_gb = 0.0;
    for (const Node& node : cluster.nodes()) {
      if (node_memory_gb == 0.0 || node.spec.memory_gb < node_memory_gb) {
        node_memory_gb = node.spec.memory_gb;
      }
    }
    obs::mem::DiagnoseMemProfile(cell.mem_profile, node_memory_gb,
                                 &cell.diagnosis.report);
    cell.diagnosis.report.Finalize();
  }
  if (have_first) cell.op_stats = first_run.op_stats;
  if (protocol.obs.enabled && have_first) {
    obs::HostProfiler::Phase phase(context->profiler(), "export");
    obs::ArtifactOptions artifacts;
    artifacts.tracer = &tracer;
    artifacts.diagnosis = cell.has_diagnosis ? &cell.diagnosis : nullptr;
    artifacts.sim_options = &first_options;
    artifacts.cpu_profile = cell.has_profile ? &cell.profile : nullptr;
    artifacts.mem_profile = cell.has_mem_profile ? &cell.mem_profile : nullptr;
    const obs::HostProfile host_profile = context->profiler()->Snapshot();
    artifacts.host_profile = &host_profile;
    if (first_run.metrics != nullptr) {
      context->profiler()->ExportTo(first_run.metrics.get());
    }
    Status st = obs::WriteRunArtifacts(protocol.obs.dir, first_run, artifacts);
    if (!st.ok()) {
      PDSP_LOG(Warn) << "obs artifacts for " << protocol.obs.dir << ": "
                     << st.ToString();
    }
  }
  if (usable == 0) {
    return Status::Internal("no run produced sink results");
  }
  cell.mean_median_latency_s /= usable;
  cell.mean_throughput_tps /= usable;
  cell.ledger_record = MakeLedgerRecord(plan, cluster, protocol, cell);
  cell.ledger_record.determinism =
      analysis::DeterminismToString(props->verdict);
  if (protocol.ledger.enabled) {
    const obs::RunLedger ledger(protocol.ledger.path);
    Status st = ledger.Append(cell.ledger_record);
    if (!st.ok()) {
      PDSP_LOG(Warn) << "ledger append to " << protocol.ledger.path << ": "
                     << st.ToString();
    }
  }
  return cell;
}

Result<CellResult> MeasureAtDegree(LogicalPlan plan, int degree,
                                   const Cluster& cluster,
                                   const RunProtocol& protocol) {
  PDSP_RETURN_NOT_OK(ApplyUniformParallelism(&plan, degree));
  return MeasureCell(plan, cluster, protocol);
}

Result<CellResult> MeasureAtDegree(LogicalPlan plan, int degree,
                                   const Cluster& cluster,
                                   const RunProtocol& protocol,
                                   exec::RunContext* context) {
  PDSP_RETURN_NOT_OK(ApplyUniformParallelism(&plan, degree));
  return MeasureCell(plan, cluster, protocol, context);
}

TableReporter::TableReporter(std::string title,
                             std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TableReporter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void TableReporter::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]),
                  c < cells.size() ? cells[c].c_str() : "");
    }
    std::printf("\n");
  };
  print_row(columns_);
  size_t total = columns_.size() * 2;
  for (size_t w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

Status TableReporter::WriteCsv(const std::string& path) const {
  // Atomic replacement (tmp + rename): a concurrent reader of results/*.csv
  // never sees a torn or truncated table.
  std::string csv = Join(columns_, ",") + "\n";
  for (const auto& row : rows_) csv += Join(row, ",") + "\n";
  return WriteTextFileAtomic(path, csv);
}

std::string LatencyCell(double seconds) {
  return StrFormat("%.2f", seconds * 1e3);
}

std::string ThroughputCell(double tps) { return StrFormat("%.0f", tps); }

}  // namespace pdsp
