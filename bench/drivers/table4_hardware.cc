// Table 4: the modelled CloudLab hardware — node specifications and the
// 10-node cluster presets used across the experiments.

#include <cstdio>

#include "src/cluster/cluster.h"
#include "src/common/string_util.h"
#include "src/harness/harness.h"

namespace pdsp {

int Main(int, char**) {
  // Static table; --jobs is accepted (for driver uniformity) but unused.
  TableReporter table("Table 4: hardware configuration (CloudLab models)",
                      {"cluster", "node", "nodes", "cores/node", "RAM(GB)",
                       "storage(GB)", "processor", "GHz", "NIC(Gbps)",
                       "speed"});
  struct Row {
    const char* kind;
    Cluster cluster;
  };
  const std::vector<Row> rows = {
      {"Ho", Cluster::M510(10)},
      {"He", Cluster::C6525(10)},
      {"He", Cluster::C6320(10)},
  };
  for (const Row& row : rows) {
    const NodeSpec& spec = row.cluster.node(0).spec;
    table.AddRow({row.kind, spec.model,
                  StrFormat("%zu", row.cluster.NumNodes()),
                  StrFormat("%d", spec.cores),
                  StrFormat("%.0f", spec.memory_gb),
                  StrFormat("%.0f", spec.storage_gb), spec.cpu,
                  StrFormat("%.1f", spec.clock_ghz),
                  StrFormat("%.0f", spec.nic_gbps),
                  StrFormat("%.2f%s", row.cluster.MeanSpeed(),
                            row.cluster.IsHeterogeneous() ? " (jittered)"
                                                          : "")});
  }
  table.Print();
  std::printf("%s", Cluster::Mixed(10).ToString().c_str());
  (void)table.WriteCsv("results/table4_hardware.csv");
  return 0;
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
