// Quickstart: build a parallel streaming query with PlanBuilder, execute it
// on a simulated 10-node cluster, and read the performance metrics.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/cluster/cluster.h"
#include "src/query/builder.h"
#include "src/sim/simulation.h"

using namespace pdsp;  // NOLINT — example brevity

int main() {
  // 1. Describe the input stream: (sensor_id, temperature) at 50k events/s.
  StreamSpec stream;
  (void)stream.schema.AddField({"sensor", DataType::kInt});
  (void)stream.schema.AddField({"temp", DataType::kDouble});
  FieldGeneratorSpec sensor;
  sensor.dist = FieldDistribution::kZipfKey;
  sensor.cardinality = 500;
  sensor.zipf_s = 0.6;
  FieldGeneratorSpec temp;
  temp.dist = FieldDistribution::kNormalDouble;
  temp.min = -10.0;
  temp.max = 45.0;
  stream.specs = {sensor, temp};

  ArrivalProcess::Options arrival;
  arrival.kind = ArrivalKind::kPoisson;
  arrival.rate = 50000.0;

  // 2. Build the dataflow: source -> filter (temp > 30) -> 1s tumbling
  //    average per sensor -> sink, all with 8 parallel instances.
  const int parallelism = 8;
  PlanBuilder builder;
  auto src = builder.Source("sensors", stream, arrival, parallelism);
  auto hot = builder.Filter("hot_only", src, 1, FilterOp::kGt, Value(30.0),
                            parallelism);
  WindowSpec window;
  window.type = WindowType::kTumbling;
  window.policy = WindowPolicy::kTime;
  window.duration_ms = 1000.0;
  auto avg = builder.WindowAggregate("avg_temp", hot, window,
                                     AggregateFn::kAvg, /*agg_field=*/1,
                                     /*key_field=*/0, parallelism);
  builder.Sink("sink", avg);
  auto plan = builder.Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("logical plan:\n%s\n", plan->ToString().c_str());

  // 3. Execute on a simulated homogeneous 10-node m510 cluster.
  ExecutionOptions options;
  options.sim.duration_s = 5.0;
  options.sim.warmup_s = 1.0;
  auto result = ExecutePlan(*plan, Cluster::M510(10), options);
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the metrics.
  std::printf("%s\n\n", result->Summary().c_str());
  std::printf("per-operator statistics:\n");
  for (const OperatorRunStats& op : result->op_stats) {
    std::printf("  %-10s p=%-3d in=%-8lld out=%-8lld util=%.2f (max %.2f)\n",
                op.name.c_str(), op.parallelism,
                static_cast<long long>(op.tuples_in),
                static_cast<long long>(op.tuples_out), op.utilization,
                op.max_instance_util);
  }
  return 0;
}
