// Shared knobs for the figure-reproduction drivers. Setting the environment
// variable PDSP_BENCH_FAST=1 shrinks durations/repeats for smoke runs; the
// default settings are the ones EXPERIMENTS.md reports. Every driver also
// accepts --jobs=N (or PDSP_JOBS=N) to fan its sweep cells across worker
// threads — per-cell results are bit-identical to a sequential run.

#ifndef PDSP_BENCH_DRIVERS_DRIVER_UTIL_H_
#define PDSP_BENCH_DRIVERS_DRIVER_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/sweep.h"
#include "src/harness/harness.h"

namespace pdsp {
namespace bench {

inline bool FastMode() {
  const char* v = std::getenv("PDSP_BENCH_FAST");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

/// Protocol for figure cells: paper-style mean of repeated medians; fast
/// mode cuts to one short run.
inline RunProtocol FigureProtocol() {
  RunProtocol p;
  if (FastMode()) {
    p.repeats = 1;
    p.duration_s = 1.5;
    p.warmup_s = 0.4;
  } else {
    p.repeats = 2;
    p.duration_s = 2.5;
    p.warmup_s = 0.6;
  }
  return p;
}

/// Worker-thread count for the driver's sweep: --jobs=N on the command line
/// wins over the PDSP_JOBS environment variable; the default is sequential.
/// 0 (or any non-positive value) means one worker per hardware thread.
inline int ParseJobs(int argc, char** argv) {
  int jobs = 1;
  if (const char* env = std::getenv("PDSP_JOBS");
      env != nullptr && *env != '\0') {
    jobs = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    }
  }
  return jobs;
}

/// Runs a driver's cell grid through the sweep scheduler and reports the
/// fan-out on stderr (cells ok, jobs, wall seconds). Results come back in
/// cell order, so drivers index `sweep.cells[i]` in the same order they
/// pushed cells.
inline exec::SweepResult RunDriverSweep(std::vector<exec::SweepCell> cells,
                                        const std::string& name, int jobs) {
  exec::SweepOptions options;
  options.jobs = jobs;
  options.name = name;
  exec::SweepResult sweep = exec::RunSweep(cells, options);
  std::fprintf(stderr, "[%s] %zu/%zu cells ok, jobs=%d, wall %.2fs\n",
               name.c_str(), sweep.NumOk(), sweep.cells.size(), sweep.jobs,
               sweep.wall_s);
  return sweep;
}

/// Formats one sweep outcome as a latency table cell ("n/a" on failure,
/// logging the failure so it is not silently swallowed into the table).
inline std::string LatencyOrNa(const exec::SweepCellOutcome& outcome) {
  if (!outcome.result.ok()) {
    std::fprintf(stderr, "cell %s: %s\n", outcome.label.c_str(),
                 outcome.result.status().ToString().c_str());
    return "n/a";
  }
  return LatencyCell(outcome.result->mean_median_latency_s);
}

}  // namespace bench
}  // namespace pdsp

#endif  // PDSP_BENCH_DRIVERS_DRIVER_UTIL_H_
