#include "src/obs/artifacts.h"

#include <cmath>
#include <filesystem>
#include <fstream>

namespace pdsp {
namespace obs {

namespace {

Json FiniteNumber(double v) {
  return std::isfinite(v) ? Json::Number(v) : Json::Null();
}

Status WriteTextFile(const std::filesystem::path& path,
                     const std::string& text) {
  std::ofstream out(path);
  if (!out.good()) return Status::Internal("cannot open " + path.string());
  out << text;
  if (!out.good()) return Status::Internal("short write to " + path.string());
  return Status::OK();
}

}  // namespace

Json RunMetricsJson(const SimResult& result) {
  Json summary = Json::Object();
  summary.Set("median_latency_s", FiniteNumber(result.median_latency_s));
  summary.Set("mean_latency_s", FiniteNumber(result.mean_latency_s));
  summary.Set("p95_latency_s", FiniteNumber(result.p95_latency_s));
  summary.Set("p99_latency_s", FiniteNumber(result.p99_latency_s));
  summary.Set("throughput_tps", FiniteNumber(result.throughput_tps));
  summary.Set("source_tuples", Json::Int(result.source_tuples));
  summary.Set("sink_tuples", Json::Int(result.sink_tuples));
  summary.Set("backpressure_skipped", Json::Int(result.backpressure_skipped));
  summary.Set("late_drops", Json::Int(result.late_drops));
  summary.Set("events_processed", Json::Int(result.events_processed));
  summary.Set("virtual_time_end_s", FiniteNumber(result.virtual_time_end));

  Json ops = Json::Array();
  for (const OperatorRunStats& s : result.op_stats) {
    Json op = Json::Object();
    op.Set("name", Json::Str(s.name));
    op.Set("parallelism", Json::Int(s.parallelism));
    op.Set("tuples_in", Json::Int(s.tuples_in));
    op.Set("tuples_out", Json::Int(s.tuples_out));
    op.Set("late_drops", Json::Int(s.late_drops));
    op.Set("busy_time_s", FiniteNumber(s.busy_time_s));
    op.Set("utilization", FiniteNumber(s.utilization));
    op.Set("max_instance_util", FiniteNumber(s.max_instance_util));
    op.Set("max_queue_tuples", Json::Int(static_cast<int64_t>(
        s.max_queue_tuples)));
    ops.Append(std::move(op));
  }

  Json root = Json::Object();
  root.Set("summary", std::move(summary));
  root.Set("operators", std::move(ops));
  root.Set("metrics", result.metrics != nullptr ? result.metrics->ToJson()
                                                : Json::Object());
  return root;
}

Status WriteRunArtifacts(const std::string& dir, const SimResult& result,
                         const Tracer* tracer) {
  const std::filesystem::path base(dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec && !std::filesystem::is_directory(base)) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  PDSP_RETURN_NOT_OK(WriteTextFile(base / "metrics.json",
                                   RunMetricsJson(result).Dump(2) + "\n"));
  if (!result.timeseries.empty()) {
    PDSP_RETURN_NOT_OK(
        result.timeseries.WriteCsv((base / "timeseries.csv").string()));
  }
  if (tracer != nullptr) {
    PDSP_RETURN_NOT_OK(tracer->WriteFile((base / "trace.json").string()));
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace pdsp
