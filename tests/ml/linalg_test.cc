#include "src/ml/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pdsp {
namespace {

TEST(MatrixTest, MatVec) {
  Matrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 3;
  a.at(1, 0) = 4;
  a.at(1, 1) = 5;
  a.at(1, 2) = 6;
  Vector y = a.MatVec({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, TransposedMatVec) {
  Matrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(1, 2) = 2;
  Vector y = a.TransposedMatVec({1.0, 1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(MatrixTest, GlorotRandomBounded) {
  Rng rng(1);
  Matrix m = Matrix::GlorotRandom(10, 10, &rng);
  const double bound = std::sqrt(6.0 / 20.0);
  for (double v : m.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(MatMulTest, KnownProduct) {
  Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  auto c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c->at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c->at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c->at(1, 1), 50.0);
}

TEST(MatMulTest, DimensionMismatchRejected) {
  EXPECT_FALSE(MatMul(Matrix(2, 3), Matrix(2, 3)).ok());
}

TEST(TransposeTest, RoundTrip) {
  Rng rng(2);
  Matrix a = Matrix::GlorotRandom(3, 5, &rng);
  Matrix t = Transpose(a);
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 5; ++j) EXPECT_EQ(t.at(j, i), a.at(i, j));
  }
}

TEST(CholeskyTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  Matrix a(2, 2);
  a.at(0, 0) = 4;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 3;
  auto x = CholeskySolve(a, {10.0, 9.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.5, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(CholeskyTest, RidgeRegularizesSingularMatrix) {
  Matrix a(2, 2);  // rank 1
  a.at(0, 0) = 1;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 1;
  EXPECT_FALSE(CholeskySolve(a, {1.0, 1.0}, 0.0).ok());
  EXPECT_TRUE(CholeskySolve(a, {1.0, 1.0}, 0.1).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskySolve(Matrix(2, 3), {1.0, 2.0}).ok());
}

TEST(VectorOpsTest, DotAxpyScale) {
  Vector a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  Axpy(2.0, a, &b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  Scale(0.5, &b);
  EXPECT_DOUBLE_EQ(b[0], 3.0);
}

TEST(CholeskyTest, LargerRandomSystemRoundTrips) {
  // Build SPD A = M^T M + I and verify A x = b residual.
  Rng rng(3);
  const size_t n = 12;
  Matrix m = Matrix::GlorotRandom(n, n, &rng);
  auto mtm = MatMul(Transpose(m), m);
  ASSERT_TRUE(mtm.ok());
  for (size_t i = 0; i < n; ++i) mtm->at(i, i) += 1.0;
  Vector b(n);
  for (auto& v : b) v = rng.Uniform(-1, 1);
  auto x = CholeskySolve(*mtm, b);
  ASSERT_TRUE(x.ok());
  Vector ax = mtm->MatVec(*x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

}  // namespace
}  // namespace pdsp
