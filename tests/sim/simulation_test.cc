#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/query/cardinality.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

using testing::KeyValueStream;
using testing::PoissonArrival;

// source -> filter(val>50) -> sink, no windows: latency should be tiny.
Result<LogicalPlan> FilterOnlyPlan(double rate, int parallelism) {
  PlanBuilder b;
  auto s = b.Source("src", KeyValueStream(), PoissonArrival(rate),
                    parallelism);
  auto f = b.Filter("filter", s, 1, FilterOp::kGt, Value(50.0), parallelism);
  b.Sink("sink", f, 1);
  return b.Build();
}

ExecutionOptions FastOptions(uint64_t seed = 42) {
  ExecutionOptions opt;
  opt.sim.duration_s = 4.0;
  opt.sim.warmup_s = 1.0;
  opt.sim.seed = seed;
  return opt;
}

TEST(SimulationTest, FilterOnlyThroughputMatchesSelectivity) {
  auto plan = FilterOnlyPlan(10000.0, 2);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto r = ExecutePlan(*plan, Cluster::M510(4), FastOptions());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Sink sees ~rate * 0.5 tuples/s.
  EXPECT_NEAR(r->throughput_tps, 5000.0, 500.0);
  EXPECT_GT(r->sink_tuples, 0);
  EXPECT_EQ(r->late_drops, 0);
}

TEST(SimulationTest, FilterOnlyLatencyIsSubSecond) {
  auto plan = FilterOnlyPlan(10000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto r = ExecutePlan(*plan, Cluster::M510(4), FastOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->median_latency_s, 0.0);
  EXPECT_LT(r->median_latency_s, 0.2);
  EXPECT_LE(r->median_latency_s, r->p95_latency_s);
}

TEST(SimulationTest, DeterministicForSameSeed) {
  auto plan = FilterOnlyPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto a = ExecutePlan(*plan, Cluster::M510(4), FastOptions(7));
  auto b = ExecutePlan(*plan, Cluster::M510(4), FastOptions(7));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sink_tuples, b->sink_tuples);
  EXPECT_DOUBLE_EQ(a->median_latency_s, b->median_latency_s);
  EXPECT_EQ(a->events_processed, b->events_processed);
}

TEST(SimulationTest, DifferentSeedsDiffer) {
  auto plan = FilterOnlyPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto a = ExecutePlan(*plan, Cluster::M510(4), FastOptions(7));
  auto b = ExecutePlan(*plan, Cluster::M510(4), FastOptions(8));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->sink_tuples, b->sink_tuples);
}

TEST(SimulationTest, WindowedPlanLatencyIncludesWindowTime) {
  // 1s tumbling window: median end-to-end latency must exceed ~0.5s (mean
  // residence) and be below a few seconds when unsaturated.
  auto plan = testing::LinearPlan(/*rate=*/5000.0, /*parallelism=*/4);
  ASSERT_TRUE(plan.ok());
  ExecutionOptions opt = FastOptions();
  opt.sim.duration_s = 6.0;
  auto r = ExecutePlan(*plan, Cluster::M510(4), opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->median_latency_s, 0.4);
  EXPECT_LT(r->median_latency_s, 3.0);
}

TEST(SimulationTest, WindowedAggregateOutputRateMatchesKeys) {
  // 100 keys, 1s tumbling window -> ~100 results/s at the sink.
  auto plan = testing::LinearPlan(/*rate=*/20000.0, /*parallelism=*/4);
  ASSERT_TRUE(plan.ok());
  ExecutionOptions opt = FastOptions();
  opt.sim.duration_s = 6.0;
  auto r = ExecutePlan(*plan, Cluster::M510(4), opt);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->throughput_tps, 100.0, 30.0);
}

TEST(SimulationTest, SaturationRaisesLatency) {
  // One source instance at 150k/s runs at ~75% utilization on an m510 core
  // (5us/tuple); eight instances are far from saturation. Parallelism must
  // cut latency materially.
  auto slow = FilterOnlyPlan(150000.0, 1);
  auto fast = FilterOnlyPlan(150000.0, 8);
  ASSERT_TRUE(slow.ok() && fast.ok());
  auto r_slow = ExecutePlan(*slow, Cluster::M510(4), FastOptions());
  auto r_fast = ExecutePlan(*fast, Cluster::M510(4), FastOptions());
  ASSERT_TRUE(r_slow.ok() && r_fast.ok());
  EXPECT_GT(r_slow->median_latency_s, r_fast->median_latency_s * 2);
}

TEST(SimulationTest, JoinPlanProducesJoinedTuples) {
  auto plan = testing::TwoWayJoinPlan(/*rate=*/2000.0, /*parallelism=*/4);
  ASSERT_TRUE(plan.ok());
  ExecutionOptions opt = FastOptions();
  opt.sim.duration_s = 5.0;
  auto r = ExecutePlan(*plan, Cluster::M510(4), opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The skew-aware cardinality model and the DES must agree within ~2x.
  auto cards = CardinalityModel::Compute(*plan);
  ASSERT_TRUE(cards.ok());
  const double predicted = (*cards)[plan->SinkId()].output_rate;
  EXPECT_GT(r->throughput_tps, predicted / 2.0);
  EXPECT_LT(r->throughput_tps, predicted * 2.0);
}

TEST(SimulationTest, OperatorStatsAreCoherent) {
  auto plan = FilterOnlyPlan(10000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto r = ExecutePlan(*plan, Cluster::M510(4), FastOptions());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->op_stats.size(), 3u);  // src, filter, sink
  const auto& src = r->op_stats[0];
  const auto& filter = r->op_stats[1];
  const auto& sink = r->op_stats[2];
  EXPECT_EQ(src.name, "src");
  EXPECT_GT(src.tuples_out, 0);
  // Filter passes ~50%.
  EXPECT_NEAR(static_cast<double>(filter.tuples_out) / filter.tuples_in, 0.5,
              0.05);
  EXPECT_EQ(sink.tuples_in, r->sink_tuples);
  for (const auto& s : r->op_stats) {
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.2);
    EXPECT_GE(s.max_instance_util, s.utilization - 1e-9);
  }
}

TEST(SimulationTest, BadOptionsRejected) {
  auto plan = FilterOnlyPlan(100.0, 1);
  ASSERT_TRUE(plan.ok());
  ExecutionOptions opt;
  opt.sim.duration_s = 0.0;
  EXPECT_FALSE(ExecutePlan(*plan, Cluster::M510(2), opt).ok());
  opt.sim.duration_s = 1.0;
  opt.sim.warmup_s = 2.0;
  EXPECT_FALSE(ExecutePlan(*plan, Cluster::M510(2), opt).ok());
}

TEST(SimulationTest, PlacementSizeMismatchRejected) {
  auto plan = FilterOnlyPlan(100.0, 1);
  ASSERT_TRUE(plan.ok());
  auto phys = PhysicalPlan::FromLogical(&*plan);
  ASSERT_TRUE(phys.ok());
  Placement bad;
  bad.node_of_task = {0};  // wrong size
  bad.tasks_per_node = {1};
  CostModel costs;
  SimOptions sim;
  EXPECT_TRUE(Simulation::Run(*phys, Cluster::M510(2), bad, costs, sim)
                  .status()
                  .IsInvalidArgument());
}

TEST(SimulationTest, BackpressureSkipsWhenSaturated) {
  // A heavy UDO (20us/tuple ~ 50k/s capacity) fed at 100k/s saturates; with
  // a low in-flight cap the sources must start skipping generation.
  PlanBuilder b;
  auto s = b.Source("src", KeyValueStream(), PoissonArrival(100000.0), 4);
  auto u = b.Udo("udo", s, "heavy", /*cost_factor=*/4.0, 1.0, false, 1);
  b.Sink("sink", u, 1);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  ExecutionOptions opt = FastOptions();
  opt.sim.duration_s = 3.0;
  opt.sim.warmup_s = 0.5;
  opt.sim.max_in_flight_tuples = 20000;
  auto r = ExecutePlan(*plan, Cluster::M510(4), opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->backpressure_skipped, 0);
}

TEST(SimulationTest, MeanMedianLatencyAveragesRuns) {
  auto plan = FilterOnlyPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto m = MeanMedianLatency(*plan, Cluster::M510(4), FastOptions(), 3);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_GT(*m, 0.0);
  EXPECT_LT(*m, 1.0);
  EXPECT_FALSE(MeanMedianLatency(*plan, Cluster::M510(4), FastOptions(), 0)
                   .ok());
}

TEST(SimulationTest, SummaryMentionsLatency) {
  auto plan = FilterOnlyPlan(1000.0, 1);
  ASSERT_TRUE(plan.ok());
  auto r = ExecutePlan(*plan, Cluster::M510(2), FastOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->Summary().find("latency"), std::string::npos);
}

TEST(SimulationTest, HeterogeneousClusterRunsClean) {
  auto plan = testing::LinearPlan(10000.0, 8);
  ASSERT_TRUE(plan.ok());
  for (const Cluster& cluster :
       {Cluster::C6525(4), Cluster::C6320(4), Cluster::Mixed(6)}) {
    auto r = ExecutePlan(*plan, cluster, FastOptions());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->sink_tuples, 0);
  }
}

TEST(SimulationTest, FasterClusterGivesLowerOrEqualLatencyUnderLoad) {
  // Near-saturating a single m510 core; the faster EPYC cluster should cut
  // queueing delay.
  auto plan = FilterOnlyPlan(80000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto slow = ExecutePlan(*plan, Cluster::M510(2), FastOptions());
  auto fast = ExecutePlan(*plan, Cluster::C6525(2), FastOptions());
  ASSERT_TRUE(slow.ok() && fast.ok());
  EXPECT_LT(fast->median_latency_s, slow->median_latency_s);
}

}  // namespace
}  // namespace pdsp
