// pdsp::obs host-side self-profiling: what the *benchmarking system itself*
// costs, as opposed to what the simulated system reports in virtual time.
// Two ingredients:
//
//  1. Resource sampling — RSS / peak RSS from /proc/self/status (graceful
//     zeros off-Linux) and user/sys CPU time from getrusage(2).
//  2. Wall-clock phase timers — RAII scopes accumulating per-phase totals
//     (build-plan / simulate / diagnose / train / export), so a sweep's
//     harness overhead is attributable to a phase, not just "wall clock".
//
// Snapshots export as `pdsp.host.*` gauges into a MetricsRegistry and as
// the host_profile.json member of every artifact bundle. The profiler is
// deliberately sample-on-demand (no background thread): a phase scope costs
// two steady_clock reads and one mutex-guarded map update, which keeps the
// measured overhead on micro_sim well under the 2% acceptance bound.

#ifndef PDSP_OBS_HOST_PROFILE_H_
#define PDSP_OBS_HOST_PROFILE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {

/// \brief One point-in-time host resource reading.
struct HostUsage {
  double wall_s = 0.0;       ///< seconds since profiler construction/Reset
  double cpu_user_s = 0.0;   ///< process user CPU (getrusage, cumulative)
  double cpu_sys_s = 0.0;    ///< process system CPU (cumulative)
  int64_t rss_kb = 0;        ///< current VmRSS (0 when /proc unavailable)
  int64_t peak_rss_kb = 0;   ///< peak_rss_bytes / 1024 (back-compat)
  /// Peak RSS in bytes: max(VmHWM, ru_maxrss) with ru_maxrss converted
  /// per platform (Linux reports kB, macOS reports bytes — the raw value
  /// must not be used as one fixed unit). Cross-checked against
  /// MemProfile::peak_heap_bytes in tests: sampled heap never exceeds it.
  int64_t peak_rss_bytes = 0;
};

/// \brief Accumulated wall-clock time of one named phase.
struct HostPhaseStats {
  int64_t count = 0;   ///< completed scopes
  double total_s = 0.0;
  double max_s = 0.0;  ///< longest single scope
};

/// \brief Per-phase timers of one named sweep worker, merged into the
/// parent profiler at join (HostProfiler::MergeWorkerPhases).
using WorkerPhaseMap = std::map<std::string, HostPhaseStats>;

/// \brief Snapshot of the profiler: resource usage + per-phase timers.
///
/// `phases` holds scopes recorded directly on this profiler (the
/// single-threaded wall-clock story). `worker_phases` holds scopes that
/// ran concurrently on sweep workers, keyed by worker name — kept separate
/// precisely so parallel busy-seconds are never summed into the profiler's
/// own wall-clock phases (N workers × t seconds each is N·t CPU-seconds,
/// not N·t wall seconds). `AggregateWorkerPhases()` sums across workers
/// when the cross-worker CPU-second total is wanted explicitly.
struct HostProfile {
  HostUsage usage;
  std::map<std::string, HostPhaseStats> phases;
  std::map<std::string, WorkerPhaseMap> worker_phases;

  /// Per-phase sums across all workers (CPU-seconds, not wall).
  WorkerPhaseMap AggregateWorkerPhases() const;

  /// {"usage": {...}, "phases": {name: {count, total_s, max_s}},
  ///  "workers": {worker: {phase: {...}}},
  ///  "worker_aggregate": {phase: {...}}} — the worker sections are
  /// omitted when no worker phases were merged.
  Json ToJson() const;
};

/// \brief Process-wide self-profiler. All members are thread-safe; use
/// Global() for the shared instance the harness/CLI/trainer phases report
/// into, or construct private instances in tests.
class HostProfiler {
 public:
  HostProfiler();

  /// The process-wide profiler (phases from harness, CLI and ML trainer).
  static HostProfiler& Global();

  /// Disabling makes phase scopes no-ops (the overhead-control for the
  /// micro_sim acceptance benchmark); sampling stays available.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Adds one completed scope of `name` lasting `seconds`.
  void RecordPhase(const std::string& name, double seconds);

  /// Adopts a sweep worker's phase accumulators under `worker` (e.g.
  /// "worker0"). Re-merging the same worker name folds the maps together.
  /// Worker phases stay separate from this profiler's own phases — see
  /// HostProfile for the double-counting rationale.
  void MergeWorkerPhases(const std::string& worker,
                         const WorkerPhaseMap& phases);

  /// Reads /proc/self/status + getrusage now.
  HostUsage SampleUsage() const;

  /// Usage + copy of all phase accumulators.
  HostProfile Snapshot() const;

  /// Sets pdsp.host.{wall_s, cpu_user_s, cpu_sys_s, rss_kb, peak_rss_kb}
  /// and pdsp.host.phase.<name>.{total_s, count} gauges; with merged
  /// worker phases also pdsp.host.workers and the aggregate
  /// pdsp.host.worker_phase.<name>.{total_s, count} (CPU-seconds summed
  /// across workers; per-worker detail lives in host_profile.json).
  void ExportTo(MetricsRegistry* registry) const;

  /// Clears phase accumulators and re-anchors the wall clock (tests).
  void Reset();

  /// \brief RAII phase scope. A null/disabled profiler records nothing.
  class Phase {
   public:
    Phase(HostProfiler* profiler, std::string name)
        : profiler_(profiler != nullptr && profiler->enabled() ? profiler
                                                               : nullptr),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}
    ~Phase() { End(); }
    Phase(const Phase&) = delete;
    Phase& operator=(const Phase&) = delete;

    /// Ends the scope early; later calls (and the destructor) are no-ops.
    void End() {
      if (profiler_ == nullptr) return;
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      profiler_->RecordPhase(name_, elapsed.count());
      profiler_ = nullptr;
    }

   private:
    HostProfiler* profiler_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  std::atomic<bool> enabled_{true};
  std::chrono::steady_clock::time_point start_;
  mutable Mutex mu_;
  std::map<std::string, HostPhaseStats> phases_ PDSP_GUARDED_BY(mu_);
  std::map<std::string, WorkerPhaseMap> worker_phases_ PDSP_GUARDED_BY(mu_);
};

/// Scopes a phase on the global profiler for the current block.
#define PDSP_HOST_PHASE(name)                                    \
  ::pdsp::obs::HostProfiler::Phase PDSP_CONCAT(_pdsp_phase_,     \
                                               __LINE__)(        \
      &::pdsp::obs::HostProfiler::Global(), (name))

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_HOST_PROFILE_H_
