#include "src/sim/cost_model.h"

#include <algorithm>

namespace pdsp {

double CostModel::InputTupleCost(const OperatorDescriptor& op) const {
  switch (op.type) {
    case OperatorType::kSource:
      return source_cost;
    case OperatorType::kFilter:
      return filter_cost;
    case OperatorType::kMap:
      return map_cost;
    case OperatorType::kFlatMap:
      return flatmap_cost;
    case OperatorType::kWindowAggregate: {
      // Sliding windows touch OverlapFactor() panes per element.
      return agg_update_cost * op.window.OverlapFactor();
    }
    case OperatorType::kWindowJoin:
      return join_insert_cost + join_probe_cost;
    case OperatorType::kUdo: {
      double c = udo_base_cost * std::max(0.0, op.udo_cost_factor);
      if (op.udo_stateful) c += udo_state_cost;
      return c;
    }
    case OperatorType::kSink:
      return sink_cost;
  }
  return map_cost;
}

double CostModel::OutputTupleCost(const OperatorDescriptor& op,
                                  bool timer_fire) const {
  switch (op.type) {
    case OperatorType::kWindowJoin:
      return emit_cost + join_match_cost;
    case OperatorType::kWindowAggregate:
      return emit_cost + (timer_fire ? agg_fire_cost : 0.0);
    default:
      return emit_cost;
  }
}

double CostModel::BatchCost(const OperatorDescriptor& op) const {
  double c = batch_overhead;
  if (op.RequiresKeyedInput()) {
    c += keyed_coordination_cost * std::max(0, op.parallelism - 1);
  }
  return c;
}

}  // namespace pdsp
