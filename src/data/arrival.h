// Arrival processes for data streams. The paper models event arrivals as
// Poisson ("data is modelled as poisson distributed since many real-world
// applications ... are poisson distributed", Section 4) with configurable
// event rates from 10 to 4 million events/second (Table 3); Zipf and other
// skews apply to key *values*, handled by the field generators.

#ifndef PDSP_DATA_ARRIVAL_H_
#define PDSP_DATA_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace pdsp {

/// Arrival process families supported by the workload generator.
enum class ArrivalKind {
  kPoisson = 0,    ///< exponential interarrivals (the paper's default)
  kConstant = 1,   ///< deterministic spacing 1/rate
  kBursty = 2,     ///< on/off: Poisson at peak_factor*rate for on-periods
};

const char* ArrivalKindToString(ArrivalKind kind);

/// The event rates of Table 3 (events/second).
const std::vector<double>& StandardEventRates();

/// \brief Generates interarrival gaps and batch counts for a stream with a
/// mean rate of `rate` events/second.
class ArrivalProcess {
 public:
  struct Options {
    ArrivalKind kind = ArrivalKind::kPoisson;
    double rate = 1000.0;        ///< mean events per second, > 0
    double peak_factor = 4.0;    ///< bursty: multiplier during on-periods
    double burst_period = 1.0;   ///< bursty: seconds per on+off cycle
    double duty_cycle = 0.25;    ///< bursty: fraction of period that is "on"
  };

  /// Validates options (rate > 0, sane burst parameters).
  static Result<ArrivalProcess> Create(const Options& options);

  /// Seconds until the next single event.
  double NextInterarrival(Rng* rng) const;

  /// Number of events arriving in the window [t, t+dt) — the batched form
  /// the simulator uses at high event rates.
  int64_t EventsInWindow(double t, double dt, Rng* rng) const;

  double rate() const { return options_.rate; }
  ArrivalKind kind() const { return options_.kind; }

 private:
  explicit ArrivalProcess(const Options& options) : options_(options) {}

  /// Instantaneous rate at virtual time t (varies only for bursty).
  double RateAt(double t) const;

  Options options_;
};

}  // namespace pdsp

#endif  // PDSP_DATA_ARRIVAL_H_
