// Adam optimizer state shared by the gradient-trained models.

#ifndef PDSP_ML_ADAM_H_
#define PDSP_ML_ADAM_H_

#include <cmath>

#include "src/ml/linalg.h"

namespace pdsp {

/// \brief First/second-moment buffers for one parameter vector.
struct AdamState {
  Vector m;
  Vector v;

  explicit AdamState(size_t n = 0) : m(n, 0.0), v(n, 0.0) {}

  /// One Adam update; `t` is the global 1-based step count.
  void Step(Vector* param, const Vector& grad, double lr, int t) {
    constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
    const double bc1 = 1.0 - std::pow(kBeta1, t);
    const double bc2 = 1.0 - std::pow(kBeta2, t);
    for (size_t i = 0; i < param->size(); ++i) {
      m[i] = kBeta1 * m[i] + (1 - kBeta1) * grad[i];
      v[i] = kBeta2 * v[i] + (1 - kBeta2) * grad[i] * grad[i];
      (*param)[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + kEps);
    }
  }
};

}  // namespace pdsp

#endif  // PDSP_ML_ADAM_H_
