// Ablation: operator chaining. Flink fuses forward-connected operators of
// equal parallelism into one task; our simulator models this as zero-cost
// same-thread handoff on co-located forward channels. This driver measures
// a deep map pipeline with locality placement, chaining on vs off, and with
// rebalance partitioning (which can never chain) for context.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/query/builder.h"

namespace pdsp {

namespace {

Result<LogicalPlan> DeepPipeline(double rate, int parallelism,
                                 Partitioning partitioning) {
  StreamSpec stream;
  (void)stream.schema.AddField({"key", DataType::kInt});
  (void)stream.schema.AddField({"val", DataType::kDouble});
  FieldGeneratorSpec key;
  key.dist = FieldDistribution::kUniformKey;
  key.cardinality = 100000;
  FieldGeneratorSpec val;
  val.dist = FieldDistribution::kUniformDouble;
  val.max = 100.0;
  stream.specs = {key, val};
  ArrivalProcess::Options arrival;
  arrival.rate = rate;

  PlanBuilder b;
  auto cur = b.Source("src", stream, arrival, parallelism);
  for (int i = 0; i < 5; ++i) {
    cur = b.Map(StrFormat("map%d", i + 1), cur, parallelism);
    b.WithPartitioning(cur, partitioning);
  }
  b.Sink("sink", cur, parallelism);
  b.WithPartitioning(cur, partitioning);
  return b.Build();
}

}  // namespace

int Main() {
  const Cluster cluster = Cluster::M510(10);
  const double rate = bench::FastMode() ? 40000.0 : 150000.0;
  RunProtocol protocol = bench::FigureProtocol();
  protocol.placement = PlacementKind::kLocality;

  TableReporter table(
      StrFormat("Ablation: operator chaining on a 6-op pipeline "
                "(locality placement, %.0fk ev/s)",
                rate / 1000.0),
      {"parallelism", "forward+chain(ms)", "forward,no-chain(ms)",
       "rebalance(ms)"});

  for (int parallelism : {4, 16, 64}) {
    std::vector<std::string> row = {StrFormat("%d", parallelism)};
    struct Config {
      Partitioning partitioning;
      bool chain;
    };
    for (const Config& config :
         {Config{Partitioning::kForward, true},
          Config{Partitioning::kForward, false},
          Config{Partitioning::kRebalance, true}}) {
      auto plan = DeepPipeline(rate, parallelism, config.partitioning);
      if (!plan.ok()) {
        row.push_back("n/a");
        continue;
      }
      // MeasureCell uses default costs; run directly to toggle chaining.
      ExecutionOptions exec;
      exec.placement = protocol.placement;
      exec.costs.chain_forward_channels = config.chain;
      exec.sim.duration_s = protocol.duration_s;
      exec.sim.warmup_s = protocol.warmup_s;
      exec.sim.seed = protocol.seed;
      auto r = ExecutePlan(*plan, cluster, exec);
      row.push_back(r.ok() ? LatencyCell(r->median_latency_s) : "n/a");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_chaining.csv");
  return 0;
}

}  // namespace pdsp

int main() { return pdsp::Main(); }
