// pdsp::obs run-provenance ledger: a schema-versioned, append-only JSONL
// file (one RunRecord per line, conventionally results/ledger.jsonl) in
// which every measured run/cell records what ran (plan hash, parallelism,
// rate, cluster, seed, build), what came out in virtual time (throughput,
// latency percentiles, breakdown components, diagnosis codes) and what the
// harness itself cost on the host (wall / CPU / peak RSS). This is the
// durable trajectory the comparison engine (src/obs/compare.h) and the
// `pdspbench history/compare/baseline` subcommands read — the layer every
// perf claim in later PRs is judged against.
//
// Appends are single O_APPEND writes (src/common/file_util.h), so
// concurrent drivers can share one ledger without interleaving lines.
// Records carry enough protocol state (seed, repeats, duration, warmup,
// rate, parallelism, cluster) to re-execute the run bit-identically.

#ifndef PDSP_OBS_LEDGER_H_
#define PDSP_OBS_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/query/plan.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {

/// Current RunRecord schema version; FromJson rejects anything else so a
/// reader never silently misinterprets fields from a future layout.
inline constexpr int kLedgerSchemaVersion = 1;

/// \brief One measured run (or harness cell) as persisted in the ledger.
struct RunRecord {
  int schema_version = kLedgerSchemaVersion;
  std::string run_id;         ///< unique id, e.g. "WC-189ab3f2c41-7f21"
  std::string timestamp_utc;  ///< ISO-8601 UTC, e.g. "2026-08-06T12:34:56Z"
  std::string label;          ///< app abbrev / structure / driver cell name

  // --- provenance: what exactly ran -------------------------------------
  std::string plan_hash;   ///< 16-hex FNV-1a of the canonical plan JSON
  int parallelism = 0;     ///< max operator parallelism in the plan
  double event_rate = 0.0; ///< per-source target rate (events/s)
  std::string cluster;     ///< profile name (m510/c6525/c6320/mixed/custom)
  int nodes = 0;
  std::string seed;        ///< decimal uint64 (string: exact round-trip)
  int repeats = 1;
  double duration_s = 0.0;
  double warmup_s = 0.0;
  std::string build_info;  ///< compiler + build flavor

  // --- virtual-time results ---------------------------------------------
  double throughput_tps = 0.0;
  double median_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  /// Stddev across the protocol's repeats (0 with a single repeat) — the
  /// noise estimate the comparison engine gates verdicts on.
  double throughput_stddev = 0.0;
  double median_latency_stddev = 0.0;
  int64_t late_drops = 0;
  int64_t backpressure_skipped = 0;
  /// LatencyBreakdown components of the diagnosed repeat (0 when latency
  /// attribution was off).
  double breakdown_source_batch_s = 0.0;
  double breakdown_network_s = 0.0;
  double breakdown_queue_s = 0.0;
  double breakdown_service_s = 0.0;
  double breakdown_window_s = 0.0;
  /// PDSP-R### codes the runtime diagnosis emitted, sorted, deduplicated.
  std::vector<std::string> diagnosis_codes;
  /// Static determinism verdict of the plan ("deterministic" /
  /// "order-dependent" / "nondeterministic"), derived by the dataflow
  /// determinism analysis; empty on records written before the analysis
  /// existed. Scopes any bit-identity claim made about the run.
  std::string determinism;
  /// Artifact bundle directory (metrics.json / trace.json /
  /// host_profile.json ...) when the run wrote one; empty otherwise.
  std::string artifact_dir;

  // --- host-side footprint at record time -------------------------------
  double host_wall_s = 0.0;
  double host_cpu_user_s = 0.0;
  double host_cpu_sys_s = 0.0;
  int64_t host_peak_rss_kb = 0;

  // --- sampling-CPU-profile summary (full data in artifact_dir/
  // profile.json). Serialized as one nested "profile" object and only when
  // profile_samples > 0, so unprofiled records are byte-identical to before
  // and bit-identity checks can treat the whole key as volatile (like
  // "host"). ---------------------------------------------------------------
  int64_t profile_samples = 0;
  double profile_cpu_s = 0.0;
  double profile_sampler_cpu_s = 0.0;
  std::string profile_top_operator;
  double profile_top_operator_cpu_s = 0.0;

  // --- allocation-profile summary (full data in artifact_dir/memory.json).
  // Same discipline as "profile": serialized as one nested "memory" object
  // and only when mem_samples > 0, so unprofiled records stay byte-identical
  // and bit-identity checks treat the key as volatile. -------------------
  int64_t mem_samples = 0;
  int64_t mem_total_bytes = 0;
  int64_t mem_live_bytes = 0;
  int64_t mem_peak_heap_bytes = 0;
  double mem_bytes_per_tuple = 0.0;
  std::string mem_top_operator;
  int64_t mem_top_operator_bytes = 0;

  Json ToJson() const;
  /// Parses a record; rejects unknown schema versions and missing
  /// mandatory fields (run_id, label).
  static Result<RunRecord> FromJson(const Json& json);
};

/// 16-hex-digit FNV-1a64 over the canonical plan serialization
/// (store/plan_serde). Stable across processes; "0" * 16 when the plan
/// cannot be serialized (e.g. not validated).
std::string PlanHashHex(const LogicalPlan& plan);

/// Compiler + build-flavor string, e.g. "g++ 13.2.0 (release)".
std::string BuildInfoString();

/// "<label>-<µs-since-epoch hex>-<pid hex>": unique within a machine,
/// sortable by creation time for equal labels.
std::string MakeRunId(const std::string& label);

/// Current UTC wall time as "YYYY-MM-DDTHH:MM:SSZ".
std::string NowUtcIso8601();

/// \brief Append-only JSONL ledger bound to one path.
class RunLedger {
 public:
  explicit RunLedger(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  /// Serializes `record` onto one line and appends it atomically.
  Status Append(const RunRecord& record) const;

  /// Parses every line; an absent file yields an empty vector, a malformed
  /// or version-rejected line fails loudly with its line number.
  Result<std::vector<RunRecord>> Load() const;

 private:
  std::string path_;
};

/// Resolves a CLI record spec against loaded records (oldest-first order):
///   - an exact run_id, or a unique run_id prefix (>= 4 chars);
///   - "<label>" — the latest record with that label;
///   - "<label>~N" — the N-th latest record with that label (N >= 1).
/// Returns NotFound/InvalidArgument with an explanatory message otherwise.
Result<RunRecord> ResolveRecord(const std::vector<RunRecord>& records,
                                const std::string& spec);

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_LEDGER_H_
