#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace pdsp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 6000; ++i) ++counts[rng.UniformInt(0, 5)];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 700) << "value " << v;  // expected 1000 each
    EXPECT_LT(c, 1300) << "value " << v;
  }
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(9);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.Exponential(0.001), 0.0);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto v = static_cast<double>(rng.Poisson(200.0));
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  EXPECT_NEAR(mean, 200.0, 1.0);
  EXPECT_NEAR(sq / n - mean * mean, 200.0, 15.0);  // var == mean for Poisson
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, ZipfWithinRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Zipf(100, 1.2);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(RngTest, ZipfIsSkewedTowardsLowRanks) {
  Rng rng(17);
  int64_t ones = 0, total = 20000;
  for (int64_t i = 0; i < total; ++i) ones += (rng.Zipf(1000, 1.1) == 1);
  // Rank 1 should carry far more than the uniform share of 1/1000.
  EXPECT_GT(static_cast<double>(ones) / static_cast<double>(total), 0.05);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(19);
  std::vector<int64_t> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 0.0) - 1];
  for (int64_t c : counts) {
    EXPECT_GT(c, 1600);
    EXPECT_LT(c, 2400);
  }
}

TEST(RngTest, ZipfHandlesExponentOne) {
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.Zipf(50, 1.0);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
  }
}

TEST(RngTest, ZipfDegenerateN) {
  Rng rng(1);
  EXPECT_EQ(rng.Zipf(1, 1.5), 1);
  EXPECT_EQ(rng.Zipf(0, 1.5), 1);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, WeightedIndexAllZeroReturnsZero) {
  Rng rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), 0u);
}

TEST(RngTest, ChoicePicksExistingElements) {
  Rng rng(31);
  std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    int v = rng.Choice(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(RngTest, ForkProducesDecorrelatedStream) {
  Rng base(42);
  Rng forked = base.Fork(1);
  Rng forked2 = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (forked.NextUint64() == forked2.NextUint64());
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace pdsp
