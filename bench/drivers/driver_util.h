// Shared knobs for the figure-reproduction drivers. Setting the environment
// variable PDSP_BENCH_FAST=1 shrinks durations/repeats for smoke runs; the
// default settings are the ones EXPERIMENTS.md reports.

#ifndef PDSP_BENCH_DRIVERS_DRIVER_UTIL_H_
#define PDSP_BENCH_DRIVERS_DRIVER_UTIL_H_

#include <cstdlib>
#include <cstring>

#include "src/harness/harness.h"

namespace pdsp {
namespace bench {

inline bool FastMode() {
  const char* v = std::getenv("PDSP_BENCH_FAST");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

/// Protocol for figure cells: paper-style mean of repeated medians; fast
/// mode cuts to one short run.
inline RunProtocol FigureProtocol() {
  RunProtocol p;
  if (FastMode()) {
    p.repeats = 1;
    p.duration_s = 1.5;
    p.warmup_s = 0.4;
  } else {
    p.repeats = 2;
    p.duration_s = 2.5;
    p.warmup_s = 0.6;
  }
  return p;
}

}  // namespace bench
}  // namespace pdsp

#endif  // PDSP_BENCH_DRIVERS_DRIVER_UTIL_H_
