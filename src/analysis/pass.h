// Pass infrastructure for the static plan analyzer: the shared
// AnalysisContext every pass reads (tolerantly derived schemas, adjacency,
// topological order, optional cluster), the AnalysisPass interface, and the
// PassRegistry that owns an ordered, individually toggleable pass pipeline.
//
// Passes never mutate the plan and must tolerate *structurally broken*
// plans (cycles, dangling operators, out-of-range field references): unlike
// LogicalPlan::Validate(), which stops at the first problem, the analyzer
// exists to report everything wrong with a plan in one shot.

#ifndef PDSP_ANALYSIS_PASS_H_
#define PDSP_ANALYSIS_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/cluster/cluster.h"
#include "src/data/value.h"
#include "src/query/plan.h"

namespace pdsp {
namespace analysis {

struct PlanProperties;  // src/analysis/properties.h

/// \brief Everything a pass may inspect, precomputed once per analyzer run.
///
/// Schemas are derived tolerantly: when an operator's schema cannot be
/// computed (missing input, field out of range, upstream unknown), it is
/// marked unknown and derivation continues downstream. Passes must check
/// SchemaKnown() before reading a schema.
struct AnalysisContext {
  const LogicalPlan* plan = nullptr;
  /// Optional hardware model; passes with needs_cluster() only run when set.
  const Cluster* cluster = nullptr;

  /// Adjacency by operator id (same order as edge insertion).
  std::vector<std::vector<LogicalPlan::OpId>> inputs;
  std::vector<std::vector<LogicalPlan::OpId>> outputs;

  /// Topological order of the operator DAG; empty when the plan is cyclic.
  std::vector<LogicalPlan::OpId> topo;
  bool acyclic = false;

  /// Best-effort per-operator output schemas (parallel to plan ops).
  std::vector<Schema> schemas;
  std::vector<bool> schema_known;

  /// Facts derived by the dataflow analyses (partitioning, rate intervals,
  /// constant refinement, determinism); computed once by Make so every
  /// pass can consume them. Always set; individual analyses may report
  /// non-convergence through their FixpointStats.
  std::shared_ptr<const PlanProperties> props;

  /// Builds the context (never fails; broken structure yields empty topo /
  /// unknown schemas, which the structural passes then diagnose).
  static AnalysisContext Make(const LogicalPlan& plan,
                              const Cluster* cluster = nullptr);

  size_t NumOps() const { return plan->NumOperators(); }
  const OperatorDescriptor& op(LogicalPlan::OpId id) const {
    return plan->op(id);
  }
  bool SchemaKnown(LogicalPlan::OpId id) const {
    return id >= 0 && static_cast<size_t>(id) < schema_known.size() &&
           schema_known[id];
  }
  const Schema& schema(LogicalPlan::OpId id) const { return schemas.at(id); }
};

/// \brief One composable lint check. Implementations are stateless; Run()
/// appends any findings to `out`.
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  /// Stable registry name, kebab-case ("window-legality").
  virtual const char* name() const = 0;
  /// One-line human description for `pdspbench analyze --list-passes`.
  virtual const char* description() const = 0;
  /// Passes that reason about hardware only run when a cluster is supplied.
  virtual bool needs_cluster() const { return false; }

  virtual void Run(const AnalysisContext& ctx,
                   std::vector<Diagnostic>* out) const = 0;

 protected:
  /// Convenience constructor for findings of this pass.
  Diagnostic MakeDiag(Severity severity, std::string code,
                      const AnalysisContext& ctx, LogicalPlan::OpId op,
                      std::string message, std::string hint = "") const;
};

/// \brief Ordered, owning collection of passes with per-pass enable bits.
class PassRegistry {
 public:
  PassRegistry() = default;
  PassRegistry(PassRegistry&&) = default;
  PassRegistry& operator=(PassRegistry&&) = default;

  /// Registry preloaded with every built-in pass (see passes.cc).
  static PassRegistry Default();

  /// Appends a pass (enabled). Duplicate names are rejected.
  Status Register(std::unique_ptr<AnalysisPass> pass);

  /// Enables/disables a pass by name; NotFound for unknown names.
  Status SetEnabled(const std::string& name, bool enabled);
  bool IsEnabled(const std::string& name) const;
  bool Has(const std::string& name) const;

  /// Registered pass names in registration order.
  std::vector<std::string> Names() const;
  /// Pointer to a registered pass (nullptr if unknown).
  const AnalysisPass* Find(const std::string& name) const;

  size_t NumPasses() const { return passes_.size(); }

  /// Runs every enabled pass (cluster passes only when ctx.cluster is set)
  /// and returns the finalized report.
  AnalysisReport RunAll(const AnalysisContext& ctx) const;

 private:
  struct Entry {
    std::unique_ptr<AnalysisPass> pass;
    bool enabled = true;
  };
  std::vector<Entry> passes_;
};

}  // namespace analysis
}  // namespace pdsp

#endif  // PDSP_ANALYSIS_PASS_H_
