// Heterogeneous hardware exploration (the paper's Exp. 2 in miniature): run
// the same applications on the homogeneous m510 cluster and the two "He"
// clusters, at the per-node-core parallelism the paper uses, and compare —
// including the diversity dilemma, where more powerful hardware does not
// automatically help complex UDO apps.
//
//   ./build/examples/heterogeneous_placement

#include <cstdio>

#include "src/apps/apps.h"
#include "src/harness/harness.h"

using namespace pdsp;  // NOLINT — example brevity

int main() {
  struct Target {
    const char* label;
    Cluster cluster;
    int degree;
  };
  const std::vector<Target> targets = {
      {"Ho m510 (p=8)", Cluster::M510(10), 8},
      {"He c6525_25g (p=16)", Cluster::C6525(10), 16},
      {"He c6320 (p=28)", Cluster::C6320(10), 28},
      {"He mixed (p=16)", Cluster::Mixed(10), 16},
  };
  RunProtocol protocol;
  protocol.repeats = 2;
  protocol.duration_s = 3.0;
  protocol.warmup_s = 0.75;

  for (AppId app : {AppId::kSpikeDetection, AppId::kSentimentAnalysis,
                    AppId::kAdAnalytics}) {
    const AppInfo& info = GetAppInfo(app);
    std::printf("\n%s (%s): %s\n", info.abbrev, info.name, info.description);
    for (const Target& target : targets) {
      AppOptions options;
      options.event_rate = 200000.0;
      options.parallelism = target.degree;
      options.window_scale = 0.5;
      auto plan = MakeApp(app, options);
      if (!plan.ok()) continue;
      auto cell = MeasureCell(*plan, target.cluster, protocol);
      if (cell.ok()) {
        std::printf("  %-22s p50=%8s ms\n", target.label,
                    LatencyCell(cell->mean_median_latency_s).c_str());
      } else {
        std::printf("  %-22s (no results)\n", target.label);
      }
    }
  }
  std::printf(
      "\nSD/SA benefit from the faster He clusters; AD's join + custom\n"
      "sliding aggregation is bound by cross-instance coordination, so\n"
      "hardware diversity alone does not rescue it (paper O5/O7).\n");
  return 0;
}
