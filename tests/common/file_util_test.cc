#include "src/common/file_util.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace pdsp {
namespace {

class FileUtilTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/pdsp_file_util_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(FileUtilTest, WriteAtomicCreatesParentsAndRoundTrips) {
  const std::string path = dir_ + "/a/b/c.txt";
  ASSERT_TRUE(WriteTextFileAtomic(path, "hello\n").ok());
  auto text = ReadTextFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello\n");
  // No .tmp sibling left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FileUtilTest, WriteAtomicReplacesExistingContent) {
  const std::string path = dir_ + "/f.txt";
  ASSERT_TRUE(WriteTextFileAtomic(path, "first").ok());
  ASSERT_TRUE(WriteTextFileAtomic(path, "second").ok());
  auto text = ReadTextFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "second");
}

TEST_F(FileUtilTest, ReadMissingFileIsNotFound) {
  auto text = ReadTextFile(dir_ + "/absent.txt");
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kNotFound);
}

TEST_F(FileUtilTest, AppendLineCreatesFileAndAddsNewline) {
  const std::string path = dir_ + "/log/x.jsonl";
  ASSERT_TRUE(AppendLineAtomic(path, "one").ok());
  ASSERT_TRUE(AppendLineAtomic(path, "two\n").ok());
  auto text = ReadTextFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "one\ntwo\n");
}

}  // namespace
}  // namespace pdsp
