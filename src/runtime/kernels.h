// Vectorized columnar kernels over data::Batch. Each kernel is the batch
// counterpart of an existing per-element code path and is required to be
// bit-identical to it: FilterSelect replicates Value comparison semantics
// (string-vs-string lexical, otherwise the AsNumeric() double view),
// HashColumn replicates Value::Hash() (via the exported per-type hash
// primitives in src/data/value.h), Aggregate adds in row order exactly like
// the window AggState. Promoted (dynamically typed) columns take a per-row
// Value fallback inside each kernel, so callers never branch on layout.

#ifndef PDSP_RUNTIME_KERNELS_H_
#define PDSP_RUNTIME_KERNELS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/status.h"
#include "src/data/batch.h"
#include "src/query/plan.h"

namespace pdsp {
namespace kernels {

/// Appends to *sel the indices of rows in [begin, end) whose `field` value
/// satisfies `value <op> literal`, with Value comparison semantics.
/// Fails with OutOfRange when `field` is beyond the batch arity (mirroring
/// the scalar FilterExec).
Status FilterSelect(const data::Batch& in, size_t begin, size_t end,
                    size_t field, FilterOp op, const Value& literal,
                    data::SelectionVector* sel);

/// Writes the Value::AsNumeric() view of rows [begin, end) of `field` into
/// out[0 .. end-begin): ints and doubles as double, strings by length.
void NumericColumn(const data::Batch& in, size_t begin, size_t end,
                   size_t field, double* out);

/// Writes Value::Hash() of rows [begin, end) of `field` into
/// out[0 .. end-begin), bit-identical to hashing the materialized Value.
void HashColumn(const data::Batch& in, size_t begin, size_t end, size_t field,
                uint64_t* out);

/// \brief Running aggregate over a numeric column view (the value half of
/// the window AggState; accumulation order is row order).
struct AggPartial {
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  double Finish(AggregateFn fn) const;
};

/// Aggregates the AsNumeric() view of rows [begin, end) of `field` into
/// *out (row order). Fails with OutOfRange when `field` is beyond the
/// batch arity.
Status Aggregate(const data::Batch& in, size_t begin, size_t end,
                 size_t field, AggPartial* out);

/// Hash-partitions rows [begin, end) by `key_field` into
/// parts[0 .. num_partitions): parts[d] lists the rows whose key hash maps
/// to destination d (row order preserved within each destination — the
/// gather-once half of a radix partition). A `key_field` beyond the batch
/// arity sends every row to destination 0 (the scalar router's fallback for
/// keyless tuples). `parts` is resized and cleared by the call.
void Partition(const data::Batch& in, size_t begin, size_t end,
               size_t key_field, int num_partitions,
               std::vector<data::SelectionVector>* parts);

}  // namespace kernels
}  // namespace pdsp

#endif  // PDSP_RUNTIME_KERNELS_H_
