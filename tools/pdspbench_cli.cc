// pdspbench — command-line front end, the library's equivalent of the
// paper's web UI + controller: pick an application or synthetic structure,
// an event rate, a parallelism degree and a cluster, and get the measured
// performance.
//
//   pdspbench --app=SG --rate=200000 --parallelism=16 --cluster=c6525
//   pdspbench --structure=join2 --rate=100000 --parallelism=8
//   pdspbench --list
//   pdspbench analyze all
//   pdspbench analyze SG --json
//
// Flags:
//   --app=<abbrev>        one of the Table 2 applications (WC, SG, ...)
//   --structure=<name>    one of the synthetic structures (linear, join2...)
//   --rate=<events/s>     per-source event rate          [default 100000]
//   --parallelism=<n>     degree for all operators       [default 8]
//                         a comma list (e.g. 2,8,32) sweeps the degrees
//   --jobs=<n>            sweep worker threads (0 = all cores) [default 1]
//   --progress[=mode]     live sweep monitoring: plain | rich | off | auto
//                         (bare --progress = auto: rich on a TTY, plain
//                         otherwise); emits PDSP-M### watchdog findings
//   --progress-file=<p>   append monitor snapshots to <p> (JSONL)
//   --profile[=HZ]        sample real CPU per operator while simulating
//                         (sampling profiler, default 97 Hz; results in
//                         profile.json + the ledger record; virtual-time
//                         outputs stay bit-identical)
//   --artifacts=<dir>     write per-run artifact bundles under <dir>
//                         (sweeps: <dir>/<cell-label>/)
//   --cluster=<name>      m510 | c6525 | c6320 | mixed   [default m510]
//   --nodes=<n>           cluster size                   [default 10]
//   --duration=<s>        generation horizon             [default 5]
//   --seed=<n>            simulation seed                [default 42]
//   --placement=<name>    round_robin|least_loaded|locality|random
//   --save=<id>           persist plan + metrics into --store
//   --load=<id>           re-execute a stored plan instead of --app/--structure
//   --store=<dir>         run store directory            [default ./runs]
//   --allow-invalid       simulate even when static analysis finds errors
//   --list                print available apps and structures
//
// The `analyze` subcommand runs the pdsp::analysis lint passes over
// registered benchmark plans without simulating them:
//   pdspbench analyze <abbrev|structure|all> [--json] [--strict]
//                     [--cluster=NAME] [--nodes=N] [--parallelism=N]
//                     [--rate=N] [--list-passes]
// Exit status: 0 when no error-severity diagnostics were found (with
// --strict: no warnings either), 1 otherwise — CI runs `analyze all`.
//
// The `diagnose` subcommand simulates a plan, then runs the runtime
// bottleneck diagnosis (pdsp::obs::DiagnoseRun): latency breakdown,
// weighted critical path and PDSP-R### findings with fix hints:
//   pdspbench diagnose <abbrev|structure|all> [--parallelism=N] [--rate=N]
//                      [--cluster=NAME] [--nodes=N] [--duration=S]
//                      [--seed=N] [--json] [--explain]
// Exit status: 0 when no error-severity runtime diagnostics (saturation)
// were found, 1 otherwise.
//
// Provenance / regression subcommands over the run ledger
// (results/ledger.jsonl by default; see src/obs/ledger.h):
//   pdspbench history [<label>|all] [--ledger=PATH] [--app=NAME]
//                     [--limit=N] [--json] [--format=table|csv]
//   pdspbench report <ledger|dir|record.json> [--out=PATH] [--against=PATH]
//                     [--app=NAME] [--limit=N] — self-contained HTML report
//   pdspbench compare <baseline> <candidate> [--ledger=PATH]
//                     [--threshold=F] [--sigmas=F] [--json]
//     Record specs: a label (latest run), label~N (N-back), a run id or a
//     unique >=4-char run-id prefix. Exit 1 when any metric regressed.
//   pdspbench baseline write (<abbrev>|<structure>|all) [--dir=DIR] ...
//   pdspbench baseline check (<abbrev>|<structure>|all) [--dir=DIR]
//                     [--threshold=F] [--json]
//     write: measures the target(s) and stores the RunRecord under
//     bench/baselines/<label>.json (also appended to the ledger).
//     check: re-measures with the baseline's recorded protocol (same seed,
//     repeats, rate, parallelism, cluster) and compares; exit 1 on
//     regression beyond threshold — tools/bench_gate.sh's core.
// The plain run mode accepts --ledger=PATH to append its own RunRecord.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/properties.h"
#include "src/apps/apps.h"
#include "src/common/file_util.h"
#include "src/common/string_util.h"
#include "src/exec/sweep.h"
#include "src/harness/harness.h"
#include "src/harness/synthetic_suite.h"
#include "src/obs/compare.h"
#include "src/obs/diagnose.h"
#include "src/obs/host_profile.h"
#include "src/obs/ledger.h"
#include "src/obs/artifacts.h"
#include "src/obs/mem.h"
#include "src/obs/monitor.h"
#include "src/obs/prof.h"
#include "src/obs/report.h"
#include "src/sim/analytic.h"
#include "src/sim/simulation.h"
#include "src/store/run_store.h"
#include "src/workload/enumerator.h"

namespace pdsp {

namespace {

struct Args {
  std::string app;
  std::string structure;
  double rate = 100000.0;
  int parallelism = 8;
  /// All degrees from --parallelism; more than one switches to sweep mode.
  std::vector<int> degrees = {8};
  /// Sweep worker threads (--jobs; 0 = one per hardware thread).
  int jobs = 1;
  std::string cluster = "m510";
  int nodes = 10;
  double duration = 5.0;
  uint64_t seed = 42;
  std::string placement = "least_loaded";
  std::string save;
  std::string load;
  std::string store_dir = "runs";
  std::string ledger;  ///< when set, append this run's RunRecord here
  /// --profile[=HZ]: sampling CPU profiler (bare flag keeps the default
  /// cadence). Profiling never perturbs virtual-time results.
  bool profile_set = false;
  double profile_hz = 97.0;
  /// --mem-profile[=KiB]: sampling allocation profiler (bare flag keeps the
  /// default 512 KiB sampling interval). Like --profile, it only observes
  /// host-side state, so virtual-time results stay bit-identical.
  bool mem_profile_set = false;
  double mem_interval_kib = 512.0;
  /// --artifacts=DIR: write per-run artifact bundles (metrics.json,
  /// profile.json, ...) under DIR (sweeps: DIR/<cell-label>/).
  std::string artifacts;
  /// --progress[=plain|rich|off|auto]: live sweep monitoring. Empty means
  /// the flag was not given at all (monitor fully off).
  std::string progress;
  bool progress_set = false;
  /// --progress-file=PATH: append every monitor snapshot here (JSONL).
  std::string progress_file;
  bool list = false;
  bool allow_invalid = false;
};

bool ParseArg(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pdspbench (--app=<abbrev> | --structure=<name>) "
               "[--rate=N] [--parallelism=N[,N...]]\n"
               "                 [--jobs=N] "
               "[--cluster=m510|c6525|c6320|mixed] "
               "[--nodes=N] [--duration=S] [--seed=N]\n"
               "                 [--placement=NAME] [--allow-invalid] | "
               "--list\n"
               "       pdspbench analyze (<abbrev>|<structure>|all) "
               "[--json] [--strict] | analyze --list-passes\n"
               "       pdspbench diagnose (<abbrev>|<structure>|all) "
               "[--parallelism=N] [--json] [--explain]\n"
               "       pdspbench history [<label>|all] [--ledger=PATH] "
               "[--app=NAME] [--limit=N] [--json]\n"
               "                 [--format=table|csv]\n"
               "       pdspbench report <ledger|dir|record.json> "
               "[--out=PATH] [--against=PATH] [--app=NAME]\n"
               "                 [--limit=N] [--title=S] [--threshold=F] "
               "[--sigmas=F]\n"
               "       pdspbench compare <runA> <runB> [--ledger=PATH] "
               "[--threshold=F] [--sigmas=F] [--json]\n"
               "       pdspbench baseline (write|check) "
               "(<abbrev>|<structure>|all) [--dir=PATH] [--threshold=F]\n"
               "  (plain runs accept --ledger=PATH to append a provenance "
               "record; sweeps accept\n"
               "   --progress[=plain|rich|off] and --progress-file=PATH for "
               "live monitoring;\n"
               "   both accept --profile[=HZ] for CPU sampling, "
               "--mem-profile[=KiB] for allocation\n"
               "   sampling and --artifacts=DIR for bundles)\n");
  return 2;
}

void PrintCatalog() {
  std::printf("applications (--app):\n");
  for (const AppInfo& info : AllApps()) {
    std::printf("  %-5s %-22s %s\n", info.abbrev, info.name,
                info.description);
  }
  std::printf("\nsynthetic structures (--structure):\n");
  for (SyntheticStructure s : AllSyntheticStructures()) {
    std::printf("  %s\n", SyntheticStructureToString(s));
  }
}

Result<Cluster> MakeCluster(const std::string& name, int nodes) {
  if (name == "m510") return Cluster::M510(nodes);
  if (name == "c6525") return Cluster::C6525(nodes);
  if (name == "c6320") return Cluster::C6320(nodes);
  if (name == "mixed") return Cluster::Mixed(nodes);
  return Status::InvalidArgument("unknown cluster '" + name + "'");
}

Result<PlacementKind> MakePlacement(const std::string& name) {
  if (name == "round_robin") return PlacementKind::kRoundRobin;
  if (name == "least_loaded") return PlacementKind::kLeastLoaded;
  if (name == "locality") return PlacementKind::kLocality;
  if (name == "random") return PlacementKind::kRandom;
  return Status::InvalidArgument("unknown placement '" + name + "'");
}

// --- analyze subcommand --------------------------------------------------

struct AnalyzeTarget {
  std::string name;   // abbrev or structure name
  std::string title;  // human description
  Result<LogicalPlan> plan = Status::Internal("not built");
};

Result<LogicalPlan> BuildAppPlan(AppId id, double rate, int parallelism) {
  AppOptions opt;
  opt.event_rate = rate;
  opt.parallelism = parallelism;
  return MakeApp(id, opt);
}

Result<LogicalPlan> BuildStructurePlan(SyntheticStructure s, double rate,
                                       int parallelism) {
  CanonicalOptions opt;
  opt.event_rate = rate;
  opt.parallelism = parallelism;
  return MakeCanonicalSynthetic(s, opt);
}

int AnalyzeUsage() {
  std::fprintf(stderr,
               "usage: pdspbench analyze (<app-abbrev>|<structure>|all) "
               "[--json] [--strict] [--dataflow]\n"
               "                 [--cluster=m510|c6525|c6320|mixed] "
               "[--nodes=N] [--parallelism=N]\n"
               "                 [--rate=N] | analyze --list-passes\n"
               "  --dataflow  print the derived property table "
               "(partitioning, rate intervals, determinism)\n");
  return 2;
}

int AnalyzeMain(int argc, char** argv) {
  std::string target;
  std::string cluster_name = "m510";
  int nodes = 10;
  int parallelism = 1;
  double rate = 100000.0;
  bool json = false;
  bool strict = false;
  bool list_passes = false;
  bool dataflow = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--list-passes") == 0) {
      list_passes = true;
    } else if (std::strcmp(argv[i], "--dataflow") == 0) {
      dataflow = true;
    } else if (ParseArg(argv[i], "cluster", &cluster_name)) {
    } else if (ParseArg(argv[i], "nodes", &value)) {
      nodes = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "parallelism", &value)) {
      parallelism = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "rate", &value)) {
      rate = std::atof(value.c_str());
    } else if (argv[i][0] != '-' && target.empty()) {
      target = argv[i];
    } else {
      std::fprintf(stderr, "unknown analyze argument: %s\n", argv[i]);
      return AnalyzeUsage();
    }
  }
  if (list_passes) {
    std::printf("registered analysis passes:\n");
    const analysis::PassRegistry& passes = analysis::DefaultPasses();
    for (const std::string& name : passes.Names()) {
      const analysis::AnalysisPass* pass = passes.Find(name);
      std::printf("  %-24s %s%s\n", name.c_str(), pass->description(),
                  pass->needs_cluster() ? " (needs cluster)" : "");
    }
    return 0;
  }
  if (target.empty() || nodes < 1 || parallelism < 1 || rate <= 0) {
    return AnalyzeUsage();
  }
  auto cluster = MakeCluster(cluster_name, nodes);
  if (!cluster.ok()) {
    std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
    return 2;
  }

  std::vector<AnalyzeTarget> targets;
  if (target == "all") {
    for (const AppInfo& info : AllApps()) {
      targets.push_back({info.abbrev, info.name,
                         BuildAppPlan(info.id, rate, parallelism)});
    }
    for (SyntheticStructure s : AllSyntheticStructures()) {
      targets.push_back({SyntheticStructureToString(s),
                         std::string("synthetic ") +
                             SyntheticStructureToString(s),
                         BuildStructurePlan(s, rate, parallelism)});
    }
  } else if (auto id = FindAppByAbbrev(target); id.ok()) {
    targets.push_back({target, GetAppInfo(*id).name,
                       BuildAppPlan(*id, rate, parallelism)});
  } else {
    bool found = false;
    for (SyntheticStructure s : AllSyntheticStructures()) {
      if (target == SyntheticStructureToString(s)) {
        targets.push_back({target,
                           std::string("synthetic ") + target,
                           BuildStructurePlan(s, rate, parallelism)});
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "unknown analyze target '%s' (use --list for the "
                   "catalog)\n",
                   target.c_str());
      return 2;
    }
  }

  analysis::AnalyzeOptions options;
  options.cluster = &*cluster;
  size_t total_errors = 0;
  size_t total_warnings = 0;
  Json all = Json::Array();
  for (AnalyzeTarget& t : targets) {
    if (!t.plan.ok()) {
      // The plan factory itself refused (Build()'s error gate or a latched
      // builder error) — report it as a failed target.
      ++total_errors;
      if (json) {
        Json j = Json::Object();
        j.Set("plan", Json::Str(t.name));
        j.Set("build_error", Json::Str(t.plan.status().ToString()));
        all.Append(std::move(j));
      } else {
        std::printf("== %s (%s) ==\nbuild failed: %s\n\n", t.name.c_str(),
                    t.title.c_str(), t.plan.status().ToString().c_str());
      }
      continue;
    }
    const analysis::AnalysisReport report =
        analysis::AnalyzePlan(*t.plan, options);
    const size_t errors = report.NumErrors();
    total_errors += errors;
    total_warnings +=
        report.CountAtLeast(analysis::Severity::kWarning) - errors;
    if (json) {
      Json j = Json::Object();
      j.Set("plan", Json::Str(t.name));
      j.Set("report", report.ToJson());
      if (dataflow) {
        const analysis::AnalysisContext ctx =
            analysis::AnalysisContext::Make(*t.plan, &*cluster);
        j.Set("properties", ctx.props->ToJson(*t.plan));
      }
      all.Append(std::move(j));
    } else {
      std::printf("== %s (%s) ==\n%s\n", t.name.c_str(), t.title.c_str(),
                  report.ToString().c_str());
      if (dataflow) {
        const analysis::AnalysisContext ctx =
            analysis::AnalysisContext::Make(*t.plan, &*cluster);
        std::printf("derived properties:\n%s\n",
                    ctx.props->ToString(*t.plan).c_str());
      }
    }
  }
  if (json) {
    Json out = Json::Object();
    out.Set("plans", std::move(all));
    out.Set("errors", Json::Int(static_cast<int64_t>(total_errors)));
    out.Set("warnings", Json::Int(static_cast<int64_t>(total_warnings)));
    std::printf("%s\n", out.Dump(2).c_str());
  } else {
    std::printf("analyzed %zu plan%s: %zu error%s, %zu warning%s\n",
                targets.size(), targets.size() == 1 ? "" : "s",
                total_errors, total_errors == 1 ? "" : "s", total_warnings,
                total_warnings == 1 ? "" : "s");
  }
  if (total_errors > 0) return 1;
  if (strict && total_warnings > 0) return 1;
  return 0;
}

// --- diagnose subcommand -------------------------------------------------

int DiagnoseUsage() {
  std::fprintf(stderr,
               "usage: pdspbench diagnose (<app-abbrev>|<structure>|all) "
               "[--parallelism=N] [--rate=N]\n"
               "                 [--cluster=m510|c6525|c6320|mixed] "
               "[--nodes=N] [--duration=S] [--seed=N]\n"
               "                 [--json] [--explain]\n");
  return 2;
}

int DiagnoseMain(int argc, char** argv) {
  std::string target;
  std::string cluster_name = "m510";
  int nodes = 10;
  int parallelism = 8;
  double rate = 100000.0;
  double duration = 3.0;
  uint64_t seed = 42;
  bool json = false;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (ParseArg(argv[i], "cluster", &cluster_name)) {
    } else if (ParseArg(argv[i], "nodes", &value)) {
      nodes = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "parallelism", &value)) {
      parallelism = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "rate", &value)) {
      rate = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "duration", &value)) {
      duration = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "seed", &value)) {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (argv[i][0] != '-' && target.empty()) {
      target = argv[i];
    } else {
      std::fprintf(stderr, "unknown diagnose argument: %s\n", argv[i]);
      return DiagnoseUsage();
    }
  }
  if (target.empty() || nodes < 1 || parallelism < 1 || rate <= 0 ||
      duration <= 0.5) {
    return DiagnoseUsage();
  }
  auto cluster = MakeCluster(cluster_name, nodes);
  if (!cluster.ok()) {
    std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
    return 2;
  }

  std::vector<AnalyzeTarget> targets;
  if (target == "all") {
    for (const AppInfo& info : AllApps()) {
      targets.push_back({info.abbrev, info.name,
                         BuildAppPlan(info.id, rate, parallelism)});
    }
  } else if (auto id = FindAppByAbbrev(target); id.ok()) {
    targets.push_back({target, GetAppInfo(*id).name,
                       BuildAppPlan(*id, rate, parallelism)});
  } else {
    bool found = false;
    for (SyntheticStructure s : AllSyntheticStructures()) {
      if (target == SyntheticStructureToString(s)) {
        targets.push_back({target, std::string("synthetic ") + target,
                           BuildStructurePlan(s, rate, parallelism)});
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "unknown diagnose target '%s' (use --list for the "
                   "catalog)\n",
                   target.c_str());
      return 2;
    }
  }

  size_t total_errors = 0;
  size_t total_warnings = 0;
  Json all = Json::Array();
  for (AnalyzeTarget& t : targets) {
    if (!t.plan.ok()) {
      ++total_errors;
      if (json) {
        Json j = Json::Object();
        j.Set("plan", Json::Str(t.name));
        j.Set("error", Json::Str(t.plan.status().ToString()));
        all.Append(std::move(j));
      } else {
        std::printf("== %s (%s) ==\nbuild failed: %s\n\n", t.name.c_str(),
                    t.title.c_str(), t.plan.status().ToString().c_str());
      }
      continue;
    }
    ExecutionOptions exec;
    exec.sim.duration_s = duration;
    exec.sim.warmup_s = duration * 0.2;
    exec.sim.seed = seed;
    exec.sim.attribute_latency = true;
    auto run = ExecutePlan(*t.plan, *cluster, exec);
    if (!run.ok()) {
      ++total_errors;
      if (json) {
        Json j = Json::Object();
        j.Set("plan", Json::Str(t.name));
        j.Set("error", Json::Str(run.status().ToString()));
        all.Append(std::move(j));
      } else {
        std::printf("== %s (%s) ==\nrun failed: %s\n\n", t.name.c_str(),
                    t.title.c_str(), run.status().ToString().c_str());
      }
      continue;
    }
    auto diag = obs::DiagnoseRun(*t.plan, *cluster, *run);
    if (!diag.ok()) {
      ++total_errors;
      if (json) {
        Json j = Json::Object();
        j.Set("plan", Json::Str(t.name));
        j.Set("error", Json::Str(diag.status().ToString()));
        all.Append(std::move(j));
      } else {
        std::printf("== %s (%s) ==\ndiagnosis failed: %s\n\n",
                    t.name.c_str(), t.title.c_str(),
                    diag.status().ToString().c_str());
      }
      continue;
    }
    const size_t errors = diag->report.NumErrors();
    total_errors += errors;
    total_warnings +=
        diag->report.CountAtLeast(analysis::Severity::kWarning) - errors;
    if (json) {
      Json j = Json::Object();
      j.Set("plan", Json::Str(t.name));
      j.Set("median_latency_s", Json::Number(run->median_latency_s));
      j.Set("throughput_tps", Json::Number(run->throughput_tps));
      j.Set("diagnosis", diag->ToJson());
      all.Append(std::move(j));
    } else {
      std::printf("== %s (%s) ==\nmeasured: %s\n%s\n", t.name.c_str(),
                  t.title.c_str(), run->Summary().c_str(),
                  explain ? diag->Explain(*run).c_str()
                          : diag->ToString().c_str());
    }
  }
  if (json) {
    Json out = Json::Object();
    out.Set("plans", std::move(all));
    out.Set("errors", Json::Int(static_cast<int64_t>(total_errors)));
    out.Set("warnings", Json::Int(static_cast<int64_t>(total_warnings)));
    std::printf("%s\n", out.Dump(2).c_str());
  } else {
    std::printf("diagnosed %zu plan%s: %zu error%s, %zu warning%s\n",
                targets.size(), targets.size() == 1 ? "" : "s", total_errors,
                total_errors == 1 ? "" : "s", total_warnings,
                total_warnings == 1 ? "" : "s");
  }
  return total_errors > 0 ? 1 : 0;
}

// --- history / compare / baseline subcommands ----------------------------

constexpr char kDefaultLedgerPath[] = "results/ledger.jsonl";
constexpr char kDefaultBaselineDir[] = "bench/baselines";

/// RFC-4180 CSV field: quoted (with doubled inner quotes) only when the
/// value contains a delimiter, quote or newline, so plain numeric fields
/// stay byte-identical to their printf form.
std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) return value;
  std::string out = "\"";
  for (const char c : value) {
    out += c;
    if (c == '"') out += '"';  // RFC 4180: escape by doubling
  }
  out += '"';
  return out;
}

int HistoryUsage() {
  std::fprintf(stderr,
               "usage: pdspbench history [<label>|all] [--ledger=PATH] "
               "[--app=NAME] [--limit=N]\n"
               "                 [--json] [--format=table|csv]\n"
               "  --app filters by the label's app part (label up to the "
               "first '/'),\n"
               "  so 'history --app=WC' matches WC, WC/p4, WC/p8, ...\n"
               "  --format=csv streams the selection as RFC-4180 CSV (one "
               "header row) for\n"
               "  spreadsheets and scripts; --json keeps the full records.\n");
  return 2;
}

int HistoryMain(int argc, char** argv) {
  std::string target;
  std::string ledger_path = kDefaultLedgerPath;
  std::string app_filter;
  std::string format = "table";
  size_t limit = 20;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (ParseArg(argv[i], "ledger", &ledger_path)) {
    } else if (ParseArg(argv[i], "app", &app_filter)) {
    } else if (ParseArg(argv[i], "format", &format)) {
    } else if (ParseArg(argv[i], "limit", &value)) {
      limit = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (argv[i][0] != '-' && target.empty()) {
      target = argv[i];
    } else {
      std::fprintf(stderr, "unknown history argument: %s\n", argv[i]);
      return HistoryUsage();
    }
  }
  if (target.empty()) target = "all";  // --app alone scopes large ledgers
  if (limit < 1 || (format != "table" && format != "csv")) {
    return HistoryUsage();
  }
  auto records = obs::RunLedger(ledger_path).Load();
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 2;
  }
  std::vector<const obs::RunRecord*> selected;
  for (const obs::RunRecord& r : *records) {
    if (target != "all" && r.label != target) continue;
    if (!app_filter.empty() && obs::AppOfLabel(r.label) != app_filter) {
      continue;
    }
    selected.push_back(&r);
  }
  if (selected.size() > limit) {
    selected.erase(selected.begin(),
                   selected.end() - static_cast<ptrdiff_t>(limit));
  }
  if (json) {
    Json arr = Json::Array();
    for (const obs::RunRecord* r : selected) arr.Append(r->ToJson());
    Json out = Json::Object();
    out.Set("ledger", Json::Str(ledger_path));
    out.Set("records", std::move(arr));
    std::printf("%s\n", out.Dump(2).c_str());
    return 0;
  }
  if (format == "csv") {
    // Header always prints so a filtered-to-empty selection still yields a
    // valid CSV document.
    std::printf(
        "run_id,timestamp_utc,label,plan_hash,parallelism,event_rate,"
        "cluster,nodes,seed,repeats,duration_s,throughput_tps,"
        "median_latency_s,p95_latency_s,p99_latency_s,late_drops,"
        "backpressure_skipped,diagnosis_codes,determinism,artifact_dir,"
        "profile_samples,profile_cpu_s,profile_top_operator,"
        "peak_heap_bytes,bytes_per_tuple,alloc_samples\n");
    for (const obs::RunRecord* r : selected) {
      const std::vector<std::string> fields = {
          r->run_id,
          r->timestamp_utc,
          r->label,
          r->plan_hash,
          StrFormat("%d", r->parallelism),
          StrFormat("%.17g", r->event_rate),
          r->cluster,
          StrFormat("%d", r->nodes),
          r->seed,
          StrFormat("%d", r->repeats),
          StrFormat("%.17g", r->duration_s),
          StrFormat("%.17g", r->throughput_tps),
          StrFormat("%.17g", r->median_latency_s),
          StrFormat("%.17g", r->p95_latency_s),
          StrFormat("%.17g", r->p99_latency_s),
          StrFormat("%lld", static_cast<long long>(r->late_drops)),
          StrFormat("%lld",
                    static_cast<long long>(r->backpressure_skipped)),
          Join(r->diagnosis_codes, ";"),
          r->determinism,
          r->artifact_dir,
          StrFormat("%lld", static_cast<long long>(r->profile_samples)),
          StrFormat("%.17g", r->profile_cpu_s),
          r->profile_top_operator,
          // Memory columns stay empty for records predating --mem-profile
          // (and for unprofiled runs) so old ledgers load cleanly.
          r->mem_samples > 0
              ? StrFormat("%lld",
                          static_cast<long long>(r->mem_peak_heap_bytes))
              : "",
          r->mem_samples > 0 ? StrFormat("%.17g", r->mem_bytes_per_tuple)
                             : "",
          r->mem_samples > 0
              ? StrFormat("%lld", static_cast<long long>(r->mem_samples))
              : "",
      };
      std::vector<std::string> quoted;
      quoted.reserve(fields.size());
      for (const std::string& f : fields) quoted.push_back(CsvField(f));
      std::printf("%s\n", Join(quoted, ",").c_str());
    }
    return 0;
  }
  if (selected.empty()) {
    std::printf("no ledger records for '%s' in %s\n", target.c_str(),
                ledger_path.c_str());
    return 0;
  }
  std::printf("%-34s %-20s %-14s %4s %9s %10s %10s %12s  %s\n", "run_id",
              "timestamp", "label", "p", "rate", "p50(ms)", "p95(ms)",
              "tput(t/s)", "codes");
  for (const obs::RunRecord* r : selected) {
    std::printf("%-34s %-20s %-14s %4d %9.0f %10.2f %10.2f %12.0f  %s\n",
                r->run_id.c_str(), r->timestamp_utc.c_str(),
                r->label.c_str(), r->parallelism, r->event_rate,
                r->median_latency_s * 1e3, r->p95_latency_s * 1e3,
                r->throughput_tps, Join(r->diagnosis_codes, ",").c_str());
  }
  return 0;
}

int CompareUsage() {
  std::fprintf(stderr,
               "usage: pdspbench compare <baseline> <candidate> "
               "[--ledger=PATH] [--threshold=F]\n"
               "                 [--sigmas=F] [--json]\n"
               "  record specs: label | label~N | run id | unique >=4-char "
               "run-id prefix\n");
  return 2;
}

int CompareMain(int argc, char** argv) {
  std::vector<std::string> specs;
  std::string ledger_path = kDefaultLedgerPath;
  obs::CompareOptions options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (ParseArg(argv[i], "ledger", &ledger_path)) {
    } else if (ParseArg(argv[i], "threshold", &value)) {
      options.threshold = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "sigmas", &value)) {
      options.noise_sigmas = std::atof(value.c_str());
    } else if (argv[i][0] != '-') {
      specs.push_back(argv[i]);
    } else {
      std::fprintf(stderr, "unknown compare argument: %s\n", argv[i]);
      return CompareUsage();
    }
  }
  if (specs.size() != 2 || options.threshold <= 0) return CompareUsage();
  auto records = obs::RunLedger(ledger_path).Load();
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 2;
  }
  auto baseline = obs::ResolveRecord(*records, specs[0]);
  auto candidate = obs::ResolveRecord(*records, specs[1]);
  if (!baseline.ok() || !candidate.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!baseline.ok() ? baseline.status() : candidate.status())
                     .ToString()
                     .c_str());
    return 2;
  }
  const obs::ComparisonReport report =
      obs::CompareRecords(*baseline, *candidate, options);
  if (json) {
    std::printf("%s\n", report.ToJson().Dump(2).c_str());
  } else {
    std::printf("%s", report.ToString().c_str());
  }
  return report.HasRegressions() ? 1 : 0;
}

int BaselineUsage() {
  std::fprintf(stderr,
               "usage: pdspbench baseline write (<abbrev>|<structure>|all) "
               "[--dir=DIR] [--ledger=PATH]\n"
               "                 [--parallelism=N] [--rate=N] "
               "[--cluster=NAME] [--nodes=N] [--repeats=N]\n"
               "                 [--duration=S] [--seed=N]\n"
               "       pdspbench baseline check (<abbrev>|<structure>|all) "
               "[--dir=DIR] [--ledger=PATH]\n"
               "                 [--threshold=F] [--sigmas=F] [--json]\n");
  return 2;
}

Result<LogicalPlan> BuildPlanByLabel(const std::string& label, double rate,
                                     int parallelism) {
  if (auto id = FindAppByAbbrev(label); id.ok()) {
    return BuildAppPlan(*id, rate, parallelism);
  }
  for (SyntheticStructure s : AllSyntheticStructures()) {
    if (label == SyntheticStructureToString(s)) {
      return BuildStructurePlan(s, rate, parallelism);
    }
  }
  return Status::NotFound("unknown app/structure '" + label + "'");
}

std::string BaselineFilePath(const std::string& dir,
                             const std::string& label) {
  std::string name = label;
  std::replace(name.begin(), name.end(), '/', '_');
  return dir + "/" + name + ".json";
}

/// Measures `label` under `protocol` and returns the cell's ledger record.
Result<obs::RunRecord> MeasureForLedger(const std::string& label,
                                        double rate, int parallelism,
                                        const Cluster& cluster,
                                        RunProtocol protocol) {
  Result<LogicalPlan> plan = [&] {
    obs::HostProfiler::Phase phase(&obs::HostProfiler::Global(),
                                   "build-plan");
    return BuildPlanByLabel(label, rate, parallelism);
  }();
  PDSP_RETURN_NOT_OK(plan.status());
  protocol.label = label;
  PDSP_ASSIGN_OR_RETURN(CellResult cell,
                        MeasureCell(*plan, cluster, protocol));
  return cell.ledger_record;
}

int BaselineMain(int argc, char** argv) {
  std::string verb;
  std::string target;
  std::string dir = kDefaultBaselineDir;
  std::string ledger_path = kDefaultLedgerPath;
  std::string cluster_name = "m510";
  int nodes = 10;
  int parallelism = 8;
  double rate = 100000.0;
  int repeats = 3;
  double duration = 2.0;
  uint64_t seed = 2024;
  obs::CompareOptions options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (ParseArg(argv[i], "dir", &dir) ||
               ParseArg(argv[i], "ledger", &ledger_path) ||
               ParseArg(argv[i], "cluster", &cluster_name)) {
    } else if (ParseArg(argv[i], "nodes", &value)) {
      nodes = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "parallelism", &value)) {
      parallelism = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "rate", &value)) {
      rate = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "repeats", &value)) {
      repeats = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "duration", &value)) {
      duration = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "seed", &value)) {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "threshold", &value)) {
      options.threshold = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "sigmas", &value)) {
      options.noise_sigmas = std::atof(value.c_str());
    } else if (argv[i][0] != '-' && verb.empty()) {
      verb = argv[i];
    } else if (argv[i][0] != '-' && target.empty()) {
      target = argv[i];
    } else {
      std::fprintf(stderr, "unknown baseline argument: %s\n", argv[i]);
      return BaselineUsage();
    }
  }
  if ((verb != "write" && verb != "check") || target.empty() ||
      parallelism < 1 || nodes < 1 || rate <= 0 || repeats < 1 ||
      duration <= 0.5 || options.threshold <= 0) {
    return BaselineUsage();
  }

  std::vector<std::string> labels;
  if (target == "all") {
    if (verb == "write") {
      for (const AppInfo& info : AllApps()) labels.push_back(info.abbrev);
      for (SyntheticStructure s : AllSyntheticStructures()) {
        labels.push_back(SyntheticStructureToString(s));
      }
    } else {
      // check all = every stored baseline file.
      std::error_code ec;
      for (const auto& entry :
           std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".json") {
          labels.push_back(entry.path().stem().string());
        }
      }
      std::sort(labels.begin(), labels.end());
      if (labels.empty()) {
        std::fprintf(stderr, "no baselines under %s\n", dir.c_str());
        return 2;
      }
    }
  } else {
    labels.push_back(target);
  }

  int failures = 0;
  size_t regressed_metrics = 0;
  Json all = Json::Array();
  for (const std::string& label : labels) {
    if (verb == "write") {
      auto cluster = MakeCluster(cluster_name, nodes);
      if (!cluster.ok()) {
        std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
        return 2;
      }
      RunProtocol protocol;
      protocol.repeats = repeats;
      protocol.duration_s = duration;
      protocol.warmup_s = duration * 0.25;
      protocol.seed = seed;
      protocol.ledger.enabled = true;
      protocol.ledger.path = ledger_path;
      protocol.ledger.cluster_name = cluster_name;
      auto record =
          MeasureForLedger(label, rate, parallelism, *cluster, protocol);
      if (!record.ok()) {
        std::fprintf(stderr, "baseline write %s: %s\n", label.c_str(),
                     record.status().ToString().c_str());
        ++failures;
        continue;
      }
      const std::string path = BaselineFilePath(dir, label);
      Status st = WriteTextFileAtomic(path, record->ToJson().Dump(2) + "\n");
      if (!st.ok()) {
        std::fprintf(stderr, "baseline write %s: %s\n", label.c_str(),
                     st.ToString().c_str());
        ++failures;
        continue;
      }
      std::printf("baseline %s: p50 %.2f ms, tput %.0f t/s -> %s\n",
                  label.c_str(), record->median_latency_s * 1e3,
                  record->throughput_tps, path.c_str());
      continue;
    }

    // check
    const std::string path = BaselineFilePath(dir, label);
    auto text = ReadTextFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "baseline check %s: %s\n", label.c_str(),
                   text.status().ToString().c_str());
      ++failures;
      continue;
    }
    auto parsed = Json::Parse(*text);
    Result<obs::RunRecord> base = Status::Internal("unparsed");
    if (parsed.ok()) base = obs::RunRecord::FromJson(*parsed);
    if (!parsed.ok() || !base.ok()) {
      std::fprintf(stderr, "baseline check %s: %s\n", label.c_str(),
                   (!parsed.ok() ? parsed.status() : base.status())
                       .ToString()
                       .c_str());
      ++failures;
      continue;
    }
    // Re-measure with the baseline's recorded protocol so the comparison is
    // bit-for-bit re-executable: same seed, repeats, rate, parallelism and
    // cluster preset.
    auto cluster = MakeCluster(base->cluster, base->nodes);
    if (!cluster.ok()) {
      std::fprintf(stderr, "baseline check %s: %s\n", label.c_str(),
                   cluster.status().ToString().c_str());
      ++failures;
      continue;
    }
    RunProtocol protocol;
    protocol.repeats = base->repeats;
    protocol.duration_s = base->duration_s;
    protocol.warmup_s = base->warmup_s;
    protocol.seed = std::strtoull(base->seed.c_str(), nullptr, 10);
    protocol.ledger.enabled = true;
    protocol.ledger.path = ledger_path;
    protocol.ledger.cluster_name = base->cluster;
    auto record = MeasureForLedger(base->label, base->event_rate,
                                   base->parallelism, *cluster, protocol);
    if (!record.ok()) {
      std::fprintf(stderr, "baseline check %s: %s\n", label.c_str(),
                   record.status().ToString().c_str());
      ++failures;
      continue;
    }
    const obs::ComparisonReport report =
        obs::CompareRecords(*base, *record, options);
    regressed_metrics += report.CountVerdict(obs::MetricVerdict::kRegressed);
    if (json) {
      all.Append(report.ToJson());
    } else {
      std::printf("%s", report.ToString().c_str());
    }
  }
  if (verb == "check" && json) {
    Json out = Json::Object();
    out.Set("baselines", std::move(all));
    out.Set("regressed", Json::Int(static_cast<int64_t>(regressed_metrics)));
    out.Set("failures", Json::Int(failures));
    std::printf("%s\n", out.Dump(2).c_str());
  }
  if (failures > 0) return 2;
  if (verb == "check" && regressed_metrics > 0) return 1;
  return 0;
}

// --- report subcommand ---------------------------------------------------

int ReportUsage() {
  std::fprintf(stderr,
               "usage: pdspbench report <ledger.jsonl|artifact-dir|"
               "record.json> [--out=PATH]\n"
               "                 [--against=PATH] [--app=NAME] [--limit=N] "
               "[--title=S]\n"
               "                 [--threshold=F] [--sigmas=F]\n"
               "  renders one self-contained HTML file (inline SVG, no JS) "
               "with throughput,\n"
               "  latency-percentile and latency-breakdown charts per app, "
               "a sweep heatmap,\n"
               "  critical paths from diagnosis.json bundles, and — with "
               "--against — a\n"
               "  noise-aware comparison against a baseline ledger.\n");
  return 2;
}

int ReportMain(int argc, char** argv) {
  std::string input;
  std::string out_path = "report.html";
  obs::ReportOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseArg(argv[i], "out", &out_path) ||
        ParseArg(argv[i], "against", &options.against_path) ||
        ParseArg(argv[i], "app", &options.app_filter) ||
        ParseArg(argv[i], "title", &options.title)) {
    } else if (ParseArg(argv[i], "limit", &value)) {
      options.limit = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseArg(argv[i], "threshold", &value)) {
      options.compare.threshold = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "sigmas", &value)) {
      options.compare.noise_sigmas = std::atof(value.c_str());
    } else if (argv[i][0] != '-' && input.empty()) {
      input = argv[i];
    } else {
      std::fprintf(stderr, "unknown report argument: %s\n", argv[i]);
      return ReportUsage();
    }
  }
  if (input.empty() || options.compare.threshold <= 0) return ReportUsage();
  auto stats = obs::WriteReportFile(input, out_path, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "report: %s\n", stats.status().ToString().c_str());
    return 2;
  }
  std::printf("report: %zu records, %zu apps, %zu charts%s -> %s\n",
              stats->records, stats->apps, stats->charts,
              options.against_path.empty()
                  ? ""
                  : StrFormat(" (%zu labels compared)", stats->compared)
                        .c_str(),
              out_path.c_str());
  return 0;
}

// --- parallelism sweep mode ----------------------------------------------

// `--parallelism=2,8,32` fans one cell per degree across --jobs workers via
// the exec sweep scheduler; per-cell results are bit-identical to --jobs=1.
int RunParallelismSweep(const Args& args, const Cluster& cluster,
                        PlacementKind placement) {
  const std::string selection = !args.app.empty()
                                    ? args.app
                                    : (!args.structure.empty()
                                           ? args.structure
                                           : args.load);
  RunProtocol protocol;
  protocol.repeats = 1;
  protocol.duration_s = args.duration;
  protocol.warmup_s = args.duration * 0.2;
  protocol.seed = args.seed;
  protocol.placement = placement;
  protocol.label = selection;
  protocol.allow_invalid = args.allow_invalid;
  if (!args.ledger.empty()) {
    protocol.ledger.enabled = true;
    protocol.ledger.path = args.ledger;
    protocol.ledger.cluster_name = args.cluster;
  }
  if (args.profile_set) {
    protocol.profile.enabled = true;
    protocol.profile.hz = args.profile_hz;
  }
  if (args.mem_profile_set) {
    protocol.mem.enabled = true;
    protocol.mem.sample_interval_bytes =
        static_cast<int64_t>(args.mem_interval_kib * 1024.0);
  }

  std::vector<exec::SweepCell> cells;
  for (int degree : args.degrees) {
    exec::SweepCell cell;
    if (!args.app.empty()) {
      auto id = FindAppByAbbrev(args.app);
      if (!id.ok()) {
        std::fprintf(stderr, "%s (use --list)\n",
                     id.status().ToString().c_str());
        return 2;
      }
      const AppId app = *id;
      AppOptions opt;
      opt.event_rate = args.rate;
      opt.parallelism = degree;
      cell.make_plan = [app, opt] { return MakeApp(app, opt); };
    } else if (!args.structure.empty()) {
      bool found = false;
      SyntheticStructure structure = SyntheticStructure::kLinear;
      for (SyntheticStructure s : AllSyntheticStructures()) {
        if (args.structure == SyntheticStructureToString(s)) {
          structure = s;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown structure '%s' (use --list)\n",
                     args.structure.c_str());
        return 2;
      }
      CanonicalOptions opt;
      opt.event_rate = args.rate;
      opt.parallelism = degree;
      cell.make_plan = [structure, opt] {
        return MakeCanonicalSynthetic(structure, opt);
      };
    } else {
      const std::string store_dir = args.store_dir;
      const std::string load_id = args.load;
      cell.make_plan = [store_dir, load_id,
                        degree]() -> Result<LogicalPlan> {
        RunStore store(store_dir);
        PDSP_ASSIGN_OR_RETURN(LogicalPlan plan, store.LoadPlan(load_id));
        PDSP_RETURN_NOT_OK(ApplyUniformParallelism(&plan, degree));
        return plan;
      };
    }
    cell.cluster = cluster;
    cell.protocol = protocol;
    cell.label = StrFormat("%s/p%d", selection.c_str(), degree);
    if (!args.artifacts.empty()) {
      cell.protocol.obs.enabled = true;
      cell.protocol.obs.dir = args.artifacts + "/" + cell.label;
    }
    cells.push_back(std::move(cell));
  }

  exec::SweepOptions options;
  options.jobs = args.jobs;
  options.name = StrFormat("sweep/%s", selection.c_str());
  // Ctrl-C drains in-flight cells and still flushes completed-cell ledger
  // records plus the final monitor snapshot; we exit 130 below.
  options.install_sigint = true;
  if (args.progress_set || !args.progress_file.empty()) {
    auto mode = obs::ParseRenderMode(args.progress,
                                     isatty(fileno(stderr)) != 0);
    if (!mode.ok()) {
      std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
      return 2;
    }
    options.monitor.enabled = true;
    options.monitor.render = args.progress_set
                                 ? *mode
                                 : obs::MonitorOptions::RenderMode::kOff;
    options.monitor.jsonl_path = args.progress_file;
  }
  if (!args.ledger.empty()) {
    // One summary record per sweep invocation: parallelism = worker count,
    // host_wall_s = sweep wall clock. bench_gate.sh reads consecutive
    // summary pairs (jobs=1 vs jobs=N) to report the parallel speedup.
    options.summary_ledger.enabled = true;
    options.summary_ledger.path = args.ledger;
    options.summary_ledger.cluster_name = args.cluster;
  }
  const exec::SweepResult sweep = exec::RunSweep(cells, options);

  TableReporter table(
      StrFormat("%s: parallelism sweep (%s x%d, %.0f ev/s)",
                selection.c_str(), args.cluster.c_str(), args.nodes,
                args.rate),
      {"parallelism", "p50(ms)", "p95(ms)", "results/s", "late", "bp"});
  for (size_t i = 0; i < sweep.cells.size(); ++i) {
    const int degree = args.degrees[i];
    const exec::SweepCellOutcome& outcome = sweep.cells[i];
    if (!outcome.result.ok()) {
      std::fprintf(stderr, "p=%d: %s\n", degree,
                   outcome.result.status().ToString().c_str());
      table.AddRow({StrFormat("%d", degree), "n/a", "n/a", "n/a", "n/a",
                    "n/a"});
      continue;
    }
    const CellResult& cell = *outcome.result;
    table.AddRow({StrFormat("%d", degree),
                  LatencyCell(cell.mean_median_latency_s),
                  LatencyCell(cell.p95_latency_s),
                  ThroughputCell(cell.mean_throughput_tps),
                  StrFormat("%lld", static_cast<long long>(cell.late_drops)),
                  StrFormat("%lld",
                            static_cast<long long>(
                                cell.backpressure_skipped))});
  }
  table.Print();
  if (args.profile_set) {
    for (size_t i = 0; i < sweep.cells.size(); ++i) {
      const exec::SweepCellOutcome& outcome = sweep.cells[i];
      if (!outcome.result.ok() || !outcome.result->has_profile) continue;
      const obs::prof::CpuProfile& p = outcome.result->profile;
      const obs::RunRecord& rec = outcome.result->ledger_record;
      std::printf("profile p=%d: %lld samples @ %.0f Hz, %.4fs CPU, "
                  "top operator %s (%.4fs)\n",
                  args.degrees[i], static_cast<long long>(p.samples), p.hz,
                  p.total_cpu_s,
                  rec.profile_top_operator.empty()
                      ? "(none)"
                      : rec.profile_top_operator.c_str(),
                  rec.profile_top_operator_cpu_s);
    }
  }
  if (args.mem_profile_set) {
    for (size_t i = 0; i < sweep.cells.size(); ++i) {
      const exec::SweepCellOutcome& outcome = sweep.cells[i];
      if (!outcome.result.ok() || !outcome.result->has_mem_profile) {
        continue;
      }
      const obs::mem::MemProfile& m = outcome.result->mem_profile;
      const obs::RunRecord& rec = outcome.result->ledger_record;
      std::printf("memory p=%d: %lld samples, %.1f MiB allocated, peak "
                  "heap %.1f MiB, top operator %s (%.1f MiB)\n",
                  args.degrees[i], static_cast<long long>(m.samples),
                  static_cast<double>(m.total_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(m.peak_heap_bytes) / (1024.0 * 1024.0),
                  rec.mem_top_operator.empty()
                      ? "(none)"
                      : rec.mem_top_operator.c_str(),
                  static_cast<double>(rec.mem_top_operator_bytes) /
                      (1024.0 * 1024.0));
    }
  }
  std::printf("sweep: %zu/%zu cells ok, jobs=%d, wall %.2fs\n",
              sweep.NumOk(), sweep.cells.size(), sweep.jobs, sweep.wall_s);
  if (options.monitor.enabled && !sweep.monitor.codes.empty()) {
    std::printf("monitor: %s", Join(sweep.monitor.codes, ", ").c_str());
    if (!sweep.monitor.straggler_cells.empty()) {
      std::printf(" (stragglers: %s)",
                  Join(sweep.monitor.straggler_cells, ", ").c_str());
    }
    std::printf("\n");
  }
  if (sweep.interrupted) {
    std::fprintf(stderr,
                 "sweep: interrupted — %zu/%zu cells completed, partial "
                 "results flushed\n",
                 sweep.NumOk(), sweep.cells.size());
    return 130;
  }
  return sweep.NumOk() == sweep.cells.size() ? 0 : 1;
}

}  // namespace

int Main(int argc, char** argv) {
  // Stored plans may reference application UDO kinds; make them resolvable
  // regardless of how the plan is selected (and so the udo-checks analysis
  // pass sees the full kind registry).
  RegisterAppUdos();
  if (argc > 1 && std::strcmp(argv[1], "analyze") == 0) {
    return AnalyzeMain(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "diagnose") == 0) {
    return DiagnoseMain(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "history") == 0) {
    return HistoryMain(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "compare") == 0) {
    return CompareMain(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "baseline") == 0) {
    return BaselineMain(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "report") == 0) {
    return ReportMain(argc - 1, argv + 1);
  }
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--list") == 0) {
      args.list = true;
    } else if (std::strcmp(argv[i], "--allow-invalid") == 0) {
      args.allow_invalid = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      args.progress_set = true;  // bare flag: auto (rich on TTY, else plain)
    } else if (ParseArg(argv[i], "progress", &args.progress)) {
      args.progress_set = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      args.profile_set = true;  // bare flag keeps the default cadence
    } else if (ParseArg(argv[i], "profile", &value)) {
      args.profile_set = true;
      args.profile_hz = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--mem-profile") == 0) {
      args.mem_profile_set = true;  // bare flag keeps the default interval
    } else if (ParseArg(argv[i], "mem-profile", &value)) {
      args.mem_profile_set = true;
      args.mem_interval_kib = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "artifacts", &args.artifacts)) {
    } else if (ParseArg(argv[i], "progress-file", &args.progress_file)) {
    } else if (ParseArg(argv[i], "app", &args.app) ||
               ParseArg(argv[i], "structure", &args.structure) ||
               ParseArg(argv[i], "cluster", &args.cluster) ||
               ParseArg(argv[i], "placement", &args.placement) ||
               ParseArg(argv[i], "save", &args.save) ||
               ParseArg(argv[i], "load", &args.load) ||
               ParseArg(argv[i], "store", &args.store_dir) ||
               ParseArg(argv[i], "ledger", &args.ledger)) {
      // parsed into the struct
    } else if (ParseArg(argv[i], "rate", &value)) {
      args.rate = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "parallelism", &value)) {
      args.degrees.clear();
      for (const std::string& part : Split(value, ',')) {
        args.degrees.push_back(std::atoi(part.c_str()));
      }
      if (args.degrees.empty()) args.degrees.push_back(0);  // caught below
      args.parallelism = args.degrees.front();
    } else if (ParseArg(argv[i], "jobs", &value)) {
      args.jobs = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "nodes", &value)) {
      args.nodes = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "duration", &value)) {
      args.duration = std::atof(value.c_str());
    } else if (ParseArg(argv[i], "seed", &value)) {
      args.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage();
    }
  }
  if (args.list) {
    PrintCatalog();
    return 0;
  }
  const int selectors = (!args.app.empty() ? 1 : 0) +
                        (!args.structure.empty() ? 1 : 0) +
                        (!args.load.empty() ? 1 : 0);
  if (selectors != 1) {
    std::fprintf(stderr,
                 "pass exactly one of --app / --structure / --load\n");
    return Usage();
  }
  bool degrees_ok = !args.degrees.empty();
  for (int d : args.degrees) degrees_ok = degrees_ok && d >= 1;
  if (args.rate <= 0 || !degrees_ok || args.nodes < 1 ||
      args.duration <= 0.5 || (args.profile_set && args.profile_hz <= 0) ||
      (args.mem_profile_set && args.mem_interval_kib <= 0)) {
    std::fprintf(stderr, "bad numeric flags\n");
    return Usage();
  }

  auto cluster = MakeCluster(args.cluster, args.nodes);
  auto placement = MakePlacement(args.placement);
  if (!cluster.ok() || !placement.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!cluster.ok() ? cluster.status() : placement.status())
                     .ToString()
                     .c_str());
    return 2;
  }

  if (args.degrees.size() > 1) {
    return RunParallelismSweep(args, *cluster, *placement);
  }

  Result<LogicalPlan> plan = Status::Internal("unreachable");
  obs::HostProfiler::Phase build_phase(&obs::HostProfiler::Global(),
                                       "build-plan");
  if (!args.load.empty()) {
    RunStore store(args.store_dir);
    plan = store.LoadPlan(args.load);
    if (!plan.ok()) {
      std::fprintf(stderr, "load: %s\n", plan.status().ToString().c_str());
      return 1;
    }
  } else if (!args.app.empty()) {
    auto id = FindAppByAbbrev(args.app);
    if (!id.ok()) {
      std::fprintf(stderr, "%s (use --list)\n",
                   id.status().ToString().c_str());
      return 2;
    }
    AppOptions opt;
    opt.event_rate = args.rate;
    opt.parallelism = args.parallelism;
    plan = MakeApp(*id, opt);
  } else {
    SyntheticStructure structure = SyntheticStructure::kLinear;
    bool found = false;
    for (SyntheticStructure s : AllSyntheticStructures()) {
      if (args.structure == SyntheticStructureToString(s)) {
        structure = s;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown structure '%s' (use --list)\n",
                   args.structure.c_str());
      return 2;
    }
    CanonicalOptions opt;
    opt.event_rate = args.rate;
    opt.parallelism = args.parallelism;
    plan = MakeCanonicalSynthetic(structure, opt);
  }
  build_phase.End();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  // Static-analysis gate (loaded plans bypass PlanBuilder::Build, so the
  // check runs here for every selection path).
  if (Status check = analysis::CheckPlan(*plan, &*cluster); !check.ok()) {
    if (args.allow_invalid) {
      std::fprintf(stderr, "warning: %s (continuing: --allow-invalid)\n",
                   check.ToString().c_str());
    } else {
      std::fprintf(stderr,
                   "%s\nrun `pdspbench analyze` for the full report, or "
                   "pass --allow-invalid to simulate anyway\n",
                   check.ToString().c_str());
      return 1;
    }
  }

  std::printf("plan:\n%s\n", plan->ToString().c_str());
  auto analytic = EstimateLatencyAnalytically(*plan, *cluster);
  if (analytic.ok()) {
    std::printf("analytic estimate: %.1f ms (max utilization %.2f%s)\n\n",
                analytic->latency_s * 1e3, analytic->max_utilization,
                analytic->saturated ? ", SATURATED" : "");
  }

  const std::string run_label =
      !args.app.empty() ? args.app
                        : (!args.structure.empty() ? args.structure
                                                   : args.load);

  ExecutionOptions exec;
  exec.placement = *placement;
  exec.sim.duration_s = args.duration;
  exec.sim.warmup_s = args.duration * 0.2;
  exec.sim.seed = args.seed;

  // --profile: register this thread, sample it across the simulate phase.
  // The profiler only reads wall/CPU clocks, so virtual-time results stay
  // bit-identical to an unprofiled run.
  obs::prof::ProfOptions prof_options;
  prof_options.enabled = args.profile_set;
  prof_options.hz = args.profile_hz;
  std::unique_ptr<obs::prof::ThreadRegistration> prof_registration;
  obs::prof::Profiler profiler(prof_options);
  if (args.profile_set || args.mem_profile_set) {
    prof_registration =
        std::make_unique<obs::prof::ThreadRegistration>("main");
  }
  if (args.profile_set) {
    if (Status st = profiler.Start(); !st.ok()) {
      std::fprintf(stderr, "profiler: %s\n", st.ToString().c_str());
    }
  }
  // --mem-profile: sample this thread's allocations across the simulate
  // phase, attributed to the same marker stack the CPU profiler reads.
  obs::mem::MemOptions mem_options;
  mem_options.enabled = args.mem_profile_set;
  mem_options.sample_interval_bytes =
      static_cast<int64_t>(args.mem_interval_kib * 1024.0);
  obs::mem::MemProfiler mem_profiler(mem_options);
  if (args.mem_profile_set) {
    if (Status st = mem_profiler.Start(); !st.ok()) {
      std::fprintf(stderr, "mem-profiler: %s\n", st.ToString().c_str());
    }
  }
  Result<SimResult> result = Status::Internal("unreachable");
  {
    obs::HostProfiler::Phase phase(&obs::HostProfiler::Global(), "simulate");
    obs::prof::ProfScope app_scope(obs::prof::FrameKind::kApp, run_label);
    obs::prof::ProfScope phase_scope(obs::prof::FrameKind::kPhase,
                                     "simulate");
    result = ExecutePlan(*plan, *cluster, exec);
  }
  obs::prof::CpuProfile profile;
  if (profiler.running()) profile = profiler.Stop();
  obs::mem::MemProfile mem_profile;
  if (mem_profiler.running()) mem_profile = mem_profiler.Stop();
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("measured: %s\n\n", result->Summary().c_str());
  if (args.profile_set && !profile.empty()) {
    std::printf("cpu profile: %lld samples @ %.0f Hz, %.4fs CPU "
                "(sampler %.4fs, %lld dropped)\n",
                static_cast<long long>(profile.samples), profile.hz,
                profile.total_cpu_s, profile.sampler_cpu_s,
                static_cast<long long>(profile.dropped));
    for (const obs::prof::FrameTotal& op : profile.operators) {
      if (op.name == "(none)") continue;
      std::printf("  %-20s %9.4fs %6lld samples\n", op.name.c_str(),
                  op.cpu_s, static_cast<long long>(op.samples));
    }
    std::printf("\n");
  }
  if (args.mem_profile_set && !mem_profile.empty()) {
    std::printf("mem profile: %lld samples (1/%lld KiB), %.1f MiB "
                "allocated, %.1f MiB live, peak heap %.1f MiB\n",
                static_cast<long long>(mem_profile.samples),
                static_cast<long long>(
                    mem_profile.sample_interval_bytes / 1024),
                static_cast<double>(mem_profile.total_bytes) /
                    (1024.0 * 1024.0),
                static_cast<double>(mem_profile.live_bytes) /
                    (1024.0 * 1024.0),
                static_cast<double>(mem_profile.peak_heap_bytes) /
                    (1024.0 * 1024.0));
    for (const obs::mem::MemFrameTotal& op : mem_profile.operators) {
      std::printf("  %-20s %9.2f MiB %6lld samples%s\n", op.name.c_str(),
                  static_cast<double>(op.total_bytes) / (1024.0 * 1024.0),
                  static_cast<long long>(op.samples),
                  op.tuples > 0
                      ? StrFormat(" (%.1f B/tuple)", op.bytes_per_tuple)
                            .c_str()
                      : "");
    }
    std::printf("\n");
  }
  if (!args.artifacts.empty()) {
    obs::ArtifactOptions bundle;
    bundle.sim_options = &exec.sim;
    bundle.cpu_profile = profile.empty() ? nullptr : &profile;
    bundle.mem_profile = mem_profile.empty() ? nullptr : &mem_profile;
    Status st = obs::WriteRunArtifacts(args.artifacts, *result, bundle);
    if (st.ok()) {
      std::printf("artifacts: wrote bundle to %s/\n\n",
                  args.artifacts.c_str());
    } else {
      std::fprintf(stderr, "artifacts: %s\n", st.ToString().c_str());
    }
  }
  if (!args.ledger.empty()) {
    // Single ad-hoc run, so the "mean of repeats" collapses to one sample;
    // the record still carries full provenance (plan hash, seed, build).
    RunProtocol protocol;
    protocol.repeats = 1;
    protocol.duration_s = args.duration;
    protocol.warmup_s = args.duration * 0.2;
    protocol.seed = args.seed;
    protocol.label = run_label;
    protocol.ledger.enabled = true;
    protocol.ledger.path = args.ledger;
    protocol.ledger.cluster_name = args.cluster;
    if (!args.artifacts.empty()) {
      protocol.obs.enabled = true;  // record points at the bundle above
      protocol.obs.dir = args.artifacts;
    }
    CellResult cell;
    cell.mean_median_latency_s = result->median_latency_s;
    cell.mean_throughput_tps = result->throughput_tps;
    cell.p95_latency_s = result->p95_latency_s;
    cell.p99_latency_s = result->p99_latency_s;
    cell.median_latency_stats.Add(result->median_latency_s);
    cell.throughput_stats.Add(result->throughput_tps);
    cell.late_drops = result->late_drops;
    cell.backpressure_skipped = result->backpressure_skipped;
    if (!profile.empty()) {
      cell.profile = profile;
      cell.has_profile = true;
    }
    if (!mem_profile.empty()) {
      cell.mem_profile = mem_profile;
      cell.has_mem_profile = true;
    }
    obs::RunRecord record = MakeLedgerRecord(*plan, *cluster, protocol, cell);
    Status appended = obs::RunLedger(args.ledger).Append(record);
    if (appended.ok()) {
      std::printf("ledger: appended %s to %s\n\n", record.run_id.c_str(),
                  args.ledger.c_str());
    } else {
      std::fprintf(stderr, "ledger: %s\n", appended.ToString().c_str());
    }
  }
  if (!args.save.empty()) {
    RunStore store(args.store_dir);
    Status saved = store.SaveRun(args.save, *plan, *cluster, *result);
    if (saved.ok()) {
      std::printf("saved run '%s' to %s/\n\n", args.save.c_str(),
                  args.store_dir.c_str());
    } else {
      std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    }
  }
  std::printf("%-16s %-5s %-10s %-10s %-7s %-7s %-9s\n", "operator", "p",
              "in", "out", "util", "max", "late");
  for (const OperatorRunStats& op : result->op_stats) {
    std::printf("%-16s %-5d %-10lld %-10lld %-7.2f %-7.2f %-9lld\n",
                op.name.c_str(), op.parallelism,
                static_cast<long long>(op.tuples_in),
                static_cast<long long>(op.tuples_out), op.utilization,
                op.max_instance_util,
                static_cast<long long>(op.late_drops));
  }
  return 0;
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
