// pdsp::analysis diagnostics: the structured finding type every lint pass
// emits, and the report that aggregates them. Each diagnostic carries a
// stable machine-readable code (PDSP-E301, PDSP-W701, ...), a severity, the
// offending operator and a fix hint, so CI, the CLI and tests can key on
// codes instead of message text. See DESIGN.md "Static analysis" for the
// full code table.

#ifndef PDSP_ANALYSIS_DIAGNOSTIC_H_
#define PDSP_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/store/json.h"

namespace pdsp {
namespace analysis {

/// Severity ladder. kError means the plan must not be simulated (results
/// would be meaningless); kWarning means the plan is runnable but likely
/// wastes resources or measures something other than intended.
enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

const char* SeverityToString(Severity severity);

/// \brief One finding of one pass against one plan.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  /// Stable code: "PDSP-" + severity letter + 3 digits, e.g. "PDSP-E301".
  /// The hundreds digit identifies the pass; codes never change meaning.
  std::string code;
  /// Registry name of the pass that produced this ("join-key-types", ...).
  std::string pass;
  /// Offending operator id, or -1 for plan-level findings.
  int op = -1;
  /// Offending operator name ("" for plan-level findings).
  std::string op_name;
  /// What is wrong.
  std::string message;
  /// How to fix it ("" when no concrete suggestion applies).
  std::string hint;

  /// "PDSP-E301 [error] join-key-types @ join: ... (fix: ...)".
  std::string ToString() const;
  Json ToJson() const;
};

/// \brief All findings of one analyzer run, ordered by (severity desc,
/// operator id, code) for stable output.
class AnalysisReport {
 public:
  void Add(Diagnostic diag);
  /// Sorts diagnostics into the canonical order (idempotent).
  void Finalize();

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }

  size_t CountAtLeast(Severity severity) const;
  size_t NumErrors() const { return CountAtLeast(Severity::kError); }
  bool HasErrors() const { return NumErrors() > 0; }

  /// True if any diagnostic carries the given code.
  bool HasCode(const std::string& code) const;

  /// One line per diagnostic plus a summary line; "no diagnostics" when
  /// clean. Shared by the CLI's human output and the golden tests.
  std::string ToString() const;

  /// {"diagnostics": [...], "errors": N, "warnings": N, "infos": N}.
  Json ToJson() const;

  /// OK when error-free; otherwise FailedPrecondition listing every
  /// error-severity code and message.
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace analysis
}  // namespace pdsp

#endif  // PDSP_ANALYSIS_DIAGNOSTIC_H_
