// Dataset splitting and the train-and-evaluate pipeline of the ML Manager:
// every model family is trained on the same data with the same early-
// stopping protocol, then reported with consistent metrics (accuracy via
// q-error plus training overhead).

#ifndef PDSP_ML_TRAINER_H_
#define PDSP_ML_TRAINER_H_

#include <string>

#include "src/common/rng.h"
#include "src/ml/metrics.h"
#include "src/ml/model.h"
#include "src/obs/host_profile.h"

namespace pdsp {

/// \brief Deterministically shuffled train/val/test split.
struct DatasetSplit {
  Dataset train;
  Dataset val;
  Dataset test;
};

/// Splits by fractions (remainder goes to test). Fractions must be positive
/// and sum to < 1.
Result<DatasetSplit> SplitDataset(const Dataset& data, double train_fraction,
                                  double val_fraction, uint64_t seed);

/// Partitions by structure tag: samples whose tag is in `held_out_tags` go
/// to `unseen`, the rest to `seen` (Figure 6's seen/unseen protocol).
void SplitByStructure(const Dataset& data,
                      const std::vector<int>& held_out_tags, Dataset* seen,
                      Dataset* unseen);

/// \brief One model's full training + evaluation record.
struct ModelEvaluation {
  std::string model_name;
  TrainReport train_report;
  EvalMetrics val_metrics;
  EvalMetrics test_metrics;
};

/// Fits `model` on split.train (early stopping on split.val) and evaluates
/// on val and test. The "train" wall-clock phase is recorded into
/// `profiler`; the default (null) resolves to obs::HostProfiler::Global(),
/// the legacy single-threaded behavior. Callers running training inside a
/// sweep worker pass their run context's profiler instead.
Result<ModelEvaluation> TrainAndEvaluate(LearnedCostModel* model,
                                         const DatasetSplit& split,
                                         const TrainOptions& options,
                                         obs::HostProfiler* profiler = nullptr);

}  // namespace pdsp

#endif  // PDSP_ML_TRAINER_H_
