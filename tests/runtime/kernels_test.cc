#include "src/runtime/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/data/arrival.h"
#include "src/data/generator.h"
#include "src/query/builder.h"
#include "src/runtime/operators.h"

namespace pdsp {
namespace {

constexpr FilterOp kAllOps[] = {FilterOp::kLt, FilterOp::kLe, FilterOp::kGt,
                                FilterOp::kGe, FilterOp::kEq, FilterOp::kNe};

// A batch with one column of each type plus some repeated values so kEq/kNe
// select non-trivially: (int, double, string).
data::Batch MixedBatch(size_t rows, uint64_t seed) {
  data::Batch b(data::BatchLayout(
      {DataType::kInt, DataType::kDouble, DataType::kString}));
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    b.AppendInt(0, rng.UniformInt(0, 20));
    b.AppendDouble(1, i % 3 == 0 ? 10.0 : rng.Uniform(0.0, 20.0));
    b.AppendString(2, DictionaryWord(rng.UniformInt(0, 30)));
    b.FinishRow(i * 0.001, i * 0.001, kNoAttr);
  }
  return b;
}

TEST(FilterSelectTest, MatchesScalarEvaluateFilterEveryOpAndType) {
  const data::Batch b = MixedBatch(200, 11);
  const std::vector<Value> literals = {Value(10), Value(10.0), Value("fa"),
                                       Value(static_cast<int64_t>(2))};
  for (size_t field = 0; field < b.NumColumns(); ++field) {
    for (const Value& lit : literals) {
      for (FilterOp op : kAllOps) {
        data::SelectionVector sel;
        ASSERT_TRUE(
            kernels::FilterSelect(b, 0, b.NumRows(), field, op, lit, &sel)
                .ok());
        data::SelectionVector expected;
        for (size_t r = 0; r < b.NumRows(); ++r) {
          if (EvaluateFilter(b.ValueAt(r, field), op, lit)) {
            expected.push_back(static_cast<uint32_t>(r));
          }
        }
        EXPECT_EQ(sel, expected)
            << "field " << field << " op " << static_cast<int>(op)
            << " literal " << lit.ToString();
      }
    }
  }
}

TEST(FilterSelectTest, SubRangeAndOutOfRangeField) {
  const data::Batch b = MixedBatch(50, 3);
  data::SelectionVector sel;
  ASSERT_TRUE(kernels::FilterSelect(b, 10, 20, 0, FilterOp::kGe, Value(0),
                                    &sel)
                  .ok());
  for (uint32_t idx : sel) {
    EXPECT_GE(idx, 10u);
    EXPECT_LT(idx, 20u);
  }
  EXPECT_TRUE(kernels::FilterSelect(b, 0, b.NumRows(), 99, FilterOp::kGt,
                                    Value(0), &sel)
                  .IsOutOfRange());
}

TEST(FilterSelectTest, PromotedColumnFallsBackToScalarSemantics) {
  data::Batch b(data::BatchLayout({DataType::kInt}));
  b.AppendInt(0, 5);
  b.FinishRow(0, 0, kNoAttr);
  b.AppendValue(0, Value("xx"));  // promotes: AsNumeric view = length 2
  b.FinishRow(0, 0, kNoAttr);
  b.AppendValue(0, Value(1));
  b.FinishRow(0, 0, kNoAttr);
  ASSERT_TRUE(b.column_promoted(0));
  data::SelectionVector sel;
  ASSERT_TRUE(
      kernels::FilterSelect(b, 0, 3, 0, FilterOp::kGt, Value(1.5), &sel)
          .ok());
  EXPECT_EQ(sel, (data::SelectionVector{0, 1}));
}

TEST(AggregateKernelTest, MatchesScalarAccumulationEveryFn) {
  const data::Batch b = MixedBatch(300, 21);
  for (size_t field = 0; field < b.NumColumns(); ++field) {
    kernels::AggPartial agg;
    ASSERT_TRUE(kernels::Aggregate(b, 0, b.NumRows(), field, &agg).ok());
    double sum = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (size_t r = 0; r < b.NumRows(); ++r) {
      const double v = b.NumericAt(r, field);
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_EQ(agg.count, static_cast<int64_t>(b.NumRows()));
    EXPECT_DOUBLE_EQ(agg.Finish(AggregateFn::kSum), sum);
    EXPECT_DOUBLE_EQ(agg.Finish(AggregateFn::kMin), mn);
    EXPECT_DOUBLE_EQ(agg.Finish(AggregateFn::kMax), mx);
    EXPECT_DOUBLE_EQ(agg.Finish(AggregateFn::kAvg),
                     sum / static_cast<double>(b.NumRows()));
    EXPECT_DOUBLE_EQ(agg.Finish(AggregateFn::kMean),
                     agg.Finish(AggregateFn::kAvg));
  }
  kernels::AggPartial bad;
  EXPECT_TRUE(kernels::Aggregate(b, 0, 1, 99, &bad).IsOutOfRange());
  kernels::AggPartial empty;
  EXPECT_DOUBLE_EQ(empty.Finish(AggregateFn::kAvg), 0.0);
}

TEST(PartitionKernelTest, MatchesScalarHashRouting) {
  const data::Batch b = MixedBatch(400, 31);
  for (size_t field = 0; field < b.NumColumns(); ++field) {
    for (int p : {1, 2, 7}) {
      std::vector<data::SelectionVector> parts;
      kernels::Partition(b, 0, b.NumRows(), field, p, &parts);
      ASSERT_EQ(parts.size(), static_cast<size_t>(p));
      std::vector<data::SelectionVector> expected(p);
      for (size_t r = 0; r < b.NumRows(); ++r) {
        const uint64_t h = b.ValueAt(r, field).Hash();
        expected[h % static_cast<uint64_t>(p)].push_back(
            static_cast<uint32_t>(r));
      }
      EXPECT_EQ(parts, expected) << "field " << field << " p " << p;
    }
  }
}

TEST(PartitionKernelTest, KeyBeyondArityRoutesEverythingToZero) {
  const data::Batch b = MixedBatch(16, 1);
  std::vector<data::SelectionVector> parts;
  kernels::Partition(b, 0, b.NumRows(), 99, 4, &parts);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].size(), b.NumRows());
  EXPECT_TRUE(parts[1].empty() && parts[2].empty() && parts[3].empty());
}

TEST(NumericColumnTest, MatchesValueAsNumeric) {
  const data::Batch b = MixedBatch(100, 41);
  std::vector<double> out(b.NumRows());
  for (size_t field = 0; field < b.NumColumns(); ++field) {
    kernels::NumericColumn(b, 0, b.NumRows(), field, out.data());
    for (size_t r = 0; r < b.NumRows(); ++r) {
      EXPECT_DOUBLE_EQ(out[r], b.ValueAt(r, field).AsNumeric());
    }
  }
}

// The batch path through the operator runtime must produce the same
// elements in the same order as feeding rows one at a time through the
// scalar Process path.
TEST(ProcessBatchTest, FilterBatchMatchesScalarProcess) {
  auto plan = [] {
    PlanBuilder b;
    StreamSpec spec;
    (void)spec.schema.AddField({"key", DataType::kInt});
    (void)spec.schema.AddField({"val", DataType::kDouble});
    FieldGeneratorSpec kg;
    kg.dist = FieldDistribution::kUniformKey;
    kg.cardinality = 50;
    FieldGeneratorSpec vg;
    vg.dist = FieldDistribution::kUniformDouble;
    vg.min = 0.0;
    vg.max = 100.0;
    spec.specs = {kg, vg};
    ArrivalProcess::Options arr;
    arr.rate = 100.0;
    auto s = b.Source("src", spec, arr, 1);
    auto f = b.Filter("filter", s, 1, FilterOp::kGt, Value(50.0), 1);
    b.Sink("sink", f, 1);
    return b.Build();
  }();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const LogicalPlan::OpId op = *plan->FindOperator("filter");

  auto scalar_inst = CreateOperatorInstance(*plan, op, 0, 1);
  auto batch_inst = CreateOperatorInstance(*plan, op, 0, 1);
  ASSERT_TRUE(scalar_inst.ok() && batch_inst.ok());

  data::BatchLayout layout({DataType::kInt, DataType::kDouble});
  data::Batch in(layout);
  Rng rng(5);
  for (int i = 0; i < 128; ++i) {
    in.AppendInt(0, rng.UniformInt(0, 50));
    in.AppendDouble(1, rng.Uniform(0.0, 100.0));
    in.FinishRow(i * 0.01, i * 0.01, static_cast<uint32_t>(i));
  }
  std::vector<StreamElement> scalar_out;
  for (size_t r = 0; r < in.NumRows(); ++r) {
    StreamElement e;
    e.tuple = in.RowTuple(r);
    e.birth = in.birth(r);
    e.attr_id = in.attr_id(r);
    ASSERT_TRUE((*scalar_inst)->Process(e, 0, 1.0, &scalar_out).ok());
  }
  data::Batch batch_out(layout);
  ASSERT_TRUE(
      (*batch_inst)
          ->ProcessBatch(in, 0, in.NumRows(), 0, 1.0, &batch_out)
          .ok());
  ASSERT_EQ(batch_out.NumRows(), scalar_out.size());
  for (size_t r = 0; r < scalar_out.size(); ++r) {
    EXPECT_EQ(batch_out.RowTuple(r).values, scalar_out[r].tuple.values);
    EXPECT_DOUBLE_EQ(batch_out.birth(r), scalar_out[r].birth);
    EXPECT_EQ(batch_out.attr_id(r), scalar_out[r].attr_id);
  }
}

}  // namespace
}  // namespace pdsp
