#include "src/obs/host_profile.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace pdsp {
namespace obs {

namespace {

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

/// Parses "VmRSS:     1234 kB"-style lines out of /proc/self/status.
/// Returns false (zeros) when the file is unavailable (non-Linux hosts).
bool ReadProcSelfStatus(int64_t* rss_kb, int64_t* hwm_kb) {
  std::ifstream in("/proc/self/status");
  if (!in.good()) return false;
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    long long value = 0;
    if (std::sscanf(line.c_str(), "VmRSS: %lld kB", &value) == 1) {
      *rss_kb = value;
      found = true;
    } else if (std::sscanf(line.c_str(), "VmHWM: %lld kB", &value) == 1) {
      *hwm_kb = value;
      found = true;
    }
  }
  return found;
}

}  // namespace

namespace {

Json PhaseMapToJson(const WorkerPhaseMap& phases) {
  Json ph = Json::Object();
  for (const auto& [name, stats] : phases) {
    Json p = Json::Object();
    p.Set("count", Json::Int(stats.count));
    p.Set("total_s", Json::Number(stats.total_s));
    p.Set("max_s", Json::Number(stats.max_s));
    ph.Set(name, std::move(p));
  }
  return ph;
}

}  // namespace

WorkerPhaseMap HostProfile::AggregateWorkerPhases() const {
  WorkerPhaseMap aggregate;
  for (const auto& [worker, phases] : worker_phases) {
    (void)worker;
    for (const auto& [name, stats] : phases) {
      HostPhaseStats& agg = aggregate[name];
      agg.count += stats.count;
      agg.total_s += stats.total_s;
      if (stats.max_s > agg.max_s) agg.max_s = stats.max_s;
    }
  }
  return aggregate;
}

Json HostProfile::ToJson() const {
  Json u = Json::Object();
  u.Set("wall_s", Json::Number(usage.wall_s));
  u.Set("cpu_user_s", Json::Number(usage.cpu_user_s));
  u.Set("cpu_sys_s", Json::Number(usage.cpu_sys_s));
  u.Set("rss_kb", Json::Int(usage.rss_kb));
  u.Set("peak_rss_kb", Json::Int(usage.peak_rss_kb));
  u.Set("peak_rss_bytes", Json::Int(usage.peak_rss_bytes));

  Json root = Json::Object();
  root.Set("usage", std::move(u));
  root.Set("phases", PhaseMapToJson(phases));
  if (!worker_phases.empty()) {
    Json workers = Json::Object();
    for (const auto& [worker, worker_map] : worker_phases) {
      workers.Set(worker, PhaseMapToJson(worker_map));
    }
    root.Set("workers", std::move(workers));
    root.Set("worker_aggregate", PhaseMapToJson(AggregateWorkerPhases()));
  }
  return root;
}

HostProfiler::HostProfiler() : start_(std::chrono::steady_clock::now()) {}

HostProfiler& HostProfiler::Global() {
  static HostProfiler* profiler = new HostProfiler();
  return *profiler;
}

void HostProfiler::RecordPhase(const std::string& name, double seconds) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  HostPhaseStats& stats = phases_[name];
  ++stats.count;
  stats.total_s += seconds;
  if (seconds > stats.max_s) stats.max_s = seconds;
}

HostUsage HostProfiler::SampleUsage() const {
  HostUsage usage;
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start_;
  usage.wall_s = wall.count();

  rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.cpu_user_s = TimevalSeconds(ru.ru_utime);
    usage.cpu_sys_s = TimevalSeconds(ru.ru_stime);
#if defined(__APPLE__)
    usage.peak_rss_bytes = static_cast<int64_t>(ru.ru_maxrss);  // bytes
#else
    usage.peak_rss_bytes = static_cast<int64_t>(ru.ru_maxrss) * 1024;  // kB
#endif
  }
  int64_t rss = 0;
  int64_t hwm = 0;
  if (ReadProcSelfStatus(&rss, &hwm)) {
    usage.rss_kb = rss;
    if (hwm * 1024 > usage.peak_rss_bytes) usage.peak_rss_bytes = hwm * 1024;
  }
  usage.peak_rss_kb = usage.peak_rss_bytes / 1024;
  return usage;
}

void HostProfiler::MergeWorkerPhases(const std::string& worker,
                                     const WorkerPhaseMap& phases) {
  MutexLock lock(mu_);
  WorkerPhaseMap& mine = worker_phases_[worker];
  for (const auto& [name, stats] : phases) {
    HostPhaseStats& existing = mine[name];
    existing.count += stats.count;
    existing.total_s += stats.total_s;
    if (stats.max_s > existing.max_s) existing.max_s = stats.max_s;
  }
}

HostProfile HostProfiler::Snapshot() const {
  HostProfile profile;
  profile.usage = SampleUsage();
  {
    MutexLock lock(mu_);
    profile.phases = phases_;
    profile.worker_phases = worker_phases_;
  }
  return profile;
}

void HostProfiler::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const HostProfile profile = Snapshot();
  registry->GetGauge("pdsp.host.wall_s")->Set(profile.usage.wall_s);
  registry->GetGauge("pdsp.host.cpu_user_s")->Set(profile.usage.cpu_user_s);
  registry->GetGauge("pdsp.host.cpu_sys_s")->Set(profile.usage.cpu_sys_s);
  registry->GetGauge("pdsp.host.rss_kb")
      ->Set(static_cast<double>(profile.usage.rss_kb));
  registry->GetGauge("pdsp.host.peak_rss_kb")
      ->Set(static_cast<double>(profile.usage.peak_rss_kb));
  registry->GetGauge("pdsp.host.peak_rss_bytes")
      ->Set(static_cast<double>(profile.usage.peak_rss_bytes));
  for (const auto& [name, stats] : profile.phases) {
    registry->GetGauge("pdsp.host.phase." + name + ".total_s")
        ->Set(stats.total_s);
    registry->GetGauge("pdsp.host.phase." + name + ".count")
        ->Set(static_cast<double>(stats.count));
  }
  if (!profile.worker_phases.empty()) {
    registry->GetGauge("pdsp.host.workers")
        ->Set(static_cast<double>(profile.worker_phases.size()));
    for (const auto& [name, stats] : profile.AggregateWorkerPhases()) {
      registry->GetGauge("pdsp.host.worker_phase." + name + ".total_s")
          ->Set(stats.total_s);
      registry->GetGauge("pdsp.host.worker_phase." + name + ".count")
          ->Set(static_cast<double>(stats.count));
    }
  }
}

void HostProfiler::Reset() {
  MutexLock lock(mu_);
  phases_.clear();
  worker_phases_.clear();
  start_ = std::chrono::steady_clock::now();
}

}  // namespace obs
}  // namespace pdsp
