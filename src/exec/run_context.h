// Per-run execution context: the explicit bundle of everything one measured
// run is allowed to mutate. Before this existed, the cell path leaked state
// through process-wide singletons (obs::HostProfiler::Global() phase
// timers, implicitly shared registries), which made concurrent sweep cells
// impossible to reason about. A RunContext owns (or is explicitly bound to)
//
//   * the MetricsRegistry the representative repeat records into,
//   * the Tracer the cell's spans/firings go to,
//   * the host-profiler phase sink its wall-clock phases accumulate in, and
//   * the seed state repeat seeds derive from.
//
// Thread-safety contract (see DESIGN.md "Execution model"): a RunContext is
// confined to one thread at a time; cross-context aggregation happens by
// merging (MetricsRegistry::MergeFrom, HostProfiler::MergeWorkerPhases)
// after the owning thread is done, in deterministic (cell-index) order.

#ifndef PDSP_EXEC_RUN_CONTEXT_H_
#define PDSP_EXEC_RUN_CONTEXT_H_

#include <cstdint>
#include <memory>

#include "src/common/status.h"
#include "src/obs/host_profile.h"
#include "src/obs/mem.h"
#include "src/obs/metrics.h"
#include "src/obs/prof.h"
#include "src/obs/trace.h"

namespace pdsp {
namespace exec {

/// \brief Owns the mutable observability state of one measured run.
class RunContext {
 public:
  /// A context with a private host-profiler sink (parallel workers; tests).
  RunContext();

  /// A context bound to an external profiler sink — pass
  /// &obs::HostProfiler::Global() to reproduce the legacy single-threaded
  /// behavior where every phase lands in the process-wide profiler.
  explicit RunContext(obs::HostProfiler* profiler_sink);

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// The run's metric registry; also handed to the simulator for the
  /// representative repeat so SimResult::metrics aliases it.
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  obs::Tracer* tracer() { return &tracer_; }

  /// Phase sink for this run's wall-clock scopes (simulate / diagnose /
  /// train / export). Never null.
  obs::HostProfiler* profiler() { return profiler_; }

  /// True when the sink is private to this context (i.e. its phases must be
  /// merged somewhere to be visible).
  bool owns_profiler() const { return owned_profiler_ != nullptr; }

  uint64_t base_seed() const { return base_seed_; }
  void set_base_seed(uint64_t seed) { base_seed_ = seed; }

  /// Seed of repeat `r`: base + r * 7919 (prime stride). A pure function of
  /// (base_seed, r) — independent of worker identity and execution order,
  /// which is what makes --jobs=1 and --jobs=N bit-identical.
  uint64_t SeedForRepeat(int repeat) const {
    return base_seed_ + static_cast<uint64_t>(repeat) * 7919ULL;
  }

  /// splitmix64 of (base ^ index): a well-spread per-cell seed for callers
  /// that fan one base seed across many cells.
  static uint64_t MixSeed(uint64_t base, uint64_t index);

  /// Creates (replacing any previous one) and starts the context-owned
  /// sampling CPU profiler. With options.all_threads=false the calling
  /// thread must already hold a prof::ThreadRegistration.
  Status StartCpuProfiler(const obs::prof::ProfOptions& options);

  /// Stops the owned profiler and returns its aggregate; an empty profile
  /// when none was started. The profiler is destroyed afterwards, so a
  /// context can be reused for an unprofiled run.
  obs::prof::CpuProfile StopCpuProfiler();

  /// True while the owned sampling profiler is running.
  bool cpu_profiling() const;

  /// Creates (replacing any previous one) and starts the context-owned
  /// sampling allocation profiler. With options.all_threads=false the
  /// calling thread must already hold a prof::ThreadRegistration; Start and
  /// Stop must run on the same thread (the confinement contract above).
  Status StartMemProfiler(const obs::mem::MemOptions& options);

  /// Stops the owned allocation profiler and returns its aggregate; an
  /// empty profile when none was started.
  obs::mem::MemProfile StopMemProfiler();

  /// True while the owned allocation profiler is running.
  bool mem_profiling() const;

 private:
  std::unique_ptr<obs::HostProfiler> owned_profiler_;
  std::unique_ptr<obs::prof::Profiler> cpu_profiler_;
  std::unique_ptr<obs::mem::MemProfiler> mem_profiler_;
  obs::HostProfiler* profiler_;  // == owned_profiler_.get() or external
  obs::Tracer tracer_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  uint64_t base_seed_ = 2024;
};

}  // namespace exec
}  // namespace pdsp

#endif  // PDSP_EXEC_RUN_CONTEXT_H_
