// Clang thread-safety annotations (a no-op on other compilers) plus a
// minimal annotated Mutex/MutexLock pair. libstdc++'s std::mutex carries no
// capability attributes, so -Wthread-safety cannot see std::lock_guard
// acquisitions; mutex-guarded state in this codebase therefore uses
// pdsp::Mutex + pdsp::MutexLock, which behave exactly like std::mutex +
// std::lock_guard but let clang statically verify every GUARDED_BY /
// REQUIRES contract. Enable the analysis with -Wthread-safety (added
// automatically for clang builds by the top-level CMakeLists).

#ifndef PDSP_COMMON_THREAD_ANNOTATIONS_H_
#define PDSP_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define PDSP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PDSP_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Declares that a field is protected by the given capability (mutex).
#define PDSP_GUARDED_BY(x) PDSP_THREAD_ANNOTATION__(guarded_by(x))

/// Declares that the pointed-to data is protected by the given capability.
#define PDSP_PT_GUARDED_BY(x) PDSP_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The function must be called with the capability held.
#define PDSP_REQUIRES(...) \
  PDSP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The function must be called with the capability NOT held.
#define PDSP_EXCLUDES(...) \
  PDSP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// The function acquires the capability (and does not release it).
#define PDSP_ACQUIRE(...) \
  PDSP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define PDSP_RELEASE(...) \
  PDSP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The function attempts to acquire the capability; the first argument is
/// the return value that indicates success.
#define PDSP_TRY_ACQUIRE(...) \
  PDSP_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Marks a type as a capability (e.g. a mutex class).
#define PDSP_CAPABILITY(x) PDSP_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose lifetime scopes a capability acquisition.
#define PDSP_SCOPED_CAPABILITY PDSP_THREAD_ANNOTATION__(scoped_lockable)

/// Escape hatch for code the analysis cannot see through.
#define PDSP_NO_THREAD_SAFETY_ANALYSIS \
  PDSP_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// The function returns a reference to the given capability.
#define PDSP_RETURN_CAPABILITY(x) PDSP_THREAD_ANNOTATION__(lock_returned(x))

namespace pdsp {

/// \brief std::mutex with capability annotations so clang's -Wthread-safety
/// can check GUARDED_BY contracts. Same cost and semantics as std::mutex.
class PDSP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PDSP_ACQUIRE() { mu_.lock(); }
  void Unlock() PDSP_RELEASE() { mu_.unlock(); }
  bool TryLock() PDSP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling so std::condition_variable_any (and
  // std::unique_lock) can operate on an annotated Mutex directly:
  // cv.wait(mu) temporarily releases and re-acquires through these, which
  // is capability-neutral from the analysis' point of view.
  void lock() PDSP_ACQUIRE() { mu_.lock(); }
  void unlock() PDSP_RELEASE() { mu_.unlock(); }
  bool try_lock() PDSP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII lock for pdsp::Mutex (std::lock_guard equivalent).
class PDSP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PDSP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PDSP_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace pdsp

#endif  // PDSP_COMMON_THREAD_ANNOTATIONS_H_
