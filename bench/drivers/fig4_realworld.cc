// Figure 4 (top): real-world application latency across the three Table 4
// clusters, with the parallelism degree set to the per-node core count of
// each cluster (m510 -> 8, c6525_25g -> 16, c6320 -> 28), as the paper does.
//
// Expected shape (paper O5/O7): data-intensive apps (SA, CA, SD, SG) benefit
// substantially from the more powerful "He" clusters; AD's UDO complexity
// and cross-instance communication blunt the gain.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/apps/apps.h"
#include "src/common/string_util.h"

namespace pdsp {

int Main(int argc, char** argv) {
  const bench::DriverSweepOptions opts = bench::ParseDriverOptions(argc, argv);
  RegisterAppUdos();
  const RunProtocol protocol = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 80000.0 : 400000.0;

  struct ClusterConfig {
    const char* label;
    Cluster cluster;
    int degree;  // per-node cores
  };
  const std::vector<ClusterConfig> clusters = {
      {"Ho:m510(8)", Cluster::M510(10), 8},
      {"He:c6525(16)", Cluster::C6525(10), 16},
      {"He:c6320(28)", Cluster::C6320(10), 28},
  };

  const std::vector<AppId> apps = {
      AppId::kWordCount,        AppId::kSentimentAnalysis,
      AppId::kClickAnalytics,   AppId::kSpikeDetection,
      AppId::kSmartGrid,        AppId::kAdAnalytics,
  };

  std::vector<std::string> columns = {"app"};
  for (const auto& c : clusters) {
    columns.push_back(std::string(c.label) + "(ms)");
  }
  TableReporter table(
      StrFormat("Fig. 4 (top): real-world apps across clusters "
                "(parallelism = per-node cores), %.0fk ev/s",
                rate / 1000.0),
      columns);

  std::vector<exec::SweepCell> cells;
  for (AppId app : apps) {
    for (const auto& config : clusters) {
      exec::SweepCell cell;
      AppOptions opt;
      opt.event_rate = rate;
      opt.parallelism = config.degree;
      opt.window_scale = 0.4;
      cell.make_plan = [app, opt] { return MakeApp(app, opt); };
      cell.cluster = config.cluster;
      cell.protocol = protocol;
      cell.label =
          StrFormat("fig4rw/%s/%s", GetAppInfo(app).abbrev, config.label);
      cells.push_back(std::move(cell));
    }
  }

  const exec::SweepResult sweep =
      bench::RunDriverSweep(std::move(cells), "fig4_realworld", opts);

  size_t idx = 0;
  for (AppId app : apps) {
    std::vector<std::string> row = {GetAppInfo(app).abbrev};
    for ([[maybe_unused]] const auto& config : clusters) {
      row.push_back(bench::LatencyOrNa(sweep.cells[idx++]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  Status st = table.WriteCsv("results/fig4_realworld.csv");
  if (!st.ok()) std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
  return bench::SweepExitCode(sweep);
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
