#include "src/obs/report.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "src/common/file_util.h"
#include "src/common/stats.h"
#include "src/common/string_util.h"
#include "src/obs/mem.h"
#include "src/obs/prof.h"
#include "src/obs/svg.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {

namespace {

using svg::EscapeText;

bool IsDirectory(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Formats a number for HTML body text; non-finite values render as a dash
/// so the file never contains a "nan"/"inf" literal (CI greps for those).
std::string Num(double v, const char* fmt = "%.4g") {
  if (!std::isfinite(v)) return "&#8212;";
  return StrFormat(fmt, v);
}

double MedianOf(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 0) return (xs[mid - 1] + xs[mid]) / 2.0;
  return xs[mid];
}

/// Per-app view: for each parallelism keep the newest record (ledger order
/// is oldest-first), so re-measured cells replace their predecessors in
/// the charts instead of double-plotting.
struct AppGroup {
  std::string app;
  std::vector<RunRecord> records;           ///< ledger order, filtered
  std::map<int, RunRecord> by_parallelism;  ///< newest per parallelism
};

std::vector<AppGroup> GroupByApp(const std::vector<RunRecord>& records,
                                 const ReportOptions& options) {
  std::map<std::string, AppGroup> groups;
  for (const RunRecord& rec : records) {
    if (IsSummaryLabel(rec.label)) continue;
    const std::string app = AppOfLabel(rec.label);
    if (!options.app_filter.empty() && app != options.app_filter) continue;
    AppGroup& group = groups[app];
    group.app = app;
    group.records.push_back(rec);
  }
  std::vector<AppGroup> out;
  for (auto& entry : groups) {
    AppGroup& group = entry.second;
    if (options.limit > 0 && group.records.size() > options.limit) {
      group.records.erase(group.records.begin(),
                          group.records.end() - options.limit);
    }
    for (const RunRecord& rec : group.records) {
      group.by_parallelism[rec.parallelism] = rec;  // newest wins
    }
    out.push_back(std::move(group));
  }
  return out;
}

std::string ThroughputChart(const AppGroup& group) {
  svg::LineChartSpec spec;
  spec.title = group.app + ": throughput vs parallelism";
  spec.x_label = "parallelism";
  spec.y_label = "throughput (tuples/s)";
  svg::Series series;
  series.label = "throughput";
  for (const auto& entry : group.by_parallelism) {
    series.points.emplace_back(entry.first, entry.second.throughput_tps);
  }
  spec.series.push_back(std::move(series));
  return svg::RenderLineChart(spec);
}

std::string PercentileChart(const AppGroup& group) {
  svg::LineChartSpec spec;
  spec.title = group.app + ": latency vs parallelism";
  spec.x_label = "parallelism";
  spec.y_label = "latency (s)";
  svg::Series p50{"p50", "", {}}, p95{"p95", "", {}}, p99{"p99", "", {}};
  for (const auto& entry : group.by_parallelism) {
    const RunRecord& rec = entry.second;
    p50.points.emplace_back(entry.first, rec.median_latency_s);
    p95.points.emplace_back(entry.first, rec.p95_latency_s);
    p99.points.emplace_back(entry.first, rec.p99_latency_s);
  }
  spec.series = {std::move(p50), std::move(p95), std::move(p99)};
  return svg::RenderLineChart(spec);
}

std::string BreakdownChart(const AppGroup& group) {
  svg::StackedBarSpec spec;
  spec.title = group.app + ": latency breakdown";
  spec.y_label = "seconds";
  spec.part_labels = {"source", "network", "queue", "service", "window"};
  for (const auto& entry : group.by_parallelism) {
    const RunRecord& rec = entry.second;
    svg::StackedBar bar;
    bar.label = StrFormat("p=%d", entry.first);
    bar.parts = {rec.breakdown_source_batch_s, rec.breakdown_network_s,
                 rec.breakdown_queue_s, rec.breakdown_service_s,
                 rec.breakdown_window_s};
    spec.bars.push_back(std::move(bar));
  }
  return svg::RenderStackedBars(spec);
}

std::string SweepHeatmap(const std::vector<AppGroup>& groups,
                         const ReportOptions& options) {
  svg::HeatmapSpec spec;
  spec.title = "sweep heatmap: throughput by app × parallelism "
               "(red outline = straggler wall clock)";
  std::set<int> parallelisms;
  for (const AppGroup& group : groups) {
    for (const auto& entry : group.by_parallelism) {
      parallelisms.insert(entry.first);
    }
  }
  std::map<int, int> col_of;
  for (int p : parallelisms) {
    col_of[p] = static_cast<int>(spec.col_labels.size());
    spec.col_labels.push_back(StrFormat("p=%d", p));
  }
  for (const AppGroup& group : groups) {
    const int row = static_cast<int>(spec.row_labels.size());
    spec.row_labels.push_back(group.app);
    // The monitor's M201 rule re-applied to recorded host wall seconds:
    // within one app, a cell whose wall clock exceeds ratio × median is a
    // straggler worth a second look even after the run is long gone.
    std::vector<double> walls;
    for (const auto& entry : group.by_parallelism) {
      if (std::isfinite(entry.second.host_wall_s)) {
        walls.push_back(entry.second.host_wall_s);
      }
    }
    const double median_wall = MedianOf(walls);
    for (const auto& entry : group.by_parallelism) {
      const RunRecord& rec = entry.second;
      svg::HeatmapCell cell;
      cell.row = row;
      cell.col = col_of[entry.first];
      cell.value = rec.throughput_tps;
      cell.flagged = walls.size() >= 3 && median_wall > 0.0 &&
                     rec.host_wall_s > options.straggler_ratio * median_wall;
      cell.tooltip = StrFormat("%s: %.0f tuples/s, wall %.2fs",
                               rec.label.c_str(), rec.throughput_tps,
                               rec.host_wall_s);
      spec.cells.push_back(std::move(cell));
    }
  }
  return svg::RenderHeatmap(spec);
}

/// Critical-path rows harvested from diagnosis.json bundles. Returns an
/// empty string when no record carries a readable bundle.
std::string CriticalPathTable(const std::vector<AppGroup>& groups) {
  std::string rows;
  for (const AppGroup& group : groups) {
    for (const auto& entry : group.by_parallelism) {
      const RunRecord& rec = entry.second;
      if (rec.artifact_dir.empty()) continue;
      Result<std::string> text =
          ReadTextFile(rec.artifact_dir + "/diagnosis.json");
      if (!text.ok()) continue;
      Result<Json> doc = Json::Parse(*text);
      if (!doc.ok() || !(*doc)["critical_path"].is_object()) continue;
      const Json& path = (*doc)["critical_path"];
      const Json& hops = path["hops"];
      std::string chain;
      for (size_t i = 0; i < hops.size(); ++i) {
        const Json& hop = hops.at(i);
        if (!chain.empty()) chain += " &#8594; ";
        chain += EscapeText(hop["name"].AsString()) +
                 StrFormat(" (%.0f%%)", hop["share"].AsNumber() * 100.0);
      }
      if (chain.empty()) continue;
      rows += "<tr><td>" + EscapeText(rec.label) + "</td><td>" + chain +
              "</td><td class=\"num\">" +
              Num(path["total_s"].AsNumber(), "%.4f") + "</td></tr>\n";
    }
  }
  if (rows.empty()) return "";
  return "<h2>Critical paths</h2>\n"
         "<table><tr><th>cell</th><th>source &#8594; sink chain"
         "</th><th>total s/tuple</th></tr>\n" +
         rows + "</table>\n";
}

/// CPU-profile section harvested from profile.json bundles: one flame
/// graph per profiled cell plus a "CPU vs virtual time" table that
/// cross-checks measured CPU shares against the cost model's service-cost
/// shares (busy_time_s from the bundle's metrics.json) — the calibration
/// signal for the sim-vs-real loop. Every rendered flame graph counts into
/// *charts so the pdsp-report marker stays equal to the <svg> count.
std::string ProfileSection(const std::vector<AppGroup>& groups,
                           size_t* charts) {
  std::string html;
  for (const AppGroup& group : groups) {
    for (const auto& entry : group.by_parallelism) {
      const RunRecord& rec = entry.second;
      if (rec.artifact_dir.empty()) continue;
      Result<std::string> text =
          ReadTextFile(rec.artifact_dir + "/profile.json");
      if (!text.ok()) continue;
      Result<Json> doc = Json::Parse(*text);
      if (!doc.ok()) continue;
      Result<prof::CpuProfile> profile = prof::CpuProfile::FromJson(*doc);
      if (!profile.ok() || profile->empty()) continue;

      svg::FlameGraphSpec spec;
      // Raw label is fine here: Canvas::Text escapes its content.
      spec.title = StrFormat("%s: CPU flame graph (%.4fs sampled @ %.0f Hz)",
                             rec.label.c_str(), profile->total_cpu_s,
                             profile->hz);
      for (const prof::FoldedSample& f : profile->folded) {
        spec.stacks.emplace_back(f.stack, f.cpu_s);
      }
      html += "<h2>CPU flame graph: " + EscapeText(rec.label) + "</h2>\n";
      html += svg::RenderFlameGraph(spec) + "\n";
      ++*charts;

      // Virtual-time service shares from the bundle's metrics.json.
      std::map<std::string, double> busy;
      double busy_total = 0.0;
      Result<std::string> metrics_text =
          ReadTextFile(rec.artifact_dir + "/metrics.json");
      if (metrics_text.ok()) {
        Result<Json> metrics = Json::Parse(*metrics_text);
        if (metrics.ok()) {
          const Json& ops = (*metrics)["operators"];
          for (size_t i = 0; ops.is_array() && i < ops.size(); ++i) {
            const Json& op = ops.at(i);
            if (!op["name"].is_string() || !op["busy_time_s"].is_number()) {
              continue;
            }
            const double v = op["busy_time_s"].AsNumber();
            if (!std::isfinite(v)) continue;
            busy[op["name"].AsString()] += v;
            busy_total += v;
          }
        }
      }
      double cpu_op_total = 0.0;
      for (const prof::FrameTotal& op : profile->operators) {
        if (op.name != "(none)") cpu_op_total += op.cpu_s;
      }
      constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
      std::string rows;
      for (const prof::FrameTotal& op : profile->operators) {
        if (op.name == "(none)") continue;
        const double cpu_share =
            cpu_op_total > 0.0 ? op.cpu_s / cpu_op_total * 100.0 : kNaN;
        auto it = busy.find(op.name);
        const double virt_share = it != busy.end() && busy_total > 0.0
                                      ? it->second / busy_total * 100.0
                                      : kNaN;
        rows += "<tr><td>" + EscapeText(op.name) + "</td><td class=\"num\">" +
                Num(op.cpu_s, "%.4f") + "</td><td class=\"num\">" +
                StrFormat("%lld", static_cast<long long>(op.samples)) +
                "</td><td class=\"num\">" + Num(cpu_share, "%.1f") +
                "%</td><td class=\"num\">" + Num(virt_share, "%.1f") +
                "%</td><td class=\"num\">" +
                Num(cpu_share - virt_share, "%+.1f") + "</td></tr>\n";
      }
      if (!rows.empty()) {
        html += "<h2>CPU vs virtual time: " + EscapeText(rec.label) +
                "</h2>\n"
                "<table><tr><th>operator</th><th>CPU s</th><th>samples</th>"
                "<th>measured CPU share</th><th>modeled service share</th>"
                "<th>&#916; pp</th></tr>\n" +
                rows + "</table>\n";
      }
      html += "<p class=\"meta\">" +
              StrFormat("%lld samples (%lld dropped, %lld truncated "
                        "frames) &#183; sampler overhead %.4fs CPU",
                        static_cast<long long>(profile->samples),
                        static_cast<long long>(profile->dropped),
                        static_cast<long long>(profile->truncated),
                        profile->sampler_cpu_s) +
              "</p>\n";
    }
  }
  return html;
}

/// Memory-profile section harvested from memory.json bundles: an
/// allocation flame graph (widths ∝ sampled bytes) per profiled cell, a
/// live-heap timeline with the peak annotated, and a bytes-per-tuple table
/// — the per-operator allocation budget that bench_gate.sh gates on. Every
/// chart counts into *charts so the pdsp-report marker stays equal to the
/// <svg> count.
std::string MemorySection(const std::vector<AppGroup>& groups,
                          size_t* charts) {
  constexpr double kMiB = 1024.0 * 1024.0;
  std::string html;
  for (const AppGroup& group : groups) {
    for (const auto& entry : group.by_parallelism) {
      const RunRecord& rec = entry.second;
      if (rec.artifact_dir.empty()) continue;
      Result<std::string> text =
          ReadTextFile(rec.artifact_dir + "/memory.json");
      if (!text.ok()) continue;
      Result<Json> doc = Json::Parse(*text);
      if (!doc.ok()) continue;
      Result<mem::MemProfile> profile = mem::MemProfile::FromJson(*doc);
      if (!profile.ok() || profile->empty()) continue;

      svg::FlameGraphSpec spec;
      spec.title = StrFormat(
          "%s: allocation flame graph (%.1f MiB sampled, 1/%lld KiB)",
          rec.label.c_str(), profile->total_bytes / kMiB,
          static_cast<long long>(profile->sample_interval_bytes / 1024));
      for (const mem::MemFolded& f : profile->folded) {
        spec.stacks.emplace_back(f.stack, static_cast<double>(f.bytes));
      }
      html += "<h2>Allocation flame graph: " + EscapeText(rec.label) +
              "</h2>\n";
      html += svg::RenderFlameGraph(spec) + "\n";
      ++*charts;

      if (profile->timeline.size() >= 2) {
        svg::LineChartSpec chart;
        chart.title =
            StrFormat("%s: live heap over run (peak %.1f MiB)",
                      rec.label.c_str(), profile->peak_heap_bytes / kMiB);
        chart.x_label = "wall time (s)";
        chart.y_label = "live MiB (sampled)";
        svg::Series series;
        series.label = "live heap";
        for (const mem::MemTimelinePoint& p : profile->timeline) {
          series.points.emplace_back(p.t_s, p.live_bytes / kMiB);
        }
        chart.series.push_back(std::move(series));
        html += svg::RenderLineChart(chart) + "\n";
        ++*charts;
      }

      std::string rows;
      for (const mem::MemFrameTotal& op : profile->operators) {
        rows += "<tr><td>" + EscapeText(op.name) + "</td><td class=\"num\">" +
                Num(op.total_bytes / kMiB, "%.2f") +
                "</td><td class=\"num\">" + Num(op.live_bytes / kMiB, "%.2f") +
                "</td><td class=\"num\">" +
                StrFormat("%lld", static_cast<long long>(op.allocs)) +
                "</td><td class=\"num\">" +
                StrFormat("%lld", static_cast<long long>(op.tuples)) +
                "</td><td class=\"num\">" +
                (op.tuples > 0 ? Num(op.bytes_per_tuple, "%.1f")
                               : std::string("&#8212;")) +
                "</td></tr>\n";
      }
      if (!rows.empty()) {
        html += "<h2>Bytes per tuple: " + EscapeText(rec.label) +
                "</h2>\n"
                "<table><tr><th>operator</th><th>alloc MiB</th>"
                "<th>live MiB</th><th>~allocs</th><th>tuples</th>"
                "<th>bytes/tuple</th></tr>\n" +
                rows + "</table>\n";
      }
      html += "<p class=\"meta\">" +
              StrFormat("%lld allocation samples (%lld torn, %lld table "
                        "overflow) &#183; %.1f MiB allocated, %.1f MiB live "
                        "at end &#183; %.1f bytes/tuple over %lld tuples",
                        static_cast<long long>(profile->samples),
                        static_cast<long long>(profile->dropped),
                        static_cast<long long>(profile->table_overflow),
                        profile->total_bytes / kMiB,
                        profile->live_bytes / kMiB, profile->bytes_per_tuple,
                        static_cast<long long>(profile->tuples_processed)) +
              "</p>\n";
    }
  }
  return html;
}

const char* VerdictClass(MetricVerdict verdict) {
  switch (verdict) {
    case MetricVerdict::kImproved: return "improved";
    case MetricVerdict::kRegressed: return "regressed";
    case MetricVerdict::kUnchanged: break;
  }
  return "unchanged";
}

/// Compare section: newest record per label on both sides, diffed with the
/// noise-aware engine.
std::string CompareSection(const std::vector<RunRecord>& records,
                           const std::vector<RunRecord>& baseline,
                           const ReportOptions& options, size_t* compared) {
  std::map<std::string, RunRecord> base_by_label;
  for (const RunRecord& rec : baseline) {
    if (!IsSummaryLabel(rec.label)) base_by_label[rec.label] = rec;
  }
  std::map<std::string, RunRecord> cand_by_label;
  for (const RunRecord& rec : records) {
    if (!IsSummaryLabel(rec.label)) cand_by_label[rec.label] = rec;
  }
  std::string rows;
  for (const auto& entry : cand_by_label) {
    auto it = base_by_label.find(entry.first);
    if (it == base_by_label.end()) continue;
    ComparisonReport report =
        CompareRecords(it->second, entry.second, options.compare);
    ++*compared;
    for (const MetricDelta& m : report.metrics) {
      rows += "<tr><td>" + EscapeText(entry.first) + "</td><td>" +
              EscapeText(m.metric) + "</td><td class=\"num\">" +
              Num(m.baseline) + "</td><td class=\"num\">" + Num(m.candidate) +
              "</td><td class=\"num\">" + Num(m.delta_frac * 100.0, "%+.1f") +
              "%</td><td class=\"" + VerdictClass(m.verdict) + "\">" +
              MetricVerdictToString(m.verdict) + "</td></tr>\n";
    }
    if (!report.plan_hash_match) {
      rows += "<tr><td>" + EscapeText(entry.first) +
              "</td><td colspan=\"5\" class=\"regressed\">plan hash differs "
              "from baseline &#8212; deltas may be apples-to-oranges"
              "</td></tr>\n";
    }
  }
  if (rows.empty()) {
    return "<h2>Compare</h2><p>No labels in common with the baseline.</p>\n";
  }
  return "<h2>Compare vs baseline</h2>\n"
         "<table><tr><th>label</th><th>metric</th><th>baseline</th>"
         "<th>candidate</th><th>&#916;</th><th>verdict</th></tr>\n" +
         rows + "</table>\n";
}

std::string SummaryTable(const std::vector<RunRecord>& records) {
  std::string rows;
  for (const RunRecord& rec : records) {
    if (!IsSummaryLabel(rec.label)) continue;
    std::string codes;
    for (const std::string& code : rec.diagnosis_codes) {
      if (!codes.empty()) codes += ", ";
      codes += code;
    }
    rows += "<tr><td>" + EscapeText(rec.label) + "</td><td>" +
            EscapeText(rec.timestamp_utc) + "</td><td class=\"num\">" +
            StrFormat("%d", rec.parallelism) + "</td><td class=\"num\">" +
            StrFormat("%d", rec.repeats) + "</td><td class=\"num\">" +
            Num(rec.host_wall_s, "%.2f") + "</td><td>" +
            EscapeText(codes.empty() ? "-" : codes) + "</td></tr>\n";
  }
  if (rows.empty()) return "";
  return "<h2>Sweep summaries</h2>\n"
         "<table><tr><th>sweep</th><th>when</th><th>jobs</th><th>cells</th>"
         "<th>wall s</th><th>monitor codes</th></tr>\n" +
         rows + "</table>\n";
}

}  // namespace

std::string AppOfLabel(const std::string& label) {
  const size_t slash = label.find('/');
  return slash == std::string::npos ? label : label.substr(0, slash);
}

bool IsSummaryLabel(const std::string& label) {
  return label == "sweep" || label.rfind("sweep/", 0) == 0;
}

Result<std::vector<RunRecord>> LoadRecordsForReport(const std::string& path) {
  std::string resolved = path;
  if (IsDirectory(path)) resolved = path + "/ledger.jsonl";
  if (!EndsWith(resolved, ".jsonl")) {
    // Try the single-record baseline layout first; fall back to JSONL so a
    // ledger with an unconventional name still loads.
    Result<std::string> text = ReadTextFile(resolved);
    if (!text.ok()) return text.status();
    Result<Json> doc = Json::Parse(*text);
    if (doc.ok()) {
      Result<RunRecord> rec = RunRecord::FromJson(*doc);
      if (rec.ok()) return std::vector<RunRecord>{*rec};
    }
  }
  Result<std::vector<RunRecord>> records = RunLedger(resolved).Load();
  if (!records.ok()) return records.status();
  if (records->empty()) {
    return Status::NotFound("no records in " + resolved);
  }
  return records;
}

Result<ReportResult> GenerateReport(const std::vector<RunRecord>& records,
                                    const ReportOptions& options) {
  std::vector<AppGroup> groups = GroupByApp(records, options);
  if (groups.empty()) {
    return Status::NotFound(
        options.app_filter.empty()
            ? "no measurement records to report"
            : "no records match --app=" + options.app_filter);
  }

  ReportResult out;
  for (const AppGroup& group : groups) {
    out.stats.records += group.records.size();
  }
  out.stats.apps = groups.size();

  std::string charts;
  for (const AppGroup& group : groups) {
    charts += "<h2>" + EscapeText(group.app) + "</h2>\n<div class=\"row\">\n";
    charts += ThroughputChart(group) + "\n";
    charts += PercentileChart(group) + "\n";
    charts += BreakdownChart(group) + "\n";
    charts += "</div>\n";
    out.stats.charts += 3;
  }
  charts += SweepHeatmap(groups, options) + "\n";
  out.stats.charts += 1;

  std::string sections = CriticalPathTable(groups);
  sections += ProfileSection(groups, &out.stats.charts);
  sections += MemorySection(groups, &out.stats.charts);
  sections += SummaryTable(records);
  if (!options.against_path.empty()) {
    Result<std::vector<RunRecord>> baseline =
        LoadRecordsForReport(options.against_path);
    if (!baseline.ok()) return baseline.status();
    sections +=
        CompareSection(records, *baseline, options, &out.stats.compared);
  }

  out.html =
      "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>" +
      EscapeText(options.title) +
      "</title>\n<style>\n"
      "body{font-family:sans-serif;margin:24px;color:#222;max-width:1260px}\n"
      "h1{font-size:22px}h2{font-size:16px;margin-top:28px}\n"
      "table{border-collapse:collapse;font-size:13px}\n"
      "td,th{border:1px solid #ccc;padding:4px 8px;text-align:left}\n"
      "th{background:#f2f2f2}td.num{text-align:right;"
      "font-variant-numeric:tabular-nums}\n"
      "td.improved{color:#1a7f37}td.regressed{color:#c00;font-weight:bold}\n"
      "td.unchanged{color:#666}\n"
      ".row{display:flex;flex-wrap:wrap;gap:12px}\n"
      "svg{border:1px solid #eee;background:#fff}\n"
      ".meta{color:#666;font-size:13px}\n"
      "</style>\n</head>\n<body>\n" +
      StrFormat("<!-- pdsp-report charts=%zu records=%zu apps=%zu -->\n",
                out.stats.charts, out.stats.records, out.stats.apps) +
      "<h1>" + EscapeText(options.title) + "</h1>\n<p class=\"meta\">" +
      StrFormat("%zu records, %zu apps &#183; generated %s &#183; "
                "pdspbench report",
                out.stats.records, out.stats.apps,
                EscapeText(NowUtcIso8601()).c_str()) +
      "</p>\n" + charts + sections + "</body>\n</html>\n";
  return out;
}

Result<ReportStats> WriteReportFile(const std::string& input_path,
                                    const std::string& out_path,
                                    const ReportOptions& options) {
  Result<std::vector<RunRecord>> records = LoadRecordsForReport(input_path);
  if (!records.ok()) return records.status();
  Result<ReportResult> report = GenerateReport(*records, options);
  if (!report.ok()) return report.status();
  Status st = WriteTextFileAtomic(out_path, report->html);
  if (!st.ok()) return st;
  return report->stats;
}

}  // namespace obs
}  // namespace pdsp
