// Executable operator instances. Each physical task owns one
// OperatorInstance that really processes tuples — filters compare values,
// windows maintain keyed panes, joins probe keyed buffers — so simulated
// runs produce functionally correct results while the simulator supplies
// the timing.

#ifndef PDSP_RUNTIME_OPERATORS_H_
#define PDSP_RUNTIME_OPERATORS_H_

#include <limits>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/data/batch.h"
#include "src/query/plan.h"
#include "src/runtime/element.h"

namespace pdsp {

/// \brief One parallel instance of a non-source operator.
class OperatorInstance {
 public:
  virtual ~OperatorInstance() = default;

  /// Processes one element arriving on `input_port` (joins: 0 = left,
  /// 1 = right) at virtual time `now`; appends outputs to *out.
  virtual Status Process(const StreamElement& element, int input_port,
                         double now, std::vector<StreamElement>* out) = 0;

  /// Processes rows [row_begin, row_end) of a columnar batch, appending
  /// output rows to *out (whose layout is this operator's output layout).
  /// The base implementation materializes each row into a StreamElement and
  /// delegates to Process — the row-view adapter stateful operators and
  /// UDOs rely on. Vectorizable operators (filter, map, flatMap, window
  /// aggregation, sink) override it with columnar kernels
  /// (src/runtime/kernels.h) that are bit-identical to the scalar path:
  /// same outputs, same order, same RNG draw sequence.
  virtual Status ProcessBatch(const data::Batch& in, size_t row_begin,
                              size_t row_end, int input_port, double now,
                              data::Batch* out);

  /// Fires any timers due at or before `now` (window pane emission).
  virtual void OnTimer(double now, std::vector<StreamElement>* out) {
    (void)now;
    (void)out;
  }

  /// Earliest pending timer; +infinity when none.
  virtual double NextTimerTime() const {
    return std::numeric_limits<double>::infinity();
  }

  /// Emits whatever partial state remains at end of stream.
  virtual void Flush(double now, std::vector<StreamElement>* out) {
    (void)now;
    (void)out;
  }

  /// Elements currently buffered in operator state (windows/joins); used by
  /// the simulator to account for state-size effects and by tests.
  virtual size_t StateSize() const { return 0; }

  /// Elements dropped because they arrived after their window had already
  /// fired (late data under queueing delay, as in Flink's default policy).
  virtual int64_t LateDrops() const { return 0; }
};

/// Instantiates the runtime for (op, instance) of a validated plan.
/// Sources are driven by the simulator itself and are invalid here.
Result<std::unique_ptr<OperatorInstance>> CreateOperatorInstance(
    const LogicalPlan& plan, LogicalPlan::OpId op, int instance,
    uint64_t seed);

/// Evaluates `value <op> literal` exactly as FilterExec does (shared with
/// tests and selectivity checks).
bool EvaluateFilter(const Value& value, FilterOp op, const Value& literal);

}  // namespace pdsp

#endif  // PDSP_RUNTIME_OPERATORS_H_
