// Fluent construction of logical plans. Errors are latched: the first
// failure is remembered and reported by Build(), so call sites can chain
// without checking every step.

#ifndef PDSP_QUERY_BUILDER_H_
#define PDSP_QUERY_BUILDER_H_

#include <string>
#include <utility>

#include "src/query/plan.h"

namespace pdsp {

/// \brief Builder for LogicalPlan with one method per operator kind.
///
/// Example (2-way join, Figure 2 left):
/// \code
///   PlanBuilder b;
///   auto s1 = b.Source("src1", spec1, arrival1);
///   auto s2 = b.Source("src2", spec2, arrival2);
///   auto f1 = b.Filter("f1", s1, 0, FilterOp::kGt, Value(10));
///   auto f2 = b.Filter("f2", s2, 0, FilterOp::kLt, Value(90));
///   auto j = b.WindowJoin("join", f1, f2, 1, 1, window);
///   b.Sink("sink", j);
///   PDSP_ASSIGN_OR_RETURN(LogicalPlan plan, b.Build());
/// \endcode
class PlanBuilder {
 public:
  using OpId = LogicalPlan::OpId;

  /// Adds a source over the given stream/arrival binding.
  OpId Source(const std::string& name, StreamSpec stream,
              ArrivalProcess::Options arrival, int parallelism = 1);

  /// Adds a comparison filter on `field` of the input.
  OpId Filter(const std::string& name, OpId input, size_t field, FilterOp op,
              Value literal, int parallelism = 1);

  /// Adds a 1:1 transformation.
  OpId Map(const std::string& name, OpId input, int parallelism = 1);

  /// Adds a 1:N transformation with mean fanout.
  OpId FlatMap(const std::string& name, OpId input, double fanout,
               int parallelism = 1);

  /// Adds a windowed aggregate; pass OperatorDescriptor::kNoKey for a global
  /// (un-keyed) window.
  OpId WindowAggregate(const std::string& name, OpId input, WindowSpec window,
                       AggregateFn fn, size_t agg_field,
                       size_t key_field = OperatorDescriptor::kNoKey,
                       int parallelism = 1);

  /// Adds a windowed equi-join of two inputs.
  OpId WindowJoin(const std::string& name, OpId left, OpId right,
                  size_t left_key, size_t right_key, WindowSpec window,
                  int parallelism = 1);

  /// Adds a user-defined operator resolved by `kind` at execution time.
  OpId Udo(const std::string& name, OpId input, const std::string& kind,
           double cost_factor = 1.0, double selectivity = 1.0,
           bool stateful = false, int parallelism = 1);

  /// Adds a UDO whose output schema differs from its input.
  OpId UdoWithSchema(const std::string& name, OpId input,
                     const std::string& kind, std::vector<Field> out_fields,
                     double cost_factor = 1.0, double selectivity = 1.0,
                     bool stateful = false, int parallelism = 1);

  /// Adds the sink.
  OpId Sink(const std::string& name, OpId input, int parallelism = 1);

  /// Overrides the input partitioning of an operator (validation still forces
  /// hash for keyed operators).
  PlanBuilder& WithPartitioning(OpId id, Partitioning partitioning);

  /// Sets the estimated selectivity of a filter (generators use this when
  /// they know the conditional selectivity by construction).
  PlanBuilder& WithSelectivityHint(OpId id, double selectivity);

  /// Connects an extra edge (for joins built operator-first).
  PlanBuilder& ConnectExtra(OpId from, OpId to);

  /// Skips the static-analysis gate in Build(): the plan is still
  /// structurally validated, but error-severity lint findings (bad window
  /// specs, join key type mismatches, ...) no longer reject it. For tests
  /// and tools that deliberately build broken plans.
  PlanBuilder& SkipAnalysis();

  /// Validates the plan, runs the error-severity analysis passes
  /// (pdsp::analysis; disable with SkipAnalysis) and returns the plan or
  /// the first latched error / analysis failure.
  Result<LogicalPlan> Build();

  /// First latched error (OK if none so far).
  const Status& status() const { return status_; }

 private:
  OpId Add(OperatorDescriptor op, std::vector<OpId> inputs);

  LogicalPlan plan_;
  Status status_ = Status::OK();
  bool analyze_ = true;
};

}  // namespace pdsp

#endif  // PDSP_QUERY_BUILDER_H_
