#include "src/obs/diagnose.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/string_util.h"

namespace pdsp {
namespace obs {

namespace {

std::string Ms(double seconds) {
  return StrFormat("%.3fms", seconds * 1e3);
}

std::string Pct(double fraction) {
  return StrFormat("%.0f%%", fraction * 100.0);
}

/// Parallelism that would bring per-instance utilization down to `target`,
/// given the observed (or analytic) utilization at parallelism `p`.
int SuggestParallelism(int p, double utilization, double target) {
  const double t = std::max(1e-3, target);
  const int suggested =
      static_cast<int>(std::ceil(static_cast<double>(p) * utilization / t));
  return std::max(1, suggested);
}

}  // namespace

CriticalPath ComputeCriticalPath(const LogicalPlan& plan,
                                 const SimResult& result) {
  CriticalPath path;
  if (!plan.validated() ||
      result.op_stats.size() != plan.NumOperators()) {
    return path;
  }
  // Longest path by summed per-operator traversal cost, over the topological
  // order. `best[id]` is the max cost of any source→id chain including id.
  std::vector<double> best(plan.NumOperators(), 0.0);
  std::vector<LogicalPlan::OpId> pred(plan.NumOperators(), -1);
  for (const LogicalPlan::OpId id : plan.TopologicalOrder()) {
    double in_best = 0.0;
    LogicalPlan::OpId in_pred = -1;
    for (const LogicalPlan::OpId up : plan.Inputs(id)) {
      // First input or strictly better: earlier-id ties win (stable).
      if (in_pred == -1 || best[up] > in_best) {
        in_best = best[up];
        in_pred = up;
      }
    }
    best[id] = in_best + result.op_stats[id].latency.MeanPathCost();
    pred[id] = in_pred;
  }
  // Walk back from the sink.
  std::vector<LogicalPlan::OpId> chain;
  for (LogicalPlan::OpId id = plan.SinkId(); id != -1; id = pred[id]) {
    chain.push_back(id);
  }
  std::reverse(chain.begin(), chain.end());
  path.total_s = best[plan.SinkId()];
  for (const LogicalPlan::OpId id : chain) {
    CriticalPathHop hop;
    hop.op = id;
    hop.name = plan.op(id).name;
    hop.cost_s = result.op_stats[id].latency.MeanPathCost();
    hop.share = path.total_s > 0.0 ? hop.cost_s / path.total_s : 0.0;
    path.hops.push_back(std::move(hop));
  }
  return path;
}

std::string CriticalPath::ToString() const {
  if (hops.empty()) return "(no critical path)";
  std::string out;
  for (size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) out += " -> ";
    out += StrFormat("%s (%s)", hops[i].name.c_str(),
                     Pct(hops[i].share).c_str());
  }
  out += StrFormat(" [total %s]", Ms(total_s).c_str());
  return out;
}

Json CriticalPath::ToJson() const {
  Json j = Json::Object();
  j.Set("total_s", Json::Number(total_s));
  Json arr = Json::Array();
  for (const CriticalPathHop& h : hops) {
    Json hop = Json::Object();
    hop.Set("op", Json::Int(h.op));
    hop.Set("name", Json::Str(h.name));
    hop.Set("cost_s", Json::Number(h.cost_s));
    hop.Set("share", Json::Number(h.share));
    arr.Append(std::move(hop));
  }
  j.Set("hops", std::move(arr));
  return j;
}

namespace {

/// R101/R102/R105: per-operator utilization rules.
void RunUtilizationRules(const LogicalPlan& plan, const SimResult& result,
                         const AnalyticEstimate* analytic,
                         const DiagnoseOptions& opt,
                         analysis::AnalysisReport* report,
                         bool* any_saturated) {
  for (size_t i = 0; i < result.op_stats.size(); ++i) {
    const auto id = static_cast<LogicalPlan::OpId>(i);
    const OperatorDescriptor& op = plan.op(id);
    const OperatorRunStats& s = result.op_stats[i];

    // Fix hints use the analytic (uncapped) utilization when available —
    // a saturated instance measures ~1.0 busy fraction no matter how far
    // past capacity it is, but the queueing model knows the true rho.
    const double rho =
        analytic != nullptr && analytic->per_op[i].utilization > 0.0
            ? analytic->per_op[i].utilization
            : s.utilization;

    if (s.utilization >= opt.saturation_util) {
      *any_saturated = true;
      const int to = std::max(
          s.parallelism + 1,
          SuggestParallelism(s.parallelism, rho, opt.target_utilization));
      analysis::Diagnostic d;
      d.severity = analysis::Severity::kError;
      d.code = "PDSP-R101";
      d.pass = "saturated-operator";
      d.op = id;
      d.op_name = op.name;
      d.message = StrFormat(
          "operator is saturated: mean instance utilization %.2f "
          "(peak queue %zu tuples)",
          s.utilization, s.max_queue_tuples);
      d.hint = StrFormat("raise parallelism of `%s` from %d to ~%d",
                         op.name.c_str(), s.parallelism, to);
      report->Add(std::move(d));
    } else if (s.parallelism >= 2 &&
               s.max_instance_util >= opt.skew_ratio * s.utilization &&
               s.max_instance_util >= opt.target_utilization) {
      // Hot instance far above the mean: key skew (hash partitioning sends
      // a heavy key to one instance). Scaling by the mean would miss it.
      const int to = std::max(
          s.parallelism + 1,
          SuggestParallelism(s.parallelism, s.max_instance_util,
                             opt.target_utilization));
      analysis::Diagnostic d;
      d.severity = analysis::Severity::kWarning;
      d.code = "PDSP-R102";
      d.pass = "skew-bound";
      d.op = id;
      d.op_name = op.name;
      d.message = StrFormat(
          "skew-bound: hottest instance at %.2f utilization vs %.2f mean "
          "(%.1fx)",
          s.max_instance_util, s.utilization,
          s.max_instance_util / std::max(1e-9, s.utilization));
      d.hint = StrFormat(
          "raise parallelism of `%s` from %d to ~%d, or reduce key skew "
          "(hot keys all hash to one instance)",
          op.name.c_str(), s.parallelism, to);
      report->Add(std::move(d));
    }

    if (op.type != OperatorType::kSource && op.type != OperatorType::kSink &&
        s.parallelism > 1 && s.utilization <= opt.over_provision_util &&
        s.tuples_in > 0) {
      const int to = SuggestParallelism(s.parallelism, s.utilization,
                                        opt.target_utilization);
      analysis::Diagnostic d;
      d.severity = analysis::Severity::kInfo;
      d.code = "PDSP-R105";
      d.pass = "over-provisioned";
      d.op = id;
      d.op_name = op.name;
      d.message = StrFormat(
          "over-provisioned: %d instances at %.3f mean utilization",
          s.parallelism, s.utilization);
      d.hint = StrFormat("reduce parallelism of `%s` from %d to ~%d",
                         op.name.c_str(), s.parallelism,
                         std::min(to, s.parallelism - 1));
      report->Add(std::move(d));
    }
  }
}

/// R103: shuffle-bound — network transit dominates the breakdown.
void RunShuffleRule(const SimResult& result, const DiagnoseOptions& opt,
                    analysis::AnalysisReport* report) {
  const LatencyBreakdown& b = result.breakdown;
  if (b.empty() || b.total_s <= 0.0) return;
  const double frac = b.network_s / b.total_s;
  if (frac < opt.shuffle_fraction) return;
  analysis::Diagnostic d;
  d.severity = analysis::Severity::kWarning;
  d.code = "PDSP-R103";
  d.pass = "shuffle-bound";
  d.message = StrFormat(
      "shuffle-bound: network transit is %s of end-to-end latency "
      "(%s of %s)",
      Pct(frac).c_str(), Ms(b.network_s).c_str(), Ms(b.total_s).c_str());
  d.hint =
      "co-locate heavy neighbours (placement), enable forward chaining, or "
      "lower parallelism so fewer hops cross node boundaries";
  report->Add(std::move(d));
}

/// R104: source-limited — generation was throttled although nothing in the
/// pipeline is saturated (in-flight cap or window state holds tuples).
void RunSourceLimitedRule(const LogicalPlan& plan, const SimResult& result,
                          bool any_saturated,
                          analysis::AnalysisReport* report) {
  if (result.backpressure_skipped <= 0 || any_saturated) return;
  const std::vector<LogicalPlan::OpId> sources = plan.SourceIds();
  analysis::Diagnostic d;
  d.severity = analysis::Severity::kWarning;
  d.code = "PDSP-R104";
  d.pass = "source-limited";
  d.op = sources.empty() ? -1 : sources.front();
  d.op_name = d.op >= 0 ? plan.op(d.op).name : "";
  d.message = StrFormat(
      "source-limited: backpressure skipped %lld tuples while no operator "
      "is saturated (in-flight cap reached, likely window/join state)",
      static_cast<long long>(result.backpressure_skipped));
  d.hint =
      "raise SimOptions::max_in_flight_tuples, shrink windows, or lower the "
      "source rate — measured throughput understates capacity";
  report->Add(std::move(d));
}

/// R106: watermark-stalled — an operator's watermark lag grows monotonically
/// through the trailing samples, so event time stopped advancing.
void RunWatermarkRule(const LogicalPlan& plan, const SimResult& result,
                      const DiagnoseOptions& opt,
                      analysis::AnalysisReport* report) {
  if (result.timeseries.empty()) return;
  // Max lag per (op name, sample time), rows are in time order.
  std::map<std::string, std::vector<double>> lag_by_op;
  std::map<std::string, double> last_time;
  for (const TimeSeriesRow& row : result.timeseries.rows()) {
    auto& lags = lag_by_op[row.op];
    auto& t = last_time[row.op];
    if (lags.empty() || row.time_s > t) {
      lags.push_back(row.watermark_lag_s);
      t = row.time_s;
    } else {
      lags.back() = std::max(lags.back(), row.watermark_lag_s);
    }
  }
  for (size_t i = 0; i < plan.NumOperators(); ++i) {
    const auto id = static_cast<LogicalPlan::OpId>(i);
    const OperatorDescriptor& op = plan.op(id);
    if (op.type == OperatorType::kSource) continue;  // wm is self-driven
    auto it = lag_by_op.find(op.name);
    if (it == lag_by_op.end()) continue;
    const std::vector<double>& lags = it->second;
    const int n = opt.stall_min_samples;
    if (static_cast<int>(lags.size()) < n) continue;
    bool monotone = true;
    for (size_t k = lags.size() - n + 1; k < lags.size(); ++k) {
      if (lags[k] < lags[k - 1]) {
        monotone = false;
        break;
      }
    }
    const double final_lag = lags.back();
    const double growth = final_lag - lags[lags.size() - n];
    if (!monotone || growth <= 0.0 || final_lag < opt.stall_min_lag_s) {
      continue;
    }
    analysis::Diagnostic d;
    d.severity = analysis::Severity::kWarning;
    d.code = "PDSP-R106";
    d.pass = "watermark-stalled";
    d.op = id;
    d.op_name = op.name;
    d.message = StrFormat(
        "watermark stalled: input watermark lag grew monotonically over the "
        "last %d samples to %.2fs",
        n, final_lag);
    d.hint =
        "an upstream channel stopped advancing event time — look for an "
        "idle source instance or a starved join input; windows downstream "
        "cannot fire until it resumes";
    report->Add(std::move(d));
  }
}

}  // namespace

Result<Diagnosis> DiagnoseRun(const LogicalPlan& plan, const Cluster& cluster,
                              const SimResult& result,
                              const DiagnoseOptions& options) {
  if (!plan.validated()) {
    return Status::InvalidArgument("DiagnoseRun requires a validated plan");
  }
  if (result.op_stats.size() != plan.NumOperators()) {
    return Status::InvalidArgument(
        "SimResult does not match plan (op_stats size mismatch)");
  }
  Diagnosis diag;
  diag.breakdown = result.breakdown;
  diag.critical_path = ComputeCriticalPath(plan, result);

  // Analytic cross-check at the same parallelism; optional (UDO-heavy plans
  // may fall outside the model).
  AnalyticEstimate analytic;
  const AnalyticEstimate* analytic_ptr = nullptr;
  Result<AnalyticEstimate> est =
      EstimateLatencyAnalytically(plan, cluster, options.analytic);
  if (est.ok()) {
    analytic = std::move(est).value();
    analytic_ptr = &analytic;
    diag.analytic_latency_s = analytic.latency_s;
    diag.analytic_max_utilization = analytic.max_utilization;
    for (size_t i = 0; i < analytic.per_op.size(); ++i) {
      if (diag.analytic_bottleneck_op < 0 ||
          analytic.per_op[i].utilization >
              analytic.per_op[diag.analytic_bottleneck_op].utilization) {
        diag.analytic_bottleneck_op = static_cast<LogicalPlan::OpId>(i);
      }
    }
  }

  bool any_saturated = false;
  RunUtilizationRules(plan, result, analytic_ptr, options, &diag.report,
                      &any_saturated);
  RunShuffleRule(result, options, &diag.report);
  RunSourceLimitedRule(plan, result, any_saturated, &diag.report);
  RunWatermarkRule(plan, result, options, &diag.report);
  diag.report.Finalize();
  return diag;
}

Json Diagnosis::ToJson() const {
  Json j = Json::Object();
  Json b = Json::Object();
  b.Set("samples", Json::Int(breakdown.samples));
  b.Set("total_s", Json::Number(breakdown.total_s));
  b.Set("source_batch_s", Json::Number(breakdown.source_batch_s));
  b.Set("network_s", Json::Number(breakdown.network_s));
  b.Set("queue_s", Json::Number(breakdown.queue_s));
  b.Set("service_s", Json::Number(breakdown.service_s));
  b.Set("window_s", Json::Number(breakdown.window_s));
  j.Set("breakdown", std::move(b));
  j.Set("critical_path", critical_path.ToJson());
  j.Set("report", report.ToJson());
  Json a = Json::Object();
  a.Set("latency_s", Json::Number(analytic_latency_s));
  a.Set("max_utilization", Json::Number(analytic_max_utilization));
  a.Set("bottleneck_op", Json::Int(analytic_bottleneck_op));
  j.Set("analytic", std::move(a));
  if (!dataflow.is_null()) j.Set("dataflow", dataflow);
  return j;
}

std::string Diagnosis::ToString() const {
  std::string out;
  if (breakdown.empty()) {
    out += "latency breakdown: (no post-warm-up sink records)\n";
  } else {
    const double t = std::max(1e-12, breakdown.total_s);
    out += StrFormat(
        "latency breakdown (mean over %lld results): total %s = "
        "source-batch %s (%s) + network %s (%s) + queue %s (%s) + "
        "service %s (%s) + window %s (%s)\n",
        static_cast<long long>(breakdown.samples),
        Ms(breakdown.total_s).c_str(), Ms(breakdown.source_batch_s).c_str(),
        Pct(breakdown.source_batch_s / t).c_str(),
        Ms(breakdown.network_s).c_str(),
        Pct(breakdown.network_s / t).c_str(), Ms(breakdown.queue_s).c_str(),
        Pct(breakdown.queue_s / t).c_str(), Ms(breakdown.service_s).c_str(),
        Pct(breakdown.service_s / t).c_str(), Ms(breakdown.window_s).c_str(),
        Pct(breakdown.window_s / t).c_str());
  }
  out += "critical path: " + critical_path.ToString() + "\n";
  out += report.ToString();
  return out;
}

std::string Diagnosis::Explain(const SimResult& result) const {
  std::string out = ToString();
  out += "\nper-operator components (mean seconds per tuple):\n";
  out += StrFormat("  %-16s %4s %6s %8s %10s %10s %10s %10s %10s\n", "op",
                   "par", "util", "max-util", "queue", "net-in", "service",
                   "window", "src-batch");
  for (const OperatorRunStats& s : result.op_stats) {
    const OperatorLatencyStats& l = s.latency;
    out += StrFormat(
        "  %-16s %4d %6.2f %8.2f %10.6f %10.6f %10.6f %10.6f %10.6f\n",
        s.name.c_str(), s.parallelism, s.utilization, s.max_instance_util,
        l.MeanQueueWait(), l.MeanNetworkIn(), l.MeanService(),
        l.MeanWindowResidency(), l.MeanSourceBatch());
  }
  if (analytic_bottleneck_op >= 0) {
    out += StrFormat(
        "analytic cross-check: predicted latency %s, max utilization %.2f "
        "at op %d\n",
        Ms(analytic_latency_s).c_str(), analytic_max_utilization,
        analytic_bottleneck_op);
  }
  return out;
}

}  // namespace obs
}  // namespace pdsp
