#include "src/ml/trainer.h"

#include <algorithm>
#include <numeric>

#include "src/obs/host_profile.h"

namespace pdsp {

Result<DatasetSplit> SplitDataset(const Dataset& data, double train_fraction,
                                  double val_fraction, uint64_t seed) {
  if (train_fraction <= 0.0 || val_fraction <= 0.0 ||
      train_fraction + val_fraction >= 1.0) {
    return Status::InvalidArgument("bad split fractions");
  }
  if (data.size() < 3) {
    return Status::InvalidArgument("need at least 3 samples to split");
  }
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<size_t>(
                  rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
  }
  const auto n = static_cast<double>(data.size());
  const size_t n_train = std::max<size_t>(1, static_cast<size_t>(
                                                 n * train_fraction));
  const size_t n_val = std::max<size_t>(
      1, static_cast<size_t>(n * val_fraction));
  DatasetSplit split;
  for (size_t i = 0; i < order.size(); ++i) {
    const PlanSample& s = data.samples[order[i]];
    if (i < n_train) {
      split.train.samples.push_back(s);
    } else if (i < n_train + n_val) {
      split.val.samples.push_back(s);
    } else {
      split.test.samples.push_back(s);
    }
  }
  if (split.test.empty()) split.test = split.val;
  return split;
}

void SplitByStructure(const Dataset& data,
                      const std::vector<int>& held_out_tags, Dataset* seen,
                      Dataset* unseen) {
  seen->samples.clear();
  unseen->samples.clear();
  for (const PlanSample& s : data.samples) {
    const bool held_out =
        std::find(held_out_tags.begin(), held_out_tags.end(),
                  s.structure_tag) != held_out_tags.end();
    (held_out ? unseen : seen)->samples.push_back(s);
  }
}

Result<ModelEvaluation> TrainAndEvaluate(LearnedCostModel* model,
                                         const DatasetSplit& split,
                                         const TrainOptions& options,
                                         obs::HostProfiler* profiler) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  if (profiler == nullptr) profiler = &obs::HostProfiler::Global();
  ModelEvaluation eval;
  eval.model_name = model->name();
  {
    // Cost-model fitting is the harness's dominant non-simulation expense;
    // scope it so host profiles separate "train" from "simulate".
    obs::HostProfiler::Phase phase(profiler, "train");
    PDSP_ASSIGN_OR_RETURN(eval.train_report,
                          model->Fit(split.train, split.val, options));
  }
  PDSP_ASSIGN_OR_RETURN(eval.val_metrics, Evaluate(*model, split.val));
  PDSP_ASSIGN_OR_RETURN(eval.test_metrics, Evaluate(*model, split.test));
  return eval;
}

}  // namespace pdsp
