#include "src/apps/apps.h"

namespace pdsp {

const std::vector<AppInfo>& AllApps() {
  static const std::vector<AppInfo> kApps = {
      {AppId::kWordCount, "WC", "Word Count", "Text analytics",
       "Tokenize sentences and count words per window", true, false},
      {AppId::kMachineOutlier, "MO", "Machine Outlier",
       "Datacenter monitoring",
       "Per-machine z-score anomaly detection over resource metrics", true,
       false},
      {AppId::kLinearRoad, "LR", "Linear Road", "Road tolling",
       "Per-segment average speed windows and congestion tolls", true,
       false},
      {AppId::kSentimentAnalysis, "SA", "Sentiment Analysis", "Social media",
       "Lexicon-based tweet polarity scoring and per-class counts", true,
       true},
      {AppId::kSmartGrid, "SG", "Smart Grid", "Energy (DEBS'14)",
       "Smart-plug load outliers against per-house baselines", true, true},
      {AppId::kSpikeDetection, "SD", "Spike Detection", "IoT sensors",
       "Moving-average spike detection per sensor", true, true},
      {AppId::kAdAnalytics, "AD", "Ad Analytics", "Advertising",
       "Impression x click join with custom sliding CTR aggregation", true,
       true},
      {AppId::kClickAnalytics, "CA", "Click Analytics", "Web analytics",
       "Clickstream dedup and per-URL visit statistics", true, true},
      {AppId::kTrafficMonitoring, "TM", "Traffic Monitoring",
       "Transportation",
       "GPS map matching and per-road speed aggregation", true, true},
      {AppId::kLogProcessing, "LP", "Log Processing", "Web infrastructure",
       "Log parsing, error filtering and per-status counts", true, false},
      {AppId::kTrendingTopics, "TT", "Trending Topics", "Social media",
       "Hashtag extraction, windowed counts and top-k ranking", true, false},
      {AppId::kFraudDetection, "FD", "Fraud Detection", "Finance",
       "Per-account Markov-chain transaction anomaly flags", true, true},
      {AppId::kBargainIndex, "BI", "Bargain Index", "Finance",
       "Quote-stream VWAP tracking and bargain scoring", true, false},
      {AppId::kTpcH, "TPCH", "TPC-H Streaming Q1", "E-commerce",
       "Streaming pricing summary over a lineitem feed", true, false},
  };
  return kApps;
}

const AppInfo& GetAppInfo(AppId id) {
  return AllApps().at(static_cast<size_t>(id));
}

Result<AppId> FindAppByAbbrev(const std::string& abbrev) {
  for (const AppInfo& info : AllApps()) {
    if (abbrev == info.abbrev) return info.id;
  }
  return Status::NotFound("no application with abbreviation '" + abbrev +
                          "'");
}

}  // namespace pdsp
