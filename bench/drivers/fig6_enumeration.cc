// Figure 6: influence of the parallelism enumeration strategy on GNN
// training efficiency. (a) q-error vs number of training queries for
// rule-based and random enumeration, on both seen structures (linear,
// 2-way, 3-way join) and unseen ones (chained filters, filter+join+agg);
// (b) total training time (data collection + model fitting).
//
// Both strategies are evaluated against a common test workload drawn from
// the realistic deployment space (rule-based degrees with wide jitter),
// since deployed queries run at sane parallelism; this mirrors the paper's
// setting where rule-based training data is "representative".
//
// Expected shape (paper O9): rule-based enumeration reaches a given q-error
// with roughly a third of the queries and substantially less total time.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/harness/harness.h"
#include "src/ml/datagen.h"
#include "src/ml/trainer.h"

namespace pdsp {

namespace {

DataGenOptions BaseGen(bool fast) {
  DataGenOptions gen;
  gen.query.rate_floor = 1000.0;
  gen.query.rate_cap = 50000.0;
  gen.query.count_policy_probability = 0.15;
  gen.query.window_durations_ms = {250, 500, 1000};
  gen.query.max_keys = 2000;
  gen.enumeration.max_degree = 16;
  gen.execution.sim.duration_s = fast ? 1.5 : 2.5;
  gen.execution.sim.warmup_s = 0.5;
  return gen;
}

}  // namespace

int Main(int argc, char** argv) {
  const int jobs = bench::ParseJobs(argc, argv);
  const bool fast = bench::FastMode();
  const Cluster cluster = Cluster::M510(10);
  const std::vector<SyntheticStructure> seen_structures = {
      SyntheticStructure::kLinear,
      SyntheticStructure::kTwoWayJoin,
      SyntheticStructure::kThreeWayJoin,
  };
  const std::vector<SyntheticStructure> unseen_structures = {
      SyntheticStructure::kChain2Filters,
      SyntheticStructure::kChain3Filters,
      SyntheticStructure::kFilterJoinAgg,
  };

  // Common evaluation corpora: realistic deployment configurations.
  DataGenOptions eval_gen = BaseGen(fast);
  eval_gen.jobs = jobs;
  eval_gen.strategy = EnumerationStrategy::kRuleBased;
  eval_gen.enumeration.rule_jitter = 3;
  eval_gen.seed = 6001;
  eval_gen.structures = seen_structures;
  eval_gen.num_samples = fast ? 20 : 50;
  auto eval_seen = GenerateTrainingData(eval_gen, cluster);
  eval_gen.seed = 6002;
  eval_gen.structures = unseen_structures;
  eval_gen.num_samples = fast ? 15 : 40;
  auto eval_unseen = GenerateTrainingData(eval_gen, cluster);
  if (!eval_seen.ok() || !eval_unseen.ok()) {
    std::fprintf(stderr, "eval corpus generation failed\n");
    return 1;
  }
  std::printf("eval corpora: %zu seen, %zu unseen\n",
              eval_seen->dataset.size(), eval_unseen->dataset.size());

  const std::vector<int> training_sizes =
      fast ? std::vector<int>{12, 25} : std::vector<int>{25, 50, 100};

  TrainOptions train;
  train.max_epochs = fast ? 60 : 150;
  train.patience = 12;
  train.seed = 11;

  TableReporter table(
      "Fig. 6: GNN training efficiency by enumeration strategy "
      "(a: q-error vs #queries; b: time)",
      {"strategy", "#queries", "seen q50", "unseen q50", "collect(s)",
       "fit(s)", "total(s)"});

  for (EnumerationStrategy strategy :
       {EnumerationStrategy::kRandom, EnumerationStrategy::kRuleBased}) {
    for (int size : training_sizes) {
      DataGenOptions gen = BaseGen(fast);
      gen.jobs = jobs;
      gen.strategy = strategy;
      gen.structures = seen_structures;
      gen.num_samples = size;
      gen.seed = 7000 + static_cast<uint64_t>(size);
      auto corpus = GenerateTrainingData(gen, cluster);
      if (!corpus.ok()) {
        std::fprintf(stderr, "datagen(%s,%d): %s\n",
                     EnumerationStrategyToString(strategy), size,
                     corpus.status().ToString().c_str());
        return 1;
      }
      auto split = SplitDataset(corpus->dataset, 0.75, 0.2, 3);
      if (!split.ok()) continue;

      auto gnn = MakeModel(ModelKind::kGnn);
      auto report = gnn->Fit(split->train, split->val, train);
      if (!report.ok()) {
        std::fprintf(stderr, "fit: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      auto q_seen = Evaluate(*gnn, eval_seen->dataset);
      auto q_unseen = Evaluate(*gnn, eval_unseen->dataset);
      table.AddRow({EnumerationStrategyToString(strategy),
                    StrFormat("%d", size),
                    q_seen.ok() ? StrFormat("%.2f", q_seen->median_q)
                                : "n/a",
                    q_unseen.ok() ? StrFormat("%.2f", q_unseen->median_q)
                                  : "n/a",
                    StrFormat("%.1f", corpus->collection_seconds),
                    StrFormat("%.1f", report->train_seconds),
                    StrFormat("%.1f", corpus->collection_seconds +
                                          report->train_seconds)});
    }
  }
  table.Print();
  Status st = table.WriteCsv("results/fig6_enumeration.csv");
  if (!st.ok()) std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
  return 0;
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
