#include "src/obs/compare.h"

#include <cmath>

#include "src/common/string_util.h"

namespace pdsp {
namespace obs {

const char* MetricVerdictToString(MetricVerdict verdict) {
  switch (verdict) {
    case MetricVerdict::kUnchanged: return "unchanged";
    case MetricVerdict::kImproved: return "improved";
    case MetricVerdict::kRegressed: return "regressed";
  }
  return "unchanged";
}

MetricDelta CompareMetric(std::string name, double baseline, double candidate,
                          bool higher_is_better, double baseline_noise,
                          double candidate_noise,
                          const CompareOptions& options) {
  MetricDelta d;
  d.metric = std::move(name);
  d.baseline = baseline;
  d.candidate = candidate;
  d.higher_is_better = higher_is_better;
  d.noise = std::sqrt(baseline_noise * baseline_noise +
                      candidate_noise * candidate_noise);

  const double delta = candidate - baseline;
  constexpr double kTiny = 1e-12;
  if (std::abs(baseline) < kTiny) {
    // A zero baseline has no meaningful relative change; any non-zero
    // candidate counts as a full-scale move.
    d.delta_frac = std::abs(candidate) < kTiny ? 0.0
                   : (delta > 0 ? 1.0 : -1.0);
  } else {
    d.delta_frac = delta / std::abs(baseline);
  }

  const bool beyond_threshold = std::abs(d.delta_frac) >= options.threshold;
  const bool beyond_noise =
      options.noise_sigmas <= 0.0 || d.noise <= 0.0 ||
      std::abs(delta) >= options.noise_sigmas * d.noise;
  if (beyond_threshold && beyond_noise) {
    const bool got_better = higher_is_better ? delta > 0 : delta < 0;
    d.verdict =
        got_better ? MetricVerdict::kImproved : MetricVerdict::kRegressed;
  }
  return d;
}

size_t ComparisonReport::CountVerdict(MetricVerdict verdict) const {
  size_t n = 0;
  for (const MetricDelta& d : metrics) {
    if (d.verdict == verdict) ++n;
  }
  return n;
}

Json ComparisonReport::ToJson() const {
  Json arr = Json::Array();
  for (const MetricDelta& d : metrics) {
    Json m = Json::Object();
    m.Set("metric", Json::Str(d.metric));
    m.Set("baseline", Json::Number(d.baseline));
    m.Set("candidate", Json::Number(d.candidate));
    m.Set("delta_frac", Json::Number(d.delta_frac));
    m.Set("noise", Json::Number(d.noise));
    m.Set("higher_is_better", Json::Bool(d.higher_is_better));
    m.Set("verdict", Json::Str(MetricVerdictToString(d.verdict)));
    arr.Append(std::move(m));
  }
  Json root = Json::Object();
  root.Set("baseline", Json::Str(baseline_id));
  root.Set("candidate", Json::Str(candidate_id));
  root.Set("label", Json::Str(label));
  root.Set("plan_hash_match", Json::Bool(plan_hash_match));
  root.Set("metrics", std::move(arr));
  root.Set("regressed",
           Json::Int(static_cast<int64_t>(
               CountVerdict(MetricVerdict::kRegressed))));
  root.Set("improved",
           Json::Int(static_cast<int64_t>(
               CountVerdict(MetricVerdict::kImproved))));
  return root;
}

std::string ComparisonReport::ToString() const {
  std::string out =
      StrFormat("compare %s -> %s%s\n", baseline_id.c_str(),
                candidate_id.c_str(),
                plan_hash_match ? "" : "  [WARNING: plan hash differs]");
  out += StrFormat("  %-18s %14s %14s %9s  %s\n", "metric", "baseline",
                   "candidate", "delta", "verdict");
  for (const MetricDelta& d : metrics) {
    out += StrFormat("  %-18s %14.6g %14.6g %+8.1f%%  %s\n",
                     d.metric.c_str(), d.baseline, d.candidate,
                     d.delta_frac * 100.0, MetricVerdictToString(d.verdict));
  }
  out += StrFormat("  => %zu regressed, %zu improved, %zu unchanged\n",
                   CountVerdict(MetricVerdict::kRegressed),
                   CountVerdict(MetricVerdict::kImproved),
                   CountVerdict(MetricVerdict::kUnchanged));
  return out;
}

ComparisonReport CompareRecords(const RunRecord& baseline,
                                const RunRecord& candidate,
                                const CompareOptions& options) {
  ComparisonReport report;
  report.baseline_id = baseline.run_id;
  report.candidate_id = candidate.run_id;
  report.label = candidate.label;
  report.plan_hash_match = baseline.plan_hash == candidate.plan_hash &&
                           !baseline.plan_hash.empty();
  report.metrics.push_back(CompareMetric(
      "throughput_tps", baseline.throughput_tps, candidate.throughput_tps,
      /*higher_is_better=*/true, baseline.throughput_stddev,
      candidate.throughput_stddev, options));
  report.metrics.push_back(CompareMetric(
      "median_latency_s", baseline.median_latency_s,
      candidate.median_latency_s, /*higher_is_better=*/false,
      baseline.median_latency_stddev, candidate.median_latency_stddev,
      options));
  report.metrics.push_back(CompareMetric(
      "p95_latency_s", baseline.p95_latency_s, candidate.p95_latency_s,
      /*higher_is_better=*/false, baseline.median_latency_stddev,
      candidate.median_latency_stddev, options));
  report.metrics.push_back(CompareMetric(
      "p99_latency_s", baseline.p99_latency_s, candidate.p99_latency_s,
      /*higher_is_better=*/false, baseline.median_latency_stddev,
      candidate.median_latency_stddev, options));
  return report;
}

}  // namespace obs
}  // namespace pdsp
