#include "src/exec/thread_pool.h"

#include <algorithm>

#include "src/common/string_util.h"
#include "src/obs/prof.h"

namespace pdsp {
namespace exec {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Enqueue(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      // A second Shutdown (e.g. explicit call followed by the destructor)
      // must not re-join already-joined threads.
      return;
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop(int index) {
  // Register with the CPU-profiler machinery for the worker's lifetime:
  // a sampling profiler in all-threads mode can then attribute this
  // worker's CPU, and per-cell registrations inside tasks nest as no-ops.
  obs::prof::ThreadRegistration prof_registration(
      StrFormat("pool-worker%d", index));
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // wait() releases and re-acquires mu_ through its BasicLockable
      // interface — capability-neutral, so the guarded reads stay checked.
      while (!shutdown_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task catches the task's exceptions; anything escaping here
    // would terminate, which is the correct response to a non-task bug.
    task();
  }
}

int ResolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace exec
}  // namespace pdsp
