// Generic fixed-point dataflow engine over the LogicalPlan DAG. The four
// concrete analyses in src/analysis/properties.h (partitioning, rate
// intervals, constant refinement, determinism) are instances of this
// engine; passes consume their results through AnalysisContext::props.
//
// The engine is the textbook worklist algorithm specialized to operator
// DAGs:
//
//   - A Fact is attached to every operator's input and output. For a
//     forward analysis, in(op) = Combine(facts of all input edges) and
//     out(op) = Transfer(op, in(op)); a backward analysis swaps the edge
//     directions (in(op) combines the *consumers*' facts).
//   - Combine must be permutation-invariant over its edge facts — fan-in
//     join order (left/right input permutation) must not change the
//     result. tests/analysis/dataflow_test.cc asserts this for every
//     bundled analysis.
//   - Transfer must be monotone with respect to the analysis' Leq order:
//     recomputing an operator may only move its fact *up* the lattice.
//     The engine checks this on every recomputation (the check is a single
//     Leq call, cheap enough to keep in release builds) and reports a
//     violation instead of looping.
//   - Termination never depends on the input being well-formed: a cyclic
//     plan, a non-monotone transfer, or a lattice of unbounded height all
//     trip the per-operator visit cap and yield a structured
//     non-convergence diagnostic rather than an infinite loop. Passes
//     surface that diagnostic; they never consume partial facts silently.
//
// Analyses are deliberately *tolerant*: like every other part of
// pdsp::analysis they run on structurally broken plans (the structural
// passes report the breakage; the engine just has to terminate).

#ifndef PDSP_ANALYSIS_DATAFLOW_H_
#define PDSP_ANALYSIS_DATAFLOW_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/analysis/pass.h"
#include "src/common/string_util.h"
#include "src/query/plan.h"

namespace pdsp {
namespace analysis {

/// Direction a dataflow analysis propagates facts in.
enum class DataflowDirection {
  kForward,   ///< sources -> sink, in(op) combines input-edge facts
  kBackward,  ///< sink -> sources, in(op) combines output-edge facts
};

const char* DataflowDirectionToString(DataflowDirection d);

/// Producer tasks that can deliver to ONE instance of `op` (1 per forward
/// edge, upstream parallelism per shuffled edge). More than one means the
/// arrival interleaving at `op` is scheduler-dependent in a distributed
/// runtime — the merge points the determinism analysis keys on.
int ProducerChannelsInto(const AnalysisContext& ctx, LogicalPlan::OpId op);

/// \brief Convergence report of one engine run.
struct FixpointStats {
  bool converged = false;
  /// Worklist pops (operator evaluations) performed.
  int iterations = 0;
  /// True when a recomputation moved a fact *down* the lattice — the
  /// analysis' Transfer/Combine is broken, and its facts must not be
  /// trusted.
  bool monotonicity_violated = false;
  /// Human-readable explanation when !converged or monotonicity_violated.
  std::string diagnostic;

  bool ok() const { return converged && !monotonicity_violated; }
};

/// \brief Facts for every operator, plus how the fixed point was reached.
template <typename Fact>
struct DataflowResult {
  /// Fact flowing *into* each operator (combined over edges), indexed by
  /// operator id.
  std::vector<Fact> in;
  /// Fact at each operator's output (Transfer applied), indexed by id.
  std::vector<Fact> out;
  FixpointStats stats;
};

/// \brief One monotone analysis: lattice + transfer functions.
///
/// Implementations are stateless with respect to the iteration: all engine
/// state lives in DataflowResult. `Fact` needs value semantics only.
template <typename Fact>
class DataflowAnalysis {
 public:
  virtual ~DataflowAnalysis() = default;

  /// Stable analysis name used in diagnostics ("rate-interval").
  virtual const char* name() const = 0;

  virtual DataflowDirection direction() const {
    return DataflowDirection::kForward;
  }

  /// Least lattice element: the initial fact of every unvisited operator.
  virtual Fact Bottom() const = 0;

  /// Input fact for boundary operators (no predecessors in the analysis
  /// direction): sources for forward analyses, sinks for backward ones.
  virtual Fact Boundary(const AnalysisContext& ctx,
                        LogicalPlan::OpId op) const = 0;

  /// Combines the facts arriving over `op`'s edges, listed in edge order
  /// (predecessor outputs for forward, successor inputs for backward).
  /// MUST be invariant under permutation of `edge_facts`.
  virtual Fact Combine(const AnalysisContext& ctx, LogicalPlan::OpId op,
                       const std::vector<Fact>& edge_facts) const = 0;

  /// Applies `op`'s effect to its combined input fact.
  virtual Fact Transfer(const AnalysisContext& ctx, LogicalPlan::OpId op,
                        const Fact& in) const = 0;

  virtual bool Equal(const Fact& a, const Fact& b) const = 0;

  /// Partial order used by the monotonicity check: true when a is at or
  /// below b in the lattice. Leq(Bottom(), x) must hold for every x.
  virtual bool Leq(const Fact& a, const Fact& b) const = 0;
};

/// Runs `analysis` to a fixed point over the context's operator graph.
///
/// Visits are capped at kMaxVisitsPerOp per operator; a plan that has not
/// converged by then (cycle, non-monotone transfer, unbounded lattice)
/// yields stats.converged == false with a diagnostic naming the analysis
/// and the offending operator. Facts in the result are the last computed
/// values and are only meaningful when stats.ok().
template <typename Fact>
DataflowResult<Fact> RunDataflow(const DataflowAnalysis<Fact>& analysis,
                                 const AnalysisContext& ctx) {
  // Generous bound: every lattice bundled here has height <= 4, so honest
  // analyses converge in O(depth) visits. Only broken inputs get near it.
  constexpr int kMaxVisitsPerOp = 64;

  const size_t n = ctx.NumOps();
  const bool forward = analysis.direction() == DataflowDirection::kForward;
  const auto& preds = forward ? ctx.inputs : ctx.outputs;
  const auto& succs = forward ? ctx.outputs : ctx.inputs;

  DataflowResult<Fact> result;
  result.in.assign(n, analysis.Bottom());
  result.out.assign(n, analysis.Bottom());
  std::vector<bool> computed(n, false);
  std::vector<int> visits(n, 0);
  std::vector<bool> queued(n, false);

  // Seed in propagation order when one exists; otherwise (cyclic plan) in
  // id order — the visit cap guarantees termination either way.
  std::vector<LogicalPlan::OpId> worklist;
  worklist.reserve(n);
  if (ctx.acyclic && ctx.topo.size() == n) {
    for (const LogicalPlan::OpId id : ctx.topo) worklist.push_back(id);
    if (!forward) std::reverse(worklist.begin(), worklist.end());
  } else {
    for (size_t i = 0; i < n; ++i) {
      worklist.push_back(static_cast<LogicalPlan::OpId>(i));
    }
  }
  for (const LogicalPlan::OpId id : worklist) queued[id] = true;

  size_t head = 0;
  while (head < worklist.size()) {
    const LogicalPlan::OpId op = worklist[head++];
    queued[op] = false;
    if (++visits[op] > kMaxVisitsPerOp) {
      result.stats.converged = false;
      result.stats.diagnostic = StrFormat(
          "%s analysis did not reach a fixed point: operator '%s' "
          "re-evaluated more than %d times (cyclic plan or a transfer "
          "function that keeps changing its result)",
          analysis.name(), ctx.op(op).name.c_str(), kMaxVisitsPerOp);
      return result;
    }
    ++result.stats.iterations;

    Fact in;
    if (preds[op].empty()) {
      in = analysis.Boundary(ctx, op);
    } else {
      std::vector<Fact> edge_facts;
      edge_facts.reserve(preds[op].size());
      for (const LogicalPlan::OpId p : preds[op]) {
        edge_facts.push_back(result.out[p]);
      }
      in = analysis.Combine(ctx, op, edge_facts);
    }
    Fact out = analysis.Transfer(ctx, op, in);

    const bool changed = !computed[op] || !analysis.Equal(result.out[op], out);
    if (computed[op] && changed && !analysis.Leq(result.out[op], out)) {
      result.stats.monotonicity_violated = true;
      result.stats.diagnostic = StrFormat(
          "%s analysis is non-monotone at operator '%s': recomputation "
          "moved its fact down the lattice; facts are untrustworthy",
          analysis.name(), ctx.op(op).name.c_str());
      return result;
    }
    result.in[op] = std::move(in);
    result.out[op] = std::move(out);
    computed[op] = true;
    if (changed) {
      for (const LogicalPlan::OpId s : succs[op]) {
        if (!queued[s]) {
          queued[s] = true;
          worklist.push_back(s);
        }
      }
    }
  }

  result.stats.converged = true;
  return result;
}

}  // namespace analysis
}  // namespace pdsp

#endif  // PDSP_ANALYSIS_DATAFLOW_H_
