#include "src/exec/run_context.h"

namespace pdsp {
namespace exec {

RunContext::RunContext()
    : owned_profiler_(std::make_unique<obs::HostProfiler>()),
      profiler_(owned_profiler_.get()),
      metrics_(std::make_shared<obs::MetricsRegistry>()) {}

RunContext::RunContext(obs::HostProfiler* profiler_sink)
    : profiler_(profiler_sink),
      metrics_(std::make_shared<obs::MetricsRegistry>()) {
  if (profiler_ == nullptr) {
    owned_profiler_ = std::make_unique<obs::HostProfiler>();
    profiler_ = owned_profiler_.get();
  }
}

Status RunContext::StartCpuProfiler(const obs::prof::ProfOptions& options) {
  // Replacing a still-running profiler (e.g. after an error-path return
  // skipped StopCpuProfiler) stops it first via its destructor.
  cpu_profiler_ = std::make_unique<obs::prof::Profiler>(options);
  return cpu_profiler_->Start();
}

obs::prof::CpuProfile RunContext::StopCpuProfiler() {
  if (cpu_profiler_ == nullptr) return obs::prof::CpuProfile{};
  obs::prof::CpuProfile profile = cpu_profiler_->Stop();
  cpu_profiler_.reset();
  return profile;
}

bool RunContext::cpu_profiling() const {
  return cpu_profiler_ != nullptr && cpu_profiler_->running();
}

Status RunContext::StartMemProfiler(const obs::mem::MemOptions& options) {
  mem_profiler_ = std::make_unique<obs::mem::MemProfiler>(options);
  return mem_profiler_->Start();
}

obs::mem::MemProfile RunContext::StopMemProfiler() {
  if (mem_profiler_ == nullptr) return obs::mem::MemProfile{};
  obs::mem::MemProfile profile = mem_profiler_->Stop();
  mem_profiler_.reset();
  return profile;
}

bool RunContext::mem_profiling() const {
  return mem_profiler_ != nullptr && mem_profiler_->running();
}

uint64_t RunContext::MixSeed(uint64_t base, uint64_t index) {
  // splitmix64 finalizer (Steele et al.): full-avalanche mixing so adjacent
  // cell indices land in unrelated RNG streams.
  uint64_t z = (base ^ index) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace exec
}  // namespace pdsp
