// Stream elements: a tuple plus the birth timestamp of its earliest
// contributing source tuple. End-to-end latency at the sink is
// (delivery time - birth), which per the paper's definition includes window
// residence time and every queueing/network delay along the way.
//
// Each element additionally carries an attribution handle: when
// SimOptions::attribute_latency is on, the simulator charges every
// virtual-time interval an element lives through to exactly one component
// (source batching, network transit, queue wait, service, window residency)
// of a pool record the handle names, so at the sink the components
// telescope back to (delivery time - birth). The records live in an
// engine-side pool rather than inline so that plain measurement runs pay
// nothing (a 4-byte id) for the instrumentation. See src/obs/diagnose.h
// for the consumers.

#ifndef PDSP_RUNTIME_ELEMENT_H_
#define PDSP_RUNTIME_ELEMENT_H_

#include <cstdint>

#include "src/data/value.h"

namespace pdsp {

/// Attribution handle of an element that is not being tracked (attribution
/// disabled, or the engine's pool cap was reached).
inline constexpr uint32_t kNoAttr = 0xFFFFFFFFu;

/// \brief Where an element's lifetime has been spent so far (seconds of
/// virtual time, accumulated across every operator it passed through).
/// Stored in the simulation engine's attribution pool; elements reference
/// records by `StreamElement::attr_id`. Derived elements (window fires,
/// join results, UDO outputs) share the record of their earliest
/// contributor, so each interval of virtual time is charged once.
///
/// Invariant maintained by the simulator: after every charge,
/// `accounted_until - birth == source_batch_s + network_s + queue_s +
/// service_s + window_s` for the element's earliest contributing source
/// tuple, so the sink-side components sum to the recorded end-to-end
/// latency exactly.
struct LatencyAttr {
  /// Waiting at the source for the emission batch to fill and ship
  /// (includes source service/lag time — the source's own saturation).
  double source_batch_s = 0.0;
  /// In-flight on channels: link latency + transfer + local handoff.
  double network_s = 0.0;
  /// Sitting in an operator instance's input queue (queueing delay).
  double queue_s = 0.0;
  /// Being processed: operator service time including send-side costs.
  double service_s = 0.0;
  /// Buffered in window/join state waiting for the pane to fire or the
  /// partner to arrive.
  double window_s = 0.0;
  /// Virtual time up to which this element's lifetime has been attributed
  /// (bookkeeping cursor, not a component).
  double accounted_until = 0.0;

  double ComponentSum() const {
    return source_batch_s + network_s + queue_s + service_s + window_s;
  }
};

/// \brief One in-flight stream element.
struct StreamElement {
  Tuple tuple;
  /// Production time of the earliest source tuple that contributed to this
  /// element (== tuple.event_time for raw source tuples).
  double birth = 0.0;
  /// Handle into the engine's attribution pool for the earliest
  /// contributing source tuple (derived results inherit the handle
  /// matching `birth`); kNoAttr when the element is untracked.
  uint32_t attr_id = kNoAttr;
};

}  // namespace pdsp

#endif  // PDSP_RUNTIME_ELEMENT_H_
