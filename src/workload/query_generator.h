// Synthetic parallel-query-plan generation (Section 3.1 "Query"): an
// extensive range of PQP structures, from simple linear queries with one
// filter to multi-way joins and chained filters, with randomized operator
// parameters (filter function and literal, window type/policy/length/slide,
// aggregate function) drawn from the Table 3 ranges. Filter literals are
// synthesized by inverse-CDF selectivity targeting so that every generated
// predicate has 0 < selectivity < 1.

#ifndef PDSP_WORKLOAD_QUERY_GENERATOR_H_
#define PDSP_WORKLOAD_QUERY_GENERATOR_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/query/builder.h"
#include "src/query/plan.h"

namespace pdsp {

/// The nine synthetic query structures of the benchmark suite.
enum class SyntheticStructure {
  kLinear = 0,       ///< src -> filter -> window agg -> sink
  kChain2Filters,    ///< src -> f1 -> f2 -> window agg -> sink
  kChain3Filters,    ///< src -> f1 -> f2 -> f3 -> window agg -> sink
  kAggregation,      ///< src -> window agg -> sink
  kFlatMapChain,     ///< src -> flatMap -> filter -> window agg -> sink
  kTwoWayJoin,       ///< (src -> filter) x2 -> join -> sink
  kThreeWayJoin,     ///< three sources, cascaded joins
  kFourWayJoin,      ///< four sources, cascaded joins
  kFilterJoinAgg,    ///< (src -> filter) x2 -> join -> window agg -> sink
};

constexpr int kNumSyntheticStructures = 9;

const char* SyntheticStructureToString(SyntheticStructure s);

/// All nine structures in declaration order.
const std::vector<SyntheticStructure>& AllSyntheticStructures();

/// \brief Parameter ranges for query generation (defaults follow Table 3).
struct QueryGenOptions {
  /// Event rate per source; < 0 draws randomly from StandardEventRates()
  /// (restricted to [rate_floor, rate_cap]).
  double fixed_event_rate = -1.0;
  double rate_floor = 10.0;
  double rate_cap = 500000.0;

  /// Window duration choices (ms) for time-policy windows.
  std::vector<double> window_durations_ms = {250, 500, 1000, 2000, 5000};
  /// Window length choices (tuples) for count-policy windows.
  std::vector<int64_t> window_lengths = {50, 100, 500, 1000, 5000};
  /// Sliding ratios (Table 3).
  std::vector<double> slide_ratios = {0.3, 0.4, 0.5, 0.6, 0.7};
  /// Probability a generated window is sliding (vs tumbling).
  double sliding_probability = 0.5;
  /// Probability a generated window is count-based (vs time).
  double count_policy_probability = 0.3;

  /// Filter target selectivity is drawn uniformly from this range.
  double min_filter_selectivity = 0.15;
  double max_filter_selectivity = 0.85;

  /// Aggregate key cardinality range.
  int64_t min_keys = 10;
  int64_t max_keys = 10000;

  /// Extra numeric value fields per stream beyond the key (tuple width).
  int min_value_fields = 1;
  int max_value_fields = 6;

  /// Parallelism assigned to every generated operator (enumerators rewrite
  /// it afterwards).
  int default_parallelism = 1;
};

/// \brief Generates validated synthetic plans.
class QueryGenerator {
 public:
  QueryGenerator(QueryGenOptions options, uint64_t seed)
      : options_(std::move(options)), rng_(seed) {}

  /// Generates one plan of the given structure with fresh random parameters.
  Result<LogicalPlan> Generate(SyntheticStructure structure);

  /// Generates one plan of a uniformly random structure.
  Result<LogicalPlan> GenerateRandom();

  const QueryGenOptions& options() const { return options_; }

 private:
  /// Random stream: field 0 integer key (Zipf with skew in [0, max_skew]),
  /// fields 1..k uniform doubles.
  StreamSpec MakeStream(int64_t key_cardinality, double max_skew = 1.2);
  ArrivalProcess::Options MakeArrival();
  WindowSpec MakeWindow();
  AggregateFn MakeAggregateFn();
  /// Filter on a random numeric field with a selectivity-targeted literal.
  /// `cdf_intervals` tracks, per field, the CDF interval still passing all
  /// previously added filters in the same chain, so chained predicates are
  /// mutually consistent (no contradictory conjunctions) and each passes its
  /// target fraction of the *surviving* stream.
  PlanBuilder::OpId AddFilter(
      PlanBuilder* b, PlanBuilder::OpId input, const StreamSpec& stream,
      const std::string& name,
      std::map<size_t, std::pair<double, double>>* cdf_intervals);
  /// Join-friendly key cardinality: scaled with rate x window so join
  /// outputs stay bounded.
  int64_t JoinKeyCardinality(double rate, const WindowSpec& window) const;

  Result<LogicalPlan> MakeJoinPlan(int num_sources, bool with_agg);

  QueryGenOptions options_;
  Rng rng_;
  int name_counter_ = 0;
};

}  // namespace pdsp

#endif  // PDSP_WORKLOAD_QUERY_GENERATOR_H_
