#include "src/obs/metrics.h"

#include <cmath>

namespace pdsp {
namespace obs {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               ExpHistogram hist) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>(std::move(hist));
  return slot.get();
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->value() : 0.0;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  if (&other == this) return;
  // Snapshot `other` first so the two registry locks are never held
  // together (no ordering to get wrong).
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, ExpHistogram> histograms;
  {
    MutexLock lock(other.mu_);
    for (const auto& [name, c] : other.counters_) counters[name] = c->value();
    for (const auto& [name, g] : other.gauges_) gauges[name] = g->value();
    for (const auto& [name, h] : other.histograms_) {
      histograms.emplace(name, h->Snapshot());
    }
  }
  for (const auto& [name, v] : counters) GetCounter(name)->Add(v);
  for (const auto& [name, v] : gauges) GetGauge(name)->Set(v);
  for (auto& [name, hist] : histograms) {
    // Register with `hist`'s geometry when the metric is new (it starts
    // empty and the merge below fills it), then fold the buckets in.
    ExpHistogram geometry(hist.lo(), hist.hi(), hist.base());
    GetHistogram(name, std::move(geometry))->Merge(hist);
  }
}

std::vector<std::string> MetricsRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, _] : counters_) names.push_back(name);
  for (const auto& [name, _] : gauges_) names.push_back(name);
  for (const auto& [name, _] : histograms_) names.push_back(name);
  return names;  // maps are sorted; sections concatenate in order
}

namespace {

Json FiniteNumber(double v) {
  // JSON has no NaN/Inf; empty distributions dump their extremes as null.
  return std::isfinite(v) ? Json::Number(v) : Json::Null();
}

}  // namespace

Json MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  Json counters = Json::Object();
  for (const auto& [name, c] : counters_) {
    counters.Set(name, Json::Int(c->value()));
  }
  Json gauges = Json::Object();
  for (const auto& [name, g] : gauges_) {
    gauges.Set(name, FiniteNumber(g->value()));
  }
  Json histograms = Json::Object();
  for (const auto& [name, h] : histograms_) {
    const ExpHistogram hist = h->Snapshot();
    Json doc = Json::Object();
    doc.Set("count", Json::Int(hist.TotalCount()));
    doc.Set("mean", FiniteNumber(hist.stats().mean()));
    doc.Set("min", FiniteNumber(hist.stats().min()));
    doc.Set("max", FiniteNumber(hist.stats().max()));
    doc.Set("p50", FiniteNumber(hist.Percentile(50.0)));
    doc.Set("p95", FiniteNumber(hist.Percentile(95.0)));
    doc.Set("p99", FiniteNumber(hist.Percentile(99.0)));
    Json buckets = Json::Array();
    for (size_t i = 0; i < hist.NumBuckets(); ++i) {
      if (hist.BucketCount(i) == 0) continue;
      Json b = Json::Object();
      b.Set("lo", Json::Number(hist.BucketLow(i)));
      b.Set("hi", Json::Number(hist.BucketHigh(i)));
      b.Set("count", Json::Int(hist.BucketCount(i)));
      buckets.Append(std::move(b));
    }
    doc.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(doc));
  }
  Json root = Json::Object();
  root.Set("counters", std::move(counters));
  root.Set("gauges", std::move(gauges));
  root.Set("histograms", std::move(histograms));
  return root;
}

std::string MetricName(const std::string& module, const std::string& name) {
  return "pdsp." + module + "." + name;
}

}  // namespace obs
}  // namespace pdsp
