#include "src/workload/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace pdsp {

Result<AutoscaleResult> Autoscale(LogicalPlan plan, const Cluster& cluster,
                                  const AutoscalerOptions& options) {
  if (!plan.validated()) {
    return Status::FailedPrecondition("plan must be validated");
  }
  if (options.target_utilization <= 0.0 ||
      options.target_utilization >= 1.0) {
    return Status::InvalidArgument("target utilization must be in (0, 1)");
  }
  if (options.min_degree < 1 || options.max_degree < options.min_degree) {
    return Status::InvalidArgument("bad degree bounds");
  }

  AutoscaleResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ExecutionOptions exec = options.execution;
    exec.sim.seed = options.execution.sim.seed +
                    static_cast<uint64_t>(iter) * 524287ULL;
    exec.sim.attribute_latency = true;  // every iteration is diagnosed
    PDSP_ASSIGN_OR_RETURN(SimResult run, ExecutePlan(plan, cluster, exec));

    AutoscaleStep step;
    step.degrees.reserve(plan.NumOperators());
    for (size_t op = 0; op < plan.NumOperators(); ++op) {
      step.degrees.push_back(
          plan.op(static_cast<LogicalPlan::OpId>(op)).parallelism);
    }
    step.median_latency_s = run.median_latency_s;
    for (const OperatorRunStats& s : run.op_stats) {
      step.max_utilization = std::max(step.max_utilization, s.utilization);
    }

    // Run diagnosis: skew-bound operators (PDSP-R102) are scaled by their
    // hottest instance — the DS2 mean-utilization rule under-provisions
    // them because the hot key pins one instance near saturation while the
    // mean looks comfortable.
    std::set<LogicalPlan::OpId> skew_bound;
    Result<obs::Diagnosis> diag =
        obs::DiagnoseRun(plan, cluster, run, options.diagnose);
    if (diag.ok()) {
      for (const analysis::Diagnostic& d :
           diag.value().report.diagnostics()) {
        step.diagnostic_codes.push_back(d.code);
        if (d.code == "PDSP-R102" && d.op >= 0) skew_bound.insert(d.op);
      }
    }
    result.steps.push_back(step);

    // DS2 rule: the work an operator performs per second is
    // parallelism x utilization instance-seconds; the degree that hits the
    // target utilization is that work divided by the target.
    ParallelismAssignment next = step.degrees;
    bool within_band = true;
    for (size_t op = 0; op < plan.NumOperators(); ++op) {
      const auto id = static_cast<LogicalPlan::OpId>(op);
      if (plan.op(id).type == OperatorType::kSink) continue;
      const OperatorRunStats& s = run.op_stats[op];
      const double util =
          skew_bound.count(id) > 0 ? s.max_instance_util : s.utilization;
      const double work = util * plan.op(id).parallelism;
      int degree = static_cast<int>(
          std::ceil(work / options.target_utilization));
      degree = std::clamp(degree, options.min_degree, options.max_degree);
      next[op] = degree;

      const double projected = work / degree;
      const bool pinned = degree == options.min_degree ||
                          degree == options.max_degree;
      if (!pinned &&
          (projected < options.target_utilization * (1.0 - options.band) ||
           projected > options.target_utilization * (1.0 + options.band))) {
        within_band = false;
      }
    }

    if (next == step.degrees || within_band) {
      result.converged = next == step.degrees;
      if (!result.converged) {
        // Apply the final adjustment and take one confirming measurement.
        PDSP_RETURN_NOT_OK(ApplyParallelism(&plan, next));
        PDSP_ASSIGN_OR_RETURN(SimResult confirm,
                              ExecutePlan(plan, cluster, exec));
        AutoscaleStep last;
        last.degrees = next;
        last.median_latency_s = confirm.median_latency_s;
        for (const OperatorRunStats& s : confirm.op_stats) {
          last.max_utilization = std::max(last.max_utilization,
                                          s.utilization);
        }
        result.steps.push_back(last);
        result.converged = true;
      }
      break;
    }
    PDSP_RETURN_NOT_OK(ApplyParallelism(&plan, next));
  }

  result.final_degrees = result.steps.back().degrees;
  result.final_latency_s = result.steps.back().median_latency_s;
  return result;
}

}  // namespace pdsp
