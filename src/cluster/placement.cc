#include "src/cluster/placement.h"

#include <algorithm>

#include "src/common/rng.h"

namespace pdsp {

const char* PlacementKindToString(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kRoundRobin:
      return "round_robin";
    case PlacementKind::kLeastLoaded:
      return "least_loaded";
    case PlacementKind::kLocality:
      return "locality";
    case PlacementKind::kRandom:
      return "random";
  }
  return "?";
}

namespace {

// Node whose (load+1) / (cores * speed) is smallest — i.e. the most capacity
// headroom per unit of work, so faster nodes fill first proportionally.
int LeastLoadedNode(const Cluster& cluster, const std::vector<int>& load) {
  int best = 0;
  double best_score = 1e300;
  for (size_t i = 0; i < cluster.NumNodes(); ++i) {
    const Node& n = cluster.node(i);
    const double capacity =
        static_cast<double>(n.spec.cores) * n.effective_speed;
    const double score = (load[i] + 1.0) / std::max(1e-9, capacity);
    if (score < best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

Result<Placement> PlaceTasks(const Cluster& cluster,
                             const std::vector<int>& instances_per_op,
                             PlacementKind kind, uint64_t seed) {
  if (cluster.NumNodes() == 0) {
    return Status::InvalidArgument("empty cluster");
  }
  int total_tasks = 0;
  for (int p : instances_per_op) {
    if (p < 1) return Status::InvalidArgument("operator with parallelism < 1");
    total_tasks += p;
  }
  if (total_tasks == 0) return Status::InvalidArgument("no tasks");

  const int num_nodes = static_cast<int>(cluster.NumNodes());
  Placement placement;
  placement.node_of_task.reserve(total_tasks);
  placement.tasks_per_node.assign(num_nodes, 0);
  std::vector<int> load(num_nodes, 0);
  Rng rng(seed);

  int rr_cursor = 0;
  // node of instance j of the previous operator (for locality).
  std::vector<int> prev_op_nodes;
  std::vector<int> cur_op_nodes;

  for (int p : instances_per_op) {
    cur_op_nodes.clear();
    for (int j = 0; j < p; ++j) {
      int node = 0;
      switch (kind) {
        case PlacementKind::kRoundRobin:
          node = rr_cursor++ % num_nodes;
          break;
        case PlacementKind::kLeastLoaded:
          node = LeastLoadedNode(cluster, load);
          break;
        case PlacementKind::kLocality: {
          if (j < static_cast<int>(prev_op_nodes.size())) {
            const int candidate = prev_op_nodes[j];
            // Accept co-location unless the node is already past capacity.
            if (load[candidate] < cluster.node(candidate).spec.cores) {
              node = candidate;
              break;
            }
          }
          node = LeastLoadedNode(cluster, load);
          break;
        }
        case PlacementKind::kRandom:
          node = static_cast<int>(rng.UniformInt(0, num_nodes - 1));
          break;
      }
      placement.node_of_task.push_back(node);
      ++placement.tasks_per_node[node];
      ++load[node];
      cur_op_nodes.push_back(node);
    }
    prev_op_nodes = cur_op_nodes;
  }
  return placement;
}

}  // namespace pdsp
