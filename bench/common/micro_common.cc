// Microbenchmarks for the common substrate: RNG draws, distribution sampling
// and statistics accumulation. These are health checks for the hot paths the
// simulator leans on (every simulated tuple batch draws Poisson arrivals).

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/stats.h"

namespace pdsp {
namespace {

void BM_RngNextUint64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextUint64());
}
BENCHMARK(BM_RngNextUint64);

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.UniformInt(0, 1000));
}
BENCHMARK(BM_RngUniformInt);

void BM_RngPoisson(benchmark::State& state) {
  Rng rng(1);
  const double mean = static_cast<double>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(rng.Poisson(mean));
}
BENCHMARK(BM_RngPoisson)->Arg(4)->Arg(32)->Arg(1024);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(1);
  const int64_t n = state.range(0);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Zipf(n, 1.1));
}
BENCHMARK(BM_RngZipf)->Arg(100)->Arg(100000);

void BM_RunningStatsAdd(benchmark::State& state) {
  RunningStats stats;
  Rng rng(1);
  for (auto _ : state) stats.Add(rng.NextDouble());
  benchmark::DoNotOptimize(stats.mean());
}
BENCHMARK(BM_RunningStatsAdd);

void BM_LatencyRecorderRecord(benchmark::State& state) {
  LatencyRecorder rec(static_cast<size_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) rec.Record(rng.NextDouble());
  benchmark::DoNotOptimize(rec.Count());
}
BENCHMARK(BM_LatencyRecorderRecord)->Arg(0)->Arg(4096);

void BM_LatencyRecorderPercentile(benchmark::State& state) {
  LatencyRecorder rec;
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) rec.Record(rng.NextDouble());
  for (auto _ : state) {
    rec.Record(rng.NextDouble());  // invalidate the sort cache
    benchmark::DoNotOptimize(rec.Percentile(50));
  }
}
BENCHMARK(BM_LatencyRecorderPercentile)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace pdsp
