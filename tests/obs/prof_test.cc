#include "src/obs/prof.h"

#include <gtest/gtest.h>

#include <time.h>

#include <cmath>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/file_util.h"
#include "src/exec/thread_pool.h"
#include "src/harness/harness.h"
#include "src/obs/svg.h"
#include "src/store/json.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace obs {
namespace prof {
namespace {

double ThreadCpuNow() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
}

/// Burns roughly `seconds` of CPU on the calling thread (busy loop against
/// the thread CPU clock, so sleeps/preemption don't count).
void BurnCpu(double seconds) {
  const double start = ThreadCpuNow();
  volatile double sink = 0.0;
  while (ThreadCpuNow() - start < seconds) {
    for (int i = 0; i < 1000; ++i) sink = sink + std::sqrt(double(i));
  }
  (void)sink;
}

TEST(InternNameTest, StableIdsRoundTripAndZeroIsReserved) {
  const uint32_t a = InternName("prof-test-alpha");
  const uint32_t b = InternName("prof-test-beta");
  EXPECT_GE(a, 1u);
  EXPECT_NE(a, b);
  EXPECT_EQ(InternName("prof-test-alpha"), a);  // idempotent
  EXPECT_EQ(LookupName(a), "prof-test-alpha");
  EXPECT_EQ(LookupName(0), "");
  EXPECT_EQ(LookupName(0xfffffff0u), "");
}

TEST(PackFrameTest, KindAndNameRoundTrip) {
  const uint64_t f = PackFrame(FrameKind::kOperator, 0xdeadbeefu);
  EXPECT_EQ(FrameKindOf(f), FrameKind::kOperator);
  EXPECT_EQ(FrameNameOf(f), 0xdeadbeefu);
}

TEST(MarkerStackTest, PushPopSnapshotRoundTrip) {
  MarkerStack stack;
  uint64_t frames[kMaxMarkerDepth];
  EXPECT_EQ(stack.Snapshot(frames), 0);

  stack.Push(FrameKind::kPhase, 11);
  stack.Push(FrameKind::kOperator, 22);
  ASSERT_EQ(stack.Snapshot(frames), 2);
  EXPECT_EQ(frames[0], PackFrame(FrameKind::kPhase, 11));
  EXPECT_EQ(frames[1], PackFrame(FrameKind::kOperator, 22));

  stack.Pop();
  ASSERT_EQ(stack.Snapshot(frames), 1);
  EXPECT_EQ(frames[0], PackFrame(FrameKind::kPhase, 11));
  stack.Pop();
  EXPECT_EQ(stack.Snapshot(frames), 0);
  stack.Pop();  // unbalanced pop is ignored, not UB
  EXPECT_EQ(stack.depth(), 0u);
}

TEST(MarkerStackTest, OverflowTruncatesButKeepsPopsPaired) {
  MarkerStack stack;
  const int pushes = kMaxMarkerDepth + 4;
  for (int i = 0; i < pushes; ++i) {
    stack.Push(FrameKind::kKernel, static_cast<uint32_t>(i + 1));
  }
  EXPECT_EQ(stack.depth(), static_cast<uint32_t>(pushes));
  EXPECT_EQ(stack.truncated(), 4);

  uint64_t frames[kMaxMarkerDepth];
  ASSERT_EQ(stack.Snapshot(frames), kMaxMarkerDepth);
  // The retained frames are the OUTERMOST kMaxMarkerDepth ones.
  EXPECT_EQ(FrameNameOf(frames[kMaxMarkerDepth - 1]),
            static_cast<uint32_t>(kMaxMarkerDepth));

  for (int i = 0; i < pushes; ++i) stack.Pop();
  EXPECT_EQ(stack.depth(), 0u);
  EXPECT_EQ(stack.Snapshot(frames), 0);
}

TEST(ProfScopeTest, NoOpWhenNoProfilerIsActive) {
  ThreadRegistration reg("prof-test-inactive");
  ASSERT_FALSE(ProfilingActive());
  ThreadEntry* entry = CurrentThreadEntry();
  ASSERT_NE(entry, nullptr);
  {
    ProfScope scope(FrameKind::kOperator, InternName("idle-op"));
    EXPECT_EQ(entry->stack.depth(), 0u);  // gated off: nothing pushed
  }
  EXPECT_EQ(entry->stack.depth(), 0u);
}

TEST(ThreadRegistrationTest, NestedRegistrationIsANoOp) {
  ThreadRegistration outer("prof-test-outer");
  EXPECT_TRUE(outer.owner());
  ThreadEntry* entry = CurrentThreadEntry();
  ASSERT_NE(entry, nullptr);
  {
    ThreadRegistration inner("prof-test-inner");
    EXPECT_FALSE(inner.owner());
    EXPECT_EQ(CurrentThreadEntry(), entry);  // outer entry kept
  }
  EXPECT_EQ(CurrentThreadEntry(), entry);
}

TEST(ProfilerTest, StartRequiresARegisteredThread) {
  std::async(std::launch::async, [] {
    ProfOptions options;
    options.enabled = true;
    Profiler profiler(options);
    const Status st = profiler.Start();
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  }).get();
}

TEST(ProfilerTest, CapturesMarkedCpuAndTotalsTelescope) {
  ThreadRegistration reg("prof-test-capture");
  ProfOptions options;
  options.enabled = true;
  options.hz = 499.0;
  Profiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  {
    ProfScope phase(FrameKind::kPhase, "simulate");
    ProfScope app(FrameKind::kApp, "unit");
    ProfScope op(FrameKind::kOperator, "burn");
    BurnCpu(0.05);
  }
  const CpuProfile profile = profiler.Stop();
  ASSERT_FALSE(profile.empty());
  EXPECT_GE(profile.samples, 1);
  EXPECT_GT(profile.total_cpu_s, 0.0);
  EXPECT_DOUBLE_EQ(profile.hz, 499.0);

  // Telescoping: folded stacks, per-operator and per-phase tables are each
  // a partition of the same sampled CPU total.
  double folded = 0.0, ops = 0.0, phases = 0.0;
  for (const FoldedSample& f : profile.folded) folded += f.cpu_s;
  for (const FrameTotal& o : profile.operators) ops += o.cpu_s;
  for (const FrameTotal& p : profile.phases) phases += p.cpu_s;
  EXPECT_NEAR(folded, profile.total_cpu_s, 1e-9);
  EXPECT_NEAR(ops, profile.total_cpu_s, 1e-9);
  EXPECT_NEAR(phases, profile.total_cpu_s, 1e-9);

  // The burn scope dominates: its folded stack and operator row exist.
  bool found_stack = false;
  for (const FoldedSample& f : profile.folded) {
    if (f.stack == "phase:simulate;app:unit;op:burn") found_stack = true;
  }
  EXPECT_TRUE(found_stack);
  bool found_op = false;
  for (const FrameTotal& o : profile.operators) {
    if (o.name == "burn") found_op = true;
  }
  EXPECT_TRUE(found_op);
}

TEST(ProfilerTest, FinalSampleGuaranteesDataForShortRuns) {
  ThreadRegistration reg("prof-test-short");
  ProfOptions options;
  options.enabled = true;
  options.hz = 1.0;  // the periodic tick will never fire in this window
  Profiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  BurnCpu(0.005);
  const CpuProfile profile = profiler.Stop();
  EXPECT_GE(profile.samples, 1);  // Stop() takes one final sample
  EXPECT_GT(profile.total_cpu_s, 0.0);
}

TEST(ProfilerTest, SecondStartWhileRunningFails) {
  ThreadRegistration reg("prof-test-double");
  ProfOptions options;
  options.enabled = true;
  Profiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_FALSE(profiler.Start().ok());
  profiler.Stop();
}

TEST(ProfilerTest, ConcurrentScopesAcrossPoolWorkersStaySane) {
  // TSan leg of the suite: 4 registered pool workers hammer push/pop —
  // including past-depth truncation — while the sampler walks all threads.
  ThreadRegistration reg("prof-test-hammer");
  ProfOptions options;
  options.enabled = true;
  options.hz = 997.0;
  options.all_threads = true;
  Profiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());

  const uint32_t op_id = InternName("hammer-op");
  const uint32_t kernel_id = InternName("hammer-kernel");
  {
    exec::ThreadPool pool(4);
    std::vector<std::future<void>> done;
    for (int t = 0; t < 8; ++t) {
      done.push_back(pool.Submit([op_id, kernel_id] {
        for (int i = 0; i < 20000; ++i) {
          ProfScope op(FrameKind::kOperator, op_id);
          ProfScope kernel(FrameKind::kKernel, kernel_id);
          if (i % 64 == 0) {
            std::vector<std::unique_ptr<ProfScope>> deep;
            for (int d = 0; d < kMaxMarkerDepth + 4; ++d) {
              deep.push_back(std::make_unique<ProfScope>(FrameKind::kKernel,
                                                         kernel_id));
            }
          }
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  const CpuProfile profile = profiler.Stop();
  // Torn snapshots are allowed (counted, CPU kept); totals still telescope.
  double folded = 0.0;
  for (const FoldedSample& f : profile.folded) folded += f.cpu_s;
  EXPECT_NEAR(folded, profile.total_cpu_s, 1e-9);
  EXPECT_GE(profile.dropped, 0);
}

TEST(CpuProfileJsonTest, RoundTripsThroughJson) {
  CpuProfile profile;
  profile.hz = 97.0;
  profile.duration_s = 1.25;
  profile.total_cpu_s = 0.5;
  profile.samples = 42;
  profile.dropped = 1;
  profile.truncated = 3;
  profile.sampler_cpu_s = 0.001;
  profile.folded = {{"phase:simulate;op:count", 40, 0.45},
                    {"(unmarked)", 2, 0.05}};
  profile.operators = {{"count", 40, 0.45}, {"(none)", 2, 0.05}};
  profile.phases = {{"simulate", 40, 0.45}, {"(none)", 2, 0.05}};
  profile.threads = {{"main", 42, 0.5}};

  auto parsed = CpuProfile::FromJson(profile.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema_version, kProfileSchemaVersion);
  EXPECT_DOUBLE_EQ(parsed->hz, 97.0);
  EXPECT_DOUBLE_EQ(parsed->duration_s, 1.25);
  EXPECT_DOUBLE_EQ(parsed->total_cpu_s, 0.5);
  EXPECT_EQ(parsed->samples, 42);
  EXPECT_EQ(parsed->dropped, 1);
  EXPECT_EQ(parsed->truncated, 3);
  ASSERT_EQ(parsed->folded.size(), 2u);
  EXPECT_EQ(parsed->folded[0].stack, "phase:simulate;op:count");
  EXPECT_EQ(parsed->folded[0].samples, 40);
  ASSERT_EQ(parsed->operators.size(), 2u);
  EXPECT_EQ(parsed->operators[0].name, "count");
  ASSERT_EQ(parsed->phases.size(), 2u);
  ASSERT_EQ(parsed->threads.size(), 1u);
  EXPECT_EQ(parsed->threads[0].name, "main");
}

TEST(CpuProfileJsonTest, RejectsUnknownSchemaVersion) {
  CpuProfile profile;
  profile.samples = 1;
  Json j = profile.ToJson();
  j.Set("schema_version", Json::Int(99));
  EXPECT_FALSE(CpuProfile::FromJson(j).ok());
  EXPECT_FALSE(CpuProfile::FromJson(Json::Array()).ok());
}

TEST(MeasureCellProfileTest, WritesProfileJsonAndLedgerSummary) {
  const std::string dir = ::testing::TempDir() + "/pdsp_prof_cell";
  std::filesystem::remove_all(dir);
  auto plan = testing::LinearPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  RunProtocol protocol;
  protocol.repeats = 1;
  protocol.duration_s = 2.0;
  protocol.warmup_s = 0.5;
  protocol.label = "prof-unit";
  protocol.profile.enabled = true;
  protocol.profile.hz = 997.0;
  protocol.obs.enabled = true;
  protocol.obs.dir = dir;
  auto cell = MeasureCell(*plan, Cluster::M510(4), protocol);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  ASSERT_TRUE(cell->has_profile);
  EXPECT_GE(cell->profile.samples, 1);

  // The bundle's profile.json parses back to the same profile.
  auto text = ReadTextFile(dir + "/profile.json");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto json = Json::Parse(*text);
  ASSERT_TRUE(json.ok());
  auto parsed = CpuProfile::FromJson(*json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->samples, cell->profile.samples);
  EXPECT_DOUBLE_EQ(parsed->total_cpu_s, cell->profile.total_cpu_s);

  // Ledger summary mirrors the profile.
  EXPECT_EQ(cell->ledger_record.profile_samples, cell->profile.samples);
  EXPECT_DOUBLE_EQ(cell->ledger_record.profile_cpu_s,
                   cell->profile.total_cpu_s);
  const Json record_json = cell->ledger_record.ToJson();
  EXPECT_TRUE(record_json["profile"].is_object());
}

TEST(MeasureCellProfileTest, ProfilingLeavesVirtualTimeResultsBitIdentical) {
  auto plan = testing::LinearPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  RunProtocol base;
  base.repeats = 1;
  base.duration_s = 2.0;
  base.warmup_s = 0.5;
  auto plain = MeasureCell(*plan, Cluster::M510(4), base);
  RunProtocol profiled = base;
  profiled.profile.enabled = true;
  profiled.profile.hz = 997.0;
  auto prof = MeasureCell(*plan, Cluster::M510(4), profiled);
  ASSERT_TRUE(plain.ok() && prof.ok());
  ASSERT_TRUE(prof->has_profile);
  // Exact equality, not near: the profiler only reads host clocks.
  EXPECT_EQ(plain->mean_median_latency_s, prof->mean_median_latency_s);
  EXPECT_EQ(plain->mean_throughput_tps, prof->mean_throughput_tps);
  EXPECT_EQ(plain->p95_latency_s, prof->p95_latency_s);
  EXPECT_EQ(plain->p99_latency_s, prof->p99_latency_s);
  EXPECT_EQ(plain->late_drops, prof->late_drops);
  EXPECT_EQ(plain->backpressure_skipped, prof->backpressure_skipped);
}

TEST(FlameGraphTest, RendersStacksAndEscapesHostileFrameNames) {
  svg::FlameGraphSpec spec;
  spec.title = "unit flame";
  spec.stacks = {{"phase:simulate;app:WC;op:count", 0.6},
                 {"phase:simulate;app:WC;op:<script>alert(1)</script>", 0.4}};
  const std::string out = svg::RenderFlameGraph(spec);
  EXPECT_NE(out.find("<svg"), std::string::npos);
  EXPECT_NE(out.find("op:count"), std::string::npos);
  EXPECT_EQ(out.find("<script>"), std::string::npos);
  EXPECT_NE(out.find("&lt;script&gt;"), std::string::npos);

  // Empty and non-finite specs still render a valid placeholder SVG.
  EXPECT_NE(svg::RenderFlameGraph(svg::FlameGraphSpec()).find("<svg"),
            std::string::npos);
  svg::FlameGraphSpec bad;
  bad.stacks = {{"op:x", std::nan("")}, {"op:y", -1.0}};
  EXPECT_NE(svg::RenderFlameGraph(bad).find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace prof
}  // namespace obs
}  // namespace pdsp
