#include "src/data/batch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/runtime/element.h"
#include "src/runtime/kernels.h"

namespace pdsp {
namespace {

data::BatchLayout KeyValueLayout() {
  return data::BatchLayout({DataType::kInt, DataType::kDouble});
}

Tuple MakeTuple(std::vector<Value> values, double event_time) {
  Tuple t;
  t.values = std::move(values);
  t.event_time = event_time;
  return t;
}

TEST(BatchTest, AppendTupleRoundTripsRows) {
  data::Batch b(KeyValueLayout());
  b.AppendTuple(MakeTuple({Value(7), Value(1.5)}, 0.25), 0.125, 3);
  b.AppendTuple(MakeTuple({Value(-2), Value(0.0)}, 0.5), 0.375, 4);
  ASSERT_EQ(b.NumRows(), 2u);
  EXPECT_EQ(b.promotions(), 0u);

  Tuple t0 = b.RowTuple(0);
  EXPECT_EQ(t0.values[0], Value(7));
  EXPECT_EQ(t0.values[1], Value(1.5));
  EXPECT_DOUBLE_EQ(t0.event_time, 0.25);
  EXPECT_DOUBLE_EQ(b.birth(0), 0.125);
  EXPECT_EQ(b.attr_id(0), 3u);
  EXPECT_EQ(b.RowTuple(1).values[0], Value(-2));
  EXPECT_EQ(b.attr_id(1), 4u);
}

TEST(BatchTest, TypeMismatchPromotesColumnExactly) {
  data::Batch b(KeyValueLayout());
  b.AppendTuple(MakeTuple({Value(1), Value(2.0)}, 0.0), 0.0, kNoAttr);
  // A string where the layout says int: the column must fall back rather
  // than coerce, preserving the value bit-for-bit.
  b.AppendTuple(MakeTuple({Value("oops"), Value(3.0)}, 1.0), 1.0, kNoAttr);
  EXPECT_EQ(b.promotions(), 1u);
  EXPECT_TRUE(b.column_promoted(0));
  EXPECT_FALSE(b.column_promoted(1));
  EXPECT_EQ(b.IntData(0), nullptr);
  EXPECT_EQ(b.ValueAt(0, 0), Value(1));
  EXPECT_EQ(b.ValueAt(1, 0), Value("oops"));
  EXPECT_EQ(b.ValueAt(1, 1), Value(3.0));
}

TEST(BatchTest, ShortStringsInternLongStringsDoNot) {
  data::Batch b(data::BatchLayout({DataType::kString}));
  const std::string repeated = "hello";
  const std::string long_payload(data::Batch::kInternMaxBytes + 1, 'x');
  for (int i = 0; i < 100; ++i) {
    b.AppendString(0, repeated);
    b.FinishRow(0.0, 0.0, kNoAttr);
  }
  const size_t interned_bytes = b.ArenaBytes();
  EXPECT_EQ(interned_bytes, repeated.size());  // one arena copy
  const std::string_view* d = b.StringData(0);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d[0].data(), d[99].data());  // all views share the copy
  b.AppendString(0, long_payload);
  b.FinishRow(0.0, 0.0, kNoAttr);
  b.AppendString(0, long_payload);
  b.FinishRow(0.0, 0.0, kNoAttr);
  // Long payloads are appended as-is, once per row.
  EXPECT_EQ(b.ArenaBytes(), interned_bytes + 2 * long_payload.size());
}

TEST(BatchTest, AppendGatherSelectsRepeatsAndHandlesEdgeCases) {
  data::Batch src(KeyValueLayout());
  for (int i = 0; i < 4; ++i) {
    src.AppendTuple(MakeTuple({Value(i), Value(i * 0.5)}, i), i, kNoAttr);
  }
  // Empty selection.
  data::Batch none(KeyValueLayout());
  none.AppendGather(src, {});
  EXPECT_EQ(none.NumRows(), 0u);
  // Full selection preserves order.
  data::Batch all(KeyValueLayout());
  all.AppendGather(src, {0, 1, 2, 3});
  ASSERT_EQ(all.NumRows(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(all.RowTuple(r).values[0], src.RowTuple(r).values[0]);
  }
  // Single survivor.
  data::Batch one(KeyValueLayout());
  one.AppendGather(src, {2});
  ASSERT_EQ(one.NumRows(), 1u);
  EXPECT_EQ(one.RowTuple(0).values[0], Value(2));
  // Repeated indices (FlatMap replication).
  data::Batch twice(KeyValueLayout());
  twice.AppendGather(src, {1, 1, 3});
  ASSERT_EQ(twice.NumRows(), 3u);
  EXPECT_EQ(twice.RowTuple(0).values[0], Value(1));
  EXPECT_EQ(twice.RowTuple(1).values[0], Value(1));
  EXPECT_EQ(twice.RowTuple(2).values[0], Value(3));
}

TEST(BatchTest, WireSizeMatchesTupleWireSize) {
  data::Batch b(data::BatchLayout(
      {DataType::kInt, DataType::kDouble, DataType::kString}));
  b.AppendTuple(MakeTuple({Value(1), Value(2.0), Value("abc")}, 0.0), 0.0,
                kNoAttr);
  b.AppendTuple(MakeTuple({Value(2), Value(3.0), Value("defghij")}, 1.0), 1.0,
                kNoAttr);
  size_t expected = 0;
  for (size_t r = 0; r < b.NumRows(); ++r) {
    expected += b.RowTuple(r).WireSize();
  }
  EXPECT_EQ(b.WireSize(0, b.NumRows()), expected);
  EXPECT_EQ(b.WireSize(1, 2), b.RowTuple(1).WireSize());
  EXPECT_EQ(b.WireSize(0, 0), 0u);
}

// The property test of the tentpole contract: any tuple a randomized
// Table-3 stream can produce (1-15 columns, every type mix) survives a trip
// through a batch — including through gather and range copies — unchanged.
TEST(BatchPropertyTest, RoundTripOverRandomizedSchemas) {
  Rng rng(20240808);
  for (int trial = 0; trial < 50; ++trial) {
    SchemaRandomizerOptions opt;
    StreamSpec spec = RandomStreamSpec(opt, &rng);
    auto gen = TupleGenerator::Create(spec.schema, spec.specs,
                                      1000 + static_cast<uint64_t>(trial));
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    data::Batch b{data::BatchLayout(spec.schema)};
    std::vector<Tuple> originals;
    for (int i = 0; i < 64; ++i) {
      Tuple t = gen->Next(i * 0.001);
      b.AppendTuple(t, i * 0.001, static_cast<uint32_t>(i));
      originals.push_back(std::move(t));
    }
    ASSERT_EQ(b.NumRows(), originals.size());
    EXPECT_EQ(b.promotions(), 0u) << "trial " << trial;
    // Direct round trip.
    for (size_t r = 0; r < originals.size(); ++r) {
      const Tuple back = b.RowTuple(r);
      ASSERT_EQ(back.values.size(), originals[r].values.size());
      for (size_t c = 0; c < back.values.size(); ++c) {
        EXPECT_EQ(back.values[c], originals[r].values[c])
            << "trial " << trial << " row " << r << " col " << c;
        EXPECT_EQ(back.values[c].type(), originals[r].values[c].type());
      }
      EXPECT_DOUBLE_EQ(back.event_time, originals[r].event_time);
      EXPECT_EQ(b.attr_id(r), static_cast<uint32_t>(r));
    }
    // Through a range copy and a reversing gather.
    data::Batch range{data::BatchLayout(spec.schema)};
    range.AppendRange(b, 16, 48);
    ASSERT_EQ(range.NumRows(), 32u);
    for (size_t r = 0; r < 32; ++r) {
      EXPECT_EQ(range.RowTuple(r).values, originals[16 + r].values);
    }
    data::SelectionVector reversed;
    for (size_t r = originals.size(); r > 0; --r) {
      reversed.push_back(static_cast<uint32_t>(r - 1));
    }
    data::Batch gathered{data::BatchLayout(spec.schema)};
    gathered.AppendGather(b, reversed);
    for (size_t r = 0; r < originals.size(); ++r) {
      EXPECT_EQ(gathered.RowTuple(r).values,
                originals[originals.size() - 1 - r].values);
    }
  }
}

// Generator equivalence: the columnar append path must draw the identical
// RNG sequence as the row path, so sources produce bit-identical streams
// whichever path the engine uses.
TEST(BatchPropertyTest, GeneratorAppendNextMatchesNext) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    SchemaRandomizerOptions opt;
    StreamSpec spec = RandomStreamSpec(opt, &rng);
    const uint64_t seed = 5000 + static_cast<uint64_t>(trial);
    auto row_gen = TupleGenerator::Create(spec.schema, spec.specs, seed);
    auto col_gen = TupleGenerator::Create(spec.schema, spec.specs, seed);
    ASSERT_TRUE(row_gen.ok() && col_gen.ok());
    data::Batch b{data::BatchLayout(spec.schema)};
    std::vector<Tuple> rows;
    for (int i = 0; i < 256; ++i) {
      rows.push_back(row_gen->Next(i * 0.01));
      col_gen->AppendNext(i * 0.01, i * 0.01, kNoAttr, &b);
    }
    ASSERT_EQ(b.NumRows(), rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      const Tuple back = b.RowTuple(r);
      ASSERT_EQ(back.values.size(), rows[r].values.size());
      for (size_t c = 0; c < back.values.size(); ++c) {
        EXPECT_EQ(back.values[c], rows[r].values[c])
            << "trial " << trial << " row " << r << " col " << c;
      }
    }
  }
}

// Regression for the keying contract (satellite of the columnar refactor):
// Value::Hash must treat 1 and 1.0 as the same key, and the columnar hash
// kernel must agree with the scalar hash for every key type, or hash
// partitioning would route the same key to different instances depending on
// the data plane in use.
TEST(ValueHashRegressionTest, IntAndIntegralDoubleHashAlike) {
  EXPECT_EQ(Value(1).Hash(), Value(1.0).Hash());
  EXPECT_EQ(Value(-3).Hash(), Value(-3.0).Hash());
  EXPECT_EQ(Value(0).Hash(), Value(0.0).Hash());
  EXPECT_NE(Value(1.5).Hash(), Value(1).Hash());
  EXPECT_EQ(HashInt64Value(1), Value(1).Hash());
  EXPECT_EQ(HashDoubleValue(1.0), Value(1.0).Hash());
  EXPECT_EQ(HashStringValue("key"), Value("key").Hash());
}

TEST(ValueHashRegressionTest, ColumnarHashKernelMatchesScalarHash) {
  data::Batch b(data::BatchLayout(
      {DataType::kInt, DataType::kDouble, DataType::kString}));
  Rng rng(9);
  for (int i = 0; i < 128; ++i) {
    b.AppendInt(0, rng.UniformInt(-1000, 1000));
    // Mix integral and fractional doubles so the integral-double folding
    // path is exercised.
    b.AppendDouble(1, i % 2 == 0 ? static_cast<double>(i)
                                 : rng.Uniform(0.0, 100.0));
    b.AppendString(2, DictionaryWord(rng.UniformInt(0, 500)));
    b.FinishRow(0.0, 0.0, kNoAttr);
  }
  std::vector<uint64_t> hashes(b.NumRows());
  for (size_t col = 0; col < b.NumColumns(); ++col) {
    kernels::HashColumn(b, 0, b.NumRows(), col, hashes.data());
    for (size_t r = 0; r < b.NumRows(); ++r) {
      EXPECT_EQ(hashes[r], b.ValueAt(r, col).Hash())
          << "col " << col << " row " << r;
    }
  }
}

}  // namespace
}  // namespace pdsp
