// Plan factories for the fourteen real-world applications. Each factory
// assembles a domain-faithful stream schema + generator and the dataflow the
// application is known for (DSPBench / Linear Road / DEBS'14 shapes).

#include <utility>

#include "src/apps/apps.h"
#include "src/query/builder.h"

namespace pdsp {

namespace {

ArrivalProcess::Options Poisson(double rate) {
  ArrivalProcess::Options a;
  a.kind = ArrivalKind::kPoisson;
  a.rate = rate;
  return a;
}

WindowSpec TumblingMs(double ms, double scale) {
  WindowSpec w;
  w.type = WindowType::kTumbling;
  w.policy = WindowPolicy::kTime;
  w.duration_ms = ms * scale;
  return w;
}

WindowSpec SlidingMs(double ms, double slide_ratio, double scale) {
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.policy = WindowPolicy::kTime;
  w.duration_ms = ms * scale;
  w.slide_ratio = slide_ratio;
  return w;
}

FieldGeneratorSpec ZipfKey(int64_t cardinality, double s) {
  FieldGeneratorSpec g;
  g.dist = FieldDistribution::kZipfKey;
  g.cardinality = cardinality;
  g.zipf_s = s;
  return g;
}

FieldGeneratorSpec UniformKey(int64_t cardinality) {
  FieldGeneratorSpec g;
  g.dist = FieldDistribution::kUniformKey;
  g.cardinality = cardinality;
  return g;
}

FieldGeneratorSpec UniformInt(double lo, double hi) {
  FieldGeneratorSpec g;
  g.dist = FieldDistribution::kUniformInt;
  g.min = lo;
  g.max = hi;
  return g;
}

FieldGeneratorSpec UniformDouble(double lo, double hi) {
  FieldGeneratorSpec g;
  g.dist = FieldDistribution::kUniformDouble;
  g.min = lo;
  g.max = hi;
  return g;
}

FieldGeneratorSpec NormalDouble(double lo, double hi) {
  FieldGeneratorSpec g;
  g.dist = FieldDistribution::kNormalDouble;
  g.min = lo;
  g.max = hi;
  return g;
}

FieldGeneratorSpec Sentence(int min_words, int max_words, int64_t vocab,
                            double s) {
  FieldGeneratorSpec g;
  g.dist = FieldDistribution::kSentence;
  g.min = min_words;
  g.max = max_words;
  g.cardinality = vocab;
  g.zipf_s = s;
  return g;
}

StreamSpec MakeStream(std::vector<std::pair<Field, FieldGeneratorSpec>>
                          fields) {
  StreamSpec spec;
  for (auto& [field, gen] : fields) {
    (void)spec.schema.AddField(field);
    spec.specs.push_back(gen);
  }
  return spec;
}

Result<LogicalPlan> Finish(PlanBuilder* b) { return b->Build(); }

// --- individual applications ---

Result<LogicalPlan> MakeWordCount(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "sentences",
      MakeStream({{{"text", DataType::kString},
                   Sentence(6, 12, 20000, 1.05)}}),
      Poisson(o.event_rate), o.parallelism);
  auto tok = b.UdoWithSchema(
      "tokenize", src, "tokenize_words",
      {{"word", DataType::kString}, {"one", DataType::kInt}},
      /*cost=*/1.5, /*selectivity=*/9.0, /*stateful=*/false, o.parallelism);
  auto counts =
      b.WindowAggregate("word_counts", tok, TumblingMs(1000, o.window_scale),
                        AggregateFn::kSum, /*agg=*/1, /*key=*/0,
                        o.parallelism);
  b.Sink("sink", counts);
  return Finish(&b);
}

Result<LogicalPlan> MakeMachineOutlier(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "metrics",
      MakeStream({{{"machine", DataType::kInt}, UniformKey(1000)},
                  {{"cpu", DataType::kDouble}, NormalDouble(0, 100)},
                  {{"mem", DataType::kDouble}, NormalDouble(0, 100)}}),
      Poisson(o.event_rate), o.parallelism);
  auto score = b.UdoWithSchema(
      "outlier_score", src, "mo_score",
      {{"machine", DataType::kInt}, {"score", DataType::kDouble}},
      /*cost=*/2.0, /*selectivity=*/1.0, /*stateful=*/true, o.parallelism);
  auto alerts = b.Filter("alerts", score, 1, FilterOp::kGt, Value(3.5),
                         o.parallelism);
  b.WithSelectivityHint(alerts, 0.05);
  auto agg = b.WindowAggregate("alert_rate", alerts,
                               TumblingMs(1000, o.window_scale),
                               AggregateFn::kAvg, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeLinearRoad(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "position_reports",
      MakeStream({{{"type", DataType::kInt}, UniformInt(0, 4)},
                  {{"vehicle", DataType::kInt}, UniformKey(100000)},
                  {{"speed", DataType::kDouble}, NormalDouble(0, 100)},
                  {{"segment", DataType::kInt}, ZipfKey(200, 0.6)}}),
      Poisson(o.event_rate), o.parallelism);
  auto pos = b.Filter("position_only", src, 0, FilterOp::kEq, Value(0),
                      o.parallelism);
  b.WithSelectivityHint(pos, 0.2);
  auto speed = b.WindowAggregate(
      "segment_speed", pos, SlidingMs(5000, 0.2, o.window_scale),
      AggregateFn::kAvg, /*agg=*/2, /*key=*/3, o.parallelism);
  auto toll = b.UdoWithSchema(
      "toll", speed, "lr_toll",
      {{"segment", DataType::kInt}, {"toll", DataType::kDouble}},
      /*cost=*/1.5, /*selectivity=*/0.45, /*stateful=*/false, o.parallelism);
  b.Sink("sink", toll);
  return Finish(&b);
}

Result<LogicalPlan> MakeSentimentAnalysis(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "tweets",
      MakeStream({{{"user", DataType::kInt}, UniformKey(500000)},
                  {{"text", DataType::kString},
                   Sentence(8, 20, 50000, 1.0)}}),
      Poisson(o.event_rate), o.parallelism);
  auto score = b.UdoWithSchema(
      "sentiment", src, "sa_score",
      {{"shard", DataType::kInt},
       {"score", DataType::kDouble},
       {"polarity", DataType::kInt}},
      /*cost=*/3.0, /*selectivity=*/1.0, /*stateful=*/false, o.parallelism);
  auto agg = b.WindowAggregate("sentiment_volume", score,
                               TumblingMs(1000, o.window_scale),
                               AggregateFn::kSum, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeSmartGrid(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "plugs",
      MakeStream({{{"house", DataType::kInt}, UniformKey(40)},
                  {{"plug", DataType::kInt}, UniformKey(120)},
                  {{"load", DataType::kDouble}, NormalDouble(0, 400)}}),
      Poisson(o.event_rate), o.parallelism);
  auto outlier = b.UdoWithSchema(
      "load_outlier", src, "sg_outlier",
      {{"house", DataType::kInt},
       {"load", DataType::kDouble},
       {"ratio", DataType::kDouble}},
      /*cost=*/2.5, /*selectivity=*/0.15, /*stateful=*/true, o.parallelism);
  auto agg = b.WindowAggregate("house_load", outlier,
                               SlidingMs(2000, 0.5, o.window_scale),
                               AggregateFn::kAvg, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeSpikeDetection(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "sensors",
      MakeStream({{{"sensor", DataType::kInt}, UniformKey(500)},
                  {{"value", DataType::kDouble}, NormalDouble(0, 100)}}),
      Poisson(o.event_rate), o.parallelism);
  auto spikes = b.UdoWithSchema(
      "spike_detect", src, "sd_spike",
      {{"sensor", DataType::kInt},
       {"value", DataType::kDouble},
       {"avg", DataType::kDouble}},
      /*cost=*/2.0, /*selectivity=*/0.1, /*stateful=*/true, o.parallelism);
  auto agg = b.WindowAggregate("spike_counts", spikes,
                               TumblingMs(1000, o.window_scale),
                               AggregateFn::kSum, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeAdAnalytics(const AppOptions& o) {
  // Ad ids scale with the event rate so the join expansion stays O(1).
  const auto ads = static_cast<int64_t>(
      std::max(1000.0, o.event_rate * 0.5));
  PlanBuilder b;
  auto impressions = b.Source(
      "impressions",
      MakeStream({{{"ad", DataType::kInt}, ZipfKey(ads, 0.4)},
                  {{"campaign", DataType::kInt}, UniformKey(100)},
                  {{"bid", DataType::kDouble}, UniformDouble(0.01, 2.0)}}),
      Poisson(o.event_rate), o.parallelism);
  auto clicks = b.Source(
      "clicks",
      MakeStream({{{"ad", DataType::kInt}, ZipfKey(ads, 0.4)},
                  {{"user", DataType::kInt}, UniformKey(100000)}}),
      Poisson(std::max(1.0, o.event_rate * 0.1)), o.parallelism);
  auto joined = b.WindowJoin("imp_click_join", impressions, clicks,
                             /*left_key=*/0, /*right_key=*/0,
                             SlidingMs(2000, 0.6, o.window_scale),
                             o.parallelism);
  auto ctr = b.UdoWithSchema(
      "ctr", joined, "ad_ctr",
      {{"campaign", DataType::kInt}, {"weight", DataType::kDouble}},
      /*cost=*/3.5, /*selectivity=*/1.0, /*stateful=*/true, o.parallelism);
  auto agg = b.WindowAggregate("campaign_ctr", ctr,
                               SlidingMs(2000, 0.5, o.window_scale),
                               AggregateFn::kSum, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeClickAnalytics(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "clicks",
      MakeStream({{{"user", DataType::kInt}, UniformKey(100000)},
                  {{"url", DataType::kString},
                   [] {
                     FieldGeneratorSpec g;
                     g.dist = FieldDistribution::kWordString;
                     g.cardinality = 10000;
                     g.zipf_s = 1.0;
                     return g;
                   }()}}),
      Poisson(o.event_rate), o.parallelism);
  auto dedup = b.UdoWithSchema(
      "dedup", src, "ca_dedup",
      {{"url", DataType::kString}, {"one", DataType::kInt}},
      /*cost=*/1.5, /*selectivity=*/0.7, /*stateful=*/true, o.parallelism);
  auto agg = b.WindowAggregate("url_visits", dedup,
                               TumblingMs(1000, o.window_scale),
                               AggregateFn::kSum, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeTrafficMonitoring(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "gps",
      MakeStream({{{"vehicle", DataType::kInt}, UniformKey(50000)},
                  {{"lat", DataType::kDouble}, UniformDouble(48.0, 49.0)},
                  {{"lon", DataType::kDouble}, UniformDouble(8.0, 9.0)},
                  {{"speed", DataType::kDouble}, NormalDouble(0, 130)}}),
      Poisson(o.event_rate), o.parallelism);
  auto matched = b.UdoWithSchema(
      "map_match", src, "tm_map_match",
      {{"road", DataType::kInt}, {"speed", DataType::kDouble}},
      /*cost=*/4.0, /*selectivity=*/1.0, /*stateful=*/false, o.parallelism);
  auto agg = b.WindowAggregate("road_speed", matched,
                               TumblingMs(1000, o.window_scale),
                               AggregateFn::kAvg, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeLogProcessing(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "logs",
      MakeStream({{{"line", DataType::kString},
                   Sentence(6, 10, 5000, 0.9)}}),
      Poisson(o.event_rate), o.parallelism);
  auto parsed = b.UdoWithSchema(
      "parse", src, "lp_parse",
      {{"status", DataType::kInt}, {"bytes", DataType::kDouble}},
      /*cost=*/2.0, /*selectivity=*/1.0, /*stateful=*/false, o.parallelism);
  auto errors = b.Filter("errors", parsed, 0, FilterOp::kGe, Value(400),
                         o.parallelism);
  b.WithSelectivityHint(errors, 0.2);
  auto agg = b.WindowAggregate("error_counts", errors,
                               TumblingMs(1000, o.window_scale),
                               AggregateFn::kSum, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeTrendingTopics(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "tweets",
      MakeStream({{{"text", DataType::kString},
                   Sentence(8, 20, 50000, 1.0)}}),
      Poisson(o.event_rate), o.parallelism);
  auto topics = b.UdoWithSchema(
      "extract", src, "tt_extract",
      {{"topic", DataType::kString}, {"one", DataType::kInt}},
      /*cost=*/2.0, /*selectivity=*/1.6, /*stateful=*/false, o.parallelism);
  auto counts = b.WindowAggregate("topic_counts", topics,
                                  SlidingMs(4000, 0.25, o.window_scale),
                                  AggregateFn::kSum, /*agg=*/1, /*key=*/0,
                                  o.parallelism);
  auto ranked = b.Udo("rank", counts, "tt_rank", /*cost=*/2.0,
                      /*selectivity=*/0.2, /*stateful=*/true, o.parallelism);
  b.Sink("sink", ranked);
  return Finish(&b);
}

Result<LogicalPlan> MakeFraudDetection(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "transactions",
      MakeStream({{{"account", DataType::kInt}, UniformKey(50000)},
                  {{"amount", DataType::kDouble}, UniformDouble(1, 5000)},
                  {{"location", DataType::kInt}, UniformInt(0, 49)}}),
      Poisson(o.event_rate), o.parallelism);
  auto flagged = b.UdoWithSchema(
      "fraud_score", src, "fd_score",
      {{"account", DataType::kInt},
       {"amount", DataType::kDouble},
       {"prob", DataType::kDouble}},
      /*cost=*/2.5, /*selectivity=*/0.15, /*stateful=*/true, o.parallelism);
  auto agg = b.WindowAggregate("fraud_volume", flagged,
                               TumblingMs(1000, o.window_scale),
                               AggregateFn::kSum, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeBargainIndex(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "quotes",
      MakeStream({{{"symbol", DataType::kInt}, ZipfKey(500, 1.0)},
                  {{"price", DataType::kDouble}, NormalDouble(10, 500)},
                  {{"volume", DataType::kDouble}, UniformDouble(1, 1000)}}),
      Poisson(o.event_rate), o.parallelism);
  auto indexed = b.UdoWithSchema(
      "vwap", src, "bi_vwap",
      {{"symbol", DataType::kInt},
       {"price", DataType::kDouble},
       {"index", DataType::kDouble}},
      /*cost=*/2.0, /*selectivity=*/1.0, /*stateful=*/true, o.parallelism);
  auto bargains = b.Filter("bargains", indexed, 2, FilterOp::kGt,
                           Value(0.002), o.parallelism);
  b.WithSelectivityHint(bargains, 0.35);
  auto agg = b.WindowAggregate("best_bargains", bargains,
                               TumblingMs(1000, o.window_scale),
                               AggregateFn::kMax, /*agg=*/2, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

Result<LogicalPlan> MakeTpcH(const AppOptions& o) {
  PlanBuilder b;
  auto src = b.Source(
      "lineitem",
      MakeStream({{{"returnflag", DataType::kInt}, UniformInt(0, 2)},
                  {{"quantity", DataType::kDouble}, UniformDouble(1, 50)},
                  {{"extendedprice", DataType::kDouble},
                   UniformDouble(100, 100000)},
                  {{"discount", DataType::kDouble}, UniformDouble(0.0, 0.1)},
                  {{"shipdays", DataType::kInt}, UniformInt(0, 120)}}),
      Poisson(o.event_rate), o.parallelism);
  auto shipped = b.Filter("shipped", src, 4, FilterOp::kLe, Value(90),
                          o.parallelism);
  auto priced = b.UdoWithSchema(
      "disc_price", shipped, "tpch_disc_price",
      {{"returnflag", DataType::kInt},
       {"disc_price", DataType::kDouble}},
      /*cost=*/1.2, /*selectivity=*/1.0, /*stateful=*/false, o.parallelism);
  auto agg = b.WindowAggregate("pricing_summary", priced,
                               TumblingMs(1000, o.window_scale),
                               AggregateFn::kSum, /*agg=*/1, /*key=*/0,
                               o.parallelism);
  b.Sink("sink", agg);
  return Finish(&b);
}

}  // namespace

Result<LogicalPlan> MakeApp(AppId id, const AppOptions& options) {
  RegisterAppUdos();
  if (options.event_rate <= 0.0) {
    return Status::InvalidArgument("event_rate must be positive");
  }
  if (options.parallelism < 1) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  if (options.window_scale <= 0.0) {
    return Status::InvalidArgument("window_scale must be positive");
  }
  switch (id) {
    case AppId::kWordCount:
      return MakeWordCount(options);
    case AppId::kMachineOutlier:
      return MakeMachineOutlier(options);
    case AppId::kLinearRoad:
      return MakeLinearRoad(options);
    case AppId::kSentimentAnalysis:
      return MakeSentimentAnalysis(options);
    case AppId::kSmartGrid:
      return MakeSmartGrid(options);
    case AppId::kSpikeDetection:
      return MakeSpikeDetection(options);
    case AppId::kAdAnalytics:
      return MakeAdAnalytics(options);
    case AppId::kClickAnalytics:
      return MakeClickAnalytics(options);
    case AppId::kTrafficMonitoring:
      return MakeTrafficMonitoring(options);
    case AppId::kLogProcessing:
      return MakeLogProcessing(options);
    case AppId::kTrendingTopics:
      return MakeTrendingTopics(options);
    case AppId::kFraudDetection:
      return MakeFraudDetection(options);
    case AppId::kBargainIndex:
      return MakeBargainIndex(options);
    case AppId::kTpcH:
      return MakeTpcH(options);
  }
  return Status::InvalidArgument("unknown application");
}

}  // namespace pdsp
