// Selectivity estimation for generated filters. Random literal selection can
// produce filters that pass nothing (or everything); the paper (Section 3.1)
// uses selectivity estimation so that generated queries only carry literals
// with 0 < selectivity < 1. We invert the generator distributions' CDFs:
// given a field's FieldGeneratorSpec we can (a) estimate the pass fraction of
// any (op, literal) predicate and (b) synthesize a literal that hits a target
// selectivity.

#ifndef PDSP_QUERY_SELECTIVITY_H_
#define PDSP_QUERY_SELECTIVITY_H_

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/data/generator.h"
#include "src/query/plan.h"

namespace pdsp {

/// Estimated pass fraction of `value <op> literal` where value follows
/// `spec`. Ordered comparisons on dictionary strings are approximated at 0.5
/// and kSequence fields (unbounded ids) likewise; both are documented
/// approximations, not errors.
Result<double> EstimateFilterSelectivity(const FieldGeneratorSpec& spec,
                                         FilterOp op, const Value& literal);

/// Synthesizes a literal such that `value <op> literal` passes roughly
/// `target` of the stream (target clamped to [0.02, 0.98]). For equality
/// predicates on key fields the closest achievable point mass is used.
Result<Value> LiteralForSelectivity(const FieldGeneratorSpec& spec,
                                    FilterOp op, double target, Rng* rng);

/// Walks upstream from (op_id, field) through schema-preserving operators
/// (filter/map/sink; UDOs and flatMaps conservatively preserve) to the source
/// field that produces it. Fails beyond aggregates/joins, whose outputs are
/// derived columns.
Result<FieldGeneratorSpec> ResolveFieldSpec(const LogicalPlan& plan,
                                            LogicalPlan::OpId op_id,
                                            size_t field);

/// Fills selectivity_hint on every filter in the plan whose hint is unset,
/// using ResolveFieldSpec + EstimateFilterSelectivity; filters whose
/// provenance cannot be resolved get the neutral default 0.5.
Status AnnotateFilterSelectivities(LogicalPlan* plan);

/// Harmonic-like normalizer sum_{k=1..n} k^-s (exact below 1e6 terms via
/// partial evaluation + integral tail; used for Zipf point masses).
double GeneralizedHarmonic(int64_t n, double s);

/// P(K_l == K_r) for two independent key draws — the per-pair equi-join
/// match probability. Skew matters: for Zipf keys this is sum_k p(k)^2,
/// far above the uniform 1/n. Falls back to 1/max(distinct) when a spec's
/// key distribution is not recognizably discrete.
double KeyMatchProbability(const FieldGeneratorSpec& left,
                           const FieldGeneratorSpec& right);

/// P(X <= k) for X ~ Zipf(n, s).
double ZipfCdf(int64_t k, int64_t n, double s);

}  // namespace pdsp

#endif  // PDSP_QUERY_SELECTIVITY_H_
