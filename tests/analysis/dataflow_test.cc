// Negative-path tests for the dataflow engine (cycles terminate with a
// diagnostic, non-monotone transfers are detected, fan-in combination is
// order-independent) plus the crafted plans the new dataflow passes must
// flag: a proven redundant shuffle (PDSP-W704), a statically over-saturated
// operator (PDSP-W605) and a statically always-false filter with its dead
// subgraph (PDSP-E503 / PDSP-W504 / PDSP-I505).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/properties.h"
#include "src/query/builder.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace analysis {
namespace {

using pdsp::testing::KeyValueStream;
using pdsp::testing::LinearPlan;
using pdsp::testing::PoissonArrival;

AnalyzeOptions Quiet() {
  AnalyzeOptions options;
  options.record_metrics = false;
  return options;
}

OperatorDescriptor Op(OperatorType type, const std::string& name) {
  OperatorDescriptor op;
  op.type = type;
  op.name = name;
  return op;
}

LogicalPlan::OpId MustAdd(LogicalPlan* plan, OperatorDescriptor op) {
  auto id = plan->AddOperator(std::move(op));
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return *id;
}

// s -> m1 -> m2 -> sink, with a back edge m2 -> m1.
LogicalPlan CyclicPlan() {
  LogicalPlan plan;
  plan.AddSource({KeyValueStream(), PoissonArrival(10)});
  auto s = MustAdd(&plan, Op(OperatorType::kSource, "s"));
  auto m1 = MustAdd(&plan, Op(OperatorType::kMap, "m1"));
  auto m2 = MustAdd(&plan, Op(OperatorType::kMap, "m2"));
  auto k = MustAdd(&plan, Op(OperatorType::kSink, "k"));
  EXPECT_TRUE(plan.Connect(s, m1).ok());
  EXPECT_TRUE(plan.Connect(m1, m2).ok());
  EXPECT_TRUE(plan.Connect(m2, m1).ok());  // back edge
  EXPECT_TRUE(plan.Connect(m2, k).ok());
  return plan;
}

// Unbounded-height "analysis": every recomputation moves the fact up, so
// on a cyclic plan it can never reach a fixed point. Monotone, though —
// the engine must stop via the visit cap, not the monotonicity check.
class CountingAnalysis : public DataflowAnalysis<int> {
 public:
  const char* name() const override { return "counting"; }
  int Bottom() const override { return 0; }
  int Boundary(const AnalysisContext&, LogicalPlan::OpId) const override {
    return 0;
  }
  int Combine(const AnalysisContext&, LogicalPlan::OpId,
              const std::vector<int>& edge_facts) const override {
    int max = 0;
    for (const int f : edge_facts) max = std::max(max, f);
    return max;
  }
  int Transfer(const AnalysisContext&, LogicalPlan::OpId,
               const int& in) const override {
    return in + 1;
  }
  bool Equal(const int& a, const int& b) const override { return a == b; }
  bool Leq(const int& a, const int& b) const override { return a <= b; }
};

// Anti-monotone "analysis": out = 100 - in with summing fan-in, so a
// growing input moves the output *down* the declared <= order. On a DAG a
// single sweep hides this; a cycle forces a recomputation that exposes it.
class AntiMonotoneAnalysis : public DataflowAnalysis<int> {
 public:
  const char* name() const override { return "anti-monotone"; }
  int Bottom() const override { return 0; }
  int Boundary(const AnalysisContext&, LogicalPlan::OpId) const override {
    return 0;
  }
  int Combine(const AnalysisContext&, LogicalPlan::OpId,
              const std::vector<int>& edge_facts) const override {
    int sum = 0;
    for (const int f : edge_facts) sum += f;
    return sum;
  }
  int Transfer(const AnalysisContext&, LogicalPlan::OpId,
               const int& in) const override {
    return 100 - in;
  }
  bool Equal(const int& a, const int& b) const override { return a == b; }
  bool Leq(const int& a, const int& b) const override { return a <= b; }
};

TEST(DataflowEngineTest, CyclicPlanTerminatesWithDiagnostic) {
  const LogicalPlan plan = CyclicPlan();
  const AnalysisContext ctx = AnalysisContext::Make(plan);
  ASSERT_FALSE(ctx.acyclic);
  const DataflowResult<int> r = RunDataflow(CountingAnalysis(), ctx);
  EXPECT_FALSE(r.stats.converged);
  EXPECT_FALSE(r.stats.ok());
  EXPECT_NE(r.stats.diagnostic.find("counting"), std::string::npos)
      << r.stats.diagnostic;
  EXPECT_NE(r.stats.diagnostic.find("fixed point"), std::string::npos)
      << r.stats.diagnostic;
}

TEST(DataflowEngineTest, NonMonotoneTransferIsDetected) {
  const LogicalPlan plan = CyclicPlan();
  const AnalysisContext ctx = AnalysisContext::Make(plan);
  const DataflowResult<int> r = RunDataflow(AntiMonotoneAnalysis(), ctx);
  EXPECT_TRUE(r.stats.monotonicity_violated);
  EXPECT_FALSE(r.stats.ok());
  EXPECT_NE(r.stats.diagnostic.find("anti-monotone"), std::string::npos)
      << r.stats.diagnostic;
  EXPECT_NE(r.stats.diagnostic.find("non-monotone"), std::string::npos)
      << r.stats.diagnostic;
}

TEST(DataflowEngineTest, AcyclicPlanConvergesInOneSweep) {
  auto plan = LinearPlan();
  ASSERT_TRUE(plan.ok());
  const AnalysisContext ctx = AnalysisContext::Make(*plan);
  ASSERT_TRUE(ctx.acyclic);
  const DataflowResult<int> r = RunDataflow(CountingAnalysis(), ctx);
  EXPECT_TRUE(r.stats.ok());
  // Topological seeding evaluates every operator exactly once on a DAG.
  EXPECT_EQ(r.stats.iterations, static_cast<int>(ctx.NumOps()));
}

TEST(DataflowEngineTest, BundledAnalysesConvergeOnWellFormedPlans) {
  for (const auto& plan :
       {pdsp::testing::LinearPlan(), pdsp::testing::TwoWayJoinPlan()}) {
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const AnalysisContext ctx = AnalysisContext::Make(*plan);
    ASSERT_NE(ctx.props, nullptr);
    EXPECT_TRUE(ctx.props->AllConverged());
  }
}

TEST(DataflowEngineTest, CyclicPlanReportsNonConvergenceInProperties) {
  const LogicalPlan plan = CyclicPlan();
  const AnalysisContext ctx = AnalysisContext::Make(plan);
  ASSERT_NE(ctx.props, nullptr);
  // The rate analysis keeps summing around the cycle and must report
  // non-convergence rather than hang; no analysis may claim a broken run.
  EXPECT_FALSE(ctx.props->AllConverged());
  // The analyzer still terminates and reports the cycle structurally.
  const AnalysisReport report = AnalyzePlan(plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E101")) << report.ToString();
}

// Two sources feeding one sink, with the connect order permuted: every
// derived fact at the fan-in must be identical (Combine is required to be
// permutation-invariant over its edge facts).
TEST(DataflowEngineTest, FanInCombineIsOrderIndependent) {
  auto build = [](bool swap) {
    LogicalPlan p;
    p.AddSource({KeyValueStream(), PoissonArrival(100)});
    p.AddSource({KeyValueStream(50), PoissonArrival(200)});
    auto s1_desc = Op(OperatorType::kSource, "s1");
    s1_desc.source_index = 0;
    auto s2_desc = Op(OperatorType::kSource, "s2");
    s2_desc.source_index = 1;
    auto s1 = MustAdd(&p, s1_desc);
    auto s2 = MustAdd(&p, s2_desc);
    auto k = MustAdd(&p, Op(OperatorType::kSink, "k"));
    if (swap) {
      EXPECT_TRUE(p.Connect(s2, k).ok());
      EXPECT_TRUE(p.Connect(s1, k).ok());
    } else {
      EXPECT_TRUE(p.Connect(s1, k).ok());
      EXPECT_TRUE(p.Connect(s2, k).ok());
    }
    return p;
  };
  const LogicalPlan a = build(false);
  const LogicalPlan b = build(true);
  const AnalysisContext ctx_a = AnalysisContext::Make(a);
  const AnalysisContext ctx_b = AnalysisContext::Make(b);
  ASSERT_NE(ctx_a.props, nullptr);
  ASSERT_NE(ctx_b.props, nullptr);
  ASSERT_EQ(ctx_a.props->ops.size(), ctx_b.props->ops.size());
  const OperatorProperties& ka = ctx_a.props->ops[2];
  const OperatorProperties& kb = ctx_b.props->ops[2];
  EXPECT_TRUE(ka.input_distribution == kb.input_distribution);
  EXPECT_TRUE(ka.input_rate == kb.input_rate);
  EXPECT_TRUE(ka.output_rate == kb.output_rate);
  EXPECT_EQ(ka.determinism, kb.determinism);
  EXPECT_EQ(ka.merge_point, kb.merge_point);
  EXPECT_EQ(ctx_a.props->verdict, ctx_b.props->verdict);
}

// --- crafted diagnostic plans --------------------------------------------

// source(p=2) -> keyed agg(p=2, key f0) -> filter(forward, p=2) ->
// hash-shuffled map(p=2): the map re-hashes on field 0, whose value
// provably originates from the same source field the aggregate already
// hashed on, across the same instance count — a proven redundant shuffle.
TEST(DataflowPassTest, RedundantShuffleYieldsW704WithFixHint) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(1000.0), 2);
  WindowSpec win;
  win.type = WindowType::kTumbling;
  win.policy = WindowPolicy::kTime;
  win.duration_ms = 1000.0;
  auto agg = b.WindowAggregate("agg", src, win, AggregateFn::kMax, 1, 0, 2);
  auto f = b.Filter("keep", agg, 1, FilterOp::kGt, Value(0.0), 2);
  b.WithPartitioning(f, Partitioning::kForward);
  auto m = b.Map("reshuffle", f, 2);
  b.WithPartitioning(m, Partitioning::kHash);
  b.Sink("sink", m);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const AnalysisContext ctx = AnalysisContext::Make(*plan);
  ASSERT_NE(ctx.props, nullptr);
  ASSERT_TRUE(ctx.props->partitioning_stats.ok());
  EXPECT_TRUE(ctx.props->ops[m].redundant_shuffle)
      << ctx.props->ToString(*plan);

  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  ASSERT_TRUE(report.HasCode("PDSP-W704")) << report.ToString();
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.code != "PDSP-W704") continue;
    EXPECT_EQ(d.op, m);
    EXPECT_NE(d.hint.find("forward partitioning"), std::string::npos)
        << d.ToString();
  }
}

// A filter placed after a rebalance does NOT receive a provably hashed
// stream, so the proof-based W704 must stay silent.
TEST(DataflowPassTest, RebalanceBreaksTheRedundancyProof) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(1000.0), 2);
  WindowSpec win;
  win.type = WindowType::kTumbling;
  win.policy = WindowPolicy::kTime;
  win.duration_ms = 1000.0;
  auto agg = b.WindowAggregate("agg", src, win, AggregateFn::kMax, 1, 0, 2);
  auto f = b.Filter("keep", agg, 1, FilterOp::kGt, Value(0.0), 2);
  b.WithPartitioning(f, Partitioning::kRebalance);
  auto m = b.Map("reshuffle", f, 2);
  b.WithPartitioning(m, Partitioning::kHash);
  b.Sink("sink", m);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_FALSE(report.HasCode("PDSP-W704")) << report.ToString();
}

// 1M ev/s into a single filter instance: the proven minimum input rate
// exceeds the reference-core service capacity (1 / 2.5us = 400k ev/s).
TEST(DataflowPassTest, OverSaturatedOperatorYieldsW605WithFixHint) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(1.0e6), 1);
  auto f = b.Filter("hot", src, 1, FilterOp::kGt, Value(50.0), 1);
  b.Sink("sink", f, 1);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  ASSERT_TRUE(report.HasCode("PDSP-W605")) << report.ToString();
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.code != "PDSP-W605") continue;
    EXPECT_EQ(d.op, f);
    // 1e6 / 400k = 2.5x => at least ceil(2.5) = 3 instances.
    EXPECT_NE(d.hint.find("at least 3"), std::string::npos) << d.ToString();
  }
}

TEST(DataflowPassTest, ComfortableRateStaysW605Silent) {
  auto plan = LinearPlan(/*rate=*/1000.0, /*parallelism=*/2);
  ASSERT_TRUE(plan.ok());
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_FALSE(report.HasCode("PDSP-W605")) << report.ToString();
}

// val is uniform in [0, 100); "val > 1000" is provably always false, the
// downstream subgraph statically dead, and "val < 1000" always true.
TEST(DataflowPassTest, AlwaysFalseFilterYieldsE503AndDeadSubgraphI505) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(100.0));
  auto f = b.Filter("never", src, 1, FilterOp::kGt, Value(1000.0));
  auto m = b.Map("dead_map", f);
  b.Sink("sink", m);
  b.SkipAnalysis();
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-E503")) << report.ToString();
  EXPECT_TRUE(report.HasCode("PDSP-I505")) << report.ToString();
  // E503 is error severity: the builder's analysis gate rejects the plan.
  EXPECT_FALSE(CheckPlan(*plan).ok());

  const AnalysisContext ctx = AnalysisContext::Make(*plan);
  ASSERT_NE(ctx.props, nullptr);
  EXPECT_TRUE(ctx.props->ops[f].filter_always_false);
  EXPECT_TRUE(ctx.props->ops[m].statically_dead);
  EXPECT_EQ(ctx.props->ops[m].input_rate.hi, 0.0);
}

TEST(DataflowPassTest, AlwaysTrueFilterYieldsW504) {
  PlanBuilder b;
  auto src = b.Source("src", KeyValueStream(), PoissonArrival(100.0));
  auto f = b.Filter("always", src, 1, FilterOp::kLt, Value(1000.0));
  b.Sink("sink", f);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AnalysisReport report = AnalyzePlan(*plan, Quiet());
  EXPECT_TRUE(report.HasCode("PDSP-W504")) << report.ToString();
  const AnalysisContext ctx = AnalysisContext::Make(*plan);
  EXPECT_TRUE(ctx.props->ops[f].filter_always_true);
}

// The determinism verdict: a single-producer p=1 chain is deterministic
// even with an order-sensitive aggregation; a join makes the plan
// order-dependent (probe results depend on cross-port interleaving).
TEST(DataflowPassTest, DeterminismVerdictsMatchPlanShape) {
  auto chain = LinearPlan(/*rate=*/1000.0, /*parallelism=*/1);
  ASSERT_TRUE(chain.ok());
  const AnalysisContext cctx = AnalysisContext::Make(*chain);
  EXPECT_EQ(cctx.props->verdict, Determinism::kDeterministic)
      << cctx.props->verdict_reason;

  auto join = pdsp::testing::TwoWayJoinPlan();
  ASSERT_TRUE(join.ok());
  const AnalysisContext jctx = AnalysisContext::Make(*join);
  EXPECT_EQ(jctx.props->verdict, Determinism::kOrderDependent)
      << jctx.props->verdict_reason;
  EXPECT_FALSE(jctx.props->verdict_reason.empty());
}

TEST(DataflowPassTest, PropertyJsonCarriesTheFullSchema) {
  auto plan = pdsp::testing::TwoWayJoinPlan();
  ASSERT_TRUE(plan.ok());
  const AnalysisContext ctx = AnalysisContext::Make(*plan);
  const Json j = ctx.props->ToJson(*plan);
  ASSERT_TRUE(j["operators"].is_array());
  ASSERT_EQ(j["operators"].size(), plan->NumOperators());
  for (size_t i = 0; i < j["operators"].size(); ++i) {
    const Json& op = j["operators"].at(i);
    EXPECT_TRUE(op["partitioning"].is_object()) << op.Dump(0);
    EXPECT_TRUE(op["rate_interval"].is_object()) << op.Dump(0);
    EXPECT_TRUE(op["determinism"].is_object()) << op.Dump(0);
  }
  EXPECT_TRUE(j["determinism"].is_object());
  EXPECT_TRUE(j["converged"].is_bool());
}

}  // namespace
}  // namespace analysis
}  // namespace pdsp
