#!/usr/bin/env bash
# The full CI gate: configure, build, run the test suite, statically analyze
# every canonical plan, and lint.
#
# Usage: tools/ci_check.sh [build-dir]
#   build-dir defaults to ./build.
#
# Environment:
#   PDSP_SANITIZE   forwarded to CMake (e.g. "address;undefined") to run the
#                   whole gate under ASan/UBSan. Changing it reconfigures the
#                   build tree.
#   PDSP_SKIP_TSAN  set to 1 to skip the ThreadSanitizer pass over the
#                   concurrency-sensitive suites (exec/sim/obs/harness).
#   JOBS            parallel build jobs (default: nproc).

set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
SANITIZE="${PDSP_SANITIZE:-}"

step() { echo; echo "=== ci_check: $* ==="; }

step "configure ($BUILD_DIR${SANITIZE:+, sanitize=$SANITIZE})"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPDSP_SANITIZE="$SANITIZE"

step "build (-j$JOBS)"
cmake --build "$BUILD_DIR" -j "$JOBS"

step "ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [ "${PDSP_SKIP_TSAN:-0}" != "1" ]; then
  step "ThreadSanitizer pass (exec/sim/obs/harness suites)"
  # A separate build tree under PDSP_SANITIZE=thread: TSan and ASan are
  # mutually exclusive, and reconfiguring the main tree would churn its
  # cache. Only the concurrency-sensitive suites are built and run — the
  # sweep scheduler fans simulations across worker threads, so these suites
  # exercise every cross-thread interaction (pool handoff, registry merge,
  # worker-phase merge, UDO registry) under the race detector.
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPDSP_SANITIZE=thread
  cmake --build "$TSAN_DIR" -j "$JOBS" \
        --target exec_test sim_test obs_test harness_test runtime_test
  for t in exec_test sim_test obs_test harness_test runtime_test; do
    echo "--- tsan: $t ---"
    "$TSAN_DIR/tests/$t"
  done
fi

step "static plan analysis (pdspbench analyze all)"
"$BUILD_DIR/tools/pdspbench" analyze all

step "runtime diagnosis smoke (pdspbench diagnose all --json)"
# Simulate + diagnose all 14 apps at well-provisioned defaults. The CLI exits
# non-zero if any error-severity PDSP-R finding fires; the parse additionally
# checks the JSON is well-formed, every app simulated, and zero runtime
# errors were reported (warnings/infos like skew or over-provisioning are
# expected and allowed).
DIAG_JSON="$BUILD_DIR/diagnose_all.json"
"$BUILD_DIR/tools/pdspbench" diagnose all --json > "$DIAG_JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$DIAG_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
failed = [p["plan"] for p in d["plans"] if "error" in p]
assert not failed, f"diagnose failed for: {failed}"
assert len(d["plans"]) >= 14, f"expected >= 14 apps, got {len(d['plans'])}"
assert d["errors"] == 0, f"unexpected PDSP-R errors on well-provisioned defaults: {d['errors']}"
print(f"diagnosed {len(d['plans'])} apps: {d['errors']} errors, {d['warnings']} warnings")
EOF
else
  echo "python3 not found; relying on the CLI exit status only"
fi

step "benchmark regression gate (tools/bench_gate.sh)"
# Small fixed subset with generous thresholds: this catches real breakage
# (a plan change, a simulator behavior change), not microbenchmark noise.
# The gate re-measures each checked-in baseline with its recorded protocol;
# virtual-time determinism makes the comparison machine-independent.
PDSP_GATE_APPS="${PDSP_GATE_APPS:-WC linear}" \
PDSP_GATE_THRESHOLD="${PDSP_GATE_THRESHOLD:-0.25}" \
PDSP_GATE_SKIP_MICRO="${PDSP_GATE_SKIP_MICRO:-1}" \
  tools/bench_gate.sh "$BUILD_DIR"

step "lint (tools/lint.sh)"
tools/lint.sh "$BUILD_DIR"

step "OK"
