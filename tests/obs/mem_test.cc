#include "src/obs/mem.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/exec/thread_pool.h"
#include "src/harness/harness.h"
#include "src/obs/host_profile.h"
#include "src/obs/prof.h"
#include "src/store/json.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace obs {
namespace mem {
namespace {

/// Allocates `count` blocks of `size` bytes. Returned blocks keep the
/// sampled bytes live; dropping the vector frees them through the
/// interposed operator delete.
std::vector<std::unique_ptr<char[]>> AllocateBlocks(int count,
                                                    std::size_t size) {
  std::vector<std::unique_ptr<char[]>> blocks;
  blocks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto block = std::make_unique<char[]>(size);
    block[0] = static_cast<char>(i);  // touch so the alloc is not elided
    blocks.push_back(std::move(block));
  }
  return blocks;
}

int64_t SumFolded(const MemProfile& p) {
  int64_t sum = 0;
  for (const MemFolded& f : p.folded) sum += f.bytes;
  return sum;
}

int64_t SumFrames(const std::vector<MemFrameTotal>& frames) {
  int64_t sum = 0;
  for (const MemFrameTotal& f : frames) sum += f.total_bytes;
  return sum;
}

TEST(MemProfilerTest, StartRequiresARegisteredThread) {
  if (!InterpositionAvailable()) GTEST_SKIP() << "interposition absent";
  std::async(std::launch::async, [] {
    MemOptions options;
    options.enabled = true;
    MemProfiler profiler(options);
    const Status st = profiler.Start();
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  }).get();
}

TEST(MemProfilerTest, InertWithoutInterpositionStillStops) {
  if (InterpositionAvailable()) GTEST_SKIP() << "interposition present";
  prof::ThreadRegistration reg("mem-test-inert");
  MemOptions options;
  options.enabled = true;
  MemProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());  // OK-but-inert, never fatal
  EXPECT_TRUE(profiler.Stop().empty());
}

TEST(MemProfilerTest, SamplesAttributeToMarkersAndTotalsTelescope) {
  if (!InterpositionAvailable()) GTEST_SKIP() << "interposition absent";
  prof::ThreadRegistration reg("mem-test-capture");
  MemOptions options;
  options.enabled = true;
  options.sample_interval_bytes = 4096;  // clamped to 1024 minimum
  MemProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_TRUE(MemProfilingActive());
  // Start() also arms the marker machinery even with no CPU sampler on.
  EXPECT_TRUE(prof::ProfilingActive());
  {
    prof::ProfScope phase(prof::FrameKind::kPhase, "simulate");
    prof::ProfScope app(prof::FrameKind::kApp, "unit");
    {
      prof::ProfScope op(prof::FrameKind::kOperator, "mem-burn");
      prof::ProfScope kernel(prof::FrameKind::kKernel, "mem-burn-kernel");
      auto blocks = AllocateBlocks(2000, 4096);  // ~8 MiB through the op
    }
    auto untracked = AllocateBlocks(500, 4096);  // ~2 MiB with no op frame
  }
  NoteTuplesProcessed("mem-burn", 1000);
  const MemProfile profile = profiler.Stop();
  EXPECT_FALSE(MemProfilingActive());
  ASSERT_FALSE(profile.empty());
  EXPECT_GE(profile.samples, 16);
  EXPECT_GT(profile.total_bytes, 0);
  EXPECT_GE(profile.allocs_estimate, profile.samples);

  // Telescoping is EXACT in integer arithmetic: folded stacks, operator
  // rows (incl. "(untracked)") and kernel rows each partition total_bytes.
  EXPECT_EQ(SumFolded(profile), profile.total_bytes);
  EXPECT_EQ(SumFrames(profile.operators), profile.total_bytes);
  EXPECT_EQ(SumFrames(profile.kernels), profile.total_bytes);

  // Attribution: the marked operator/kernel dominate the sampled bytes.
  const MemFrameTotal* burn = nullptr;
  for (const MemFrameTotal& op : profile.operators) {
    if (op.name == "mem-burn") burn = &op;
  }
  ASSERT_NE(burn, nullptr);
  EXPECT_GT(burn->total_bytes, profile.total_bytes / 2);
  EXPECT_EQ(burn->tuples, 1000);
  EXPECT_GT(burn->bytes_per_tuple, 0.0);
  bool found_kernel = false;
  for (const MemFrameTotal& k : profile.kernels) {
    if (k.name == "mem-burn-kernel") found_kernel = true;
  }
  EXPECT_TRUE(found_kernel);
  bool found_stack = false;
  for (const MemFolded& f : profile.folded) {
    if (f.stack ==
        "phase:simulate;app:unit;op:mem-burn;kernel:mem-burn-kernel") {
      found_stack = true;
    }
  }
  EXPECT_TRUE(found_stack);

  // Everything sampled here was freed before Stop(): the live table is
  // drained and no slots leak across sessions.
  EXPECT_EQ(LiveTableSlotsInUse(), 0);
}

TEST(MemProfilerTest, LiveBytesTrackRetentionAndPeak) {
  if (!InterpositionAvailable()) GTEST_SKIP() << "interposition absent";
  prof::ThreadRegistration reg("mem-test-live");
  MemOptions options;
  options.enabled = true;
  options.sample_interval_bytes = 4096;
  MemProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  std::vector<std::unique_ptr<char[]>> retained;
  {
    prof::ProfScope op(prof::FrameKind::kOperator, "mem-retainer");
    retained = AllocateBlocks(2000, 4096);  // ~8 MiB held across Stop()
    auto transient = AllocateBlocks(1000, 4096);  // freed before Stop()
  }
  const MemProfile profile = profiler.Stop();
  ASSERT_FALSE(profile.empty());
  EXPECT_GT(profile.live_bytes, 0);
  EXPECT_LE(profile.live_bytes, profile.total_bytes);
  EXPECT_GE(profile.peak_heap_bytes, profile.live_bytes);
  EXPECT_GT(profile.frees, 0);
  EXPECT_EQ(profile.freed_bytes + profile.live_bytes, profile.total_bytes);

  // Live bytes attribute to the retaining operator too.
  int64_t live_sum = 0;
  for (const MemFrameTotal& op : profile.operators) live_sum += op.live_bytes;
  EXPECT_EQ(live_sum, profile.live_bytes);

  // Host RSS high-water mark (satellite: getrusage, bytes) must bound the
  // sampled heap estimate from above for this modest allocation volume.
  const HostUsage usage = HostProfiler::Global().SampleUsage();
  if (usage.peak_rss_bytes > 0) {
    EXPECT_GE(usage.peak_rss_bytes, profile.peak_heap_bytes);
    EXPECT_EQ(usage.peak_rss_kb, usage.peak_rss_bytes / 1024);
  }

  retained.clear();  // frees after Stop() are dropped, not crashed
  EXPECT_EQ(LiveTableSlotsInUse(), 0);
}

TEST(MemProfilerTest, SecondStartWhileRunningFails) {
  if (!InterpositionAvailable()) GTEST_SKIP() << "interposition absent";
  prof::ThreadRegistration reg("mem-test-double");
  MemOptions options;
  options.enabled = true;
  MemProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_FALSE(profiler.Start().ok());
  profiler.Stop();
}

TEST(MemProfilerTest, ConcurrentAllocationsAcrossPoolWorkersStaySane) {
  if (!InterpositionAvailable()) GTEST_SKIP() << "interposition absent";
  // TSan leg of the suite: 4 registered pool workers allocate and free
  // under operator markers while the hooks sample and the live table
  // claims/releases slots concurrently.
  prof::ThreadRegistration reg("mem-test-hammer");
  MemOptions options;
  options.enabled = true;
  options.sample_interval_bytes = 4096;
  options.all_threads = true;
  MemProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  const uint32_t op_id = prof::InternName("mem-hammer-op");
  {
    exec::ThreadPool pool(4);
    std::vector<std::future<void>> done;
    for (int t = 0; t < 8; ++t) {
      done.push_back(pool.Submit([op_id] {
        prof::ThreadRegistration worker("mem-hammer-worker");
        for (int i = 0; i < 200; ++i) {
          prof::ProfScope op(prof::FrameKind::kOperator, op_id);
          auto blocks = AllocateBlocks(20, 2048);
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  const MemProfile profile = profiler.Stop();
  ASSERT_FALSE(profile.empty());
  EXPECT_EQ(SumFolded(profile), profile.total_bytes);
  EXPECT_EQ(SumFrames(profile.operators), profile.total_bytes);
  EXPECT_GE(profile.dropped, 0);
  EXPECT_EQ(LiveTableSlotsInUse(), 0);
}

TEST(MemProfileJsonTest, RoundTripsThroughJson) {
  MemProfile profile;
  profile.sample_interval_bytes = 512 * 1024;
  profile.duration_s = 1.25;
  profile.samples = 42;
  profile.dropped = 1;
  profile.table_overflow = 2;
  profile.total_bytes = 21 * 1024 * 1024;
  profile.live_bytes = 5 * 1024 * 1024;
  profile.peak_heap_bytes = 8 * 1024 * 1024;
  profile.allocs_estimate = 1000;
  profile.frees = 30;
  profile.freed_bytes = 16 * 1024 * 1024;
  profile.tuples_processed = 5000;
  profile.bytes_per_tuple = 4404.0;
  profile.folded = {{"phase:simulate;op:count", 40, 20971520, 900},
                    {"(untracked)", 2, 1048576, 100}};
  profile.operators = {{"count", 40, 20971520, 4194304, 900, 5000, 4194.3},
                       {"(untracked)", 2, 1048576, 1048576, 100, 0, 0.0}};
  profile.kernels = {{"(untracked)", 42, 22020096, 5242880, 1000, 0, 0.0}};
  profile.timeline = {{0.1, 1048576}, {0.9, 5242880}};

  auto parsed = MemProfile::FromJson(profile.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema_version, kMemProfileSchemaVersion);
  EXPECT_EQ(parsed->sample_interval_bytes, 512 * 1024);
  EXPECT_DOUBLE_EQ(parsed->duration_s, 1.25);
  EXPECT_EQ(parsed->samples, 42);
  EXPECT_EQ(parsed->dropped, 1);
  EXPECT_EQ(parsed->table_overflow, 2);
  EXPECT_EQ(parsed->total_bytes, profile.total_bytes);
  EXPECT_EQ(parsed->live_bytes, profile.live_bytes);
  EXPECT_EQ(parsed->peak_heap_bytes, profile.peak_heap_bytes);
  EXPECT_EQ(parsed->tuples_processed, 5000);
  EXPECT_DOUBLE_EQ(parsed->bytes_per_tuple, 4404.0);
  ASSERT_EQ(parsed->folded.size(), 2u);
  EXPECT_EQ(parsed->folded[0].stack, "phase:simulate;op:count");
  EXPECT_EQ(parsed->folded[0].bytes, 20971520);
  ASSERT_EQ(parsed->operators.size(), 2u);
  EXPECT_EQ(parsed->operators[0].name, "count");
  EXPECT_EQ(parsed->operators[0].live_bytes, 4194304);
  EXPECT_EQ(parsed->operators[0].tuples, 5000);
  ASSERT_EQ(parsed->kernels.size(), 1u);
  ASSERT_EQ(parsed->timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->timeline[1].t_s, 0.9);
  EXPECT_EQ(parsed->timeline[1].live_bytes, 5242880);
}

TEST(MemProfileJsonTest, RejectsUnknownSchemaVersion) {
  MemProfile profile;
  profile.samples = 1;
  Json j = profile.ToJson();
  j.Set("schema_version", Json::Int(99));
  EXPECT_FALSE(MemProfile::FromJson(j).ok());
  EXPECT_FALSE(MemProfile::FromJson(Json::Array()).ok());
}

TEST(DiagnoseMemProfileTest, FlagsDominanceRetentionAndNodeBudget) {
  MemProfile profile;
  profile.sample_interval_bytes = 1024;
  profile.samples = 100;
  profile.total_bytes = 100 * 1024 * 1024;
  profile.live_bytes = 60 * 1024 * 1024;   // 60% retained -> M302
  profile.peak_heap_bytes = int64_t{3} * 1024 * 1024 * 1024;  // > 2 GiB node
  MemFrameTotal hog;
  hog.name = "join";
  hog.samples = 80;
  hog.total_bytes = 80 * 1024 * 1024;  // 80% share -> M301
  hog.live_bytes = 55 * 1024 * 1024;
  profile.operators = {hog};

  analysis::AnalysisReport report;
  DiagnoseMemProfile(profile, /*node_memory_gb=*/2.0, &report);
  report.Finalize();
  EXPECT_TRUE(report.HasCode("PDSP-M301"));
  EXPECT_TRUE(report.HasCode("PDSP-M302"));
  EXPECT_TRUE(report.HasCode("PDSP-M303"));

  // A healthy profile (balanced, transient, small) yields none of them.
  MemProfile healthy = profile;
  healthy.live_bytes = 1024;
  healthy.peak_heap_bytes = 1024 * 1024;
  healthy.operators[0].total_bytes = 30 * 1024 * 1024;  // 30% share
  analysis::AnalysisReport clean;
  DiagnoseMemProfile(healthy, /*node_memory_gb=*/2.0, &clean);
  EXPECT_FALSE(clean.HasCode("PDSP-M301"));
  EXPECT_FALSE(clean.HasCode("PDSP-M302"));
  EXPECT_FALSE(clean.HasCode("PDSP-M303"));
}

TEST(MeasureCellMemTest, WritesMemoryJsonAndLedgerSummary) {
  if (!InterpositionAvailable()) GTEST_SKIP() << "interposition absent";
  const std::string dir = ::testing::TempDir() + "/pdsp_mem_cell";
  std::filesystem::remove_all(dir);
  auto plan = testing::LinearPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  RunProtocol protocol;
  protocol.repeats = 1;
  protocol.duration_s = 2.0;
  protocol.warmup_s = 0.5;
  protocol.label = "mem-unit";
  protocol.mem.enabled = true;
  protocol.mem.sample_interval_bytes = 16 * 1024;
  protocol.obs.enabled = true;
  protocol.obs.dir = dir;
  auto cell = MeasureCell(*plan, Cluster::M510(4), protocol);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  ASSERT_TRUE(cell->has_mem_profile);
  EXPECT_GE(cell->mem_profile.samples, 1);
  EXPECT_EQ(SumFrames(cell->mem_profile.operators),
            cell->mem_profile.total_bytes);

  // The bundle's memory.json parses back to the same profile.
  auto text = ReadTextFile(dir + "/memory.json");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto json = Json::Parse(*text);
  ASSERT_TRUE(json.ok());
  auto parsed = MemProfile::FromJson(*json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->samples, cell->mem_profile.samples);
  EXPECT_EQ(parsed->total_bytes, cell->mem_profile.total_bytes);

  // Ledger summary mirrors the profile through the nested "memory" object.
  EXPECT_EQ(cell->ledger_record.mem_samples, cell->mem_profile.samples);
  EXPECT_EQ(cell->ledger_record.mem_peak_heap_bytes,
            cell->mem_profile.peak_heap_bytes);
  const Json record_json = cell->ledger_record.ToJson();
  EXPECT_TRUE(record_json["memory"].is_object());

  // Round trip through RunRecord JSON keeps the summary.
  auto record = RunRecord::FromJson(record_json);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->mem_samples, cell->ledger_record.mem_samples);
  EXPECT_EQ(record->mem_bytes_per_tuple,
            cell->ledger_record.mem_bytes_per_tuple);
}

TEST(MeasureCellMemTest, UnprofiledRecordsHaveNoMemoryKeyAndStayIdentical) {
  auto plan = testing::LinearPlan(5000.0, 2);
  ASSERT_TRUE(plan.ok());
  RunProtocol base;
  base.repeats = 1;
  base.duration_s = 2.0;
  base.warmup_s = 0.5;
  auto plain = MeasureCell(*plan, Cluster::M510(4), base);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_mem_profile);
  // Byte-identity contract: no "memory" key at all on unprofiled records,
  // so ledgers written before this feature parse and diff cleanly.
  const std::string dump = plain->ledger_record.ToJson().Dump(0);
  EXPECT_EQ(dump.find("\"memory\""), std::string::npos);

  if (!InterpositionAvailable()) return;
  RunProtocol profiled = base;
  profiled.mem.enabled = true;
  profiled.mem.sample_interval_bytes = 16 * 1024;
  auto prof = MeasureCell(*plan, Cluster::M510(4), profiled);
  ASSERT_TRUE(prof.ok());
  // Exact equality, not near: the sampler only observes host-side state.
  EXPECT_EQ(plain->mean_median_latency_s, prof->mean_median_latency_s);
  EXPECT_EQ(plain->mean_throughput_tps, prof->mean_throughput_tps);
  EXPECT_EQ(plain->p95_latency_s, prof->p95_latency_s);
  EXPECT_EQ(plain->p99_latency_s, prof->p99_latency_s);
  EXPECT_EQ(plain->late_drops, prof->late_drops);
  EXPECT_EQ(plain->backpressure_skipped, prof->backpressure_skipped);
}

}  // namespace
}  // namespace mem
}  // namespace obs
}  // namespace pdsp
