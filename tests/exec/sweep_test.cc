#include "src/exec/sweep.h"

#include <gtest/gtest.h>

#include <csignal>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/string_util.h"
#include "src/obs/ledger.h"
#include "src/store/json.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace exec {
namespace {

// A 16-cell grid over (rate, parallelism): big enough to exercise real
// fan-out, small enough (0.4s horizon, 1 repeat) to stay fast.
std::vector<SweepCell> MakeGrid(const std::string& ledger_path = "") {
  std::vector<SweepCell> cells;
  const Cluster cluster = Cluster::M510(4);
  for (int i = 0; i < 16; ++i) {
    SweepCell cell;
    const double rate = 800.0 + 125.0 * i;
    const int parallelism = 1 + (i % 3);
    cell.make_plan = [rate, parallelism] {
      return testing::LinearPlan(rate, parallelism);
    };
    cell.cluster = cluster;
    cell.protocol.repeats = 1;
    cell.protocol.duration_s = 0.4;
    cell.protocol.warmup_s = 0.1;
    cell.protocol.seed = 7;
    cell.protocol.diagnose = false;
    cell.label = StrFormat("grid/%02d", i);
    if (!ledger_path.empty()) {
      cell.protocol.ledger.enabled = true;
      cell.protocol.ledger.path = ledger_path;
      cell.protocol.ledger.cluster_name = "m510";
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::string TempLedgerPath(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/pdsp_sweep_test";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name + ".jsonl";
  std::filesystem::remove(path);
  return path;
}

TEST(SweepTest, SequentialAndParallelRunsAreBitIdentical) {
  const std::string ledger1 = TempLedgerPath("jobs1");
  const std::string ledger8 = TempLedgerPath("jobs8");

  SweepOptions seq;
  seq.jobs = 1;
  const SweepResult r1 = RunSweep(MakeGrid(ledger1), seq);

  SweepOptions par;
  par.jobs = 8;
  const SweepResult r8 = RunSweep(MakeGrid(ledger8), par);

  ASSERT_EQ(r1.cells.size(), 16u);
  ASSERT_EQ(r8.cells.size(), 16u);
  EXPECT_EQ(r1.NumOk(), 16u);
  EXPECT_EQ(r8.NumOk(), 16u);

  for (size_t i = 0; i < 16; ++i) {
    SCOPED_TRACE(r1.cells[i].label);
    EXPECT_EQ(r1.cells[i].label, r8.cells[i].label);
    ASSERT_TRUE(r1.cells[i].result.ok());
    ASSERT_TRUE(r8.cells[i].result.ok());
    const CellResult& a = *r1.cells[i].result;
    const CellResult& b = *r8.cells[i].result;
    // Exact equality, not tolerance: the simulator is deterministic in
    // virtual time and seeds derive only from (protocol.seed, repeat).
    EXPECT_EQ(a.mean_median_latency_s, b.mean_median_latency_s);
    EXPECT_EQ(a.mean_throughput_tps, b.mean_throughput_tps);
    EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
    EXPECT_EQ(a.late_drops, b.late_drops);
    EXPECT_EQ(a.backpressure_skipped, b.backpressure_skipped);
  }

  // Ledger records: same canonical order and identical content modulo the
  // per-invocation identity (run_id, timestamp) and host-footprint fields.
  auto records1 = obs::RunLedger(ledger1).Load();
  auto records8 = obs::RunLedger(ledger8).Load();
  ASSERT_TRUE(records1.ok());
  ASSERT_TRUE(records8.ok());
  ASSERT_EQ(records1->size(), 16u);
  ASSERT_EQ(records8->size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    const obs::RunRecord& a = (*records1)[i];
    const obs::RunRecord& b = (*records8)[i];
    SCOPED_TRACE(a.label);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.plan_hash, b.plan_hash);
    EXPECT_EQ(a.parallelism, b.parallelism);
    EXPECT_EQ(a.event_rate, b.event_rate);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.repeats, b.repeats);
    EXPECT_EQ(a.throughput_tps, b.throughput_tps);
    EXPECT_EQ(a.median_latency_s, b.median_latency_s);
    EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
    EXPECT_EQ(a.late_drops, b.late_drops);
    EXPECT_EQ(a.backpressure_skipped, b.backpressure_skipped);
  }
}

TEST(SweepTest, ResultsComeBackInCellOrder) {
  SweepOptions options;
  options.jobs = 4;
  const SweepResult sweep = RunSweep(MakeGrid(), options);
  ASSERT_EQ(sweep.cells.size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sweep.cells[i].label, StrFormat("grid/%02zu", i));
  }
}

TEST(SweepTest, FailingCellDoesNotPoisonTheSweep) {
  std::vector<SweepCell> cells = MakeGrid();
  cells.resize(4);
  cells[1].make_plan = []() -> Result<LogicalPlan> {
    return Status::InvalidArgument("deliberately broken cell");
  };
  SweepOptions options;
  options.jobs = 2;
  const SweepResult sweep = RunSweep(cells, options);
  ASSERT_EQ(sweep.cells.size(), 4u);
  EXPECT_EQ(sweep.NumOk(), 3u);
  EXPECT_TRUE(sweep.cells[0].result.ok());
  ASSERT_FALSE(sweep.cells[1].result.ok());
  EXPECT_TRUE(sweep.cells[1].result.status().IsInvalidArgument());
  EXPECT_TRUE(sweep.cells[2].result.ok());
  EXPECT_TRUE(sweep.cells[3].result.ok());
  EXPECT_EQ(sweep.metrics->CounterValue("pdsp.exec.cells_failed"), 1);
}

TEST(SweepTest, MissingPlanFactoryIsInvalidArgument) {
  std::vector<SweepCell> cells(1);
  cells[0].label = "no-factory";
  const SweepResult sweep = RunSweep(cells, SweepOptions());
  ASSERT_EQ(sweep.cells.size(), 1u);
  ASSERT_FALSE(sweep.cells[0].result.ok());
  EXPECT_TRUE(sweep.cells[0].result.status().IsInvalidArgument());
}

TEST(SweepTest, MergedMetricsAndHostProfileCoverAllCells) {
  SweepOptions options;
  options.jobs = 4;
  std::vector<SweepCell> cells = MakeGrid();
  cells.resize(8);
  const SweepResult sweep = RunSweep(cells, options);
  ASSERT_NE(sweep.metrics, nullptr);
  EXPECT_EQ(sweep.metrics->CounterValue("pdsp.exec.cells_total"), 8);
  EXPECT_EQ(sweep.metrics->CounterValue("pdsp.exec.cells_failed"), 0);
  EXPECT_EQ(sweep.metrics->GaugeValue("pdsp.exec.jobs"), 4.0);
  EXPECT_GT(sweep.metrics->GaugeValue("pdsp.exec.sweep_wall_s"), 0.0);

  // Worker phase seconds live under worker_phases (per worker), never in
  // the wall-clock `phases` map — that would double-count CPU seconds.
  EXPECT_FALSE(sweep.host.worker_phases.empty());
  EXPECT_EQ(sweep.host.phases.count("simulate"), 0u);
  const obs::WorkerPhaseMap aggregate = sweep.host.AggregateWorkerPhases();
  ASSERT_EQ(aggregate.count("simulate"), 1u);
  // 8 cells x 1 repeat = 8 simulate scopes across all workers.
  EXPECT_EQ(aggregate.at("simulate").count, 8);
}

TEST(SweepTest, SummaryRecordLandsInTheSummaryLedger) {
  const std::string path = TempLedgerPath("summary");
  SweepOptions options;
  options.jobs = 2;
  options.name = "unit-sweep";
  options.summary_ledger.enabled = true;
  options.summary_ledger.path = path;
  options.summary_ledger.cluster_name = "m510";
  std::vector<SweepCell> cells = MakeGrid();
  cells.resize(4);
  const SweepResult sweep = RunSweep(cells, options);
  EXPECT_EQ(sweep.NumOk(), 4u);
  auto records = obs::RunLedger(path).Load();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].label, "unit-sweep");
  EXPECT_EQ((*records)[0].parallelism, 2);  // jobs recorded as parallelism
  EXPECT_GT((*records)[0].host_wall_s, 0.0);
}

TEST(SweepTest, MonitoringOnDoesNotPerturbResults) {
  // The monitor only observes: per-cell virtual-time results must stay
  // bit-identical with monitoring enabled at any --jobs.
  SweepOptions plain;
  plain.jobs = 1;
  const SweepResult r1 = RunSweep(MakeGrid(), plain);

  const std::string jsonl = TempLedgerPath("progress");
  SweepOptions monitored;
  monitored.jobs = 4;
  monitored.name = "monitored";
  monitored.monitor.enabled = true;
  monitored.monitor.interval_s = 0.01;
  monitored.monitor.render = obs::MonitorOptions::RenderMode::kOff;
  monitored.monitor.jsonl_path = jsonl;
  const SweepResult r4 = RunSweep(MakeGrid(), monitored);

  ASSERT_EQ(r1.cells.size(), 16u);
  ASSERT_EQ(r4.cells.size(), 16u);
  EXPECT_EQ(r4.NumOk(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    SCOPED_TRACE(r1.cells[i].label);
    ASSERT_TRUE(r1.cells[i].result.ok());
    ASSERT_TRUE(r4.cells[i].result.ok());
    EXPECT_EQ(r1.cells[i].result->mean_median_latency_s,
              r4.cells[i].result->mean_median_latency_s);
    EXPECT_EQ(r1.cells[i].result->mean_throughput_tps,
              r4.cells[i].result->mean_throughput_tps);
    EXPECT_EQ(r1.cells[i].result->p99_latency_s,
              r4.cells[i].result->p99_latency_s);
  }

  // Monitor summary: final snapshot covers all cells, busy fractions are
  // per worker, and the gauges were exported into the merged registry.
  EXPECT_EQ(r4.monitor.last.cells_done, 16u);
  EXPECT_TRUE(r4.monitor.last.final_snapshot);
  EXPECT_EQ(r4.monitor.worker_busy_fraction.size(), 4u);
  EXPECT_GE(r4.metrics->GaugeValue("pdsp.monitor.snapshots"), 1.0);

  // progress.jsonl: every line parses, seq strictly increases, last line is
  // the final snapshot.
  auto text = ReadTextFile(jsonl);
  ASSERT_TRUE(text.ok());
  const std::vector<std::string> lines = Split(Trim(*text), '\n');
  ASSERT_GE(lines.size(), 1u);
  int64_t last_seq = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    auto parsed = Json::Parse(lines[i]);
    ASSERT_TRUE(parsed.ok()) << "line " << i + 1;
    EXPECT_GT((*parsed)["seq"].AsInt(), last_seq);
    last_seq = (*parsed)["seq"].AsInt();
  }
  auto last = Json::Parse(lines.back());
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE((*last)["final"].AsBool());
  EXPECT_EQ((*last)["cells_done"].AsInt(), 16);
}

TEST(SweepTest, StragglerCellSurfacesM201InTheSummaryRecord) {
  // Three fast cells + one deliberately heavy cell on 2 workers: once the
  // fast cells' median is established, the heavy cell's elapsed wall time
  // crosses straggler_ratio x median and M201 must fire.
  std::vector<SweepCell> cells;
  const Cluster cluster = Cluster::M510(4);
  for (int i = 0; i < 4; ++i) {
    SweepCell cell;
    const bool heavy = i == 0;
    const double rate = heavy ? 20000.0 : 300.0;
    const int parallelism = heavy ? 4 : 1;
    cell.make_plan = [rate, parallelism] {
      return testing::LinearPlan(rate, parallelism);
    };
    cell.cluster = cluster;
    cell.protocol.repeats = 1;
    cell.protocol.duration_s = heavy ? 6.0 : 0.05;
    cell.protocol.warmup_s = 0.01;
    cell.protocol.seed = 7;
    cell.protocol.diagnose = false;
    cell.label = heavy ? "straggler/heavy" : StrFormat("straggler/fast%d", i);
    cells.push_back(std::move(cell));
  }

  const std::string summary_path = TempLedgerPath("m201_summary");
  SweepOptions options;
  options.jobs = 2;
  options.name = "sweep/m201";
  options.monitor.enabled = true;
  options.monitor.interval_s = 0.005;
  options.monitor.render = obs::MonitorOptions::RenderMode::kOff;
  options.monitor.straggler_ratio = 2.0;
  options.monitor.straggler_min_completed = 3;
  options.summary_ledger.enabled = true;
  options.summary_ledger.path = summary_path;

  const SweepResult sweep = RunSweep(cells, options);
  EXPECT_EQ(sweep.NumOk(), 4u);
  ASSERT_FALSE(sweep.monitor.codes.empty());
  EXPECT_NE(std::find(sweep.monitor.codes.begin(), sweep.monitor.codes.end(),
                      "PDSP-M201"),
            sweep.monitor.codes.end())
      << Join(sweep.monitor.codes, ",");
  EXPECT_NE(std::find(sweep.monitor.straggler_cells.begin(),
                      sweep.monitor.straggler_cells.end(), "straggler/heavy"),
            sweep.monitor.straggler_cells.end());

  // The codes ride on the summary ledger record (and only there — per-cell
  // records stay bit-identical with monitoring off).
  auto records = obs::RunLedger(summary_path).Load();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].label, "sweep/m201");
  EXPECT_NE(std::find((*records)[0].diagnosis_codes.begin(),
                      (*records)[0].diagnosis_codes.end(), "PDSP-M201"),
            (*records)[0].diagnosis_codes.end());
}

TEST(SweepTest, SigintDrainsInFlightCellsAndFlushesTheLedger) {
  const std::string ledger_path = TempLedgerPath("sigint");
  std::vector<SweepCell> cells = MakeGrid(ledger_path);
  cells.resize(6);
  // The first claimed cell raises SIGINT from inside its plan factory: it
  // is in flight, so it must complete and land in the ledger; cells claimed
  // afterwards must not run.
  auto original = cells[0].make_plan;
  cells[0].make_plan = [original] {
    std::raise(SIGINT);
    return original();
  };

  SweepOptions options;
  options.jobs = 1;
  options.install_sigint = true;
  const SweepResult sweep = RunSweep(cells, options);

  EXPECT_TRUE(sweep.interrupted);
  ASSERT_EQ(sweep.cells.size(), 6u);
  EXPECT_TRUE(sweep.cells[0].result.ok());
  for (size_t i = 1; i < 6; ++i) {
    SCOPED_TRACE(i);
    ASSERT_FALSE(sweep.cells[i].result.ok());
    EXPECT_NE(sweep.cells[i].result.status().ToString().find("interrupted"),
              std::string::npos);
  }
  auto records = obs::RunLedger(ledger_path).Load();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].label, "grid/00");
}

TEST(SweepTest, SigintHandlerIsScopedToTheSweep) {
  // After RunSweep returns, the previous SIGINT disposition is restored and
  // a later uninterrupted sweep is not tainted by the earlier flag.
  std::vector<SweepCell> cells = MakeGrid();
  cells.resize(2);
  SweepOptions options;
  options.jobs = 1;
  options.install_sigint = true;
  const SweepResult sweep = RunSweep(cells, options);
  EXPECT_FALSE(sweep.interrupted);
  EXPECT_EQ(sweep.NumOk(), 2u);
}

}  // namespace
}  // namespace exec
}  // namespace pdsp
