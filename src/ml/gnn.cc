// DAG message-passing GNN cost model. Operators are nodes, dataflow edges
// are message edges; K shared-weight rounds propagate embeddings downstream
// and a readout MLP predicts log latency from the sink embedding plus the
// mean node embedding (ZeroTune-style plan encoding [2]).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "src/ml/adam.h"
#include "src/ml/models.h"

namespace pdsp {

namespace {

struct Params {
  Matrix w_in;   // d x f
  Vector b_in;   // d
  Matrix w_self;  // d x d (shared over rounds)
  Matrix w_agg;   // d x d
  Vector b_round;  // d
  Matrix w1;     // h x 2d (readout)
  Vector b1;     // h
  Vector w2;     // h
  double b2 = 0.0;

  Params() = default;
  Params(size_t d, size_t f, size_t h, Rng* rng)
      : w_in(Matrix::GlorotRandom(d, f, rng)),
        b_in(d, 0.0),
        w_self(Matrix::GlorotRandom(d, d, rng)),
        w_agg(Matrix::GlorotRandom(d, d, rng)),
        b_round(d, 0.0),
        w1(Matrix::GlorotRandom(h, 2 * d, rng)),
        b1(h, 0.0),
        w2(h, 0.0),
        b2(0.0) {
    for (double& v : w2) v = rng->Uniform(-0.3, 0.3);
  }
};

struct Grads {
  Matrix w_in, w_self, w_agg, w1;
  Vector b_in, b_round, b1, w2;
  double b2 = 0.0;

  explicit Grads(const Params& p)
      : w_in(p.w_in.rows(), p.w_in.cols()),
        w_self(p.w_self.rows(), p.w_self.cols()),
        w_agg(p.w_agg.rows(), p.w_agg.cols()),
        w1(p.w1.rows(), p.w1.cols()),
        b_in(p.b_in.size(), 0.0),
        b_round(p.b_round.size(), 0.0),
        b1(p.b1.size(), 0.0),
        w2(p.w2.size(), 0.0) {}
};

// Forward intermediates for one graph.
struct Trace {
  // h[r][v]: embedding of node v after round r (r = 0 .. K).
  std::vector<std::vector<Vector>> h;
  // msg[r][v]: aggregated incoming message used in round r (r = 1 .. K).
  std::vector<std::vector<Vector>> msg;
  Vector readout_in;   // [h_K(sink); mean_v h_K(v)]
  Vector z;            // post-ReLU readout hidden
  Vector z_pre;        // pre-activation readout hidden
  double prediction = 0.0;
};

void OuterAccumulate(const Vector& delta, const Vector& input, Matrix* grad) {
  for (size_t i = 0; i < delta.size(); ++i) {
    if (delta[i] == 0.0) continue;
    for (size_t j = 0; j < input.size(); ++j) {
      grad->at(i, j) += delta[i] * input[j];
    }
  }
}

}  // namespace

struct GnnModel::Impl {
  Params params;
  int rounds = 2;
  size_t dim = 32;
  bool fitted = false;
  // Node feature standardization (fitted over all training nodes).
  Vector feat_mean;
  Vector feat_inv_std;

  Vector Standardize(const Vector& x) const {
    if (feat_mean.empty()) return x;
    Vector out(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      out[i] = (x[i] - feat_mean[i]) * feat_inv_std[i];
    }
    return out;
  }

  void FitStandardizer(const Dataset& data) {
    feat_mean.clear();
    feat_inv_std.clear();
    int64_t n = 0;
    Vector m2;
    for (const PlanSample& s : data.samples) {
      for (const Vector& x : s.graph.node_features) {
        if (feat_mean.empty()) {
          feat_mean.assign(x.size(), 0.0);
          m2.assign(x.size(), 0.0);
        }
        ++n;
        for (size_t i = 0; i < x.size(); ++i) {
          const double d = x[i] - feat_mean[i];
          feat_mean[i] += d / static_cast<double>(n);
          m2[i] += d * (x[i] - feat_mean[i]);
        }
      }
    }
    feat_inv_std.assign(feat_mean.size(), 1.0);
    for (size_t i = 0; i < feat_mean.size(); ++i) {
      const double sd = std::sqrt(m2[i] / std::max<int64_t>(1, n));
      feat_inv_std[i] = sd > 1e-9 ? 1.0 / sd : 1.0;
    }
  }

  double Forward(const GraphSample& g, Trace* trace) const {
    const size_t n = g.node_features.size();
    trace->h.assign(static_cast<size_t>(rounds) + 1, {});
    trace->msg.assign(static_cast<size_t>(rounds) + 1, {});

    trace->h[0].resize(n);
    for (size_t v = 0; v < n; ++v) {
      Vector pre = params.w_in.MatVec(Standardize(g.node_features[v]));
      for (size_t i = 0; i < pre.size(); ++i) pre[i] += params.b_in[i];
      for (double& x : pre) x = std::max(0.0, x);
      trace->h[0][v] = std::move(pre);
    }
    for (int r = 1; r <= rounds; ++r) {
      auto& prev = trace->h[r - 1];
      trace->msg[r].assign(n, Vector(dim, 0.0));
      for (const auto& [from, to] : g.edges) {
        Axpy(1.0, prev[from], &trace->msg[r][to]);
      }
      trace->h[r].resize(n);
      for (size_t v = 0; v < n; ++v) {
        Vector pre = params.w_self.MatVec(prev[v]);
        const Vector agg = params.w_agg.MatVec(trace->msg[r][v]);
        for (size_t i = 0; i < pre.size(); ++i) {
          pre[i] += agg[i] + params.b_round[i];
        }
        for (double& x : pre) x = std::max(0.0, x);
        trace->h[r][v] = std::move(pre);
      }
    }
    // Readout: [sink embedding ; mean embedding].
    trace->readout_in.assign(2 * dim, 0.0);
    const auto& final_h = trace->h[static_cast<size_t>(rounds)];
    for (size_t i = 0; i < dim; ++i) {
      trace->readout_in[i] = final_h[g.sink][i];
    }
    for (size_t v = 0; v < n; ++v) {
      for (size_t i = 0; i < dim; ++i) {
        trace->readout_in[dim + i] +=
            final_h[v][i] / static_cast<double>(n);
      }
    }
    trace->z_pre = params.w1.MatVec(trace->readout_in);
    for (size_t i = 0; i < trace->z_pre.size(); ++i) {
      trace->z_pre[i] += params.b1[i];
    }
    trace->z = trace->z_pre;
    for (double& x : trace->z) x = std::max(0.0, x);
    trace->prediction = Dot(params.w2, trace->z) + params.b2;
    return trace->prediction;
  }

  void Backward(const GraphSample& g, const Trace& trace, double dloss,
                Grads* grads) const {
    const size_t n = g.node_features.size();
    // Readout.
    Vector dz(params.w2.size());
    for (size_t i = 0; i < dz.size(); ++i) {
      grads->w2[i] += dloss * trace.z[i];
      dz[i] = dloss * params.w2[i];
      if (trace.z_pre[i] <= 0.0) dz[i] = 0.0;
    }
    grads->b2 += dloss;
    OuterAccumulate(dz, trace.readout_in, &grads->w1);
    Axpy(1.0, dz, &grads->b1);
    const Vector dg = params.w1.TransposedMatVec(dz);

    // Distribute to final-round embeddings.
    std::vector<Vector> dh(n, Vector(dim, 0.0));
    for (size_t i = 0; i < dim; ++i) {
      dh[g.sink][i] += dg[i];
      const double mean_part = dg[dim + i] / static_cast<double>(n);
      for (size_t v = 0; v < n; ++v) dh[v][i] += mean_part;
    }

    // Rounds K..1.
    for (int r = rounds; r >= 1; --r) {
      const auto& h_prev = trace.h[r - 1];
      const auto& h_cur = trace.h[r];
      const auto& msg = trace.msg[r];
      std::vector<Vector> dprev(n, Vector(dim, 0.0));
      for (size_t v = 0; v < n; ++v) {
        Vector dpre = dh[v];
        for (size_t i = 0; i < dim; ++i) {
          if (h_cur[v][i] <= 0.0) dpre[i] = 0.0;  // ReLU gate
        }
        OuterAccumulate(dpre, h_prev[v], &grads->w_self);
        OuterAccumulate(dpre, msg[v], &grads->w_agg);
        Axpy(1.0, dpre, &grads->b_round);
        // dh_prev via self path.
        Axpy(1.0, params.w_self.TransposedMatVec(dpre), &dprev[v]);
        // dmsg -> upstream nodes via agg path.
        const Vector dmsg = params.w_agg.TransposedMatVec(dpre);
        for (const auto& [from, to] : g.edges) {
          if (to == static_cast<int>(v)) {
            Axpy(1.0, dmsg, &dprev[from]);
          }
        }
      }
      dh = std::move(dprev);
    }
    // Input layer.
    for (size_t v = 0; v < n; ++v) {
      Vector dpre = dh[v];
      for (size_t i = 0; i < dim; ++i) {
        if (trace.h[0][v][i] <= 0.0) dpre[i] = 0.0;
      }
      OuterAccumulate(dpre, Standardize(g.node_features[v]), &grads->w_in);
      Axpy(1.0, dpre, &grads->b_in);
    }
  }
};

GnnModel::GnnModel() : impl_(new Impl) {}
GnnModel::~GnnModel() = default;

Result<TrainReport> GnnModel::Fit(const Dataset& train, const Dataset& val,
                                  const TrainOptions& options) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(options.seed);
  impl_->rounds = options.gnn_rounds;
  impl_->dim = static_cast<size_t>(options.gnn_hidden);
  impl_->FitStandardizer(train);
  const size_t feat_dim = train.samples[0].graph.node_features[0].size();
  impl_->params = Params(impl_->dim, feat_dim,
                         static_cast<size_t>(options.gnn_hidden), &rng);

  std::vector<double> ys, val_ys;
  for (const PlanSample& s : train.samples) ys.push_back(std::log(s.latency_s));
  const Dataset& eval = val.empty() ? train : val;
  for (const PlanSample& s : eval.samples) {
    val_ys.push_back(std::log(s.latency_s));
  }

  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainReport report;
  double best_val = 1e300;
  Params best_params = impl_->params;
  int stall = 0;
  int adam_t = 0;
  AdamState a_w_in(impl_->params.w_in.data().size());
  AdamState a_b_in(impl_->params.b_in.size());
  AdamState a_w_self(impl_->params.w_self.data().size());
  AdamState a_w_agg(impl_->params.w_agg.data().size());
  AdamState a_b_round(impl_->params.b_round.size());
  AdamState a_w1(impl_->params.w1.data().size());
  AdamState a_b1(impl_->params.b1.size());
  AdamState a_w2(impl_->params.w2.size());
  AdamState a_b2(1);

  Trace trace;
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<size_t>(
                    rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
    }
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options.batch_size));
      Grads grads(impl_->params);
      for (size_t k = start; k < end; ++k) {
        const size_t idx = order[k];
        const double pred =
            impl_->Forward(train.samples[idx].graph, &trace);
        const double dloss =
            2.0 * (pred - ys[idx]) / static_cast<double>(end - start);
        impl_->Backward(train.samples[idx].graph, trace, dloss, &grads);
      }
      ++adam_t;
      const double lr = options.learning_rate;
      a_w_in.Step(&impl_->params.w_in.data(), grads.w_in.data(), lr, adam_t);
      a_b_in.Step(&impl_->params.b_in, grads.b_in, lr, adam_t);
      a_w_self.Step(&impl_->params.w_self.data(), grads.w_self.data(), lr,
                    adam_t);
      a_w_agg.Step(&impl_->params.w_agg.data(), grads.w_agg.data(), lr,
                   adam_t);
      a_b_round.Step(&impl_->params.b_round, grads.b_round, lr, adam_t);
      a_w1.Step(&impl_->params.w1.data(), grads.w1.data(), lr, adam_t);
      a_b1.Step(&impl_->params.b1, grads.b1, lr, adam_t);
      a_w2.Step(&impl_->params.w2, grads.w2, lr, adam_t);
      Vector b2_vec{impl_->params.b2};
      a_b2.Step(&b2_vec, Vector{grads.b2}, lr, adam_t);
      impl_->params.b2 = b2_vec[0];
    }
    ++report.epochs_run;

    double val_loss = 0.0;
    for (size_t i = 0; i < eval.size(); ++i) {
      const double err =
          impl_->Forward(eval.samples[i].graph, &trace) - val_ys[i];
      val_loss += err * err;
    }
    val_loss /= static_cast<double>(eval.size());
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_params = impl_->params;
      stall = 0;
    } else if (++stall >= options.patience) {
      report.early_stopped = true;
      break;
    }
  }
  impl_->params = std::move(best_params);
  impl_->fitted = true;
  report.final_val_loss = best_val;
  report.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

Result<double> GnnModel::PredictLatency(const PlanSample& sample) const {
  if (!impl_->fitted) return Status::FailedPrecondition("not fitted");
  if (sample.graph.node_features.empty()) {
    return Status::InvalidArgument("empty graph");
  }
  Trace trace;
  const double log_latency = impl_->Forward(sample.graph, &trace);
  return std::exp(std::clamp(log_latency, -12.0, 12.0));
}

}  // namespace pdsp
