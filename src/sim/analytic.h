// Closed-form analytic latency estimator: an M/M/1-style queueing
// approximation over the cardinality model, no simulation. Used as (a) a
// microsecond-fast baseline predictor to compare the learned cost models
// against, and (b) a sanity cross-check for the discrete-event simulator
// (the two should agree on regime: unsaturated / near-saturation /
// saturated).

#ifndef PDSP_SIM_ANALYTIC_H_
#define PDSP_SIM_ANALYTIC_H_

#include "src/cluster/cluster.h"
#include "src/common/status.h"
#include "src/query/plan.h"
#include "src/sim/cost_model.h"

namespace pdsp {

/// \brief Per-operator analytic breakdown.
struct AnalyticOpEstimate {
  double utilization = 0.0;     ///< per-instance ρ
  double service_s = 0.0;       ///< mean per-batch service time
  double queue_wait_s = 0.0;    ///< M/M/1 waiting time (capped if ρ >= 1)
  double window_residence_s = 0.0;
  double network_s = 0.0;       ///< mean hop delay into this operator
};

/// \brief Result of the analytic estimate.
struct AnalyticEstimate {
  /// Predicted median end-to-end latency (seconds): critical-path sum of
  /// waits, services, window residences and hop delays.
  double latency_s = 0.0;
  /// Highest per-instance utilization in the plan (the bottleneck).
  double max_utilization = 0.0;
  /// True if some operator is at or beyond saturation.
  bool saturated = false;
  std::vector<AnalyticOpEstimate> per_op;
};

/// \brief Queueing-model knobs.
struct AnalyticOptions {
  CostModel costs;
  /// Latency charged per unit of overload when ρ >= 1 (the queue grows
  /// linearly with observation time; this stands in for a finite horizon).
  double saturation_penalty_s = 8.0;
  /// Mean tuples per batch arriving at an operator (matches the simulator's
  /// source batching).
  double batch_tuples = 128.0;
};

/// Computes the analytic latency estimate for a validated plan.
Result<AnalyticEstimate> EstimateLatencyAnalytically(
    const LogicalPlan& plan, const Cluster& cluster,
    const AnalyticOptions& options = {});

}  // namespace pdsp

#endif  // PDSP_SIM_ANALYTIC_H_
