// pdsp::obs time-series: per-operator-instance samples taken at a fixed
// virtual-time interval during a simulated run (queue depth, utilization,
// input/output rates, watermark lag) plus the global in-flight/backpressure
// state, in long format — one row per (sample time, task) — so a single CSV
// plots directly with pandas/gnuplot.

#ifndef PDSP_OBS_TIMESERIES_H_
#define PDSP_OBS_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace pdsp {
namespace obs {

/// \brief One sampled row: the state of one operator instance (physical
/// task) at virtual time `time_s`, with rates/utilization computed over the
/// interval since the previous sample.
struct TimeSeriesRow {
  double time_s = 0.0;
  int task = 0;             ///< physical task id
  std::string op;           ///< logical operator name
  int instance = 0;         ///< instance index within the operator
  int64_t queue_tuples = 0; ///< input queue depth at the sample instant
  double utilization = 0.0; ///< busy fraction over the last interval
  double in_rate_tps = 0.0;
  double out_rate_tps = 0.0;
  /// Sample time minus the task's input watermark: how far event time lags
  /// behind virtual time at this task (watermark stalls show as growth).
  double watermark_lag_s = 0.0;
  /// Global pipeline state, repeated on every row of the sample.
  int64_t in_flight_tuples = 0;
  bool backpressure = false;
};

/// \brief Append-only collection of sampled rows, dumpable to CSV.
class TimeSeries {
 public:
  /// CSV header cells, in row-serialization order.
  static const std::vector<std::string>& Columns();

  void Append(TimeSeriesRow row) { rows_.push_back(std::move(row)); }
  const std::vector<TimeSeriesRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }
  size_t NumRows() const { return rows_.size(); }

  /// Distinct sample timestamps, in order of first appearance.
  std::vector<double> SampleTimes() const;

  /// Serializes all rows. Non-finite samples become empty cells (never
  /// "nan"/"inf" literals, which break strict CSV parsers downstream).
  std::string ToCsv() const;

  /// Parses a ToCsv() document; empty numeric cells come back as NaN, so
  /// ToCsv(FromCsv(x)) == x. Rejects a bad header or ragged rows.
  static Result<TimeSeries> FromCsv(const std::string& csv);

  /// Writes ToCsv() to `path`, creating parent directories.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<TimeSeriesRow> rows_;
};

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_TIMESERIES_H_
