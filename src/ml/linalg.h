// Minimal dense linear algebra for the learned cost models: row-major
// matrices, BLAS-free products, and a Cholesky solver for ridge regression.
// Sized for this workload (feature dims < 100, graphs < 20 nodes) — clarity
// over peak FLOPs.

#ifndef PDSP_ML_LINALG_H_
#define PDSP_ML_LINALG_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace pdsp {

using Vector = std::vector<double>;

/// \brief Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Xavier/Glorot-scaled random initialization.
  static Matrix GlorotRandom(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  Vector& data() { return data_; }
  const Vector& data() const { return data_; }

  /// y = this * x  (x.size() == cols).
  Vector MatVec(const Vector& x) const;

  /// y = this^T * x  (x.size() == rows).
  Vector TransposedMatVec(const Vector& x) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Vector data_;
};

/// C = A * B.
Result<Matrix> MatMul(const Matrix& a, const Matrix& b);

/// A^T.
Matrix Transpose(const Matrix& a);

/// Solves (A + ridge*I) x = b for symmetric positive definite A via
/// Cholesky. Fails if the (regularized) matrix is not SPD.
Result<Vector> CholeskySolve(Matrix a, Vector b, double ridge = 0.0);

/// Element-wise helpers.
double Dot(const Vector& a, const Vector& b);
void Axpy(double alpha, const Vector& x, Vector* y);  // y += alpha * x
void Scale(double alpha, Vector* x);

}  // namespace pdsp

#endif  // PDSP_ML_LINALG_H_
