// User-defined operator implementations for the application suite. Each UDO
// performs the application's real computation on real tuples — the point of
// the suite is that UDO behaviour (state handling, custom logic) differs
// qualitatively from standard operators (paper O3).

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>

#include "src/apps/apps.h"
#include "src/common/string_util.h"
#include "src/runtime/udo.h"

namespace pdsp {

int WordPolarity(const std::string& word) {
  // Deterministic synthetic lexicon: a word's polarity derives from a stable
  // hash of its characters, giving ~20% positive, ~20% negative words.
  uint64_t h = 1469598103934665603ULL;
  for (char c : word) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  const auto bucket = h % 10;
  if (bucket < 2) return 1;
  if (bucket < 4) return -1;
  return 0;
}

namespace {

// ---------- text ----------

// (text) -> one (word, 1) per whitespace token.
class TokenizeWordsUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.empty() || !e.tuple.values[0].is_string()) return;
    for (const std::string& word :
         SplitWhitespace(e.tuple.values[0].AsString())) {
      StreamElement result;
      result.tuple.event_time = e.tuple.event_time;
      result.birth = e.birth;
      result.attr_id = e.attr_id;
      result.tuple.values = {Value(word), Value(int64_t{1})};
      out->push_back(std::move(result));
    }
  }
};

// (user, text) -> (shard, score, polarity). The shard key (user % 128)
// keeps the downstream sentiment aggregation parallelizable: keying on the
// three polarity classes alone would funnel the whole stream into at most
// three instances — a keyed-scaling wall no degree of parallelism can fix.
class SentimentScoreUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 2 || !e.tuple.values[1].is_string()) return;
    double score = 0.0;
    for (const std::string& word :
         SplitWhitespace(e.tuple.values[1].AsString())) {
      score += WordPolarity(word);
    }
    StreamElement result;
    result.tuple.event_time = e.tuple.event_time;
    result.birth = e.birth;
    result.attr_id = e.attr_id;
    const int64_t polarity = score > 0 ? 1 : (score < 0 ? -1 : 0);
    const int64_t shard = e.tuple.values[0].AsNumeric() >= 0
                              ? static_cast<int64_t>(
                                    e.tuple.values[0].AsNumeric()) % 128
                              : 0;
    result.tuple.values = {Value(shard), Value(score), Value(polarity)};
    out->push_back(std::move(result));
  }
};

// (logline) -> (status, bytes): "parses" the line deterministically.
class LogParseUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.empty() || !e.tuple.values[0].is_string()) return;
    const auto tokens = SplitWhitespace(e.tuple.values[0].AsString());
    if (tokens.empty()) return;
    const uint64_t h = Value(tokens[0]).Hash();
    static const int64_t kStatuses[] = {200, 200, 200, 200, 200, 200, 200,
                                        301, 404, 500};
    const int64_t status = kStatuses[h % 10];
    const double bytes = 200.0 + static_cast<double>(h % 4096);
    StreamElement result;
    result.tuple.event_time = e.tuple.event_time;
    result.birth = e.birth;
    result.attr_id = e.attr_id;
    result.tuple.values = {Value(status), Value(bytes)};
    out->push_back(std::move(result));
  }
};

// (text) -> (topic, 1) for "hashtag" words (deterministic 1-in-8 of vocab).
class TopicExtractUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.empty() || !e.tuple.values[0].is_string()) return;
    for (const std::string& word :
         SplitWhitespace(e.tuple.values[0].AsString())) {
      if (Value(word).Hash() % 8 != 0) continue;
      StreamElement result;
      result.tuple.event_time = e.tuple.event_time;
      result.birth = e.birth;
      result.attr_id = e.attr_id;
      result.tuple.values = {Value(word), Value(int64_t{1})};
      out->push_back(std::move(result));
    }
  }
};

// (topic, count) window results -> re-emitted only while the topic ranks in
// the running top-k by count.
class TopicRankUdo : public Udo {
 public:
  explicit TopicRankUdo(size_t k) : k_(k) {}

  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 2) return;
    const double count = e.tuple.values[1].AsNumeric();
    counts_[e.tuple.values[0]] = count;
    // Keep the tracker bounded.
    if (counts_.size() > 4 * k_) {
      std::vector<std::pair<double, Value>> ranked;
      ranked.reserve(counts_.size());
      for (const auto& [topic, c] : counts_) ranked.emplace_back(c, topic);
      std::nth_element(
          ranked.begin(), ranked.begin() + static_cast<int64_t>(k_),
          ranked.end(), [](const auto& a, const auto& b) {
            return a.first > b.first;
          });
      std::map<Value, double> kept;
      for (size_t i = 0; i < k_ && i < ranked.size(); ++i) {
        kept[ranked[i].second] = ranked[i].first;
      }
      counts_ = std::move(kept);
    }
    // Emit while in the current top-k.
    size_t above = 0;
    for (const auto& [topic, c] : counts_) above += c > count;
    if (above < k_) out->push_back(e);
  }

 private:
  size_t k_;
  std::map<Value, double> counts_;
};

// ---------- IoT / monitoring ----------

// (machine, cpu, mem) -> (machine, anomaly score): per-machine z-scores.
class MachineOutlierUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 3) return;
    const Value machine = e.tuple.values[0];
    const double cpu = e.tuple.values[1].AsNumeric();
    const double mem = e.tuple.values[2].AsNumeric();
    Stats& s = stats_[machine];
    const double score = s.Score(cpu) + s.Score(mem);
    s.Add(cpu);
    s.Add(mem);
    StreamElement result;
    result.tuple.event_time = e.tuple.event_time;
    result.birth = e.birth;
    result.attr_id = e.attr_id;
    result.tuple.values = {machine, Value(score)};
    out->push_back(std::move(result));
  }

 private:
  struct Stats {
    int64_t n = 0;
    double mean = 0.0, m2 = 0.0;
    void Add(double x) {
      ++n;
      const double d = x - mean;
      mean += d / n;
      m2 += d * (x - mean);
    }
    double Score(double x) const {
      if (n < 8) return 0.0;
      const double sd = std::sqrt(m2 / n);
      return sd > 1e-9 ? std::abs(x - mean) / sd : 0.0;
    }
  };
  std::map<Value, Stats> stats_;
};

// (sensor, value) -> (sensor, value, moving avg) emitted only on spikes.
class SpikeDetectUdo : public Udo {
 public:
  SpikeDetectUdo(size_t window, double threshold)
      : window_(window), threshold_(threshold) {}

  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 2) return;
    const Value sensor = e.tuple.values[0];
    const double v = e.tuple.values[1].AsNumeric();
    auto& buf = history_[sensor];
    if (buf.size() >= window_) {
      double sum = 0.0;
      for (double x : buf) sum += x;
      const double avg = sum / static_cast<double>(buf.size());
      if (std::abs(v - avg) > threshold_ * std::max(1e-9, std::abs(avg))) {
        StreamElement result;
        result.tuple.event_time = e.tuple.event_time;
        result.birth = e.birth;
        result.attr_id = e.attr_id;
        result.tuple.values = {sensor, Value(v), Value(avg)};
        out->push_back(std::move(result));
      }
    }
    buf.push_back(v);
    if (buf.size() > window_) buf.pop_front();
  }

 private:
  size_t window_;
  double threshold_;
  std::map<Value, std::deque<double>> history_;
};

// (house, plug, load) -> (house, load, ratio) when load exceeds the house's
// EWMA baseline (DEBS'14 smart grid outlier detection).
class SmartGridOutlierUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 3) return;
    const Value house = e.tuple.values[0];
    const double load = e.tuple.values[2].AsNumeric();
    auto [it, inserted] = baseline_.try_emplace(house, load);
    double& avg = it->second;
    const double ratio = avg > 1e-9 ? load / avg : 1.0;
    avg = 0.98 * avg + 0.02 * load;
    if (!inserted && ratio > 1.5) {
      StreamElement result;
      result.tuple.event_time = e.tuple.event_time;
      result.birth = e.birth;
      result.attr_id = e.attr_id;
      result.tuple.values = {house, Value(load), Value(ratio)};
      out->push_back(std::move(result));
    }
  }

 private:
  std::map<Value, double> baseline_;
};

// (segment, avg speed) window results -> (segment, toll) for congested
// segments. Linear Road tolls a segment when its average speed falls below
// the segment's free-flow threshold; thresholds vary per segment (road
// geometry), derived deterministically from the segment id.
class LinearRoadTollUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 2) return;
    const double avg_speed = e.tuple.values[1].AsNumeric();
    const double threshold =
        30.0 + static_cast<double>(e.tuple.values[0].Hash() % 41);
    if (avg_speed >= threshold) return;
    const double deficit = threshold - avg_speed;
    const double toll = 2.0 * deficit * deficit / 100.0;
    StreamElement result;
    result.tuple.event_time = e.tuple.event_time;
    result.birth = e.birth;
    result.attr_id = e.attr_id;
    result.tuple.values = {e.tuple.values[0], Value(toll)};
    out->push_back(std::move(result));
  }
};

// (vehicle, lat, lon, speed) -> (road, speed): grid-based map matching with
// a deliberate trig inner loop (the compute-heavy UDO of the suite).
class MapMatchUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 4) return;
    const double lat = e.tuple.values[1].AsNumeric();
    const double lon = e.tuple.values[2].AsNumeric();
    // Probe the 3x3 neighbourhood of grid cells for the nearest "road"
    // anchor (synthetic anchors at cell centres).
    const double cell = 0.01;
    const auto ci = static_cast<int64_t>(std::floor(lat / cell));
    const auto cj = static_cast<int64_t>(std::floor(lon / cell));
    double best = 1e300;
    int64_t road = 0;
    for (int64_t di = -1; di <= 1; ++di) {
      for (int64_t dj = -1; dj <= 1; ++dj) {
        const double alat = (static_cast<double>(ci + di) + 0.5) * cell;
        const double alon = (static_cast<double>(cj + dj) + 0.5) * cell;
        // Haversine-style distance (the real cost of map matching).
        const double dlat = (alat - lat) * M_PI / 180.0;
        const double dlon = (alon - lon) * M_PI / 180.0;
        const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                         std::cos(lat * M_PI / 180.0) *
                             std::cos(alat * M_PI / 180.0) *
                             std::sin(dlon / 2) * std::sin(dlon / 2);
        const double d = 2.0 * std::atan2(std::sqrt(a), std::sqrt(1 - a));
        if (d < best) {
          best = d;
          road = ((ci + di) * 73856093 + (cj + dj) * 19349663) % 10007;
          if (road < 0) road += 10007;
        }
      }
    }
    StreamElement result;
    result.tuple.event_time = e.tuple.event_time;
    result.birth = e.birth;
    result.attr_id = e.attr_id;
    result.tuple.values = {Value(road), e.tuple.values[3]};
    out->push_back(std::move(result));
  }
};

// ---------- finance / web ----------

// (account, amount, location) -> flagged (account, amount, prob) for
// low-probability location transitions (per-account Markov chain).
class FraudScoreUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 3) return;
    const Value account = e.tuple.values[0];
    const int64_t location = static_cast<int64_t>(
        e.tuple.values[2].AsNumeric());
    AccountState& s = accounts_[account];
    double prob = 1.0;
    if (s.total > 4) {
      const auto it = s.transitions.find({s.last_location, location});
      const double count =
          it == s.transitions.end() ? 0.0 : static_cast<double>(it->second);
      prob = (count + 1.0) / (static_cast<double>(s.total) + 8.0);
    }
    ++s.transitions[{s.last_location, location}];
    ++s.total;
    s.last_location = location;
    if (prob < 0.12) {
      StreamElement result;
      result.tuple.event_time = e.tuple.event_time;
      result.birth = e.birth;
      result.attr_id = e.attr_id;
      result.tuple.values = {account, e.tuple.values[1], Value(prob)};
      out->push_back(std::move(result));
    }
  }

 private:
  struct AccountState {
    int64_t last_location = -1;
    int64_t total = 0;
    std::map<std::pair<int64_t, int64_t>, int64_t> transitions;
  };
  std::map<Value, AccountState> accounts_;
};

// (symbol, price, volume) -> (symbol, price, bargain index) against the
// symbol's running VWAP.
class BargainIndexUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 3) return;
    const Value symbol = e.tuple.values[0];
    const double price = e.tuple.values[1].AsNumeric();
    const double volume = std::max(1.0, e.tuple.values[2].AsNumeric());
    Vwap& v = vwap_[symbol];
    v.pv += price * volume;
    v.vol += volume;
    const double vwap = v.pv / v.vol;
    const double index = vwap > 1e-9 ? (vwap - price) / vwap : 0.0;
    // Exponential decay keeps the VWAP responsive.
    v.pv *= 0.999;
    v.vol *= 0.999;
    StreamElement result;
    result.tuple.event_time = e.tuple.event_time;
    result.birth = e.birth;
    result.attr_id = e.attr_id;
    result.tuple.values = {symbol, Value(price), Value(index)};
    out->push_back(std::move(result));
  }

 private:
  struct Vwap {
    double pv = 0.0;
    double vol = 0.0;
  };
  std::map<Value, Vwap> vwap_;
};

// (user, url) -> (url, 1) once per (user, url) pair within the dedup
// horizon (bounded hash set, cleared when full).
class ClickDedupUdo : public Udo {
 public:
  explicit ClickDedupUdo(size_t capacity) : capacity_(capacity) {}

  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 2) return;
    const uint64_t key =
        e.tuple.values[0].Hash() * 0x9e3779b97f4a7c15ULL ^
        e.tuple.values[1].Hash();
    if (seen_.size() >= capacity_) seen_.clear();
    if (!seen_.insert(key).second) return;
    StreamElement result;
    result.tuple.event_time = e.tuple.event_time;
    result.birth = e.birth;
    result.attr_id = e.attr_id;
    result.tuple.values = {e.tuple.values[1], Value(int64_t{1})};
    out->push_back(std::move(result));
  }

 private:
  size_t capacity_;
  std::unordered_set<uint64_t> seen_;
};

// Joined (l_ad..., r_ad...) impression x click rows -> (campaign, ctr-ish
// weight): the AD app's custom sliding aggregation logic.
class AdCtrUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 3) return;
    // l_ad = field 0, l_campaign = field 1; click weight decays with the
    // click/impression time gap captured by position in the join window.
    const Value campaign = e.tuple.values[1];
    Window& w = per_campaign_[campaign];
    ++w.pairs;
    const double weight = 1.0 / (1.0 + 0.1 * static_cast<double>(w.pairs % 64));
    StreamElement result;
    result.tuple.event_time = e.tuple.event_time;
    result.birth = e.birth;
    result.attr_id = e.attr_id;
    result.tuple.values = {campaign, Value(weight)};
    out->push_back(std::move(result));
  }

 private:
  struct Window {
    int64_t pairs = 0;
  };
  std::map<Value, Window> per_campaign_;
};

// (returnflag, quantity, extendedprice, discount, shipdays) ->
// (returnflag, disc_price): TPC-H Q1's derived column.
class TpchDiscPriceUdo : public Udo {
 public:
  void Process(const StreamElement& e, UdoContext*,
               std::vector<StreamElement>* out) override {
    if (e.tuple.values.size() < 4) return;
    const double price = e.tuple.values[2].AsNumeric();
    const double discount = e.tuple.values[3].AsNumeric();
    StreamElement result;
    result.tuple.event_time = e.tuple.event_time;
    result.birth = e.birth;
    result.attr_id = e.attr_id;
    result.tuple.values = {e.tuple.values[0],
                           Value(price * (1.0 - discount))};
    out->push_back(std::move(result));
  }
};

}  // namespace

void RegisterAppUdos() {
  static const bool registered = [] {
    UdoRegistry& r = UdoRegistry::Global();
    // Determinism traits: "pure" UDOs are stateless element-wise functions
    // (any arrival order yields the same output multiset); "ordered" UDOs
    // keep running state (counters, baselines, dedup sets) whose outputs
    // depend on the order same-instance elements arrive in.
    const UdoTraits pure{/*pure=*/true, /*rng=*/false,
                         /*order_sensitive=*/false};
    const UdoTraits ordered{/*pure=*/false, /*rng=*/false,
                            /*order_sensitive=*/true};
    r.Register("tokenize_words", [](const OperatorDescriptor&) {
      return std::make_unique<TokenizeWordsUdo>();
    }, pure);
    r.Register("sa_score", [](const OperatorDescriptor&) {
      return std::make_unique<SentimentScoreUdo>();
    }, pure);
    r.Register("lp_parse", [](const OperatorDescriptor&) {
      return std::make_unique<LogParseUdo>();
    }, pure);
    r.Register("tt_extract", [](const OperatorDescriptor&) {
      return std::make_unique<TopicExtractUdo>();
    }, pure);
    r.Register("tt_rank", [](const OperatorDescriptor&) {
      return std::make_unique<TopicRankUdo>(10);
    }, ordered);
    r.Register("mo_score", [](const OperatorDescriptor&) {
      return std::make_unique<MachineOutlierUdo>();
    }, ordered);
    r.Register("sd_spike", [](const OperatorDescriptor&) {
      return std::make_unique<SpikeDetectUdo>(16, 0.25);
    }, ordered);
    r.Register("sg_outlier", [](const OperatorDescriptor&) {
      return std::make_unique<SmartGridOutlierUdo>();
    }, ordered);
    r.Register("lr_toll", [](const OperatorDescriptor&) {
      return std::make_unique<LinearRoadTollUdo>();
    }, pure);
    r.Register("tm_map_match", [](const OperatorDescriptor&) {
      return std::make_unique<MapMatchUdo>();
    }, pure);
    r.Register("fd_score", [](const OperatorDescriptor&) {
      return std::make_unique<FraudScoreUdo>();
    }, ordered);
    r.Register("bi_vwap", [](const OperatorDescriptor&) {
      return std::make_unique<BargainIndexUdo>();
    }, ordered);
    r.Register("ca_dedup", [](const OperatorDescriptor&) {
      return std::make_unique<ClickDedupUdo>(1 << 20);
    }, ordered);
    r.Register("ad_ctr", [](const OperatorDescriptor&) {
      return std::make_unique<AdCtrUdo>();
    }, ordered);
    r.Register("tpch_disc_price", [](const OperatorDescriptor&) {
      return std::make_unique<TpchDiscPriceUdo>();
    }, pure);
    return true;
  }();
  (void)registered;
}

}  // namespace pdsp
