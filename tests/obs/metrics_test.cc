#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace pdsp {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CounterHandlesAreStableAndShared) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("pdsp.test.tuples");
  Counter* b = reg.GetCounter("pdsp.test.tuples");
  EXPECT_EQ(a, b);
  a->Add(3);
  b->Add(4);
  EXPECT_EQ(reg.CounterValue("pdsp.test.tuples"), 7);
  EXPECT_EQ(reg.CounterValue("pdsp.test.absent"), 0);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("pdsp.test.level");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("pdsp.test.level"), -2.25);
}

TEST(MetricsRegistryTest, HistogramObservations) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.GetHistogram("pdsp.test.latency");
  h->Observe(0.001);
  h->Observe(0.010);
  h->Observe(0.100);
  const ExpHistogram snap = h->Snapshot();
  EXPECT_EQ(snap.TotalCount(), 3);
  EXPECT_DOUBLE_EQ(snap.stats().min(), 0.001);
  EXPECT_DOUBLE_EQ(snap.stats().max(), 0.100);
}

TEST(MetricsRegistryTest, NamesAreSortedWithinSections) {
  MetricsRegistry reg;
  reg.GetCounter("pdsp.b.x");
  reg.GetCounter("pdsp.a.x");
  reg.GetGauge("pdsp.c.x");
  const std::vector<std::string> names = reg.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "pdsp.a.x");
  EXPECT_EQ(names[1], "pdsp.b.x");
  EXPECT_EQ(names[2], "pdsp.c.x");
}

TEST(MetricsRegistryTest, ToJsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.GetCounter("pdsp.test.count")->Add(42);
  reg.GetGauge("pdsp.test.rate")->Set(123.5);
  reg.GetGauge("pdsp.test.nan")->Set(
      std::numeric_limits<double>::quiet_NaN());
  reg.GetHistogram("pdsp.test.lat")->Observe(0.005);

  auto parsed = Json::Parse(reg.DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& doc = *parsed;
  EXPECT_EQ(doc["counters"]["pdsp.test.count"].AsInt(), 42);
  EXPECT_DOUBLE_EQ(doc["gauges"]["pdsp.test.rate"].AsNumber(), 123.5);
  // NaN gauges serialize as null, never as invalid JSON.
  EXPECT_TRUE(doc["gauges"]["pdsp.test.nan"].is_null());
  const Json& hist = doc["histograms"]["pdsp.test.lat"];
  EXPECT_EQ(hist["count"].AsInt(), 1);
  ASSERT_TRUE(hist["buckets"].is_array());
  ASSERT_EQ(hist["buckets"].size(), 1u);
  EXPECT_EQ(hist["buckets"].at(0)["count"].AsInt(), 1);
  EXPECT_LE(hist["buckets"].at(0)["lo"].AsNumber(), 0.005);
  EXPECT_GT(hist["buckets"].at(0)["hi"].AsNumber(), 0.005);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesDoNotLoseCounts) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("pdsp.test.concurrent");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, c] {
      for (int i = 0; i < 10000; ++i) {
        c->Add(1);
        reg.GetGauge("pdsp.test.g")->Set(static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.CounterValue("pdsp.test.concurrent"), 40000);
}

TEST(MetricsRegistryTest, MergeFromAddsCountersAndMergesHistograms) {
  MetricsRegistry a;
  a.GetCounter("pdsp.test.count")->Add(10);
  a.GetGauge("pdsp.test.rate")->Set(1.0);
  a.GetHistogram("pdsp.test.lat")->Observe(0.010);

  MetricsRegistry b;
  b.GetCounter("pdsp.test.count")->Add(5);
  b.GetCounter("pdsp.test.only_b")->Add(2);
  b.GetGauge("pdsp.test.rate")->Set(2.0);
  b.GetHistogram("pdsp.test.lat")->Observe(0.020);

  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("pdsp.test.count"), 15);
  EXPECT_EQ(a.CounterValue("pdsp.test.only_b"), 2);
  // Gauges are last-write-wins in merge-call order.
  EXPECT_DOUBLE_EQ(a.GaugeValue("pdsp.test.rate"), 2.0);
  EXPECT_EQ(a.GetHistogram("pdsp.test.lat")->Snapshot().TotalCount(), 2);
}

TEST(MetricsRegistryTest, MergeFromSelfIsANoOp) {
  MetricsRegistry a;
  a.GetCounter("pdsp.test.count")->Add(3);
  a.MergeFrom(a);
  EXPECT_EQ(a.CounterValue("pdsp.test.count"), 3);
}

TEST(MetricNameTest, FollowsConvention) {
  EXPECT_EQ(MetricName("sim", "sink_tuples"), "pdsp.sim.sink_tuples");
}

}  // namespace
}  // namespace obs
}  // namespace pdsp
