#include "src/obs/artifacts.h"

#include <cmath>
#include <filesystem>

#include "src/common/file_util.h"

namespace pdsp {
namespace obs {

namespace {

Json FiniteNumber(double v) {
  return std::isfinite(v) ? Json::Number(v) : Json::Null();
}

}  // namespace

Json SimOptionsJson(const SimOptions& options) {
  Json j = Json::Object();
  j.Set("duration_s", Json::Number(options.duration_s));
  j.Set("warmup_s", Json::Number(options.warmup_s));
  j.Set("source_batch_interval_s",
        Json::Number(options.source_batch_interval_s));
  j.Set("watermark_interval_s", Json::Number(options.watermark_interval_s));
  j.Set("batch_rows", Json::Int(options.batch_rows));
  j.Set("max_in_flight_tuples", Json::Int(options.max_in_flight_tuples));
  j.Set("max_events", Json::Int(options.max_events));
  j.Set("latency_reservoir",
        Json::Int(static_cast<int64_t>(options.latency_reservoir)));
  j.Set("metrics_interval_s", Json::Number(options.metrics_interval_s));
  j.Set("attribute_latency", Json::Bool(options.attribute_latency));
  j.Set("seed", Json::Str(std::to_string(options.seed)));
  return j;
}

Json RunMetricsJson(const SimResult& result, const SimOptions* sim_options) {
  Json summary = Json::Object();
  summary.Set("median_latency_s", FiniteNumber(result.median_latency_s));
  summary.Set("mean_latency_s", FiniteNumber(result.mean_latency_s));
  summary.Set("p95_latency_s", FiniteNumber(result.p95_latency_s));
  summary.Set("p99_latency_s", FiniteNumber(result.p99_latency_s));
  summary.Set("throughput_tps", FiniteNumber(result.throughput_tps));
  summary.Set("source_tuples", Json::Int(result.source_tuples));
  summary.Set("sink_tuples", Json::Int(result.sink_tuples));
  summary.Set("backpressure_skipped", Json::Int(result.backpressure_skipped));
  summary.Set("late_drops", Json::Int(result.late_drops));
  summary.Set("events_processed", Json::Int(result.events_processed));
  summary.Set("virtual_time_end_s", FiniteNumber(result.virtual_time_end));

  Json ops = Json::Array();
  for (const OperatorRunStats& s : result.op_stats) {
    Json op = Json::Object();
    op.Set("name", Json::Str(s.name));
    op.Set("parallelism", Json::Int(s.parallelism));
    op.Set("tuples_in", Json::Int(s.tuples_in));
    op.Set("tuples_out", Json::Int(s.tuples_out));
    op.Set("late_drops", Json::Int(s.late_drops));
    op.Set("busy_time_s", FiniteNumber(s.busy_time_s));
    op.Set("utilization", FiniteNumber(s.utilization));
    op.Set("max_instance_util", FiniteNumber(s.max_instance_util));
    op.Set("max_queue_tuples", Json::Int(static_cast<int64_t>(
        s.max_queue_tuples)));
    Json lat = Json::Object();
    lat.Set("queue_wait_s", FiniteNumber(s.latency.MeanQueueWait()));
    lat.Set("network_in_s", FiniteNumber(s.latency.MeanNetworkIn()));
    lat.Set("service_s", FiniteNumber(s.latency.MeanService()));
    lat.Set("window_s", FiniteNumber(s.latency.MeanWindowResidency()));
    lat.Set("source_batch_s", FiniteNumber(s.latency.MeanSourceBatch()));
    lat.Set("path_cost_s", FiniteNumber(s.latency.MeanPathCost()));
    op.Set("latency", std::move(lat));
    ops.Append(std::move(op));
  }

  if (!result.breakdown.empty()) {
    Json b = Json::Object();
    b.Set("samples", Json::Int(result.breakdown.samples));
    b.Set("total_s", FiniteNumber(result.breakdown.total_s));
    b.Set("source_batch_s", FiniteNumber(result.breakdown.source_batch_s));
    b.Set("network_s", FiniteNumber(result.breakdown.network_s));
    b.Set("queue_s", FiniteNumber(result.breakdown.queue_s));
    b.Set("service_s", FiniteNumber(result.breakdown.service_s));
    b.Set("window_s", FiniteNumber(result.breakdown.window_s));
    summary.Set("latency_breakdown", std::move(b));
  }

  Json root = Json::Object();
  root.Set("summary", std::move(summary));
  root.Set("operators", std::move(ops));
  root.Set("metrics", result.metrics != nullptr ? result.metrics->ToJson()
                                                : Json::Object());
  if (sim_options != nullptr) {
    root.Set("options", SimOptionsJson(*sim_options));
  }
  return root;
}

Status WriteRunArtifacts(const std::string& dir, const SimResult& result,
                         const ArtifactOptions& options) {
  const std::filesystem::path base(dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec && !std::filesystem::is_directory(base)) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  PDSP_RETURN_NOT_OK(WriteTextFileAtomic(
      (base / "metrics.json").string(),
      RunMetricsJson(result, options.sim_options).Dump(2) + "\n"));
  if (!result.timeseries.empty()) {
    const std::string ts = (base / "timeseries.csv").string();
    PDSP_RETURN_NOT_OK(result.timeseries.WriteCsv(ts + ".tmp"));
    PDSP_RETURN_NOT_OK(AtomicRename(ts + ".tmp", ts));
  }
  if (options.tracer != nullptr) {
    const std::string tr = (base / "trace.json").string();
    PDSP_RETURN_NOT_OK(options.tracer->WriteFile(tr + ".tmp"));
    PDSP_RETURN_NOT_OK(AtomicRename(tr + ".tmp", tr));
  }
  if (options.diagnosis != nullptr) {
    PDSP_RETURN_NOT_OK(
        WriteTextFileAtomic((base / "diagnosis.json").string(),
                            options.diagnosis->ToJson().Dump(2) + "\n"));
  }
  if (options.host_profile != nullptr) {
    PDSP_RETURN_NOT_OK(
        WriteTextFileAtomic((base / "host_profile.json").string(),
                            options.host_profile->ToJson().Dump(2) + "\n"));
  }
  if (options.cpu_profile != nullptr) {
    PDSP_RETURN_NOT_OK(
        WriteTextFileAtomic((base / "profile.json").string(),
                            options.cpu_profile->ToJson().Dump(2) + "\n"));
  }
  if (options.mem_profile != nullptr) {
    PDSP_RETURN_NOT_OK(
        WriteTextFileAtomic((base / "memory.json").string(),
                            options.mem_profile->ToJson().Dump(2) + "\n"));
  }
  return Status::OK();
}

Status WriteRunArtifacts(const std::string& dir, const SimResult& result,
                         const Tracer* tracer, const Diagnosis* diagnosis) {
  ArtifactOptions options;
  options.tracer = tracer;
  options.diagnosis = diagnosis;
  return WriteRunArtifacts(dir, result, options);
}

}  // namespace obs
}  // namespace pdsp
