// Ablation: key-skew sensitivity. The paper models data as Poisson but
// notes PDSP-Bench also supports Zipf-distributed data; this ablation shows
// why it matters: under hash partitioning, skewed keys concentrate load on
// few instances of a keyed operator, so the hottest instance saturates long
// before mean utilization does — and the watermark holds every window back
// to the straggler's pace.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/query/builder.h"

namespace pdsp {

namespace {

Result<LogicalPlan> SkewPlan(double rate, double skew) {
  StreamSpec stream;
  (void)stream.schema.AddField({"key", DataType::kInt});
  (void)stream.schema.AddField({"val", DataType::kDouble});
  FieldGeneratorSpec key;
  key.dist = FieldDistribution::kZipfKey;
  key.cardinality = 1000;
  key.zipf_s = skew;
  FieldGeneratorSpec val;
  val.dist = FieldDistribution::kUniformDouble;
  val.max = 100.0;
  stream.specs = {key, val};
  ArrivalProcess::Options arrival;
  arrival.rate = rate;

  PlanBuilder b;
  auto src = b.Source("src", stream, arrival, 8);
  WindowSpec win;
  win.duration_ms = 1000.0;
  auto agg = b.WindowAggregate("agg", src, win, AggregateFn::kSum, 1, 0, 8);
  b.Sink("sink", agg);
  return b.Build();
}

}  // namespace

int Main(int argc, char** argv) {
  const bench::DriverSweepOptions opts = bench::ParseDriverOptions(argc, argv);
  const Cluster cluster = Cluster::M510(10);
  const RunProtocol protocol = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 40000.0 : 120000.0;

  TableReporter table(
      StrFormat("Ablation: Zipf key skew vs keyed-aggregation latency "
                "(p=8, %.0fk ev/s)",
                rate / 1000.0),
      {"zipf_s", "p50(ms)", "hottest-instance util", "mean util"});

  const std::vector<double> skews = {0.0, 0.4, 0.8, 1.2, 1.6};
  std::vector<exec::SweepCell> cells;
  for (double skew : skews) {
    exec::SweepCell cell;
    cell.make_plan = [rate, skew] { return SkewPlan(rate, skew); };
    cell.cluster = cluster;
    cell.protocol = protocol;
    cell.label = StrFormat("ablation_skew/zipf_%.1f", skew);
    // Per-cell artifact bundle: the time-series makes the skew-induced
    // imbalance directly visible (hot instance queue depth / utilization).
    cell.protocol.obs.enabled = true;
    cell.protocol.obs.dir = StrFormat("results/ablation_skew/zipf_%.1f", skew);
    cells.push_back(std::move(cell));
  }

  const exec::SweepResult sweep =
      bench::RunDriverSweep(std::move(cells), "ablation_skew", opts);

  // The plan shape is identical across skews, so "agg"'s operator id can be
  // resolved from any one instantiation.
  size_t agg_id = 0;
  if (auto probe = SkewPlan(rate, 0.0); probe.ok()) {
    if (auto id = probe->FindOperator("agg"); id.ok()) {
      agg_id = static_cast<size_t>(*id);
    }
  }

  for (size_t i = 0; i < skews.size(); ++i) {
    const exec::SweepCellOutcome& outcome = sweep.cells[i];
    if (!outcome.result.ok() || outcome.result->op_stats.size() <= agg_id) {
      table.AddRow({StrFormat("%.1f", skews[i]), "n/a", "n/a", "n/a"});
      continue;
    }
    const OperatorRunStats& stats = outcome.result->op_stats[agg_id];
    table.AddRow({StrFormat("%.1f", skews[i]),
                  LatencyCell(outcome.result->mean_median_latency_s),
                  StrFormat("%.2f", stats.max_instance_util),
                  StrFormat("%.2f", stats.utilization)});
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_skew.csv");
  return bench::SweepExitCode(sweep);
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
