// Cost model for the discrete-event simulator: per-tuple service costs by
// operator type, per-batch framing overheads, fan-out (shuffle) costs and
// parallelism management overhead. All times are seconds of work on a
// reference core (m510 speed 1.0); the simulator divides by the hosting
// node's effective speed and multiplies by its core-contention factor.
//
// The defaults are calibrated so the simulated Flink exhibits the paper's
// qualitative behaviour: queueing saturation at too-low parallelism, shuffle
// and coordination overhead eroding gains at too-high parallelism (O2), and
// heavier costs for joins and stateful UDOs than for filters/maps (O1, O3).

#ifndef PDSP_SIM_COST_MODEL_H_
#define PDSP_SIM_COST_MODEL_H_

#include "src/query/plan.h"

namespace pdsp {

/// \brief Tunable service-cost parameters (seconds on a reference core).
struct CostModel {
  // Per-input-tuple costs by operator type. Calibrated to realistic Flink
  // per-core throughputs on the m510 reference core: sources ~200k ev/s
  // (deserialization), filters ~400k/s, keyed window updates ~160k/s,
  // join maintenance ~140k/s.
  double source_cost = 5.0e-6;       ///< generation + serialization
  double filter_cost = 2.5e-6;       ///< predicate evaluation
  double map_cost = 3.0e-6;
  double flatmap_cost = 3.0e-6;      ///< per input; outputs add emit cost
  double agg_update_cost = 6.0e-6;   ///< pane lookup + aggregate update
  double join_insert_cost = 4.0e-6;  ///< buffer insert + eviction
  double join_probe_cost = 3.0e-6;   ///< probing the opposite buffer
  double udo_base_cost = 5.0e-6;     ///< multiplied by udo_cost_factor
  double udo_state_cost = 3.0e-6;    ///< extra for stateful UDOs
  double sink_cost = 1.0e-6;

  // Per-output-tuple costs.
  double emit_cost = 0.5e-6;           ///< any emitted tuple
  double join_match_cost = 2.0e-6;     ///< constructing a join result
  double agg_fire_cost = 8.0e-6;       ///< per emitted (key, window) result

  // Batch / channel overheads — these grow with parallelism because higher
  // fan-out fragments batches into more, smaller sub-batches.
  double batch_overhead = 25e-6;          ///< per received batch (task wake)
  double wm_batch_cost = 5e-6;            ///< processing a watermark-only batch
  double subbatch_send_overhead = 8e-6;   ///< per destination sub-batch sent
  /// Keyed-state coordination: per received batch, extra cost proportional
  /// to (operator parallelism - 1) — state repartitioning bookkeeping.
  double keyed_coordination_cost = 1.0e-6;

  /// Operator chaining (Flink's default): tuples crossing a kForward
  /// channel between equal-parallelism operators whose instances are
  /// co-located on the same node stay on the producing thread — no send
  /// overhead, no handoff latency, no receive framing. Use locality
  /// placement to make co-location likely.
  bool chain_forward_channels = true;

  // Network-side costs (the cluster supplies latency and bandwidth).
  double serialization_cost_per_byte = 2.0e-9;  ///< cross-node sends only
  double local_handoff_latency = 4e-6;          ///< same-node delivery delay

  /// Service cost charged per input tuple for the given operator.
  double InputTupleCost(const OperatorDescriptor& op) const;

  /// Service cost charged per output tuple for the given operator
  /// (`timer_fire` marks window-fire emissions, which are costlier).
  double OutputTupleCost(const OperatorDescriptor& op, bool timer_fire) const;

  /// Per-batch fixed cost for the given operator (framing + coordination).
  double BatchCost(const OperatorDescriptor& op) const;
};

}  // namespace pdsp

#endif  // PDSP_SIM_COST_MODEL_H_
