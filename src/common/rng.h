// Deterministic pseudo-random number generation and the distributions used by
// the workload generator: uniform, normal, exponential, Poisson (arrival
// processes, Section 4 "data is modelled as poisson distributed") and Zipf
// (skewed key distributions, Section 4 "we can also model other common data
// distributions such as zipf").

#ifndef PDSP_COMMON_RNG_H_
#define PDSP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdsp {

/// \brief SplitMix64: used to seed the main generator and as a cheap
/// stateless mixer for deriving per-stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// \brief xoshiro256**: the library-wide PRNG. Fast, high quality, and
/// deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (cached pair).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate lambda (> 0); mean 1/lambda.
  double Exponential(double lambda);

  /// Poisson-distributed count with the given mean (>= 0). Uses Knuth's
  /// method for small means and a normal approximation above 64 (adequate
  /// for arrival batching; exact tails are irrelevant there).
  int64_t Poisson(double mean);

  /// Zipf-distributed rank in [1, n] with exponent s (>= 0). s == 0 is
  /// uniform. Uses rejection-inversion (Hörmann) so it is O(1) per draw.
  int64_t Zipf(int64_t n, double s);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Returns 0 for empty or all-zero weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Uniformly picks one element of a non-empty vector (by const reference).
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[static_cast<size_t>(UniformInt(
        0, static_cast<int64_t>(items.size()) - 1))];
  }

  /// Derives an independent generator; streams are decorrelated by mixing
  /// the given stream id into fresh state.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
  // Cached Zipf rejection-inversion constants (recomputed when n/s change).
  int64_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  double zipf_h_x1_ = 0.0, zipf_hx0_ = 0.0, zipf_ss_ = 0.0;
};

}  // namespace pdsp

#endif  // PDSP_COMMON_RNG_H_
