// Logical (parallel) query plans. A plan is a DAG of operator descriptors —
// sources, filters, maps/flatMaps, windowed aggregates, windowed joins,
// user-defined operators (UDOs) and a sink — each carrying a parallelism
// degree and the partitioning strategy of its input edges. This is the "PQP"
// of the paper (Section 2, footnote 2): one structure that, combined with
// parallelism degrees, expands into many physical queries.

#ifndef PDSP_QUERY_PLAN_H_
#define PDSP_QUERY_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/arrival.h"
#include "src/data/generator.h"
#include "src/data/value.h"

namespace pdsp {

/// Logical operator kinds.
enum class OperatorType {
  kSource = 0,
  kFilter,
  kMap,
  kFlatMap,
  kWindowAggregate,
  kWindowJoin,
  kUdo,
  kSink,
};

const char* OperatorTypeToString(OperatorType type);

/// Filter comparison functions (Table 3: <, >, <=, >=, ==, !=).
enum class FilterOp { kLt = 0, kLe, kGt, kGe, kEq, kNe };

const char* FilterOpToString(FilterOp op);

/// Window shapes and eviction policies (Table 3).
enum class WindowType { kTumbling = 0, kSliding = 1 };
enum class WindowPolicy { kTime = 0, kCount = 1 };

const char* WindowTypeToString(WindowType type);
const char* WindowPolicyToString(WindowPolicy policy);

/// Aggregation functions (Table 3: min, max, avg, mean, sum).
enum class AggregateFn { kMin = 0, kMax, kAvg, kMean, kSum };

const char* AggregateFnToString(AggregateFn fn);

/// Data partitioning strategies between operator instances (Table 3:
/// forward, rebalance, hashing).
enum class Partitioning { kForward = 0, kRebalance = 1, kHash = 2 };

const char* PartitioningToString(Partitioning partitioning);

/// \brief Window definition shared by aggregates and joins.
struct WindowSpec {
  WindowType type = WindowType::kTumbling;
  WindowPolicy policy = WindowPolicy::kTime;
  /// Time policy: window span in milliseconds.
  double duration_ms = 1000.0;
  /// Count policy: window span in tuples.
  int64_t length_tuples = 1000;
  /// Sliding windows: slide = ratio * span (Table 3: 0.3 .. 0.7).
  double slide_ratio = 0.5;

  /// Window span in seconds for time policy.
  double DurationSeconds() const { return duration_ms / 1000.0; }
  /// Slide in seconds (== duration for tumbling).
  double SlideSeconds() const;
  /// Slide in tuples (== length for tumbling).
  int64_t SlideTuples() const;
  /// How many overlapping panes an element belongs to (1 for tumbling).
  double OverlapFactor() const;

  std::string ToString() const;
};

/// \brief One logical operator. Only the fields relevant to `type` are
/// meaningful; the rest stay at their defaults.
struct OperatorDescriptor {
  OperatorType type = OperatorType::kMap;
  /// Unique name within the plan.
  std::string name;
  /// Number of parallel instances this operator runs with.
  int parallelism = 1;
  /// How tuples are routed from upstream instances into this operator.
  /// Keyed operators (window aggregate / join) are forced to kHash by
  /// validation.
  Partitioning input_partitioning = Partitioning::kRebalance;

  // --- kSource ---
  /// Index into LogicalPlan::sources().
  int source_index = 0;

  // --- kFilter ---
  FilterOp filter_op = FilterOp::kGt;
  size_t filter_field = 0;
  Value filter_literal;
  /// Estimated pass fraction in (0, 1); < 0 means "unknown".
  double selectivity_hint = -1.0;

  // --- kMap / kFlatMap ---
  /// Mean output tuples per input tuple (kMap: 1).
  double flatmap_fanout = 1.0;

  // --- kWindowAggregate ---
  WindowSpec window;
  AggregateFn agg_fn = AggregateFn::kSum;
  size_t agg_field = 0;
  /// Key field for per-key grouping; kNoKey for a global window.
  size_t key_field = kNoKey;

  // --- kWindowJoin --- (window/agg fields above reused: window = join win.)
  size_t join_left_key = 0;
  size_t join_right_key = 0;
  /// Match probability for a pair of wind tuples; < 0 means key-equality
  /// cardinality math is used instead.
  double join_selectivity_hint = -1.0;

  // --- kUdo ---
  /// Registry key identifying the compute logic (e.g. "sentiment_score").
  std::string udo_kind;
  /// Output schema of the UDO when it differs from its input (e.g. a
  /// tokenizer turning sentences into words). Empty = same as input.
  std::vector<Field> udo_output_fields;
  /// Per-tuple compute cost relative to a standard map (>= 0).
  double udo_cost_factor = 1.0;
  /// Mean output tuples per input tuple.
  double udo_selectivity = 1.0;
  /// Whether the UDO keeps keyed state (drives coordination overhead).
  bool udo_stateful = false;

  static constexpr size_t kNoKey = static_cast<size_t>(-1);

  /// True for operators whose input must be hash-partitioned by key.
  bool RequiresKeyedInput() const;

  std::string ToString() const;
};

/// \brief A data source binding: what the stream looks like and how fast it
/// arrives.
struct SourceBinding {
  StreamSpec stream;
  ArrivalProcess::Options arrival;
};

/// \brief Immutable-after-validation DAG of operators.
///
/// Operators are referenced by dense integer ids (insertion order); edges are
/// (from, to) pairs. Use PlanBuilder for convenient construction.
class LogicalPlan {
 public:
  using OpId = int;

  /// Adds an operator; returns its id. Fails on duplicate names.
  Result<OpId> AddOperator(OperatorDescriptor op);

  /// Adds a dataflow edge from `from` to `to`.
  Status Connect(OpId from, OpId to);

  /// Registers a source binding; returns its index.
  int AddSource(SourceBinding binding);

  /// Structural validation: ids in range, acyclic, exactly one sink, sources
  /// have no inputs and sinks no outputs, filter/map/agg/udo arity 1, join
  /// arity 2, every operator reachable, parallelism >= 1, keyed operators
  /// hash-partitioned, source_index in range, field indices within the
  /// upstream schema, multi-input sink schemas agree. Also rebuilds the
  /// name index (mutable_op may have renamed operators) and derives
  /// per-operator output schemas. Safe to call repeatedly.
  ///
  /// Validate() stops at the first problem; for an exhaustive, structured
  /// report (including warnings) run pdsp::analysis::AnalyzePlan.
  Status Validate();

  bool validated() const { return validated_; }

  size_t NumOperators() const { return ops_.size(); }
  const OperatorDescriptor& op(OpId id) const { return ops_.at(id); }
  OperatorDescriptor* mutable_op(OpId id) {
    validated_ = false;
    return &ops_.at(id);
  }
  const std::vector<std::pair<OpId, OpId>>& edges() const { return edges_; }

  const std::vector<SourceBinding>& sources() const { return sources_; }

  /// Ids of direct upstream / downstream operators.
  std::vector<OpId> Inputs(OpId id) const;
  std::vector<OpId> Outputs(OpId id) const;

  /// Topological order (sources first). Requires validated().
  const std::vector<OpId>& TopologicalOrder() const { return topo_; }

  /// Output schema of an operator. Requires validated().
  const Schema& OutputSchema(OpId id) const { return out_schemas_.at(id); }

  /// Id of the unique sink. Requires validated().
  OpId SinkId() const { return sink_id_; }

  /// Ids of all source operators.
  std::vector<OpId> SourceIds() const;

  /// Looks up an operator id by name.
  Result<OpId> FindOperator(const std::string& name) const;

  /// Sum of parallelism over all operators (total task count).
  int TotalParallelism() const;

  /// Longest source->sink path length in operators (plan "depth").
  int Depth() const;

  /// Multi-line description of the DAG.
  std::string ToString() const;

 private:
  Status ComputeTopologicalOrder();
  Status DeriveSchemas();

  std::vector<OperatorDescriptor> ops_;
  std::vector<std::pair<OpId, OpId>> edges_;
  std::vector<SourceBinding> sources_;
  std::map<std::string, OpId> by_name_;

  bool validated_ = false;
  std::vector<OpId> topo_;
  std::vector<Schema> out_schemas_;
  OpId sink_id_ = -1;
};

}  // namespace pdsp

#endif  // PDSP_QUERY_PLAN_H_
