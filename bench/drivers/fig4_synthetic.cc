// Figure 4 (bottom): mean end-to-end latency of the synthetic PQP suite per
// parallelism category, for the three Table 4 cluster types.
//
// Expected shape (paper O6/O7): no single balancing point of parallelism
// holds across clusters; synthetic (standard-operator) plans tend to do as
// well or better on the homogeneous cluster at moderate parallelism, while
// the larger "He" clusters tolerate higher categories before degrading.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/stats.h"
#include "src/common/string_util.h"
#include "src/harness/synthetic_suite.h"

namespace pdsp {

int Main(int argc, char** argv) {
  const bench::DriverSweepOptions opts = bench::ParseDriverOptions(argc, argv);
  const RunProtocol protocol = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 50000.0 : 200000.0;

  struct ClusterConfig {
    const char* label;
    Cluster cluster;
  };
  const std::vector<ClusterConfig> clusters = {
      {"Ho:m510", Cluster::M510(10)},
      {"He:c6525", Cluster::C6525(10)},
      {"He:c6320", Cluster::C6320(10)},
  };
  const std::vector<SyntheticStructure> structures = {
      SyntheticStructure::kLinear,
      SyntheticStructure::kChain2Filters,
      SyntheticStructure::kTwoWayJoin,
      SyntheticStructure::kThreeWayJoin,
  };

  std::vector<std::string> columns = {"category"};
  for (const auto& c : clusters) {
    columns.push_back(std::string(c.label) + "(ms)");
  }
  TableReporter table(
      StrFormat("Fig. 4 (bottom): mean synthetic PQP latency per "
                "parallelism category x cluster, %.0fk ev/s per source",
                rate / 1000.0),
      columns);

  // One sweep cell per (category, cluster, structure); the table averages
  // each group of |structures| cells into one entry afterwards.
  std::vector<exec::SweepCell> cells;
  for (const auto& cat : StandardCategories()) {
    for (const auto& config : clusters) {
      for (SyntheticStructure structure : structures) {
        exec::SweepCell cell;
        CanonicalOptions opt;
        opt.event_rate = rate;
        opt.parallelism = cat.degree;
        cell.make_plan = [structure, opt] {
          return MakeCanonicalSynthetic(structure, opt);
        };
        cell.cluster = config.cluster;
        cell.protocol = protocol;
        cell.label = StrFormat("fig4/%s/%s/%s", cat.name, config.label,
                               SyntheticStructureToString(structure));
        cells.push_back(std::move(cell));
      }
    }
  }

  const exec::SweepResult sweep =
      bench::RunDriverSweep(std::move(cells), "fig4_synthetic", opts);

  size_t idx = 0;
  for (const auto& cat : StandardCategories()) {
    std::vector<std::string> row = {cat.name};
    for ([[maybe_unused]] const auto& config : clusters) {
      std::vector<double> latencies;
      for ([[maybe_unused]] SyntheticStructure structure : structures) {
        const exec::SweepCellOutcome& outcome = sweep.cells[idx++];
        if (outcome.result.ok()) {
          latencies.push_back(outcome.result->mean_median_latency_s);
        }
      }
      row.push_back(latencies.empty() ? "n/a" : LatencyCell(Mean(latencies)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  Status st = table.WriteCsv("results/fig4_synthetic.csv");
  if (!st.ok()) std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
  return bench::SweepExitCode(sweep);
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
