// Behavioural tests for the application UDOs not covered in apps_test.cc:
// smart-grid outliers, machine-outlier z-scores, bargain index, topic
// extraction and ranking, log parsing, and the AD CTR aggregation.

#include <gtest/gtest.h>

#include <set>

#include "src/apps/apps.h"
#include "src/runtime/operators.h"

namespace pdsp {
namespace {

StreamElement Elem(std::vector<Value> values, double t = 0.0) {
  StreamElement e;
  e.tuple.values = std::move(values);
  e.tuple.event_time = t;
  e.birth = t;
  return e;
}

std::unique_ptr<OperatorInstance> Instance(AppId app, const char* op_name) {
  AppOptions opt;
  auto plan = MakeApp(app, opt);
  EXPECT_TRUE(plan.ok());
  static LogicalPlan kept;
  kept = std::move(*plan);
  auto id = kept.FindOperator(op_name);
  EXPECT_TRUE(id.ok()) << op_name;
  auto inst = CreateOperatorInstance(kept, *id, 0, 1);
  EXPECT_TRUE(inst.ok()) << inst.status().ToString();
  return std::move(*inst);
}

TEST(SmartGridUdoTest, FlagsLoadsAboveBaseline) {
  auto inst = Instance(AppId::kSmartGrid, "load_outlier");
  std::vector<StreamElement> out;
  // Steady load of 100 for house 3 establishes the baseline.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(inst->Process(Elem({Value(3), Value(7), Value(100.0)}), 0,
                              0.0, &out)
                    .ok());
  }
  EXPECT_TRUE(out.empty());  // steady: no outliers
  // A 3x load spike must be flagged with ratio ~3.
  ASSERT_TRUE(inst->Process(Elem({Value(3), Value(7), Value(300.0)}), 0, 0.0,
                            &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tuple.values[0].AsInt(), 3);
  EXPECT_NEAR(out[0].tuple.values[2].AsDouble(), 3.0, 0.1);
}

TEST(SmartGridUdoTest, HousesAreIndependent) {
  auto inst = Instance(AppId::kSmartGrid, "load_outlier");
  std::vector<StreamElement> out;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(inst->Process(Elem({Value(1), Value(1), Value(100.0)}), 0,
                              0.0, &out)
                    .ok());
  }
  // House 2's first reading initializes its own baseline; a high absolute
  // value there is not an outlier relative to house 1.
  ASSERT_TRUE(inst->Process(Elem({Value(2), Value(1), Value(500.0)}), 0, 0.0,
                            &out)
                  .ok());
  EXPECT_TRUE(out.empty());
}

TEST(MachineOutlierUdoTest, ScoresDeviationsAfterWarmup) {
  auto inst = Instance(AppId::kMachineOutlier, "outlier_score");
  std::vector<StreamElement> out;
  // Stable metrics: scores stay ~0 after warmup.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(inst->Process(
        Elem({Value(5), Value(50.0 + (i % 3)), Value(40.0 + (i % 2))}), 0,
        0.0, &out).ok());
  }
  ASSERT_FALSE(out.empty());
  const double calm = out.back().tuple.values[1].AsDouble();
  out.clear();
  // A wild reading scores high.
  ASSERT_TRUE(inst->Process(Elem({Value(5), Value(99.0), Value(1.0)}), 0,
                            0.0, &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].tuple.values[1].AsDouble(), calm + 5.0);
}

TEST(BargainIndexUdoTest, IndexPositiveWhenPriceBelowVwap) {
  auto inst = Instance(AppId::kBargainIndex, "vwap");
  std::vector<StreamElement> out;
  // Establish VWAP ~100 for symbol 9.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(inst->Process(
        Elem({Value(9), Value(100.0), Value(10.0)}), 0, 0.0, &out).ok());
  }
  out.clear();
  ASSERT_TRUE(inst->Process(Elem({Value(9), Value(80.0), Value(1.0)}), 0,
                            0.0, &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].tuple.values[2].AsDouble(), 0.1);  // clear bargain
  out.clear();
  ASSERT_TRUE(inst->Process(Elem({Value(9), Value(130.0), Value(1.0)}), 0,
                            0.0, &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(out[0].tuple.values[2].AsDouble(), 0.0);  // overpriced
}

TEST(LogParseUdoTest, DeterministicStatusAndBytes) {
  auto inst = Instance(AppId::kLogProcessing, "parse");
  std::vector<StreamElement> out;
  ASSERT_TRUE(
      inst->Process(Elem({Value("ba ce di")}), 0, 0.0, &out).ok());
  ASSERT_TRUE(
      inst->Process(Elem({Value("ba xx yy")}), 0, 0.0, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  // Same first token -> same derived status and bytes.
  EXPECT_EQ(out[0].tuple.values[0].AsInt(), out[1].tuple.values[0].AsInt());
  EXPECT_EQ(out[0].tuple.values[1].AsDouble(),
            out[1].tuple.values[1].AsDouble());
  const int64_t status = out[0].tuple.values[0].AsInt();
  EXPECT_TRUE(status == 200 || status == 301 || status == 404 ||
              status == 500);
}

TEST(TopicExtractUdoTest, SubsetsTheTokenStream) {
  auto inst = Instance(AppId::kTrendingTopics, "extract");
  std::vector<StreamElement> out;
  // Long synthetic text: roughly 1 in 8 words are "hashtags".
  std::string text;
  for (int i = 0; i < 400; ++i) text += DictionaryWord(i) + " ";
  ASSERT_TRUE(inst->Process(Elem({Value(text)}), 0, 0.0, &out).ok());
  EXPECT_GT(out.size(), 10u);
  EXPECT_LT(out.size(), 200u);
  for (const StreamElement& e : out) {
    EXPECT_EQ(Value(e.tuple.values[0].AsString()).Hash() % 8, 0u);
  }
}

TEST(TopicRankUdoTest, OnlyTopTopicsPass) {
  auto inst = Instance(AppId::kTrendingTopics, "rank");
  std::vector<StreamElement> out;
  // 30 topics with counts 1..30: low ones must stop passing once the
  // tracker fills with higher-counted topics.
  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(inst->Process(
        Elem({Value(DictionaryWord(i)), Value(static_cast<double>(i))}), 0,
        0.0, &out).ok());
  }
  out.clear();
  // Re-submitting the lowest topic: it is far outside the top-10.
  ASSERT_TRUE(inst->Process(Elem({Value(DictionaryWord(1)), Value(1.0)}), 0,
                            0.0, &out)
                  .ok());
  EXPECT_TRUE(out.empty());
  // The highest topic passes.
  ASSERT_TRUE(inst->Process(Elem({Value(DictionaryWord(30)), Value(31.0)}),
                            0, 0.0, &out)
                  .ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(AdCtrUdoTest, EmitsCampaignWeights) {
  auto inst = Instance(AppId::kAdAnalytics, "ctr");
  std::vector<StreamElement> out;
  // Joined row shape: l_ad, l_campaign, l_bid, r_ad, r_user.
  ASSERT_TRUE(inst->Process(
      Elem({Value(11), Value(4), Value(0.5), Value(11), Value(1234)}), 0,
      0.0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tuple.values[0].AsInt(), 4);  // campaign
  EXPECT_GT(out[0].tuple.values[1].AsDouble(), 0.0);
  EXPECT_LE(out[0].tuple.values[1].AsDouble(), 1.0);
}

}  // namespace
}  // namespace pdsp
