#include "src/obs/compare.h"

#include <gtest/gtest.h>

#include <string>

namespace pdsp {
namespace obs {
namespace {

RunRecord MeasuredRecord(const std::string& run_id) {
  RunRecord r;
  r.run_id = run_id;
  r.label = "WC";
  r.plan_hash = "0123456789abcdef";
  r.throughput_tps = 10000.0;
  r.median_latency_s = 1.0;
  r.p95_latency_s = 1.8;
  r.p99_latency_s = 2.2;
  return r;
}

TEST(CompareMetricTest, SmallDeltaIsUnchanged) {
  const MetricDelta d = CompareMetric("throughput_tps", 10000.0, 10050.0,
                                      /*higher_is_better=*/true, 0.0, 0.0,
                                      CompareOptions{});
  EXPECT_EQ(d.verdict, MetricVerdict::kUnchanged);
  EXPECT_NEAR(d.delta_frac, 0.005, 1e-12);
}

TEST(CompareMetricTest, DirectionFollowsHigherIsBetter) {
  CompareOptions options;
  options.threshold = 0.10;
  // -20% throughput (higher is better) regresses; -20% latency improves.
  EXPECT_EQ(CompareMetric("tput", 10000.0, 8000.0, true, 0, 0, options)
                .verdict,
            MetricVerdict::kRegressed);
  EXPECT_EQ(CompareMetric("lat", 1.0, 0.8, false, 0, 0, options).verdict,
            MetricVerdict::kImproved);
  EXPECT_EQ(CompareMetric("lat", 1.0, 1.2, false, 0, 0, options).verdict,
            MetricVerdict::kRegressed);
}

TEST(CompareMetricTest, NoiseGateSuppressesJitterWithinVariance) {
  CompareOptions options;
  options.threshold = 0.10;
  options.noise_sigmas = 2.0;
  // +20% latency, but repeat stddev 0.2s on both sides: combined noise
  // sqrt(0.08) ~ 0.28s > |delta| 0.2s / 2 sigmas -> stays unchanged.
  const MetricDelta noisy = CompareMetric("lat", 1.0, 1.2, false, 0.2, 0.2,
                                          options);
  EXPECT_EQ(noisy.verdict, MetricVerdict::kUnchanged);
  // Same delta with tight variance trips both gates.
  const MetricDelta tight = CompareMetric("lat", 1.0, 1.2, false, 0.001,
                                          0.001, options);
  EXPECT_EQ(tight.verdict, MetricVerdict::kRegressed);
}

TEST(CompareMetricTest, ZeroBaselineTreatedAsFullScaleMove) {
  const MetricDelta d = CompareMetric("tput", 0.0, 100.0, true, 0, 0,
                                      CompareOptions{});
  EXPECT_EQ(d.verdict, MetricVerdict::kImproved);
}

TEST(CompareRecordsTest, IdenticalRerunIsUnchangedEverywhere) {
  const RunRecord base = MeasuredRecord("WC-base");
  const RunRecord rerun = MeasuredRecord("WC-rerun");
  const ComparisonReport report = CompareRecords(base, rerun);
  EXPECT_TRUE(report.plan_hash_match);
  EXPECT_FALSE(report.HasRegressions());
  EXPECT_EQ(report.CountVerdict(MetricVerdict::kUnchanged),
            report.metrics.size());
}

TEST(CompareRecordsTest, TwentyPercentLatencyRegressionIsFlagged) {
  const RunRecord base = MeasuredRecord("WC-base");
  RunRecord bad = MeasuredRecord("WC-bad");
  bad.median_latency_s *= 1.2;
  CompareOptions options;
  options.threshold = 0.10;
  const ComparisonReport report = CompareRecords(base, bad, options);
  EXPECT_TRUE(report.HasRegressions());
  bool found = false;
  for (const MetricDelta& d : report.metrics) {
    if (d.metric == "median_latency_s") {
      found = true;
      EXPECT_EQ(d.verdict, MetricVerdict::kRegressed);
      EXPECT_NEAR(d.delta_frac, 0.2, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompareRecordsTest, ThroughputDropRegressionIsFlagged) {
  const RunRecord base = MeasuredRecord("WC-base");
  RunRecord bad = MeasuredRecord("WC-bad");
  bad.throughput_tps *= 0.8;
  const ComparisonReport report = CompareRecords(base, bad);
  EXPECT_TRUE(report.HasRegressions());
  EXPECT_EQ(report.metrics.front().metric, "throughput_tps");
  EXPECT_EQ(report.metrics.front().verdict, MetricVerdict::kRegressed);
}

TEST(CompareRecordsTest, PlanHashMismatchIsReported) {
  const RunRecord base = MeasuredRecord("WC-base");
  RunRecord other = MeasuredRecord("WC-other");
  other.plan_hash = "ffffffffffffffff";
  const ComparisonReport report = CompareRecords(base, other);
  EXPECT_FALSE(report.plan_hash_match);
  // The human rendering calls the mismatch out.
  EXPECT_NE(report.ToString().find("plan hash"), std::string::npos);
}

TEST(CompareRecordsTest, ReportJsonCarriesVerdicts) {
  RunRecord bad = MeasuredRecord("WC-bad");
  bad.throughput_tps *= 0.5;
  const Json json = CompareRecords(MeasuredRecord("WC-base"), bad).ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json["baseline"].AsString(), "WC-base");
  ASSERT_TRUE(json["metrics"].is_array());
  EXPECT_EQ(json["metrics"].at(0)["verdict"].AsString(), "regressed");
}

}  // namespace
}  // namespace obs
}  // namespace pdsp
