// Property: every plan the repo itself produces — randomly generated
// synthetic structures across many seeds, plus all fourteen Table 2
// applications — is free of error-severity analysis findings. The analyzer
// exists to catch hand-built or mutated plans; if it ever flags a generated
// plan, either the generator or a pass has a bug.

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/apps/apps.h"
#include "src/workload/query_generator.h"

namespace pdsp {
namespace {

analysis::AnalyzeOptions Quiet() {
  analysis::AnalyzeOptions options;
  options.record_metrics = false;
  return options;
}

TEST(AnalysisPropertyTest, GeneratedPlansCarryNoErrors) {
  QueryGenOptions options;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    QueryGenerator gen(options, seed);
    for (const SyntheticStructure structure : AllSyntheticStructures()) {
      auto plan = gen.Generate(structure);
      ASSERT_TRUE(plan.ok())
          << SyntheticStructureToString(structure) << " seed " << seed << ": "
          << plan.status().ToString();
      const analysis::AnalysisReport report =
          analysis::AnalyzePlan(*plan, Quiet());
      EXPECT_FALSE(report.HasErrors())
          << SyntheticStructureToString(structure) << " seed " << seed
          << ":\n"
          << report.ToString();
    }
  }
}

TEST(AnalysisPropertyTest, RandomStructurePlansCarryNoErrors) {
  QueryGenOptions options;
  QueryGenerator gen(options, 0xA11A);
  for (int i = 0; i < 50; ++i) {
    auto plan = gen.GenerateRandom();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_TRUE(analysis::CheckPlan(*plan).ok())
        << analysis::AnalyzePlan(*plan, Quiet()).ToString();
  }
}

TEST(AnalysisPropertyTest, AllApplicationsCarryNoErrors) {
  AppOptions options;
  options.parallelism = 2;
  for (const AppInfo& info : AllApps()) {
    auto plan = MakeApp(info.id, options);
    ASSERT_TRUE(plan.ok()) << info.abbrev << ": "
                           << plan.status().ToString();
    const analysis::AnalysisReport report =
        analysis::AnalyzePlan(*plan, Quiet());
    EXPECT_FALSE(report.HasErrors()) << info.abbrev << ":\n"
                                     << report.ToString();
  }
}

}  // namespace
}  // namespace pdsp
