// Ablation: operator chaining. Flink fuses forward-connected operators of
// equal parallelism into one task; our simulator models this as zero-cost
// same-thread handoff on co-located forward channels. This driver measures
// a deep map pipeline with locality placement, chaining on vs off, and with
// rebalance partitioning (which can never chain) for context.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/query/builder.h"

namespace pdsp {

namespace {

Result<LogicalPlan> DeepPipeline(double rate, int parallelism,
                                 Partitioning partitioning) {
  StreamSpec stream;
  (void)stream.schema.AddField({"key", DataType::kInt});
  (void)stream.schema.AddField({"val", DataType::kDouble});
  FieldGeneratorSpec key;
  key.dist = FieldDistribution::kUniformKey;
  key.cardinality = 100000;
  FieldGeneratorSpec val;
  val.dist = FieldDistribution::kUniformDouble;
  val.max = 100.0;
  stream.specs = {key, val};
  ArrivalProcess::Options arrival;
  arrival.rate = rate;

  PlanBuilder b;
  auto cur = b.Source("src", stream, arrival, parallelism);
  for (int i = 0; i < 5; ++i) {
    cur = b.Map(StrFormat("map%d", i + 1), cur, parallelism);
    b.WithPartitioning(cur, partitioning);
  }
  b.Sink("sink", cur, parallelism);
  b.WithPartitioning(cur, partitioning);
  return b.Build();
}

}  // namespace

int Main(int argc, char** argv) {
  const bench::DriverSweepOptions opts = bench::ParseDriverOptions(argc, argv);
  const Cluster cluster = Cluster::M510(10);
  const double rate = bench::FastMode() ? 40000.0 : 150000.0;
  RunProtocol protocol = bench::FigureProtocol();
  protocol.placement = PlacementKind::kLocality;

  TableReporter table(
      StrFormat("Ablation: operator chaining on a 6-op pipeline "
                "(locality placement, %.0fk ev/s)",
                rate / 1000.0),
      {"parallelism", "forward+chain(ms)", "forward,no-chain(ms)",
       "rebalance(ms)"});

  struct Config {
    Partitioning partitioning;
    bool chain;
    const char* name;
  };
  const std::vector<Config> configs = {
      {Partitioning::kForward, true, "fwd-chain"},
      {Partitioning::kForward, false, "fwd-nochain"},
      {Partitioning::kRebalance, true, "rebalance"},
  };
  const std::vector<int> degrees = {4, 16, 64};

  std::vector<exec::SweepCell> cells;
  for (int parallelism : degrees) {
    for (const Config& config : configs) {
      exec::SweepCell cell;
      const Partitioning partitioning = config.partitioning;
      cell.make_plan = [rate, parallelism, partitioning] {
        return DeepPipeline(rate, parallelism, partitioning);
      };
      cell.cluster = cluster;
      cell.protocol = protocol;
      // The chaining toggle rides on the protocol's cost model — no need to
      // bypass the harness anymore.
      cell.protocol.costs.chain_forward_channels = config.chain;
      cell.label =
          StrFormat("ablation_chaining/%s/p%d", config.name, parallelism);
      cells.push_back(std::move(cell));
    }
  }

  const exec::SweepResult sweep =
      bench::RunDriverSweep(std::move(cells), "ablation_chaining", opts);

  size_t idx = 0;
  for (int parallelism : degrees) {
    std::vector<std::string> row = {StrFormat("%d", parallelism)};
    for ([[maybe_unused]] const Config& config : configs) {
      row.push_back(bench::LatencyOrNa(sweep.cells[idx++]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_chaining.csv");
  return bench::SweepExitCode(sweep);
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
