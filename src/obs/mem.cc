#include "src/obs/mem.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/common/thread_annotations.h"
#include "src/obs/prof.h"

namespace pdsp {
namespace obs {
namespace mem {

namespace detail {
std::atomic<int> active_mem_profilers{0};
}  // namespace detail

namespace {

/// Folded-stack key for samples whose marker snapshot stayed torn across
/// all retries (same encoding as the CPU profiler's sentinel: bit 63 is
/// never set by PackFrame).
constexpr uint64_t kTornSentinel = ~0ULL;

constexpr const char* kUntracked = "(untracked)";

// ---------------------------------------------------------------------------
// Sampled-allocation table. A fixed global array of atomic slots records
// every sampled allocation still live, so the free hook can observe the
// free (possibly from another thread) without any lock in the common case.
// Slot protocol: state 0 = empty, 1 = busy (being written or reclaimed),
// anything else = the sampled pointer. Writers claim a slot by CASing the
// state (0 -> 1 on insert, ptr -> 1 on reclaim), mutate the payload with
// relaxed stores, then publish/clear with a release store.

constexpr size_t kTableSize = 4096;  // power of two
constexpr size_t kTableMask = kTableSize - 1;
constexpr size_t kProbeWindow = 16;
constexpr uintptr_t kSlotBusy = 1;

struct Slot {
  std::atomic<uintptr_t> state{0};
  std::atomic<int64_t> weight{0};
  std::atomic<uintptr_t> owner{0};     // the owning Collector*
  std::atomic<uint32_t> op_id{0};      // innermost operator frame (0 = none)
  std::atomic<uint32_t> kernel_id{0};  // innermost kernel frame (0 = none)
};

Slot g_table[kTableSize];

// Membership pre-filter over sampled pointers: one bit per hash value, so
// the free hook can reject never-sampled pointers with a single L1 load
// instead of the 16-slot probe (the probe's scattered cache lines, paid on
// every free while armed, dominated the hook's measured overhead). Bits
// are set on insert and cleared wholesale when the last session's Stop()
// drains the table — a bit may cover several live pointers, so per-free
// clearing would yield false negatives, i.e. leaked slots. False
// positives only cost the old probe. 2 KiB; a few hundred samples keep
// the hit rate on non-sampled frees around a few percent.
constexpr size_t kFilterBits = 16384;
constexpr size_t kFilterMask = kFilterBits - 1;
std::atomic<uint64_t> g_filter[kFilterBits / 64];

/// Occupied-slot count for `g_table`. Zero whenever no sampled allocation is
/// currently live, which lets the free hook bail after a single load before
/// it even hashes the pointer — the dominant case for short-lived churn.
std::atomic<int64_t> g_live_slots{0};

/// Uses high hash bits, decorrelated from the table index (low bits).
size_t FilterBit(size_t h) { return (h >> 16) & kFilterMask; }

size_t HashPtr(const void* ptr) {
  // splitmix64 finalizer over the address; allocator alignment makes the
  // low bits useless on their own.
  uint64_t x = reinterpret_cast<uintptr_t>(ptr);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

// ---------------------------------------------------------------------------
// Collector: the mutable state of one profiling session. All non-atomic
// state is guarded by the global collector registry mutex (sampled events
// are rare — one per ~512 KiB allocated — so a single mutex is not a
// bottleneck and makes the liveness check and the state update one
// critical section, which is what rules out use-after-free when a free or
// a late sample races Stop()).

struct Fold {
  int64_t samples = 0;
  int64_t bytes = 0;
  int64_t allocs = 0;
};

struct Collector {
  int64_t interval_bytes = 0;
  std::chrono::steady_clock::time_point start_time;

  std::map<std::vector<uint64_t>, Fold> folds;
  std::map<std::string, int64_t> tuples_by_op;
  std::vector<MemTimelinePoint> timeline;
  int64_t timeline_stride = 1;  // record every Nth sample (decimation)
  int64_t samples = 0;
  int64_t dropped = 0;
  int64_t table_overflow = 0;
  int64_t total_bytes = 0;
  int64_t live_bytes = 0;
  int64_t peak_heap_bytes = 0;
  int64_t allocs_estimate = 0;
  int64_t frees = 0;
  int64_t freed_bytes = 0;
};

struct CollectorRegistry {
  Mutex mu;
  std::set<Collector*> live PDSP_GUARDED_BY(mu);
};

CollectorRegistry& GlobalCollectors() {
  static CollectorRegistry* registry = new CollectorRegistry();
  return *registry;
}

/// Collector for allocations made by this thread (all_threads=false
/// sessions bind here), else the process-wide fallback below.
thread_local Collector* t_collector = nullptr;
std::atomic<Collector*> g_all_collector{nullptr};

/// Per-thread exponential skip state. Plain PODs: no TLS init guard on the
/// hot path. `t_countdown` counts down bytes until the next sample;
/// `t_current_skip` remembers the drawn interval so the sample weight can
/// cover the skipped bytes plus the overshoot exactly.
thread_local int64_t t_countdown = 0;
thread_local int64_t t_current_skip = 0;
thread_local uint64_t t_rng_state = 0;
/// True while inside a slow path: allocations/frees the profiler's own
/// bookkeeping performs are never re-sampled (no recursion, no deadlock).
thread_local bool t_in_hook = false;

std::atomic<uint64_t> g_rng_streams{0};

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Draws the next exponential byte skip with mean `mean_bytes`, clamped to
/// [1, 64 * mean] so one unlucky draw cannot blind the profiler.
int64_t DrawSkip(int64_t mean_bytes) {
  if (t_rng_state == 0) {
    t_rng_state = 0x9e3779b97f4a7c15ULL ^
                  (g_rng_streams.fetch_add(1, std::memory_order_relaxed) +
                   reinterpret_cast<uintptr_t>(&t_rng_state));
    (void)SplitMix64(&t_rng_state);
  }
  // u uniform in (0, 1]: never 0, so log(u) is finite.
  const double u =
      (static_cast<double>(SplitMix64(&t_rng_state) >> 11) + 1.0) / 9007199254740993.0;
  const double k = -static_cast<double>(mean_bytes) * std::log(u);
  const double cap = static_cast<double>(mean_bytes) * 64.0;
  return static_cast<int64_t>(std::max(1.0, std::min(k, cap)));
}

bool InsertSlot(void* ptr, Collector* owner, int64_t weight, uint32_t op_id,
                uint32_t kernel_id) {
  const size_t h = HashPtr(ptr);
  for (size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = g_table[(h + i) & kTableMask];
    uintptr_t expected = 0;
    if (slot.state.compare_exchange_strong(expected, kSlotBusy,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
      slot.weight.store(weight, std::memory_order_relaxed);
      slot.owner.store(reinterpret_cast<uintptr_t>(owner),
                       std::memory_order_relaxed);
      slot.op_id.store(op_id, std::memory_order_relaxed);
      slot.kernel_id.store(kernel_id, std::memory_order_relaxed);
      const size_t bit = FilterBit(h);
      g_filter[bit / 64].fetch_or(uint64_t{1} << (bit % 64),
                                  std::memory_order_relaxed);
      g_live_slots.fetch_add(1, std::memory_order_relaxed);
      slot.state.store(reinterpret_cast<uintptr_t>(ptr),
                       std::memory_order_release);
      return true;
    }
  }
  return false;
}

std::string NameOrAnon(uint32_t id) {
  std::string name = prof::LookupName(id);
  return name.empty() ? "(anon)" : name;
}

std::string RenderStackKey(const std::vector<uint64_t>& frames) {
  if (frames.empty()) return "(unmarked)";
  if (frames.size() == 1 && frames[0] == kTornSentinel) return "(torn)";
  std::string out;
  for (uint64_t frame : frames) {
    if (!out.empty()) out += ";";
    out += prof::FrameKindName(prof::FrameKindOf(frame));
    out += ":";
    out += NameOrAnon(prof::FrameNameOf(frame));
  }
  return out;
}

/// Innermost frame of `kind`, or 0 when the stack has none.
uint32_t InnermostFrameId(const std::vector<uint64_t>& frames,
                          prof::FrameKind kind) {
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (*it == kTornSentinel) break;
    if (prof::FrameKindOf(*it) == kind) return prof::FrameNameOf(*it);
  }
  return 0;
}

std::string BucketName(uint32_t id) {
  return id == 0 ? kUntracked : NameOrAnon(id);
}

double NumField(const Json& json, const char* key) {
  const Json& v = json[key];
  return v.is_number() ? v.AsNumber() : 0.0;
}

int64_t IntField(const Json& json, const char* key) {
  const Json& v = json[key];
  return v.is_number() ? v.AsInt() : 0;
}

std::string StrField(const Json& json, const char* key) {
  const Json& v = json[key];
  return v.is_string() ? v.AsString() : "";
}

/// The collector the calling thread feeds, or nullptr.
Collector* BoundCollector() {
  Collector* c = t_collector;
  if (c == nullptr) c = g_all_collector.load(std::memory_order_relaxed);
  return c;
}

void SampleAllocSlow(Collector* hint, void* ptr, std::size_t size) {
  // Reset the countdown FIRST: if anything below bails (reentrancy, a
  // stopped collector), the thread still skips ahead instead of re-firing
  // on every subsequent allocation.
  const int64_t consumed = t_current_skip - t_countdown;  // skipped + this
  const int64_t mean = hint->interval_bytes > 0 ? hint->interval_bytes
                                                : int64_t{512 * 1024};
  t_current_skip = DrawSkip(mean);
  t_countdown = t_current_skip;
  if (t_in_hook) return;  // profiler bookkeeping: never self-sample
  t_in_hook = true;

  const int64_t weight =
      consumed > 0 ? consumed : static_cast<int64_t>(size);
  const int64_t sz = size > 0 ? static_cast<int64_t>(size) : 1;
  const int64_t alloc_count = std::max<int64_t>(1, (weight + sz / 2) / sz);

  // Snapshot the marker stack before taking the registry mutex: the stack
  // belongs to this thread and needs no lock.
  std::vector<uint64_t> key;
  bool torn = false;
  prof::ThreadEntry* entry = prof::CurrentThreadEntry();
  if (entry != nullptr) {
    uint64_t frames[prof::kMaxMarkerDepth];
    const int n = entry->stack.Snapshot(frames);
    if (n < 0) {
      torn = true;
      key.assign(1, kTornSentinel);
    } else {
      key.assign(frames, frames + n);
    }
  }
  const uint32_t op_id = InnermostFrameId(key, prof::FrameKind::kOperator);
  const uint32_t kernel_id = InnermostFrameId(key, prof::FrameKind::kKernel);

  CollectorRegistry& registry = GlobalCollectors();
  {
    MutexLock lock(registry.mu);
    if (registry.live.count(hint) != 0) {  // Stop() may have raced us
      Collector& c = *hint;
      Fold& fold = c.folds[key];
      fold.samples += 1;
      fold.bytes += weight;
      fold.allocs += alloc_count;
      c.samples += 1;
      c.total_bytes += weight;
      c.allocs_estimate += alloc_count;
      if (torn) c.dropped += 1;
      if (InsertSlot(ptr, hint, weight, op_id, kernel_id)) {
        c.live_bytes += weight;
        if (c.live_bytes > c.peak_heap_bytes) c.peak_heap_bytes = c.live_bytes;
      } else {
        // Probe window full: this pointer's lifetime is untrackable, so
        // account its weight as freed immediately. That keeps the exact
        // telescoping invariant (freed + live == total) even under
        // overflow; `table_overflow` discloses the degradation.
        c.table_overflow += 1;
        c.freed_bytes += weight;
      }
      if (c.samples % c.timeline_stride == 0) {
        const double t_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          c.start_time)
                .count();
        c.timeline.push_back({t_s, c.live_bytes});
        if (c.timeline.size() >= 2048) {  // decimate: keep every other point
          std::vector<MemTimelinePoint> thinned;
          thinned.reserve(c.timeline.size() / 2);
          for (size_t i = 0; i < c.timeline.size(); i += 2) {
            thinned.push_back(c.timeline[i]);
          }
          c.timeline = std::move(thinned);
          c.timeline_stride *= 2;
        }
      }
    }
  }
  t_in_hook = false;
}

}  // namespace

namespace detail {

void OnAlloc(void* ptr, std::size_t size) noexcept {
  // Fast path first, collector lookup second: the overwhelmingly common
  // outcome is "countdown not yet expired", which costs one thread-local
  // decrement and a branch. Only when the countdown trips do we resolve
  // which collector (if any) this thread feeds.
  t_countdown -= static_cast<int64_t>(size);
  if (t_countdown >= 0) return;
  Collector* c = BoundCollector();
  if (c == nullptr) {
    // Armed process, but this thread feeds no collector (another session's
    // worker). Skip ahead a default interval so the re-check amortizes to
    // two loads per ~512 KiB allocated instead of per allocation. The
    // countdown decrements above may later bleed up to one interval of
    // pre-bind bytes into this thread's first sample — bounded, and well
    // inside sampling noise.
    t_current_skip = int64_t{512 * 1024};
    t_countdown = t_current_skip;
    return;
  }
  SampleAllocSlow(c, ptr, size);
}

void OnFree(void* ptr) noexcept {
  if (g_live_slots.load(std::memory_order_relaxed) == 0) {
    return;  // no sampled allocation is live anywhere: nothing to match
  }
  const size_t h = HashPtr(ptr);
  const size_t bit = FilterBit(h);
  if ((g_filter[bit / 64].load(std::memory_order_relaxed) &
       (uint64_t{1} << (bit % 64))) == 0) {
    return;  // never sampled: the overwhelmingly common free
  }
  const uintptr_t p = reinterpret_cast<uintptr_t>(ptr);
  for (size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = g_table[(h + i) & kTableMask];
    uintptr_t expected = p;
    if (slot.state.load(std::memory_order_relaxed) != p) continue;
    if (!slot.state.compare_exchange_strong(expected, kSlotBusy,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
      continue;  // another thread (or Stop's sweep) claimed it first
    }
    const int64_t weight = slot.weight.load(std::memory_order_relaxed);
    Collector* owner = reinterpret_cast<Collector*>(
        slot.owner.load(std::memory_order_relaxed));
    slot.state.store(0, std::memory_order_release);
    g_live_slots.fetch_sub(1, std::memory_order_relaxed);
    // Never take the registry mutex from inside profiler bookkeeping: the
    // slot is cleared either way, only the owner's counters go unupdated.
    if (t_in_hook) return;
    t_in_hook = true;
    {
      CollectorRegistry& registry = GlobalCollectors();
      MutexLock lock(registry.mu);
      if (registry.live.count(owner) != 0) {  // post-Stop frees are dropped
        owner->frees += 1;
        owner->freed_bytes += weight;
        owner->live_bytes -= weight;
      }
    }
    t_in_hook = false;
    return;
  }
}

}  // namespace detail

namespace detail {
#ifdef PDSP_MEM_PROFILE
// Defined in mem_hooks.cc; referencing it here drags that archive member
// into every link (see the comment at its definition).
extern const bool mem_hooks_linked;
#endif
}  // namespace detail

bool InterpositionAvailable() {
#ifdef PDSP_MEM_PROFILE
  return detail::mem_hooks_linked;
#else
  return false;
#endif
}

int64_t LiveTableSlotsInUse() {
  int64_t used = 0;
  for (const Slot& slot : g_table) {
    if (slot.state.load(std::memory_order_relaxed) != 0) ++used;
  }
  return used;
}

void NoteTuplesProcessed(const std::string& op_name, int64_t tuples) {
  if (tuples <= 0) return;
  Collector* c = BoundCollector();
  if (c == nullptr || t_in_hook) return;
  t_in_hook = true;
  {
    CollectorRegistry& registry = GlobalCollectors();
    MutexLock lock(registry.mu);
    if (registry.live.count(c) != 0) c->tuples_by_op[op_name] += tuples;
  }
  t_in_hook = false;
}

// ---------------------------------------------------------------------------
// MemProfiler

struct MemProfiler::Impl {
  MemOptions options;
  bool running = false;
  bool inert = false;       // interposition compiled out: Start() succeeded
                            // but nothing will ever be sampled
  bool bound_global = false;
  std::unique_ptr<Collector> collector;
  std::chrono::steady_clock::time_point start_time;
};

MemProfiler::MemProfiler(const MemOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

MemProfiler::~MemProfiler() {
  if (impl_ != nullptr && impl_->running) Stop();
}

bool MemProfiler::running() const { return impl_->running; }

Status MemProfiler::Start() {
  Impl& impl = *impl_;
  if (impl.running) {
    return Status::FailedPrecondition("memory profiler already running");
  }
  if (!InterpositionAvailable()) {
    PDSP_LOG(Info) << "memory profiler: allocation interposition compiled "
                      "out (PDSP_SANITIZE=address) — run proceeds "
                      "unprofiled";
    impl.inert = true;
    impl.running = true;
    return Status::OK();
  }
  if (!impl.options.all_threads && prof::CurrentThreadEntry() == nullptr) {
    return Status::FailedPrecondition(
        "memory profiler: calling thread is not registered "
        "(prof::ThreadRegistration)");
  }
  if (!impl.options.all_threads && t_collector != nullptr) {
    return Status::FailedPrecondition(
        "memory profiler: this thread already feeds another profiler");
  }
  if (impl.options.all_threads &&
      g_all_collector.load(std::memory_order_relaxed) != nullptr) {
    return Status::FailedPrecondition(
        "memory profiler: an all-threads profiler is already running");
  }

  auto collector = std::make_unique<Collector>();
  collector->interval_bytes =
      std::max<int64_t>(1024, impl.options.sample_interval_bytes);
  collector->start_time = std::chrono::steady_clock::now();
  impl.start_time = collector->start_time;
  {
    CollectorRegistry& registry = GlobalCollectors();
    MutexLock lock(registry.mu);
    registry.live.insert(collector.get());
  }
  if (impl.options.all_threads) {
    g_all_collector.store(collector.get(), std::memory_order_relaxed);
    impl.bound_global = true;
  } else {
    t_collector = collector.get();
  }
  impl.collector = std::move(collector);
  // Arm the hooks last, and also activate the ProfScope marker machinery so
  // operator markers are maintained even without a CPU sampler alongside.
  prof::detail::active_profilers.fetch_add(1, std::memory_order_relaxed);
  detail::active_mem_profilers.fetch_add(1, std::memory_order_relaxed);
  impl.running = true;
  return Status::OK();
}

MemProfile MemProfiler::Stop() {
  Impl& impl = *impl_;
  MemProfile profile;
  if (!impl.running) return profile;
  impl.running = false;
  if (impl.inert) {
    impl.inert = false;
    return profile;
  }
  // Disarm first so no new fast-path work starts, then unbind.
  detail::active_mem_profilers.fetch_sub(1, std::memory_order_relaxed);
  prof::detail::active_profilers.fetch_sub(1, std::memory_order_relaxed);
  if (impl.bound_global) {
    g_all_collector.store(nullptr, std::memory_order_relaxed);
    impl.bound_global = false;
  } else {
    t_collector = nullptr;  // Start/Stop same-thread contract
  }

  Collector& c = *impl.collector;
  std::map<uint32_t, int64_t> live_by_op;
  std::map<uint32_t, int64_t> live_by_kernel;
  int64_t live_total = 0;
  {
    // One critical section: sweep this session's slots out of the table,
    // then unregister — after which a racing free or late sample finds the
    // collector gone and drops its update instead of touching freed state.
    CollectorRegistry& registry = GlobalCollectors();
    MutexLock lock(registry.mu);
    for (Slot& slot : g_table) {
      uintptr_t state = slot.state.load(std::memory_order_relaxed);
      if (state == 0 || state == kSlotBusy) continue;
      if (slot.owner.load(std::memory_order_relaxed) !=
          reinterpret_cast<uintptr_t>(&c)) {
        continue;
      }
      if (!slot.state.compare_exchange_strong(state, kSlotBusy,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
        continue;  // a free hook claimed it between the load and the CAS
      }
      const int64_t weight = slot.weight.load(std::memory_order_relaxed);
      live_by_op[slot.op_id.load(std::memory_order_relaxed)] += weight;
      live_by_kernel[slot.kernel_id.load(std::memory_order_relaxed)] += weight;
      live_total += weight;
      slot.state.store(0, std::memory_order_release);
      g_live_slots.fetch_sub(1, std::memory_order_relaxed);
    }
    registry.live.erase(&c);
    if (registry.live.empty()) {
      // Last session out: the sweeps above drained every live slot, so the
      // pre-filter can be reset wholesale. Inserts hold this mutex and
      // check liveness first, so no set bit can race the clear.
      for (std::atomic<uint64_t>& word : g_filter) {
        word.store(0, std::memory_order_relaxed);
      }
    }
  }

  profile.sample_interval_bytes = c.interval_bytes;
  profile.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    impl.start_time)
          .count();
  profile.samples = c.samples;
  profile.dropped = c.dropped;
  profile.table_overflow = c.table_overflow;
  profile.total_bytes = c.total_bytes;
  profile.live_bytes = live_total;  // exact: what the sweep actually found
  profile.peak_heap_bytes = c.peak_heap_bytes;
  profile.allocs_estimate = c.allocs_estimate;
  profile.frees = c.frees;
  profile.freed_bytes = c.freed_bytes;
  profile.timeline = std::move(c.timeline);

  // Aggregate folds -> folded stacks + per-operator / per-kernel totals.
  // Everything is summed from the same fold rows, so the telescoping
  // invariant sum(folded) == total == sum(operators) == sum(kernels) holds
  // exactly in integer arithmetic.
  struct Bucket {
    int64_t samples = 0;
    int64_t bytes = 0;
    int64_t allocs = 0;
  };
  std::map<std::string, Fold> by_stack;
  std::map<uint32_t, Bucket> by_op;
  std::map<uint32_t, Bucket> by_kernel;
  for (const auto& [frames, fold] : c.folds) {
    Fold& row = by_stack[RenderStackKey(frames)];
    row.samples += fold.samples;
    row.bytes += fold.bytes;
    row.allocs += fold.allocs;
    Bucket& op = by_op[InnermostFrameId(frames, prof::FrameKind::kOperator)];
    op.samples += fold.samples;
    op.bytes += fold.bytes;
    op.allocs += fold.allocs;
    Bucket& k = by_kernel[InnermostFrameId(frames, prof::FrameKind::kKernel)];
    k.samples += fold.samples;
    k.bytes += fold.bytes;
    k.allocs += fold.allocs;
  }
  for (const auto& [stack, fold] : by_stack) {
    profile.folded.push_back({stack, fold.samples, fold.bytes, fold.allocs});
  }
  auto emit_totals = [](const std::map<uint32_t, Bucket>& buckets,
                        const std::map<uint32_t, int64_t>& live) {
    std::vector<MemFrameTotal> totals;
    for (const auto& [id, b] : buckets) {
      MemFrameTotal t;
      t.name = BucketName(id);
      t.samples = b.samples;
      t.total_bytes = b.bytes;
      t.allocs = b.allocs;
      auto it = live.find(id);
      if (it != live.end()) t.live_bytes = it->second;
      totals.push_back(std::move(t));
    }
    std::sort(totals.begin(), totals.end(),
              [](const MemFrameTotal& a, const MemFrameTotal& b) {
                if (a.total_bytes != b.total_bytes) {
                  return a.total_bytes > b.total_bytes;
                }
                return a.name < b.name;
              });
    return totals;
  };
  profile.operators = emit_totals(by_op, live_by_op);
  profile.kernels = emit_totals(by_kernel, live_by_kernel);

  // Join the simulator's tuple counts: per-operator bytes/tuple plus the
  // profile-level figure over all processed tuples.
  for (MemFrameTotal& op : profile.operators) {
    auto it = c.tuples_by_op.find(op.name);
    if (it != c.tuples_by_op.end() && it->second > 0) {
      op.tuples = it->second;
      op.bytes_per_tuple =
          static_cast<double>(op.total_bytes) / static_cast<double>(op.tuples);
    }
  }
  for (const auto& [name, tuples] : c.tuples_by_op) {
    (void)name;
    profile.tuples_processed += tuples;
  }
  if (profile.tuples_processed > 0) {
    profile.bytes_per_tuple = static_cast<double>(profile.total_bytes) /
                              static_cast<double>(profile.tuples_processed);
  }

  impl.collector.reset();
  return profile;
}

// ---------------------------------------------------------------------------
// MemProfile JSON

Json MemProfile::ToJson() const {
  Json j = Json::Object();
  j.Set("schema_version", Json::Int(schema_version));
  j.Set("sample_interval_bytes", Json::Int(sample_interval_bytes));
  j.Set("duration_s", Json::Number(duration_s));
  j.Set("samples", Json::Int(samples));
  j.Set("dropped", Json::Int(dropped));
  j.Set("table_overflow", Json::Int(table_overflow));
  j.Set("total_bytes", Json::Int(total_bytes));
  j.Set("live_bytes", Json::Int(live_bytes));
  j.Set("peak_heap_bytes", Json::Int(peak_heap_bytes));
  j.Set("allocs_estimate", Json::Int(allocs_estimate));
  j.Set("frees", Json::Int(frees));
  j.Set("freed_bytes", Json::Int(freed_bytes));
  j.Set("tuples_processed", Json::Int(tuples_processed));
  j.Set("bytes_per_tuple", Json::Number(bytes_per_tuple));
  Json folds = Json::Array();
  for (const MemFolded& f : folded) {
    Json e = Json::Object();
    e.Set("stack", Json::Str(f.stack));
    e.Set("samples", Json::Int(f.samples));
    e.Set("bytes", Json::Int(f.bytes));
    e.Set("allocs", Json::Int(f.allocs));
    folds.Append(std::move(e));
  }
  j.Set("folded", std::move(folds));
  auto totals_json = [](const std::vector<MemFrameTotal>& totals) {
    Json arr = Json::Array();
    for (const MemFrameTotal& t : totals) {
      Json e = Json::Object();
      e.Set("name", Json::Str(t.name));
      e.Set("samples", Json::Int(t.samples));
      e.Set("total_bytes", Json::Int(t.total_bytes));
      e.Set("live_bytes", Json::Int(t.live_bytes));
      e.Set("allocs", Json::Int(t.allocs));
      e.Set("tuples", Json::Int(t.tuples));
      e.Set("bytes_per_tuple", Json::Number(t.bytes_per_tuple));
      arr.Append(std::move(e));
    }
    return arr;
  };
  j.Set("operators", totals_json(operators));
  j.Set("kernels", totals_json(kernels));
  Json tl = Json::Array();
  for (const MemTimelinePoint& p : timeline) {
    Json e = Json::Object();
    e.Set("t_s", Json::Number(p.t_s));
    e.Set("live_bytes", Json::Int(p.live_bytes));
    tl.Append(std::move(e));
  }
  j.Set("timeline", std::move(tl));
  return j;
}

Result<MemProfile> MemProfile::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("memory profile document is not an object");
  }
  const int64_t version = IntField(json, "schema_version");
  if (version != kMemProfileSchemaVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported memory profile schema_version %lld",
                  static_cast<long long>(version)));
  }
  MemProfile profile;
  profile.sample_interval_bytes = IntField(json, "sample_interval_bytes");
  profile.duration_s = NumField(json, "duration_s");
  profile.samples = IntField(json, "samples");
  profile.dropped = IntField(json, "dropped");
  profile.table_overflow = IntField(json, "table_overflow");
  profile.total_bytes = IntField(json, "total_bytes");
  profile.live_bytes = IntField(json, "live_bytes");
  profile.peak_heap_bytes = IntField(json, "peak_heap_bytes");
  profile.allocs_estimate = IntField(json, "allocs_estimate");
  profile.frees = IntField(json, "frees");
  profile.freed_bytes = IntField(json, "freed_bytes");
  profile.tuples_processed = IntField(json, "tuples_processed");
  profile.bytes_per_tuple = NumField(json, "bytes_per_tuple");
  const Json& folds = json["folded"];
  if (folds.is_array()) {
    for (size_t i = 0; i < folds.size(); ++i) {
      const Json& e = folds.at(i);
      profile.folded.push_back({StrField(e, "stack"), IntField(e, "samples"),
                                IntField(e, "bytes"), IntField(e, "allocs")});
    }
  }
  auto read_totals = [&json](const char* key) {
    std::vector<MemFrameTotal> totals;
    const Json& arr = json[key];
    if (arr.is_array()) {
      for (size_t i = 0; i < arr.size(); ++i) {
        const Json& e = arr.at(i);
        MemFrameTotal t;
        t.name = StrField(e, "name");
        t.samples = IntField(e, "samples");
        t.total_bytes = IntField(e, "total_bytes");
        t.live_bytes = IntField(e, "live_bytes");
        t.allocs = IntField(e, "allocs");
        t.tuples = IntField(e, "tuples");
        t.bytes_per_tuple = NumField(e, "bytes_per_tuple");
        totals.push_back(std::move(t));
      }
    }
    return totals;
  };
  profile.operators = read_totals("operators");
  profile.kernels = read_totals("kernels");
  const Json& tl = json["timeline"];
  if (tl.is_array()) {
    for (size_t i = 0; i < tl.size(); ++i) {
      const Json& e = tl.at(i);
      profile.timeline.push_back(
          {NumField(e, "t_s"), IntField(e, "live_bytes")});
    }
  }
  return profile;
}

// ---------------------------------------------------------------------------
// Memory diagnostics (PDSP-M301..M303)

void DiagnoseMemProfile(const MemProfile& profile, double node_memory_gb,
                        analysis::AnalysisReport* report) {
  if (report == nullptr || profile.empty()) return;
  constexpr double kMiB = 1024.0 * 1024.0;

  // M301: one operator dominates allocation. Requires enough samples that
  // the share is not one lucky draw.
  const MemFrameTotal* top = nullptr;
  for (const MemFrameTotal& op : profile.operators) {
    if (op.name == kUntracked) continue;
    if (top == nullptr || op.total_bytes > top->total_bytes) top = &op;
  }
  if (top != nullptr && profile.samples >= 16 && top->samples >= 8 &&
      profile.total_bytes > 0) {
    const double share = static_cast<double>(top->total_bytes) /
                         static_cast<double>(profile.total_bytes);
    if (share > 0.60) {
      analysis::Diagnostic d;
      d.severity = analysis::Severity::kWarning;
      d.code = "PDSP-M301";
      d.pass = "mem-profile";
      d.op_name = top->name;
      d.message = StrFormat(
          "operator '%s' accounts for %.0f%% of sampled allocation "
          "(%.1f MiB of %.1f MiB)",
          top->name.c_str(), share * 100.0, top->total_bytes / kMiB,
          profile.total_bytes / kMiB);
      d.hint =
          "reduce per-tuple allocations in this operator (reuse buffers, "
          "pre-size containers); see its bytes_per_tuple in memory.json";
      report->Add(std::move(d));
    }
  }

  // M302: retention — a large share of sampled bytes is still live at the
  // end of the run, i.e. the heap grew without matching tuple turnover.
  if (profile.samples >= 16 && profile.total_bytes > 0 &&
      profile.live_bytes > 4 * profile.sample_interval_bytes) {
    const double retained = static_cast<double>(profile.live_bytes) /
                            static_cast<double>(profile.total_bytes);
    if (retained > 0.50) {
      const MemFrameTotal* holder = nullptr;
      for (const MemFrameTotal& op : profile.operators) {
        if (op.name == kUntracked) continue;
        if (holder == nullptr || op.live_bytes > holder->live_bytes) {
          holder = &op;
        }
      }
      analysis::Diagnostic d;
      d.severity = analysis::Severity::kWarning;
      d.code = "PDSP-M302";
      d.pass = "mem-profile";
      if (holder != nullptr && holder->live_bytes > 0) d.op_name = holder->name;
      d.message = StrFormat(
          "%.0f%% of sampled allocation (%.1f MiB) is still live at end of "
          "run — heap growth without matching tuple turnover",
          retained * 100.0, profile.live_bytes / kMiB);
      d.hint =
          "look for unbounded operator state (windows that never evict, "
          "growing join/hash state) or results accumulated per run";
      report->Add(std::move(d));
    }
  }

  // M303: peak sampled heap exceeds a cluster node's memory.
  if (node_memory_gb > 0.0) {
    const double node_bytes = node_memory_gb * 1024.0 * kMiB;
    if (static_cast<double>(profile.peak_heap_bytes) > node_bytes) {
      analysis::Diagnostic d;
      d.severity = analysis::Severity::kWarning;
      d.code = "PDSP-M303";
      d.pass = "mem-profile";
      d.message = StrFormat(
          "peak sampled heap %.2f GiB exceeds the %.0f GiB node memory "
          "budget",
          profile.peak_heap_bytes / (1024.0 * kMiB), node_memory_gb);
      d.hint =
          "lower generator rate or raise parallelism so per-instance state "
          "fits one node, or provision larger nodes";
      report->Add(std::move(d));
    }
  }
}

}  // namespace mem
}  // namespace obs
}  // namespace pdsp
