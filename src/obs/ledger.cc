#include "src/obs/ledger.h"

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <ctime>

#include "src/common/file_util.h"
#include "src/common/string_util.h"
#include "src/store/plan_serde.h"

namespace pdsp {
namespace obs {

namespace {

uint64_t Fnv1a64(const std::string& data) {
  uint64_t hash = 1469598103934665603ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

Json StrArray(const std::vector<std::string>& values) {
  Json arr = Json::Array();
  for (const std::string& v : values) arr.Append(Json::Str(v));
  return arr;
}

/// Missing keys read as 0/""/[] so old records stay loadable when optional
/// fields are added within one schema version.
double NumField(const Json& json, const std::string& key) {
  return json[key].is_number() ? json[key].AsNumber() : 0.0;
}
int64_t IntField(const Json& json, const std::string& key) {
  return json[key].is_number() ? json[key].AsInt() : 0;
}
std::string StrField(const Json& json, const std::string& key) {
  return json[key].is_string() ? json[key].AsString() : std::string();
}

}  // namespace

Json RunRecord::ToJson() const {
  Json j = Json::Object();
  j.Set("schema_version", Json::Int(schema_version));
  j.Set("run_id", Json::Str(run_id));
  j.Set("timestamp_utc", Json::Str(timestamp_utc));
  j.Set("label", Json::Str(label));
  j.Set("plan_hash", Json::Str(plan_hash));
  j.Set("parallelism", Json::Int(parallelism));
  j.Set("event_rate", Json::Number(event_rate));
  j.Set("cluster", Json::Str(cluster));
  j.Set("nodes", Json::Int(nodes));
  j.Set("seed", Json::Str(seed));
  j.Set("repeats", Json::Int(repeats));
  j.Set("duration_s", Json::Number(duration_s));
  j.Set("warmup_s", Json::Number(warmup_s));
  j.Set("build_info", Json::Str(build_info));
  j.Set("throughput_tps", Json::Number(throughput_tps));
  j.Set("median_latency_s", Json::Number(median_latency_s));
  j.Set("p95_latency_s", Json::Number(p95_latency_s));
  j.Set("p99_latency_s", Json::Number(p99_latency_s));
  j.Set("throughput_stddev", Json::Number(throughput_stddev));
  j.Set("median_latency_stddev", Json::Number(median_latency_stddev));
  j.Set("late_drops", Json::Int(late_drops));
  j.Set("backpressure_skipped", Json::Int(backpressure_skipped));
  Json breakdown = Json::Object();
  breakdown.Set("source_batch_s", Json::Number(breakdown_source_batch_s));
  breakdown.Set("network_s", Json::Number(breakdown_network_s));
  breakdown.Set("queue_s", Json::Number(breakdown_queue_s));
  breakdown.Set("service_s", Json::Number(breakdown_service_s));
  breakdown.Set("window_s", Json::Number(breakdown_window_s));
  j.Set("breakdown", std::move(breakdown));
  j.Set("diagnosis_codes", StrArray(diagnosis_codes));
  j.Set("determinism", Json::Str(determinism));
  j.Set("artifact_dir", Json::Str(artifact_dir));
  Json host = Json::Object();
  host.Set("wall_s", Json::Number(host_wall_s));
  host.Set("cpu_user_s", Json::Number(host_cpu_user_s));
  host.Set("cpu_sys_s", Json::Number(host_cpu_sys_s));
  host.Set("peak_rss_kb", Json::Int(host_peak_rss_kb));
  j.Set("host", std::move(host));
  if (profile_samples > 0) {
    // Only profiled runs carry the key: unprofiled records stay
    // byte-identical to earlier builds, and bit-identity checks can treat
    // the whole nested object as volatile (like "host").
    Json profile = Json::Object();
    profile.Set("samples", Json::Int(profile_samples));
    profile.Set("cpu_s", Json::Number(profile_cpu_s));
    profile.Set("sampler_cpu_s", Json::Number(profile_sampler_cpu_s));
    profile.Set("top_operator", Json::Str(profile_top_operator));
    profile.Set("top_operator_cpu_s",
                Json::Number(profile_top_operator_cpu_s));
    j.Set("profile", std::move(profile));
  }
  if (mem_samples > 0) {
    // Same discipline as "profile": only memory-profiled runs carry the
    // key, so unprofiled records stay byte-identical across builds.
    Json memory = Json::Object();
    memory.Set("samples", Json::Int(mem_samples));
    memory.Set("total_bytes", Json::Int(mem_total_bytes));
    memory.Set("live_bytes", Json::Int(mem_live_bytes));
    memory.Set("peak_heap_bytes", Json::Int(mem_peak_heap_bytes));
    memory.Set("bytes_per_tuple", Json::Number(mem_bytes_per_tuple));
    memory.Set("top_operator", Json::Str(mem_top_operator));
    memory.Set("top_operator_bytes", Json::Int(mem_top_operator_bytes));
    j.Set("memory", std::move(memory));
  }
  return j;
}

Result<RunRecord> RunRecord::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("ledger record is not a JSON object");
  }
  if (!json["schema_version"].is_number()) {
    return Status::InvalidArgument("ledger record missing schema_version");
  }
  const int version = static_cast<int>(json["schema_version"].AsInt());
  if (version != kLedgerSchemaVersion) {
    return Status::InvalidArgument(StrFormat(
        "unsupported ledger schema_version %d (this build reads %d)",
        version, kLedgerSchemaVersion));
  }
  RunRecord r;
  r.schema_version = version;
  r.run_id = StrField(json, "run_id");
  r.label = StrField(json, "label");
  if (r.run_id.empty() || r.label.empty()) {
    return Status::InvalidArgument(
        "ledger record missing run_id and/or label");
  }
  r.timestamp_utc = StrField(json, "timestamp_utc");
  r.plan_hash = StrField(json, "plan_hash");
  r.parallelism = static_cast<int>(IntField(json, "parallelism"));
  r.event_rate = NumField(json, "event_rate");
  r.cluster = StrField(json, "cluster");
  r.nodes = static_cast<int>(IntField(json, "nodes"));
  r.seed = StrField(json, "seed");
  r.repeats = static_cast<int>(IntField(json, "repeats"));
  r.duration_s = NumField(json, "duration_s");
  r.warmup_s = NumField(json, "warmup_s");
  r.build_info = StrField(json, "build_info");
  r.throughput_tps = NumField(json, "throughput_tps");
  r.median_latency_s = NumField(json, "median_latency_s");
  r.p95_latency_s = NumField(json, "p95_latency_s");
  r.p99_latency_s = NumField(json, "p99_latency_s");
  r.throughput_stddev = NumField(json, "throughput_stddev");
  r.median_latency_stddev = NumField(json, "median_latency_stddev");
  r.late_drops = IntField(json, "late_drops");
  r.backpressure_skipped = IntField(json, "backpressure_skipped");
  const Json& breakdown = json["breakdown"];
  r.breakdown_source_batch_s = NumField(breakdown, "source_batch_s");
  r.breakdown_network_s = NumField(breakdown, "network_s");
  r.breakdown_queue_s = NumField(breakdown, "queue_s");
  r.breakdown_service_s = NumField(breakdown, "service_s");
  r.breakdown_window_s = NumField(breakdown, "window_s");
  const Json& codes = json["diagnosis_codes"];
  if (codes.is_array()) {
    for (size_t i = 0; i < codes.size(); ++i) {
      if (codes.at(i).is_string()) {
        r.diagnosis_codes.push_back(codes.at(i).AsString());
      }
    }
  }
  r.determinism = StrField(json, "determinism");
  r.artifact_dir = StrField(json, "artifact_dir");
  const Json& host = json["host"];
  r.host_wall_s = NumField(host, "wall_s");
  r.host_cpu_user_s = NumField(host, "cpu_user_s");
  r.host_cpu_sys_s = NumField(host, "cpu_sys_s");
  r.host_peak_rss_kb = IntField(host, "peak_rss_kb");
  const Json& profile = json["profile"];  // null on unprofiled records
  r.profile_samples = IntField(profile, "samples");
  r.profile_cpu_s = NumField(profile, "cpu_s");
  r.profile_sampler_cpu_s = NumField(profile, "sampler_cpu_s");
  r.profile_top_operator = StrField(profile, "top_operator");
  r.profile_top_operator_cpu_s = NumField(profile, "top_operator_cpu_s");
  const Json& memory = json["memory"];  // null on non-mem-profiled records
  r.mem_samples = IntField(memory, "samples");
  r.mem_total_bytes = IntField(memory, "total_bytes");
  r.mem_live_bytes = IntField(memory, "live_bytes");
  r.mem_peak_heap_bytes = IntField(memory, "peak_heap_bytes");
  r.mem_bytes_per_tuple = NumField(memory, "bytes_per_tuple");
  r.mem_top_operator = StrField(memory, "top_operator");
  r.mem_top_operator_bytes = IntField(memory, "top_operator_bytes");
  return r;
}

std::string PlanHashHex(const LogicalPlan& plan) {
  Result<Json> json = PlanToJson(plan);
  if (!json.ok()) return std::string(16, '0');
  return StrFormat("%016" PRIx64, Fnv1a64(json->Dump(0)));
}

std::string BuildInfoString() {
#if defined(__clang__)
  const char* compiler = "clang++ " __clang_version__;
#elif defined(__GNUC__)
  const char* compiler = "g++ " __VERSION__;
#else
  const char* compiler = "unknown-compiler";
#endif
#if defined(NDEBUG)
  const char* flavor = "release";
#else
  const char* flavor = "debug";
#endif
  return StrFormat("%s (%s)", compiler, flavor);
}

std::string MakeRunId(const std::string& label) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  return StrFormat("%s-%" PRIx64 "-%x",
                   label.empty() ? "run" : label.c_str(), us,
                   static_cast<unsigned>(::getpid()));
}

std::string NowUtcIso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

Status RunLedger::Append(const RunRecord& record) const {
  return AppendLineAtomic(path_, record.ToJson().Dump(0));
}

Result<std::vector<RunRecord>> RunLedger::Load() const {
  Result<std::string> text = ReadTextFile(path_);
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return std::vector<RunRecord>{};
    }
    return text.status();
  }
  std::vector<RunRecord> records;
  size_t line_no = 0;
  for (const std::string& line : Split(*text, '\n')) {
    ++line_no;
    if (Trim(line).empty()) continue;
    Result<Json> json = Json::Parse(line);
    if (!json.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: %s", path_.c_str(), line_no,
                    json.status().message().c_str()));
    }
    Result<RunRecord> record = RunRecord::FromJson(*json);
    if (!record.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: %s", path_.c_str(), line_no,
                    record.status().message().c_str()));
    }
    records.push_back(std::move(*record));
  }
  return records;
}

Result<RunRecord> ResolveRecord(const std::vector<RunRecord>& records,
                                const std::string& spec) {
  if (spec.empty()) return Status::InvalidArgument("empty record spec");

  // "<label>" / "<label>~N": N-th latest record with that label.
  std::string label = spec;
  size_t back = 0;
  const size_t tilde = spec.rfind('~');
  if (tilde != std::string::npos && tilde + 1 < spec.size()) {
    bool numeric = true;
    for (size_t i = tilde + 1; i < spec.size(); ++i) {
      if (spec[i] < '0' || spec[i] > '9') numeric = false;
    }
    if (numeric) {
      label = spec.substr(0, tilde);
      back = static_cast<size_t>(
          std::strtoull(spec.c_str() + tilde + 1, nullptr, 10));
    }
  }
  size_t remaining = back;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->label != label) continue;
    if (remaining == 0) return *it;
    --remaining;
  }

  // Exact run id, then unique prefix.
  const RunRecord* prefix_match = nullptr;
  bool ambiguous = false;
  for (const RunRecord& r : records) {
    if (r.run_id == spec) return r;
    if (spec.size() >= 4 && r.run_id.compare(0, spec.size(), spec) == 0) {
      if (prefix_match != nullptr) ambiguous = true;
      prefix_match = &r;
    }
  }
  if (ambiguous) {
    return Status::InvalidArgument("ambiguous run spec '" + spec +
                                   "' matches multiple run ids");
  }
  if (prefix_match != nullptr) return *prefix_match;
  return Status::NotFound("no ledger record matches '" + spec +
                          "' (label, label~N, run id or >=4-char prefix)");
}

}  // namespace obs
}  // namespace pdsp
