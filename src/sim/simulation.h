// The discrete-event simulator: executes a physical plan on a modelled
// cluster in virtual time. Operators really process tuples (runtime module);
// the simulator supplies arrivals, per-instance FIFO queueing, service times
// (cost model × node speed × core contention), partitioned routing and
// network delays, and collects the end-to-end latency distribution at the
// sink — the paper's headline metric.

#ifndef PDSP_SIM_SIMULATION_H_
#define PDSP_SIM_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/runtime/physical_plan.h"
#include "src/sim/cost_model.h"

namespace pdsp {

/// \brief Simulation parameters.
struct SimOptions {
  /// Virtual seconds during which sources generate data.
  double duration_s = 10.0;
  /// Sink records before this virtual time are discarded (warm-up).
  double warmup_s = 1.0;
  /// Source emission interval (seconds): each source instance emits the
  /// tuples that arrived in the last interval as one batch, mirroring
  /// Flink's network buffer timeout. Fixed (not rate-adaptive) so the
  /// batching latency artifact is identical across parallelism degrees.
  double source_batch_interval_s = 0.005;
  /// How often (virtual seconds of event time) each task re-broadcasts its
  /// watermark to all downstream instances, mirroring Flink's periodic
  /// watermark emission. Smaller = tighter window firing, more overhead.
  double watermark_interval_s = 0.05;
  /// Rows per vectorized kernel invocation on the columnar data plane:
  /// each task firing processes its input batch in chunks of at most this
  /// many rows through OperatorInstance::ProcessBatch. Purely an execution
  /// granularity — event scheduling, cost accounting and RNG draw order are
  /// per-firing/per-tuple, so results are bit-identical at any value
  /// (batch_rows=1 degenerates to tuple-at-a-time). Must be >= 1.
  int64_t batch_rows = 1024;
  /// Source backpressure: generation pauses while more than this many
  /// elements are queued anywhere in the pipeline.
  int64_t max_in_flight_tuples = 600'000;
  /// Hard stop on processed events (runaway guard).
  int64_t max_events = 200'000'000;
  /// Cap on recorded latency samples (reservoir; 0 = keep all).
  size_t latency_reservoir = 65536;
  /// Virtual-time interval between per-operator time-series samples
  /// (queue depth, utilization, rates, watermark lag). 0 disables sampling;
  /// the default is cheap enough to stay on (a few hundred rows per run).
  double metrics_interval_s = 0.25;
  /// Per-tuple latency attribution (queue wait / service / network /
  /// source batching / window residency telescoping to the end-to-end
  /// latency; see LatencyAttr). Fills SimResult::breakdown and
  /// OperatorRunStats::latency, which obs::DiagnoseRun's shuffle rule and
  /// critical path consume. Off by default: charging touches every element
  /// several times per hop (~15% wall-clock on join-heavy plans), and it
  /// never changes virtual-time results — every diagnosis path turns it on.
  bool attribute_latency = false;
  /// Optional span/event tracer (non-owning). When set, the run records
  /// simulate/aggregate phase spans and in-flight counter samples; with
  /// `tracer->verbose()` also every operator firing in virtual time.
  obs::Tracer* tracer = nullptr;
  /// Registry the run's pdsp.sim.* metrics are recorded into. When null
  /// (the default) the engine creates a private registry; a run context
  /// (pdsp::exec::RunContext) passes its own so SimResult::metrics aliases
  /// the per-run registry instead of hidden fresh state. Must not be
  /// shared between concurrently running simulations of the same context.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  uint64_t seed = 42;
};

/// \brief Where tuples passing through one operator spent their time,
/// accumulated by the engine as it charges each latency component (see
/// LatencyAttr in src/runtime/element.h). Sums are over charged elements;
/// the Mean* accessors are safe on empty accumulators (0.0).
struct OperatorLatencyStats {
  double queue_wait_sum_s = 0.0;    ///< input-queue wait, per input tuple
  int64_t queue_wait_n = 0;
  double network_in_sum_s = 0.0;    ///< channel transit into this operator
  int64_t network_in_n = 0;
  double service_sum_s = 0.0;       ///< service as experienced per output
  int64_t service_n = 0;
  double window_sum_s = 0.0;        ///< state residency, per emerging result
  int64_t window_n = 0;
  double source_batch_sum_s = 0.0;  ///< sources only: batching + source lag
  int64_t source_batch_n = 0;

  double MeanQueueWait() const {
    return queue_wait_n > 0 ? queue_wait_sum_s / queue_wait_n : 0.0;
  }
  double MeanNetworkIn() const {
    return network_in_n > 0 ? network_in_sum_s / network_in_n : 0.0;
  }
  double MeanService() const {
    return service_n > 0 ? service_sum_s / service_n : 0.0;
  }
  double MeanWindowResidency() const {
    return window_n > 0 ? window_sum_s / window_n : 0.0;
  }
  double MeanSourceBatch() const {
    return source_batch_n > 0 ? source_batch_sum_s / source_batch_n : 0.0;
  }
  /// Mean per-tuple cost a result pays for traversing this operator — the
  /// edge weight for critical-path extraction (pdsp::obs::ComputeCriticalPath).
  double MeanPathCost() const {
    return MeanQueueWait() + MeanNetworkIn() + MeanService() +
           MeanWindowResidency() + MeanSourceBatch();
  }
};

/// \brief Per-operator execution statistics (summed over instances).
struct OperatorRunStats {
  std::string name;
  int parallelism = 1;
  int64_t tuples_in = 0;
  int64_t tuples_out = 0;
  int64_t late_drops = 0;
  double busy_time_s = 0.0;      ///< summed over instances
  double utilization = 0.0;      ///< mean per-instance busy fraction
  double max_instance_util = 0.0;///< hottest instance (imbalance indicator)
  size_t max_queue_tuples = 0;
  /// Latency components charged at this operator (queue wait, service,
  /// network-in, window residency, source batching).
  OperatorLatencyStats latency;
};

/// \brief Mean end-to-end latency decomposition recorded at the sink over
/// the same post-warm-up records as `SimResult::latency`. The components
/// telescope: their sum equals `total_s` up to floating-point rounding,
/// because the engine charges every virtual-time interval of an element's
/// life to exactly one component.
struct LatencyBreakdown {
  int64_t samples = 0;
  double source_batch_s = 0.0;  ///< mean source batching + source lag
  double network_s = 0.0;       ///< mean network transit (all hops)
  double queue_s = 0.0;         ///< mean queueing delay (all operators)
  double service_s = 0.0;       ///< mean service time (all operators)
  double window_s = 0.0;        ///< mean window/join state residency
  double total_s = 0.0;         ///< mean recorded end-to-end latency

  double ComponentSum() const {
    return source_batch_s + network_s + queue_s + service_s + window_s;
  }
  bool empty() const { return samples == 0; }
};

/// \brief Result of one simulated run.
struct SimResult {
  /// End-to-end latency distribution (seconds), recorded at the sink.
  LatencyRecorder latency{0};
  double median_latency_s = 0.0;
  double mean_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  /// Sink results per second of post-warm-up virtual time.
  double throughput_tps = 0.0;
  int64_t source_tuples = 0;
  int64_t sink_tuples = 0;
  /// Tuples never generated because of source backpressure.
  int64_t backpressure_skipped = 0;
  int64_t late_drops = 0;
  int64_t events_processed = 0;
  double virtual_time_end = 0.0;
  std::vector<OperatorRunStats> op_stats;
  /// End-to-end latency attribution recorded at the sink (empty when no
  /// post-warm-up sink records were produced).
  LatencyBreakdown breakdown;
  /// Named counters/gauges/histograms recorded during the run
  /// (pdsp.sim.* namespace); always populated, never null after a
  /// successful run.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Per-operator-instance samples every SimOptions::metrics_interval_s of
  /// virtual time; empty when sampling is disabled.
  obs::TimeSeries timeseries;

  std::string Summary() const;
};

/// \brief Runs one simulation of a physical plan on a placed cluster.
class Simulation {
 public:
  static Result<SimResult> Run(const PhysicalPlan& plan,
                               const Cluster& cluster,
                               const Placement& placement,
                               const CostModel& costs,
                               const SimOptions& options);
};

/// \brief Convenience facade: validates, expands, places and simulates a
/// logical plan in one call.
struct ExecutionOptions {
  PlacementKind placement = PlacementKind::kLeastLoaded;
  CostModel costs;
  SimOptions sim;
};

Result<SimResult> ExecutePlan(const LogicalPlan& plan, const Cluster& cluster,
                              const ExecutionOptions& options);

/// Runs `repeats` simulations with different seeds and returns the mean of
/// their median latencies — the paper's reporting protocol ("mean of three
/// runs of measuring median latency").
Result<double> MeanMedianLatency(const LogicalPlan& plan,
                                 const Cluster& cluster,
                                 const ExecutionOptions& options,
                                 int repeats = 3);

}  // namespace pdsp

#endif  // PDSP_SIM_SIMULATION_H_
