#include "src/store/run_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/file_util.h"
#include "src/store/plan_serde.h"

namespace pdsp {

namespace fs = std::filesystem;

RunStore::RunStore(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
}

Result<std::string> RunStore::PathFor(const std::string& id) const {
  if (id.empty() || id.find('/') != std::string::npos ||
      id.find("..") != std::string::npos) {
    return Status::InvalidArgument("bad run id '" + id + "'");
  }
  return directory_ + "/" + id + ".json";
}

Status RunStore::SaveRun(const std::string& id, const LogicalPlan& plan,
                         const Cluster& cluster, const SimResult& result) {
  PDSP_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  PDSP_ASSIGN_OR_RETURN(Json plan_json, PlanToJson(plan));

  Json doc = Json::Object();
  doc.Set("id", Json::Str(id));
  doc.Set("plan", std::move(plan_json));

  Json cluster_json = Json::Object();
  cluster_json.Set("nodes", Json::Int(static_cast<int64_t>(
                                cluster.NumNodes())));
  cluster_json.Set("total_cores", Json::Int(cluster.TotalCores()));
  cluster_json.Set("mean_speed", Json::Number(cluster.MeanSpeed()));
  cluster_json.Set("heterogeneous", Json::Bool(cluster.IsHeterogeneous()));
  if (cluster.NumNodes() > 0) {
    cluster_json.Set("node_model", Json::Str(cluster.node(0).spec.model));
  }
  doc.Set("cluster", std::move(cluster_json));
  doc.Set("metrics", SimResultToJson(result));

  return WriteTextFileAtomic(path, doc.Dump(/*indent=*/2) + "\n");
}

Result<Json> RunStore::LoadRun(const std::string& id) const {
  PDSP_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("no run '" + id + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Json::Parse(buffer.str());
}

Result<LogicalPlan> RunStore::LoadPlan(const std::string& id) const {
  PDSP_ASSIGN_OR_RETURN(Json doc, LoadRun(id));
  if (!doc["plan"].is_object()) {
    return Status::InvalidArgument("run '" + id + "' has no plan");
  }
  return PlanFromJson(doc["plan"]);
}

Result<std::vector<std::string>> RunStore::ListRuns() const {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == ".json") ids.push_back(p.stem().string());
  }
  if (ec) return Status::Internal("cannot list " + directory_);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status RunStore::DeleteRun(const std::string& id) {
  PDSP_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::NotFound("no run '" + id + "'");
  }
  return Status::OK();
}

}  // namespace pdsp
