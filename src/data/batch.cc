#include "src/data/batch.h"

#include <algorithm>
#include <utility>

namespace pdsp {
namespace data {

std::string_view StringArena::Add(std::string_view s) {
  if (s.empty()) return std::string_view();
  if (chunks_.empty() || chunks_.back().cap - chunks_.back().used < s.size()) {
    // Chunks grow geometrically from kMinChunkBytes to kChunkBytes: the
    // engine builds a fresh batch per operator firing, and a typical firing
    // holds a handful of short strings — an eager 64 KiB first chunk would
    // dominate the whole data plane's allocation volume (observed ~60x on
    // WC's bytes-per-tuple budget). Large batches still converge to full-
    // size chunks after a few doublings.
    Chunk chunk;
    const size_t last_cap = chunks_.empty() ? 0 : chunks_.back().cap;
    chunk.cap = std::min(std::max(kMinChunkBytes, last_cap * 2), kChunkBytes);
    chunk.cap = std::max(chunk.cap, s.size());
    chunk.bytes = std::make_unique<char[]>(chunk.cap);
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = chunks_.back();
  char* dest = chunk.bytes.get() + chunk.used;
  std::copy(s.begin(), s.end(), dest);
  chunk.used += s.size();
  total_bytes_ += s.size();
  return std::string_view(dest, s.size());
}

Batch::Batch(BatchLayout layout) : layout_(std::move(layout)) {
  columns_.resize(layout_.NumColumns());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].type = layout_.column_type(i);
  }
}

void Batch::Clear() {
  for (Column& c : columns_) {
    c.ints.clear();
    c.doubles.clear();
    c.strings.clear();
    c.mixed.clear();
    c.promoted = false;
  }
  event_time_.clear();
  birth_.clear();
  attr_id_.clear();
  arena_.Clear();
  if (intern_) intern_->clear();
  promotions_ = 0;
}

void Batch::Reserve(size_t rows) {
  for (Column& c : columns_) {
    switch (c.type) {
      case DataType::kInt:
        c.ints.reserve(rows);
        break;
      case DataType::kDouble:
        c.doubles.reserve(rows);
        break;
      case DataType::kString:
        c.strings.reserve(rows);
        break;
    }
  }
  event_time_.reserve(rows);
  birth_.reserve(rows);
  attr_id_.reserve(rows);
}

void Batch::AppendTuple(const Tuple& tuple, double birth, uint32_t attr_id) {
  assert(tuple.values.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    AppendValue(c, tuple.values[c]);
  }
  FinishRow(tuple.event_time, birth, attr_id);
}

void Batch::AppendInt(size_t col, int64_t v) {
  Column& c = columns_[col];
  if (c.promoted || c.type != DataType::kInt) {
    AppendValue(col, Value(v));
    return;
  }
  c.ints.push_back(v);
}

void Batch::AppendDouble(size_t col, double v) {
  Column& c = columns_[col];
  if (c.promoted || c.type != DataType::kDouble) {
    AppendValue(col, Value(v));
    return;
  }
  c.doubles.push_back(v);
}

void Batch::AppendString(size_t col, std::string_view v) {
  Column& c = columns_[col];
  if (c.promoted || c.type != DataType::kString) {
    AppendValue(col, Value(std::string(v)));
    return;
  }
  c.strings.push_back(InternOrAdd(v));
}

void Batch::AppendValue(size_t col, const Value& v) {
  Column& c = columns_[col];
  if (!c.promoted && v.type() == c.type) {
    switch (c.type) {
      case DataType::kInt:
        c.ints.push_back(v.AsInt());
        return;
      case DataType::kDouble:
        c.doubles.push_back(v.AsDouble());
        return;
      case DataType::kString:
        c.strings.push_back(InternOrAdd(v.AsString()));
        return;
    }
  }
  if (!c.promoted) Promote(col);
  c.mixed.push_back(v);
}

void Batch::FinishRow(double event_time, double birth, uint32_t attr_id) {
#ifndef NDEBUG
  for (const Column& c : columns_) assert(c.size() == event_time_.size() + 1);
#endif
  event_time_.push_back(event_time);
  birth_.push_back(birth);
  attr_id_.push_back(attr_id);
}

void Batch::AppendRange(const Batch& src, size_t begin, size_t end) {
  assert(layout_ == src.layout_);
  assert(begin <= end && end <= src.NumRows());
  for (size_t col = 0; col < columns_.size(); ++col) {
    const Column& s = src.columns_[col];
    Column& d = columns_[col];
    if (s.promoted) {
      for (size_t r = begin; r < end; ++r) AppendValue(col, s.mixed[r]);
      continue;
    }
    if (d.promoted) {
      for (size_t r = begin; r < end; ++r) AppendValue(col, src.ValueAt(r, col));
      continue;
    }
    switch (d.type) {
      case DataType::kInt:
        d.ints.insert(d.ints.end(), s.ints.begin() + begin,
                      s.ints.begin() + end);
        break;
      case DataType::kDouble:
        d.doubles.insert(d.doubles.end(), s.doubles.begin() + begin,
                         s.doubles.begin() + end);
        break;
      case DataType::kString:
        // Re-copy payloads: views must point into this batch's arena.
        for (size_t r = begin; r < end; ++r) {
          d.strings.push_back(InternOrAdd(s.strings[r]));
        }
        break;
    }
  }
  event_time_.insert(event_time_.end(), src.event_time_.begin() + begin,
                     src.event_time_.begin() + end);
  birth_.insert(birth_.end(), src.birth_.begin() + begin,
                src.birth_.begin() + end);
  attr_id_.insert(attr_id_.end(), src.attr_id_.begin() + begin,
                  src.attr_id_.begin() + end);
}

void Batch::AppendGather(const Batch& src, const SelectionVector& sel) {
  assert(layout_ == src.layout_);
  for (size_t col = 0; col < columns_.size(); ++col) {
    const Column& s = src.columns_[col];
    Column& d = columns_[col];
    if (s.promoted || d.promoted) {
      for (uint32_t r : sel) AppendValue(col, src.ValueAt(r, col));
      continue;
    }
    switch (d.type) {
      case DataType::kInt:
        for (uint32_t r : sel) d.ints.push_back(s.ints[r]);
        break;
      case DataType::kDouble:
        for (uint32_t r : sel) d.doubles.push_back(s.doubles[r]);
        break;
      case DataType::kString:
        for (uint32_t r : sel) d.strings.push_back(InternOrAdd(s.strings[r]));
        break;
    }
  }
  for (uint32_t r : sel) {
    event_time_.push_back(src.event_time_[r]);
    birth_.push_back(src.birth_[r]);
    attr_id_.push_back(src.attr_id_[r]);
  }
}

const int64_t* Batch::IntData(size_t col) const {
  const Column& c = columns_[col];
  if (c.promoted || c.type != DataType::kInt) return nullptr;
  return c.ints.data();
}

const double* Batch::DoubleData(size_t col) const {
  const Column& c = columns_[col];
  if (c.promoted || c.type != DataType::kDouble) return nullptr;
  return c.doubles.data();
}

const std::string_view* Batch::StringData(size_t col) const {
  const Column& c = columns_[col];
  if (c.promoted || c.type != DataType::kString) return nullptr;
  return c.strings.data();
}

Value Batch::ValueAt(size_t row, size_t col) const {
  const Column& c = columns_[col];
  if (c.promoted) return c.mixed[row];
  switch (c.type) {
    case DataType::kInt:
      return Value(c.ints[row]);
    case DataType::kDouble:
      return Value(c.doubles[row]);
    case DataType::kString:
      return Value(std::string(c.strings[row]));
  }
  return Value();
}

double Batch::NumericAt(size_t row, size_t col) const {
  const Column& c = columns_[col];
  if (c.promoted) return c.mixed[row].AsNumeric();
  switch (c.type) {
    case DataType::kInt:
      return static_cast<double>(c.ints[row]);
    case DataType::kDouble:
      return c.doubles[row];
    case DataType::kString:
      return static_cast<double>(c.strings[row].size());
  }
  return 0.0;
}

Tuple Batch::RowTuple(size_t row) const {
  Tuple tuple;
  tuple.values.reserve(columns_.size());
  for (size_t col = 0; col < columns_.size(); ++col) {
    tuple.values.push_back(ValueAt(row, col));
  }
  tuple.event_time = event_time_[row];
  return tuple;
}

size_t Batch::WireSize(size_t begin, size_t end) const {
  assert(begin <= end && end <= NumRows());
  size_t bytes = 8 * (end - begin);  // timestamps
  for (const Column& c : columns_) {
    if (c.promoted) {
      for (size_t r = begin; r < end; ++r) bytes += c.mixed[r].WireSize();
      continue;
    }
    switch (c.type) {
      case DataType::kInt:
      case DataType::kDouble:
        bytes += 8 * (end - begin);
        break;
      case DataType::kString:
        for (size_t r = begin; r < end; ++r) {
          bytes += c.strings[r].size() + 4;  // length prefix
        }
        break;
    }
  }
  return bytes;
}

void Batch::Promote(size_t col) {
  Column& c = columns_[col];
  assert(!c.promoted);
  const size_t rows = c.size();
  c.mixed.reserve(rows);
  switch (c.type) {
    case DataType::kInt:
      for (int64_t v : c.ints) c.mixed.push_back(Value(v));
      c.ints.clear();
      break;
    case DataType::kDouble:
      for (double v : c.doubles) c.mixed.push_back(Value(v));
      c.doubles.clear();
      break;
    case DataType::kString:
      for (std::string_view v : c.strings) {
        c.mixed.push_back(Value(std::string(v)));
      }
      c.strings.clear();
      break;
  }
  c.promoted = true;
  ++promotions_;
}

std::string_view Batch::InternOrAdd(std::string_view v) {
  if (v.size() > kInternMaxBytes) return arena_.Add(v);
  if (!intern_) {
    intern_ = std::make_unique<
        std::unordered_map<std::string_view, std::string_view>>();
  }
  auto it = intern_->find(v);
  if (it != intern_->end()) return it->second;
  std::string_view stored = arena_.Add(v);
  intern_->emplace(stored, stored);
  return stored;
}

}  // namespace data
}  // namespace pdsp
