#include "src/query/selectivity.h"

#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"

namespace pdsp {

namespace {

constexpr double kMinTarget = 0.02;
constexpr double kMaxTarget = 0.98;

// P(X <= c) under the numeric distribution described by `spec`.
double NumericCdf(const FieldGeneratorSpec& spec, double c) {
  switch (spec.dist) {
    case FieldDistribution::kUniformInt: {
      // Discrete uniform over {min..max}.
      const double lo = spec.min;
      const double hi = spec.max;
      const double n = hi - lo + 1.0;
      const double below = std::floor(c) - lo + 1.0;
      return std::clamp(below / n, 0.0, 1.0);
    }
    case FieldDistribution::kUniformDouble:
      return std::clamp((c - spec.min) / (spec.max - spec.min), 0.0, 1.0);
    case FieldDistribution::kNormalDouble: {
      const double mean = (spec.min + spec.max) / 2.0;
      const double sd = (spec.max - spec.min) / 6.0;
      if (sd <= 0.0) return c >= mean ? 1.0 : 0.0;
      return 0.5 * (1.0 + std::erf((c - mean) / (sd * std::sqrt(2.0))));
    }
    case FieldDistribution::kZipfKey:
      return ZipfCdf(static_cast<int64_t>(std::floor(c)), spec.cardinality,
                     spec.zipf_s);
    case FieldDistribution::kUniformKey: {
      const double below = std::floor(c);
      return std::clamp(below / static_cast<double>(spec.cardinality), 0.0,
                        1.0);
    }
    default:
      return 0.5;
  }
}

// P(X == c) under `spec` (only meaningful for discrete distributions).
double PointMass(const FieldGeneratorSpec& spec, double c) {
  if (c != std::floor(c)) return 0.0;
  switch (spec.dist) {
    case FieldDistribution::kUniformInt: {
      if (c < spec.min || c > spec.max) return 0.0;
      return 1.0 / (spec.max - spec.min + 1.0);
    }
    case FieldDistribution::kZipfKey: {
      const auto k = static_cast<int64_t>(c);
      if (k < 1 || k > spec.cardinality) return 0.0;
      return std::pow(static_cast<double>(k), -spec.zipf_s) /
             GeneralizedHarmonic(spec.cardinality, spec.zipf_s);
    }
    case FieldDistribution::kUniformKey: {
      const auto k = static_cast<int64_t>(c);
      if (k < 1 || k > spec.cardinality) return 0.0;
      return 1.0 / static_cast<double>(spec.cardinality);
    }
    default:
      return 0.0;  // continuous
  }
}

bool IsDiscrete(const FieldGeneratorSpec& spec) {
  switch (spec.dist) {
    case FieldDistribution::kUniformInt:
    case FieldDistribution::kZipfKey:
    case FieldDistribution::kUniformKey:
    case FieldDistribution::kSequence:
      return true;
    default:
      return false;
  }
}

}  // namespace

double GeneralizedHarmonic(int64_t n, double s) {
  if (n <= 0) return 0.0;
  const int64_t exact_terms = std::min<int64_t>(n, 100000);
  double sum = 0.0;
  for (int64_t k = 1; k <= exact_terms; ++k) {
    sum += std::pow(static_cast<double>(k), -s);
  }
  if (n > exact_terms) {
    // Integral tail: ∫_{m+0.5}^{n+0.5} x^-s dx.
    const double a = static_cast<double>(exact_terms) + 0.5;
    const double b = static_cast<double>(n) + 0.5;
    if (s == 1.0) {
      sum += std::log(b / a);
    } else {
      sum += (std::pow(b, 1.0 - s) - std::pow(a, 1.0 - s)) / (1.0 - s);
    }
  }
  return sum;
}

double ZipfCdf(int64_t k, int64_t n, double s) {
  if (k < 1) return 0.0;
  if (k >= n) return 1.0;
  return GeneralizedHarmonic(k, s) / GeneralizedHarmonic(n, s);
}

namespace {

// Point mass of rank k under a key-like spec, or -1 if not discrete-keyed.
double KeyMass(const FieldGeneratorSpec& spec, int64_t k, double harmonic) {
  switch (spec.dist) {
    case FieldDistribution::kZipfKey:
    case FieldDistribution::kWordString:
      if (k > spec.cardinality) return 0.0;
      return std::pow(static_cast<double>(k), -spec.zipf_s) / harmonic;
    case FieldDistribution::kUniformKey:
      return k <= spec.cardinality
                 ? 1.0 / static_cast<double>(spec.cardinality)
                 : 0.0;
    case FieldDistribution::kUniformInt: {
      const double n = spec.max - spec.min + 1.0;
      return k <= static_cast<int64_t>(n) ? 1.0 / n : 0.0;
    }
    default:
      return -1.0;
  }
}

int64_t KeyCardinality(const FieldGeneratorSpec& spec) {
  switch (spec.dist) {
    case FieldDistribution::kZipfKey:
    case FieldDistribution::kWordString:
    case FieldDistribution::kUniformKey:
      return spec.cardinality;
    case FieldDistribution::kUniformInt:
      return static_cast<int64_t>(spec.max - spec.min + 1.0);
    default:
      return -1;
  }
}

}  // namespace

double KeyMatchProbability(const FieldGeneratorSpec& left,
                           const FieldGeneratorSpec& right) {
  const int64_t n_l = KeyCardinality(left);
  const int64_t n_r = KeyCardinality(right);
  if (n_l < 1 || n_r < 1) {
    const auto fallback = static_cast<double>(std::max<int64_t>(
        1, std::max(n_l, n_r)));
    return 1.0 / std::max(1.0, fallback);
  }
  const double h_l =
      (left.dist == FieldDistribution::kZipfKey ||
       left.dist == FieldDistribution::kWordString)
          ? GeneralizedHarmonic(n_l, left.zipf_s)
          : 1.0;
  const double h_r =
      (right.dist == FieldDistribution::kZipfKey ||
       right.dist == FieldDistribution::kWordString)
          ? GeneralizedHarmonic(n_r, right.zipf_s)
          : 1.0;
  const int64_t n = std::min(n_l, n_r);
  const int64_t exact = std::min<int64_t>(n, 100000);
  double prob = 0.0;
  for (int64_t k = 1; k <= exact; ++k) {
    prob += KeyMass(left, k, h_l) * KeyMass(right, k, h_r);
  }
  // Tail beyond 100k ranks contributes at most (n - exact) * mass(exact)^2,
  // which is negligible for skewed keys and tiny for uniform; approximate it
  // for the uniform-uniform case where it is exact.
  if (n > exact) {
    prob += static_cast<double>(n - exact) * KeyMass(left, exact, h_l) *
            KeyMass(right, exact, h_r);
  }
  return std::clamp(prob, 0.0, 1.0);
}

Result<double> EstimateFilterSelectivity(const FieldGeneratorSpec& spec,
                                         FilterOp op, const Value& literal) {
  // Strings and unbounded sequences: documented approximations.
  if (spec.dist == FieldDistribution::kWordString) {
    if (op == FilterOp::kEq) {
      // Average point mass of a dictionary word ~ uniform share; skew means
      // common words are higher, but the generator picks literals by rank,
      // handled in LiteralForSelectivity.
      return 1.0 / static_cast<double>(spec.cardinality);
    }
    if (op == FilterOp::kNe) {
      return 1.0 - 1.0 / static_cast<double>(spec.cardinality);
    }
    return 0.5;
  }
  if (spec.dist == FieldDistribution::kSequence) return 0.5;

  if (literal.is_string()) {
    return Status::InvalidArgument(
        "string literal against a numeric field");
  }
  const double c = literal.AsNumeric();
  const double cdf_le = NumericCdf(spec, c);
  const double point = PointMass(spec, c);
  double sel = 0.5;
  switch (op) {
    case FilterOp::kLe:
      sel = cdf_le;
      break;
    case FilterOp::kLt:
      sel = cdf_le - point;
      break;
    case FilterOp::kGt:
      sel = 1.0 - cdf_le;
      break;
    case FilterOp::kGe:
      sel = 1.0 - cdf_le + point;
      break;
    case FilterOp::kEq:
      sel = IsDiscrete(spec) ? point : 0.0;
      break;
    case FilterOp::kNe:
      sel = IsDiscrete(spec) ? 1.0 - point : 1.0;
      break;
  }
  return std::clamp(sel, 0.0, 1.0);
}

Result<Value> LiteralForSelectivity(const FieldGeneratorSpec& spec,
                                    FilterOp op, double target, Rng* rng) {
  target = std::clamp(target, kMinTarget, kMaxTarget);

  // Dictionary strings: pick the word whose Zipf rank CDF brackets the
  // target for equality; ordered comparisons aren't meaningfully invertible.
  if (spec.dist == FieldDistribution::kWordString) {
    if (op == FilterOp::kEq || op == FilterOp::kNe) {
      // Low ranks carry the most mass; rank 1 has the largest equality
      // selectivity we can achieve.
      const int64_t rank = std::max<int64_t>(
          1, static_cast<int64_t>(std::round(1.0 / std::max(target, 1e-6))));
      return Value(DictionaryWord(std::min(rank, spec.cardinality) - 1));
    }
    return Status::InvalidArgument(
        "ordered comparison on dictionary strings is not invertible");
  }
  if (spec.dist == FieldDistribution::kSequence) {
    return Status::InvalidArgument(
        "sequence fields have no stationary selectivity");
  }

  // Map the requested op to a target CDF position.
  double cdf_target = target;
  switch (op) {
    case FilterOp::kLt:
    case FilterOp::kLe:
      cdf_target = target;
      break;
    case FilterOp::kGt:
    case FilterOp::kGe:
      cdf_target = 1.0 - target;
      break;
    case FilterOp::kEq:
    case FilterOp::kNe: {
      if (!IsDiscrete(spec)) {
        return Status::InvalidArgument(
            "equality on a continuous field has zero selectivity");
      }
      const double eq_target = (op == FilterOp::kEq) ? target : 1.0 - target;
      // Find the discrete value whose point mass is closest to eq_target.
      if (spec.dist == FieldDistribution::kZipfKey) {
        int64_t best_k = 1;
        double best_err = 1e9;
        const double h = GeneralizedHarmonic(spec.cardinality, spec.zipf_s);
        for (int64_t k = 1;
             k <= std::min<int64_t>(spec.cardinality, 4096); ++k) {
          const double mass = std::pow(static_cast<double>(k), -spec.zipf_s) / h;
          const double err = std::abs(mass - eq_target);
          if (err < best_err) {
            best_err = err;
            best_k = k;
          }
          if (mass < eq_target / 8.0) break;  // masses only shrink
        }
        return Value(best_k);
      }
      // Uniform discrete: every value has the same mass; pick any.
      const auto lo = (spec.dist == FieldDistribution::kUniformKey)
                          ? int64_t{1}
                          : static_cast<int64_t>(spec.min);
      const auto hi = (spec.dist == FieldDistribution::kUniformKey)
                          ? spec.cardinality
                          : static_cast<int64_t>(spec.max);
      return Value(rng->UniformInt(lo, hi));
    }
  }

  // Invert the CDF by bisection over the support.
  double lo, hi;
  switch (spec.dist) {
    case FieldDistribution::kZipfKey:
    case FieldDistribution::kUniformKey:
      lo = 0.0;
      hi = static_cast<double>(spec.cardinality) + 1.0;
      break;
    default:
      lo = spec.min - 1.0;
      hi = spec.max + 1.0;
      break;
  }
  for (int iter = 0; iter < 96; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (NumericCdf(spec, mid) < cdf_target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double c = (lo + hi) / 2.0;
  if (IsDiscrete(spec) || spec.OutputType() == DataType::kInt) {
    return Value(static_cast<int64_t>(std::llround(c)));
  }
  return Value(c);
}

Result<FieldGeneratorSpec> ResolveFieldSpec(const LogicalPlan& plan,
                                            LogicalPlan::OpId op_id,
                                            size_t field) {
  LogicalPlan::OpId cur = op_id;
  for (int hops = 0; hops < 1000; ++hops) {
    const OperatorDescriptor& op = plan.op(cur);
    if (op.type == OperatorType::kSource) {
      const auto& specs = plan.sources()[op.source_index].stream.specs;
      if (field >= specs.size()) {
        return Status::OutOfRange("field beyond source arity");
      }
      return specs[field];
    }
    switch (op.type) {
      case OperatorType::kFilter:
      case OperatorType::kMap:
      case OperatorType::kFlatMap:
      case OperatorType::kUdo:
      case OperatorType::kSink: {
        const auto in = plan.Inputs(cur);
        if (in.empty()) return Status::Internal("unary op without input");
        cur = in[0];
        break;
      }
      default:
        return Status::FailedPrecondition(
            StrFormat("field provenance stops at %s (%s)", op.name.c_str(),
                      OperatorTypeToString(op.type)));
    }
  }
  return Status::Internal("provenance walk did not terminate");
}

Status AnnotateFilterSelectivities(LogicalPlan* plan) {
  if (!plan->validated()) {
    return Status::FailedPrecondition("plan must be validated first");
  }
  for (size_t i = 0; i < plan->NumOperators(); ++i) {
    const auto id = static_cast<LogicalPlan::OpId>(i);
    if (plan->op(id).type != OperatorType::kFilter) continue;
    if (plan->op(id).selectivity_hint >= 0.0) continue;
    double sel = 0.5;
    auto spec = ResolveFieldSpec(*plan, plan->Inputs(id)[0],
                                 plan->op(id).filter_field);
    if (spec.ok()) {
      auto est = EstimateFilterSelectivity(*spec, plan->op(id).filter_op,
                                           plan->op(id).filter_literal);
      if (est.ok()) sel = *est;
    }
    plan->mutable_op(id)->selectivity_hint = sel;
  }
  // mutable_op clears the validated bit; re-validate (no structural change).
  return plan->Validate();
}

}  // namespace pdsp
