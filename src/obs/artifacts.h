// Per-run observability artifact bundle: metrics.json (registry snapshot +
// run summary), timeseries.csv (per-operator samples) and trace.json
// (Chrome trace_event, open in Perfetto or chrome://tracing), written under
// one directory — the layout the harness uses for results/<driver>/<cell>/.

#ifndef PDSP_OBS_ARTIFACTS_H_
#define PDSP_OBS_ARTIFACTS_H_

#include <string>

#include "src/common/status.h"
#include "src/obs/diagnose.h"
#include "src/obs/trace.h"
#include "src/sim/simulation.h"

namespace pdsp {
namespace obs {

/// Serializes the run's headline numbers + registry into the metrics.json
/// document: {"summary": {...}, "operators": [...], "metrics":
/// {counters/gauges/histograms — histograms carry p50/p95/p99}}.
Json RunMetricsJson(const SimResult& result);

/// Writes metrics.json and, when non-empty, timeseries.csv under `dir`
/// (created if needed); with a non-null `tracer` also trace.json, and with a
/// non-null `diagnosis` also diagnosis.json. Every file is written to
/// `<name>.tmp` first and renamed into place, so readers never observe a
/// half-written artifact. Partial failures abort with the first error;
/// already-renamed files remain.
Status WriteRunArtifacts(const std::string& dir, const SimResult& result,
                         const Tracer* tracer,
                         const Diagnosis* diagnosis = nullptr);

}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_ARTIFACTS_H_
