// Cardinality / rate propagation over a logical plan: estimated input and
// output tuple rates, tuple sizes and distinct-key counts per operator.
// Consumers: the rule-based parallelism enumerator (Section 3.1, "considers
// factors such as event rates, operator selectivity, and the number of
// cores"), the fast cardinality-only simulation mode, and the ML feature
// encoders.

#ifndef PDSP_QUERY_CARDINALITY_H_
#define PDSP_QUERY_CARDINALITY_H_

#include <vector>

#include "src/common/status.h"
#include "src/query/plan.h"

namespace pdsp {

/// \brief Per-operator rate estimates (tuples/second, steady state).
struct OpCardinality {
  double input_rate = 0.0;    ///< total tuples/s entering the operator
  double output_rate = 0.0;   ///< total tuples/s leaving the operator
  double tuple_bytes = 0.0;   ///< mean wire size of an *output* tuple
  double distinct_keys = 1.0; ///< keys seen by keyed operators (1 otherwise)
  double selectivity = 1.0;   ///< output_rate / input_rate (0 if no input)
};

/// \brief Propagates rates topologically from the sources.
class CardinalityModel {
 public:
  /// Default distinct-key count when provenance can't resolve a key field.
  static constexpr double kDefaultDistinctKeys = 100.0;

  /// Computes estimates for every operator of a validated plan.
  static Result<std::vector<OpCardinality>> Compute(const LogicalPlan& plan);
};

}  // namespace pdsp

#endif  // PDSP_QUERY_CARDINALITY_H_
