#include "src/ml/decision_tree.h"

#include <algorithm>
#include <numeric>

namespace pdsp {

namespace {

struct SplitResult {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

double MeanOf(const std::vector<double>& ys, const std::vector<int>& idx) {
  double sum = 0.0;
  for (int i : idx) sum += ys[i];
  return idx.empty() ? 0.0 : sum / static_cast<double>(idx.size());
}

double SseOf(const std::vector<double>& ys, const std::vector<int>& idx,
             double mean) {
  double sse = 0.0;
  for (int i : idx) {
    const double d = ys[i] - mean;
    sse += d * d;
  }
  return sse;
}

class Builder {
 public:
  Builder(const std::vector<Vector>& xs, const std::vector<double>& ys,
          const TreeOptions& options, Rng* rng)
      : xs_(xs), ys_(ys), options_(options), rng_(rng) {}

  RegressionTree Build(std::vector<int> idx) {
    RegressionTree tree;
    BuildNode(std::move(idx), 0, &tree);
    return tree;
  }

 private:
  SplitResult BestSplit(const std::vector<int>& idx) {
    SplitResult best;
    const size_t dims = xs_[0].size();
    const auto features_to_try = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(dims) *
                               options_.feature_fraction));
    std::vector<size_t> features(dims);
    std::iota(features.begin(), features.end(), 0);
    for (size_t i = 0; i < features_to_try; ++i) {
      const size_t j = static_cast<size_t>(rng_->UniformInt(
          static_cast<int64_t>(i), static_cast<int64_t>(dims) - 1));
      std::swap(features[i], features[j]);
    }

    const double parent_mean = MeanOf(ys_, idx);
    const double parent_sse = SseOf(ys_, idx, parent_mean);

    std::vector<std::pair<double, int>> sorted;
    for (size_t fi = 0; fi < features_to_try; ++fi) {
      const int f = static_cast<int>(features[fi]);
      sorted.clear();
      for (int i : idx) sorted.emplace_back(xs_[i][f], i);
      std::sort(sorted.begin(), sorted.end());

      double left_sum = 0.0, left_sq = 0.0;
      double total_sum = 0.0, total_sq = 0.0;
      for (const auto& [xv, i] : sorted) {
        total_sum += ys_[i];
        total_sq += ys_[i] * ys_[i];
      }
      const auto n = static_cast<double>(sorted.size());
      for (size_t k = 0; k + 1 < sorted.size(); ++k) {
        const double y = ys_[sorted[k].second];
        left_sum += y;
        left_sq += y * y;
        if (sorted[k].first == sorted[k + 1].first) continue;  // tie
        const double nl = static_cast<double>(k + 1);
        const double nr = n - nl;
        if (nl < options_.min_leaf || nr < options_.min_leaf) continue;
        const double sse_l = left_sq - left_sum * left_sum / nl;
        const double right_sum = total_sum - left_sum;
        const double sse_r =
            (total_sq - left_sq) - right_sum * right_sum / nr;
        const double gain = parent_sse - sse_l - sse_r;
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = f;
          best.threshold = (sorted[k].first + sorted[k + 1].first) / 2.0;
        }
      }
    }
    return best;
  }

  int BuildNode(std::vector<int> idx, int depth, RegressionTree* tree) {
    const int node_id = static_cast<int>(tree->nodes.size());
    tree->nodes.emplace_back();
    tree->nodes[node_id].value = MeanOf(ys_, idx);
    if (depth >= options_.max_depth ||
        static_cast<int>(idx.size()) < 2 * options_.min_leaf) {
      return node_id;
    }
    const SplitResult split = BestSplit(idx);
    if (split.feature < 0 || split.gain <= 1e-12) return node_id;

    std::vector<int> left, right;
    for (int i : idx) {
      (xs_[i][split.feature] <= split.threshold ? left : right).push_back(i);
    }
    if (left.empty() || right.empty()) return node_id;
    idx.clear();
    idx.shrink_to_fit();
    const int l = BuildNode(std::move(left), depth + 1, tree);
    const int r = BuildNode(std::move(right), depth + 1, tree);
    tree->nodes[node_id].feature = split.feature;
    tree->nodes[node_id].threshold = split.threshold;
    tree->nodes[node_id].left = l;
    tree->nodes[node_id].right = r;
    return node_id;
  }

  const std::vector<Vector>& xs_;
  const std::vector<double>& ys_;
  const TreeOptions& options_;
  Rng* rng_;
};

}  // namespace

RegressionTree FitRegressionTree(const std::vector<Vector>& xs,
                                 const std::vector<double>& ys,
                                 std::vector<int> idx,
                                 const TreeOptions& options, Rng* rng) {
  Builder builder(xs, ys, options, rng);
  return builder.Build(std::move(idx));
}

}  // namespace pdsp
