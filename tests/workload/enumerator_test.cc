#include "src/workload/enumerator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/workload/query_generator.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

LogicalPlan MakePlan(double rate = 10000.0) {
  auto plan = testing::LinearPlan(rate, 1);
  EXPECT_TRUE(plan.ok());
  return std::move(*plan);
}

TEST(EnumeratorTest, RequiresValidatedPlan) {
  LogicalPlan raw;
  Rng rng(1);
  EXPECT_TRUE(EnumerateParallelism(raw, EnumerationStrategy::kRandom,
                                   EnumerationOptions{}, &rng)
                  .status()
                  .IsFailedPrecondition());
}

TEST(EnumeratorTest, BadBoundsRejected) {
  LogicalPlan plan = MakePlan();
  Rng rng(1);
  EnumerationOptions opt;
  opt.min_degree = 4;
  opt.max_degree = 2;
  EXPECT_FALSE(EnumerateParallelism(plan, EnumerationStrategy::kRandom, opt,
                                    &rng)
                   .ok());
}

TEST(EnumeratorTest, RandomWithinBoundsAndSinkOne) {
  LogicalPlan plan = MakePlan();
  Rng rng(2);
  EnumerationOptions opt;
  opt.min_degree = 2;
  opt.max_degree = 9;
  opt.num_assignments = 20;
  auto res = EnumerateParallelism(plan, EnumerationStrategy::kRandom, opt,
                                  &rng);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 20u);
  for (const auto& degrees : *res) {
    ASSERT_EQ(degrees.size(), plan.NumOperators());
    for (size_t op = 0; op < degrees.size(); ++op) {
      if (plan.op(static_cast<LogicalPlan::OpId>(op)).type ==
          OperatorType::kSink) {
        EXPECT_EQ(degrees[op], 1);
      } else {
        EXPECT_GE(degrees[op], 2);
        EXPECT_LE(degrees[op], 9);
      }
    }
  }
}

TEST(EnumeratorTest, RuleBasedScalesWithRate) {
  Rng rng(3);
  EnumerationOptions opt;
  opt.max_degree = 64;
  opt.num_assignments = 1;

  LogicalPlan slow = MakePlan(1000.0);
  LogicalPlan fast = MakePlan(200000.0);
  auto r_slow = EnumerateParallelism(slow, EnumerationStrategy::kRuleBased,
                                     opt, &rng);
  auto r_fast = EnumerateParallelism(fast, EnumerationStrategy::kRuleBased,
                                     opt, &rng);
  ASSERT_TRUE(r_slow.ok() && r_fast.ok());
  // Source degree must grow with the event rate.
  const auto src = slow.FindOperator("src");
  ASSERT_TRUE(src.ok());
  EXPECT_GT((*r_fast)[0][*src], (*r_slow)[0][*src]);
  // 200k ev/s at 5us/tuple needs ~1.4 core-seconds/s: expect >= 2 instances.
  EXPECT_GE((*r_fast)[0][*src], 2);
}

TEST(EnumeratorTest, RuleBasedSelectivityReducesDownstreamDegrees) {
  // The filter passes 50%; the aggregate sees half the rate, so its degree
  // should not exceed the source's.
  LogicalPlan plan = MakePlan(200000.0);
  Rng rng(4);
  EnumerationOptions opt;
  opt.max_degree = 64;
  opt.num_assignments = 1;
  auto res =
      EnumerateParallelism(plan, EnumerationStrategy::kRuleBased, opt, &rng);
  ASSERT_TRUE(res.ok());
  auto src = plan.FindOperator("src");
  auto agg = plan.FindOperator("agg");
  ASSERT_TRUE(src.ok() && agg.ok());
  EXPECT_LE((*res)[0][*agg], (*res)[0][*src] * 2);
}

TEST(EnumeratorTest, RuleBasedVariantsJitterAroundBase) {
  LogicalPlan plan = MakePlan(100000.0);
  Rng rng(5);
  EnumerationOptions opt;
  opt.max_degree = 64;
  opt.num_assignments = 10;
  opt.rule_jitter = 1;
  auto res =
      EnumerateParallelism(plan, EnumerationStrategy::kRuleBased, opt, &rng);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 10u);
  const auto& base = (*res)[0];
  for (size_t a = 1; a < res->size(); ++a) {
    for (size_t op = 0; op < base.size(); ++op) {
      EXPECT_LE(std::abs((*res)[a][op] - base[op]), 1);
    }
  }
}

TEST(EnumeratorTest, ExhaustiveCoversLadderAndRespectsLimit) {
  LogicalPlan plan = MakePlan();
  Rng rng(6);
  EnumerationOptions opt;
  opt.max_degree = 4;  // ladder {1,2,4}; 3 non-sink ops -> 27 combos
  auto res = EnumerateParallelism(plan, EnumerationStrategy::kExhaustive,
                                  opt, &rng);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 27u);
  std::set<ParallelismAssignment> unique(res->begin(), res->end());
  EXPECT_EQ(unique.size(), 27u);

  opt.exhaustive_limit = 10;
  auto capped = EnumerateParallelism(plan, EnumerationStrategy::kExhaustive,
                                     opt, &rng);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->size(), 10u);
}

TEST(EnumeratorTest, MinAvgMaxProducesThree) {
  LogicalPlan plan = MakePlan();
  Rng rng(7);
  EnumerationOptions opt;
  opt.min_degree = 1;
  opt.max_degree = 16;
  auto res = EnumerateParallelism(plan, EnumerationStrategy::kMinAvgMax, opt,
                                  &rng);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 3u);
  auto src = plan.FindOperator("src");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ((*res)[0][*src], 1);
  EXPECT_EQ((*res)[1][*src], 8);
  EXPECT_EQ((*res)[2][*src], 16);
}

TEST(EnumeratorTest, IncreasingWalksTheLadder) {
  LogicalPlan plan = MakePlan();
  Rng rng(8);
  EnumerationOptions opt;
  opt.max_degree = 8;
  auto res = EnumerateParallelism(plan, EnumerationStrategy::kIncreasing,
                                  opt, &rng);
  ASSERT_TRUE(res.ok());
  auto src = plan.FindOperator("src");
  ASSERT_TRUE(src.ok());
  ASSERT_EQ(res->size(), 4u);  // 1, 2, 4, 8
  int prev = 0;
  for (const auto& degrees : *res) {
    EXPECT_GT(degrees[*src], prev);
    prev = degrees[*src];
  }
}

TEST(EnumeratorTest, ParameterBasedBroadcastAndPerOp) {
  LogicalPlan plan = MakePlan();
  Rng rng(9);
  EnumerationOptions opt;
  opt.parameter_degrees = {6};
  auto res = EnumerateParallelism(plan, EnumerationStrategy::kParameterBased,
                                  opt, &rng);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  auto src = plan.FindOperator("src");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ((*res)[0][*src], 6);

  opt.parameter_degrees = std::vector<int>(plan.NumOperators(), 3);
  auto per_op = EnumerateParallelism(
      plan, EnumerationStrategy::kParameterBased, opt, &rng);
  ASSERT_TRUE(per_op.ok());
  EXPECT_EQ((*per_op)[0], opt.parameter_degrees);

  opt.parameter_degrees = {1, 2};  // wrong arity
  EXPECT_FALSE(EnumerateParallelism(plan,
                                    EnumerationStrategy::kParameterBased,
                                    opt, &rng)
                   .ok());
  opt.parameter_degrees = {};
  EXPECT_FALSE(EnumerateParallelism(plan,
                                    EnumerationStrategy::kParameterBased,
                                    opt, &rng)
                   .ok());
}

TEST(EnumeratorTest, ApplyParallelismRewritesAndValidates) {
  LogicalPlan plan = MakePlan();
  ParallelismAssignment degrees(plan.NumOperators(), 5);
  degrees[plan.SinkId()] = 1;
  ASSERT_TRUE(ApplyParallelism(&plan, degrees).ok());
  EXPECT_TRUE(plan.validated());
  auto src = plan.FindOperator("src");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(plan.op(*src).parallelism, 5);

  EXPECT_FALSE(ApplyParallelism(&plan, {1}).ok());  // size mismatch
  ParallelismAssignment bad(plan.NumOperators(), 0);
  EXPECT_FALSE(ApplyParallelism(&plan, bad).ok());
}

TEST(EnumeratorTest, ApplyUniformSetsAllButSink) {
  LogicalPlan plan = MakePlan();
  ASSERT_TRUE(ApplyUniformParallelism(&plan, 7).ok());
  for (size_t op = 0; op < plan.NumOperators(); ++op) {
    const auto& desc = plan.op(static_cast<LogicalPlan::OpId>(op));
    EXPECT_EQ(desc.parallelism, desc.type == OperatorType::kSink ? 1 : 7);
  }
  EXPECT_FALSE(ApplyUniformParallelism(&plan, 0).ok());
}

TEST(EnumeratorTest, StrategyNames) {
  EXPECT_STREQ(EnumerationStrategyToString(EnumerationStrategy::kRuleBased),
               "rule_based");
  EXPECT_STREQ(EnumerationStrategyToString(EnumerationStrategy::kMinAvgMax),
               "min_avg_max");
}

}  // namespace
}  // namespace pdsp
