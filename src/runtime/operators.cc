#include "src/runtime/operators.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <queue>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/obs/prof.h"
#include "src/runtime/kernels.h"
#include "src/runtime/udo.h"

namespace pdsp {

bool EvaluateFilter(const Value& value, FilterOp op, const Value& literal) {
  switch (op) {
    case FilterOp::kLt:
      return value < literal;
    case FilterOp::kLe:
      return value <= literal;
    case FilterOp::kGt:
      return value > literal;
    case FilterOp::kGe:
      return value >= literal;
    case FilterOp::kEq:
      return value == literal;
    case FilterOp::kNe:
      return value != literal;
  }
  return false;
}

Status OperatorInstance::ProcessBatch(const data::Batch& in, size_t row_begin,
                                      size_t row_end, int input_port,
                                      double now, data::Batch* out) {
  // Row-view adapter: the type-erasure boundary for operators without a
  // columnar kernel (UDOs, joins). Each row is materialized once, processed
  // by the scalar path, and its outputs re-appended columnar.
  std::vector<StreamElement> scratch;
  for (size_t row = row_begin; row < row_end; ++row) {
    scratch.clear();
    StreamElement e;
    e.tuple = in.RowTuple(row);
    e.birth = in.birth(row);
    e.attr_id = in.attr_id(row);
    PDSP_RETURN_NOT_OK(Process(e, input_port, now, &scratch));
    for (const StreamElement& o : scratch) {
      if (o.tuple.values.size() != out->NumColumns()) {
        return Status::Internal(StrFormat(
            "operator emitted arity %zu but its output schema has %zu "
            "fields",
            o.tuple.values.size(), out->NumColumns()));
      }
      out->AppendTuple(o.tuple, o.birth, o.attr_id);
    }
  }
  return Status::OK();
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Kernel-level CPU-profiler marker, interned once per instance and only
// when a profiling session is active (id 0 makes every ProfScope a no-op).
uint32_t KernelMarker(const char* name) {
  return obs::prof::ProfilingActive() ? obs::prof::InternName(name) : 0u;
}

class FilterExec : public OperatorInstance {
 public:
  explicit FilterExec(const OperatorDescriptor& op) : op_(op) {}

  Status Process(const StreamElement& e, int, double,
                 std::vector<StreamElement>* out) override {
    if (op_.filter_field >= e.tuple.values.size()) {
      return Status::OutOfRange(
          StrFormat("filter field %zu beyond tuple arity %zu",
                    op_.filter_field, e.tuple.values.size()));
    }
    if (EvaluateFilter(e.tuple.values[op_.filter_field], op_.filter_op,
                       op_.filter_literal)) {
      out->push_back(e);
    }
    return Status::OK();
  }

  Status ProcessBatch(const data::Batch& in, size_t row_begin, size_t row_end,
                      int, double, data::Batch* out) override {
    obs::prof::ProfScope scope(obs::prof::FrameKind::kKernel, kernel_id_);
    sel_.clear();
    PDSP_RETURN_NOT_OK(kernels::FilterSelect(in, row_begin, row_end,
                                             op_.filter_field, op_.filter_op,
                                             op_.filter_literal, &sel_));
    out->AppendGather(in, sel_);
    return Status::OK();
  }

 private:
  OperatorDescriptor op_;
  data::SelectionVector sel_;  // scratch, reused across firings
  uint32_t kernel_id_ = KernelMarker("filter-kernel");
};

class MapExec : public OperatorInstance {
 public:
  Status Process(const StreamElement& e, int, double,
                 std::vector<StreamElement>* out) override {
    out->push_back(e);
    return Status::OK();
  }

  Status ProcessBatch(const data::Batch& in, size_t row_begin, size_t row_end,
                      int, double, data::Batch* out) override {
    out->AppendRange(in, row_begin, row_end);
    return Status::OK();
  }
};

class FlatMapExec : public OperatorInstance {
 public:
  FlatMapExec(const OperatorDescriptor& op, uint64_t seed)
      : fanout_(std::max(0.0, op.flatmap_fanout)), rng_(seed) {}

  Status Process(const StreamElement& e, int, double,
                 std::vector<StreamElement>* out) override {
    const int64_t copies = DrawCopies();
    for (int64_t i = 0; i < copies; ++i) out->push_back(e);
    return Status::OK();
  }

  Status ProcessBatch(const data::Batch& in, size_t row_begin, size_t row_end,
                      int, double, data::Batch* out) override {
    obs::prof::ProfScope scope(obs::prof::FrameKind::kKernel, kernel_id_);
    // Replication as a selection vector with repeated indices; the RNG is
    // drawn per row in row order, matching the scalar path draw for draw.
    sel_.clear();
    for (size_t row = row_begin; row < row_end; ++row) {
      const int64_t copies = DrawCopies();
      for (int64_t i = 0; i < copies; ++i) {
        sel_.push_back(static_cast<uint32_t>(row));
      }
    }
    out->AppendGather(in, sel_);
    return Status::OK();
  }

 private:
  int64_t DrawCopies() {
    const auto whole = static_cast<int64_t>(fanout_);
    return whole +
           (rng_.Bernoulli(fanout_ - static_cast<double>(whole)) ? 1 : 0);
  }

  double fanout_;
  Rng rng_;
  data::SelectionVector sel_;
  uint32_t kernel_id_ = KernelMarker("flatmap-kernel");
};

// Incremental aggregate over one pane/buffer.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  double min = kInf;
  double max = -kInf;
  double first_birth = kInf;
  // Attribution handle of the earliest contributor: the fired result's
  // latency is measured against its birth, so its handle travels with it.
  uint32_t first_attr_id = kNoAttr;

  void Add(double v, double birth, uint32_t attr_id) {
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    if (birth < first_birth) {
      first_birth = birth;
      first_attr_id = attr_id;
    }
  }

  double Finish(AggregateFn fn) const {
    switch (fn) {
      case AggregateFn::kSum:
        return sum;
      case AggregateFn::kMin:
        return min;
      case AggregateFn::kMax:
        return max;
      case AggregateFn::kAvg:
      case AggregateFn::kMean:
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    return 0.0;
  }
};

// Time-policy window aggregation with sliding panes aligned to the slide.
class TimeWindowAggExec : public OperatorInstance {
 public:
  explicit TimeWindowAggExec(const OperatorDescriptor& op)
      : op_(op),
        duration_(op.window.DurationSeconds()),
        slide_(std::max(1e-9, op.window.SlideSeconds())) {}

  Status Process(const StreamElement& e, int, double,
                 std::vector<StreamElement>* out) override {
    (void)out;
    if (op_.agg_field >= e.tuple.values.size()) {
      return Status::OutOfRange("aggregate field beyond tuple arity");
    }
    const bool keyed = op_.key_field != OperatorDescriptor::kNoKey;
    if (keyed && op_.key_field >= e.tuple.values.size()) {
      return Status::OutOfRange("key field beyond tuple arity");
    }
    const Value key = keyed ? e.tuple.values[op_.key_field] : Value(0);
    AddRow(e.tuple.event_time, key,
           e.tuple.values[op_.agg_field].AsNumeric(), e.birth, e.attr_id);
    return Status::OK();
  }

  Status ProcessBatch(const data::Batch& in, size_t row_begin, size_t row_end,
                      int, double, data::Batch* out) override {
    (void)out;  // time windows emit on timers, not on input
    obs::prof::ProfScope scope(obs::prof::FrameKind::kKernel, kernel_id_);
    if (op_.agg_field >= in.NumColumns()) {
      return Status::OutOfRange("aggregate field beyond tuple arity");
    }
    const bool keyed = op_.key_field != OperatorDescriptor::kNoKey;
    if (keyed && op_.key_field >= in.NumColumns()) {
      return Status::OutOfRange("key field beyond tuple arity");
    }
    // Columnar pre-pass: one tight loop extracts the aggregate column's
    // numeric view; only the key column is materialized per row.
    vals_.resize(row_end - row_begin);
    kernels::NumericColumn(in, row_begin, row_end, op_.agg_field,
                           vals_.data());
    for (size_t row = row_begin; row < row_end; ++row) {
      const Value key = keyed ? in.ValueAt(row, op_.key_field) : Value(0);
      AddRow(in.event_time(row), key, vals_[row - row_begin], in.birth(row),
             in.attr_id(row));
    }
    return Status::OK();
  }

  void OnTimer(double now, std::vector<StreamElement>* out) override {
    while (!panes_.empty()) {
      const int64_t pane = panes_.begin()->first;
      const double pane_end = static_cast<double>(pane) * slide_ + duration_;
      if (pane_end > now) break;
      const bool keyed = op_.key_field != OperatorDescriptor::kNoKey;
      for (const auto& [key, state] : panes_.begin()->second) {
        StreamElement result;
        result.tuple.event_time = pane_end;
        result.birth = state.first_birth;
        result.attr_id = state.first_attr_id;
        if (keyed) result.tuple.values.push_back(key);
        result.tuple.values.push_back(Value(state.Finish(op_.agg_fn)));
        out->push_back(std::move(result));
      }
      panes_.erase(panes_.begin());
      watermark_ = std::max(watermark_, pane_end);
    }
    while (!timer_heap_.empty() && timer_heap_.top() <= now) {
      timer_heap_.pop();
    }
  }

  double NextTimerTime() const override {
    return timer_heap_.empty() ? kInf : timer_heap_.top();
  }

  void Flush(double now, std::vector<StreamElement>* out) override {
    OnTimer(kInf, out);
    (void)now;
  }

  size_t StateSize() const override {
    size_t total = 0;
    for (const auto& [pane, keys] : panes_) total += keys.size();
    return total;
  }

  int64_t LateDrops() const override { return late_drops_; }

 private:
  void AddRow(double t, const Value& key, double v, double birth,
              uint32_t attr_id) {
    // Panes containing t: starts in (t - duration, t], aligned to slide.
    const auto last_pane = static_cast<int64_t>(std::floor(t / slide_));
    bool contributed = false;
    for (int64_t pane = last_pane; pane >= 0; --pane) {
      const double start = static_cast<double>(pane) * slide_;
      if (start + duration_ <= t) break;  // pane closed before t
      if (start + duration_ <= watermark_) continue;  // pane already fired
      auto [it, inserted] = panes_.try_emplace(pane);
      if (inserted) timer_heap_.push(start + duration_);
      it->second[key].Add(v, birth, attr_id);
      contributed = true;
    }
    if (!contributed) ++late_drops_;
  }

  OperatorDescriptor op_;
  double duration_;
  double slide_;
  double watermark_ = -kInf;  // end of the latest fired pane
  int64_t late_drops_ = 0;
  std::vector<double> vals_;  // scratch for the columnar numeric pre-pass
  uint32_t kernel_id_ = KernelMarker("aggregate-kernel");
  // pane index -> key -> aggregate state; ordered so firing pops from front.
  std::map<int64_t, std::map<Value, AggState>> panes_;
  std::priority_queue<double, std::vector<double>, std::greater<>> timer_heap_;
};

// Count-policy window aggregation: per key, fire every SlideTuples() once
// the buffer holds length_tuples elements.
class CountWindowAggExec : public OperatorInstance {
 public:
  explicit CountWindowAggExec(const OperatorDescriptor& op)
      : op_(op),
        length_(std::max<int64_t>(1, op.window.length_tuples)),
        slide_(std::max<int64_t>(1, op.window.SlideTuples())) {}

  Status Process(const StreamElement& e, int, double,
                 std::vector<StreamElement>* out) override {
    if (op_.agg_field >= e.tuple.values.size()) {
      return Status::OutOfRange("aggregate field beyond tuple arity");
    }
    const bool keyed = op_.key_field != OperatorDescriptor::kNoKey;
    if (keyed && op_.key_field >= e.tuple.values.size()) {
      return Status::OutOfRange("key field beyond tuple arity");
    }
    const Value key = keyed ? e.tuple.values[op_.key_field] : Value(0);
    StreamElement fired;
    if (AddRow(key, keyed, e.tuple.values[op_.agg_field].AsNumeric(),
               e.tuple.event_time, e.birth, e.attr_id, &fired)) {
      out->push_back(std::move(fired));
    }
    return Status::OK();
  }

  Status ProcessBatch(const data::Batch& in, size_t row_begin, size_t row_end,
                      int, double, data::Batch* out) override {
    obs::prof::ProfScope scope(obs::prof::FrameKind::kKernel, kernel_id_);
    if (op_.agg_field >= in.NumColumns()) {
      return Status::OutOfRange("aggregate field beyond tuple arity");
    }
    const bool keyed = op_.key_field != OperatorDescriptor::kNoKey;
    if (keyed && op_.key_field >= in.NumColumns()) {
      return Status::OutOfRange("key field beyond tuple arity");
    }
    vals_.resize(row_end - row_begin);
    kernels::NumericColumn(in, row_begin, row_end, op_.agg_field,
                           vals_.data());
    for (size_t row = row_begin; row < row_end; ++row) {
      const Value key = keyed ? in.ValueAt(row, op_.key_field) : Value(0);
      StreamElement fired;
      if (AddRow(key, keyed, vals_[row - row_begin], in.event_time(row),
                 in.birth(row), in.attr_id(row), &fired)) {
        out->AppendTuple(fired.tuple, fired.birth, fired.attr_id);
      }
    }
    return Status::OK();
  }

  size_t StateSize() const override {
    size_t total = 0;
    for (const auto& [key, buf] : buffers_) total += buf.size();
    return total;
  }

 private:
  struct Entry {
    double value;
    double birth;
    uint32_t attr_id;
  };

  /// Buffers one element; fires the key's window into *fired (returning
  /// true) once the buffer reaches the window length.
  bool AddRow(const Value& key, bool keyed, double v, double event_time,
              double birth, uint32_t attr_id, StreamElement* fired) {
    auto& buf = buffers_[key];
    buf.push_back({v, birth, attr_id});
    if (static_cast<int64_t>(buf.size()) < length_) return false;
    AggState state;
    for (const Entry& entry : buf) {
      state.Add(entry.value, entry.birth, entry.attr_id);
    }
    fired->tuple.event_time = event_time;
    fired->birth = state.first_birth;
    fired->attr_id = state.first_attr_id;
    if (keyed) fired->tuple.values.push_back(key);
    fired->tuple.values.push_back(Value(state.Finish(op_.agg_fn)));
    for (int64_t i = 0; i < slide_ && !buf.empty(); ++i) buf.pop_front();
    return true;
  }

  OperatorDescriptor op_;
  int64_t length_;
  int64_t slide_;
  std::map<Value, std::deque<Entry>> buffers_;
  std::vector<double> vals_;
  uint32_t kernel_id_ = KernelMarker("aggregate-kernel");
};

// Windowed equi-join. Time policy: per-side keyed buffers holding the last
// `duration` seconds of elements (by event time); every arrival probes the
// opposite side. Count policy: per-side per-key buffers of the last
// length_tuples elements.
class WindowJoinExec : public OperatorInstance {
 public:
  explicit WindowJoinExec(const OperatorDescriptor& op)
      : op_(op), duration_(op.window.DurationSeconds()) {}

  Status Process(const StreamElement& e, int input_port, double,
                 std::vector<StreamElement>* out) override {
    if (input_port < 0 || input_port > 1) {
      return Status::OutOfRange("join input port must be 0 or 1");
    }
    const size_t key_field =
        input_port == 0 ? op_.join_left_key : op_.join_right_key;
    if (key_field >= e.tuple.values.size()) {
      return Status::OutOfRange("join key beyond tuple arity");
    }
    const Value key = e.tuple.values[key_field];
    const double t = e.tuple.event_time;

    Side& mine = sides_[input_port];
    Side& other = sides_[1 - input_port];

    // Evict expired entries from the probed key bucket (time policy).
    auto other_it = other.buffers.find(key);
    if (other_it != other.buffers.end()) {
      auto& buf = other_it->second;
      if (op_.window.policy == WindowPolicy::kTime) {
        size_t expired = 0;
        while (expired < buf.size() &&
               buf[expired].tuple.event_time < t - duration_) {
          ++expired;
        }
        if (expired > 0) {
          buf.erase(buf.begin(), buf.begin() + static_cast<int64_t>(expired));
          other.total -= expired;
        }
      }
      for (const StreamElement& match : buf) {
        StreamElement joined;
        joined.tuple.event_time = std::max(t, match.tuple.event_time);
        joined.birth = std::min(e.birth, match.birth);
        // Attribution follows the earliest contributor (the side latency is
        // measured against); the buffered partner's residency in the join
        // window is charged by the simulator when it sees the stale cursor.
        joined.attr_id = e.birth <= match.birth ? e.attr_id : match.attr_id;
        const StreamElement& left = input_port == 0 ? e : match;
        const StreamElement& right = input_port == 0 ? match : e;
        joined.tuple.values.reserve(left.tuple.values.size() +
                                    right.tuple.values.size());
        for (const Value& v : left.tuple.values)
          joined.tuple.values.push_back(v);
        for (const Value& v : right.tuple.values)
          joined.tuple.values.push_back(v);
        out->push_back(std::move(joined));
      }
      if (buf.empty()) other.buffers.erase(other_it);
    }

    // Insert into own buffer and evict.
    auto& own = mine.buffers[key];
    own.push_back(e);
    ++mine.total;
    if (op_.window.policy == WindowPolicy::kTime) {
      size_t expired = 0;
      while (expired < own.size() &&
             own[expired].tuple.event_time < t - duration_) {
        ++expired;
      }
      if (expired > 0) {
        own.erase(own.begin(), own.begin() + static_cast<int64_t>(expired));
        mine.total -= expired;
      }
    } else {
      const auto cap = static_cast<size_t>(
          std::max<int64_t>(1, op_.window.length_tuples));
      while (own.size() > cap) {
        --mine.total;
        own.erase(own.begin());
      }
    }
    return Status::OK();
  }

  size_t StateSize() const override {
    return sides_[0].total + sides_[1].total;
  }

 private:
  struct Side {
    // Per-key buckets hold only a handful of in-window elements each, so a
    // small vector beats a deque (whose minimum allocation is ~512B — with
    // ID-like join keys that caused hundreds of MB of allocator churn).
    std::map<Value, std::vector<StreamElement>> buffers;
    size_t total = 0;
  };

  OperatorDescriptor op_;
  double duration_;
  Side sides_[2];
};

class UdoExec : public OperatorInstance {
 public:
  UdoExec(std::unique_ptr<Udo> udo, int instance, uint64_t seed)
      : udo_(std::move(udo)), instance_(instance), rng_(seed) {}

  Status Process(const StreamElement& e, int, double now,
                 std::vector<StreamElement>* out) override {
    UdoContext ctx;
    ctx.now = now;
    ctx.instance = instance_;
    ctx.rng = &rng_;
    udo_->Process(e, &ctx, out);
    return Status::OK();
  }

  void Flush(double now, std::vector<StreamElement>* out) override {
    UdoContext ctx;
    ctx.now = now;
    ctx.instance = instance_;
    ctx.rng = &rng_;
    udo_->Flush(&ctx, out);
  }

 private:
  std::unique_ptr<Udo> udo_;
  int instance_;
  Rng rng_;
};

class SinkExec : public OperatorInstance {
 public:
  Status Process(const StreamElement& e, int, double,
                 std::vector<StreamElement>* out) override {
    out->push_back(e);  // the simulator records latency on sink output
    return Status::OK();
  }

  Status ProcessBatch(const data::Batch& in, size_t row_begin, size_t row_end,
                      int, double, data::Batch* out) override {
    out->AppendRange(in, row_begin, row_end);
    return Status::OK();
  }
};

}  // namespace

Result<std::unique_ptr<OperatorInstance>> CreateOperatorInstance(
    const LogicalPlan& plan, LogicalPlan::OpId op_id, int instance,
    uint64_t seed) {
  const OperatorDescriptor& op = plan.op(op_id);
  switch (op.type) {
    case OperatorType::kSource:
      return Status::InvalidArgument(
          "sources are driven by the simulator, not OperatorInstance");
    case OperatorType::kFilter:
      return {std::make_unique<FilterExec>(op)};
    case OperatorType::kMap:
      return {std::make_unique<MapExec>()};
    case OperatorType::kFlatMap:
      return {std::make_unique<FlatMapExec>(op, seed)};
    case OperatorType::kWindowAggregate:
      if (op.window.policy == WindowPolicy::kTime) {
        return {std::make_unique<TimeWindowAggExec>(op)};
      }
      return {std::make_unique<CountWindowAggExec>(op)};
    case OperatorType::kWindowJoin:
      return {std::make_unique<WindowJoinExec>(op)};
    case OperatorType::kUdo: {
      PDSP_ASSIGN_OR_RETURN(auto udo, UdoRegistry::Global().Create(op));
      return {std::make_unique<UdoExec>(std::move(udo), instance, seed)};
    }
    case OperatorType::kSink:
      return {std::make_unique<SinkExec>()};
  }
  return Status::Internal("unknown operator type");
}

}  // namespace pdsp
