// Copyright (c) PDSP-Bench-C++ contributors.
//
// Status / Result error-handling primitives, following the RocksDB / Arrow
// idiom: library code never throws; fallible functions return a Status (or a
// Result<T> carrying either a value or a Status).

#ifndef PDSP_COMMON_STATUS_H_
#define PDSP_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace pdsp {

/// Machine-readable error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// Returns a short stable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a human-readable
/// message. `Status::OK()` is the success value; everything else is an error.
///
/// Cheap to copy in the error case only in the sense that errors are rare;
/// the success case stores no allocation at all.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Success value.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status. Never holds an OK
/// status without a value.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Error status, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value access. Undefined behaviour unless ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` on error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<Status, T> repr_;
};

// Propagates a non-OK Status to the caller.
#define PDSP_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::pdsp::Status _pdsp_status = (expr);        \
    if (!_pdsp_status.ok()) return _pdsp_status; \
  } while (false)

#define PDSP_CONCAT_IMPL(a, b) a##b
#define PDSP_CONCAT(a, b) PDSP_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a Result<T>), propagates the error, or assigns the value
// to `lhs` (which may include a declaration, e.g. `auto x`).
#define PDSP_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  PDSP_ASSIGN_OR_RETURN_IMPL(PDSP_CONCAT(_pdsp_result_, __LINE__), lhs, rexpr)

#define PDSP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace pdsp

#endif  // PDSP_COMMON_STATUS_H_
