// Global operator new/delete interposition for pdsp::obs::mem. This TU is
// compiled into the pdsp library only when PDSP_MEM_PROFILE is defined
// (src/CMakeLists.txt sets it by default and drops it under
// PDSP_SANITIZE=address, where ASan must own malloc). Without the define
// this file is empty and the binary's allocator is untouched.
//
// The replacements forward to malloc/free and report every allocation and
// free to NoteAlloc/NoteFree, which are one relaxed atomic load and a
// branch when no memory profiler is running — so unprofiled runs pay
// (almost) nothing. Aligned (align_val_t) overloads are deliberately not
// replaced: the default library versions remain a consistent new/delete
// pair, those allocations are simply never sampled.

#ifdef PDSP_MEM_PROFILE

#include <cstdlib>
#include <new>

#include "src/obs/mem.h"

namespace pdsp {
namespace obs {
namespace mem {
namespace detail {

// Link anchor referenced by InterpositionAvailable() in mem.cc. Without it,
// a linker that already resolved operator new elsewhere (e.g. libtsan.so's
// interceptors under -fsanitize=thread) never pulls this archive member, and
// the hooks silently vanish from the binary. The reference forces this TU
// into every link that contains mem.cc, so the executable's own definitions
// win symbol resolution and the profiler keeps seeing allocations.
extern const bool mem_hooks_linked;
extern const bool mem_hooks_linked = true;

}  // namespace detail
}  // namespace mem
}  // namespace obs
}  // namespace pdsp

namespace {

void* AllocOrThrow(std::size_t size) {
  if (size == 0) size = 1;
  for (;;) {
    void* ptr = std::malloc(size);
    if (ptr != nullptr) {
      pdsp::obs::mem::NoteAlloc(ptr, size);
      return ptr;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* AllocNoThrow(std::size_t size) noexcept {
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr != nullptr) pdsp::obs::mem::NoteAlloc(ptr, size);
  return ptr;
}

void FreePtr(void* ptr) noexcept {
  if (ptr == nullptr) return;
  pdsp::obs::mem::NoteFree(ptr);
  std::free(ptr);
}

}  // namespace

void* operator new(std::size_t size) { return AllocOrThrow(size); }
void* operator new[](std::size_t size) { return AllocOrThrow(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return AllocNoThrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return AllocNoThrow(size);
}

void operator delete(void* ptr) noexcept { FreePtr(ptr); }
void operator delete[](void* ptr) noexcept { FreePtr(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { FreePtr(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { FreePtr(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  FreePtr(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  FreePtr(ptr);
}

#endif  // PDSP_MEM_PROFILE
