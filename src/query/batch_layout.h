// Schema -> columnar batch layout derivation for validated logical plans.
// The simulation engine precomputes one BatchLayout per operator output so
// every transport batch on an edge is schema-specialized (src/data/batch.h)
// without consulting the Schema on the hot path.

#ifndef PDSP_QUERY_BATCH_LAYOUT_H_
#define PDSP_QUERY_BATCH_LAYOUT_H_

#include <vector>

#include "src/common/status.h"
#include "src/data/batch.h"
#include "src/query/plan.h"

namespace pdsp {

/// Columnar layout for tuples conforming to `schema`.
data::BatchLayout LayoutForSchema(const Schema& schema);

/// Per-operator output layouts, indexed by operator id (the layout of the
/// batches the operator emits, i.e. LayoutForSchema(plan.OutputSchema(id))).
/// Fails unless the plan is validated.
Result<std::vector<data::BatchLayout>> DeriveBatchLayouts(
    const LogicalPlan& plan);

}  // namespace pdsp

#endif  // PDSP_QUERY_BATCH_LAYOUT_H_
