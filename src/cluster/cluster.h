// Hardware model: node specifications mirroring the CloudLab machines of
// Table 4 (m510, c6525_25g, c6320) and clusters composed of them. The paper
// runs every experiment on 10-node clusters; the "He" clusters carry
// per-node speed variation (CloudLab hardware diversity: firmware, turbo,
// NUMA layout differ across racks), which is what produces the paper's
// straggler / imbalance observations (O5-O7).

#ifndef PDSP_CLUSTER_CLUSTER_H_
#define PDSP_CLUSTER_CLUSTER_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace pdsp {

/// \brief Static description of one machine model (one Table 4 row).
struct NodeSpec {
  std::string model;       ///< e.g. "m510"
  std::string cpu;         ///< e.g. "Intel Xeon D-1548"
  int cores = 8;           ///< usable task slots
  double clock_ghz = 2.0;
  /// Per-core relative throughput vs. the m510 baseline (1.0). Captures
  /// microarchitecture (IPC) on top of the clock.
  double speed_factor = 1.0;
  double memory_gb = 64.0;
  double storage_gb = 256.0;
  double nic_gbps = 10.0;
};

/// Table 4 presets.
NodeSpec M510Spec();      ///< 8c Xeon D 2.0GHz, 64GB, 10Gbps (Ho baseline)
NodeSpec C6525Spec();     ///< 16c AMD EPYC 2.2GHz, 128GB, 25Gbps
NodeSpec C6320Spec();     ///< 28c Haswell 2.0GHz, 256GB, 10Gbps

/// \brief One concrete machine in a cluster: a spec plus its effective
/// speed (spec speed * node-local variation).
struct Node {
  int id = 0;
  NodeSpec spec;
  /// Effective per-core speed (speed_factor adjusted by node variation).
  double effective_speed = 1.0;
};

/// \brief A set of nodes with a uniform interconnect.
class Cluster {
 public:
  struct Options {
    /// One-way propagation latency between distinct nodes (seconds).
    double link_latency_s = 150e-6;
    /// Relative stddev of per-node speed variation (0 = identical nodes).
    double speed_jitter = 0.0;
    /// Seed for the deterministic jitter assignment.
    uint64_t jitter_seed = 7;
  };

  Cluster() = default;
  explicit Cluster(Options options) : options_(options) {}

  /// Appends `count` nodes of the given spec (jitter applied per node).
  void AddNodes(const NodeSpec& spec, int count);

  /// --- Paper presets: 10-node clusters of Table 4 ---
  /// Homogeneous m510 cluster (Exp. 1 and the "Ho" series of Exp. 2).
  static Cluster M510(int nodes = 10);
  /// "He" c6525_25g cluster: EPYC nodes with hardware-diversity jitter.
  static Cluster C6525(int nodes = 10);
  /// "He" c6320 cluster: Haswell nodes with hardware-diversity jitter.
  static Cluster C6320(int nodes = 10);
  /// Extension: a truly mixed cluster (m510 + c6525 + c6320 nodes).
  static Cluster Mixed(int nodes = 10);

  size_t NumNodes() const { return nodes_.size(); }
  const Node& node(size_t i) const { return nodes_.at(i); }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Sum of cores over all nodes.
  int TotalCores() const;

  /// Mean effective speed over nodes (1.0 == m510 core).
  double MeanSpeed() const;

  /// One-way network latency between two nodes in seconds (0 if same node).
  double LinkLatencySeconds(int a, int b) const;

  /// Bandwidth between two nodes in bytes/second (min of the two NICs);
  /// effectively infinite for node-local channels.
  double LinkBandwidthBytesPerSec(int a, int b) const;

  /// True if any two nodes differ in spec or effective speed by > 1%.
  bool IsHeterogeneous() const;

  std::string ToString() const;

 private:
  Options options_;
  std::vector<Node> nodes_;
};

}  // namespace pdsp

#endif  // PDSP_CLUSTER_CLUSTER_H_
