#include "src/obs/timeseries.h"

#include "src/common/file_util.h"
#include "src/common/string_util.h"

namespace pdsp {
namespace obs {

const std::vector<std::string>& TimeSeries::Columns() {
  static const std::vector<std::string> kColumns = {
      "time_s",      "task",        "op",
      "instance",    "queue_tuples", "utilization",
      "in_rate_tps", "out_rate_tps", "watermark_lag_s",
      "in_flight_tuples", "backpressure",
  };
  return kColumns;
}

std::vector<double> TimeSeries::SampleTimes() const {
  std::vector<double> times;
  for (const TimeSeriesRow& row : rows_) {
    if (times.empty() || times.back() != row.time_s) {
      times.push_back(row.time_s);
    }
  }
  return times;
}

std::string TimeSeries::ToCsv() const {
  std::string out = Join(Columns(), ",") + "\n";
  for (const TimeSeriesRow& row : rows_) {
    out += StrFormat("%.6f,%d,%s,%d,%lld,%.4f,%.1f,%.1f,%.6f,%lld,%d\n",
                     row.time_s, row.task, row.op.c_str(), row.instance,
                     static_cast<long long>(row.queue_tuples),
                     row.utilization, row.in_rate_tps, row.out_rate_tps,
                     row.watermark_lag_s,
                     static_cast<long long>(row.in_flight_tuples),
                     row.backpressure ? 1 : 0);
  }
  return out;
}

Status TimeSeries::WriteCsv(const std::string& path) const {
  return WriteTextFileAtomic(path, ToCsv());
}

}  // namespace obs
}  // namespace pdsp
