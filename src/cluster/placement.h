// Placement of parallel operator instances (tasks) onto cluster nodes.
// PDSP-Bench hides Kubernetes/Yarn-style scheduling behind its controller;
// here, placement is an explicit, pluggable policy so experiments can show
// the effect of resource mapping on heterogeneous hardware (Exp. 2).

#ifndef PDSP_CLUSTER_PLACEMENT_H_
#define PDSP_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/status.h"

namespace pdsp {

/// Placement policies.
enum class PlacementKind {
  kRoundRobin = 0,  ///< task i on node i mod N (Flink default-ish spreading)
  kLeastLoaded,     ///< next task on the node with the lowest load/capacity
  kLocality,        ///< co-locate instance j of op k with instance j of op k-1
  kRandom,          ///< uniform random node
};

const char* PlacementKindToString(PlacementKind kind);

/// \brief Node assignment for a flattened task list.
///
/// Tasks are ordered operator-major: all instances of operator 0 (in the
/// caller's operator order), then operator 1, etc.
struct Placement {
  /// node id per task.
  std::vector<int> node_of_task;
  /// tasks hosted per node (same info, inverted).
  std::vector<int> tasks_per_node;
};

/// Computes a placement of `instances_per_op[k]` instances of each operator
/// onto the cluster. Oversubscription (more tasks than cores) is allowed —
/// the simulator models the resulting core contention — but an empty cluster
/// or empty task list is an error.
Result<Placement> PlaceTasks(const Cluster& cluster,
                             const std::vector<int>& instances_per_op,
                             PlacementKind kind, uint64_t seed = 1);

}  // namespace pdsp

#endif  // PDSP_CLUSTER_PLACEMENT_H_
