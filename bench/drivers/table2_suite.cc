// Table 2: the application suite — fourteen real-world applications with
// their domains and dataflow descriptions, plus the nine synthetic query
// structures. Verifies that every entry builds into a valid plan.

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/string_util.h"
#include "src/harness/harness.h"
#include "src/harness/synthetic_suite.h"

namespace pdsp {

int Main(int, char**) {
  // Static table; --jobs is accepted (for driver uniformity) but unused.
  TableReporter apps_table(
      "Table 2: real-world application suite",
      {"abbrev", "name", "area", "UDO", "data-intensive", "operators",
       "description"});
  for (const AppInfo& info : AllApps()) {
    AppOptions opt;
    auto plan = MakeApp(info.id, opt);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s does not build: %s\n", info.abbrev,
                   plan.status().ToString().c_str());
      return 1;
    }
    apps_table.AddRow({info.abbrev, info.name, info.area,
                       info.uses_udo ? "yes" : "no",
                       info.data_intensive ? "yes" : "no",
                       StrFormat("%zu", plan->NumOperators()),
                       info.description});
  }
  apps_table.Print();

  TableReporter synth_table("Table 2 (cont.): synthetic query structures",
                            {"structure", "sources", "operators", "depth"});
  for (SyntheticStructure s : AllSyntheticStructures()) {
    CanonicalOptions opt;
    auto plan = MakeCanonicalSynthetic(s, opt);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s does not build\n",
                   SyntheticStructureToString(s));
      return 1;
    }
    synth_table.AddRow({SyntheticStructureToString(s),
                        StrFormat("%zu", plan->SourceIds().size()),
                        StrFormat("%zu", plan->NumOperators()),
                        StrFormat("%d", plan->Depth())});
  }
  synth_table.Print();
  (void)apps_table.WriteCsv("results/table2_suite.csv");
  return 0;
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
