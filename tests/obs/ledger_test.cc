#include "src/obs/ledger.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/common/file_util.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace obs {
namespace {

RunRecord SampleRecord(const std::string& run_id, const std::string& label) {
  RunRecord r;
  r.run_id = run_id;
  r.timestamp_utc = "2026-08-06T12:00:00Z";
  r.label = label;
  r.plan_hash = "0123456789abcdef";
  r.parallelism = 8;
  r.event_rate = 100000.0;
  r.cluster = "m510";
  r.nodes = 10;
  r.seed = "18446744073709551615";  // UINT64_MAX: exact only as a string
  r.repeats = 3;
  r.duration_s = 2.0;
  r.warmup_s = 0.5;
  r.build_info = "test-build";
  r.throughput_tps = 27504.0;
  r.median_latency_s = 1.0186;
  r.p95_latency_s = 1.9363;
  r.p99_latency_s = 2.2921;
  r.throughput_stddev = 12.5;
  r.median_latency_stddev = 0.0004;
  r.late_drops = 7;
  r.backpressure_skipped = 3;
  r.breakdown_queue_s = 0.34;
  r.breakdown_service_s = 0.03;
  r.diagnosis_codes = {"PDSP-R101", "PDSP-R205"};
  r.artifact_dir = "results/fig3/WC_M";
  r.host_wall_s = 6.9;
  r.host_cpu_user_s = 6.6;
  r.host_cpu_sys_s = 0.07;
  r.host_peak_rss_kb = 62328;
  return r;
}

TEST(RunRecordTest, JsonRoundTripPreservesEveryField) {
  const RunRecord r = SampleRecord("WC-abc123-1", "WC");
  auto back = RunRecord::FromJson(r.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->schema_version, kLedgerSchemaVersion);
  EXPECT_EQ(back->run_id, r.run_id);
  EXPECT_EQ(back->timestamp_utc, r.timestamp_utc);
  EXPECT_EQ(back->label, r.label);
  EXPECT_EQ(back->plan_hash, r.plan_hash);
  EXPECT_EQ(back->parallelism, r.parallelism);
  EXPECT_DOUBLE_EQ(back->event_rate, r.event_rate);
  EXPECT_EQ(back->cluster, r.cluster);
  EXPECT_EQ(back->nodes, r.nodes);
  EXPECT_EQ(back->seed, r.seed);
  EXPECT_EQ(back->repeats, r.repeats);
  EXPECT_DOUBLE_EQ(back->duration_s, r.duration_s);
  EXPECT_DOUBLE_EQ(back->warmup_s, r.warmup_s);
  EXPECT_EQ(back->build_info, r.build_info);
  EXPECT_DOUBLE_EQ(back->throughput_tps, r.throughput_tps);
  EXPECT_DOUBLE_EQ(back->median_latency_s, r.median_latency_s);
  EXPECT_DOUBLE_EQ(back->p95_latency_s, r.p95_latency_s);
  EXPECT_DOUBLE_EQ(back->p99_latency_s, r.p99_latency_s);
  EXPECT_DOUBLE_EQ(back->throughput_stddev, r.throughput_stddev);
  EXPECT_DOUBLE_EQ(back->median_latency_stddev, r.median_latency_stddev);
  EXPECT_EQ(back->late_drops, r.late_drops);
  EXPECT_EQ(back->backpressure_skipped, r.backpressure_skipped);
  EXPECT_DOUBLE_EQ(back->breakdown_queue_s, r.breakdown_queue_s);
  EXPECT_DOUBLE_EQ(back->breakdown_service_s, r.breakdown_service_s);
  EXPECT_EQ(back->diagnosis_codes, r.diagnosis_codes);
  EXPECT_EQ(back->artifact_dir, r.artifact_dir);
  EXPECT_DOUBLE_EQ(back->host_wall_s, r.host_wall_s);
  EXPECT_EQ(back->host_peak_rss_kb, r.host_peak_rss_kb);
}

TEST(RunRecordTest, RejectsUnknownSchemaVersion) {
  Json json = SampleRecord("x-1", "x").ToJson();
  json.Set("schema_version", Json::Int(kLedgerSchemaVersion + 1));
  auto back = RunRecord::FromJson(json);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("schema_version"),
            std::string::npos);
}

TEST(RunRecordTest, RejectsMissingSchemaVersionAndIdentity) {
  Json no_version = SampleRecord("x-1", "x").ToJson();
  no_version.Set("schema_version", Json::Null());
  EXPECT_FALSE(RunRecord::FromJson(no_version).ok());

  Json no_id = SampleRecord("x-1", "x").ToJson();
  no_id.Set("run_id", Json::Str(""));
  EXPECT_FALSE(RunRecord::FromJson(no_id).ok());
}

TEST(PlanHashTest, StableForSamePlanDistinctForDifferentPlans) {
  auto a = testing::LinearPlan(1000.0, 4);
  auto b = testing::LinearPlan(1000.0, 8);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::string ha = PlanHashHex(*a);
  EXPECT_EQ(ha.size(), 16u);
  EXPECT_EQ(ha, PlanHashHex(*a));
  EXPECT_NE(ha, PlanHashHex(*b));
}

TEST(MakeRunIdTest, EmbedsLabelAndIsUnique) {
  const std::string a = MakeRunId("WC");
  const std::string b = MakeRunId("WC");
  EXPECT_EQ(a.rfind("WC-", 0), 0u);
  EXPECT_NE(a, b);
}

class RunLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/pdsp_ledger_test/ledger.jsonl";
    std::filesystem::remove_all(::testing::TempDir() + "/pdsp_ledger_test");
  }
  std::string path_;
};

TEST_F(RunLedgerTest, AppendThenLoadRoundTrips) {
  RunLedger ledger(path_);
  ASSERT_TRUE(ledger.Append(SampleRecord("WC-1", "WC")).ok());
  ASSERT_TRUE(ledger.Append(SampleRecord("WC-2", "WC")).ok());
  auto records = ledger.Load();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].run_id, "WC-1");
  EXPECT_EQ((*records)[1].run_id, "WC-2");
  EXPECT_EQ((*records)[1].seed, "18446744073709551615");
}

TEST_F(RunLedgerTest, MissingFileLoadsEmpty) {
  auto records = RunLedger(path_).Load();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(RunLedgerTest, MalformedLineFailsWithLineNumber) {
  RunLedger ledger(path_);
  ASSERT_TRUE(ledger.Append(SampleRecord("WC-1", "WC")).ok());
  ASSERT_TRUE(AppendLineAtomic(path_, "{not json").ok());
  auto records = ledger.Load();
  ASSERT_FALSE(records.ok());
  // The error names the offending line: "<path>:2: ...".
  EXPECT_NE(records.status().message().find(":2:"), std::string::npos);
}

TEST(ResolveRecordTest, LabelLatestTildeAndPrefix) {
  std::vector<RunRecord> records = {SampleRecord("WC-aaaa-1", "WC"),
                                    SampleRecord("WC-bbbb-2", "WC"),
                                    SampleRecord("SG-cccc-1", "SG")};
  auto latest = ResolveRecord(records, "WC");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->run_id, "WC-bbbb-2");

  auto previous = ResolveRecord(records, "WC~1");
  ASSERT_TRUE(previous.ok());
  EXPECT_EQ(previous->run_id, "WC-aaaa-1");

  auto by_prefix = ResolveRecord(records, "SG-c");
  ASSERT_TRUE(by_prefix.ok());
  EXPECT_EQ(by_prefix->run_id, "SG-cccc-1");

  EXPECT_FALSE(ResolveRecord(records, "WC~5").ok());
  EXPECT_FALSE(ResolveRecord(records, "absent").ok());
}

}  // namespace
}  // namespace obs
}  // namespace pdsp
