#include "src/store/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pdsp {
namespace {

TEST(JsonTest, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.Dump(), "null");
}

TEST(JsonTest, Scalars) {
  EXPECT_EQ(Json::Bool(true).Dump(), "true");
  EXPECT_EQ(Json::Bool(false).Dump(), "false");
  EXPECT_EQ(Json::Int(42).Dump(), "42");
  EXPECT_EQ(Json::Number(1.5).Dump(), "1.5");
  EXPECT_EQ(Json::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, NanAndInfinitySerializeAsNull) {
  EXPECT_EQ(Json::Number(std::nan("")).Dump(), "null");
  EXPECT_EQ(Json::Number(INFINITY).Dump(), "null");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json::Str("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json::Str(std::string(1, '\x01')).Dump(), "\"\\u0001\"");
}

TEST(JsonTest, ArrayAndObjectCompose) {
  Json arr = Json::Array();
  arr.Append(Json::Int(1));
  arr.Append(Json::Str("x"));
  Json obj = Json::Object();
  obj.Set("list", std::move(arr));
  obj.Set("flag", Json::Bool(true));
  EXPECT_EQ(obj.Dump(), "{\"flag\":true,\"list\":[1,\"x\"]}");
}

TEST(JsonTest, PrettyPrintIsReparseable) {
  Json obj = Json::Object();
  obj.Set("a", Json::Int(1));
  Json inner = Json::Array();
  inner.Append(Json::Str("y"));
  obj.Set("b", std::move(inner));
  const std::string pretty = obj.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto parsed = Json::Parse(pretty);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), obj.Dump());
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("-2.5e2")->AsNumber(), -250.0);
  EXPECT_EQ(Json::Parse("\"abc\"")->AsString(), "abc");
}

TEST(JsonParseTest, NestedDocument) {
  auto j = Json::Parse(R"({"a": [1, 2, {"b": "x"}], "c": null})");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)["a"].size(), 3u);
  EXPECT_EQ((*j)["a"].at(2)["b"].AsString(), "x");
  EXPECT_TRUE((*j)["c"].is_null());
  EXPECT_TRUE((*j)["missing"].is_null());
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto j = Json::Parse("\"\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->AsString(), "A\xc3\xa9\xe2\x82\xac");  // A é €
}

TEST(JsonParseTest, Whitespace) {
  auto j = Json::Parse("  {  \"a\" :\n[ 1 ,2 ]\t}  ");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)["a"].size(), 2u);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("12 34").ok());
  EXPECT_FALSE(Json::Parse("{'a':1}").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("\"\\u12g4\"").ok());
}

TEST(JsonParseTest, DeepNestingBounded) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, CheckedGetters) {
  Json obj = Json::Object();
  obj.Set("n", Json::Number(2.5));
  obj.Set("s", Json::Str("x"));
  obj.Set("b", Json::Bool(true));
  EXPECT_DOUBLE_EQ(*obj.GetNumber("n"), 2.5);
  EXPECT_EQ(*obj.GetInt("n"), 2);
  EXPECT_EQ(*obj.GetString("s"), "x");
  EXPECT_TRUE(*obj.GetBool("b"));
  EXPECT_TRUE(obj.GetNumber("s").status().IsNotFound());
  EXPECT_TRUE(obj.GetString("n").status().IsNotFound());
  EXPECT_TRUE(obj.GetBool("missing").status().IsNotFound());
}

TEST(JsonRoundTripTest, RandomishDocuments) {
  // Round-trip stability: dump -> parse -> dump is a fixed point.
  const char* docs[] = {
      R"({"a":1,"b":[true,null,"s"],"c":{"d":2.25}})",
      R"([[],{},[{"x":[1]}]])",
      R"({"neg":-17,"exp":1e3})",
  };
  for (const char* doc : docs) {
    auto first = Json::Parse(doc);
    ASSERT_TRUE(first.ok()) << doc;
    const std::string once = first->Dump();
    auto second = Json::Parse(once);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->Dump(), once);
  }
}

}  // namespace
}  // namespace pdsp
