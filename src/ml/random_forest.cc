#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "src/ml/decision_tree.h"
#include "src/ml/models.h"

namespace pdsp {

struct RandomForestModel::Impl {
  std::vector<RegressionTree> trees;

  double Predict(const Vector& x) const {
    double sum = 0.0;
    for (const RegressionTree& t : trees) sum += t.Predict(x);
    return trees.empty() ? 0.0 : sum / static_cast<double>(trees.size());
  }
};

RandomForestModel::RandomForestModel() : impl_(new Impl) {}
RandomForestModel::~RandomForestModel() = default;

Result<TrainReport> RandomForestModel::Fit(const Dataset& train,
                                           const Dataset& val,
                                           const TrainOptions& options) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(options.seed);
  impl_->trees.clear();

  std::vector<Vector> xs;
  std::vector<double> ys;
  for (const PlanSample& s : train.samples) {
    xs.push_back(s.flat);
    ys.push_back(std::log(s.latency_s));
  }
  const Dataset& eval = val.empty() ? train : val;

  TrainReport report;
  double best_val = 1e300;
  size_t best_size = 0;
  int stall = 0;
  // Running sums of per-sample predictions over the current forest keep the
  // incremental validation evaluation O(val) per added tree.
  Vector val_pred_sum(eval.size(), 0.0);

  for (int t = 0; t < options.rf_max_trees; ++t) {
    // Bootstrap sample.
    std::vector<int> idx(xs.size());
    for (int& i : idx) {
      i = static_cast<int>(rng.UniformInt(
          0, static_cast<int64_t>(xs.size()) - 1));
    }
    TreeOptions topt;
    topt.max_depth = options.rf_max_depth;
    topt.min_leaf = options.rf_min_leaf;
    topt.feature_fraction = options.rf_feature_fraction;
    impl_->trees.push_back(
        FitRegressionTree(xs, ys, std::move(idx), topt, &rng));
    ++report.epochs_run;

    double val_loss = 0.0;
    for (size_t i = 0; i < eval.size(); ++i) {
      val_pred_sum[i] += impl_->trees.back().Predict(eval.samples[i].flat);
      const double pred =
          val_pred_sum[i] / static_cast<double>(impl_->trees.size());
      const double err = pred - std::log(eval.samples[i].latency_s);
      val_loss += err * err;
    }
    val_loss /= static_cast<double>(eval.size());
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_size = impl_->trees.size();
      stall = 0;
    } else if (++stall >= options.patience) {
      report.early_stopped = true;
      break;
    }
  }
  impl_->trees.resize(std::max<size_t>(1, best_size));
  report.final_val_loss = best_val;
  report.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

Result<double> RandomForestModel::PredictLatency(
    const PlanSample& sample) const {
  if (impl_->trees.empty()) return Status::FailedPrecondition("not fitted");
  return std::exp(std::clamp(impl_->Predict(sample.flat), -12.0, 12.0));
}

}  // namespace pdsp
