#include "src/common/string_util.h"

#include <gtest/gtest.h>

namespace pdsp {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  auto parts = SplitWhitespace("  hello\t world \n");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
}

TEST(SplitWhitespaceTest, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(ToLowerTest, MixedCase) {
  EXPECT_EQ(ToLower("Hello WORLD 123"), "hello world 123");
}

TEST(TrimTest, StripsEnds) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(HumanCountTest, ScalesUnits) {
  EXPECT_EQ(HumanCount(500), "500");
  EXPECT_EQ(HumanCount(1500), "1.5k");
  EXPECT_EQ(HumanCount(2000000), "2m");
}

}  // namespace
}  // namespace pdsp
