// pdsp::obs::diagnose tests: the latency breakdown must telescope to the
// recorded end-to-end latency, the critical path must follow the DAG, the
// rule engine must classify provisioning regimes with stable PDSP-R codes,
// and diagnosis.json must land atomically in the artifact bundle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/artifacts.h"
#include "src/obs/diagnose.h"
#include "src/sim/simulation.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

Result<SimResult> RunSim(const LogicalPlan& plan, const Cluster& cluster,
                      double duration_s = 2.0, double interval_s = 0.25) {
  ExecutionOptions opt;
  opt.sim.duration_s = duration_s;
  opt.sim.warmup_s = 0.25;
  opt.sim.seed = 11;
  opt.sim.metrics_interval_s = interval_s;
  opt.sim.attribute_latency = true;
  return ExecutePlan(plan, cluster, opt);
}

// --- latency attribution -------------------------------------------------

TEST(LatencyBreakdownTest, ComponentsTelescopeToMeanLatencyLinear) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto r = RunSim(*plan, Cluster::M510(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const LatencyBreakdown& b = r->breakdown;
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b.samples, r->latency.Count());
  EXPECT_GT(b.total_s, 0.0);
  // The engine charges every interval of an element's life to exactly one
  // component, so the sum matches the recorded mean to rounding error —
  // far inside the 5% the acceptance criterion allows.
  EXPECT_NEAR(b.ComponentSum(), b.total_s, 1e-9 + 1e-6 * b.total_s);
  EXPECT_NEAR(b.total_s, r->mean_latency_s, 1e-9 + 1e-6 * b.total_s);
  // A windowed aggregate dominates this plan's latency.
  EXPECT_GT(b.window_s, 0.0);
}

TEST(LatencyBreakdownTest, ComponentsTelescopeOnJoinPlan) {
  auto plan = testing::TwoWayJoinPlan(1500.0, 2);
  ASSERT_TRUE(plan.ok());
  auto r = RunSim(*plan, Cluster::M510(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const LatencyBreakdown& b = r->breakdown;
  ASSERT_FALSE(b.empty());
  EXPECT_NEAR(b.ComponentSum(), b.total_s, 1e-9 + 1e-6 * b.total_s);
  // Join buffering shows up as window residency of the earlier partner.
  EXPECT_GT(b.window_s, 0.0);
  EXPECT_GT(b.source_batch_s, 0.0);
}

TEST(LatencyBreakdownTest, PerOperatorComponentsArePopulated) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto r = RunSim(*plan, Cluster::M510(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool some_service = false;
  bool some_source_batch = false;
  for (size_t i = 0; i < r->op_stats.size(); ++i) {
    const OperatorLatencyStats& l = r->op_stats[i].latency;
    some_service |= l.service_n > 0;
    some_source_batch |= l.source_batch_n > 0;
    EXPECT_GE(l.MeanPathCost(), 0.0);
  }
  EXPECT_TRUE(some_service);
  EXPECT_TRUE(some_source_batch);
  // Sources charge source-batching, never queue wait.
  const auto src = plan->FindOperator("src");
  ASSERT_TRUE(src.ok());
  EXPECT_GT(r->op_stats[*src].latency.source_batch_n, 0);
  EXPECT_EQ(r->op_stats[*src].latency.queue_wait_n, 0);
}

// --- critical path -------------------------------------------------------

TEST(CriticalPathTest, FollowsDagFromSourceToSink) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto r = RunSim(*plan, Cluster::M510(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::CriticalPath path = obs::ComputeCriticalPath(*plan, *r);
  // Linear plan: the path is the whole chain.
  ASSERT_EQ(path.hops.size(), plan->NumOperators());
  EXPECT_EQ(plan->op(path.hops.front().op).type, OperatorType::kSource);
  EXPECT_EQ(path.hops.back().op, plan->SinkId());
  EXPECT_GT(path.total_s, 0.0);
  double share_sum = 0.0;
  double cost_sum = 0.0;
  for (const obs::CriticalPathHop& hop : path.hops) {
    share_sum += hop.share;
    cost_sum += hop.cost_s;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_NEAR(cost_sum, path.total_s, 1e-9 + 1e-9 * path.total_s);
}

TEST(CriticalPathTest, JoinPlanPicksOneBranch) {
  auto plan = testing::TwoWayJoinPlan(1500.0, 2);
  ASSERT_TRUE(plan.ok());
  auto r = RunSim(*plan, Cluster::M510(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::CriticalPath path = obs::ComputeCriticalPath(*plan, *r);
  // src -> filter -> join -> sink: one branch of the diamond, not both.
  ASSERT_EQ(path.hops.size(), 4u);
  EXPECT_EQ(plan->op(path.hops.front().op).type, OperatorType::kSource);
  EXPECT_EQ(path.hops.back().op, plan->SinkId());
  // Consecutive hops must be connected in the DAG.
  for (size_t i = 1; i < path.hops.size(); ++i) {
    const auto inputs = plan->Inputs(path.hops[i].op);
    EXPECT_NE(std::find(inputs.begin(), inputs.end(), path.hops[i - 1].op),
              inputs.end());
  }
}

// --- rule engine ---------------------------------------------------------

TEST(DiagnoseTest, SaturatedJoinGetsR101WithParallelismHint) {
  // Under-provisioned: join at parallelism 1 under a rate it cannot absorb.
  auto plan = testing::TwoWayJoinPlan(30000.0, 1);
  ASSERT_TRUE(plan.ok());
  const Cluster cluster = Cluster::M510(4);
  auto r = RunSim(*plan, cluster);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto diag = obs::DiagnoseRun(*plan, cluster, *r);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  ASSERT_TRUE(diag->HasCode("PDSP-R101")) << diag->ToString();
  // The saturated operator matches the analytic model's bottleneck.
  const auto join = plan->FindOperator("join");
  ASSERT_TRUE(join.ok());
  bool join_flagged = false;
  for (const analysis::Diagnostic& d : diag->report.diagnostics()) {
    if (d.code != "PDSP-R101") continue;
    EXPECT_EQ(d.severity, analysis::Severity::kError);
    if (d.op == *join) {
      join_flagged = true;
      EXPECT_NE(d.hint.find("raise parallelism"), std::string::npos);
      EXPECT_NE(d.hint.find("`join`"), std::string::npos);
    }
  }
  EXPECT_TRUE(join_flagged) << diag->ToString();
  EXPECT_EQ(diag->analytic_bottleneck_op, *join);
  EXPECT_GT(diag->analytic_max_utilization, 1.0);
}

TEST(DiagnoseTest, WellProvisionedPlanHasNoErrors) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  const Cluster cluster = Cluster::M510(4);
  auto r = RunSim(*plan, cluster);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto diag = obs::DiagnoseRun(*plan, cluster, *r);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  EXPECT_FALSE(diag->report.HasErrors()) << diag->ToString();
}

TEST(DiagnoseTest, OverProvisionedOperatorGetsR105) {
  // 16 instances for a trickle of tuples.
  auto plan = testing::LinearPlan(500.0, 16);
  ASSERT_TRUE(plan.ok());
  const Cluster cluster = Cluster::M510(8);
  auto r = RunSim(*plan, cluster);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto diag = obs::DiagnoseRun(*plan, cluster, *r);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  ASSERT_TRUE(diag->HasCode("PDSP-R105")) << diag->ToString();
  for (const analysis::Diagnostic& d : diag->report.diagnostics()) {
    if (d.code == "PDSP-R105") {
      EXPECT_EQ(d.severity, analysis::Severity::kInfo);
      EXPECT_NE(d.hint.find("reduce parallelism"), std::string::npos);
    }
  }
}

TEST(DiagnoseTest, SourceLimitedRunGetsR104) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  const Cluster cluster = Cluster::M510(4);
  auto r = RunSim(*plan, cluster);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Synthesize the signal: generation was throttled although nothing is
  // saturated (the in-flight cap bit, not an operator).
  r->backpressure_skipped = 1234;
  auto diag = obs::DiagnoseRun(*plan, cluster, *r);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  ASSERT_TRUE(diag->HasCode("PDSP-R104")) << diag->ToString();
}

TEST(DiagnoseTest, ShuffleBoundBreakdownGetsR103) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  const Cluster cluster = Cluster::M510(4);
  auto r = RunSim(*plan, cluster);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  r->breakdown.samples = 100;
  r->breakdown.network_s = 0.08;
  r->breakdown.queue_s = 0.01;
  r->breakdown.service_s = 0.01;
  r->breakdown.total_s = 0.1;
  auto diag = obs::DiagnoseRun(*plan, cluster, *r);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  ASSERT_TRUE(diag->HasCode("PDSP-R103")) << diag->ToString();
}

TEST(DiagnoseTest, MonotoneGrowingWatermarkLagGetsR106) {
  auto plan = testing::LinearPlan(2000.0, 1);
  ASSERT_TRUE(plan.ok());
  const Cluster cluster = Cluster::M510(2);
  auto r = RunSim(*plan, cluster);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Synthesize a stalled watermark at the aggregate: lag grows by the full
  // sample interval every sample.
  obs::TimeSeries stalled;
  for (int k = 1; k <= 8; ++k) {
    obs::TimeSeriesRow row;
    row.time_s = 0.25 * k;
    row.op = "agg";
    row.watermark_lag_s = 0.25 * k;
    stalled.Append(row);
  }
  r->timeseries = stalled;
  auto diag = obs::DiagnoseRun(*plan, cluster, *r);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  ASSERT_TRUE(diag->HasCode("PDSP-R106")) << diag->ToString();
}

// --- serialization & artifacts -------------------------------------------

TEST(DiagnoseTest, ToJsonRoundTripsThroughParser) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  const Cluster cluster = Cluster::M510(4);
  auto r = RunSim(*plan, cluster);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto diag = obs::DiagnoseRun(*plan, cluster, *r);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  auto parsed = Json::Parse(diag->ToJson().Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE((*parsed)["breakdown"].is_object());
  EXPECT_TRUE((*parsed)["critical_path"]["hops"].is_array());
  EXPECT_TRUE((*parsed)["report"].is_object());
  EXPECT_TRUE((*parsed)["analytic"].is_object());
  EXPECT_NEAR((*parsed)["breakdown"]["total_s"].AsNumber(),
              r->breakdown.total_s, 1e-9);
}

TEST(DiagnoseTest, ArtifactBundleIncludesDiagnosisJsonAtomically) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  const Cluster cluster = Cluster::M510(4);
  auto r = RunSim(*plan, cluster);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto diag = obs::DiagnoseRun(*plan, cluster, *r);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();

  const std::string dir =
      ::testing::TempDir() + "/pdsp_diagnosis_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  Status st = obs::WriteRunArtifacts(dir, *r, nullptr, &*diag);
  ASSERT_TRUE(st.ok()) << st.ToString();

  std::ifstream in(dir + "/diagnosis.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = Json::Parse(buf.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE((*doc)["critical_path"].is_object());
  // Atomic writes leave no .tmp files behind.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << entry.path() << " (no .tmp residue expected)";
  }
}

// --- satellite regressions ----------------------------------------------

TEST(RunMetricsJsonTest, HistogramsCarryPercentilesAlongsideBuckets) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  auto r = RunSim(*plan, Cluster::M510(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Json doc = obs::RunMetricsJson(*r);
  const Json& hist =
      doc["metrics"]["histograms"]["pdsp.sim.sink_latency_seconds"];
  ASSERT_TRUE(hist.is_object());
  EXPECT_TRUE(hist["buckets"].is_array());
  EXPECT_GT(hist["buckets"].size(), 0u);
  for (const char* pct : {"p50", "p95", "p99"}) {
    SCOPED_TRACE(pct);
    ASSERT_TRUE(hist[pct].is_number());
    EXPECT_GT(hist[pct].AsNumber(), 0.0);
  }
  // Percentiles must be ordered and bracket the recorded median loosely
  // (the histogram is exponential-bucketed, so allow bucket-width slack).
  EXPECT_LE(hist["p50"].AsNumber(), hist["p95"].AsNumber());
  EXPECT_LE(hist["p95"].AsNumber(), hist["p99"].AsNumber());
  // Per-operator latency components ride along in "operators".
  ASSERT_TRUE(doc["operators"].is_array());
  EXPECT_TRUE(doc["operators"].at(0)["latency"].is_object());
  // The run-level breakdown lands in the summary.
  EXPECT_TRUE(doc["summary"]["latency_breakdown"].is_object());
}

TEST(TimeSeriesFinalSampleTest, IntervalLongerThanDurationStillSamples) {
  // Regression: metrics_interval_s > duration_s used to produce zero rows.
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  ExecutionOptions opt;
  opt.sim.duration_s = 1.0;
  opt.sim.warmup_s = 0.25;
  opt.sim.metrics_interval_s = 5.0;
  auto r = ExecutePlan(*plan, Cluster::M510(4), opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->timeseries.empty());
  const std::vector<double> times = r->timeseries.SampleTimes();
  ASSERT_EQ(times.size(), 1u);
  // The single sample covers the whole run (duration or drain end).
  EXPECT_GE(times[0], 1.0);
  for (const obs::TimeSeriesRow& row : r->timeseries.rows()) {
    EXPECT_GE(row.utilization, 0.0);
    EXPECT_LE(row.utilization, 1.0);
  }
}

TEST(TimeSeriesFinalSampleTest, FinalSampleCoversDrainTail) {
  auto plan = testing::LinearPlan(2000.0, 2);
  ASSERT_TRUE(plan.ok());
  ExecutionOptions opt;
  opt.sim.duration_s = 2.0;
  opt.sim.warmup_s = 0.25;
  opt.sim.metrics_interval_s = 0.25;
  auto r = ExecutePlan(*plan, Cluster::M510(4), opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<double> times = r->timeseries.SampleTimes();
  ASSERT_FALSE(times.empty());
  // Last sample sits at the end of the run, past or at duration_s.
  EXPECT_GE(times.back(), 2.0);
  EXPECT_NEAR(times.back(), std::max(2.0, r->virtual_time_end), 1e-9);
}

}  // namespace
}  // namespace pdsp
