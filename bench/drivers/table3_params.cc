// Table 3: the workload generator's parameter ranges — event rates, window
// configurations, filter functions, data types, partitioning strategies —
// as implemented by this library's generators.

#include <cstdio>

#include "src/common/string_util.h"
#include "src/data/arrival.h"
#include "src/harness/harness.h"
#include "src/workload/enumerator.h"
#include "src/workload/query_generator.h"

namespace pdsp {

int Main(int, char**) {
  // Static table; --jobs is accepted (for driver uniformity) but unused.
  const QueryGenOptions defaults;
  TableReporter table("Table 3: workload generator parameter ranges",
                      {"dimension", "parameter", "range"});

  std::vector<std::string> rates;
  for (double r : StandardEventRates()) rates.push_back(HumanCount(r));
  table.AddRow({"data", "event rate (events/s)", Join(rates, " ")});
  table.AddRow({"data", "tuple width", "1 - 15 fields"});
  table.AddRow({"data", "data types", "string double int"});
  table.AddRow({"data", "key distributions", "zipf uniform sequence"});
  table.AddRow(
      {"data", "partitioning strategies", "forward rebalance hash"});

  std::vector<std::string> durations;
  for (double d : defaults.window_durations_ms) {
    durations.push_back(StrFormat("%.0f", d));
  }
  table.AddRow({"query", "window duration (ms)", Join(durations, " ")});
  std::vector<std::string> lengths;
  for (int64_t l : defaults.window_lengths) {
    lengths.push_back(StrFormat("%lld", static_cast<long long>(l)));
  }
  table.AddRow({"query", "window length (tuples)", Join(lengths, " ")});
  std::vector<std::string> slides;
  for (double s : defaults.slide_ratios) {
    slides.push_back(StrFormat("%.1f", s));
  }
  table.AddRow({"query", "slide ratio x window", Join(slides, " ")});
  table.AddRow({"query", "window types", "sliding tumbling"});
  table.AddRow({"query", "window policies", "time count"});
  table.AddRow({"query", "aggregate functions", "min max avg mean sum"});
  table.AddRow({"query", "filter functions", "< <= > >= == !="});
  table.AddRow({"query", "filter selectivity",
                StrFormat("%.2f - %.2f", defaults.min_filter_selectivity,
                          defaults.max_filter_selectivity)});
  table.AddRow({"query", "key cardinality",
                StrFormat("%lld - %lld",
                          static_cast<long long>(defaults.min_keys),
                          static_cast<long long>(defaults.max_keys))});

  std::vector<std::string> strategies;
  for (EnumerationStrategy s :
       {EnumerationStrategy::kRandom, EnumerationStrategy::kRuleBased,
        EnumerationStrategy::kExhaustive, EnumerationStrategy::kMinAvgMax,
        EnumerationStrategy::kIncreasing,
        EnumerationStrategy::kParameterBased}) {
    strategies.push_back(EnumerationStrategyToString(s));
  }
  table.AddRow({"resource", "parallelism enumeration", Join(strategies, " ")});
  table.AddRow({"resource", "cluster types",
                "homogeneous: m510; heterogeneous: c6525_25g c6320 mixed"});
  table.AddRow({"ml", "learned cost models",
                "linear_regression mlp random_forest gnn"});
  table.Print();
  (void)table.WriteCsv("results/table3_params.csv");
  return 0;
}

}  // namespace pdsp

int main(int argc, char** argv) { return pdsp::Main(argc, argv); }
