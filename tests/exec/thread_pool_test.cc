#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

namespace pdsp {
namespace exec {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResultsInSubmissionOrder) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SingleThreadRunsEverything) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, NonPositiveThreadCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 1; });
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 2; }).get(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
    }
    pool.Shutdown();
    // Shutdown waits for queued tasks; every future must be ready.
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // second call must be a no-op, not a crash
}

TEST(ThreadPoolTest, SubmitAfterShutdownFailsTheFuture) {
  ThreadPool pool(2);
  pool.Shutdown();
  auto f = pool.Submit([] { return 3; });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_EQ(ResolveJobs(3), 3);
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_GE(ResolveJobs(0), 1);   // hardware concurrency, at least one
  EXPECT_GE(ResolveJobs(-5), 1);
}

}  // namespace
}  // namespace exec
}  // namespace pdsp
