// Canonical (fixed-parameter) synthetic plans for the Figure 3/4 sweeps.
// Unlike QueryGenerator's randomized plans, these hold every parameter
// except parallelism constant — filters at selectivity 0.5, 1-second
// tumbling time windows, rate-scaled join key spaces — so the figures
// isolate the effect of the parallelism degree.

#ifndef PDSP_HARNESS_SYNTHETIC_SUITE_H_
#define PDSP_HARNESS_SYNTHETIC_SUITE_H_

#include "src/common/status.h"
#include "src/query/plan.h"
#include "src/workload/query_generator.h"

namespace pdsp {

/// \brief Fixed parameters for canonical plans.
struct CanonicalOptions {
  double event_rate = 100000.0;  ///< per source
  int parallelism = 1;           ///< every operator except the sink
  double window_ms = 1000.0;     ///< tumbling time windows
  int64_t agg_keys = 1000;       ///< key cardinality for aggregates
  double filter_selectivity = 0.5;
};

/// Builds the canonical plan for a structure. Deterministic: the same
/// options always produce the identical plan.
Result<LogicalPlan> MakeCanonicalSynthetic(SyntheticStructure structure,
                                           const CanonicalOptions& options);

}  // namespace pdsp

#endif  // PDSP_HARNESS_SYNTHETIC_SUITE_H_
