// Columnar micro-batches: the unit of flow on the hot data path.
//
// A Batch holds N stream elements in schema-specialized columnar form —
// one typed vector per schema field (int64/double columns are contiguous
// arrays; string columns are views into an arena of stable chunks with
// short strings interned per batch) plus three per-row system columns:
// event time, birth (earliest contributing source tuple's production time)
// and the latency-attribution handle (StreamElement::attr_id). Vectorized
// kernels (src/runtime/kernels.h) filter, hash, aggregate and partition
// over columns directly; rows are materialized into dynamically typed
// Tuple/Value form only at type-erasure boundaries (UDOs, window/join
// state) via RowView.
//
// Layout rules:
//  - The column set and types come from a BatchLayout derived from the
//    operator's output Schema (query/batch_layout.h). Appends that match
//    the layout go to the typed vector; a value whose type disagrees with
//    its column promotes the whole column to a dynamically typed fallback
//    (`mixed`) so round-tripping is always exact — promotion is a
//    correctness escape hatch, counted via promotions(), not a hot path.
//  - Batches are move-only. Copying rows between batches goes through
//    AppendRange/AppendGather (selection-vector gather), which re-copies
//    string payloads into the destination arena.
//  - A SelectionVector is a list of row indices into a batch; kernels
//    produce and consume them (filter survivors, per-destination
//    partitions) so data is gathered once, at routing time.

#ifndef PDSP_DATA_BATCH_H_
#define PDSP_DATA_BATCH_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/data/value.h"

namespace pdsp {
namespace data {

/// Row indices into a Batch (kernel currency: filter survivors, partition
/// membership). Indices are in increasing order unless a kernel documents
/// otherwise (FlatMap repeats indices to replicate rows).
using SelectionVector = std::vector<uint32_t>;

/// \brief Column types of a batch, derived from a Schema. Kept separate
/// from Schema so the data plane does not depend on field names.
class BatchLayout {
 public:
  BatchLayout() = default;
  explicit BatchLayout(const Schema& schema) {
    types_.reserve(schema.NumFields());
    for (const Field& f : schema.fields()) types_.push_back(f.type);
  }
  explicit BatchLayout(std::vector<DataType> types)
      : types_(std::move(types)) {}

  size_t NumColumns() const { return types_.size(); }
  DataType column_type(size_t i) const { return types_[i]; }
  const std::vector<DataType>& types() const { return types_; }

  bool operator==(const BatchLayout& other) const {
    return types_ == other.types_;
  }

 private:
  std::vector<DataType> types_;
};

/// \brief Append-only byte arena with stable storage: string payloads live
/// in fixed chunks that never reallocate, so string_views into the arena
/// stay valid for the life of the batch (including across moves).
class StringArena {
 public:
  /// Copies `s` into the arena and returns a stable view.
  std::string_view Add(std::string_view s);

  size_t TotalBytes() const { return total_bytes_; }

  void Clear() {
    chunks_.clear();
    total_bytes_ = 0;
  }

 private:
  // First chunk is small (a per-firing batch usually holds a handful of
  // short strings); subsequent chunks double up to kChunkBytes.
  static constexpr size_t kMinChunkBytes = 256;
  static constexpr size_t kChunkBytes = 64 * 1024;

  struct Chunk {
    std::unique_ptr<char[]> bytes;
    size_t used = 0;
    size_t cap = 0;
  };

  std::vector<Chunk> chunks_;
  size_t total_bytes_ = 0;
};

/// \brief One schema-specialized columnar micro-batch. See file comment.
class Batch {
 public:
  Batch() = default;
  explicit Batch(BatchLayout layout);

  Batch(Batch&&) = default;
  Batch& operator=(Batch&&) = default;
  Batch(const Batch&) = delete;
  Batch& operator=(const Batch&) = delete;

  const BatchLayout& layout() const { return layout_; }
  size_t NumColumns() const { return columns_.size(); }
  size_t NumRows() const { return event_time_.size(); }
  bool empty() const { return event_time_.empty(); }

  /// Drops all rows (layout and arena chunks are kept for reuse).
  void Clear();
  void Reserve(size_t rows);

  // --- row appends (type-erasure boundary) -------------------------------

  /// Appends one dynamically typed row. Values that disagree with their
  /// column's layout type promote the column (exact round-trip preserved).
  void AppendTuple(const Tuple& tuple, double birth, uint32_t attr_id);

  // --- columnar appends (kernels, generator) -----------------------------
  // Append one value per column (in any column order), then FinishRow once
  // per row. FinishRow asserts all columns reached the new length.

  void AppendInt(size_t col, int64_t v);
  void AppendDouble(size_t col, double v);
  /// Strings of at most kInternMaxBytes are interned per batch (repeated
  /// keys/words share one arena copy); longer payloads are copied as-is.
  void AppendString(size_t col, std::string_view v);
  void AppendValue(size_t col, const Value& v);
  void FinishRow(double event_time, double birth, uint32_t attr_id);

  // --- batch-to-batch copies ---------------------------------------------

  /// Appends rows [begin, end) of `src`. Layout types must match
  /// column-for-column (checked with assert).
  void AppendRange(const Batch& src, size_t begin, size_t end);
  /// Appends the selected rows of `src` in selection order (indices may
  /// repeat: FlatMap replication).
  void AppendGather(const Batch& src, const SelectionVector& sel);

  // --- column reads -------------------------------------------------------

  DataType column_type(size_t col) const { return columns_[col].type; }
  /// True when the column fell back to dynamically typed storage.
  bool column_promoted(size_t col) const { return columns_[col].promoted; }

  /// Raw typed data; nullptr when the column is promoted or of another
  /// type. Valid until the next append.
  const int64_t* IntData(size_t col) const;
  const double* DoubleData(size_t col) const;
  const std::string_view* StringData(size_t col) const;

  /// Dynamically typed read of one cell (exact: promotion preserves the
  /// original Value).
  Value ValueAt(size_t row, size_t col) const;
  /// Value::AsNumeric semantics: ints/doubles as double, strings by length.
  double NumericAt(size_t row, size_t col) const;

  double event_time(size_t row) const { return event_time_[row]; }
  double birth(size_t row) const { return birth_[row]; }
  uint32_t attr_id(size_t row) const { return attr_id_[row]; }

  const std::vector<double>& event_times() const { return event_time_; }
  const std::vector<double>& births() const { return birth_; }
  const std::vector<uint32_t>& attr_ids() const { return attr_id_; }

  /// Materializes one row back into dynamically typed form.
  Tuple RowTuple(size_t row) const;

  /// Wire bytes of rows [begin, end): 8 per timestamp plus per-value sizes,
  /// summed column-wise (must agree exactly with Tuple::WireSize).
  size_t WireSize(size_t begin, size_t end) const;

  /// Number of columns that fell back to dynamically typed storage.
  size_t promotions() const { return promotions_; }
  /// Bytes currently held by the string arena.
  size_t ArenaBytes() const { return arena_.TotalBytes(); }

  /// Strings longer than this are not interned (unique payloads like
  /// sentences would only bloat the intern map).
  static constexpr size_t kInternMaxBytes = 32;

 private:
  struct Column {
    DataType type = DataType::kInt;
    bool promoted = false;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string_view> strings;
    std::vector<Value> mixed;  // promotion fallback; empty on the hot path

    size_t size() const {
      if (promoted) return mixed.size();
      switch (type) {
        case DataType::kInt:
          return ints.size();
        case DataType::kDouble:
          return doubles.size();
        case DataType::kString:
          return strings.size();
      }
      return 0;
    }
  };

  /// Moves a column's typed data into dynamically typed storage so a
  /// mismatched value can be stored exactly.
  void Promote(size_t col);

  std::string_view InternOrAdd(std::string_view v);

  BatchLayout layout_;
  std::vector<Column> columns_;
  std::vector<double> event_time_;
  std::vector<double> birth_;
  std::vector<uint32_t> attr_id_;
  StringArena arena_;
  // Lazily created on the first interned string append.
  std::unique_ptr<std::unordered_map<std::string_view, std::string_view>>
      intern_;
  size_t promotions_ = 0;
};

/// \brief Cheap view of one batch row — the adapter stateful operators and
/// UDOs use to materialize dynamically typed elements at the type-erasure
/// boundary (see StreamElement helpers in src/runtime/element.h).
class RowView {
 public:
  RowView(const Batch& batch, size_t row) : batch_(&batch), row_(row) {}

  size_t NumValues() const { return batch_->NumColumns(); }
  Value value(size_t col) const { return batch_->ValueAt(row_, col); }
  double Numeric(size_t col) const { return batch_->NumericAt(row_, col); }
  double event_time() const { return batch_->event_time(row_); }
  double birth() const { return batch_->birth(row_); }
  uint32_t attr_id() const { return batch_->attr_id(row_); }

  Tuple ToTuple() const { return batch_->RowTuple(row_); }

 private:
  const Batch* batch_;
  size_t row_;
};

}  // namespace data
}  // namespace pdsp

#endif  // PDSP_DATA_BATCH_H_
