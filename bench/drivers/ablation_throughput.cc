// Extension experiment: sustainable throughput. The paper's evaluation
// reports latency; PDSP-Bench also measures throughput ("special emphasis
// on its performance (latency and throughput)"). This driver sweeps the
// offered event rate for a fixed parallelism and reports delivered results,
// source backpressure and the hottest-operator utilization — locating each
// application's capacity knee.

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/apps/apps.h"
#include "src/common/string_util.h"
#include "src/sim/simulation.h"

namespace pdsp {

int Main() {
  const bool fast = bench::FastMode();
  const Cluster cluster = Cluster::M510(10);
  const std::vector<double> rates =
      fast ? std::vector<double>{10000, 50000}
           : std::vector<double>{10000, 50000, 100000, 200000, 500000,
                                 1000000};

  TableReporter table(
      "Extension: offered rate vs delivered results (p=16, m510 x10)",
      {"app", "offered(ev/s)", "results/s", "p50(ms)", "bp_skipped",
       "hottest util"});

  for (AppId app : {AppId::kSpikeDetection, AppId::kWordCount,
                    AppId::kTpcH}) {
    for (double rate : rates) {
      AppOptions opt;
      opt.event_rate = rate;
      opt.parallelism = 16;
      opt.window_scale = 0.4;
      auto plan = MakeApp(app, opt);
      if (!plan.ok()) return 1;
      ExecutionOptions exec;
      exec.sim.duration_s = fast ? 1.5 : 2.5;
      exec.sim.warmup_s = 0.5;
      auto r = ExecutePlan(*plan, cluster, exec);
      if (!r.ok()) {
        table.AddRow({GetAppInfo(app).abbrev, HumanCount(rate), "n/a", "n/a",
                      "n/a", "n/a"});
        continue;
      }
      double hottest = 0.0;
      for (const OperatorRunStats& s : r->op_stats) {
        hottest = std::max(hottest, s.max_instance_util);
      }
      table.AddRow({GetAppInfo(app).abbrev, HumanCount(rate),
                    ThroughputCell(r->throughput_tps),
                    LatencyCell(r->median_latency_s),
                    StrFormat("%lld",
                              static_cast<long long>(r->backpressure_skipped)),
                    StrFormat("%.2f", hottest)});
    }
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_throughput.csv");
  return 0;
}

}  // namespace pdsp

int main() { return pdsp::Main(); }
