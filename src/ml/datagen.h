// Labeled-corpus generation: the bridge between the benchmarking side
// (workload generator + simulator) and the ML side. Generates synthetic
// queries, enumerates their parallelism with a chosen strategy, executes
// them on the simulated cluster, and encodes (plan, cluster, median latency)
// into training samples. Also accounts for data-collection time — the
// dominant share of "training time" in Figure 6b.

#ifndef PDSP_ML_DATAGEN_H_
#define PDSP_ML_DATAGEN_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/status.h"
#include "src/ml/features.h"
#include "src/sim/simulation.h"
#include "src/workload/enumerator.h"
#include "src/workload/query_generator.h"

namespace pdsp {

/// \brief Corpus generation parameters.
struct DataGenOptions {
  QueryGenOptions query;
  /// Structures to draw from (empty = all nine).
  std::vector<SyntheticStructure> structures;
  /// How parallelism degrees are assigned to generated queries.
  EnumerationStrategy strategy = EnumerationStrategy::kRandom;
  EnumerationOptions enumeration;
  ExecutionOptions execution;
  /// Number of labeled samples to produce.
  int num_samples = 100;
  uint64_t seed = 99;
  /// Worker threads for candidate-query simulation (the dominant cost of
  /// corpus generation; <= 0 means one per hardware thread). Query
  /// generation stays sequential and simulation seeds derive from attempt
  /// indices, so the corpus is bit-identical for every jobs value.
  int jobs = 1;
};

/// \brief Generation outcome: the corpus plus cost accounting.
struct DataGenResult {
  Dataset dataset;
  /// Wall-clock seconds spent executing queries (data collection).
  double collection_seconds = 0.0;
  /// Simulated queries that produced no sink output and were discarded.
  int discarded = 0;
};

/// Generates a labeled corpus on the given cluster.
Result<DataGenResult> GenerateTrainingData(const DataGenOptions& options,
                                           const Cluster& cluster);

}  // namespace pdsp

#endif  // PDSP_ML_DATAGEN_H_
