// Dynamically typed values, fields and schemas for data stream tuples.
// PDSP-Bench randomizes tuple width (1-15 data items) and per-item data types
// over {string, double, integer} (Table 3); Value/Schema carry exactly that
// type system.

#ifndef PDSP_DATA_VALUE_H_
#define PDSP_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/common/status.h"

namespace pdsp {

/// The three stream data types of Table 3.
enum class DataType { kInt = 0, kDouble = 1, kString = 2 };

/// Short stable name ("int", "double", "string").
const char* DataTypeToString(DataType type);

/// Per-type hash primitives behind Value::Hash(), exported so columnar
/// kernels (src/runtime/kernels.h) can hash raw column data bit-identically
/// to the row path — hash partitioning must route a key to the same
/// downstream instance regardless of which path carried it.
uint64_t HashInt64Value(int64_t v);
/// Exactly integral doubles hash as their int64 value (3.0 and 3 land in
/// the same partition); other doubles hash their raw bytes.
uint64_t HashDoubleValue(double d);
uint64_t HashStringValue(std::string_view s);

/// \brief One data item of a tuple: int64, double or string.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  Value(int64_t v) : repr_(v) {}            // NOLINT(runtime/explicit)
  Value(int v) : repr_(int64_t{v}) {}       // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}             // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)

  DataType type() const {
    return static_cast<DataType>(repr_.index());
  }

  bool is_int() const { return type() == DataType::kInt; }
  bool is_double() const { return type() == DataType::kDouble; }
  bool is_string() const { return type() == DataType::kString; }

  /// Typed access; undefined behaviour on type mismatch (assert in debug).
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric view: ints and doubles coerce to double; strings return their
  /// length (so numeric aggregates are total over any type).
  double AsNumeric() const;

  /// Approximate wire size in bytes (for network cost modelling).
  size_t WireSize() const;

  /// Total ordering: compares numerically across int/double, lexically for
  /// string-vs-string; mixed string/number compares by AsNumeric().
  bool operator<(const Value& other) const;
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Stable 64-bit hash (used by hash partitioning and keyBy).
  uint64_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> repr_;
};

/// \brief Named, typed column of a schema.
struct Field {
  std::string name;
  DataType type = DataType::kInt;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered list of fields describing a stream's tuples.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t NumFields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_.at(i); }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with the given name.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// Appends a field; returns AlreadyExists on duplicate names.
  Status AddField(Field field);

  /// Mean wire size assuming 8 bytes per numeric and ~16 per string.
  size_t EstimatedTupleBytes() const;

  /// "name:type, name:type, ..."
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

/// \brief One stream element: values conforming to some schema plus the
/// event timestamp (virtual seconds since simulation start).
struct Tuple {
  std::vector<Value> values;
  double event_time = 0.0;

  const Value& at(size_t i) const { return values.at(i); }
  size_t WireSize() const;
  std::string ToString() const;
};

}  // namespace pdsp

#endif  // PDSP_DATA_VALUE_H_
