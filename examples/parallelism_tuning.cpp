// Parallelism tuning with enumeration strategies: generate a synthetic
// 2-way-join query, derive parallelism degrees with the rule-based (DS2-
// style) enumerator, and compare against random and uniform assignments —
// the benchmark-side workflow behind the paper's Exp. 3(2).
//
//   ./build/examples/parallelism_tuning

#include <cstdio>

#include "src/harness/harness.h"
#include "src/harness/synthetic_suite.h"
#include "src/workload/enumerator.h"

using namespace pdsp;  // NOLINT — example brevity

namespace {

void Report(const char* label, const LogicalPlan& plan,
            const Result<CellResult>& cell) {
  std::printf("%-22s tasks=%-4d ", label, plan.TotalParallelism());
  if (cell.ok()) {
    std::printf("p50=%s ms  throughput=%s/s\n",
                LatencyCell(cell->mean_median_latency_s).c_str(),
                ThroughputCell(cell->mean_throughput_tps).c_str());
  } else {
    std::printf("(failed: %s)\n", cell.status().ToString().c_str());
  }
}

}  // namespace

int main() {
  const Cluster cluster = Cluster::M510(10);
  RunProtocol protocol;
  protocol.repeats = 2;
  protocol.duration_s = 3.0;
  protocol.warmup_s = 0.75;

  CanonicalOptions query;
  query.event_rate = 150000.0;
  auto base = MakeCanonicalSynthetic(SyntheticStructure::kTwoWayJoin, query);
  if (!base.ok()) {
    std::fprintf(stderr, "plan: %s\n", base.status().ToString().c_str());
    return 1;
  }
  std::printf("query under tuning:\n%s\n", base->ToString().c_str());

  Rng rng(7);
  EnumerationOptions opts;
  opts.max_degree = 32;
  opts.num_assignments = 1;

  // Rule-based degrees from event rates + selectivities + costs.
  {
    LogicalPlan plan = *base;
    auto assignments = EnumerateParallelism(
        plan, EnumerationStrategy::kRuleBased, opts, &rng);
    if (!assignments.ok() || ApplyParallelism(&plan, (*assignments)[0])
                                 .ok() == false) {
      std::fprintf(stderr, "rule-based enumeration failed\n");
      return 1;
    }
    std::printf("rule-based degrees:");
    for (size_t op = 0; op < plan.NumOperators(); ++op) {
      std::printf(" %s=%d",
                  plan.op(static_cast<LogicalPlan::OpId>(op)).name.c_str(),
                  plan.op(static_cast<LogicalPlan::OpId>(op)).parallelism);
    }
    std::printf("\n\n");
    Report("rule_based", plan, MeasureCell(plan, cluster, protocol));
  }

  // Random degrees (what naive workload generation would do).
  {
    LogicalPlan plan = *base;
    auto assignments = EnumerateParallelism(
        plan, EnumerationStrategy::kRandom, opts, &rng);
    if (assignments.ok() &&
        ApplyParallelism(&plan, (*assignments)[0]).ok()) {
      Report("random", plan, MeasureCell(plan, cluster, protocol));
    }
  }

  // Uniform min / max for context.
  for (int degree : {1, 32}) {
    LogicalPlan plan = *base;
    if (ApplyUniformParallelism(&plan, degree).ok()) {
      char label[32];
      std::snprintf(label, sizeof(label), "uniform(%d)", degree);
      Report(label, plan, MeasureCell(plan, cluster, protocol));
    }
  }
  std::printf("\nrule-based assigns just enough instances per operator\n"
              "(rate x cost / target utilization), avoiding both the\n"
              "saturated uniform(1) and the wasteful uniform(32) plans.\n");
  return 0;
}
