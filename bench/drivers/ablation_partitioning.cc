// Ablation: data partitioning strategies (Table 3: forward, rebalance,
// hash). Forward keeps a tuple on its producing instance's channel (no
// shuffle); rebalance spreads round-robin (maximum channel fan-out); hash
// routes by key. The latency cost of shuffling grows with parallelism —
// one of the mechanisms behind the paper's parallelism paradox (O2).

#include <cstdio>

#include "bench/drivers/driver_util.h"
#include "src/common/string_util.h"
#include "src/query/builder.h"

namespace pdsp {

namespace {

Result<LogicalPlan> PipelinePlan(double rate, int parallelism,
                                 Partitioning partitioning) {
  StreamSpec stream;
  (void)stream.schema.AddField({"key", DataType::kInt});
  (void)stream.schema.AddField({"val", DataType::kDouble});
  FieldGeneratorSpec key;
  key.dist = FieldDistribution::kUniformKey;
  key.cardinality = 10000;
  FieldGeneratorSpec val;
  val.dist = FieldDistribution::kUniformDouble;
  val.max = 100.0;
  stream.specs = {key, val};
  ArrivalProcess::Options arrival;
  arrival.rate = rate;

  PlanBuilder b;
  auto src = b.Source("src", stream, arrival, parallelism);
  auto m1 = b.Map("map1", src, parallelism);
  b.WithPartitioning(m1, partitioning);
  auto m2 = b.Map("map2", m1, parallelism);
  b.WithPartitioning(m2, partitioning);
  auto f = b.Filter("filter", m2, 1, FilterOp::kGt, Value(20.0), parallelism);
  b.WithPartitioning(f, partitioning);
  b.Sink("sink", f, 1);
  return b.Build();
}

}  // namespace

int Main() {
  const Cluster cluster = Cluster::M510(10);
  const RunProtocol protocol = bench::FigureProtocol();
  const double rate = bench::FastMode() ? 40000.0 : 150000.0;

  std::vector<std::string> columns = {"parallelism"};
  for (Partitioning p : {Partitioning::kForward, Partitioning::kRebalance,
                         Partitioning::kHash}) {
    columns.push_back(StrFormat("%s(ms)", PartitioningToString(p)));
  }
  TableReporter table(
      StrFormat("Ablation: partitioning strategy vs pipeline latency "
                "(%.0fk ev/s)",
                rate / 1000.0),
      columns);

  for (int parallelism : {2, 8, 32, 64}) {
    std::vector<std::string> row = {StrFormat("%d", parallelism)};
    for (Partitioning p : {Partitioning::kForward, Partitioning::kRebalance,
                           Partitioning::kHash}) {
      auto plan = PipelinePlan(rate, parallelism, p);
      if (!plan.ok()) {
        row.push_back("n/a");
        continue;
      }
      auto cell = MeasureCell(*plan, cluster, protocol);
      row.push_back(cell.ok() ? LatencyCell(cell->mean_median_latency_s)
                              : "n/a");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  (void)table.WriteCsv("results/ablation_partitioning.csv");
  return 0;
}

}  // namespace pdsp

int main() { return pdsp::Main(); }
