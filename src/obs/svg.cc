#include "src/obs/svg.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

#include "src/common/string_util.h"

namespace pdsp {
namespace obs {
namespace svg {

namespace {

constexpr double kMarginLeft = 58;
constexpr double kMarginRight = 14;
constexpr double kMarginTop = 28;
constexpr double kMarginBottom = 42;

const char* const kPalette[] = {
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
};

bool Finite(double v) { return std::isfinite(v); }

/// Pixel coordinate with a fixed, locale-independent format. Non-finite
/// values are coerced to 0 as a last line of defense — renderers are
/// expected to have filtered them already.
std::string Px(double v) {
  if (!Finite(v)) v = 0.0;
  return StrFormat("%.1f", v);
}

void FiniteMinMax(const std::vector<Series>& series, double* x_min,
                  double* x_max, double* y_min, double* y_max) {
  *x_min = *y_min = std::numeric_limits<double>::infinity();
  *x_max = *y_max = -std::numeric_limits<double>::infinity();
  for (const Series& s : series) {
    for (const auto& p : s.points) {
      if (!Finite(p.first) || !Finite(p.second)) continue;
      *x_min = std::min(*x_min, p.first);
      *x_max = std::max(*x_max, p.first);
      *y_min = std::min(*y_min, p.second);
      *y_max = std::max(*y_max, p.second);
    }
  }
}

std::string Placeholder(double width, double height,
                        const std::string& title) {
  Canvas canvas(width, height);
  canvas.Text(10, 18, title, 13, "start", "#111");
  canvas.Text(width / 2, height / 2, "(no data)", 12, "middle", "#999");
  return canvas.Finish();
}

}  // namespace

std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

const char* PaletteColor(size_t index) {
  return kPalette[index % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

std::string ColorRamp(double t) {
  if (!Finite(t)) t = 0.0;
  t = std::min(1.0, std::max(0.0, t));
  // Light blue-gray -> saturated blue; perceptually monotone enough for a
  // throughput heatmap without pulling in a real colormap table.
  const int r = static_cast<int>(237 + t * (8 - 237));
  const int g = static_cast<int>(243 + t * (69 - 243));
  const int b = static_cast<int>(250 + t * (148 - 250));
  return StrFormat("#%02x%02x%02x", r, g, b);
}

std::vector<double> Ticks(double min_v, double max_v, int target) {
  if (!Finite(min_v) || !Finite(max_v) || max_v <= min_v) return {0.0};
  if (target < 2) target = 2;
  const double raw_step = (max_v - min_v) / target;
  const double mag = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = mag;
  for (double mult : {1.0, 2.0, 2.5, 5.0, 10.0}) {
    if (mag * mult >= raw_step) {
      step = mag * mult;
      break;
    }
  }
  std::vector<double> ticks;
  const double first = std::ceil(min_v / step) * step;
  for (double v = first; v <= max_v + step * 1e-9; v += step) {
    // Snap values like 1.4000000000000001 back onto the grid.
    ticks.push_back(std::round(v / step) * step);
  }
  if (ticks.empty()) ticks.push_back(min_v);
  return ticks;
}

std::string TickLabel(double v) {
  if (!Finite(v)) return "";
  const double a = std::fabs(v);
  if (a >= 1e6) return StrFormat("%.3gM", v / 1e6);
  if (a >= 1e4) return StrFormat("%.3gk", v / 1e3);
  std::string s = StrFormat("%.4g", v);
  return s;
}

LinearScale::LinearScale(double domain_min, double domain_max,
                         double range_min, double range_max)
    : d0_(domain_min), d1_(domain_max), r0_(range_min), r1_(range_max) {
  if (d1_ == d0_) d1_ = d0_ + 1.0;  // avoid division by zero
}

double LinearScale::operator()(double v) const {
  return r0_ + (v - d0_) / (d1_ - d0_) * (r1_ - r0_);
}

Canvas::Canvas(double width, double height) : width_(width), height_(height) {}

void Canvas::Rect(double x, double y, double w, double h,
                  const std::string& fill, double opacity,
                  const std::string& tooltip) {
  body_ += "<rect x=\"" + Px(x) + "\" y=\"" + Px(y) + "\" width=\"" + Px(w) +
           "\" height=\"" + Px(h) + "\" fill=\"" + fill + "\"";
  if (opacity < 1.0) {
    body_ += " fill-opacity=\"" + StrFormat("%.2f", opacity) + "\"";
  }
  if (tooltip.empty()) {
    body_ += "/>\n";
  } else {
    body_ += "><title>" + EscapeText(tooltip) + "</title></rect>\n";
  }
}

void Canvas::Line(double x1, double y1, double x2, double y2,
                  const std::string& stroke, double stroke_width) {
  body_ += "<line x1=\"" + Px(x1) + "\" y1=\"" + Px(y1) + "\" x2=\"" +
           Px(x2) + "\" y2=\"" + Px(y2) + "\" stroke=\"" + stroke +
           "\" stroke-width=\"" + Px(stroke_width) + "\"/>\n";
}

void Canvas::Polyline(const std::vector<std::pair<double, double>>& points,
                      const std::string& stroke, double stroke_width) {
  if (points.size() < 2) return;
  body_ += "<polyline fill=\"none\" stroke=\"" + stroke +
           "\" stroke-width=\"" + Px(stroke_width) + "\" points=\"";
  for (size_t i = 0; i < points.size(); ++i) {
    if (i != 0) body_ += " ";
    body_ += Px(points[i].first) + "," + Px(points[i].second);
  }
  body_ += "\"/>\n";
}

void Canvas::Circle(double cx, double cy, double r, const std::string& fill,
                    const std::string& tooltip) {
  body_ += "<circle cx=\"" + Px(cx) + "\" cy=\"" + Px(cy) + "\" r=\"" +
           Px(r) + "\" fill=\"" + fill + "\"";
  if (tooltip.empty()) {
    body_ += "/>\n";
  } else {
    body_ += "><title>" + EscapeText(tooltip) + "</title></circle>\n";
  }
}

void Canvas::Text(double x, double y, const std::string& text, double size,
                  const std::string& anchor, const std::string& fill,
                  double rotate_deg) {
  body_ += "<text x=\"" + Px(x) + "\" y=\"" + Px(y) + "\" font-size=\"" +
           Px(size) + "\" text-anchor=\"" + anchor + "\" fill=\"" + fill +
           "\" font-family=\"sans-serif\"";
  if (rotate_deg != 0.0) {
    body_ += " transform=\"rotate(" + Px(rotate_deg) + " " + Px(x) + " " +
             Px(y) + ")\"";
  }
  body_ += ">" + EscapeText(text) + "</text>\n";
}

std::string Canvas::Finish() const {
  return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" + Px(width_) +
         "\" height=\"" + Px(height_) + "\" viewBox=\"0 0 " + Px(width_) +
         " " + Px(height_) + "\">\n" + body_ + "</svg>";
}

std::string RenderLineChart(const LineChartSpec& spec) {
  double x_min, x_max, y_min, y_max;
  FiniteMinMax(spec.series, &x_min, &x_max, &y_min, &y_max);
  if (!Finite(x_min) || !Finite(y_min)) {
    return Placeholder(spec.width, spec.height, spec.title);
  }
  if (spec.y_from_zero) y_min = std::min(y_min, 0.0);
  if (y_max <= y_min) y_max = y_min + 1.0;
  if (x_max <= x_min) x_max = x_min + 1.0;

  Canvas canvas(spec.width, spec.height);
  const double plot_x0 = kMarginLeft;
  const double plot_x1 = spec.width - kMarginRight;
  const double plot_y0 = spec.height - kMarginBottom;  // bottom
  const double plot_y1 = kMarginTop;                   // top
  LinearScale sx(x_min, x_max, plot_x0, plot_x1);
  LinearScale sy(y_min, y_max, plot_y0, plot_y1);

  canvas.Text(8, 17, spec.title, 13, "start", "#111");

  for (double t : Ticks(y_min, y_max)) {
    const double y = sy(t);
    canvas.Line(plot_x0, y, plot_x1, y, "#e5e5e5");
    canvas.Text(plot_x0 - 6, y + 3.5, TickLabel(t), 10, "end", "#555");
  }
  for (double t : Ticks(x_min, x_max)) {
    const double x = sx(t);
    canvas.Line(x, plot_y0, x, plot_y0 + 4, "#888");
    canvas.Text(x, plot_y0 + 16, TickLabel(t), 10, "middle", "#555");
  }
  canvas.Line(plot_x0, plot_y0, plot_x1, plot_y0, "#888");
  canvas.Line(plot_x0, plot_y0, plot_x0, plot_y1, "#888");
  if (!spec.x_label.empty()) {
    canvas.Text((plot_x0 + plot_x1) / 2, spec.height - 8, spec.x_label, 11,
                "middle", "#333");
  }
  if (!spec.y_label.empty()) {
    canvas.Text(14, (plot_y0 + plot_y1) / 2, spec.y_label, 11, "middle",
                "#333", -90.0);
  }

  double legend_x = plot_x0 + 8;
  for (size_t i = 0; i < spec.series.size(); ++i) {
    const Series& s = spec.series[i];
    const std::string color =
        s.color.empty() ? PaletteColor(i) : s.color;
    std::vector<std::pair<double, double>> pts;
    for (const auto& p : s.points) {
      if (!Finite(p.first) || !Finite(p.second)) continue;
      pts.emplace_back(sx(p.first), sy(p.second));
    }
    std::sort(pts.begin(), pts.end());
    canvas.Polyline(pts, color);
    for (const auto& p : pts) canvas.Circle(p.first, p.second, 2.5, color);
    if (!s.label.empty()) {
      canvas.Rect(legend_x, plot_y1 - 14, 10, 10, color);
      canvas.Text(legend_x + 14, plot_y1 - 5, s.label, 10, "start", "#333");
      legend_x += 22 + 6.0 * s.label.size();
    }
  }
  return canvas.Finish();
}

std::string RenderStackedBars(const StackedBarSpec& spec) {
  double max_total = 0.0;
  bool any = false;
  for (const StackedBar& bar : spec.bars) {
    double total = 0.0;
    for (double part : bar.parts) {
      if (Finite(part) && part > 0.0) total += part;
    }
    if (total > 0.0) any = true;
    max_total = std::max(max_total, total);
  }
  if (!any || spec.bars.empty()) {
    return Placeholder(spec.width, spec.height, spec.title);
  }

  Canvas canvas(spec.width, spec.height);
  const double plot_x0 = kMarginLeft;
  const double plot_x1 = spec.width - kMarginRight;
  const double plot_y0 = spec.height - kMarginBottom;
  const double plot_y1 = kMarginTop + 14;  // leave room for the legend row
  LinearScale sy(0.0, max_total, plot_y0, plot_y1);

  canvas.Text(8, 17, spec.title, 13, "start", "#111");

  for (double t : Ticks(0.0, max_total)) {
    const double y = sy(t);
    canvas.Line(plot_x0, y, plot_x1, y, "#e5e5e5");
    canvas.Text(plot_x0 - 6, y + 3.5, TickLabel(t), 10, "end", "#555");
  }
  canvas.Line(plot_x0, plot_y0, plot_x1, plot_y0, "#888");
  canvas.Line(plot_x0, plot_y0, plot_x0, plot_y1, "#888");
  if (!spec.y_label.empty()) {
    canvas.Text(14, (plot_y0 + plot_y1) / 2, spec.y_label, 11, "middle",
                "#333", -90.0);
  }

  double legend_x = plot_x0 + 8;
  for (size_t p = 0; p < spec.part_labels.size(); ++p) {
    canvas.Rect(legend_x, kMarginTop - 6, 10, 10, PaletteColor(p));
    canvas.Text(legend_x + 14, kMarginTop + 3, spec.part_labels[p], 10,
                "start", "#333");
    legend_x += 22 + 6.0 * spec.part_labels[p].size();
  }

  const double band = (plot_x1 - plot_x0) / spec.bars.size();
  const double bar_w = std::min(band * 0.7, 46.0);
  for (size_t b = 0; b < spec.bars.size(); ++b) {
    const StackedBar& bar = spec.bars[b];
    const double x = plot_x0 + band * (b + 0.5) - bar_w / 2;
    double acc = 0.0;
    for (size_t p = 0; p < bar.parts.size(); ++p) {
      const double part = bar.parts[p];
      if (!Finite(part) || part <= 0.0) continue;
      const double y_top = sy(acc + part);
      const double y_bot = sy(acc);
      const std::string tip =
          bar.label + " / " +
          (p < spec.part_labels.size() ? spec.part_labels[p] : "part") +
          ": " + TickLabel(part);
      canvas.Rect(x, y_top, bar_w, y_bot - y_top, PaletteColor(p), 1.0, tip);
      acc += part;
    }
    canvas.Text(plot_x0 + band * (b + 0.5), plot_y0 + 14, bar.label, 9,
                "middle", "#555");
  }
  return canvas.Finish();
}

std::string RenderHeatmap(const HeatmapSpec& spec) {
  if (spec.row_labels.empty() || spec.col_labels.empty()) {
    return Placeholder(420, 160, spec.title);
  }
  double v_min = std::numeric_limits<double>::infinity();
  double v_max = -std::numeric_limits<double>::infinity();
  for (const HeatmapCell& c : spec.cells) {
    if (!Finite(c.value)) continue;
    v_min = std::min(v_min, c.value);
    v_max = std::max(v_max, c.value);
  }
  const bool have_values = Finite(v_min);
  if (have_values && v_max <= v_min) v_max = v_min + 1.0;

  // Row labels can be long cell labels; size the gutter to the longest.
  size_t label_len = 0;
  for (const std::string& r : spec.row_labels) {
    label_len = std::max(label_len, r.size());
  }
  const double left = 16 + 6.2 * static_cast<double>(label_len);
  const double top = 46;
  const double cs = spec.cell_size;
  const double width = left + cs * spec.col_labels.size() + 90;
  const double height = top + cs * spec.row_labels.size() + 16;

  Canvas canvas(width, height);
  canvas.Text(8, 17, spec.title, 13, "start", "#111");
  for (size_t c = 0; c < spec.col_labels.size(); ++c) {
    canvas.Text(left + cs * (c + 0.5), top - 6, spec.col_labels[c], 10,
                "middle", "#555");
  }
  for (size_t r = 0; r < spec.row_labels.size(); ++r) {
    canvas.Text(left - 6, top + cs * (r + 0.5) + 3.5, spec.row_labels[r], 10,
                "end", "#555");
  }
  for (const HeatmapCell& cell : spec.cells) {
    if (cell.row < 0 ||
        static_cast<size_t>(cell.row) >= spec.row_labels.size() ||
        cell.col < 0 ||
        static_cast<size_t>(cell.col) >= spec.col_labels.size()) {
      continue;
    }
    const double x = left + cs * cell.col;
    const double y = top + cs * cell.row;
    std::string fill = "#f4f4f4";
    if (have_values && Finite(cell.value)) {
      const double t = (cell.value - v_min) / (v_max - v_min);
      fill = ColorRamp(t);
    }
    canvas.Rect(x + 1, y + 1, cs - 2, cs - 2, fill, 1.0, cell.tooltip);
    if (cell.flagged) {
      // Straggler marker: red outline drawn as four edges (Canvas has no
      // stroked-rect primitive and this keeps it that way).
      canvas.Line(x + 1, y + 1, x + cs - 1, y + 1, "#d62728", 2.0);
      canvas.Line(x + 1, y + cs - 1, x + cs - 1, y + cs - 1, "#d62728", 2.0);
      canvas.Line(x + 1, y + 1, x + 1, y + cs - 1, "#d62728", 2.0);
      canvas.Line(x + cs - 1, y + 1, x + cs - 1, y + cs - 1, "#d62728", 2.0);
    }
  }
  if (have_values) {
    // Color key: min and max swatches right of the grid.
    const double kx = left + cs * spec.col_labels.size() + 12;
    canvas.Rect(kx, top, 12, 12, ColorRamp(0.0));
    canvas.Text(kx + 16, top + 10, TickLabel(v_min), 10, "start", "#555");
    canvas.Rect(kx, top + 18, 12, 12, ColorRamp(1.0));
    canvas.Text(kx + 16, top + 28, TickLabel(v_max), 10, "start", "#555");
  }
  return canvas.Finish();
}

namespace {

/// Trie node for flame-graph aggregation. Children are keyed by frame
/// label, so sibling order — and therefore the rendered SVG — is
/// deterministic regardless of input order.
struct FlameNode {
  double value = 0.0;
  std::map<std::string, FlameNode> children;
};

int FlameDepth(const FlameNode& node) {
  int deepest = 0;
  for (const auto& [name, child] : node.children) {
    (void)name;
    deepest = std::max(deepest, 1 + FlameDepth(child));
  }
  return deepest;
}

/// FNV-1a over the frame name: std::hash is not guaranteed stable across
/// implementations, and a frame should keep its color across reports.
size_t FrameColorIndex(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

void RenderFlameNode(Canvas* canvas, const std::string& name,
                     const FlameNode& node, double x, int depth,
                     double px_per_unit, double row_height, double top,
                     double total) {
  const double w = node.value * px_per_unit;
  if (w < 0.5) return;  // sub-pixel frames add bytes, not information
  const double y = top + depth * row_height;
  const double share = total > 0.0 ? node.value / total * 100.0 : 0.0;
  canvas->Rect(x, y, std::max(0.5, w - 0.6), row_height - 2,
               PaletteColor(FrameColorIndex(name)), 0.85,
               StrFormat("%s: %.4fs (%.1f%%)", name.c_str(), node.value,
                         share));
  if (w > 34) {
    const size_t max_chars = static_cast<size_t>((w - 8) / 6.2);
    const std::string label =
        name.size() > max_chars
            ? name.substr(0, max_chars > 2 ? max_chars - 2 : 0) + ".."
            : name;
    canvas->Text(x + 4, y + row_height - 6, label, 10, "start", "#222");
  }
  double child_x = x;
  for (const auto& [child_name, child] : node.children) {
    RenderFlameNode(canvas, child_name, child, child_x, depth + 1,
                    px_per_unit, row_height, top, total);
    child_x += child.value * px_per_unit;
  }
}

}  // namespace

std::string RenderFlameGraph(const FlameGraphSpec& spec) {
  FlameNode root;
  for (const auto& [stack, weight] : spec.stacks) {
    if (!Finite(weight) || weight <= 0.0 || stack.empty()) continue;
    root.value += weight;
    FlameNode* node = &root;
    for (const std::string& frame : Split(stack, ';')) {
      node = &node->children[frame.empty() ? std::string("(anon)") : frame];
      node->value += weight;
    }
  }
  if (root.value <= 0.0) {
    return Placeholder(spec.width, 120, spec.title);
  }
  const double row_height = spec.row_height > 4 ? spec.row_height : 18;
  const double top = 26;
  const double left = 8;
  const double plot_width = spec.width - left - 8;
  const int rows = 1 + FlameDepth(root);  // + synthetic root row
  Canvas canvas(spec.width, top + rows * row_height + 8);
  canvas.Text(10, 17, spec.title, 13, "start", "#111");
  RenderFlameNode(&canvas, spec.root_label, root, left, 0,
                  plot_width / root.value, row_height, top, root.value);
  return canvas.Finish();
}

}  // namespace svg
}  // namespace obs
}  // namespace pdsp
