// Reactive autoscaling (DS2-style [35]): start a saturated pipeline at
// parallelism 1, let the controller measure per-instance utilization and
// re-derive degrees until the assignment stabilizes, and watch the latency
// collapse — the closed-loop counterpart of the rule-based enumerator.
//
//   ./build/examples/autoscaling

#include <cstdio>

#include "src/harness/synthetic_suite.h"
#include "src/workload/autoscaler.h"

using namespace pdsp;  // NOLINT — example brevity

int main() {
  CanonicalOptions query;
  query.event_rate = 180000.0;
  query.parallelism = 1;  // deliberately under-provisioned
  auto plan = MakeCanonicalSynthetic(SyntheticStructure::kTwoWayJoin, query);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("autoscaling a 2-way join at 180k ev/s per source, starting "
              "at parallelism 1\n\n");

  AutoscalerOptions options;
  options.target_utilization = 0.6;
  options.max_iterations = 8;
  options.max_degree = 64;
  options.execution.sim.duration_s = 3.0;
  options.execution.sim.warmup_s = 0.75;

  auto result = Autoscale(*plan, Cluster::M510(10), options);
  if (!result.ok()) {
    std::fprintf(stderr, "autoscale: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %-28s %-12s %-10s\n", "step", "degrees (per operator)",
              "p50 latency", "max util");
  for (size_t i = 0; i < result->steps.size(); ++i) {
    const AutoscaleStep& step = result->steps[i];
    std::string degrees;
    for (size_t op = 0; op < step.degrees.size(); ++op) {
      if (op > 0) degrees += ",";
      degrees += std::to_string(step.degrees[op]);
    }
    std::printf("%-6zu %-28s %8.1f ms  %8.2f\n", i, degrees.c_str(),
                step.median_latency_s * 1e3, step.max_utilization);
  }
  std::printf("\n%s after %zu steps; final p50 %.1f ms\n",
              result->converged ? "converged" : "stopped",
              result->steps.size(), result->final_latency_s * 1e3);
  return 0;
}
