#include "src/query/builder.h"

#include "src/analysis/analyzer.h"

namespace pdsp {

PlanBuilder::OpId PlanBuilder::Add(OperatorDescriptor op,
                                   std::vector<OpId> inputs) {
  if (!status_.ok()) return -1;
  auto id = plan_.AddOperator(std::move(op));
  if (!id.ok()) {
    status_ = id.status();
    return -1;
  }
  for (OpId input : inputs) {
    if (input < 0) {
      status_ = Status::InvalidArgument("input refers to a failed operator");
      return -1;
    }
    Status st = plan_.Connect(input, *id);
    if (!st.ok()) {
      status_ = st;
      return -1;
    }
  }
  return *id;
}

PlanBuilder::OpId PlanBuilder::Source(const std::string& name,
                                      StreamSpec stream,
                                      ArrivalProcess::Options arrival,
                                      int parallelism) {
  if (!status_.ok()) return -1;
  OperatorDescriptor op;
  op.type = OperatorType::kSource;
  op.name = name;
  op.parallelism = parallelism;
  op.source_index =
      plan_.AddSource({std::move(stream), arrival});
  return Add(std::move(op), {});
}

PlanBuilder::OpId PlanBuilder::Filter(const std::string& name, OpId input,
                                      size_t field, FilterOp fop,
                                      Value literal, int parallelism) {
  OperatorDescriptor op;
  op.type = OperatorType::kFilter;
  op.name = name;
  op.parallelism = parallelism;
  op.filter_field = field;
  op.filter_op = fop;
  op.filter_literal = std::move(literal);
  return Add(std::move(op), {input});
}

PlanBuilder::OpId PlanBuilder::Map(const std::string& name, OpId input,
                                   int parallelism) {
  OperatorDescriptor op;
  op.type = OperatorType::kMap;
  op.name = name;
  op.parallelism = parallelism;
  return Add(std::move(op), {input});
}

PlanBuilder::OpId PlanBuilder::FlatMap(const std::string& name, OpId input,
                                       double fanout, int parallelism) {
  OperatorDescriptor op;
  op.type = OperatorType::kFlatMap;
  op.name = name;
  op.parallelism = parallelism;
  op.flatmap_fanout = fanout;
  return Add(std::move(op), {input});
}

PlanBuilder::OpId PlanBuilder::WindowAggregate(const std::string& name,
                                               OpId input, WindowSpec window,
                                               AggregateFn fn,
                                               size_t agg_field,
                                               size_t key_field,
                                               int parallelism) {
  OperatorDescriptor op;
  op.type = OperatorType::kWindowAggregate;
  op.name = name;
  op.parallelism = parallelism;
  op.window = window;
  op.agg_fn = fn;
  op.agg_field = agg_field;
  op.key_field = key_field;
  return Add(std::move(op), {input});
}

PlanBuilder::OpId PlanBuilder::WindowJoin(const std::string& name, OpId left,
                                          OpId right, size_t left_key,
                                          size_t right_key, WindowSpec window,
                                          int parallelism) {
  OperatorDescriptor op;
  op.type = OperatorType::kWindowJoin;
  op.name = name;
  op.parallelism = parallelism;
  op.window = window;
  op.join_left_key = left_key;
  op.join_right_key = right_key;
  return Add(std::move(op), {left, right});
}

PlanBuilder::OpId PlanBuilder::Udo(const std::string& name, OpId input,
                                   const std::string& kind, double cost_factor,
                                   double selectivity, bool stateful,
                                   int parallelism) {
  OperatorDescriptor op;
  op.type = OperatorType::kUdo;
  op.name = name;
  op.parallelism = parallelism;
  op.udo_kind = kind;
  op.udo_cost_factor = cost_factor;
  op.udo_selectivity = selectivity;
  op.udo_stateful = stateful;
  return Add(std::move(op), {input});
}

PlanBuilder::OpId PlanBuilder::UdoWithSchema(
    const std::string& name, OpId input, const std::string& kind,
    std::vector<Field> out_fields, double cost_factor, double selectivity,
    bool stateful, int parallelism) {
  OperatorDescriptor op;
  op.type = OperatorType::kUdo;
  op.name = name;
  op.parallelism = parallelism;
  op.udo_kind = kind;
  op.udo_cost_factor = cost_factor;
  op.udo_selectivity = selectivity;
  op.udo_stateful = stateful;
  op.udo_output_fields = std::move(out_fields);
  return Add(std::move(op), {input});
}

PlanBuilder::OpId PlanBuilder::Sink(const std::string& name, OpId input,
                                    int parallelism) {
  OperatorDescriptor op;
  op.type = OperatorType::kSink;
  op.name = name;
  op.parallelism = parallelism;
  return Add(std::move(op), {input});
}

PlanBuilder& PlanBuilder::WithPartitioning(OpId id,
                                           Partitioning partitioning) {
  if (status_.ok() && id >= 0 &&
      id < static_cast<OpId>(plan_.NumOperators())) {
    plan_.mutable_op(id)->input_partitioning = partitioning;
  }
  return *this;
}

PlanBuilder& PlanBuilder::WithSelectivityHint(OpId id, double selectivity) {
  if (status_.ok() && id >= 0 &&
      id < static_cast<OpId>(plan_.NumOperators())) {
    plan_.mutable_op(id)->selectivity_hint = selectivity;
  }
  return *this;
}

PlanBuilder& PlanBuilder::ConnectExtra(OpId from, OpId to) {
  if (status_.ok()) {
    Status st = plan_.Connect(from, to);
    if (!st.ok()) status_ = st;
  }
  return *this;
}

PlanBuilder& PlanBuilder::SkipAnalysis() {
  analyze_ = false;
  return *this;
}

Result<LogicalPlan> PlanBuilder::Build() {
  PDSP_RETURN_NOT_OK(status_);
  PDSP_RETURN_NOT_OK(plan_.Validate());
  if (analyze_) {
    PDSP_RETURN_NOT_OK(analysis::CheckPlan(plan_));
  }
  return std::move(plan_);
}

}  // namespace pdsp
