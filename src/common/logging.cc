#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "src/common/thread_annotations.h"

namespace pdsp {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

LogLevel InitialLevel() {
  const char* env = std::getenv("PDSP_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr && !ParseLogLevel(env, &level)) {
    std::fprintf(stderr, "[WARN logging] unrecognized PDSP_LOG_LEVEL=%s\n",
                 env);
  }
  return level;
}

std::atomic<LogLevel>& GlobalLevel() {
  static std::atomic<LogLevel> level{InitialLevel()};
  return level;
}

Mutex& LogMutex() PDSP_RETURN_CAPABILITY(mu) {
  static Mutex mu;
  return mu;
}

}  // namespace

void SetLogLevel(LogLevel level) { GlobalLevel().store(level); }
LogLevel GetLogLevel() { return GlobalLevel().load(); }

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    *level = LogLevel::kWarn;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (level < GetLogLevel()) return;

  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d %H:%M:%S", &tm_buf);

  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "[%s.%03d %s %s:%d] ", stamp,
                static_cast<int>(millis), LevelName(level), Basename(file),
                line);
  std::string out;
  out.reserve(std::strlen(prefix) + msg.size() + 1);
  out += prefix;
  out += msg;
  out += '\n';

  MutexLock lock(LogMutex());
  std::fwrite(out.data(), 1, out.size(), stderr);
}

}  // namespace pdsp
