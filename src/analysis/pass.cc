#include "src/analysis/pass.h"

#include <queue>

#include "src/analysis/properties.h"

namespace pdsp {
namespace analysis {

namespace {

// Tolerant schema derivation: mirrors LogicalPlan::DeriveSchemas but marks
// underivable schemas unknown instead of aborting, so downstream passes can
// still check everything that *is* derivable.
void DeriveSchemasTolerant(AnalysisContext* ctx) {
  const LogicalPlan& plan = *ctx->plan;
  const size_t n = plan.NumOperators();
  ctx->schemas.assign(n, Schema());
  ctx->schema_known.assign(n, false);
  for (const LogicalPlan::OpId id : ctx->topo) {
    const OperatorDescriptor& op = plan.op(id);
    const std::vector<LogicalPlan::OpId>& in = ctx->inputs[id];
    auto known = [&](size_t port) {
      return in.size() > port && ctx->schema_known[in[port]];
    };
    switch (op.type) {
      case OperatorType::kSource:
        if (op.source_index >= 0 &&
            op.source_index < static_cast<int>(plan.sources().size())) {
          ctx->schemas[id] =
              plan.sources()[op.source_index].stream.schema;
          ctx->schema_known[id] = true;
        }
        break;
      case OperatorType::kFilter:
      case OperatorType::kMap:
      case OperatorType::kFlatMap:
      case OperatorType::kSink:
        if (known(0)) {
          ctx->schemas[id] = ctx->schemas[in[0]];
          ctx->schema_known[id] = true;
        }
        break;
      case OperatorType::kUdo:
        if (!op.udo_output_fields.empty()) {
          ctx->schemas[id] = Schema(op.udo_output_fields);
          ctx->schema_known[id] = true;
        } else if (known(0)) {
          ctx->schemas[id] = ctx->schemas[in[0]];
          ctx->schema_known[id] = true;
        }
        break;
      case OperatorType::kWindowAggregate: {
        if (!known(0)) break;
        const Schema& s = ctx->schemas[in[0]];
        if (op.agg_field >= s.NumFields()) break;
        Schema out;
        if (op.key_field != OperatorDescriptor::kNoKey) {
          if (op.key_field >= s.NumFields()) break;
          (void)out.AddField({"key", s.field(op.key_field).type});
        }
        (void)out.AddField({"agg", DataType::kDouble});
        ctx->schemas[id] = std::move(out);
        ctx->schema_known[id] = true;
        break;
      }
      case OperatorType::kWindowJoin: {
        if (!known(0) || !known(1)) break;
        const Schema& l = ctx->schemas[in[0]];
        const Schema& r = ctx->schemas[in[1]];
        Schema out;
        for (size_t i = 0; i < l.NumFields(); ++i) {
          (void)out.AddField({"l_" + l.field(i).name, l.field(i).type});
        }
        for (size_t i = 0; i < r.NumFields(); ++i) {
          (void)out.AddField({"r_" + r.field(i).name, r.field(i).type});
        }
        ctx->schemas[id] = std::move(out);
        ctx->schema_known[id] = true;
        break;
      }
    }
  }
}

}  // namespace

AnalysisContext AnalysisContext::Make(const LogicalPlan& plan,
                                      const Cluster* cluster) {
  AnalysisContext ctx;
  ctx.plan = &plan;
  ctx.cluster = cluster;

  const size_t n = plan.NumOperators();
  ctx.inputs.assign(n, {});
  ctx.outputs.assign(n, {});
  for (const auto& [f, t] : plan.edges()) {
    if (f < 0 || t < 0 || static_cast<size_t>(f) >= n ||
        static_cast<size_t>(t) >= n) {
      continue;  // LogicalPlan::Connect prevents this; stay defensive.
    }
    ctx.outputs[f].push_back(t);
    ctx.inputs[t].push_back(f);
  }

  // Kahn's algorithm; a cycle leaves topo short and acyclic false.
  std::vector<int> in_degree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    in_degree[i] = static_cast<int>(ctx.inputs[i].size());
  }
  std::queue<LogicalPlan::OpId> ready;
  for (size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) ready.push(static_cast<LogicalPlan::OpId>(i));
  }
  while (!ready.empty()) {
    const LogicalPlan::OpId id = ready.front();
    ready.pop();
    ctx.topo.push_back(id);
    for (const LogicalPlan::OpId down : ctx.outputs[id]) {
      if (--in_degree[down] == 0) ready.push(down);
    }
  }
  ctx.acyclic = ctx.topo.size() == n;
  if (!ctx.acyclic) ctx.topo.clear();

  DeriveSchemasTolerant(&ctx);
  ctx.props =
      std::make_shared<const PlanProperties>(ComputePlanProperties(ctx));
  return ctx;
}

Diagnostic AnalysisPass::MakeDiag(Severity severity, std::string code,
                                  const AnalysisContext& ctx,
                                  LogicalPlan::OpId op, std::string message,
                                  std::string hint) const {
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.pass = name();
  d.op = op;
  if (op >= 0 && static_cast<size_t>(op) < ctx.NumOps()) {
    d.op_name = ctx.op(op).name;
  }
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

Status PassRegistry::Register(std::unique_ptr<AnalysisPass> pass) {
  if (pass == nullptr) return Status::InvalidArgument("null pass");
  if (Has(pass->name())) {
    return Status::AlreadyExists(std::string("duplicate pass '") +
                                 pass->name() + "'");
  }
  passes_.push_back({std::move(pass), true});
  return Status::OK();
}

Status PassRegistry::SetEnabled(const std::string& name, bool enabled) {
  for (Entry& e : passes_) {
    if (e.pass->name() == name) {
      e.enabled = enabled;
      return Status::OK();
    }
  }
  return Status::NotFound("no pass named '" + name + "'");
}

bool PassRegistry::IsEnabled(const std::string& name) const {
  for (const Entry& e : passes_) {
    if (e.pass->name() == name) return e.enabled;
  }
  return false;
}

bool PassRegistry::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

std::vector<std::string> PassRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const Entry& e : passes_) names.emplace_back(e.pass->name());
  return names;
}

const AnalysisPass* PassRegistry::Find(const std::string& name) const {
  for (const Entry& e : passes_) {
    if (e.pass->name() == name) return e.pass.get();
  }
  return nullptr;
}

AnalysisReport PassRegistry::RunAll(const AnalysisContext& ctx) const {
  AnalysisReport report;
  std::vector<Diagnostic> found;
  for (const Entry& e : passes_) {
    if (!e.enabled) continue;
    if (e.pass->needs_cluster() && ctx.cluster == nullptr) continue;
    found.clear();
    e.pass->Run(ctx, &found);
    for (Diagnostic& d : found) report.Add(std::move(d));
  }
  report.Finalize();
  return report;
}

}  // namespace analysis
}  // namespace pdsp
