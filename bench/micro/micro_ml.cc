// Microbenchmarks for the learned cost models: single-plan inference cost
// per model family and one Adam training step, plus the feature encoders.

#include <benchmark/benchmark.h>

#include <cmath>

#include "src/ml/features.h"
#include "src/ml/models.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

Dataset TinyDataset(size_t n) {
  Rng rng(3);
  auto plan = testing::TwoWayJoinPlan(5000.0, 4);
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    auto sample = EncodeSample(*plan, Cluster::M510(10),
                               0.05 + rng.Uniform(0.0, 1.0),
                               static_cast<int>(i % 3));
    data.samples.push_back(std::move(*sample));
  }
  return data;
}

void BM_EncodeFlat(benchmark::State& state) {
  auto plan = testing::TwoWayJoinPlan(5000.0, 4);
  const Cluster cluster = Cluster::M510(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeFlat(*plan, cluster));
  }
}
BENCHMARK(BM_EncodeFlat);

void BM_EncodeGraph(benchmark::State& state) {
  auto plan = testing::TwoWayJoinPlan(5000.0, 4);
  const Cluster cluster = Cluster::M510(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeGraph(*plan, cluster));
  }
}
BENCHMARK(BM_EncodeGraph);

template <typename ModelT>
void BM_Predict(benchmark::State& state) {
  Dataset data = TinyDataset(64);
  ModelT model;
  TrainOptions opt;
  opt.max_epochs = 5;
  Dataset val;
  val.samples.assign(data.samples.begin(), data.samples.begin() + 8);
  if (!model.Fit(data, val, opt).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictLatency(data.samples[0]));
  }
}
BENCHMARK(BM_Predict<LinearRegressionModel>);
BENCHMARK(BM_Predict<MlpModel>);
BENCHMARK(BM_Predict<RandomForestModel>);
BENCHMARK(BM_Predict<GnnModel>);

template <typename ModelT>
void BM_FitEpoch(benchmark::State& state) {
  Dataset data = TinyDataset(64);
  Dataset val;
  val.samples.assign(data.samples.begin(), data.samples.begin() + 8);
  for (auto _ : state) {
    ModelT model;
    TrainOptions opt;
    opt.max_epochs = 1;
    benchmark::DoNotOptimize(model.Fit(data, val, opt));
  }
}
BENCHMARK(BM_FitEpoch<MlpModel>);
BENCHMARK(BM_FitEpoch<GnnModel>);

}  // namespace
}  // namespace pdsp
