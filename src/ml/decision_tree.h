// CART regression trees shared by the random forest and gradient-boosted
// models: variance-reduction splits with per-split feature subsampling,
// depth and leaf-size limits.

#ifndef PDSP_ML_DECISION_TREE_H_
#define PDSP_ML_DECISION_TREE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/ml/linalg.h"

namespace pdsp {

/// \brief One node of a flat-array regression tree.
struct TreeNode {
  int feature = -1;  ///< -1 = leaf
  double threshold = 0.0;
  double value = 0.0;  ///< leaf prediction
  int left = -1;
  int right = -1;
};

/// \brief A fitted regression tree.
struct RegressionTree {
  std::vector<TreeNode> nodes;

  double Predict(const Vector& x) const {
    int cur = 0;
    while (nodes[cur].feature >= 0) {
      cur = x[static_cast<size_t>(nodes[cur].feature)] <=
                    nodes[cur].threshold
                ? nodes[cur].left
                : nodes[cur].right;
    }
    return nodes[cur].value;
  }
};

/// \brief Growth limits.
struct TreeOptions {
  int max_depth = 12;
  int min_leaf = 3;
  /// Fraction of features considered per split.
  double feature_fraction = 0.6;
};

/// Fits a tree on (xs[idx], ys[idx]) with variance-reduction splits.
RegressionTree FitRegressionTree(const std::vector<Vector>& xs,
                                 const std::vector<double>& ys,
                                 std::vector<int> idx,
                                 const TreeOptions& options, Rng* rng);

}  // namespace pdsp

#endif  // PDSP_ML_DECISION_TREE_H_
