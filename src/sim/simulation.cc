#include "src/sim/simulation.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <queue>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/data/arrival.h"
#include "src/data/batch.h"
#include "src/data/generator.h"
#include "src/obs/mem.h"
#include "src/obs/prof.h"
#include "src/query/batch_layout.h"
#include "src/runtime/kernels.h"
#include "src/runtime/operators.h"

namespace pdsp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class EventKind { kSourceBatch, kDelivery, kReady };

struct Batch {
  /// Payload rows in columnar form (schema-specialized per sending edge).
  data::Batch rows;
  int input_port = 0;
  /// Delivered over a chained forward channel: the receiver charges no
  /// framing overhead (same-thread call, as in Flink operator chains).
  bool chained = false;
  /// Sender task (watermark channel identity); -1 for none.
  int from_task = -1;
  /// Event-time watermark of the sender when this batch left it. Applied at
  /// processing time (after all earlier batches on the same channel).
  double watermark = -kInf;
};

struct Event {
  double time = 0.0;
  int64_t seq = 0;
  EventKind kind = EventKind::kReady;
  int task = 0;
  std::shared_ptr<Batch> batch;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;  // FIFO tie-break for determinism
  }
};

// Simulator internals for one run.
class Engine {
 public:
  Engine(const PhysicalPlan& plan, const Cluster& cluster,
         const Placement& placement, const CostModel& costs,
         const SimOptions& options)
      : plan_(plan),
        cluster_(cluster),
        placement_(placement),
        costs_(costs),
        options_(options) {}

  Result<SimResult> Run();

 private:
  struct TaskState {
    std::unique_ptr<OperatorInstance> instance;  // null for sources
    std::deque<std::shared_ptr<Batch>> queue;
    size_t queued_tuples = 0;
    double busy_until = 0.0;
    // Event-time watermarks: per-upstream-task watermark, the min over them
    // (this task's input watermark, which gates window firing), and when we
    // last broadcast our own watermark downstream.
    std::map<int, double> channel_wm;
    double input_wm = -kInf;
    double last_wm_broadcast = -kInf;
    // Per-outgoing-channel-group round-robin cursors (rebalance).
    std::vector<size_t> rr_cursor;
    // Source-only state.
    std::unique_ptr<TupleGenerator> generator;
    std::unique_ptr<ArrivalProcess> arrival;
    double batch_interval = 0.01;
    Rng rng{1};
    // Stats.
    double busy_time = 0.0;
    int64_t tuples_in = 0;
    int64_t tuples_out = 0;
    size_t max_queue_tuples = 0;
  };

  struct PlannedDelivery {
    double delay = 0.0;  // relative to sender completion
    int dest_task = 0;
    std::shared_ptr<Batch> batch;
  };

  Status SetUpTasks();
  void Push(double time, EventKind kind, int task,
            std::shared_ptr<Batch> batch = nullptr);
  double TaskSpeed(int task) const;

  /// Appends one time-series row per task at virtual time `t` (rates and
  /// utilization over the elapsed time since the previous sample — the last
  /// end-of-run sample may cover a partial interval).
  void SampleTimeSeries(double t);
  /// Verbose tracing: one virtual-time complete event for a firing of
  /// `task` spanning [start, start+duration).
  void TraceFiring(int task, double start, double duration, size_t tuples);

  /// Runs the instance on a batch or on due timers; routes outputs; returns
  /// the service time charged.
  Status ProcessOne(int task, double now);

  /// Starts work on `task` if it is idle and has something to do.
  void MaybeStart(int task, double now);

  /// Splits outputs into per-destination sub-batches, adds the send-side
  /// costs to *cost, and fills *deliveries with (delay, dest, batch).
  /// Hash partitioning runs the columnar partition kernel (hash the key
  /// column once, scatter row indices, gather each destination's rows in
  /// one pass); rebalance and forward reduce to index arithmetic plus a
  /// range copy. Destination order and per-destination row order match the
  /// scalar per-element router exactly. Every sub-batch carries
  /// `sender_wm`; when `broadcast_wm` is set, destinations that received no
  /// data still get a watermark-only batch (Flink's periodic watermark
  /// emission).
  void RouteOutputs(int task, const data::Batch& outputs, double sender_wm,
                    bool broadcast_wm, double* cost,
                    std::vector<PlannedDelivery>* deliveries);

  /// Applies a processed batch's watermark to its channel and recomputes the
  /// task's input watermark.
  void ApplyWatermark(TaskState* state, const Batch& batch);
  void DispatchDeliveries(int task, double completion,
                          std::vector<PlannedDelivery>* deliveries);
  void EmitSourceBatch(int task, double now);

  // --- latency attribution -----------------------------------------------
  // Every virtual-time interval an element lives through is charged to
  // exactly one LatencyAttr component, so sink-side components telescope to
  // the recorded end-to-end latency. Gated behind
  // SimOptions::attribute_latency (charging walks every element several
  // times per hop). Charges happen at four points: batch
  // dispatch (source-batching at sources, service elsewhere), delivery
  // (network transit), dequeue (queue wait) and state emergence (window
  // residency, detected by a stale attribution cursor).

  /// Advances each outgoing element's cursor to `completion`, charging the
  /// gap to source-batching (sources) or service (operators).
  void ChargeDispatch(LogicalPlan::OpId op, double completion,
                      bool is_source,
                      std::vector<PlannedDelivery>* deliveries);
  /// Charges `now - cursor` to network transit for a just-delivered batch.
  void ChargeNetwork(LogicalPlan::OpId op, double now, Batch* batch);
  /// Charges `now - cursor` to queue wait for a just-dequeued batch.
  void ChargeQueueWait(LogicalPlan::OpId op, double now, Batch* batch);
  /// Charges window/join-state residency for outputs whose cursor predates
  /// `now` (they emerged from operator state rather than this batch).
  void ChargeWindowResidency(LogicalPlan::OpId op, double now,
                             const data::Batch& outputs);
  /// Allocates an attribution record with its cursor at `birth`; returns
  /// kNoAttr once the pool cap is reached (the tail of an extreme run goes
  /// untracked rather than exhausting memory).
  uint32_t NewAttr(double birth);

  const PhysicalPlan& plan_;
  const Cluster& cluster_;
  const Placement& placement_;
  const CostModel& costs_;
  const SimOptions& options_;

  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  int64_t seq_ = 0;
  std::vector<TaskState> tasks_;
  std::vector<std::vector<ChannelGroup>> out_channels_;  // per op
  // Columnar layout each operator's output batches use, indexed by op id.
  std::vector<data::BatchLayout> out_layouts_;
  // Routing scratch (per-destination row selections), reused across firings.
  std::vector<data::SelectionVector> parts_;
  int64_t pending_tuples_ = 0;
  int64_t events_processed_ = 0;
  Status run_error_ = Status::OK();
  SimResult result_;
  // Observability. Counter handles are cached so hot-path updates are one
  // relaxed atomic add; time-series rates diff against the previous sample.
  obs::Counter* ctr_source_tuples_ = nullptr;
  obs::Counter* ctr_sink_tuples_ = nullptr;
  obs::Counter* ctr_bp_skipped_ = nullptr;
  obs::Counter* ctr_data_batches_ = nullptr;
  obs::Counter* ctr_data_rows_ = nullptr;
  obs::Counter* ctr_data_promotions_ = nullptr;
  obs::HistogramMetric* hist_sink_latency_ = nullptr;
  std::vector<double> prev_busy_time_;
  std::vector<int64_t> prev_tuples_in_;
  std::vector<int64_t> prev_tuples_out_;
  double prev_sample_time_ = 0.0;
  bool trace_verbose_ = false;
  bool attribute_ = false;
  bool bp_active_ = false;
  // CPU-profiler marker ids, pre-interned at Run() start and only when a
  // profiler is active (empty otherwise). A ProfScope with id 0 is a no-op,
  // so the per-firing cost with profiling off stays one relaxed load and a
  // branch per scope.
  std::vector<uint32_t> op_marker_ids_;
  uint32_t kernel_fire_id_ = 0;
  uint32_t kernel_process_id_ = 0;
  uint32_t kernel_partition_id_ = 0;

  uint32_t OpMarkerId(LogicalPlan::OpId op) const {
    const auto i = static_cast<size_t>(op);
    return i < op_marker_ids_.size() ? op_marker_ids_[i] : 0u;
  }
  // Per-logical-operator latency-component accumulators (moved into
  // OperatorRunStats::latency at aggregation time).
  std::vector<OperatorLatencyStats> op_latency_;
  // Attribution records, one per tracked source element; derived elements
  // share their earliest contributor's record (StreamElement::attr_id).
  // Kept engine-side so elements stay small when attribution is off.
  static constexpr size_t kAttrPoolCap = 4'000'000;
  std::vector<LatencyAttr> attr_pool_;
  // Sink-side breakdown sums over post-warm-up records.
  LatencyAttr bd_sum_;
  double bd_total_ = 0.0;
  int64_t bd_n_ = 0;
};

Status Engine::SetUpTasks() {
  tasks_.resize(plan_.NumTasks());
  out_channels_.resize(plan_.logical().NumOperators());
  for (size_t op = 0; op < plan_.logical().NumOperators(); ++op) {
    out_channels_[op] = plan_.ChannelsFrom(static_cast<LogicalPlan::OpId>(op));
  }
  PDSP_ASSIGN_OR_RETURN(out_layouts_, DeriveBatchLayouts(plan_.logical()));
  Rng master(options_.seed);
  for (size_t t = 0; t < plan_.NumTasks(); ++t) {
    const PhysicalTask& pt = plan_.task(static_cast<int>(t));
    const OperatorDescriptor& op = plan_.logical().op(pt.op);
    TaskState& state = tasks_[t];
    state.rr_cursor.assign(out_channels_[pt.op].size(), 0);
    state.rng = master.Fork(t + 1);
    if (op.type == OperatorType::kSource) {
      const SourceBinding& binding =
          plan_.logical().sources()[op.source_index];
      ArrivalProcess::Options arr = binding.arrival;
      arr.rate = std::max(1e-9, arr.rate / op.parallelism);
      PDSP_ASSIGN_OR_RETURN(auto arrival, ArrivalProcess::Create(arr));
      state.arrival = std::make_unique<ArrivalProcess>(arrival);
      PDSP_ASSIGN_OR_RETURN(
          auto gen, TupleGenerator::Create(binding.stream.schema,
                                           binding.stream.specs,
                                           options_.seed * 977 + t));
      state.generator = std::make_unique<TupleGenerator>(std::move(gen));
      state.batch_interval = options_.source_batch_interval_s;
      Push(0.0, EventKind::kSourceBatch, static_cast<int>(t));
    } else {
      PDSP_ASSIGN_OR_RETURN(
          auto inst, CreateOperatorInstance(plan_.logical(), pt.op,
                                            pt.instance,
                                            options_.seed * 31 + t));
      state.instance = std::move(inst);
    }
  }
  if (trace_verbose_) {
    // Name virtual-timeline rows "op[instance]" so Perfetto shows per-task
    // lanes instead of bare tids.
    for (size_t t = 0; t < plan_.NumTasks(); ++t) {
      const PhysicalTask& pt = plan_.task(static_cast<int>(t));
      options_.tracer->SetThreadName(
          obs::kVirtualPid, static_cast<int>(t),
          StrFormat("%s[%d]", plan_.logical().op(pt.op).name.c_str(),
                    pt.instance));
    }
  }
  // Watermark channels: every task knows all upstream tasks so the input
  // watermark is the min over the full channel set from the start.
  for (const ChannelGroup& g : plan_.channels()) {
    const int p_from = plan_.ParallelismOf(g.from_op);
    const int p_to = plan_.ParallelismOf(g.to_op);
    for (int d = 0; d < p_to; ++d) {
      TaskState& dest = tasks_[plan_.TaskId(g.to_op, d)];
      if (g.mode == Partitioning::kForward) {
        dest.channel_wm[plan_.TaskId(g.from_op, d)] = -kInf;
      } else {
        for (int u = 0; u < p_from; ++u) {
          dest.channel_wm[plan_.TaskId(g.from_op, u)] = -kInf;
        }
      }
    }
  }
  return Status::OK();
}

void Engine::Push(double time, EventKind kind, int task,
                  std::shared_ptr<Batch> batch) {
  Event e;
  e.time = time;
  e.seq = seq_++;
  e.kind = kind;
  e.task = task;
  e.batch = std::move(batch);
  heap_.push(std::move(e));
}

double Engine::TaskSpeed(int task) const {
  const int node_id = placement_.node_of_task[task];
  const Node& node = cluster_.node(node_id);
  const int colocated = placement_.tasks_per_node[node_id];
  const double contention =
      std::min(1.0, static_cast<double>(node.spec.cores) /
                        std::max(1, colocated));
  return std::max(1e-6, node.effective_speed * contention);
}

void Engine::ApplyWatermark(TaskState* state, const Batch& batch) {
  if (batch.from_task < 0) return;
  auto it = state->channel_wm.find(batch.from_task);
  if (it == state->channel_wm.end()) return;
  if (batch.watermark <= it->second) return;
  it->second = batch.watermark;
  double min_wm = kInf;
  for (const auto& [from, wm] : state->channel_wm) {
    min_wm = std::min(min_wm, wm);
  }
  state->input_wm = min_wm;
}

void Engine::SampleTimeSeries(double t) {
  const double interval = t - prev_sample_time_;
  if (interval <= 0.0) return;
  prev_sample_time_ = t;
  const bool bp = pending_tuples_ > options_.max_in_flight_tuples;
  for (size_t task = 0; task < tasks_.size(); ++task) {
    const TaskState& state = tasks_[task];
    const PhysicalTask& pt = plan_.task(static_cast<int>(task));
    obs::TimeSeriesRow row;
    row.time_s = t;
    row.task = static_cast<int>(task);
    row.op = plan_.logical().op(pt.op).name;
    row.instance = pt.instance;
    row.queue_tuples = static_cast<int64_t>(state.queued_tuples);
    // Busy time is charged when service starts, so a long firing can exceed
    // the interval; clamp to a fraction.
    row.utilization = std::clamp(
        (state.busy_time - prev_busy_time_[task]) / interval, 0.0, 1.0);
    row.in_rate_tps =
        static_cast<double>(state.tuples_in - prev_tuples_in_[task]) /
        interval;
    row.out_rate_tps =
        static_cast<double>(state.tuples_out - prev_tuples_out_[task]) /
        interval;
    if (state.input_wm >= kInf) {
      row.watermark_lag_s = 0.0;  // end-of-stream watermark
    } else if (state.input_wm <= -kInf) {
      row.watermark_lag_s = t;  // no watermark received yet
    } else {
      row.watermark_lag_s = std::max(0.0, t - state.input_wm);
    }
    row.in_flight_tuples = pending_tuples_;
    row.backpressure = bp;
    prev_busy_time_[task] = state.busy_time;
    prev_tuples_in_[task] = state.tuples_in;
    prev_tuples_out_[task] = state.tuples_out;
    result_.timeseries.Append(std::move(row));
  }
  if (options_.tracer != nullptr) {
    options_.tracer->AddCounter("pdsp.sim.in_flight_tuples", t * 1e6,
                                static_cast<double>(pending_tuples_));
  }
}

void Engine::TraceFiring(int task, double start, double duration,
                         size_t tuples) {
  const PhysicalTask& pt = plan_.task(task);
  std::vector<obs::TraceEvent::Arg> args;
  args.push_back({"tuples", "", static_cast<double>(tuples), true});
  options_.tracer->AddComplete(plan_.logical().op(pt.op).name, "firing",
                               start * 1e6, duration * 1e6, obs::kVirtualPid,
                               task, std::move(args));
}

void Engine::RouteOutputs(int task, const data::Batch& outputs,
                          double sender_wm, bool broadcast_wm, double* cost,
                          std::vector<PlannedDelivery>* deliveries) {
  const size_t n = outputs.NumRows();
  if (n == 0 && !broadcast_wm) return;
  TaskState& state = tasks_[task];
  const PhysicalTask& pt = plan_.task(task);
  const auto& groups = out_channels_[pt.op];
  const int src_node = placement_.node_of_task[task];

  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const ChannelGroup& g = groups[gi];
    const int p_dest = plan_.ParallelismOf(g.to_op);
    const size_t key_field = plan_.PartitionKeyField(g.to_op, g.input_port);
    std::vector<std::shared_ptr<Batch>> sub(p_dest);
    auto sub_batch = [&](int d) -> Batch& {
      if (!sub[d]) {
        sub[d] = std::make_shared<Batch>();
        sub[d]->rows = data::Batch(outputs.layout());
        sub[d]->input_port = g.input_port;
      }
      return *sub[d];
    };
    if (n > 0) {
      switch (g.mode) {
        case Partitioning::kForward:
          sub_batch(pt.instance).rows.AppendRange(outputs, 0, n);
          break;
        case Partitioning::kRebalance: {
          // Row i goes to (cursor + i) % p — the scalar router's
          // per-element round robin, batched.
          parts_.clear();
          parts_.resize(static_cast<size_t>(p_dest));
          const size_t cursor = state.rr_cursor[gi];
          for (size_t i = 0; i < n; ++i) {
            parts_[(cursor + i) % static_cast<size_t>(p_dest)].push_back(
                static_cast<uint32_t>(i));
          }
          state.rr_cursor[gi] += n;
          for (int d = 0; d < p_dest; ++d) {
            if (parts_[d].empty()) continue;
            sub_batch(d).rows.AppendGather(outputs, parts_[d]);
          }
          break;
        }
        case Partitioning::kHash: {
          obs::prof::ProfScope kernel_scope(obs::prof::FrameKind::kKernel,
                                            kernel_partition_id_);
          // The effective key field is batch-wide (fixed arity): fall back
          // to field 0 when the declared key is absent, and to destination
          // 0 for zero-arity tuples — exactly the scalar router's per-
          // element fallback.
          const size_t arity = outputs.NumColumns();
          const size_t f =
              key_field != OperatorDescriptor::kNoKey && key_field < arity
                  ? key_field
                  : 0;
          kernels::Partition(outputs, 0, n, f, p_dest, &parts_);
          for (int d = 0; d < p_dest; ++d) {
            if (parts_[d].empty()) continue;
            sub_batch(d).rows.AppendGather(outputs, parts_[d]);
          }
          break;
        }
      }
    }
    if (broadcast_wm) {
      // Watermark-only batches for destinations with no data this round.
      for (int d = 0; d < p_dest; ++d) {
        if (g.mode == Partitioning::kForward && d != pt.instance) continue;
        sub_batch(d);
      }
    }
    const bool chained =
        g.mode == Partitioning::kForward && costs_.chain_forward_channels;
    for (int d = 0; d < p_dest; ++d) {
      if (!sub[d]) continue;
      sub[d]->from_task = task;
      sub[d]->watermark = sender_wm;
      sub[d]->chained = chained;
      const size_t sub_rows = sub[d]->rows.NumRows();
      const int dest_task = plan_.TaskId(g.to_op, d);
      const int dest_node = placement_.node_of_task[dest_task];
      if (chained && dest_node == src_node) {
        // Same thread: no send cost, immediate delivery.
        state.tuples_out += static_cast<int64_t>(sub_rows);
        deliveries->push_back({0.0, dest_task, std::move(sub[d])});
        continue;
      }
      *cost += costs_.subbatch_send_overhead;
      double delay;
      if (dest_node == src_node) {
        delay = costs_.local_handoff_latency;
      } else {
        const size_t bytes = sub[d]->rows.WireSize(0, sub_rows);
        *cost += static_cast<double>(bytes) *
                 costs_.serialization_cost_per_byte;
        delay = cluster_.LinkLatencySeconds(src_node, dest_node) +
                static_cast<double>(bytes) /
                    cluster_.LinkBandwidthBytesPerSec(src_node, dest_node);
      }
      state.tuples_out += static_cast<int64_t>(sub_rows);
      deliveries->push_back({delay, dest_task, std::move(sub[d])});
    }
  }
}

void Engine::DispatchDeliveries(int task, double completion,
                                std::vector<PlannedDelivery>* deliveries) {
  (void)task;
  for (PlannedDelivery& d : *deliveries) {
    pending_tuples_ += static_cast<int64_t>(d.batch->rows.NumRows());
    Push(completion + d.delay, EventKind::kDelivery, d.dest_task,
         std::move(d.batch));
  }
  deliveries->clear();
  // Source backpressure caps generation, but mid-pipeline amplification
  // (join cascades) can still outrun it; fail cleanly before memory does.
  if (pending_tuples_ > 4 * options_.max_in_flight_tuples &&
      run_error_.ok()) {
    run_error_ = Status::ResourceExhausted(
        "mid-pipeline amplification exceeded 4x the in-flight tuple cap "
        "(join explosion)");
  }
}

uint32_t Engine::NewAttr(double birth) {
  if (attr_pool_.size() >= kAttrPoolCap) return kNoAttr;
  LatencyAttr a;
  a.accounted_until = birth;
  attr_pool_.push_back(a);
  return static_cast<uint32_t>(attr_pool_.size() - 1);
}

void Engine::ChargeDispatch(LogicalPlan::OpId op, double completion,
                            bool is_source,
                            std::vector<PlannedDelivery>* deliveries) {
  OperatorLatencyStats& acc = op_latency_[op];
  for (PlannedDelivery& d : *deliveries) {
    for (uint32_t attr : d.batch->rows.attr_ids()) {
      if (attr == kNoAttr) continue;
      LatencyAttr& a = attr_pool_[attr];
      const double delta = completion - a.accounted_until;
      a.accounted_until = completion;
      if (is_source) {
        a.source_batch_s += delta;
        acc.source_batch_sum_s += delta;
        ++acc.source_batch_n;
      } else {
        a.service_s += delta;
        acc.service_sum_s += delta;
        ++acc.service_n;
      }
    }
  }
}

void Engine::ChargeNetwork(LogicalPlan::OpId op, double now, Batch* batch) {
  OperatorLatencyStats& acc = op_latency_[op];
  for (uint32_t attr : batch->rows.attr_ids()) {
    if (attr == kNoAttr) continue;
    LatencyAttr& a = attr_pool_[attr];
    const double delta = now - a.accounted_until;
    a.network_s += delta;
    a.accounted_until = now;
    acc.network_in_sum_s += delta;
    ++acc.network_in_n;
  }
}

void Engine::ChargeQueueWait(LogicalPlan::OpId op, double now, Batch* batch) {
  OperatorLatencyStats& acc = op_latency_[op];
  for (uint32_t attr : batch->rows.attr_ids()) {
    if (attr == kNoAttr) continue;
    LatencyAttr& a = attr_pool_[attr];
    const double delta = now - a.accounted_until;
    a.queue_s += delta;
    a.accounted_until = now;
    acc.queue_wait_sum_s += delta;
    ++acc.queue_wait_n;
  }
}

void Engine::ChargeWindowResidency(LogicalPlan::OpId op, double now,
                                   const data::Batch& outputs) {
  OperatorLatencyStats& acc = op_latency_[op];
  for (uint32_t attr : outputs.attr_ids()) {
    if (attr == kNoAttr) continue;
    LatencyAttr& a = attr_pool_[attr];
    const double delta = now - a.accounted_until;
    if (delta <= 0.0) continue;  // fresh output of this firing, not state
    a.window_s += delta;
    a.accounted_until = now;
    acc.window_sum_s += delta;
    ++acc.window_n;
  }
}

void Engine::EmitSourceBatch(int task, double now) {
  TaskState& state = tasks_[task];
  const PhysicalTask& pt = plan_.task(task);
  const OperatorDescriptor& op = plan_.logical().op(pt.op);
  obs::prof::ProfScope op_scope(obs::prof::FrameKind::kOperator,
                                OpMarkerId(pt.op));
  const double dt = state.batch_interval;

  int64_t n = state.arrival->EventsInWindow(now, dt, &state.rng);
  const bool bp = pending_tuples_ > options_.max_in_flight_tuples;
  if (bp != bp_active_) {
    bp_active_ = bp;
    if (options_.tracer != nullptr) {
      options_.tracer->AddInstant(bp ? "backpressure_on" : "backpressure_off",
                                  "sim", now * 1e6, obs::kVirtualPid, task);
    }
  }
  if (bp) {
    result_.backpressure_skipped += n;
    ctr_bp_skipped_->Add(n);
    n = 0;
  }
  data::Batch outputs(out_layouts_[pt.op]);
  outputs.Reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double t_event =
        now + (static_cast<double>(i) + 0.5) * dt / static_cast<double>(n);
    // Charging starts at birth (== event time for raw source tuples).
    const uint32_t attr = attribute_ ? NewAttr(t_event) : kNoAttr;
    state.generator->AppendNext(t_event, t_event, attr, &outputs);
  }
  if (n > 0) {
    ctr_data_batches_->Add(1);
    ctr_data_rows_->Add(n);
  }
  result_.source_tuples += n;
  ctr_source_tuples_->Add(n);
  state.tuples_in += n;

  double cost = costs_.BatchCost(op) +
                static_cast<double>(n) * costs_.InputTupleCost(op);
  // Sources advance their own watermark to the end of the emitted interval;
  // the final batch carries the end-of-stream watermark (Flink emits
  // Long.MAX_VALUE on shutdown) so tail windows flush during drain.
  const bool last_batch = now + dt >= options_.duration_s;
  state.input_wm = last_batch ? kInf : now + dt;
  const bool broadcast_wm =
      last_batch ||
      now + dt - state.last_wm_broadcast >= options_.watermark_interval_s;
  if (broadcast_wm) state.last_wm_broadcast = now + dt;
  std::vector<PlannedDelivery> deliveries;
  RouteOutputs(task, outputs, state.input_wm, broadcast_wm, &cost,
               &deliveries);
  const double service = cost / TaskSpeed(task);
  // The batch becomes visible downstream when the source finishes producing
  // it; a source that cannot keep up (busy_until > now+dt) lags behind.
  const double completion = std::max(now + dt, state.busy_until) + service;
  state.busy_until = completion;
  state.busy_time += service;
  if (trace_verbose_) {
    TraceFiring(task, completion - service, service,
                static_cast<size_t>(n));
  }
  // Everything between birth and the batch shipping out — interval fill,
  // source lag and the source's own service — is source-batching time.
  if (attribute_) {
    ChargeDispatch(pt.op, completion, /*is_source=*/true, &deliveries);
  }
  DispatchDeliveries(task, completion, &deliveries);

  const double next = now + dt;
  if (next < options_.duration_s) {
    Push(next, EventKind::kSourceBatch, task);
  }
}

Status Engine::ProcessOne(int task, double now) {
  TaskState& state = tasks_[task];
  const PhysicalTask& pt = plan_.task(task);
  const OperatorDescriptor& op = plan_.logical().op(pt.op);
  obs::prof::ProfScope op_scope(obs::prof::FrameKind::kOperator,
                                OpMarkerId(pt.op));

  data::Batch outputs(out_layouts_[pt.op]);
  double cost = 0.0;
  bool timer_fire = false;
  size_t in_tuples = 0;

  const double next_timer = state.instance->NextTimerTime();
  if (next_timer < kInf && next_timer <= state.input_wm) {
    // The input watermark passed a window boundary: fire panes. Event-time
    // semantics — queueing delay anywhere upstream holds the watermark back
    // and therefore delays firing (and raises end-to-end latency).
    timer_fire = true;
    obs::prof::ProfScope kernel_scope(obs::prof::FrameKind::kKernel,
                                      kernel_fire_id_);
    std::vector<StreamElement> fired;
    state.instance->OnTimer(state.input_wm, &fired);
    for (const StreamElement& e : fired) {
      outputs.AppendTuple(e.tuple, e.birth, e.attr_id);
    }
    cost = costs_.BatchCost(op);
  } else {
    obs::prof::ProfScope kernel_scope(obs::prof::FrameKind::kKernel,
                                      kernel_process_id_);
    std::shared_ptr<Batch> batch = state.queue.front();
    state.queue.pop_front();
    const size_t rows = batch->rows.NumRows();
    in_tuples = rows;
    state.queued_tuples -= rows;
    pending_tuples_ -= static_cast<int64_t>(rows);
    state.tuples_in += static_cast<int64_t>(rows);
    if (attribute_) ChargeQueueWait(pt.op, now, batch.get());
    if (rows == 0) {
      cost = costs_.wm_batch_cost;
    } else {
      cost = (batch->chained ? 0.0 : costs_.BatchCost(op)) +
             static_cast<double>(rows) * costs_.InputTupleCost(op);
      ctr_data_batches_->Add(1);
      ctr_data_rows_->Add(static_cast<int64_t>(rows));
    }
    // Vectorized kernels run over chunks of at most batch_rows rows; the
    // chunking is invisible in virtual time (same `now`, same cost model)
    // and in results (kernels preserve row order and RNG draw order).
    const auto chunk =
        static_cast<size_t>(std::max<int64_t>(1, options_.batch_rows));
    for (size_t begin = 0; begin < rows; begin += chunk) {
      PDSP_RETURN_NOT_OK(state.instance->ProcessBatch(
          batch->rows, begin, std::min(rows, begin + chunk),
          batch->input_port, now, &outputs));
    }
    ApplyWatermark(&state, *batch);
  }
  if (outputs.promotions() > 0) {
    ctr_data_promotions_->Add(static_cast<int64_t>(outputs.promotions()));
  }
  cost += static_cast<double>(outputs.NumRows()) *
          costs_.OutputTupleCost(op, timer_fire);
  // Outputs whose attribution cursor predates this firing emerged from
  // operator state (window panes, buffered join partners): charge the gap
  // as window residency.
  if (attribute_) ChargeWindowResidency(pt.op, now, outputs);

  if (op.type == OperatorType::kSink) {
    const double completion = now + cost / TaskSpeed(task);
    OperatorLatencyStats& acc = op_latency_[pt.op];
    for (size_t r = 0; r < outputs.NumRows(); ++r) {
      const uint32_t attr = outputs.attr_id(r);
      if (attr != kNoAttr) {
        LatencyAttr& a = attr_pool_[attr];
        const double svc = completion - a.accounted_until;
        a.service_s += svc;
        a.accounted_until = completion;
        acc.service_sum_s += svc;
        ++acc.service_n;
      }
      ++result_.sink_tuples;
      if (completion >= options_.warmup_s) {
        const double latency = completion - outputs.birth(r);
        result_.latency.Record(latency);
        hist_sink_latency_->Observe(latency);
        if (attr != kNoAttr) {
          const LatencyAttr& a = attr_pool_[attr];
          bd_sum_.source_batch_s += a.source_batch_s;
          bd_sum_.network_s += a.network_s;
          bd_sum_.queue_s += a.queue_s;
          bd_sum_.service_s += a.service_s;
          bd_sum_.window_s += a.window_s;
          bd_total_ += latency;
          ++bd_n_;
        }
      }
    }
    ctr_sink_tuples_->Add(static_cast<int64_t>(outputs.NumRows()));
    state.busy_time += completion - now;
    state.busy_until = completion;
  } else {
    const bool broadcast_wm =
        state.input_wm - state.last_wm_broadcast >=
        options_.watermark_interval_s;
    if (broadcast_wm) state.last_wm_broadcast = state.input_wm;
    std::vector<PlannedDelivery> deliveries;
    RouteOutputs(task, outputs, state.input_wm, broadcast_wm, &cost,
                 &deliveries);
    const double service = cost / TaskSpeed(task);
    state.busy_until = now + service;
    state.busy_time += service;
    if (attribute_) {
      ChargeDispatch(pt.op, state.busy_until, /*is_source=*/false,
                     &deliveries);
    }
    DispatchDeliveries(task, state.busy_until, &deliveries);
  }

  if (trace_verbose_) {
    TraceFiring(task, now, state.busy_until - now,
                timer_fire ? outputs.NumRows() : in_tuples);
  }
  // Wake self at completion to pick up further work.
  Push(state.busy_until, EventKind::kReady, task);
  return Status::OK();
}

void Engine::MaybeStart(int task, double now) {
  TaskState& state = tasks_[task];
  if (state.instance == nullptr) return;  // sources self-drive
  if (state.busy_until > now) return;     // completion event will re-enter
  const double next_timer = state.instance->NextTimerTime();
  const bool timer_due = next_timer < kInf && next_timer <= state.input_wm;
  if (state.queue.empty() && !timer_due) return;
  // Errors here indicate plan/runtime inconsistencies; they are surfaced via
  // the run loop's status.
  Status st = ProcessOne(task, now);
  if (!st.ok()) {
    run_error_ = st;
  }
}

Result<SimResult> Engine::Run() {
  result_.latency = LatencyRecorder(options_.latency_reservoir);
  result_.metrics = options_.metrics != nullptr
                        ? options_.metrics
                        : std::make_shared<obs::MetricsRegistry>();
  ctr_source_tuples_ = result_.metrics->GetCounter("pdsp.sim.source_tuples");
  ctr_sink_tuples_ = result_.metrics->GetCounter("pdsp.sim.sink_tuples");
  ctr_bp_skipped_ =
      result_.metrics->GetCounter("pdsp.sim.backpressure_skipped");
  ctr_data_batches_ = result_.metrics->GetCounter("pdsp.data.batches");
  ctr_data_rows_ = result_.metrics->GetCounter("pdsp.data.rows");
  ctr_data_promotions_ =
      result_.metrics->GetCounter("pdsp.data.column_promotions");
  hist_sink_latency_ =
      result_.metrics->GetHistogram("pdsp.sim.sink_latency_seconds");
  trace_verbose_ =
      options_.tracer != nullptr && options_.tracer->verbose();
  attribute_ = options_.attribute_latency;
  if (obs::prof::ProfilingActive()) {
    // Pre-intern every marker name once so the per-firing scopes carry
    // plain ids and never touch the name table's mutex.
    op_marker_ids_.resize(plan_.logical().NumOperators());
    for (size_t op = 0; op < plan_.logical().NumOperators(); ++op) {
      op_marker_ids_[op] = obs::prof::InternName(
          plan_.logical().op(static_cast<LogicalPlan::OpId>(op)).name);
    }
    kernel_fire_id_ = obs::prof::InternName("fire-timers");
    kernel_process_id_ = obs::prof::InternName("process-batch");
    kernel_partition_id_ = obs::prof::InternName("partition-kernel");
  }
  PDSP_RETURN_NOT_OK(SetUpTasks());
  prev_busy_time_.assign(tasks_.size(), 0.0);
  prev_tuples_in_.assign(tasks_.size(), 0);
  prev_tuples_out_.assign(tasks_.size(), 0);
  op_latency_.assign(plan_.logical().NumOperators(), OperatorLatencyStats{});
  // Sample points sit at k*interval for k = 1..floor(duration/interval),
  // plus one final end-of-run sample covering the partial last interval
  // (so metrics_interval_s > duration_s still yields one row per task).
  const double interval = options_.metrics_interval_s;
  double next_sample = interval > 0.0 ? interval : kInf;

  {
    obs::Span span(options_.tracer, "simulate", "sim");
    while (!heap_.empty()) {
      if (++events_processed_ > options_.max_events) {
        return Status::ResourceExhausted(
            StrFormat("simulation exceeded %lld events",
                      static_cast<long long>(options_.max_events)));
      }
      Event e = heap_.top();
      heap_.pop();
      while (next_sample <= e.time && next_sample <= options_.duration_s) {
        SampleTimeSeries(next_sample);
        next_sample += interval;
      }
      result_.virtual_time_end = e.time;
      TaskState& state = tasks_[e.task];
      switch (e.kind) {
        case EventKind::kSourceBatch:
          EmitSourceBatch(e.task, e.time);
          break;
        case EventKind::kDelivery:
          if (attribute_) {
            ChargeNetwork(plan_.task(e.task).op, e.time, e.batch.get());
          }
          state.queue.push_back(e.batch);
          state.queued_tuples += e.batch->rows.NumRows();
          state.max_queue_tuples =
              std::max(state.max_queue_tuples, state.queued_tuples);
          MaybeStart(e.task, e.time);
          break;
        case EventKind::kReady:
          MaybeStart(e.task, e.time);
          break;
      }
      if (!run_error_.ok()) return run_error_;
    }
    // If the heap drained before duration_s (tiny runs), emit the remaining
    // sample points from the final state so row counts stay predictable.
    while (next_sample <= options_.duration_s) {
      SampleTimeSeries(next_sample);
      next_sample += interval;
    }
    // End-of-run sample over the partial last interval, so short runs
    // (duration < interval) and the drain tail are still represented.
    if (interval > 0.0) {
      const double end =
          std::max(options_.duration_s, result_.virtual_time_end);
      if (prev_sample_time_ < end) SampleTimeSeries(end);
    }
  }

  // Aggregate per-operator statistics.
  obs::Span agg_span(options_.tracer, "aggregate", "sim");
  result_.events_processed = events_processed_;
  const double horizon =
      std::max(options_.duration_s, result_.virtual_time_end);
  for (size_t op = 0; op < plan_.logical().NumOperators(); ++op) {
    const auto id = static_cast<LogicalPlan::OpId>(op);
    OperatorRunStats s;
    s.name = plan_.logical().op(id).name;
    s.parallelism = plan_.ParallelismOf(id);
    double util_sum = 0.0;
    for (int j = 0; j < s.parallelism; ++j) {
      const TaskState& t = tasks_[plan_.TaskId(id, j)];
      s.tuples_in += t.tuples_in;
      s.tuples_out += t.tuples_out;
      s.busy_time_s += t.busy_time;
      s.max_queue_tuples = std::max(s.max_queue_tuples, t.max_queue_tuples);
      if (t.instance != nullptr) s.late_drops += t.instance->LateDrops();
      const double util = t.busy_time / horizon;
      util_sum += util;
      s.max_instance_util = std::max(s.max_instance_util, util);
    }
    s.utilization = util_sum / s.parallelism;
    s.latency = op_latency_[op];
    result_.late_drops += s.late_drops;
    // Credit this run's processed tuples to the memory profiler (bytes per
    // tuple). Once per run per operator — nothing on the firing hot path.
    if (obs::mem::MemProfilingActive()) {
      obs::mem::NoteTuplesProcessed(s.name, s.tuples_in);
    }
    result_.op_stats.push_back(std::move(s));
  }

  if (bd_n_ > 0) {
    const double inv = 1.0 / static_cast<double>(bd_n_);
    result_.breakdown.samples = bd_n_;
    result_.breakdown.source_batch_s = bd_sum_.source_batch_s * inv;
    result_.breakdown.network_s = bd_sum_.network_s * inv;
    result_.breakdown.queue_s = bd_sum_.queue_s * inv;
    result_.breakdown.service_s = bd_sum_.service_s * inv;
    result_.breakdown.window_s = bd_sum_.window_s * inv;
    result_.breakdown.total_s = bd_total_ * inv;
  }

  result_.median_latency_s = result_.latency.Percentile(50.0);
  result_.mean_latency_s = result_.latency.Mean();
  result_.p95_latency_s = result_.latency.Percentile(95.0);
  result_.p99_latency_s = result_.latency.Percentile(99.0);
  const double measured =
      std::max(1e-9, options_.duration_s - options_.warmup_s);
  // Throughput counts only post-warm-up sink results (latency.Count() tracks
  // every recorded sample even when the reservoir caps storage).
  result_.throughput_tps =
      static_cast<double>(result_.latency.Count()) / measured;

  // Snapshot the remaining run-level aggregates into the registry so the
  // metrics.json artifact is self-contained.
  obs::MetricsRegistry& reg = *result_.metrics;
  reg.GetCounter("pdsp.sim.late_drops")->Add(result_.late_drops);
  reg.GetCounter("pdsp.sim.events_processed")->Add(events_processed_);
  reg.GetGauge("pdsp.sim.throughput_tps")->Set(result_.throughput_tps);
  reg.GetGauge("pdsp.sim.virtual_time_end_s")->Set(result_.virtual_time_end);
  reg.GetGauge("pdsp.sim.median_latency_s")->Set(result_.median_latency_s);
  reg.GetGauge("pdsp.sim.p95_latency_s")->Set(result_.p95_latency_s);
  reg.GetGauge("pdsp.sim.p99_latency_s")->Set(result_.p99_latency_s);
  return std::move(result_);
}

}  // namespace

std::string SimResult::Summary() const {
  return StrFormat(
      "latency p50=%.3fms mean=%.3fms p95=%.3fms | throughput=%.0f/s | "
      "src=%lld sink=%lld late=%lld bp_skipped=%lld events=%lld",
      median_latency_s * 1e3, mean_latency_s * 1e3, p95_latency_s * 1e3,
      throughput_tps, static_cast<long long>(source_tuples),
      static_cast<long long>(sink_tuples), static_cast<long long>(late_drops),
      static_cast<long long>(backpressure_skipped),
      static_cast<long long>(events_processed));
}

Result<SimResult> Simulation::Run(const PhysicalPlan& plan,
                                  const Cluster& cluster,
                                  const Placement& placement,
                                  const CostModel& costs,
                                  const SimOptions& options) {
  if (placement.node_of_task.size() != plan.NumTasks()) {
    return Status::InvalidArgument(
        "placement size does not match task count");
  }
  if (options.duration_s <= 0.0 || options.warmup_s < 0.0 ||
      options.warmup_s >= options.duration_s) {
    return Status::InvalidArgument("bad duration/warmup");
  }
  if (options.batch_rows < 1) {
    return Status::InvalidArgument("batch_rows must be >= 1");
  }
  Engine engine(plan, cluster, placement, costs, options);
  return engine.Run();
}

Result<SimResult> ExecutePlan(const LogicalPlan& plan, const Cluster& cluster,
                              const ExecutionOptions& options) {
  obs::Span expand_span(options.sim.tracer, "expand", "sim");
  PDSP_ASSIGN_OR_RETURN(PhysicalPlan phys, PhysicalPlan::FromLogical(&plan));
  expand_span.End();
  obs::Span place_span(options.sim.tracer, "place", "sim");
  PDSP_ASSIGN_OR_RETURN(
      Placement placement,
      PlaceTasks(cluster, phys.InstancesPerOp(), options.placement,
                 options.sim.seed));
  place_span.End();
  return Simulation::Run(phys, cluster, placement, options.costs,
                         options.sim);
}

Result<double> MeanMedianLatency(const LogicalPlan& plan,
                                 const Cluster& cluster,
                                 const ExecutionOptions& options,
                                 int repeats) {
  if (repeats < 1) return Status::InvalidArgument("repeats < 1");
  double sum = 0.0;
  for (int r = 0; r < repeats; ++r) {
    ExecutionOptions opt = options;
    opt.sim.seed = options.sim.seed + static_cast<uint64_t>(r) * 1299709ULL;
    PDSP_ASSIGN_OR_RETURN(SimResult result, ExecutePlan(plan, cluster, opt));
    if (std::isnan(result.median_latency_s)) {
      return Status::Internal("run produced no sink results");
    }
    sum += result.median_latency_s;
  }
  return sum / repeats;
}

}  // namespace pdsp
