#include "src/obs/monitor.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/string_util.h"
#include "src/store/json.h"

namespace pdsp {
namespace obs {
namespace {

TEST(ParseRenderModeTest, AutoFollowsTty) {
  auto on_tty = ParseRenderMode("", /*stderr_is_tty=*/true);
  ASSERT_TRUE(on_tty.ok());
  EXPECT_EQ(*on_tty, MonitorOptions::RenderMode::kRich);

  auto piped = ParseRenderMode("auto", /*stderr_is_tty=*/false);
  ASSERT_TRUE(piped.ok());
  EXPECT_EQ(*piped, MonitorOptions::RenderMode::kPlain);
}

TEST(ParseRenderModeTest, ExplicitModesIgnoreTty) {
  auto plain = ParseRenderMode("plain", true);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(*plain, MonitorOptions::RenderMode::kPlain);
  auto rich = ParseRenderMode("rich", false);
  ASSERT_TRUE(rich.ok());
  EXPECT_EQ(*rich, MonitorOptions::RenderMode::kRich);
  auto off = ParseRenderMode("off", true);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, MonitorOptions::RenderMode::kOff);
}

TEST(ParseRenderModeTest, UnknownModeIsInvalidArgument) {
  auto bad = ParseRenderMode("fancy", true);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(EtaEstimatorTest, UncalibratedEstimateIsNegative) {
  EtaEstimator eta;
  EXPECT_LT(eta.Estimate(10, 4, {}), 0.0);
}

TEST(EtaEstimatorTest, FirstCellSeedsTheEwma) {
  EtaEstimator eta(0.3);
  eta.AddCompletedCell(2.0);
  EXPECT_DOUBLE_EQ(eta.ewma_s(), 2.0);
  // 4 queued cells on 2 workers, nothing in flight: 4 * 2s / 2.
  EXPECT_DOUBLE_EQ(eta.Estimate(4, 2, {}), 4.0);
}

TEST(EtaEstimatorTest, InFlightElapsedIsCredited) {
  EtaEstimator eta(0.5);
  eta.AddCompletedCell(2.0);
  // One in-flight cell that has already run 1.5s needs max(0.5, 0.2) more.
  EXPECT_DOUBLE_EQ(eta.Estimate(0, 1, {1.5}), 0.5);
  // Past its expected duration: floored at a tenth of the EWMA, never 0.
  EXPECT_DOUBLE_EQ(eta.Estimate(0, 1, {5.0}), 0.2);
}

// --- watchdog ------------------------------------------------------------

WorkerSnapshot Worker(int worker, int cell, const std::string& label,
                      double elapsed_s, double busy_s, int64_t metric_sum) {
  WorkerSnapshot w;
  w.worker = worker;
  w.current_cell = cell;
  w.current_label = label;
  w.cell_elapsed_s = elapsed_s;
  w.busy_s = busy_s;
  w.metric_sum = metric_sum;
  return w;
}

SweepSnapshot Snap(double wall_s, size_t done, double median_s,
                   std::vector<WorkerSnapshot> workers) {
  SweepSnapshot s;
  s.sweep = "test";
  s.wall_s = wall_s;
  s.cells_total = 16;
  s.cells_done = done;
  s.median_cell_s = median_s;
  s.workers = std::move(workers);
  return s;
}

TEST(SweepWatchdogTest, StragglerCellFiresM201Once) {
  MonitorOptions options;
  options.straggler_ratio = 3.0;
  options.straggler_min_completed = 3;
  SweepWatchdog dog(options);

  // 4 completed cells at ~1s median; worker 0 stuck in "grid/07" for 5s.
  SweepSnapshot snap =
      Snap(6.0, 4, 1.0, {Worker(0, 7, "grid/07", 5.0, 5.0, 100)});
  std::vector<MonitorFinding> fresh = dog.Evaluate(snap);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].code, "PDSP-M201");
  EXPECT_EQ(fresh[0].subject, "grid/07");
  EXPECT_EQ(fresh[0].worker, 0);

  // Same cell still slow on the next snapshot: no re-fire.
  snap.workers[0].cell_elapsed_s = 6.0;
  EXPECT_TRUE(dog.Evaluate(snap).empty());
  EXPECT_EQ(dog.Codes(), std::vector<std::string>{"PDSP-M201"});
}

TEST(SweepWatchdogTest, M201NeedsEnoughCompletedCells) {
  MonitorOptions options;
  options.straggler_min_completed = 3;
  SweepWatchdog dog(options);
  // Only 2 completed: the median is not trustworthy yet.
  EXPECT_TRUE(
      dog.Evaluate(Snap(6.0, 2, 1.0, {Worker(0, 7, "grid/07", 9.0, 9.0, 1)}))
          .empty());
}

TEST(SweepWatchdogTest, FrozenMetricSumFiresM202) {
  MonitorOptions options;
  options.stall_snapshots = 3;
  options.imbalance_min_wall_s = 1e9;  // keep M203 quiet
  SweepWatchdog dog(options);

  // Snapshot 1 establishes the track; 2..3 grow the no-delta streak; the
  // 4th reaches the threshold.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        dog.Evaluate(Snap(1.0 + i, 0, 0.0,
                          {Worker(0, 2, "grid/02", 1.0 + i, 1.0 + i, 42)}))
            .empty())
        << "snapshot " << i;
  }
  std::vector<MonitorFinding> fresh =
      dog.Evaluate(Snap(4.0, 0, 0.0, {Worker(0, 2, "grid/02", 4.0, 4.0, 42)}));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].code, "PDSP-M202");
  EXPECT_EQ(fresh[0].subject, "worker0");
}

TEST(SweepWatchdogTest, MetricDeltaOrIdleResetsTheStallStreak) {
  MonitorOptions options;
  options.stall_snapshots = 2;
  options.imbalance_min_wall_s = 1e9;
  SweepWatchdog dog(options);

  // Frozen, frozen... then a delta arrives — streak resets, nothing fires.
  (void)dog.Evaluate(Snap(1, 0, 0, {Worker(0, 2, "c", 1, 1, 42)}));
  (void)dog.Evaluate(Snap(2, 0, 0, {Worker(0, 2, "c", 2, 2, 42)}));
  (void)dog.Evaluate(Snap(3, 0, 0, {Worker(0, 2, "c", 3, 3, 43)}));
  (void)dog.Evaluate(Snap(4, 0, 0, {Worker(0, 2, "c", 4, 4, 43)}));
  // Worker goes idle: track resets entirely.
  (void)dog.Evaluate(Snap(5, 1, 1, {Worker(0, -1, "", 0, 4, -1)}));
  (void)dog.Evaluate(Snap(6, 1, 1, {Worker(0, 3, "d", 1, 5, 43)}));
  EXPECT_TRUE(dog.findings().empty());
}

TEST(SweepWatchdogTest, BusyFractionImbalanceFiresM203) {
  MonitorOptions options;
  options.imbalance_ratio = 0.25;
  options.imbalance_min_wall_s = 1.0;
  SweepWatchdog dog(options);

  // Worker 1 nearly idle (0.1 / 4.0 = 0.025) next to a saturated worker 0.
  std::vector<MonitorFinding> fresh = dog.Evaluate(
      Snap(4.0, 3, 0.5,
           {Worker(0, 5, "grid/05", 1.0, 4.0, 10), Worker(1, -1, "", 0, 0.1, -1)}));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].code, "PDSP-M203");
  EXPECT_EQ(fresh[0].worker, 1);
}

TEST(SweepWatchdogTest, M203WaitsForTheSweepToMature) {
  MonitorOptions options;
  options.imbalance_min_wall_s = 10.0;
  SweepWatchdog dog(options);
  EXPECT_TRUE(dog.Evaluate(Snap(2.0, 3, 0.5,
                                {Worker(0, 5, "c", 1.0, 2.0, 10),
                                 Worker(1, -1, "", 0, 0.0, -1)}))
                  .empty());
}

// --- progress + sampler --------------------------------------------------

TEST(SweepProgressTest, SnapshotTracksCellLifecycle) {
  SweepProgress progress("unit", 4, 2);
  auto registry = std::make_shared<MetricsRegistry>();
  registry->GetCounter("pdsp.sim.sink_tuples")->Add(7);

  progress.StartCell(0, 0, "cell/0", registry);
  SweepSnapshot running = progress.Snapshot();
  EXPECT_EQ(running.seq, 1);
  EXPECT_EQ(running.cells_total, 4u);
  EXPECT_EQ(running.cells_done, 0u);
  ASSERT_EQ(running.workers.size(), 2u);
  EXPECT_EQ(running.workers[0].current_cell, 0);
  EXPECT_EQ(running.workers[0].current_label, "cell/0");
  EXPECT_EQ(running.workers[0].metric_sum, 7);
  EXPECT_EQ(running.workers[1].current_cell, -1);
  EXPECT_EQ(running.workers[1].metric_sum, -1);

  registry->GetCounter("pdsp.sim.sink_tuples")->Add(3);
  EXPECT_EQ(progress.Snapshot().workers[0].metric_sum, 10);

  progress.FinishCell(0, 0, /*ok=*/true);
  progress.StartCell(1, 1, "cell/1", nullptr);
  progress.FinishCell(1, 1, /*ok=*/false);
  SweepSnapshot done = progress.Snapshot(/*final_snapshot=*/true);
  EXPECT_EQ(done.seq, 3);
  EXPECT_EQ(done.cells_done, 2u);
  EXPECT_EQ(done.cells_failed, 1u);
  EXPECT_TRUE(done.final_snapshot);
  EXPECT_EQ(done.workers[0].current_cell, -1);
  EXPECT_EQ(done.workers[0].cells_done, 1);
  EXPECT_GE(done.median_cell_s, 0.0);
}

TEST(SweepProgressTest, MismatchedFinishIsIgnored) {
  SweepProgress progress("unit", 2, 1);
  progress.StartCell(0, 0, "cell/0", nullptr);
  progress.FinishCell(0, 1, true);  // stale finish for a different cell
  EXPECT_EQ(progress.Snapshot().cells_done, 0u);
  progress.FinishCell(7, 0, true);  // out-of-range worker
  EXPECT_EQ(progress.Snapshot().cells_done, 0u);
}

std::string TempPath(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/pdsp_monitor_test";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name;
  std::filesystem::remove(path);
  return path;
}

TEST(SnapshotSamplerTest, WritesWellFormedMonotoneProgressJsonl) {
  const std::string jsonl = TempPath("progress.jsonl");
  SweepProgress progress("jsonl-sweep", 2, 1);
  MonitorOptions options;
  options.enabled = true;
  options.interval_s = 0.01;
  options.render = MonitorOptions::RenderMode::kOff;
  options.jsonl_path = jsonl;

  SnapshotSampler sampler(&progress, options);
  sampler.Start();
  progress.StartCell(0, 0, "cell/0", nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  progress.FinishCell(0, 0, true);
  progress.StartCell(0, 1, "cell/1", nullptr);
  progress.FinishCell(0, 1, true);
  MonitorSummary summary = sampler.Stop();

  EXPECT_TRUE(summary.last.final_snapshot);
  EXPECT_EQ(summary.last.cells_done, 2u);
  ASSERT_EQ(summary.worker_busy_fraction.size(), 1u);

  auto text = ReadTextFile(jsonl);
  ASSERT_TRUE(text.ok());
  const std::vector<std::string> lines = Split(Trim(*text), '\n');
  ASSERT_GE(lines.size(), 2u);  // >= one periodic tick + the final one
  int64_t last_seq = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    auto parsed = Json::Parse(lines[i]);
    ASSERT_TRUE(parsed.ok()) << "line " << i + 1;
    EXPECT_EQ((*parsed)["schema_version"].AsInt(), kProgressSchemaVersion);
    EXPECT_EQ((*parsed)["sweep"].AsString(), "jsonl-sweep");
    EXPECT_GT((*parsed)["seq"].AsInt(), last_seq);
    last_seq = (*parsed)["seq"].AsInt();
    const bool is_last = i + 1 == lines.size();
    EXPECT_EQ((*parsed)["final"].AsBool(), is_last) << "line " << i + 1;
  }

  // Stop() is idempotent and keeps returning the cached summary.
  EXPECT_EQ(sampler.Stop().last.seq, summary.last.seq);
}

TEST(MonitorSummaryTest, ExportToPublishesGauges) {
  MonitorSummary summary;
  summary.last.seq = 9;
  summary.findings.push_back({"PDSP-M203", 1, "worker1", "imbalance"});
  summary.worker_busy_fraction = {0.9, 0.2};

  MetricsRegistry registry;
  summary.ExportTo(&registry);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("pdsp.monitor.snapshots"), 9.0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("pdsp.monitor.findings"), 1.0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("pdsp.monitor.busy_fraction_min"), 0.2);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("pdsp.monitor.busy_fraction_max"), 0.9);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("pdsp.monitor.worker1.busy_fraction"),
                   0.2);
}

}  // namespace
}  // namespace obs
}  // namespace pdsp
