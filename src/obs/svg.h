// pdsp::obs::svg — dependency-free inline-SVG chart primitives for the
// report generator. Three renderers cover everything the report needs:
// line charts (throughput / percentile vs parallelism), stacked bars
// (latency breakdown), and heatmaps (sweep cell × repeat). Output is a
// plain <svg> element suitable for direct embedding in HTML — no scripts,
// no external assets, so a report file stays self-contained and viewable
// offline.
//
// Non-finite data points are dropped at the renderer boundary: an SVG that
// contains a literal "nan" renders nothing in most viewers, and CI greps
// generated reports for exactly that literal.

#ifndef PDSP_OBS_SVG_H_
#define PDSP_OBS_SVG_H_

#include <string>
#include <utility>
#include <vector>

namespace pdsp {
namespace obs {
namespace svg {

/// XML-escapes text for element content and attribute values.
std::string EscapeText(const std::string& text);

/// The categorical palette (wraps around); stable across runs so series
/// colors are comparable between reports.
const char* PaletteColor(size_t index);

/// Sequential color ramp for heatmap cells: t in [0,1] maps from light
/// (low) to dark blue (high). Out-of-range t is clamped.
std::string ColorRamp(double t);

/// "Nice" tick positions covering [min_v, max_v] (roughly `target` of
/// them). Returns {0} when the span is degenerate.
std::vector<double> Ticks(double min_v, double max_v, int target = 5);

/// Compact tick label: trims trailing zeros, switches to k/M suffixes for
/// large magnitudes.
std::string TickLabel(double v);

/// Linear map from a data domain onto a pixel range (range may be
/// inverted, as SVG y grows downward).
class LinearScale {
 public:
  LinearScale(double domain_min, double domain_max, double range_min,
              double range_max);
  double operator()(double v) const;

 private:
  double d0_, d1_, r0_, r1_;
};

/// Minimal element sink; the chart renderers compose on top of it.
class Canvas {
 public:
  Canvas(double width, double height);

  void Rect(double x, double y, double w, double h, const std::string& fill,
            double opacity = 1.0, const std::string& tooltip = "");
  void Line(double x1, double y1, double x2, double y2,
            const std::string& stroke, double stroke_width = 1.0);
  void Polyline(const std::vector<std::pair<double, double>>& points,
                const std::string& stroke, double stroke_width = 1.5);
  void Circle(double cx, double cy, double r, const std::string& fill,
              const std::string& tooltip = "");
  /// anchor: "start" | "middle" | "end".
  void Text(double x, double y, const std::string& text, double size = 11,
            const std::string& anchor = "start",
            const std::string& fill = "#333", double rotate_deg = 0.0);

  /// Closes the element; the canvas must not be reused afterwards.
  std::string Finish() const;

  double width() const { return width_; }
  double height() const { return height_; }

 private:
  double width_;
  double height_;
  std::string body_;
};

/// One line-chart series; points are (x, y) in data space.
struct Series {
  std::string label;
  std::string color;  ///< empty picks from the palette by series index
  std::vector<std::pair<double, double>> points;
};

struct LineChartSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<Series> series;
  double width = 560;
  double height = 300;
  bool y_from_zero = true;
};

/// Multi-series line chart with axes, ticks and a legend. Series with no
/// finite points are skipped; an all-empty spec renders an "(no data)"
/// placeholder instead of a broken chart.
std::string RenderLineChart(const LineChartSpec& spec);

/// One stacked bar; parts align with StackedBarSpec::part_labels.
struct StackedBar {
  std::string label;
  std::vector<double> parts;
};

struct StackedBarSpec {
  std::string title;
  std::string y_label;
  std::vector<std::string> part_labels;
  std::vector<StackedBar> bars;
  double width = 560;
  double height = 300;
};

/// Vertical stacked bars (latency breakdown per cell) with a legend.
std::string RenderStackedBars(const StackedBarSpec& spec);

struct HeatmapCell {
  int row = 0;
  int col = 0;
  double value = 0.0;
  bool flagged = false;  ///< draws an outline (M201 straggler marker)
  std::string tooltip;
};

struct HeatmapSpec {
  std::string title;
  std::vector<std::string> row_labels;
  std::vector<std::string> col_labels;
  std::vector<HeatmapCell> cells;
  double cell_size = 26;
};

/// Grid heatmap colored by value (min..max over finite cells); missing
/// cells stay blank, flagged cells get a red outline.
std::string RenderHeatmap(const HeatmapSpec& spec);

struct FlameGraphSpec {
  std::string title;
  /// Weighted folded stacks: ("frame;frame;frame", weight). Weights are
  /// CPU seconds; non-finite or non-positive weights are dropped.
  std::vector<std::pair<std::string, double>> stacks;
  /// Label for the synthetic root frame spanning the full width.
  std::string root_label = "all";
  double width = 900;
  double row_height = 18;
};

/// Icicle-style flame graph (root on top, callees below, width ∝ weight).
/// Frame colors are stable hashes of the frame name, so the same operator
/// keeps its color across reports. An empty spec renders a "(no data)"
/// placeholder.
std::string RenderFlameGraph(const FlameGraphSpec& spec);

}  // namespace svg
}  // namespace obs
}  // namespace pdsp

#endif  // PDSP_OBS_SVG_H_
