// max_instance_util under skewed key distributions: hash partitioning sends
// a Zipf-heavy key stream mostly to one instance, so the hottest instance's
// utilization must pull away from the mean as skew grows — the signal the
// PDSP-R102 skew-bound diagnosis and the autoscaler key on.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/obs/diagnose.h"
#include "src/sim/simulation.h"
#include "tests/testing/test_plans.h"

namespace pdsp {
namespace {

/// Linear keyed plan whose aggregate sees keys with the given Zipf skew.
Result<LogicalPlan> SkewedAggPlan(double zipf_s, double rate,
                                  int parallelism) {
  PlanBuilder b;
  auto src = b.Source("src",
                      testing::KeyValueStream(/*key_cardinality=*/50, zipf_s),
                      testing::PoissonArrival(rate), 2);
  WindowSpec win;
  win.type = WindowType::kTumbling;
  win.policy = WindowPolicy::kTime;
  win.duration_ms = 500.0;
  auto agg = b.WindowAggregate("agg", src, win, AggregateFn::kSum, 1, 0,
                               parallelism);
  b.Sink("sink", agg);
  return b.Build();
}

struct AggUtil {
  double mean = 0.0;
  double max = 0.0;
};

Result<AggUtil> MeasureAggUtil(double zipf_s) {
  PDSP_ASSIGN_OR_RETURN(LogicalPlan plan,
                        SkewedAggPlan(zipf_s, 60000.0, 4));
  ExecutionOptions opt;
  opt.sim.duration_s = 2.0;
  opt.sim.warmup_s = 0.25;
  opt.sim.seed = 5;
  PDSP_ASSIGN_OR_RETURN(SimResult r, ExecutePlan(plan, Cluster::M510(4), opt));
  PDSP_ASSIGN_OR_RETURN(LogicalPlan::OpId agg, plan.FindOperator("agg"));
  return AggUtil{r.op_stats[agg].utilization,
                 r.op_stats[agg].max_instance_util};
}

TEST(SkewTest, MaxInstanceUtilNeverBelowMean) {
  for (double s : {0.0, 0.8, 1.6}) {
    SCOPED_TRACE(s);
    auto u = MeasureAggUtil(s);
    ASSERT_TRUE(u.ok()) << u.status().ToString();
    EXPECT_GE(u->max, u->mean - 1e-12);
    EXPECT_GT(u->max, 0.0);
  }
}

TEST(SkewTest, SkewWidensMaxOverMeanGap) {
  auto uniform = MeasureAggUtil(0.0);
  auto skewed = MeasureAggUtil(1.6);
  ASSERT_TRUE(uniform.ok()) << uniform.status().ToString();
  ASSERT_TRUE(skewed.ok()) << skewed.status().ToString();
  const double uniform_ratio = uniform->max / std::max(1e-12, uniform->mean);
  const double skewed_ratio = skewed->max / std::max(1e-12, skewed->mean);
  // Near-uniform keys balance across the 4 instances; heavy Zipf pins the
  // hot key's instance well above the mean.
  EXPECT_LT(uniform_ratio, 1.5) << "uniform keys should balance";
  EXPECT_GT(skewed_ratio, uniform_ratio + 0.25)
      << "zipf_s=1.6 should load one instance disproportionately";
}

TEST(SkewTest, SkewBoundDiagnosisFiresOnHotInstance) {
  // Drive the hot instance toward saturation while the mean stays moderate:
  // this is exactly the PDSP-R102 shape (skew-bound, not plan-wide
  // saturation).
  auto plan = SkewedAggPlan(1.6, 150000.0, 8);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const Cluster cluster = Cluster::M510(8);
  ExecutionOptions opt;
  opt.sim.duration_s = 2.0;
  opt.sim.warmup_s = 0.25;
  opt.sim.seed = 5;
  auto r = ExecutePlan(*plan, cluster, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto agg = plan->FindOperator("agg");
  ASSERT_TRUE(agg.ok());
  const OperatorRunStats& s = r->op_stats[*agg];
  ASSERT_GT(s.max_instance_util, 1.9 * s.utilization)
      << "setup should produce a skewed aggregate";

  auto diag = obs::DiagnoseRun(*plan, cluster, *r);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  if (s.max_instance_util >= 2.0 * s.utilization &&
      s.max_instance_util >= 0.6 && s.utilization < 0.9) {
    EXPECT_TRUE(diag->HasCode("PDSP-R102")) << diag->ToString();
  }
}

}  // namespace
}  // namespace pdsp
